package repro

import (
	"context"

	"repro/internal/remap"
)

// Failure-reactive online re-mapping: the session methods in this file
// close the loop between the fault-injection harness (FaultSchedule,
// ScriptedCrashes, NewRandomFaultSchedule) and the solver. Instead of
// re-solving from scratch after a crash, the controller warm-restarts
// from the deployed mapping — evicting dead replicas in place, running a
// bounded greedy repair, and escalating to the exact search only when
// the per-event deadline budget allows — so a repair is typically an
// order of magnitude cheaper than a cold Solve on the same instance.

// NewRemapController builds a failure-reactive re-mapping controller
// bound to the session's instance, warm-started from start (typically a
// prior Solve result). The controller shares the session's cached
// evaluator and inherits the session worker count when cfg.Workers is
// zero. It is safe for concurrent use; feed it events with Apply or Run,
// or replay a schedule with Campaign.
func (s *Session) NewRemapController(start *Mapping, cfg RemapConfig) (*RemapController, error) {
	if cfg.Eval == nil {
		cfg.Eval = s.ev
	}
	if cfg.Workers == 0 {
		cfg.Workers = s.cfg.workers
	}
	if cfg.Recorder == nil {
		cfg.Recorder = s.cfg.recorder
	}
	return remap.New(s.pipe, s.plat, start, cfg)
}

// Remap performs a one-shot failure-reactive repair: it warm-restarts
// from start under the complete crash pattern failed (failed[u] = true
// bans processor u) and returns the repaired mapping with its metrics,
// certainty grade, and — when the configured bound can no longer be met
// on the surviving platform — a violation report. The returned mapping
// never assigns a failed processor. ErrAllFailed is returned when every
// processor is down.
func (s *Session) Remap(ctx context.Context, start *Mapping, failed []bool, cfg RemapConfig) (RemapResult, error) {
	c, err := s.NewRemapController(start, cfg)
	if err != nil {
		return RemapResult{}, err
	}
	ctx, cancel := s.callCtx(ctx)
	defer cancel()
	return c.Sync(ctx, failed)
}

// RunReactive replays a fault schedule through a fresh controller and
// returns every repair in event order. The optional emit callback
// observes each repair as it happens (return an error to abort the
// campaign); pass nil to just collect the results. Completed runs are
// deterministic for a fixed (session, start, schedule, config).
func (s *Session) RunReactive(ctx context.Context, start *Mapping, schedule FaultSchedule, cfg RemapConfig, emit func(RemapResult) error) ([]RemapResult, error) {
	c, err := s.NewRemapController(start, cfg)
	if err != nil {
		return nil, err
	}
	ctx, cancel := s.callCtx(ctx)
	defer cancel()
	out := make([]RemapResult, 0, len(schedule))
	err = c.Campaign(ctx, schedule, func(rep remap.Repair) error {
		out = append(out, rep)
		if emit != nil {
			return emit(rep)
		}
		return nil
	})
	return out, err
}
