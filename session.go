package repro

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/heuristics"
	"repro/internal/mapping"
	"repro/internal/poly"
	"repro/internal/sim"
	"repro/internal/throughput"
)

// Session is a long-lived, concurrency-safe solver bound to one
// (pipeline, platform) instance. It validates the instance and builds the
// mapping.Evaluator precomputation once at construction, so repeated
// solves, evaluations, Pareto sweeps and simulation campaigns against the
// same instance skip the per-call setup the package-level functions pay.
//
// Every long-running method takes a context.Context and stops early when
// it is done: a canceled Solve returns the best feasible mapping found so
// far graded Partial, a canceled Pareto/TriPareto returns the partial
// front, and canceled Monte-Carlo campaigns aggregate the trials actually
// run. Completed (uncanceled) calls are deterministic for a fixed
// configuration, including the worker count.
//
// A Session is immutable after construction and safe for concurrent use;
// the pipeline and platform must not be mutated while the session is
// alive.
type Session struct {
	pipe *Pipeline
	plat *Platform
	cfg  sessionConfig
	ev   *mapping.Evaluator

	// Canonical form of the instance, computed lazily on the first
	// Canonical call (it is pure derived state, so memoizing keeps the
	// Session immutable in effect and concurrency-safe).
	canonOnce sync.Once
	canonVal  *CanonicalInstance
	canonErr  error

	// Suffix memo for the exact searches, built lazily on the first solve
	// that can use one (communication-homogeneous platforms within the
	// size cap — nil otherwise). Its table fills on demand and persists
	// for the session's lifetime, so warm traffic against the same
	// instance reuses solved sub-instances across calls.
	memoOnce sync.Once
	memoVal  *exact.SuffixMemo
}

// sessionConfig carries the options applied at NewSession time.
type sessionConfig struct {
	workers         int
	exactBudget     float64
	deadline        time.Duration
	seed            int64
	anneal          AnnealConfig
	annealSet       bool
	forceHeuristic  bool
	recorder        *Recorder
	minRouteSamples int
}

// SessionOption is a functional option for NewSession.
type SessionOption func(*sessionConfig)

// WithWorkers sets the goroutine count used by the exact enumeration
// fan-out and the Monte-Carlo campaigns (0, the default, means
// GOMAXPROCS; 1 forces sequential execution). Results are identical for
// every worker count.
func WithWorkers(n int) SessionOption {
	return func(c *sessionConfig) { c.workers = n }
}

// WithExactBudget sets the largest estimated interval-mapping count for
// which Solve and Pareto use exact enumeration on the hard platform
// classes (0 means the core default, currently 5,000,000).
func WithExactBudget(budget float64) SessionOption {
	return func(c *sessionConfig) { c.exactBudget = budget }
}

// WithDeadline caps the wall-clock time of every call made through the
// session: each method derives its context with this timeout (on top of
// whatever deadline the caller's context already carries). Zero, the
// default, adds no per-call deadline.
func WithDeadline(d time.Duration) SessionOption {
	return func(c *sessionConfig) { c.deadline = d }
}

// WithSeed sets the seed for every stochastic component — the annealing
// fallback and the Monte-Carlo campaigns — making session results
// reproducible end to end (default 1).
func WithSeed(seed int64) SessionOption {
	return func(c *sessionConfig) { c.seed = seed }
}

// WithAnneal overrides the simulated-annealing configuration used by the
// heuristic fallback of Solve and Pareto. Its Seed, when zero, is filled
// from WithSeed.
func WithAnneal(cfg AnnealConfig) SessionOption {
	return func(c *sessionConfig) { c.anneal = cfg; c.annealSet = true }
}

// WithForceHeuristic makes Solve and Pareto skip exact enumeration even
// on small instances (useful to bound tail latency under load).
func WithForceHeuristic(force bool) SessionOption {
	return func(c *sessionConfig) { c.forceHeuristic = force }
}

// WithRecorder attaches a telemetry recorder to every solve made through
// the session: each call reports its route attempts, phase durations,
// outcome and certainty, and — when the call's context carries a
// deadline — the solver routes adaptively, skipping any route whose warm
// per-class p95 latency cannot fit the remaining budget. A shared
// recorder (e.g. one per serving process) accumulates the latency
// profiles across sessions. Nil (the default) disables telemetry with
// zero overhead.
func WithRecorder(rec *Recorder) SessionOption {
	return func(c *sessionConfig) { c.recorder = rec }
}

// WithMinRouteSamples overrides how many per-(class, route) samples the
// adaptive router requires before trusting a latency profile (0 = the
// default, see core.DefaultMinRouteSamples; negative disables adaptive
// routing while keeping telemetry collection).
func WithMinRouteSamples(n int) SessionOption {
	return func(c *sessionConfig) { c.minRouteSamples = n }
}

// NewSession validates the instance, builds the cached evaluator state,
// and returns a Session ready for concurrent use.
func NewSession(p *Pipeline, pl *Platform, opts ...SessionOption) (*Session, error) {
	if p == nil || pl == nil {
		return nil, fmt.Errorf("repro: session needs both a pipeline and a platform")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	s := &Session{pipe: p, plat: pl, cfg: sessionConfig{seed: 1}}
	for _, o := range opts {
		o(&s.cfg)
	}
	if s.cfg.anneal.Seed == 0 {
		s.cfg.anneal.Seed = s.cfg.seed
	}
	// The evaluator covers every platform width: up to 64 processors it
	// scores uint64 replica masks, beyond that the multi-word bitset
	// representation — both zero-allocation in the solvers' hot paths.
	ev, err := mapping.NewEvaluator(p, pl)
	if err != nil {
		return nil, err
	}
	s.ev = ev
	return s, nil
}

// Pipeline returns the session's pipeline (shared, do not mutate).
func (s *Session) Pipeline() *Pipeline { return s.pipe }

// Platform returns the session's platform (shared, do not mutate).
func (s *Session) Platform() *Platform { return s.plat }

// Canonical returns the instance's canonical form (computed once,
// memoized, safe for concurrent use): relabeling-invariant bytes suitable
// for cross-request cache keys plus the permutation translating mappings
// back to this session's processor ids. It fails with
// ErrCanonicalizeComplex (wrapped) on platforms whose link symmetry
// exceeds the canonicalization budget; such sessions still solve
// normally, they just cannot share cache entries across relabelings.
func (s *Session) Canonical() (*CanonicalInstance, error) {
	s.canonOnce.Do(func() {
		s.canonVal, s.canonErr = CanonicalizeInstance(s.pipe, s.plat)
	})
	return s.canonVal, s.canonErr
}

// callCtx derives the per-call context: the caller's context bounded by
// the session deadline when one was configured.
func (s *Session) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.cfg.deadline > 0 {
		return context.WithTimeout(ctx, s.cfg.deadline)
	}
	return ctx, func() {}
}

// suffixMemo returns the session's lazily built suffix memo (nil when the
// instance does not admit one).
func (s *Session) suffixMemo() *exact.SuffixMemo {
	s.memoOnce.Do(func() {
		s.memoVal = exact.NewSuffixMemo(s.pipe, s.plat, 0)
	})
	return s.memoVal
}

// coreOptions materializes the session configuration as solver options.
func (s *Session) coreOptions() SolveOptions {
	return SolveOptions{
		ExactBudget:     s.cfg.exactBudget,
		Workers:         s.cfg.workers,
		Anneal:          s.cfg.anneal,
		ForceHeuristic:  s.cfg.forceHeuristic,
		Eval:            s.ev,
		SuffixMemo:      s.suffixMemo(),
		Recorder:        s.cfg.recorder,
		MinRouteSamples: s.cfg.minRouteSamples,
	}
}

// exactOptions materializes the session configuration for the exact /
// throughput enumerations under ctx.
func (s *Session) exactOptions(ctx context.Context) exact.Options {
	return exact.Options{Workers: s.cfg.workers, Ctx: ctx, Eval: s.ev, SuffixMemo: s.suffixMemo(), Recorder: s.cfg.recorder}
}

// SolveRequest states one bi-criteria query against the session's
// instance; it mirrors Problem minus the pipeline and platform.
type SolveRequest struct {
	// Objective selects the minimized criterion.
	Objective Objective
	// MaxLatency bounds the latency when minimizing failure probability
	// (0 or +Inf: unconstrained).
	MaxLatency float64
	// MaxFailProb bounds the failure probability when minimizing latency
	// (0 or 1: unconstrained).
	MaxFailProb float64
	// ForceHeuristic skips exact enumeration for this call only,
	// regardless of instance size — a per-request override of
	// WithForceHeuristic that lets a serving tier degrade a single
	// solve (e.g. while a circuit breaker on the exact route is open)
	// without building a second session.
	ForceHeuristic bool
}

// Solve routes the request to the strongest method for the platform class
// (the paper's Algorithms 1–4 when provably optimal, pruned exhaustive
// enumeration when small, heuristics otherwise). Under a canceled or
// expired context it returns the best feasible mapping found so far with
// Certainty == Partial; the error is non-nil only when no feasible
// mapping could be produced at all.
func (s *Session) Solve(ctx context.Context, req SolveRequest) (Result, error) {
	ctx, cancel := s.callCtx(ctx)
	defer cancel()
	opts := s.coreOptions()
	opts.ForceHeuristic = opts.ForceHeuristic || req.ForceHeuristic
	return core.SolveCtx(ctx, Problem{
		Pipeline:    s.pipe,
		Platform:    s.plat,
		Objective:   req.Objective,
		MaxLatency:  req.MaxLatency,
		MaxFailProb: req.MaxFailProb,
	}, opts)
}

// Pareto computes the latency/FP trade-off front: exhaustively on small
// instances, by annealing archive otherwise. A canceled call returns the
// non-dominated set of candidates visited so far graded Partial.
func (s *Session) Pareto(ctx context.Context) (*Front, Certainty, error) {
	ctx, cancel := s.callCtx(ctx)
	defer cancel()
	return core.ParetoCtx(ctx, s.pipe, s.plat, s.coreOptions())
}

// Evaluate computes both metrics of an interval mapping through the
// session's cached evaluator. The mapping is validated.
func (s *Session) Evaluate(m *Mapping) (Metrics, error) {
	return s.ev.EvaluateMapping(m)
}

// Bounds computes the polynomial two-sided bounds on the latency-optimal
// interval mapping of a Fully Heterogeneous platform (paper §4.1 leaves
// the exact complexity open).
func (s *Session) Bounds() (IntervalBounds, error) {
	return poly.IntervalLatencyBounds(s.pipe, s.plat)
}

// BeamSearchMinLatency runs the scalable beam-search heuristic for
// latency-minimal interval mappings (beamWidth ≤ 0 selects the default).
// On cancellation the best complete mapping reached so far is returned
// together with an error wrapping the context's cause.
func (s *Session) BeamSearchMinLatency(ctx context.Context, beamWidth int) (*Mapping, Metrics, error) {
	ctx, cancel := s.callCtx(ctx)
	defer cancel()
	res, err := heuristics.BeamSearchMinLatency(ctx, &heuristics.Problem{Pipe: s.pipe, Plat: s.plat, Eval: s.ev, Recorder: s.cfg.recorder}, beamWidth)
	if res.Mapping == nil {
		return nil, Metrics{}, err
	}
	return res.Mapping, res.Metrics, err
}

// Simulate executes a mapped workflow on the discrete-event simulator.
// In MonteCarlo mode a nil cfg.RNG is seeded from the session seed. The
// context only gates the start of the run (single runs are short); use
// MonteCarloCampaign for cancellable sweeps.
func (s *Session) Simulate(ctx context.Context, m *Mapping, cfg SimConfig) (SimResult, error) {
	ctx, cancel := s.callCtx(ctx)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return SimResult{}, fmt.Errorf("repro: simulate: %w", context.Cause(ctx))
	}
	if cfg.Mode == MonteCarlo && cfg.RNG == nil {
		cfg.RNG = rand.New(rand.NewSource(s.cfg.seed))
	}
	return sim.Run(s.pipe, s.plat, m, cfg)
}

// SimulateInjected executes the workflow under an explicit crash pattern
// (failed[u] = true kills processor u for the whole run).
func (s *Session) SimulateInjected(ctx context.Context, m *Mapping, cfg SimConfig, failed []bool) (SimResult, error) {
	ctx, cancel := s.callCtx(ctx)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return SimResult{}, fmt.Errorf("repro: simulate: %w", context.Cause(ctx))
	}
	return sim.RunInjected(s.pipe, s.plat, m, cfg, failed)
}

// MonteCarloCampaign runs trials independent Monte-Carlo simulations
// across the session's worker count and aggregates failure rate and
// latency statistics. A canceled campaign aggregates the trials actually
// executed (MCSummary.Trials reports how many) and returns them together
// with an error wrapping the context's cause.
func (s *Session) MonteCarloCampaign(ctx context.Context, m *Mapping, cfg SimConfig, trials int) (MCSummary, error) {
	ctx, cancel := s.callCtx(ctx)
	defer cancel()
	return sim.MonteCarloLatencyParallel(ctx, s.pipe, s.plat, m, cfg, trials, s.cfg.workers, s.cfg.seed)
}

// EstimateFailureProb estimates a mapping's failure probability by
// parallel Monte-Carlo sampling of crash patterns with deterministic
// per-worker RNG streams. A canceled estimate covers the trials actually
// performed and is returned with an error wrapping the context's cause.
func (s *Session) EstimateFailureProb(ctx context.Context, m *Mapping, trials int) (FPEstimate, error) {
	ctx, cancel := s.callCtx(ctx)
	defer cancel()
	return sim.EstimateFPParallel(ctx, s.plat, m, trials, s.cfg.workers, s.cfg.seed)
}

// Period computes the worst-case steady-state period (inverse throughput)
// of an interval mapping under the overlap model.
func (s *Session) Period(m *Mapping) (float64, error) {
	return throughput.PeriodOverlap(s.pipe, s.plat, m)
}

// MinPeriod exhaustively finds the RR mapping of minimum period with
// latency ≤ maxLatency and FP ≤ maxFailProb (small instances; use
// math.Inf(1) and 1 to leave a criterion unconstrained). On cancellation
// the best RR mapping found so far is returned with a non-nil error
// wrapping the context's cause.
func (s *Session) MinPeriod(ctx context.Context, maxLatency, maxFailProb float64) (TriResult, error) {
	ctx, cancel := s.callCtx(ctx)
	defer cancel()
	return throughput.MinPeriodUnderConstraints(s.pipe, s.plat, maxLatency, maxFailProb, s.exactOptions(ctx))
}

// GreedyRoundRobin splits bottleneck groups round-robin as long as the
// period improves within both constraints (scalable heuristic).
func (s *Session) GreedyRoundRobin(ctx context.Context, m *Mapping, maxLatency, maxFailProb float64) (TriResult, error) {
	ctx, cancel := s.callCtx(ctx)
	defer cancel()
	return throughput.GreedyRR(ctx, s.pipe, s.plat, m, maxLatency, maxFailProb)
}

// TriPareto enumerates the three-criteria Pareto front (latency, FP,
// period) over RR mappings of a small instance. A canceled enumeration
// returns the partial front together with a non-nil error wrapping the
// context's cause.
func (s *Session) TriPareto(ctx context.Context) (*TriFront, error) {
	ctx, cancel := s.callCtx(ctx)
	defer cancel()
	return throughput.TriPareto(s.pipe, s.plat, s.exactOptions(ctx))
}
