package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// Config tunes a Service. The zero value is ready to use.
type Config struct {
	// CacheSize caps the warm-session LRU (default 128).
	CacheSize int
	// DefaultDeadline bounds requests that carry no deadlineMillis of
	// their own (default 30s; negative disables the default).
	DefaultDeadline time.Duration
	// MaxBatch caps the problems accepted in one batch request
	// (default 64).
	MaxBatch int
	// BatchParallelism bounds how many problems of a batch solve
	// concurrently (default GOMAXPROCS).
	BatchParallelism int
	// MaxBodyBytes caps the accepted request body size (default 8 MiB);
	// oversized requests fail with 400 instead of being decoded in full.
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchParallelism <= 0 {
		c.BatchParallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Service is the HTTP solve service. Create it with New and mount it as
// an http.Handler; it is safe for concurrent use.
type Service struct {
	cfg      Config
	cache    *sessionCache
	mux      *http.ServeMux
	requests atomic.Int64
}

// New builds a Service with its routes mounted.
func New(cfg Config) *Service {
	s := &Service{
		cfg:   cfg.withDefaults(),
		cache: newSessionCache(cfg.withDefaults().CacheSize),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/solve/batch", s.handleBatch)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	hits, misses, evicted, size := s.cache.stats()
	writeJSON(w, http.StatusOK, Stats{
		Requests:     s.requests.Load(),
		CacheHits:    hits,
		CacheMisses:  misses,
		CacheSize:    size,
		CacheEvicted: evicted,
	})
}

func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	var spec SolveSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding solve request: %v", err)})
		return
	}
	writeJSON(w, http.StatusOK, s.solveOne(r.Context(), spec))
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	var batch BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&batch); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding batch request: %v", err)})
		return
	}
	if len(batch.Problems) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "batch carries no problems"})
		return
	}
	if len(batch.Problems) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("batch of %d exceeds the %d-problem cap", len(batch.Problems), s.cfg.MaxBatch)})
		return
	}
	results := make([]SolveResult, len(batch.Problems))
	sem := make(chan struct{}, s.cfg.BatchParallelism)
	var wg sync.WaitGroup
	for i, spec := range batch.Problems {
		i, spec := i, spec
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = s.solveOne(r.Context(), spec)
		}()
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

// solveOne answers one spec: session from the warm cache (or built and
// inserted), per-request deadline mapped to context, solver errors
// reported in-band.
func (s *Service) solveOne(ctx context.Context, spec SolveSpec) SolveResult {
	s.requests.Add(1)
	start := time.Now()
	finish := func(res SolveResult) SolveResult {
		res.ElapsedMillis = time.Since(start).Milliseconds()
		return res
	}
	if spec.Pipeline == nil || spec.Platform == nil {
		return finish(SolveResult{Error: "request needs both \"pipeline\" and \"platform\""})
	}
	var objective repro.Objective
	switch spec.Objective {
	case "minLatency":
		objective = repro.MinimizeLatency
	case "minFailureProb", "minFP", "":
		objective = repro.MinimizeFailureProb
	default:
		return finish(SolveResult{Error: fmt.Sprintf("unknown objective %q (want minLatency or minFailureProb)", spec.Objective)})
	}

	key, err := sessionKey(spec.Pipeline, spec.Platform, spec.Workers, spec.ExactBudget, spec.ForceHeuristic, spec.Seed)
	if err != nil {
		return finish(SolveResult{Error: fmt.Sprintf("hashing instance: %v", err)})
	}
	sess, hit, err := s.cache.getOrCreate(key, func() (*repro.Session, error) {
		opts := []repro.SessionOption{
			repro.WithWorkers(spec.Workers),
			repro.WithExactBudget(spec.ExactBudget),
			repro.WithForceHeuristic(spec.ForceHeuristic),
		}
		if spec.Seed != 0 {
			opts = append(opts, repro.WithSeed(spec.Seed))
		}
		return repro.NewSession(spec.Pipeline, spec.Platform, opts...)
	})
	if err != nil {
		return finish(SolveResult{Error: err.Error()})
	}

	deadline := s.cfg.DefaultDeadline
	if spec.DeadlineMillis > 0 {
		deadline = time.Duration(spec.DeadlineMillis) * time.Millisecond
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	res, err := sess.Solve(ctx, repro.SolveRequest{
		Objective:   objective,
		MaxLatency:  spec.MaxLatency,
		MaxFailProb: spec.MaxFailProb,
	})
	if err != nil {
		out := SolveResult{Error: err.Error(), CacheHit: hit}
		if errors.Is(err, repro.ErrInfeasible) {
			out.Error = "infeasible: " + err.Error()
		}
		return finish(out)
	}
	return finish(SolveResult{
		Mapping:     res.Mapping,
		Latency:     res.Metrics.Latency,
		FailureProb: res.Metrics.FailureProb,
		Certainty:   res.Certainty.String(),
		Method:      res.Method,
		Partial:     res.Certainty == repro.Partial,
		CacheHit:    hit,
	})
}
