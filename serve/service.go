package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro"
	"repro/internal/resilience"
	"repro/internal/telemetry"
)

// Config tunes a Service. The zero value is ready to use.
type Config struct {
	// CacheSize caps the warm-session LRU (default 128).
	CacheSize int
	// SolutionCacheSize caps the cross-request solution cache — completed
	// answers keyed by canonical instance hash, reused across processor
	// relabelings (default 256; negative disables the cache).
	SolutionCacheSize int
	// DefaultDeadline bounds requests that carry no deadlineMillis of
	// their own (default 30s; negative disables the default).
	DefaultDeadline time.Duration
	// MaxBatch caps the problems accepted in one batch request
	// (default 64).
	MaxBatch int
	// BatchParallelism bounds how many problems of a batch solve
	// concurrently (default GOMAXPROCS).
	BatchParallelism int
	// MaxBodyBytes caps the accepted request body size (default 8 MiB);
	// oversized requests fail with a structured 413 instead of being
	// decoded in full.
	MaxBodyBytes int64
	// MaxConcurrent bounds the POST requests served at once; the rest
	// queue (default 4 × GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds the POST requests waiting for a slot; past it
	// requests are shed with 429 (default 4 × MaxConcurrent).
	MaxQueue int
	// SolveLog, when non-nil, observes every completed solve (including
	// in-band errors) right before its response is written. Hook for
	// structured per-solve logging; keep it fast — it runs on the request
	// path, possibly concurrently.
	SolveLog func(SolveLogEntry)
}

// SolveLogEntry is one completed solve as seen by Config.SolveLog.
type SolveLogEntry struct {
	// N and M are the instance's stage and processor counts (0 when the
	// request failed before the instance was decoded).
	N, M int
	// Objective is the wire-format objective of the request.
	Objective string
	// Route, Method and Certainty mirror the SolveResult fields.
	Route, Method, Certainty string
	// Elapsed is the server-side solve time.
	Elapsed time.Duration
	// CacheHit, Coalesced, Cached, Degraded and Partial mirror the
	// SolveResult flags.
	CacheHit, Coalesced, Cached, Degraded, Partial bool
	// Err carries the in-band solver error, if any.
	Err string
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.SolutionCacheSize == 0 {
		c.SolutionCacheSize = 256
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchParallelism <= 0 {
		c.BatchParallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	return c
}

// Service is the HTTP solve service. Create it with New and mount it as
// an http.Handler; it is safe for concurrent use.
type Service struct {
	cfg     Config
	cache   *sessionCache
	mux     *http.ServeMux
	limiter *resilience.Limiter
	breaker *resilience.Breaker
	flight  resilience.Group[SolveResult]

	// solutions is the cross-request solution cache (nil when disabled):
	// completed answers keyed by canonical instance hash, looked up by
	// the singleflight leader and translated into each requester's
	// processor labeling at the response boundary.
	solutions *solutionCache

	// rec is the service-wide telemetry recorder: the serve-tier counters
	// below live in its registry, every warm session records its per-class
	// solve profiles into it, and the adaptive router reads those profiles
	// back. Exported via Recorder, /v1/stats and /metrics.
	rec            *telemetry.Recorder
	requests       *telemetry.Counter
	panics         *telemetry.Counter
	shed           *telemetry.Counter
	coalesced      *telemetry.Counter
	solves         *telemetry.Counter
	solutionHits   *telemetry.Counter
	solutionMisses *telemetry.Counter
	translations   *telemetry.Counter

	// solveGate, when non-nil, runs on the singleflight leader right
	// before the underlying session solve. Test seam for the chaos
	// harness (injected solver stalls); set it before serving.
	solveGate func(spec SolveSpec)
}

// New builds a Service with its routes mounted. All POST paths sit
// behind the admission middleware (bounded concurrency, bounded queue,
// deadline-aware shedding — see admit); the exact-escalation circuit
// breaker degrades repeated budget-blown solves to the heuristic route.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:   cfg,
		cache: newSessionCache(cfg.CacheSize),
		mux:   http.NewServeMux(),
		limiter: resilience.NewLimiter(resilience.LimiterConfig{
			MaxConcurrent: cfg.MaxConcurrent,
			MaxWaiting:    cfg.MaxQueue,
		}),
		breaker: resilience.NewBreaker(resilience.BreakerConfig{}),
		rec:     telemetry.NewRecorder(),
	}
	if cfg.SolutionCacheSize > 0 {
		s.solutions = newSolutionCache(cfg.SolutionCacheSize)
	}
	// Resolve the hot-path counters once; registry lookups afterwards are
	// read-locked map hits, but the request path shouldn't pay even that.
	s.requests = s.rec.Counter("serve_requests_total")
	s.panics = s.rec.Counter("serve_panics_total")
	s.shed = s.rec.Counter("serve_shed_total")
	s.coalesced = s.rec.Counter("serve_coalesced_total")
	s.solves = s.rec.Counter("serve_solves_total")
	s.solutionHits = s.rec.Counter("serve_solution_hits_total")
	s.solutionMisses = s.rec.Counter("serve_solution_misses_total")
	s.translations = s.rec.Counter("serve_translations_total")
	s.mux.HandleFunc("POST /v1/solve", s.admit(s.handleSolve))
	s.mux.HandleFunc("POST /v1/solve/batch", s.admit(s.handleBatch))
	s.mux.HandleFunc("POST /v1/remap/stream", s.admit(s.handleRemapStream))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Recorder exposes the service-wide telemetry recorder: serve-tier
// counters plus every warm session's per-class route latency profiles.
// Useful for pre-seeding profiles in tests and for embedding the service
// in a process that aggregates its own metrics.
func (s *Service) Recorder() *repro.Recorder { return s.rec }

// MetricsHandler returns the GET /metrics handler on its own, so callers
// can mount the Prometheus exposition on a separate (e.g. private)
// listener without exposing the solve API there.
func (s *Service) MetricsHandler() http.Handler {
	return http.HandlerFunc(s.handleMetrics)
}

// ServeHTTP implements http.Handler. Handler panics are recovered and
// answered with a structured 500 (best effort: a stream that already
// wrote its header keeps its status line), so one poisoned request never
// brings the server down; http.ErrAbortHandler is re-raised untouched.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.panics.Inc()
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: fmt.Sprintf("internal error: %v", rec)})
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// decodeRequest decodes the body under the service's size cap and writes
// the failure response itself: a structured 413 (with the cap echoed)
// when the body exceeds MaxBodyBytes, 400 on malformed JSON. It reports
// whether decoding succeeded.
func (s *Service) decodeRequest(w http.ResponseWriter, r *http.Request, what string, v any) bool {
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(v)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{
			Error:        fmt.Sprintf("%s body exceeds the %d-byte cap", what, tooBig.Limit),
			MaxBodyBytes: tooBig.Limit,
		})
		return false
	}
	writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding %s: %v", what, err)})
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
	// MaxBodyBytes echoes the request-size cap on 413 responses.
	MaxBodyBytes int64 `json:"maxBodyBytes,omitempty"`
	// RetryAfterMillis carries the load-derived retry hint on 429/503
	// admission sheds (the Retry-After header rounds it up to seconds).
	RetryAfterMillis int64 `json:"retryAfterMillis,omitempty"`
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	hits, misses, evicted, size := s.cache.stats()
	st := Stats{
		Requests:     s.requests.Load(),
		CacheHits:    hits,
		CacheMisses:  misses,
		CacheSize:    size,
		CacheEvicted: evicted,
		Panics:       s.panics.Load(),
		Shed:         s.shed.Load(),
		Coalesced:    s.coalesced.Load(),
		Solves:       s.solves.Load(),
		BreakerState: s.breaker.State().String(),
		BreakerTrips: s.breaker.Trips(),

		SolutionHits:   s.solutionHits.Load(),
		SolutionMisses: s.solutionMisses.Load(),
		Translations:   s.translations.Load(),
	}
	if s.solutions != nil {
		st.SolutionEvicted, st.SolutionSize = s.solutions.stats()
	}
	st.Engine = s.rec.CounterValues("exact_")
	for _, route := range telemetry.Routes() {
		if n := s.rec.RouteSkips(route); n > 0 {
			if st.RouteSkips == nil {
				st.RouteSkips = make(map[string]int64)
			}
			st.RouteSkips[route.String()] = n
		}
	}
	for _, snap := range s.rec.SolveStats() {
		if st.Latency == nil {
			st.Latency = make(map[string]map[string]RouteLatency)
		}
		class := snap.Class.String()
		if st.Latency[class] == nil {
			st.Latency[class] = make(map[string]RouteLatency)
		}
		st.Latency[class][snap.Route.String()] = RouteLatency{
			Count:     snap.Count,
			P50Millis: float64(snap.P50) / float64(time.Millisecond),
			P95Millis: float64(snap.P95) / float64(time.Millisecond),
			P99Millis: float64(snap.P99) / float64(time.Millisecond),
		}
	}
	writeJSON(w, http.StatusOK, st)
}

// syncGauges refreshes the registry gauges that mirror live state, so
// both exposition paths (/v1/stats renders them via its own fields,
// /metrics scrapes the registry) agree at read time.
func (s *Service) syncGauges() {
	_, _, _, size := s.cache.stats()
	s.rec.Gauge("serve_cache_sessions").Set(int64(size))
	s.rec.Gauge("serve_breaker_state").Set(int64(s.breaker.State()))
	s.rec.Gauge("serve_breaker_trips").Set(s.breaker.Trips())
	if s.solutions != nil {
		_, solSize := s.solutions.stats()
		s.rec.Gauge("serve_solution_cache_size").Set(int64(solSize))
	}
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.syncGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.rec.WritePrometheus(w)
}

func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	var spec SolveSpec
	if !s.decodeRequest(w, r, "solve request", &spec) {
		return
	}
	writeJSON(w, http.StatusOK, s.solveOne(r.Context(), spec))
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	var batch BatchRequest
	if !s.decodeRequest(w, r, "batch request", &batch) {
		return
	}
	if len(batch.Problems) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "batch carries no problems"})
		return
	}
	if len(batch.Problems) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("batch of %d exceeds the %d-problem cap", len(batch.Problems), s.cfg.MaxBatch)})
		return
	}
	results := make([]SolveResult, len(batch.Problems))
	sem := make(chan struct{}, s.cfg.BatchParallelism)
	ctx := r.Context()
	var wg sync.WaitGroup
fanout:
	for i, spec := range batch.Problems {
		// Waiting for a fan-out slot must not outlive the client: when
		// the request context dies (disconnect, deadline), stop spawning
		// solves and mark every remaining problem canceled in-band.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			for j := i; j < len(batch.Problems); j++ {
				results[j] = SolveResult{Error: fmt.Sprintf("canceled before solve: %v", context.Cause(ctx))}
			}
			break fanout
		}
		i, spec := i, spec
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = s.solveOne(ctx, spec)
		}()
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

// solveOne answers one spec: session from the warm cache (or built and
// inserted), per-request deadline mapped to context, solver errors
// reported in-band. Identical concurrent solves coalesce onto one
// underlying solver run (singleflight on the instance hash), and the
// exact-escalation circuit breaker degrades a train of budget-blown
// searches to the heuristic route instead of letting them pile up.
func (s *Service) solveOne(ctx context.Context, spec SolveSpec) SolveResult {
	s.requests.Inc()
	start := time.Now()
	finish := func(res SolveResult) SolveResult {
		elapsed := time.Since(start)
		res.ElapsedMillis = elapsed.Milliseconds()
		if logf := s.cfg.SolveLog; logf != nil {
			entry := SolveLogEntry{
				Objective: spec.Objective,
				Route:     res.Route,
				Method:    res.Method,
				Certainty: res.Certainty,
				Elapsed:   elapsed,
				CacheHit:  res.CacheHit,
				Coalesced: res.Coalesced,
				Cached:    res.Cached,
				Degraded:  res.Degraded,
				Partial:   res.Partial,
				Err:       res.Error,
			}
			if spec.Pipeline != nil {
				entry.N = spec.Pipeline.NumStages()
			}
			if spec.Platform != nil {
				entry.M = spec.Platform.NumProcs()
			}
			logf(entry)
		}
		return res
	}
	if spec.Pipeline == nil || spec.Platform == nil {
		return finish(SolveResult{Error: "request needs both \"pipeline\" and \"platform\""})
	}
	objective, err := parseObjective(spec.Objective)
	if err != nil {
		return finish(SolveResult{Error: err.Error()})
	}

	// Canonicalize the instance so every processor relabeling of one
	// platform collapses onto one warm session, one in-flight solve and
	// one stored answer. Canonicalization failures (invalid instances,
	// pathological symmetry past the refinement budget) fall back to the
	// raw-labeled path: invalid instances then fail session construction
	// with their original diagnostics, and valid-but-too-symmetric ones
	// are still solved — just without cross-relabeling sharing.
	var cn *repro.CanonicalInstance
	if c, cerr := repro.CanonicalizeInstance(spec.Pipeline, spec.Platform); cerr == nil {
		cn = c
	}

	sess, key, hit, err := s.session(spec, cn)
	if err != nil {
		return finish(SolveResult{Error: err.Error()})
	}

	// The solution-cache key covers everything that shapes the answer;
	// empty means this request bypasses the cache (disabled, or no
	// canonical form). key is the canonical session key here (cn != nil).
	solKey := ""
	if cn != nil && s.solutions != nil {
		solKey = solutionKey(key, objective, spec)
	}

	deadline := s.cfg.DefaultDeadline
	if spec.DeadlineMillis > 0 {
		deadline = time.Duration(spec.DeadlineMillis) * time.Millisecond
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	// Breaker-guarded exact escalation: while open, the request runs
	// the heuristic route regardless of instance size, so a train of
	// deadline-blown exact searches degrades instead of stacking up.
	forced, probing := false, false
	var token uint64
	if !spec.ForceHeuristic {
		if gen, ok := s.breaker.Allow(); ok {
			token, probing = gen, true
		} else {
			forced = true
		}
	}

	// Coalesce identical in-flight solves: the key is the warm-session
	// hash (instance + session options) plus everything else that shapes
	// the answer. Only the leader calls the solver; duplicates share its
	// result.
	flightKey := fmt.Sprintf("%s|%d|%g|%g|%d|%t",
		key, objective, spec.MaxLatency, spec.MaxFailProb, spec.DeadlineMillis, forced)
	leaderSolved := false
	res, shared, err := s.flight.Do(ctx, flightKey, func() (SolveResult, error) {
		// Cross-request solution cache, checked by the flight leader:
		// a hit still coalesces its concurrent duplicates, and a miss
		// leaves no stampede window between lookup and solve — exactly
		// one solver run per canonical key.
		if solKey != "" {
			if out, ok := s.solutions.get(solKey); ok {
				s.solutionHits.Inc()
				out.Cached = true
				return out, nil
			}
			s.solutionMisses.Inc()
		}
		leaderSolved = true
		s.solves.Inc()
		if gate := s.solveGate; gate != nil {
			gate(spec)
		}
		r, err := sess.Solve(ctx, repro.SolveRequest{
			Objective:      objective,
			MaxLatency:     spec.MaxLatency,
			MaxFailProb:    spec.MaxFailProb,
			ForceHeuristic: forced,
		})
		if err != nil {
			out := SolveResult{Error: err.Error(), Degraded: forced}
			if errors.Is(err, repro.ErrInfeasible) {
				out.Error = "infeasible: " + err.Error()
			}
			return out, nil
		}
		out := SolveResult{
			Mapping:     r.Mapping,
			Latency:     r.Metrics.Latency,
			FailureProb: r.Metrics.FailureProb,
			Certainty:   r.Certainty.String(),
			Method:      r.Method,
			Route:       r.Route,
			Partial:     r.Certainty == repro.Partial,
			Degraded:    forced,
		}
		// Only completed, undegraded answers are worth reusing across
		// requests: partial and breaker-forced ones reflect transient
		// load, not the instance. The stored mapping stays in canonical
		// labels; translation happens per request below.
		if solKey != "" && !out.Partial && !forced {
			s.solutions.put(solKey, out)
		}
		return out, nil
	})
	if probing {
		if leaderSolved {
			// A partial answer means the deadline fired mid-search — the
			// overload signal the breaker counts. In-band solver errors
			// (infeasibility, …) are instance properties, not overload.
			s.breaker.Record(token, err == nil && !res.Partial)
		} else {
			// Coalesced duplicate or solution-cache hit: the guarded work
			// never ran under this token; free the half-open probe slot.
			s.breaker.Cancel(token)
		}
	}
	if shared {
		s.coalesced.Inc()
	}
	if err != nil {
		// Only duplicates see errors here: their context died while
		// waiting, or the leader panicked mid-solve.
		return finish(SolveResult{Error: fmt.Sprintf("coalesced solve: %v", err), Coalesced: shared, CacheHit: hit})
	}
	res.CacheHit = hit
	res.Coalesced = shared
	if res.Mapping != nil && cn != nil {
		// The session solved in canonical labels; translate the mapping
		// into this request's processor ids. ToOriginal clones, so
		// coalesced sharers and cached answers never alias a mapping.
		if !cn.IsIdentity() {
			s.translations.Inc()
		}
		res.Mapping = cn.ToOriginal(res.Mapping)
	}
	return finish(res)
}

// parseObjective maps the wire objective to the library's enum.
func parseObjective(name string) (repro.Objective, error) {
	switch name {
	case "minLatency":
		return repro.MinimizeLatency, nil
	case "minFailureProb", "minFP", "":
		return repro.MinimizeFailureProb, nil
	default:
		return 0, fmt.Errorf("unknown objective %q (want minLatency or minFailureProb)", name)
	}
}

// session returns the warm session for the spec's instance and tuning
// (building and caching it on a miss) together with the instance hash
// used as the cache key.
//
// With a canonical form in hand, the session is keyed by — and built on —
// the canonical instance, so every relabeling of one platform warms the
// same session and the solver runs in canonical labels (solveOne
// translates mappings back per request). Without one (the streaming
// re-mapper, which emits requester-labeled processor ids on the wire, or
// the canonicalization fallback) the key is the raw instance JSON hash
// and labels pass through untouched.
func (s *Service) session(spec SolveSpec, cn *repro.CanonicalInstance) (*repro.Session, string, bool, error) {
	var key string
	if cn != nil {
		key = canonicalSessionKey(cn.Bytes, spec.Workers, spec.ExactBudget, spec.ForceHeuristic, spec.Seed)
	} else {
		var err error
		key, err = sessionKey(spec.Pipeline, spec.Platform, spec.Workers, spec.ExactBudget, spec.ForceHeuristic, spec.Seed)
		if err != nil {
			return nil, "", false, fmt.Errorf("hashing instance: %w", err)
		}
	}
	sess, hit, err := s.cache.getOrCreate(key, func() (*repro.Session, error) {
		// Materialize the canonical relabeling only on a build — a cache
		// hit must not pay the O(m²) platform copy.
		p, pl := spec.Pipeline, spec.Platform
		if cn != nil {
			p, pl = cn.Pipeline(), cn.Platform()
		}
		opts := []repro.SessionOption{
			repro.WithWorkers(spec.Workers),
			repro.WithExactBudget(spec.ExactBudget),
			repro.WithForceHeuristic(spec.ForceHeuristic),
			// Every warm session shares the service recorder: solves feed
			// the per-class route profiles, and the adaptive router reads
			// them back to skip routes whose warm p95 cannot fit a
			// request's remaining deadline budget.
			repro.WithRecorder(s.rec),
		}
		if spec.Seed != 0 {
			opts = append(opts, repro.WithSeed(spec.Seed))
		}
		return repro.NewSession(p, pl, opts...)
	})
	return sess, key, hit, err
}
