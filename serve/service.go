package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// Config tunes a Service. The zero value is ready to use.
type Config struct {
	// CacheSize caps the warm-session LRU (default 128).
	CacheSize int
	// DefaultDeadline bounds requests that carry no deadlineMillis of
	// their own (default 30s; negative disables the default).
	DefaultDeadline time.Duration
	// MaxBatch caps the problems accepted in one batch request
	// (default 64).
	MaxBatch int
	// BatchParallelism bounds how many problems of a batch solve
	// concurrently (default GOMAXPROCS).
	BatchParallelism int
	// MaxBodyBytes caps the accepted request body size (default 8 MiB);
	// oversized requests fail with a structured 413 instead of being
	// decoded in full.
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchParallelism <= 0 {
		c.BatchParallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Service is the HTTP solve service. Create it with New and mount it as
// an http.Handler; it is safe for concurrent use.
type Service struct {
	cfg      Config
	cache    *sessionCache
	mux      *http.ServeMux
	requests atomic.Int64
	panics   atomic.Int64
}

// New builds a Service with its routes mounted.
func New(cfg Config) *Service {
	s := &Service{
		cfg:   cfg.withDefaults(),
		cache: newSessionCache(cfg.withDefaults().CacheSize),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/solve/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/remap/stream", s.handleRemapStream)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler. Handler panics are recovered and
// answered with a structured 500 (best effort: a stream that already
// wrote its header keeps its status line), so one poisoned request never
// brings the server down; http.ErrAbortHandler is re-raised untouched.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.panics.Add(1)
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: fmt.Sprintf("internal error: %v", rec)})
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// decodeRequest decodes the body under the service's size cap and writes
// the failure response itself: a structured 413 (with the cap echoed)
// when the body exceeds MaxBodyBytes, 400 on malformed JSON. It reports
// whether decoding succeeded.
func (s *Service) decodeRequest(w http.ResponseWriter, r *http.Request, what string, v any) bool {
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(v)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{
			Error:        fmt.Sprintf("%s body exceeds the %d-byte cap", what, tooBig.Limit),
			MaxBodyBytes: tooBig.Limit,
		})
		return false
	}
	writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding %s: %v", what, err)})
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
	// MaxBodyBytes echoes the request-size cap on 413 responses.
	MaxBodyBytes int64 `json:"maxBodyBytes,omitempty"`
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	hits, misses, evicted, size := s.cache.stats()
	writeJSON(w, http.StatusOK, Stats{
		Requests:     s.requests.Load(),
		CacheHits:    hits,
		CacheMisses:  misses,
		CacheSize:    size,
		CacheEvicted: evicted,
		Panics:       s.panics.Load(),
	})
}

func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	var spec SolveSpec
	if !s.decodeRequest(w, r, "solve request", &spec) {
		return
	}
	writeJSON(w, http.StatusOK, s.solveOne(r.Context(), spec))
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	var batch BatchRequest
	if !s.decodeRequest(w, r, "batch request", &batch) {
		return
	}
	if len(batch.Problems) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "batch carries no problems"})
		return
	}
	if len(batch.Problems) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("batch of %d exceeds the %d-problem cap", len(batch.Problems), s.cfg.MaxBatch)})
		return
	}
	results := make([]SolveResult, len(batch.Problems))
	sem := make(chan struct{}, s.cfg.BatchParallelism)
	var wg sync.WaitGroup
	for i, spec := range batch.Problems {
		i, spec := i, spec
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = s.solveOne(r.Context(), spec)
		}()
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

// solveOne answers one spec: session from the warm cache (or built and
// inserted), per-request deadline mapped to context, solver errors
// reported in-band.
func (s *Service) solveOne(ctx context.Context, spec SolveSpec) SolveResult {
	s.requests.Add(1)
	start := time.Now()
	finish := func(res SolveResult) SolveResult {
		res.ElapsedMillis = time.Since(start).Milliseconds()
		return res
	}
	if spec.Pipeline == nil || spec.Platform == nil {
		return finish(SolveResult{Error: "request needs both \"pipeline\" and \"platform\""})
	}
	objective, err := parseObjective(spec.Objective)
	if err != nil {
		return finish(SolveResult{Error: err.Error()})
	}

	sess, hit, err := s.session(spec)
	if err != nil {
		return finish(SolveResult{Error: err.Error()})
	}

	deadline := s.cfg.DefaultDeadline
	if spec.DeadlineMillis > 0 {
		deadline = time.Duration(spec.DeadlineMillis) * time.Millisecond
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	res, err := sess.Solve(ctx, repro.SolveRequest{
		Objective:   objective,
		MaxLatency:  spec.MaxLatency,
		MaxFailProb: spec.MaxFailProb,
	})
	if err != nil {
		out := SolveResult{Error: err.Error(), CacheHit: hit}
		if errors.Is(err, repro.ErrInfeasible) {
			out.Error = "infeasible: " + err.Error()
		}
		return finish(out)
	}
	return finish(SolveResult{
		Mapping:     res.Mapping,
		Latency:     res.Metrics.Latency,
		FailureProb: res.Metrics.FailureProb,
		Certainty:   res.Certainty.String(),
		Method:      res.Method,
		Partial:     res.Certainty == repro.Partial,
		CacheHit:    hit,
	})
}

// parseObjective maps the wire objective to the library's enum.
func parseObjective(name string) (repro.Objective, error) {
	switch name {
	case "minLatency":
		return repro.MinimizeLatency, nil
	case "minFailureProb", "minFP", "":
		return repro.MinimizeFailureProb, nil
	default:
		return 0, fmt.Errorf("unknown objective %q (want minLatency or minFailureProb)", name)
	}
}

// session returns the warm session for the spec's instance and tuning,
// building and caching it on a miss.
func (s *Service) session(spec SolveSpec) (*repro.Session, bool, error) {
	key, err := sessionKey(spec.Pipeline, spec.Platform, spec.Workers, spec.ExactBudget, spec.ForceHeuristic, spec.Seed)
	if err != nil {
		return nil, false, fmt.Errorf("hashing instance: %w", err)
	}
	return s.cache.getOrCreate(key, func() (*repro.Session, error) {
		opts := []repro.SessionOption{
			repro.WithWorkers(spec.Workers),
			repro.WithExactBudget(spec.ExactBudget),
			repro.WithForceHeuristic(spec.ForceHeuristic),
		}
		if spec.Seed != 0 {
			opts = append(opts, repro.WithSeed(spec.Seed))
		}
		return repro.NewSession(spec.Pipeline, spec.Platform, opts...)
	})
}
