package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/workload"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdmissionShedsQueueOverflow fills the single concurrency slot and
// the single queue position, then asserts the next request is shed with
// a structured 429 + Retry-After before any solver work, and that the
// stalled requests complete normally once the slot frees.
func TestAdmissionShedsQueueOverflow(t *testing.T) {
	svc := New(Config{MaxConcurrent: 1, MaxQueue: 1})
	gate := make(chan struct{})
	svc.solveGate = func(SolveSpec) { <-gate }
	srv := httptest.NewServer(svc)
	defer srv.Close()

	status := make(chan int, 2)
	// A takes the slot and stalls inside the solver gate.
	go func() {
		resp := postJSON(t, srv, "/v1/solve", fig5Spec(t, ""))
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	waitUntil(t, "request A to hold the slot", func() bool { return svc.limiter.Stats().InUse == 1 })

	// B fills the one queue position.
	go func() {
		resp := postJSON(t, srv, "/v1/solve", fig5Spec(t, `, "seed": 7`))
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	waitUntil(t, "request B to queue", func() bool { return svc.limiter.Stats().Waiting == 1 })

	// C finds the queue full: shed up front.
	resp := postJSON(t, srv, "/v1/solve", fig5Spec(t, `, "seed": 9`))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("shed response carries no Retry-After header")
	}
	shedBody := decodeBody[errorBody](t, resp)
	if !strings.Contains(shedBody.Error, "overloaded") {
		t.Errorf("shed error = %q, want an overloaded message", shedBody.Error)
	}
	if shedBody.RetryAfterMillis < 1 {
		t.Errorf("retryAfterMillis = %d, want >= 1", shedBody.RetryAfterMillis)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if code := <-status; code != http.StatusOK {
			t.Errorf("stalled request finished with %d, want 200", code)
		}
	}
	stats := decodeBody[Stats](t, mustGet(t, srv, "/v1/stats"))
	if stats.Shed != 1 {
		t.Errorf("stats.Shed = %d, want 1", stats.Shed)
	}
	if stats.Requests != 2 {
		t.Errorf("stats.Requests = %d, want 2 (the shed request must not count)", stats.Requests)
	}
}

// TestCoalescedSolvesShareOneSolve piles four identical solves onto one
// in-flight computation and asserts exactly one underlying solver run.
func TestCoalescedSolvesShareOneSolve(t *testing.T) {
	svc := New(Config{MaxConcurrent: 8, MaxQueue: 8})
	gate := make(chan struct{})
	svc.solveGate = func(SolveSpec) { <-gate }
	srv := httptest.NewServer(svc)
	defer srv.Close()

	// Reconstruct the flight key solveOne derives for the fig5 request:
	// the session key is canonical now, so relabeled copies of fig5 would
	// land on this same flight.
	p, pl := workload.Fig5()
	cn, err := repro.CanonicalizeInstance(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	key := canonicalSessionKey(cn.Bytes, 0, 0, false, 0)
	objective, err := parseObjective("minFailureProb")
	if err != nil {
		t.Fatal(err)
	}
	flightKey := fmt.Sprintf("%s|%d|%g|%g|%d|%t", key, objective, 22.0, 0.0, int64(0), false)

	const callers = 4
	results := make(chan SolveResult, callers)
	for i := 0; i < callers; i++ {
		go func() {
			resp := postJSON(t, srv, "/v1/solve", fig5Spec(t, ""))
			results <- decodeBody[SolveResult](t, resp)
		}()
	}
	// Wait for the leader plus all three duplicates to be registered on
	// the flight before releasing the solver.
	waitUntil(t, "four callers on one flight", func() bool { return svc.flight.Inflight(flightKey) == callers })
	close(gate)

	coalesced := 0
	for i := 0; i < callers; i++ {
		res := <-results
		if res.Error != "" {
			t.Fatalf("solver error: %s", res.Error)
		}
		if res.Mapping == nil {
			t.Fatal("result carries no mapping")
		}
		if res.Coalesced {
			coalesced++
		}
	}
	if coalesced != callers-1 {
		t.Errorf("coalesced results = %d, want %d", coalesced, callers-1)
	}
	stats := decodeBody[Stats](t, mustGet(t, srv, "/v1/stats"))
	if stats.Solves != 1 {
		t.Errorf("stats.Solves = %d, want 1 (identical concurrent solves must share one run)", stats.Solves)
	}
	if stats.Coalesced != int64(callers-1) {
		t.Errorf("stats.Coalesced = %d, want %d", stats.Coalesced, callers-1)
	}
	if stats.Requests != callers {
		t.Errorf("stats.Requests = %d, want %d", stats.Requests, callers)
	}
}

// TestBreakerDegradesExactEscalation drives five straight budget-blown
// (partial) solves through the breaker, then asserts the next solve is
// degraded to the heuristic route with the breaker open.
func TestBreakerDegradesExactEscalation(t *testing.T) {
	svc := New(Config{})
	srv := httptest.NewServer(svc)
	defer srv.Close()

	// Five consecutive partial answers: each counts as a breaker failure
	// (the deadline fired mid-search), hitting the default threshold.
	for i := 0; i < 5; i++ {
		resp := postJSON(t, srv, "/v1/solve", hardInstanceDoc(t, 1))
		res := decodeBody[SolveResult](t, resp)
		if res.Error != "" {
			t.Fatalf("request %d: %s", i, res.Error)
		}
		if !res.Partial {
			t.Fatalf("request %d should be partial under a 1ms deadline: %+v", i, res)
		}
		if res.Degraded {
			t.Fatalf("request %d degraded before the breaker tripped", i)
		}
	}
	stats := decodeBody[Stats](t, mustGet(t, srv, "/v1/stats"))
	if stats.BreakerState != "open" {
		t.Fatalf("breakerState = %q after 5 partials, want open", stats.BreakerState)
	}
	if stats.BreakerTrips != 1 {
		t.Errorf("breakerTrips = %d, want 1", stats.BreakerTrips)
	}

	// With the breaker open, the same request degrades to the heuristic
	// route — and the fast fig5 instance degrades too: the breaker guards
	// the shared CPU, not one instance.
	res := decodeBody[SolveResult](t, postJSON(t, srv, "/v1/solve", hardInstanceDoc(t, 1)))
	if !res.Degraded {
		t.Errorf("open breaker must force the heuristic route: %+v", res)
	}
	res = decodeBody[SolveResult](t, postJSON(t, srv, "/v1/solve", fig5Spec(t, "")))
	if res.Error != "" {
		t.Fatalf("degraded fig5 solve failed: %s", res.Error)
	}
	if !res.Degraded {
		t.Errorf("open breaker must degrade every exact-eligible solve: %+v", res)
	}
	if res.Mapping == nil {
		t.Error("degraded solve must still produce a mapping")
	}
}

// TestBatchCancelStopsSpawning cancels a batch request while its first
// problem holds the only fan-out slot, and asserts the handler returns
// (no deadlock on the semaphore) with the remaining problems marked
// canceled in-band instead of solved.
func TestBatchCancelStopsSpawning(t *testing.T) {
	svc := New(Config{BatchParallelism: 1})
	var once sync.Once
	entered := make(chan struct{})
	gate := make(chan struct{})
	svc.solveGate = func(SolveSpec) {
		once.Do(func() { close(entered) })
		<-gate
	}

	batch := fmt.Sprintf(`{"problems": [%s, %s, %s]}`, fig5Spec(t, ""), fig5Spec(t, ""), fig5Spec(t, ""))
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/solve/batch", bytes.NewReader([]byte(batch))).WithContext(ctx)
	rec := httptest.NewRecorder()

	go func() {
		<-entered // problem 0 holds the slot and is stalled in the solver
		cancel()
		// Give the fan-out loop time to observe the dead context at the
		// problem-1 semaphore wait (the slot is still held, so the cancel
		// arm is the only runnable one) before letting problem 0 finish.
		time.Sleep(100 * time.Millisecond)
		close(gate)
	}()
	done := make(chan struct{})
	go func() {
		svc.handleBatch(rec, req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handleBatch did not return after cancellation: fan-out blocked on the semaphore")
	}

	resp := rec.Result()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	out := decodeBody[BatchResponse](t, resp)
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	for i := 1; i < 3; i++ {
		if !strings.Contains(out.Results[i].Error, "canceled before solve") {
			t.Errorf("result %d = %+v, want an in-band canceled-before-solve error", i, out.Results[i])
		}
	}
}
