package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// TestSessionCacheConcurrentHammer hammers getOrCreate from many
// goroutines (run under -race in CI) and asserts the cache invariants:
// every lookup counts exactly one hit or miss, the size never exceeds
// the capacity, and — with capacity >= distinct keys — each key is built
// exactly once no matter how many misses pile up concurrently.
func TestSessionCacheConcurrentHammer(t *testing.T) {
	const (
		keys       = 4
		goroutines = 16
		iters      = 200
	)
	cache := newSessionCache(8)
	var builds [keys]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g + i) % keys
				sess, _, err := cache.getOrCreate(fmt.Sprintf("key-%d", k), func() (*repro.Session, error) {
					builds[k].Add(1)
					// Widen the window in which concurrent misses for the
					// same key race to build.
					time.Sleep(time.Millisecond)
					return &repro.Session{}, nil
				})
				if err != nil {
					t.Errorf("getOrCreate: %v", err)
					return
				}
				if sess == nil {
					t.Error("getOrCreate returned a nil session")
					return
				}
			}
		}(g)
	}
	wg.Wait()

	hits, misses, evicted, size := cache.stats()
	if total := hits + misses; total != goroutines*iters {
		t.Errorf("hits+misses = %d, want %d (every lookup counts exactly once)", total, goroutines*iters)
	}
	if size > 8 {
		t.Errorf("size = %d exceeds capacity 8", size)
	}
	if evicted != 0 {
		t.Errorf("evicted = %d, want 0 with capacity >= keys", evicted)
	}
	for k := range builds {
		if n := builds[k].Load(); n != 1 {
			t.Errorf("key %d built %d times, want exactly 1 (concurrent misses must coalesce)", k, n)
		}
	}
}

// TestSessionCacheEvictionUnderPressure keeps the capacity below the key
// count: the size bound and the lookup accounting must hold even while
// entries churn, and every key must have been built at least once.
func TestSessionCacheEvictionUnderPressure(t *testing.T) {
	const (
		keys       = 6
		capacity   = 2
		goroutines = 8
		iters      = 100
	)
	cache := newSessionCache(capacity)
	var builds [keys]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g*7 + i) % keys
				_, _, err := cache.getOrCreate(fmt.Sprintf("key-%d", k), func() (*repro.Session, error) {
					builds[k].Add(1)
					return &repro.Session{}, nil
				})
				if err != nil {
					t.Errorf("getOrCreate: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	hits, misses, evicted, size := cache.stats()
	if total := hits + misses; total != goroutines*iters {
		t.Errorf("hits+misses = %d, want %d", total, goroutines*iters)
	}
	if size > capacity {
		t.Errorf("size = %d exceeds capacity %d", size, capacity)
	}
	if evicted == 0 {
		t.Error("expected evictions with capacity < keys")
	}
	for k := range builds {
		if builds[k].Load() == 0 {
			t.Errorf("key %d never built", k)
		}
	}
}
