package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/workload"
)

// postStream posts a RemapSpec and decodes the NDJSON response into
// records.
func postStream(t *testing.T, srv *httptest.Server, body []byte) (int, []RemapEvent) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+"/v1/remap/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var events []RemapEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev RemapEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("record %d is not JSON: %v\n%s", len(events), err, sc.Text())
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, events
}

func fig5RemapSpec(t *testing.T, extra string) []byte {
	t.Helper()
	p, pl := workload.Fig5()
	pj, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	plj, err := json.Marshal(pl)
	if err != nil {
		t.Fatal(err)
	}
	return []byte(fmt.Sprintf(`{"pipeline": %s, "platform": %s, "objective": "minFailureProb", "maxLatency": 22%s}`, pj, plj, extra))
}

func TestRemapStreamEndToEnd(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()

	// Crash processors 0 and 2, then recover 0. The service solves the
	// deployed mapping itself.
	spec := fig5RemapSpec(t, `, "events": [
		{"seq": 0, "time": 1, "proc": 0, "kind": 0},
		{"seq": 1, "time": 2, "proc": 2, "kind": 0},
		{"seq": 2, "time": 3, "proc": 0, "kind": 1}
	]`)
	status, events := postStream(t, srv, spec)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if len(events) != 4 {
		t.Fatalf("got %d records, want 3 repairs + 1 terminal", len(events))
	}
	down := map[int]bool{}
	for i, ev := range events[:3] {
		if ev.Error != "" {
			t.Fatalf("record %d carries error %q", i, ev.Error)
		}
		if ev.Seq != i {
			t.Errorf("record %d has seq %d", i, ev.Seq)
		}
		if ev.Mapping == nil {
			t.Fatalf("record %d has no mapping", i)
		}
		if ev.Event.Kind == 0 {
			down[ev.Event.Proc] = true
		} else {
			delete(down, ev.Event.Proc)
		}
		for _, procs := range ev.Mapping.Alloc {
			for _, u := range procs {
				if down[u] {
					t.Errorf("record %d assigns failed processor %d", i, u)
				}
			}
		}
	}
	final := events[3]
	if !final.Done || final.Events != 3 {
		t.Errorf("terminal record = %+v, want done with 3 events", final)
	}
	// After recovering processor 0, only 2 is down.
	if got := events[2].Down; len(got) != 1 || got[0] != 2 {
		t.Errorf("final down set = %v, want [2]", got)
	}
}

func TestRemapStreamRandomCampaignDeterministic(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()

	spec := fig5RemapSpec(t, `, "randomEvents": 8, "seed": 3`)
	_, a := postStream(t, srv, spec)
	_, b := postStream(t, srv, spec)
	if len(a) != 9 || len(b) != 9 {
		t.Fatalf("got %d and %d records, want 9 each", len(a), len(b))
	}
	for i := range a[:8] {
		aj, _ := json.Marshal(a[i].Mapping)
		bj, _ := json.Marshal(b[i].Mapping)
		if !bytes.Equal(aj, bj) {
			t.Errorf("record %d differs across identical seeded campaigns", i)
		}
	}
}

func TestRemapStreamBadRequests(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()

	// Regression: random campaigns on degenerate platforms used to reach
	// the schedule generator before any validation and spin a handler
	// goroutine forever. They must be rejected up front (and the requests
	// below must all return promptly).
	p, _ := workload.Fig5()
	pj, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	oneProc := []byte(fmt.Sprintf(`{"pipeline": %s, "platform": {"speed":[1],"failProb":[0.1],"b":[[0]],"bIn":[1],"bOut":[1]}, "randomEvents": 4}`, pj))
	// An invalid platform never reaches the handler: Platform.UnmarshalJSON
	// validates at decode time, so this 400s in the decoder.
	emptyPlat := []byte(fmt.Sprintf(`{"pipeline": %s, "platform": {"speed":[]}, "randomEvents": 4}`, pj))

	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"malformed JSON", []byte("{nope"), http.StatusBadRequest},
		{"no schedule", fig5RemapSpec(t, ""), http.StatusBadRequest},
		{"bad processor id", fig5RemapSpec(t, `, "events": [{"proc": 99, "kind": 0}]`), http.StatusBadRequest},
		{"missing instance", []byte(`{"randomEvents": 3}`), http.StatusBadRequest},
		{"random campaign on 1 processor", oneProc, http.StatusBadRequest},
		{"random campaign on invalid platform", emptyPlat, http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, _ := postStream(t, srv, tc.body)
		if status != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, status, tc.want)
		}
	}
}

func TestOversizedBodyReturnsStructured413(t *testing.T) {
	srv := httptest.NewServer(New(Config{MaxBodyBytes: 256}))
	defer srv.Close()

	big := []byte(fmt.Sprintf(`{"pipeline": {"w": [%s1], "delta": []}}`, strings.Repeat("1, ", 300)))
	for _, path := range []string{"/v1/solve", "/v1/solve/batch", "/v1/remap/stream"} {
		resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status = %d, want 413", path, resp.StatusCode)
		}
		var body errorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: 413 body is not JSON: %v", path, err)
		}
		resp.Body.Close()
		if body.Error == "" || body.MaxBodyBytes != 256 {
			t.Errorf("%s: 413 body = %+v, want error text and the 256-byte cap", path, body)
		}
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	s := New(Config{})
	// Wire a panicking route through the service's own mux so the
	// request passes the real recovery path.
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("500 body is not JSON: %v", err)
	}
	if !strings.Contains(body.Error, "kaboom") {
		t.Errorf("500 body = %+v, want the panic value", body)
	}

	// The server survives and keeps answering; the panic is counted.
	st := decodeBody[Stats](t, mustGet(t, srv, "/v1/stats"))
	if st.Panics != 1 {
		t.Errorf("stats.panics = %d, want 1", st.Panics)
	}
}
