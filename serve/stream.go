package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"repro"
)

// POST /v1/remap/stream — failure-reactive re-mapping as a stream.
//
// The request carries the instance, an optional deployed mapping, and a
// fault schedule (explicit events or a seeded random campaign). The
// response is newline-delimited JSON (application/x-ndjson), flushed
// after every record: one RemapEvent per fault event as its repair
// completes, then a terminal record with "done": true. Errors after the
// stream has started arrive in-band as a record carrying "error" (the
// HTTP status is already committed).
//
// Consumers should treat a dropped connection as retryable: reconnect
// with exponential backoff and resubmit the remaining schedule, using
// the last received record's down-processor set as the starting failure
// state (see docs/api.md for the full reconnect recipe).

// RemapSpec is the request of POST /v1/remap/stream.
type RemapSpec struct {
	// Pipeline and Platform define the instance (same encodings as
	// SolveSpec).
	Pipeline *repro.Pipeline `json:"pipeline"`
	Platform *repro.Platform `json:"platform"`
	// Objective is "minFailureProb" (default) or "minLatency"; the other
	// criterion is bounded by MaxLatency / MaxFailProb.
	Objective   string  `json:"objective,omitempty"`
	MaxLatency  float64 `json:"maxLatency,omitempty"`
	MaxFailProb float64 `json:"maxFailProb,omitempty"`
	// Start is the deployed mapping the campaign starts from. When
	// absent, the service solves the instance first and starts from that
	// optimum (the initial solve shares the stream deadline).
	Start *repro.Mapping `json:"start,omitempty"`
	// Events is the fault schedule to replay, in time order.
	Events repro.FaultSchedule `json:"events,omitempty"`
	// RandomEvents, when Events is empty, generates a seeded stochastic
	// campaign of this many crash/recovery events instead.
	RandomEvents int `json:"randomEvents,omitempty"`
	// RepairDeadlineMillis caps each per-event repair (0 = the
	// controller default, 50ms). Repairs past it degrade to the best
	// mapping found, graded partial.
	RepairDeadlineMillis int64 `json:"repairDeadlineMillis,omitempty"`
	// DeadlineMillis caps the whole stream (0 = the service default).
	DeadlineMillis int64 `json:"deadlineMillis,omitempty"`

	// Session-level tuning (participates in the warm-session cache key).
	// ExactBudget also gates the controller's per-event exact escalation
	// (0 = the controller default; negative disables escalation).
	Workers        int     `json:"workers,omitempty"`
	ExactBudget    float64 `json:"exactBudget,omitempty"`
	ForceHeuristic bool    `json:"forceHeuristic,omitempty"`
	Seed           int64   `json:"seed,omitempty"`
}

// RemapEvent is one NDJSON record of the stream: a repair (per fault
// event), or the terminal summary when Done is true.
type RemapEvent struct {
	// Seq numbers the stream's records from 0.
	Seq int `json:"seq"`
	// Event is the fault event that triggered this repair (absent on the
	// terminal record).
	Event *repro.FaultEvent `json:"event,omitempty"`
	// Mapping is the mapping installed after the event; it never assigns
	// a failed processor, except on an all-processors-failed hold record
	// (Method reports the hold), where the last mapping is kept until a
	// recovery arrives.
	Mapping *repro.Mapping `json:"mapping,omitempty"`
	// Latency and FailureProb are the installed mapping's metrics.
	Latency     float64 `json:"latency,omitempty"`
	FailureProb float64 `json:"failureProb,omitempty"`
	// Certainty grades the repair ("heuristic", exact grades after
	// escalation, "partial (canceled)" past the repair deadline).
	Certainty string `json:"certainty,omitempty"`
	// Method names the repair route taken.
	Method string `json:"method,omitempty"`
	// Changed is false when the event required no re-mapping.
	Changed bool `json:"changed,omitempty"`
	// Violation is set when the configured bound can no longer be met on
	// the surviving platform (the mapping is the best degraded answer).
	Violation *repro.RemapViolation `json:"violation,omitempty"`
	// Down lists the processors failed after this event.
	Down []int `json:"down,omitempty"`
	// RepairMicros is the server-side repair time for this event.
	RepairMicros int64 `json:"repairMicros,omitempty"`
	// Done marks the terminal record; Events and ElapsedMillis summarize
	// the campaign.
	Done          bool  `json:"done,omitempty"`
	Events        int   `json:"events,omitempty"`
	ElapsedMillis int64 `json:"elapsedMillis,omitempty"`
	// Error reports an in-band failure (stream already committed).
	Error string `json:"error,omitempty"`
}

func (s *Service) handleRemapStream(w http.ResponseWriter, r *http.Request) {
	var spec RemapSpec
	if !s.decodeRequest(w, r, "remap request", &spec) {
		return
	}
	s.requests.Inc()
	if spec.Pipeline == nil || spec.Platform == nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "request needs both \"pipeline\" and \"platform\""})
		return
	}
	objective, err := parseObjective(spec.Objective)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	// Create (and thereby validate) the session before touching the fault
	// schedule: schedule generation must only ever see a platform that
	// passed validation.
	// The stream stays on the raw-labeled session path (cn == nil): every
	// emitted mapping and fault id must be in the requester's processor
	// labeling, and repairs are stateful per-platform anyway.
	sess, _, _, err := s.session(SolveSpec{
		Pipeline: spec.Pipeline, Platform: spec.Platform,
		Workers: spec.Workers, ExactBudget: spec.ExactBudget,
		ForceHeuristic: spec.ForceHeuristic, Seed: spec.Seed,
	}, nil)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: err.Error()})
		return
	}
	m := spec.Platform.NumProcs()
	schedule := spec.Events
	if len(schedule) == 0 {
		if spec.RandomEvents <= 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "request needs \"events\" or a positive \"randomEvents\""})
			return
		}
		if m < 2 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "\"randomEvents\" campaigns need a platform with at least 2 processors"})
			return
		}
		seed := spec.Seed
		if seed == 0 {
			seed = 1
		}
		schedule = repro.NewRandomFaultSchedule(rand.New(rand.NewSource(seed)), m, repro.RandomFaultConfig{Events: spec.RandomEvents})
	}
	if err := schedule.Validate(m); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("invalid fault schedule: %v", err)})
		return
	}

	ctx := r.Context()
	deadline := s.cfg.DefaultDeadline
	if spec.DeadlineMillis > 0 {
		deadline = time.Duration(spec.DeadlineMillis) * time.Millisecond
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	start := spec.Start
	if start == nil {
		res, err := sess.Solve(ctx, repro.SolveRequest{
			Objective:   objective,
			MaxLatency:  spec.MaxLatency,
			MaxFailProb: spec.MaxFailProb,
		})
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: fmt.Sprintf("solving the starting mapping: %v", err)})
			return
		}
		start = res.Mapping
	}

	// The stream is committed from here on: every outcome — including
	// failures — arrives as an NDJSON record.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	seq := 0
	emit := func(rec RemapEvent) error {
		rec.Seq = seq
		seq++
		if err := enc.Encode(rec); err != nil {
			return err
		}
		return rc.Flush()
	}

	streamStart := time.Now()
	cfg := repro.RemapConfig{
		Objective:   objective,
		MaxLatency:  spec.MaxLatency,
		MaxFailProb: spec.MaxFailProb,
		Deadline:    time.Duration(spec.RepairDeadlineMillis) * time.Millisecond,
		ExactBudget: spec.ExactBudget,
		Workers:     spec.Workers,
	}
	_, err = sess.RunReactive(ctx, start, schedule, cfg, func(rep repro.RemapResult) error {
		ev := rep.Event
		return emit(RemapEvent{
			Event:        &ev,
			Mapping:      rep.Mapping,
			Latency:      rep.Metrics.Latency,
			FailureProb:  rep.Metrics.FailureProb,
			Certainty:    rep.Certainty.String(),
			Method:       rep.Method,
			Changed:      rep.Changed,
			Violation:    rep.Violation,
			Down:         rep.Down,
			RepairMicros: rep.Elapsed.Microseconds(),
		})
	})
	if err != nil {
		// The connection may already be gone (emit error); writing the
		// in-band record is best effort either way.
		_ = emit(RemapEvent{Error: err.Error(), Done: true, Events: seq, ElapsedMillis: time.Since(streamStart).Milliseconds()})
		return
	}
	_ = emit(RemapEvent{Done: true, Events: seq, ElapsedMillis: time.Since(streamStart).Milliseconds()})
}
