package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/workload"
)

// fig5Spec renders the paper's Figure 5 instance as a request document,
// exercising the full JSON decode path (not just struct literals).
func fig5Spec(t *testing.T, extra string) []byte {
	t.Helper()
	p, pl := workload.Fig5()
	pj, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	plj, err := json.Marshal(pl)
	if err != nil {
		t.Fatal(err)
	}
	doc := fmt.Sprintf(`{"pipeline": %s, "platform": %s, "objective": "minFailureProb", "maxLatency": 22%s}`, pj, plj, extra)
	return []byte(doc)
}

func postJSON(t *testing.T, srv *httptest.Server, path string, body []byte) *http.Response {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSolveEndpoint(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()

	resp := postJSON(t, srv, "/v1/solve", fig5Spec(t, ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	res := decodeBody[SolveResult](t, resp)
	if res.Error != "" {
		t.Fatalf("unexpected solver error: %s", res.Error)
	}
	if res.Mapping == nil {
		t.Fatal("no mapping returned")
	}
	// The Figure 5 optimum: FP 0.196637 at latency 22 (paper §3).
	if math.Abs(res.FailureProb-0.196637) > 1e-5 {
		t.Errorf("failureProb = %v, want ≈0.196637", res.FailureProb)
	}
	if res.Latency > 22+1e-9 {
		t.Errorf("latency = %v exceeds the budget 22", res.Latency)
	}
	if res.Partial {
		t.Errorf("unexpected partial answer: %+v", res)
	}
	if res.CacheHit {
		t.Error("first request cannot be a cache hit")
	}
}

func TestBatchSolveEndToEnd(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()

	// A batch mixing objectives plus one infeasible and one malformed-free
	// problem; results must come back in request order with per-item
	// errors in-band.
	p, pl := workload.Fig5()
	pj, _ := json.Marshal(p)
	plj, _ := json.Marshal(pl)
	batch := fmt.Sprintf(`{"problems": [
		{"pipeline": %s, "platform": %s, "objective": "minFailureProb", "maxLatency": 22},
		{"pipeline": %s, "platform": %s, "objective": "minLatency"},
		{"pipeline": %s, "platform": %s, "objective": "minFailureProb", "maxLatency": 0.0001}
	]}`, pj, plj, pj, plj, pj, plj)

	resp := postJSON(t, srv, "/v1/solve/batch", []byte(batch))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	out := decodeBody[BatchResponse](t, resp)
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	if out.Results[0].Error != "" || math.Abs(out.Results[0].FailureProb-0.196637) > 1e-5 {
		t.Errorf("result 0 = %+v, want the Figure 5 optimum", out.Results[0])
	}
	if out.Results[1].Error != "" || out.Results[1].Mapping == nil {
		t.Errorf("result 1 = %+v, want a latency-minimal mapping", out.Results[1])
	}
	if out.Results[1].Latency >= out.Results[0].Latency {
		t.Errorf("unconstrained min latency %v should beat the FP-optimal mapping's %v",
			out.Results[1].Latency, out.Results[0].Latency)
	}
	if out.Results[2].Error == "" || !strings.Contains(out.Results[2].Error, "infeasible") {
		t.Errorf("result 2 = %+v, want an infeasibility error", out.Results[2])
	}

	// Identical instances across the batch share one warm session.
	stats := decodeBody[Stats](t, mustGet(t, srv, "/v1/stats"))
	if stats.Requests != 3 {
		t.Errorf("requests = %d, want 3", stats.Requests)
	}
	if stats.CacheMisses != 1 || stats.CacheHits != 2 {
		t.Errorf("cache hits/misses = %d/%d, want 2/1 (one warm session reused)", stats.CacheHits, stats.CacheMisses)
	}
}

// TestStatsEngineCounters: an exact-route solve must surface the search
// engine's counters in the stats Engine map and on /metrics. The fully
// heterogeneous instance skips the poly and DP routes and lands in the
// branch-and-bound, which registers the whole counter family on its
// first run. The replication solver behind this route scores candidates
// one at a time, so the batch and memo series are asserted present
// (registered at zero) rather than incremented — the batch path's >=1
// coverage lives in the engine and benchmark suites.
func TestStatsEngineCounters(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()

	preStats := decodeBody[Stats](t, mustGet(t, srv, "/v1/stats"))
	if preStats.Engine != nil {
		t.Fatalf("engine counters = %v before any exact solve, want absent", preStats.Engine)
	}

	res := decodeBody[SolveResult](t, postJSON(t, srv, "/v1/solve", hetInstanceSpec(t, "")))
	if res.Error != "" || res.Route != "exact" {
		t.Fatalf("result = %+v, want an exact-route answer", res)
	}

	stats := decodeBody[Stats](t, mustGet(t, srv, "/v1/stats"))
	for _, name := range []string{"exact_runs_total", "exact_nodes_total"} {
		if stats.Engine[name] < 1 {
			t.Errorf("engine counters = %v, want %s >= 1", stats.Engine, name)
		}
	}
	for _, name := range []string{"exact_batch_calls_total", "exact_batch_candidates_total", "exact_incumbent_prunes_total", "exact_memo_hits_total", "exact_memo_misses_total"} {
		if _, ok := stats.Engine[name]; !ok {
			t.Errorf("engine counters = %v, want the %s series present", stats.Engine, name)
		}
	}

	resp := mustGet(t, srv, "/metrics")
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "exact_nodes_total") {
		t.Error("/metrics does not export the exact-search counters")
	}
}

func TestSessionCacheReuseAcrossRequests(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp := postJSON(t, srv, "/v1/solve", fig5Spec(t, ""))
		res := decodeBody[SolveResult](t, resp)
		if res.Error != "" {
			t.Fatalf("request %d: %s", i, res.Error)
		}
		if want := i > 0; res.CacheHit != want {
			t.Errorf("request %d: cacheHit = %v, want %v", i, res.CacheHit, want)
		}
	}
	stats := decodeBody[Stats](t, mustGet(t, srv, "/v1/stats"))
	if stats.CacheSize != 1 || stats.CacheHits != 2 || stats.CacheMisses != 1 {
		t.Errorf("stats = %+v, want 1 warm session with 2 hits / 1 miss", stats)
	}
}

// hardInstanceDoc renders a fully heterogeneous 100×150 instance as a
// solve request with the given deadline. The instance is big enough that
// neither the exact enumeration nor the greedy/annealing fallback can
// finish within a 1ms deadline (even allowing for coarse timer
// granularity), so the solver must return a best-effort mapping marked
// partial instead of blocking. The latency bound is binding (full
// replication busts it), so greedy grows the mapping over many
// improvement rounds — the delta-evaluation rounds are fast enough that
// an unconstrained 40×40 instance now completes before a 1ms timer can
// even fire.
func hardInstanceDoc(t *testing.T, deadlineMillis int64) []byte {
	t.Helper()
	n, m := 100, 150
	w := make([]float64, n)
	delta := make([]float64, n+1)
	for i := range w {
		w[i] = float64(10 + i)
	}
	for i := range delta {
		delta[i] = float64(1 + i%3)
	}
	speed := make([]float64, m)
	fp := make([]float64, m)
	bIn := make([]float64, m)
	bOut := make([]float64, m)
	b := make([][]float64, m)
	for u := 0; u < m; u++ {
		speed[u] = float64(1 + u)
		fp[u] = 0.05 + 0.9*float64(u)/float64(m)
		bIn[u] = 1 + 0.1*float64(u)
		bOut[u] = 1 + 0.2*float64(u)
		b[u] = make([]float64, m)
		for v := 0; v < m; v++ {
			if u != v {
				b[u][v] = 1 + 0.05*float64(u+v)
			}
		}
	}
	doc, err := json.Marshal(map[string]any{
		"pipeline":       map[string]any{"w": w, "delta": delta},
		"platform":       map[string]any{"speed": speed, "failProb": fp, "b": b, "bIn": bIn, "bOut": bOut},
		"objective":      "minFailureProb",
		"maxLatency":     100,
		"deadlineMillis": deadlineMillis,
	})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestPerRequestDeadlineYieldsPartial(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()

	resp := postJSON(t, srv, "/v1/solve", hardInstanceDoc(t, 1))
	res := decodeBody[SolveResult](t, resp)
	if res.Error != "" {
		t.Fatalf("expected a best-effort mapping, got error: %s", res.Error)
	}
	if !res.Partial {
		t.Errorf("result should be partial under a 1ms deadline: %+v", res)
	}
	if res.Mapping == nil {
		t.Error("partial result must still carry a mapping")
	}
	if !strings.Contains(res.Certainty, "partial") {
		t.Errorf("certainty = %q, want a partial grade", res.Certainty)
	}
}

func TestBadRequests(t *testing.T) {
	srv := httptest.NewServer(New(Config{MaxBatch: 2}))
	defer srv.Close()

	if resp := postJSON(t, srv, "/v1/solve", []byte("{not json")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, srv, "/v1/solve/batch", []byte(`{"problems": []}`)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d, want 400", resp.StatusCode)
	}
	over := fmt.Sprintf(`{"problems": [%s, %s, %s]}`, fig5Spec(t, ""), fig5Spec(t, ""), fig5Spec(t, ""))
	if resp := postJSON(t, srv, "/v1/solve/batch", []byte(over)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status = %d, want 400", resp.StatusCode)
	}
	// Missing platform is well-formed JSON: in-band error, HTTP 200.
	resp := postJSON(t, srv, "/v1/solve", []byte(`{"pipeline": {"w": [1], "delta": [1, 1]}}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("missing platform: status = %d, want 200", resp.StatusCode)
	}
	if res := decodeBody[SolveResult](t, resp); res.Error == "" {
		t.Error("missing platform must report an in-band error")
	}
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()
	resp := mustGet(t, srv, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func mustGet(t *testing.T, srv *httptest.Server, path string) *http.Response {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
