package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/workload"
)

// chaosInjector is the fault-injection middleware of the chaos harness:
// a seeded fraction of requests gets a latency spike before dispatch,
// and a seeded fraction is failed outright with a structured 500 tagged
// X-Chaos (so the campaign can tell injected failures from genuine
// server faults). Deterministic for a fixed seed and request order.
type chaosInjector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	next     http.Handler
	injected atomic.Int64
}

func newChaosInjector(seed int64, next http.Handler) *chaosInjector {
	return &chaosInjector{rng: rand.New(rand.NewSource(seed)), next: next}
}

func (c *chaosInjector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	fail := c.rng.Float64() < 0.08
	spike := time.Duration(c.rng.Intn(3)) * time.Millisecond
	c.mu.Unlock()
	time.Sleep(spike)
	if fail {
		c.injected.Add(1)
		w.Header().Set("X-Chaos", "injected")
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "chaos: injected failure"})
		return
	}
	c.next.ServeHTTP(w, r)
}

// chaosStall returns a solveGate that stalls a seeded fraction of solver
// runs for a few milliseconds — the "solver briefly wedged" failure mode.
func chaosStall(seed int64) func(SolveSpec) {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(SolveSpec) {
		mu.Lock()
		stall := time.Duration(0)
		if rng.Float64() < 0.3 {
			stall = time.Duration(1+rng.Intn(3)) * time.Millisecond
		}
		mu.Unlock()
		time.Sleep(stall)
	}
}

// TestChaosCampaign runs a seeded chaos campaign against a deliberately
// small service (4 slots, 4 queue positions): concurrent workers mix
// single solves (identical ones to force coalescing), batches, hard
// deadline-blown solves and remap streams, while the injector adds
// latency spikes and 500s and the gate stalls solver runs. Afterwards it
// asserts the overload contract held for every response, the service
// counters are mutually consistent with the client-observed traffic, no
// handler panicked, and no goroutines leaked.
func TestChaosCampaign(t *testing.T) {
	baseline := runtime.NumGoroutine()

	svc := New(Config{
		MaxConcurrent:    4,
		MaxQueue:         4,
		BatchParallelism: 2,
		CacheSize:        8,
	})
	svc.solveGate = chaosStall(42)
	chaos := newChaosInjector(1234, svc)
	srv := httptest.NewServer(chaos)

	fig5 := fig5Spec(t, "")
	fig5Alt := fig5Spec(t, `, "seed": 3`)
	hard := hardInstanceDoc(t, 1)
	batch := []byte(fmt.Sprintf(`{"problems": [%s, %s, %s]}`, fig5Spec(t, ""), fig5Spec(t, `, "objective": "minLatency", "maxLatency": 0`), fig5Spec(t, `, "seed": 5`)))
	p, pl := fig5PipelinePlatformJSON(t)
	stream := []byte(fmt.Sprintf(`{"pipeline": %s, "platform": %s, "randomEvents": 3, "repairDeadlineMillis": 5, "deadlineMillis": 5000}`, p, pl))

	var (
		solveItems atomic.Int64 // solve results delivered in 200 responses
		streams200 atomic.Int64
		shed429    atomic.Int64
		shed503    atomic.Int64
		chaos500   atomic.Int64
	)
	client := srv.Client()

	checkShed := func(resp *http.Response) {
		defer resp.Body.Close()
		if resp.Header.Get("Retry-After") == "" {
			t.Error("shed response carries no Retry-After header")
		}
		var body errorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.RetryAfterMillis < 1 {
			t.Errorf("malformed shed body (err=%v, body=%+v)", err, body)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			shed429.Add(1)
		} else {
			shed503.Add(1)
		}
	}
	checkChaos500 := func(resp *http.Response) {
		defer resp.Body.Close()
		if resp.Header.Get("X-Chaos") != "injected" {
			t.Error("500 response without the X-Chaos tag: a genuine server fault")
			return
		}
		chaos500.Add(1)
	}

	const workers, opsPerWorker = 16, 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < opsPerWorker; i++ {
				var path string
				var body []byte
				var kind string
				switch roll := rng.Intn(10); {
				case roll < 4:
					path, body, kind = "/v1/solve", fig5, "solve"
				case roll < 6:
					path, body, kind = "/v1/solve", fig5Alt, "solve"
				case roll < 7:
					path, body, kind = "/v1/solve", hard, "solve"
				case roll < 9:
					path, body, kind = "/v1/solve/batch", batch, "batch"
				default:
					path, body, kind = "/v1/remap/stream", stream, "stream"
				}
				resp, err := client.Post(srv.URL+path, "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("transport error: %v", err)
					continue
				}
				switch {
				case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
					checkShed(resp)
				case resp.StatusCode == http.StatusInternalServerError:
					checkChaos500(resp)
				case resp.StatusCode == http.StatusOK:
					switch kind {
					case "solve":
						var res SolveResult
						if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
							t.Errorf("malformed solve result: %v", err)
						} else if res.Mapping == nil && res.Error == "" {
							t.Errorf("solve result carries neither mapping nor error: %+v", res)
						} else {
							solveItems.Add(1)
						}
						resp.Body.Close()
					case "batch":
						var out BatchResponse
						if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
							t.Errorf("malformed batch response: %v", err)
						} else {
							solveItems.Add(int64(len(out.Results)))
						}
						resp.Body.Close()
					case "stream":
						sc := bufio.NewScanner(resp.Body)
						sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
						var last RemapEvent
						ok := true
						for sc.Scan() {
							var ev RemapEvent
							if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
								t.Errorf("malformed stream record: %v", err)
								ok = false
								break
							}
							last = ev
						}
						if ok && (sc.Err() != nil || !last.Done) {
							t.Errorf("stream did not end with a done record (scan err %v, last %+v)", sc.Err(), last)
						}
						streams200.Add(1)
						resp.Body.Close()
					}
				default:
					t.Errorf("unexpected status %d for %s", resp.StatusCode, path)
					resp.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()

	// Counter consistency, read off the service directly so the injector
	// cannot 500 the stats request itself.
	rec := httptest.NewRecorder()
	svc.handleStats(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	var stats Stats
	if err := json.NewDecoder(rec.Body).Decode(&stats); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if stats.Panics != 0 {
		t.Errorf("stats.Panics = %d, want 0", stats.Panics)
	}
	if got, want := stats.Shed, shed429.Load()+shed503.Load(); got != want {
		t.Errorf("stats.Shed = %d, client observed %d sheds", got, want)
	}
	if got, want := stats.Solves+stats.Coalesced+stats.SolutionHits, solveItems.Load(); got != want {
		t.Errorf("stats.Solves+Coalesced+SolutionHits = %d+%d+%d = %d, client received %d solve results",
			stats.Solves, stats.Coalesced, stats.SolutionHits, got, want)
	}
	if got, want := stats.SolutionHits+stats.SolutionMisses, stats.Solves+stats.SolutionHits; got != want {
		t.Errorf("solution lookups = %d+%d = %d, want %d (every leader looks up exactly once)",
			stats.SolutionHits, stats.SolutionMisses, got, want)
	}
	if got, want := stats.Requests, solveItems.Load()+streams200.Load(); got != want {
		t.Errorf("stats.Requests = %d, want %d (solve items + streams)", got, want)
	}
	if got, want := chaos500.Load(), chaos.injected.Load(); got != want {
		t.Errorf("client saw %d injected 500s, injector counted %d", got, want)
	}
	t.Logf("campaign: %d solve items, %d streams, %d/%d sheds (429/503), %d injected 500s, %d solver runs, %d coalesced, breaker %s (%d trips)",
		solveItems.Load(), streams200.Load(), shed429.Load(), shed503.Load(), chaos500.Load(),
		stats.Solves, stats.Coalesced, stats.BreakerState, stats.BreakerTrips)

	// Goroutine accounting: after the server drains, the count must
	// settle back to (near) the pre-campaign baseline — no leaked solver
	// workers, stream pumps or queue waiters.
	srv.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			n := runtime.NumGoroutine()
			_ = pprof.Lookup("goroutine").WriteTo(os.Stderr, 1)
			t.Fatalf("goroutine leak: %d alive, baseline %d", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fig5PipelinePlatformJSON renders the Figure 5 instance's two halves.
func fig5PipelinePlatformJSON(t *testing.T) ([]byte, []byte) {
	t.Helper()
	p, pl := workload.Fig5()
	pj, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	plj, err := json.Marshal(pl)
	if err != nil {
		t.Fatal(err)
	}
	return pj, plj
}
