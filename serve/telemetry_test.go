package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/telemetry"
)

// hetInstanceSpec renders the small fully-heterogeneous constrained
// instance (the core router-test fixture) as a solve request: minimize
// latency under an FP bound, so the solver lands in the hard class where
// exact and heuristic compete and the adaptive router has a choice.
func hetInstanceSpec(t *testing.T, extra string) []byte {
	t.Helper()
	p := pipeline.MustNew([]float64{2, 1, 3, 2}, []float64{1, 2, 1, 2, 1})
	pl, err := platform.NewFullyHeterogeneous(
		[]float64{1, 2, 3, 4},
		[]float64{0.1, 0.2, 0.15, 0.05},
		[][]float64{
			{0, 1, 2, 3},
			{1, 0, 4, 5},
			{2, 4, 0, 6},
			{3, 5, 6, 0},
		},
		[]float64{1, 2, 3, 4},
		[]float64{4, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	plj, err := json.Marshal(pl)
	if err != nil {
		t.Fatal(err)
	}
	return []byte(fmt.Sprintf(`{"pipeline": %s, "platform": %s, "objective": "minLatency", "maxFailProb": 0.9%s}`, pj, plj, extra))
}

// hetClass is the instance class of hetInstanceSpec as the recorder keys
// it: 4 stages, 4 processors, communication-heterogeneous, min-latency.
func hetClass() telemetry.Class {
	return telemetry.ClassOf(4, 4, false, telemetry.ObjLatency)
}

// TestStatsJSONBackwardCompat pins the wire shape of GET /v1/stats: every
// pre-telemetry field must stay present under its original JSON key (the
// counters moved from ad-hoc atomics onto the telemetry registry, which
// must not be visible on the wire), and the new latency profiles appear
// once a solve has been recorded.
func TestStatsJSONBackwardCompat(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()

	postJSON(t, srv, "/v1/solve", fig5Spec(t, "")).Body.Close()

	resp := mustGet(t, srv, "/v1/stats")
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"requests", "cacheHits", "cacheMisses", "cacheSize", "cacheEvicted",
		"panics", "shed", "coalesced", "solves", "breakerState", "breakerTrips",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("stats JSON lost pre-telemetry key %q: %s", key, raw)
		}
	}
	if doc["requests"].(float64) != 1 || doc["solves"].(float64) != 1 {
		t.Errorf("requests/solves = %v/%v, want 1/1", doc["requests"], doc["solves"])
	}
	latency, ok := doc["latency"].(map[string]any)
	if !ok || len(latency) == 0 {
		t.Fatalf("stats JSON must carry per-class latency profiles after a solve: %s", raw)
	}
	for class, routes := range latency {
		for route, cell := range routes.(map[string]any) {
			c := cell.(map[string]any)
			if c["count"].(float64) < 1 {
				t.Errorf("latency[%s][%s].count = %v, want ≥ 1", class, route, c["count"])
			}
			if _, ok := c["p95Millis"]; !ok {
				t.Errorf("latency[%s][%s] has no p95Millis", class, route)
			}
		}
	}
}

// TestSolveResponseRouteField: every solve answer names the route that
// produced it, matching the profile keys in /v1/stats.
func TestSolveResponseRouteField(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()

	res := decodeBody[SolveResult](t, postJSON(t, srv, "/v1/solve", fig5Spec(t, "")))
	if res.Error != "" {
		t.Fatal(res.Error)
	}
	switch res.Route {
	case "poly", "dp", "exact", "heuristic", "beam", "sweep":
	default:
		t.Fatalf("route = %q, want a solver route name", res.Route)
	}
}

// TestMetricsEndpoint: GET /metrics serves the registry in Prometheus
// text exposition, including the serve counters and the per-class route
// duration histograms.
func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()

	postJSON(t, srv, "/v1/solve", fig5Spec(t, "")).Body.Close()

	resp := mustGet(t, srv, "/metrics")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q, want Prometheus text exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"serve_requests_total 1",
		"serve_solves_total 1",
		"solve_total 1",
		"solve_route_duration_seconds_bucket",
		"serve_cache_sessions 1",
		"serve_breaker_state 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition lacks %q:\n%s", want, text)
		}
	}
}

// TestMetricsHandlerStandalone: the standalone handler serves the same
// exposition without going through the service mux (the -metrics side
// listener of cmd/pipeserve).
func TestMetricsHandlerStandalone(t *testing.T) {
	svc := New(Config{})
	srv := httptest.NewServer(svc.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "serve_requests_total 0") {
		t.Errorf("standalone metrics handler output:\n%s", body)
	}
}

// TestAdaptiveRoutingEndToEnd drives the full loop at the HTTP layer:
// with the service recorder pre-seeded so the exact route's p95 for this
// instance class reads 10s, a request whose deadlineMillis cannot absorb
// that must be routed to the heuristic up front — a complete answer, not
// a budget-blown partial — while a generous deadline still reaches the
// exhaustive search.
func TestAdaptiveRoutingEndToEnd(t *testing.T) {
	svc := New(Config{})
	for i := 0; i < 25; i++ {
		svc.Recorder().ObserveRoute(hetClass(), telemetry.RouteExact, 10*time.Second, telemetry.OutcomeOK)
	}
	srv := httptest.NewServer(svc)
	defer srv.Close()

	res := decodeBody[SolveResult](t, postJSON(t, srv, "/v1/solve", hetInstanceSpec(t, `, "deadlineMillis": 2000`)))
	if res.Error != "" {
		t.Fatal(res.Error)
	}
	if res.Route != "heuristic" {
		t.Fatalf("route = %q (method %q), want heuristic under a 2s deadline vs a 10s exact p95", res.Route, res.Method)
	}
	if res.Partial {
		t.Fatalf("adaptive routing must yield a complete heuristic answer, got partial: %+v", res)
	}
	if res.Mapping == nil {
		t.Fatal("no mapping returned")
	}

	stats := decodeBody[Stats](t, mustGet(t, srv, "/v1/stats"))
	if stats.RouteSkips["exact"] != 1 {
		t.Errorf("routeSkips = %v, want exact:1", stats.RouteSkips)
	}

	// Same instance, generous deadline: the exact route fits again. The
	// deadline participates in the coalescing key, so this is a fresh
	// solve despite the warm session.
	res = decodeBody[SolveResult](t, postJSON(t, srv, "/v1/solve", hetInstanceSpec(t, `, "deadlineMillis": 3600000`)))
	if res.Error != "" {
		t.Fatal(res.Error)
	}
	if res.Route != "exact" {
		t.Fatalf("route = %q, want exact under a generous deadline", res.Route)
	}
	if res.Certainty != "exhaustively optimal" {
		t.Errorf("certainty = %q, want exhaustively optimal", res.Certainty)
	}
}

// TestSolveLogHook: Config.SolveLog observes every completed solve with
// its route, instance size and timing.
func TestSolveLogHook(t *testing.T) {
	var mu sync.Mutex
	var entries []SolveLogEntry
	srv := httptest.NewServer(New(Config{SolveLog: func(e SolveLogEntry) {
		mu.Lock()
		entries = append(entries, e)
		mu.Unlock()
	}}))
	defer srv.Close()

	res := decodeBody[SolveResult](t, postJSON(t, srv, "/v1/solve", fig5Spec(t, "")))
	if res.Error != "" {
		t.Fatal(res.Error)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(entries) != 1 {
		t.Fatalf("logged %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Route == "" || e.Route != res.Route {
		t.Errorf("entry route = %q, want %q", e.Route, res.Route)
	}
	if e.N <= 0 || e.M <= 0 {
		t.Errorf("entry instance size = %d×%d, want positive", e.N, e.M)
	}
	if e.Elapsed <= 0 {
		t.Errorf("entry elapsed = %v, want > 0", e.Elapsed)
	}
	if e.Err != "" || e.Partial {
		t.Errorf("unexpected error/partial in entry: %+v", e)
	}
}
