package serve

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"repro"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/resilience"
)

// sessionKey derives the warm-session cache key: a SHA-256 over the
// canonical JSON of the instance plus every session-level option, so two
// requests share a session exactly when they would construct identical
// ones.
func sessionKey(p *pipeline.Pipeline, pl *platform.Platform, workers int, budget float64, force bool, seed int64) (string, error) {
	blob, err := json.Marshal(struct {
		P       *pipeline.Pipeline `json:"p"`
		Pl      *platform.Platform `json:"pl"`
		Workers int                `json:"w"`
		Budget  float64            `json:"b"`
		Force   bool               `json:"f"`
		Seed    int64              `json:"s"`
	}{p, pl, workers, budget, force, seed})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// canonicalSessionKey derives the warm-session cache key from the
// instance's canonical encoding: every processor relabeling of one
// platform hashes identically, so permuted variants of the same request
// warm (and reuse) a single session. The session-level options are mixed
// in because they shape session construction exactly as in sessionKey.
// The domain prefix keeps the canonical and raw-JSON key spaces disjoint
// in the shared session cache.
func canonicalSessionKey(canonBytes []byte, workers int, budget float64, force bool, seed int64) string {
	h := sha256.New()
	h.Write([]byte("canon-session\x00"))
	h.Write(canonBytes)
	fmt.Fprintf(h, "|%d|%x|%t|%d", workers, math.Float64bits(budget), force, seed)
	return hex.EncodeToString(h.Sum(nil))
}

// solutionKey derives the cross-request solution cache key: the
// canonical session key (which already digests the canonical instance
// bytes and the session-level tuning) plus everything else that shapes
// the answer — objective, the bi-criteria bounds, and the deadline (the
// adaptive router steers by it, so different deadlines may legitimately
// produce different complete answers). Relabeled copies of one request
// therefore hash to the same key and share one stored answer. Building
// on the session key avoids a second SHA-256 pass over the O(m²)
// canonical bytes on the request path.
func solutionKey(canonSessionKey string, objective repro.Objective, spec SolveSpec) string {
	h := sha256.New()
	h.Write([]byte("solution\x00"))
	h.Write([]byte(canonSessionKey))
	fmt.Fprintf(h, "|%d|%x|%x|%d",
		objective, math.Float64bits(spec.MaxLatency), math.Float64bits(spec.MaxFailProb),
		spec.DeadlineMillis)
	return hex.EncodeToString(h.Sum(nil))
}

// sessionCache is a mutex-guarded LRU of warm sessions. Hits move the
// entry to the front; inserts past capacity evict the back. Builds run
// OUTSIDE the lock — a slow session construction must not serialize
// unrelated cache hits — with concurrent misses for the same key
// coalesced onto one build by a per-key singleflight.
type sessionCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List
	items   map[string]*list.Element
	hits    int64
	misses  int64
	evicted int64

	flight resilience.Group[*repro.Session]
}

type cacheEntry struct {
	key  string
	sess *repro.Session
}

func newSessionCache(capacity int) *sessionCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &sessionCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// getOrCreate returns the warm session for key, building (and inserting)
// it with build on a miss. hit reports whether the session was already
// warm. Every call counts exactly one hit or one miss, so
// hits + misses == lookups holds at all times.
func (c *sessionCache) getOrCreate(key string, build func() (*repro.Session, error)) (sess *repro.Session, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		sess = el.Value.(*cacheEntry).sess
		c.mu.Unlock()
		return sess, true, nil
	}
	c.misses++
	c.mu.Unlock()

	sess, _, err = c.flight.Do(context.Background(), key, func() (*repro.Session, error) {
		// Re-check under the lock: a previous leader may have finished
		// (and left the flight group) between our miss and this call.
		if s := c.peek(key); s != nil {
			return s, nil
		}
		s, err := build()
		if err != nil {
			return nil, err
		}
		c.insert(key, s)
		return s, nil
	})
	return sess, false, err
}

// peek returns the cached session for key without counting a lookup
// (refreshing its LRU position), or nil.
func (c *sessionCache) peek(key string) *repro.Session {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).sess
	}
	return nil
}

// insert adds a freshly built session and evicts past capacity; a racing
// insert of the same key keeps the existing entry.
func (c *sessionCache) insert(key string, sess *repro.Session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[key]; ok {
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, sess: sess})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
		c.evicted++
	}
}

// stats snapshots the cache counters.
func (c *sessionCache) stats() (hits, misses, evicted int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evicted, c.ll.Len()
}

// solutionCache is a mutex-guarded LRU of completed solve answers keyed
// by solutionKey. Stored results carry canonical-labeled mappings; the
// serve layer translates them into each requester's processor ids on the
// way out, so one stored answer serves every relabeling of its instance.
// Lookups happen inside the singleflight leader, so hit/miss counting
// lives with the caller; the cache itself only tracks size and eviction.
type solutionCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List
	items   map[string]*list.Element
	evicted int64
}

type solutionEntry struct {
	key string
	res SolveResult
}

func newSolutionCache(capacity int) *solutionCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &solutionCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the stored answer for key, refreshing its LRU position.
func (c *solutionCache) get(key string) (SolveResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*solutionEntry).res, true
	}
	return SolveResult{}, false
}

// put stores (or refreshes) an answer and evicts past capacity.
func (c *solutionCache) put(key string, res SolveResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*solutionEntry).res = res
		return
	}
	c.items[key] = c.ll.PushFront(&solutionEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*solutionEntry).key)
		c.evicted++
	}
}

// stats snapshots the solution-cache counters.
func (c *solutionCache) stats() (evicted int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicted, c.ll.Len()
}
