package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/resilience"
)

// admit is the overload-admission middleware wrapped around every POST
// path. It buffers the (size-capped) body, peeks the request's
// deadlineMillis, and asks the limiter for a slot under that deadline:
// the limiter bounds concurrent requests, queues a bounded overflow, and
// sheds what cannot be served in time. Sheds are answered before any
// solver work happens, with a structured body and a Retry-After header:
//
//	429 {"error": ..., "retryAfterMillis": ...}  — queue at capacity,
//	    back off and retry
//	503 {"error": ..., "retryAfterMillis": ...}  — the request's own
//	    deadline cannot be met under current load (predicted queue wait
//	    exceeds it, or it expired while queued)
//
// Admitted requests hold their slot until the handler returns (streams
// for their whole life), so the slot count is a true concurrency bound.
func (s *Service) admit(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{
					Error:        fmt.Sprintf("request body exceeds the %d-byte cap", tooBig.Limit),
					MaxBodyBytes: tooBig.Limit,
				})
				return
			}
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("reading request body: %v", err)})
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))

		// Admission deadline: the request's own deadlineMillis when it
		// carries one, else the service default. Malformed JSON falls
		// through with the default — the handler's decode will 400 it.
		var peek struct {
			DeadlineMillis int64 `json:"deadlineMillis"`
		}
		_ = json.Unmarshal(body, &peek)
		deadline := s.cfg.DefaultDeadline
		if peek.DeadlineMillis > 0 {
			deadline = time.Duration(peek.DeadlineMillis) * time.Millisecond
		}
		actx := r.Context()
		if deadline > 0 {
			var cancel context.CancelFunc
			actx, cancel = context.WithTimeout(actx, deadline)
			defer cancel()
		}

		release, err := s.limiter.Acquire(actx)
		if err != nil {
			s.writeShed(w, err)
			return
		}
		defer release()
		next(w, r)
	}
}

// writeShed maps a limiter refusal to its HTTP shape and counts it.
func (s *Service) writeShed(w http.ResponseWriter, err error) {
	s.shed.Inc()
	shed := resilience.AsShed(err)
	if shed == nil { // defensive: the limiter only refuses with ShedError
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	status := http.StatusTooManyRequests
	if shed.Reason == resilience.ShedDeadline {
		status = http.StatusServiceUnavailable
	}
	retryMillis := shed.RetryAfter.Milliseconds()
	if retryMillis < 1 {
		retryMillis = 1
	}
	secs := (retryMillis + 999) / 1000
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, status, errorBody{
		Error:            fmt.Sprintf("overloaded: %s", shed.Reason),
		RetryAfterMillis: retryMillis,
	})
}
