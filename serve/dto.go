// Package serve exposes the session-based solver API as a JSON-over-HTTP
// service: single and batched bi-criteria solve requests with per-request
// deadlines mapped to context cancellation, answered from an LRU of warm
// Sessions keyed by instance hash so repeated traffic against the same
// (pipeline, platform) pair skips the evaluator precomputation.
//
// Both the warm-session LRU and the cross-request solution cache key on
// the instance's canonical form (internal/canon): the mapping problem is
// invariant under processor relabeling, so two requests that differ only
// by a permutation of the platform's processors share one warm session,
// coalesce onto one in-flight solve, and reuse one completed answer —
// translated into each requester's own processor ids on the way out
// (SolveResult.Cached marks a solution-cache answer).
//
// Endpoints (see Service):
//
//	POST /v1/solve         one SolveSpec  -> one SolveResult
//	POST /v1/solve/batch   BatchRequest   -> BatchResponse
//	POST /v1/remap/stream  RemapSpec      -> NDJSON stream of RemapEvent
//	GET  /healthz          liveness probe
//	GET  /v1/stats         request, session-cache and latency counters
//	GET  /metrics          Prometheus text exposition of the same telemetry
//
// Serve-tier robustness: request bodies are capped (structured 413 past
// MaxBodyBytes), handler panics are recovered into structured 500s (and
// counted in /v1/stats), and the re-mapping stream degrades in-band —
// every record carries either a repair or an error, never a dropped
// status line.
//
// Overload resilience: every POST path runs behind an admission limiter
// (bounded concurrency, bounded wait queue, deadline-aware shedding with
// structured 429/503 bodies and Retry-After headers), identical in-flight
// solves are coalesced onto one underlying computation (singleflight on
// the instance hash), and exact-search escalation is guarded by a circuit
// breaker that degrades overloaded solves to the heuristic route. All of
// it is visible in /v1/stats (shed, coalesced, solves, breakerState).
// See docs/api.md for the overload contract and a client retry recipe.
//
// The wire format reuses the library's canonical JSON encodings of
// Pipeline, Platform and Mapping, so a pipemap problem document is a
// valid SolveSpec.
package serve

import (
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// SolveSpec is one bi-criteria solve request.
type SolveSpec struct {
	// Pipeline is the n-stage application: {"w": [...], "delta": [...]}.
	Pipeline *pipeline.Pipeline `json:"pipeline"`
	// Platform is the m-processor target: {"speed": [...], "failProb":
	// [...], "b": [[...]], "bIn": [...], "bOut": [...]}.
	Platform *platform.Platform `json:"platform"`
	// Objective is "minFailureProb" (default) or "minLatency".
	Objective string `json:"objective,omitempty"`
	// MaxLatency bounds the latency when minimizing failure probability
	// (0 = unconstrained).
	MaxLatency float64 `json:"maxLatency,omitempty"`
	// MaxFailProb bounds the failure probability when minimizing latency
	// (0 or 1 = unconstrained).
	MaxFailProb float64 `json:"maxFailProb,omitempty"`
	// DeadlineMillis caps this request's wall-clock time; past it the
	// solver returns its best-so-far answer marked partial. 0 falls back
	// to the service default.
	DeadlineMillis int64 `json:"deadlineMillis,omitempty"`

	// Session-level tuning; these participate in the warm-session cache
	// key, so vary them only when actually needed.

	// Workers is the solver goroutine count (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// ExactBudget overrides the exact-vs-heuristic routing budget.
	ExactBudget float64 `json:"exactBudget,omitempty"`
	// ForceHeuristic skips exact enumeration regardless of size.
	ForceHeuristic bool `json:"forceHeuristic,omitempty"`
	// Seed drives the stochastic components (default 1).
	Seed int64 `json:"seed,omitempty"`
}

// SolveResult is the answer to one SolveSpec.
type SolveResult struct {
	// Mapping is the solved interval mapping (absent on error).
	Mapping *mapping.Mapping `json:"mapping,omitempty"`
	// Latency and FailureProb are the mapping's analytic metrics. Not
	// omitempty: a failure probability of exactly 0 is a legitimate
	// answer and must stay on the wire.
	Latency     float64 `json:"latency"`
	FailureProb float64 `json:"failureProb"`
	// Certainty grades the answer: "provably optimal", "exhaustively
	// optimal", "heuristic" or "partial (canceled)".
	Certainty string `json:"certainty,omitempty"`
	// Method names the algorithm that produced the mapping.
	Method string `json:"method,omitempty"`
	// Route names the solver route that produced the answer ("poly",
	// "dp", "exact", "heuristic", "beam", "sweep"). Unlike Method (a
	// human-readable algorithm description), Route is a stable enum key
	// matching the per-class latency profiles in /v1/stats and /metrics.
	Route string `json:"route,omitempty"`
	// Partial is true when the deadline fired and the mapping is the
	// best found so far rather than the search's final answer.
	Partial bool `json:"partial,omitempty"`
	// CacheHit is true when the request was served by a warm session.
	CacheHit bool `json:"cacheHit,omitempty"`
	// Coalesced is true when this answer was shared from an identical
	// concurrent solve rather than computed independently.
	Coalesced bool `json:"coalesced,omitempty"`
	// Cached is true when this answer was served from the cross-request
	// solution cache: a previously completed solve of the same canonical
	// instance — any processor labeling — under the same objective,
	// bounds and tuning. The mapping is translated into this request's
	// processor ids before the response is written.
	Cached bool `json:"cached,omitempty"`
	// Degraded is true when the circuit breaker forced the heuristic
	// route because exact escalation recently blew its budget; retry
	// later for a potentially exact answer.
	Degraded bool `json:"degraded,omitempty"`
	// Error carries the solver error (e.g. infeasibility) when no
	// mapping could be produced; the HTTP status is still 200 for
	// well-formed requests.
	Error string `json:"error,omitempty"`
	// ElapsedMillis is the server-side solve time.
	ElapsedMillis int64 `json:"elapsedMillis"`
}

// BatchRequest bundles several solve requests into one round trip; the
// service fans them out over a bounded worker pool.
type BatchRequest struct {
	Problems []SolveSpec `json:"problems"`
}

// BatchResponse carries one result per request, in request order.
type BatchResponse struct {
	Results []SolveResult `json:"results"`
}

// Stats reports service counters (GET /v1/stats).
type Stats struct {
	Requests     int64 `json:"requests"`     // solve requests processed (batch items count individually)
	CacheHits    int64 `json:"cacheHits"`    // served by a warm session
	CacheMisses  int64 `json:"cacheMisses"`  // session built for the request
	CacheSize    int   `json:"cacheSize"`    // sessions currently warm
	CacheEvicted int64 `json:"cacheEvicted"` // sessions evicted by the LRU
	Panics       int64 `json:"panics"`       // handler panics recovered by the middleware

	// Overload-resilience counters.
	Shed         int64  `json:"shed"`         // requests refused by admission control (429/503)
	Coalesced    int64  `json:"coalesced"`    // solves answered by sharing an identical in-flight solve
	Solves       int64  `json:"solves"`       // underlying solver invocations (requests - coalesced - errors)
	BreakerState string `json:"breakerState"` // exact-escalation breaker: "closed", "open" or "half-open"
	BreakerTrips int64  `json:"breakerTrips"` // times the breaker tripped open

	// Cross-request solution-cache counters: completed answers keyed by
	// the canonical (relabeling-invariant) instance hash and reused
	// across requests, with mappings translated into each requester's
	// processor labeling.
	SolutionHits    int64 `json:"solutionHits"`    // answers served from the solution cache
	SolutionMisses  int64 `json:"solutionMisses"`  // leader solves that found no stored answer
	SolutionSize    int   `json:"solutionSize"`    // answers currently stored
	SolutionEvicted int64 `json:"solutionEvicted"` // answers evicted by the LRU
	Translations    int64 `json:"translations"`    // mappings relabeled through a non-identity permutation

	// Engine holds the exact-search counters (prefix "exact_"): nodes
	// scored, incumbent prunes, suffix-memo hits/misses, batch-evaluation
	// calls and candidates, runs and enumerated mappings — the same series
	// /metrics exports. Absent until the first exact solve.
	Engine map[string]int64 `json:"engine,omitempty"`

	// RouteSkips counts, per route, the adaptive router's decisions to
	// skip a route whose warm p95 latency did not fit the request's
	// remaining deadline budget. Absent until the first skip.
	RouteSkips map[string]int64 `json:"routeSkips,omitempty"`
	// Latency holds the per-instance-class solve-latency profiles the
	// adaptive router steers by, keyed class label (e.g. "n8.m16.het.lat")
	// then route. Absent until the first recorded solve.
	Latency map[string]map[string]RouteLatency `json:"latency,omitempty"`
}

// RouteLatency summarizes one (instance class, route) latency profile.
type RouteLatency struct {
	// Count is the number of recorded attempts on this route.
	Count int64 `json:"count"`
	// P50Millis, P95Millis and P99Millis are interpolated quantiles of
	// the route's duration sketch, in milliseconds.
	P50Millis float64 `json:"p50Millis"`
	P95Millis float64 `json:"p95Millis"`
	P99Millis float64 `json:"p99Millis"`
}
