package serve

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/platform"
)

// benchWideInstance builds the wide constrained instance the solution
// cache is designed to amortize: 60 stages on 80 fully heterogeneous
// processors, minFailureProb under a binding latency bound, which routes
// to the greedy/annealing heuristic (milliseconds per cold solve).
func benchWideInstance(b *testing.B) (*pipeline.Pipeline, *platform.Platform) {
	b.Helper()
	n, m := 60, 80
	w := make([]float64, n)
	d := make([]float64, n+1)
	for i := range w {
		w[i] = float64(10 + i)
	}
	for i := range d {
		d[i] = float64(1 + i%3)
	}
	speed := make([]float64, m)
	fp := make([]float64, m)
	bIn := make([]float64, m)
	bOut := make([]float64, m)
	bw := make([][]float64, m)
	for u := 0; u < m; u++ {
		speed[u] = float64(1 + u)
		fp[u] = 0.05 + 0.9*float64(u)/float64(m)
		bIn[u] = 1 + 0.1*float64(u)
		bOut[u] = 1 + 0.2*float64(u)
		bw[u] = make([]float64, m)
	}
	for u := 0; u < m; u++ {
		for v := u + 1; v < m; v++ {
			bw[u][v] = 1 + 0.05*float64(u+v)
			bw[v][u] = bw[u][v]
		}
	}
	pl, err := platform.NewFullyHeterogeneous(speed, fp, bw, bIn, bOut)
	if err != nil {
		b.Fatal(err)
	}
	return pipeline.MustNew(w, d), pl
}

// benchWideSpec derives the bounded solve request: the latency bound is
// twice the unconstrained optimum, so it is feasible but binding.
func benchWideSpec(b *testing.B) SolveSpec {
	b.Helper()
	p, pl := benchWideInstance(b)
	svc := New(Config{SolutionCacheSize: -1})
	latRes := svc.solveOne(context.Background(), SolveSpec{
		Pipeline: p, Platform: pl, Objective: "minLatency",
	})
	if latRes.Error != "" {
		b.Fatal(latRes.Error)
	}
	return SolveSpec{
		Pipeline:   p,
		Platform:   pl,
		Objective:  "minFailureProb",
		MaxLatency: 2 * latRes.Latency,
	}
}

// BenchmarkColdM80Solve is the baseline the solution cache is measured
// against: every iteration stands up a fresh service (empty caches) and
// pays canonicalization, session construction and the full heuristic
// solve for the wide instance.
func BenchmarkColdM80Solve(b *testing.B) {
	spec := benchWideSpec(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc := New(Config{})
		if res := svc.solveOne(context.Background(), spec); res.Error != "" {
			b.Fatal(res.Error)
		}
	}
}

// BenchmarkCachedPermutedSolve measures the cross-request solution-cache
// path end to end: each iteration requests a freshly relabeled variant of
// the warm instance, so the service canonicalizes the permuted platform,
// hits the solution cache, and translates the stored mapping into the
// request's labeling — no solver run. The per-op time over
// BenchmarkColdM80Solve is the cache's amortization factor.
func BenchmarkCachedPermutedSolve(b *testing.B) {
	spec := benchWideSpec(b)
	svc := New(Config{})
	if res := svc.solveOne(context.Background(), spec); res.Error != "" {
		b.Fatal(res.Error)
	}
	// Pre-build the relabeled request variants: the benchmark measures the
	// serve path (canonicalize, cache hit, translate), not the client's
	// instance construction.
	rng := rand.New(rand.NewSource(7))
	m := spec.Platform.NumProcs()
	variants := make([]SolveSpec, 8)
	for i := range variants {
		variants[i] = spec
		variants[i].Platform = spec.Platform.Permute(rng.Perm(m))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := svc.solveOne(context.Background(), variants[i%len(variants)])
		if res.Error != "" {
			b.Fatal(res.Error)
		}
		if !res.Cached {
			b.Fatal("permuted request missed the solution cache")
		}
	}
}
