package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// solveSpecJSON renders a solve request document for the given instance.
func solveSpecJSON(t *testing.T, p *pipeline.Pipeline, pl *platform.Platform, extra string) []byte {
	t.Helper()
	pj, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	plj, err := json.Marshal(pl)
	if err != nil {
		t.Fatal(err)
	}
	return []byte(fmt.Sprintf(`{"pipeline": %s, "platform": %s%s}`, pj, plj, extra))
}

// hetSolutionInstance builds a small fully heterogeneous instance with
// all-distinct processor attributes, so canonicalization is pure sorting
// (no search) and relabelings are easy to reason about. The stage work
// vector parameterizes distinct instances sharing one platform shape.
func hetSolutionInstance(t *testing.T, w []float64) (*pipeline.Pipeline, *platform.Platform) {
	t.Helper()
	const m = 6
	d := make([]float64, len(w)+1)
	for i := range d {
		d[i] = float64(1 + i%2)
	}
	speeds := make([]float64, m)
	fps := make([]float64, m)
	bIn := make([]float64, m)
	bOut := make([]float64, m)
	b := make([][]float64, m)
	for u := 0; u < m; u++ {
		speeds[u] = float64(1 + u)
		fps[u] = 0.05 * float64(1+u)
		bIn[u] = 1 + 0.5*float64(u)
		bOut[u] = 4 - 0.5*float64(u)
		b[u] = make([]float64, m)
	}
	for u := 0; u < m; u++ {
		for v := u + 1; v < m; v++ {
			b[u][v] = 1 + 0.25*float64(u+v)
			b[v][u] = b[u][v]
		}
	}
	pl, err := platform.NewFullyHeterogeneous(speeds, fps, b, bIn, bOut)
	if err != nil {
		t.Fatal(err)
	}
	return pipeline.MustNew(w, d), pl
}

// TestPermutedRequestServedFromSolutionCache is the end-to-end relabeling
// contract: after one solve, a request for the same instance with its
// processors permuted is answered from the cross-request solution cache —
// cached: true, bitwise-identical metrics — with the mapping translated
// into the permuted request's own processor ids, and it also lands on the
// same warm session (canonical session keying).
func TestPermutedRequestServedFromSolutionCache(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()

	p, pl := hetSolutionInstance(t, []float64{2, 1, 3, 2})
	const req = `, "objective": "minLatency", "maxFailProb": 0.9`

	res1 := decodeBody[SolveResult](t, postJSON(t, srv, "/v1/solve", solveSpecJSON(t, p, pl, req)))
	if res1.Error != "" {
		t.Fatal(res1.Error)
	}
	if res1.Cached {
		t.Fatal("first solve cannot be a solution-cache hit")
	}

	perm := []int{3, 1, 5, 0, 4, 2}
	plPerm := pl.Permute(perm)
	res2 := decodeBody[SolveResult](t, postJSON(t, srv, "/v1/solve", solveSpecJSON(t, p, plPerm, req)))
	if res2.Error != "" {
		t.Fatal(res2.Error)
	}
	if !res2.Cached {
		t.Fatalf("permuted request must be served from the solution cache: %+v", res2)
	}
	if !res2.CacheHit {
		t.Error("permuted request must reuse the canonical warm session")
	}
	if math.Float64bits(res2.Latency) != math.Float64bits(res1.Latency) ||
		math.Float64bits(res2.FailureProb) != math.Float64bits(res1.FailureProb) {
		t.Errorf("cached metrics (%v, %v) not bitwise-equal to the original (%v, %v)",
			res2.Latency, res2.FailureProb, res1.Latency, res1.FailureProb)
	}
	if res2.Route != res1.Route || res2.Certainty != res1.Certainty {
		t.Errorf("cached route/certainty %q/%q, want %q/%q", res2.Route, res2.Certainty, res1.Route, res1.Certainty)
	}

	// The translated mapping must be valid — and score the advertised
	// metrics — on the PERMUTED instance's own labeling.
	sess, err := repro.NewSession(p, plPerm)
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := sess.Evaluate(res2.Mapping)
	if err != nil {
		t.Fatalf("cached mapping invalid on the permuted instance: %v", err)
	}
	if math.Abs(metrics.Latency-res2.Latency) > 1e-9 || math.Abs(metrics.FailureProb-res2.FailureProb) > 1e-9 {
		t.Errorf("cached mapping re-scores to (%v, %v) on the permuted instance, response said (%v, %v)",
			metrics.Latency, metrics.FailureProb, res2.Latency, res2.FailureProb)
	}

	stats := decodeBody[Stats](t, mustGet(t, srv, "/v1/stats"))
	if stats.Solves != 1 || stats.SolutionHits != 1 || stats.SolutionMisses != 1 {
		t.Errorf("solves/solutionHits/solutionMisses = %d/%d/%d, want 1/1/1",
			stats.Solves, stats.SolutionHits, stats.SolutionMisses)
	}
	if stats.SolutionSize != 1 {
		t.Errorf("solutionSize = %d, want 1", stats.SolutionSize)
	}
	if stats.Translations < 1 {
		t.Errorf("translations = %d, want ≥ 1 (the permuted mapping was relabeled)", stats.Translations)
	}
	if stats.CacheSize != 1 {
		t.Errorf("cacheSize = %d, want 1 (permuted variants share one warm session)", stats.CacheSize)
	}
}

// TestSolutionCacheHammer floods the service from many goroutines with
// randomly relabeled variants of a few base instances and asserts, under
// the race detector, that the solver ran exactly once per canonical
// instance, that every lookup is counted (hits + misses == leader
// lookups), that all answers for one canonical instance are bitwise
// identical, and that the cache never exceeds its capacity.
func TestSolutionCacheHammer(t *testing.T) {
	svc := New(Config{MaxConcurrent: 32, MaxQueue: 128})
	var solverRuns atomic.Int64
	svc.solveGate = func(SolveSpec) { solverRuns.Add(1) }
	srv := httptest.NewServer(svc)
	defer srv.Close()

	works := [][]float64{
		{2, 1, 3, 2},
		{5, 5, 1},
		{1, 4, 2, 8, 1},
	}
	type instance struct {
		p  *pipeline.Pipeline
		pl *platform.Platform
	}
	instances := make([]instance, len(works))
	for i, w := range works {
		p, pl := hetSolutionInstance(t, w)
		instances[i] = instance{p, pl}
	}

	const (
		goroutines = 16
		perG       = 6
	)
	var mu sync.Mutex
	seen := make(map[int][2]uint64) // instance index -> metric bit patterns
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for r := 0; r < perG; r++ {
				k := (g + r) % len(instances)
				inst := instances[k]
				perm := rng.Perm(inst.pl.NumProcs())
				body := solveSpecJSON(t, inst.p, inst.pl.Permute(perm), `, "objective": "minLatency"`)
				res := decodeBody[SolveResult](t, postJSON(t, srv, "/v1/solve", body))
				if res.Error != "" {
					t.Errorf("instance %d: %s", k, res.Error)
					return
				}
				if res.Mapping == nil {
					t.Errorf("instance %d: no mapping", k)
					return
				}
				bits := [2]uint64{math.Float64bits(res.Latency), math.Float64bits(res.FailureProb)}
				mu.Lock()
				if prev, ok := seen[k]; ok && prev != bits {
					t.Errorf("instance %d: metrics diverged across relabelings: %x vs %x", k, prev, bits)
				} else {
					seen[k] = bits
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if got := solverRuns.Load(); got != int64(len(instances)) {
		t.Errorf("solver ran %d times, want exactly %d (once per canonical instance)", got, len(instances))
	}
	stats := decodeBody[Stats](t, mustGet(t, srv, "/v1/stats"))
	total := int64(goroutines * perG)
	if stats.Requests != total {
		t.Errorf("requests = %d, want %d", stats.Requests, total)
	}
	if got := stats.Solves + stats.Coalesced + stats.SolutionHits; got != total {
		t.Errorf("solves+coalesced+solutionHits = %d+%d+%d = %d, want %d",
			stats.Solves, stats.Coalesced, stats.SolutionHits, got, total)
	}
	// Every flight leader performs exactly one lookup: a hit, or a miss
	// followed by a solve.
	if stats.SolutionMisses != stats.Solves {
		t.Errorf("solutionMisses = %d, want %d (one miss per underlying solve)", stats.SolutionMisses, stats.Solves)
	}
	if stats.SolutionSize != len(instances) {
		t.Errorf("solutionSize = %d, want %d", stats.SolutionSize, len(instances))
	}
	if stats.SolutionSize > 256 || stats.SolutionEvicted != 0 {
		t.Errorf("cache exceeded its bounds: size %d, evicted %d", stats.SolutionSize, stats.SolutionEvicted)
	}
	if stats.CacheSize != len(instances) {
		t.Errorf("warm sessions = %d, want %d (relabelings share canonical sessions)", stats.CacheSize, len(instances))
	}
}

// TestSolutionCacheEviction pins the LRU bound: with capacity 2, a third
// distinct instance evicts the least-recently-used answer, which must
// then re-solve on its next request while a retained answer still hits.
func TestSolutionCacheEviction(t *testing.T) {
	srv := httptest.NewServer(New(Config{SolutionCacheSize: 2}))
	defer srv.Close()

	works := [][]float64{{2, 1, 3, 2}, {5, 5, 1}, {1, 4, 2, 8, 1}}
	bodies := make([][]byte, len(works))
	for i, w := range works {
		p, pl := hetSolutionInstance(t, w)
		bodies[i] = solveSpecJSON(t, p, pl, `, "objective": "minLatency"`)
	}
	for i, body := range bodies {
		if res := decodeBody[SolveResult](t, postJSON(t, srv, "/v1/solve", body)); res.Error != "" || res.Cached {
			t.Fatalf("instance %d: error %q cached %v", i, res.Error, res.Cached)
		}
	}
	stats := decodeBody[Stats](t, mustGet(t, srv, "/v1/stats"))
	if stats.SolutionSize != 2 || stats.SolutionEvicted != 1 {
		t.Fatalf("size/evicted = %d/%d after 3 inserts at cap 2, want 2/1", stats.SolutionSize, stats.SolutionEvicted)
	}

	// Instance 0 was evicted: a fresh solve. Instance 2 is retained: a hit.
	if res := decodeBody[SolveResult](t, postJSON(t, srv, "/v1/solve", bodies[0])); res.Cached {
		t.Error("evicted answer must re-solve, not hit")
	}
	if res := decodeBody[SolveResult](t, postJSON(t, srv, "/v1/solve", bodies[2])); !res.Cached {
		t.Error("retained answer must hit")
	}
}

// TestSolutionCacheDisabled: a negative SolutionCacheSize switches the
// cross-request cache off — identical repeated requests re-solve (the
// warm session still hits) and the solution counters stay zero.
func TestSolutionCacheDisabled(t *testing.T) {
	srv := httptest.NewServer(New(Config{SolutionCacheSize: -1}))
	defer srv.Close()

	p, pl := hetSolutionInstance(t, []float64{2, 1, 3, 2})
	body := solveSpecJSON(t, p, pl, `, "objective": "minLatency"`)
	for i := 0; i < 2; i++ {
		if res := decodeBody[SolveResult](t, postJSON(t, srv, "/v1/solve", body)); res.Error != "" || res.Cached {
			t.Fatalf("request %d: error %q cached %v", i, res.Error, res.Cached)
		}
	}
	stats := decodeBody[Stats](t, mustGet(t, srv, "/v1/stats"))
	if stats.Solves != 2 || stats.SolutionHits != 0 || stats.SolutionMisses != 0 {
		t.Errorf("solves/hits/misses = %d/%d/%d, want 2/0/0 with the cache disabled",
			stats.Solves, stats.SolutionHits, stats.SolutionMisses)
	}
}
