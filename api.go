// The top-level functions in this file are the legacy per-call surface:
// each builds a throwaway Session (revalidating the instance and
// rebuilding the evaluator) and forwards under context.Background(). New
// code — and anything issuing repeated calls against one instance or
// needing cancellation — should create a Session once and use its
// methods instead.
package repro

import (
	"context"
	"math/rand"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/frontier"
	"repro/internal/heuristics"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/poly"
	"repro/internal/remap"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/throughput"
	"repro/internal/workload"
)

// Model types re-exported from the implementation packages.
type (
	// Pipeline is an n-stage workflow (stage computations W, inter-stage
	// communication volumes Delta).
	Pipeline = pipeline.Pipeline
	// Platform is an m-processor target with speeds, failure
	// probabilities and a full bandwidth matrix.
	Platform = platform.Platform
	// PlatformClass is one of the paper's three platform families.
	PlatformClass = platform.Class
	// Interval is an inclusive range of 0-based stage indices.
	Interval = mapping.Interval
	// Mapping is an interval mapping with replication.
	Mapping = mapping.Mapping
	// GeneralMapping assigns stages to processors with no interval or
	// replication structure (Theorem 4's mapping family).
	GeneralMapping = mapping.GeneralMapping
	// Metrics bundles the two objectives: latency and failure probability.
	Metrics = mapping.Metrics
	// Problem is a bi-criteria mapping instance for Solve.
	Problem = core.Problem
	// Objective selects which criterion is minimized.
	Objective = core.Objective
	// Certainty grades the provenance of a Result.
	Certainty = core.Certainty
	// Result is a solved problem.
	Result = core.Result
	// SolveOptions tunes exact-versus-heuristic routing.
	SolveOptions = core.Options
	// Recorder aggregates solve telemetry — counters, gauges, streaming
	// latency sketches and per-instance-class route profiles — and powers
	// deadline-adaptive routing (see WithRecorder). Create one with
	// NewRecorder and share it across sessions.
	Recorder = telemetry.Recorder
	// RouteSnapshot is one (instance class, route) latency profile cell
	// exported by Recorder.SolveStats.
	RouteSnapshot = telemetry.RouteSnapshot
	// AnnealConfig tunes the simulated-annealing heuristic.
	AnnealConfig = heuristics.AnnealConfig
	// Front is a Pareto front over (latency, failure probability).
	Front = frontier.Front
	// SimConfig parameterizes a simulation run.
	SimConfig = sim.Config
	// SimMode selects worst-case or Monte-Carlo execution.
	SimMode = sim.Mode
	// SimResult reports a simulation run.
	SimResult = sim.RunResult
	// FPEstimate is a Monte-Carlo estimate of the failure probability.
	FPEstimate = sim.FPEstimate
	// MCSummary aggregates a parallel Monte-Carlo campaign.
	MCSummary = sim.MCSummary
	// SimTrace is a resource-occupation trace (render with Gantt).
	SimTrace = sim.Trace
	// FaultKind is the type of a fault event (crash or recovery).
	FaultKind = sim.FaultKind
	// FaultEvent is one crash/recovery transition of a fault-injection
	// campaign.
	FaultEvent = sim.FaultEvent
	// FaultSchedule is a time-ordered fault-event stream.
	FaultSchedule = sim.FaultSchedule
	// RandomFaultConfig tunes the stochastic fault-schedule generator.
	RandomFaultConfig = sim.RandomFaultConfig
	// RemapConfig tunes the failure-reactive re-mapping controller.
	RemapConfig = remap.Config
	// RemapResult reports one reaction of the re-mapping controller: the
	// installed mapping, its metrics and provenance, and the repair time.
	RemapResult = remap.Repair
	// RemapViolation reports a bound the surviving platform cannot meet.
	RemapViolation = remap.Violation
	// RemapController is the failure-reactive re-mapping loop (see
	// Session.NewRemapController).
	RemapController = remap.Controller
	// RRMapping combines reliability replication with round-robin data
	// parallelism (the paper's future-work §5 extension).
	RRMapping = throughput.RRMapping
	// TriMetrics bundles latency, failure probability and period.
	TriMetrics = throughput.Metrics
	// TriFront is a three-criteria Pareto front.
	TriFront = throughput.TriFront
	// TriResult is a solved tri-criteria instance.
	TriResult = throughput.TriResult
	// CanonicalInstance is the canonical form of a (pipeline, platform)
	// instance: relabeling-invariant bytes plus the permutation that
	// translates mappings between the canonical and original processor
	// ids (see CanonicalizeInstance).
	CanonicalInstance = canon.Canonical
)

// NewRecorder returns an empty telemetry recorder ready to share across
// sessions via WithRecorder; see Recorder.
func NewRecorder() *Recorder { return telemetry.NewRecorder() }

// Platform classes.
const (
	FullyHomogeneous   = platform.FullyHomogeneous
	CommHomogeneous    = platform.CommHomogeneous
	FullyHeterogeneous = platform.FullyHeterogeneous
)

// Objectives.
const (
	MinimizeLatency     = core.MinimizeLatency
	MinimizeFailureProb = core.MinimizeFailureProb
)

// Certainty grades.
const (
	ProvablyOptimal     = core.ProvablyOptimal
	ExhaustivelyOptimal = core.ExhaustivelyOptimal
	Heuristic           = core.Heuristic
	// Partial marks a result returned after context cancellation: the
	// best feasible mapping found before the deadline, no optimality
	// claim.
	Partial = core.Partial
)

// Simulation modes.
const (
	WorstCase  = sim.WorstCase
	MonteCarlo = sim.MonteCarlo
)

// Fault-event kinds.
const (
	FaultCrash   = sim.FaultCrash
	FaultRecover = sim.FaultRecover
)

// Sentinel errors.
var (
	// ErrInfeasible: no interval mapping satisfies the constraint
	// (certain).
	ErrInfeasible = core.ErrInfeasible
	// ErrNotFound: the heuristic search found no feasible mapping
	// (infeasibility not proven).
	ErrNotFound = core.ErrNotFound
	// ErrAllFailed: every processor is down; no valid mapping exists until
	// a recovery arrives.
	ErrAllFailed = remap.ErrAllFailed
	// ErrCanonicalizeComplex: the platform's link symmetry exceeded the
	// canonicalization search budget; solve with the raw labeling instead.
	ErrCanonicalizeComplex = canon.ErrComplex
)

// CanonicalizeInstance computes the canonical form of an instance: two
// instances whose platforms differ only by a processor relabeling get
// byte-identical canonical forms (the paper's mapping problem is
// invariant under such relabelings), which is what lets serving tiers
// share cached solutions across structurally identical requests. The
// returned permutation translates mappings back to the original ids.
func CanonicalizeInstance(p *Pipeline, pl *Platform) (*CanonicalInstance, error) {
	return canon.Canonicalize(p, pl)
}

// TranslateMapping returns a copy of m with every processor id u replaced
// by procMap[u] (alloc sets re-sorted); use a CanonicalInstance's Perm or
// Inv to move mappings between labelings.
func TranslateMapping(m *Mapping, procMap []int) *Mapping {
	return canon.TranslateMapping(m, procMap)
}

// ScriptedCrashes builds a deterministic schedule crashing the given
// processors one after another (unit-spaced virtual times).
func ScriptedCrashes(procs ...int) FaultSchedule { return sim.ScriptedCrashes(procs...) }

// NewRandomFaultSchedule draws a reproducible stochastic crash/recovery
// schedule for an m-processor platform from rng.
func NewRandomFaultSchedule(rng *rand.Rand, m int, cfg RandomFaultConfig) FaultSchedule {
	return sim.RandomFaultSchedule(rng, m, cfg)
}

// NewPipeline builds and validates an n-stage pipeline; len(delta) must be
// len(w)+1 (delta[0] is the initial input, delta[n] the final output).
func NewPipeline(w, delta []float64) (*Pipeline, error) { return pipeline.New(w, delta) }

// UniformPipeline builds an n-stage pipeline with constant stage cost w
// and constant communication volume d.
func UniformPipeline(n int, w, d float64) *Pipeline { return pipeline.Uniform(n, w, d) }

// JPEGPipeline builds the 7-stage JPEG encoder pipeline of the companion
// report [3] for a width×height image.
func JPEGPipeline(width, height int) *Pipeline { return workload.JPEG(width, height) }

// NewFullyHomogeneousPlatform builds m identical processors (speed s,
// failure probability fp) with uniform bandwidth b.
func NewFullyHomogeneousPlatform(m int, s, b, fp float64) (*Platform, error) {
	return platform.NewFullyHomogeneous(m, s, b, fp)
}

// NewCommHomogeneousPlatform builds a platform with per-processor speeds
// and failure probabilities and a single bandwidth for every link.
func NewCommHomogeneousPlatform(speeds, failProbs []float64, b float64) (*Platform, error) {
	return platform.NewCommHomogeneous(speeds, failProbs, b)
}

// NewFullyHeterogeneousPlatform builds a platform from explicit parameter
// slices; b is the m×m inter-processor bandwidth matrix, bIn and bOut the
// input/output link bandwidths.
func NewFullyHeterogeneousPlatform(speeds, failProbs []float64, b [][]float64, bIn, bOut []float64) (*Platform, error) {
	return platform.NewFullyHeterogeneous(speeds, failProbs, b, bIn, bOut)
}

// SingleIntervalMapping maps the whole n-stage pipeline as one interval
// replicated on procs.
func SingleIntervalMapping(n int, procs []int) *Mapping {
	return mapping.NewSingleInterval(n, procs)
}

// Evaluate computes latency and failure probability of an interval
// mapping, selecting the applicable latency formula (Eq. (1) on
// communication-homogeneous platforms, Eq. (2) otherwise).
func Evaluate(p *Pipeline, pl *Platform, m *Mapping) (Metrics, error) {
	return mapping.Evaluate(p, pl, m)
}

// Latency computes the worst-case latency of an interval mapping.
func Latency(p *Pipeline, pl *Platform, m *Mapping) (float64, error) {
	return mapping.Latency(p, pl, m)
}

// FailureProb computes the global failure probability
// 1 − Π_j (1 − Π_{u∈alloc(j)} fp_u).
func FailureProb(pl *Platform, m *Mapping) float64 { return mapping.FailureProb(pl, m) }

// FailureProbLog computes the failure probability through log space,
// which stays accurate when replica products approach the precision of
// float64 (see the Theorem 7 gadget for why this matters).
func FailureProbLog(pl *Platform, m *Mapping) float64 { return mapping.FailureProbLog(pl, m) }

// Solve routes a bi-criteria problem to the strongest method for its
// platform class (the paper's Algorithms 1–4 when provably optimal,
// exhaustive enumeration when small, heuristics otherwise). It is a
// per-call wrapper over a default Session; create a Session directly to
// reuse the evaluator across calls or to cancel via context.
func Solve(pr Problem) (Result, error) { return SolveWithOptions(pr, SolveOptions{}) }

// SolveWithOptions is Solve with explicit routing options.
func SolveWithOptions(pr Problem, opts SolveOptions) (Result, error) {
	s, err := NewSession(pr.Pipeline, pr.Platform, sessionOptionsFrom(opts)...)
	if err != nil {
		return Result{}, err
	}
	return s.Solve(context.Background(), SolveRequest{
		Objective:   pr.Objective,
		MaxLatency:  pr.MaxLatency,
		MaxFailProb: pr.MaxFailProb,
	})
}

// sessionOptionsFrom translates legacy SolveOptions into session options.
func sessionOptionsFrom(opts SolveOptions) []SessionOption {
	return []SessionOption{
		WithWorkers(opts.Workers),
		WithExactBudget(opts.ExactBudget),
		WithAnneal(opts.Anneal),
		WithForceHeuristic(opts.ForceHeuristic),
	}
}

// MinLatencyGeneralMapping computes the latency-optimal general mapping by
// Theorem 4's layered-graph shortest path (polynomial on every platform).
func MinLatencyGeneralMapping(p *Pipeline, pl *Platform) (*GeneralMapping, float64, error) {
	res, err := core.MinLatencyGeneral(p, pl)
	if err != nil {
		return nil, 0, err
	}
	return res.Mapping, res.Latency, nil
}

// IntervalBounds is a two-sided bound on the open problem of
// latency-minimal interval mappings on Fully Heterogeneous platforms.
type IntervalBounds = poly.IntervalBounds

// IntervalLatencyBounds computes polynomial two-sided bounds on the
// latency-optimal interval mapping of a Fully Heterogeneous platform
// (paper §4.1 leaves the exact complexity open): Theorem 4's general
// optimum from below, a repaired interval mapping from above, with a
// provable-optimality certificate when the two coincide.
func IntervalLatencyBounds(p *Pipeline, pl *Platform) (IntervalBounds, error) {
	return poly.IntervalLatencyBounds(p, pl)
}

// BeamSearchMinLatency runs the scalable beam-search heuristic for
// latency-minimal interval mappings on heterogeneous platforms (the
// §4.1 open problem); beamWidth ≤ 0 selects the default (16).
func BeamSearchMinLatency(p *Pipeline, pl *Platform, beamWidth int) (*Mapping, Metrics, error) {
	res, err := heuristics.BeamSearchMinLatency(context.Background(), &heuristics.Problem{Pipe: p, Plat: pl}, beamWidth)
	if err != nil {
		return nil, Metrics{}, err
	}
	return res.Mapping, res.Metrics, nil
}

// MinFailureProb returns Theorem 1's optimum: the whole pipeline
// replicated on every processor.
func MinFailureProb(p *Pipeline, pl *Platform) (Result, error) {
	return Solve(Problem{Pipeline: p, Platform: pl, Objective: MinimizeFailureProb})
}

// ParetoFront computes the latency/FP trade-off curve: exhaustively on
// small instances, by annealing archive otherwise.
func ParetoFront(p *Pipeline, pl *Platform, opts SolveOptions) (*Front, Certainty, error) {
	s, err := NewSession(p, pl, sessionOptionsFrom(opts)...)
	if err != nil {
		return nil, 0, err
	}
	return s.Pareto(context.Background())
}

// Simulate executes a mapped workflow on the discrete-event simulator.
// WorstCase mode reproduces the analytic latency exactly; MonteCarlo mode
// draws a crash pattern from the failure probabilities.
func Simulate(p *Pipeline, pl *Platform, m *Mapping, cfg SimConfig) (SimResult, error) {
	return sim.Run(p, pl, m, cfg)
}

// SimulateInjected executes the workflow under an explicit crash pattern
// (failed[u] = true kills processor u for the whole run).
func SimulateInjected(p *Pipeline, pl *Platform, m *Mapping, cfg SimConfig, failed []bool) (SimResult, error) {
	return sim.RunInjected(p, pl, m, cfg, failed)
}

// EstimateFailureProb estimates a mapping's failure probability by
// Monte-Carlo sampling of crash patterns.
func EstimateFailureProb(pl *Platform, m *Mapping, trials int, rng *rand.Rand) (FPEstimate, error) {
	return sim.EstimateFP(pl, m, trials, rng)
}

// EstimateFailureProbParallel fans the sampling out over worker
// goroutines with deterministic per-worker RNG streams (workers ≤ 0 uses
// GOMAXPROCS).
func EstimateFailureProbParallel(pl *Platform, m *Mapping, trials, workers int, seed int64) (FPEstimate, error) {
	return sim.EstimateFPParallel(context.Background(), pl, m, trials, workers, seed)
}

// MonteCarloCampaign runs trials independent Monte-Carlo simulations in
// parallel and aggregates failure rate and latency statistics.
func MonteCarloCampaign(p *Pipeline, pl *Platform, m *Mapping, cfg SimConfig, trials, workers int, seed int64) (MCSummary, error) {
	return sim.MonteCarloLatencyParallel(context.Background(), p, pl, m, cfg, trials, workers, seed)
}

// Lemma1SingleInterval applies the paper's Lemma 1 transformation: on
// Fully Homogeneous (any failures) or CommHom+FailureHom platforms it
// returns a single-interval mapping at least as good as m in both
// criteria.
func Lemma1SingleInterval(p *Pipeline, pl *Platform, m *Mapping) (*Mapping, error) {
	return poly.Lemma1Transform(p, pl, m)
}

// Period computes the worst-case steady-state period (inverse throughput)
// of an interval mapping under the overlap model; it equals the
// simulator's steady-state inter-completion gap exactly. This implements
// the throughput criterion of the paper's future work (§5).
func Period(p *Pipeline, pl *Platform, m *Mapping) (float64, error) {
	return throughput.PeriodOverlap(p, pl, m)
}

// PeriodSustainable includes every hot standby's compute cycle: the
// smallest period at which no replica's queue diverges.
func PeriodSustainable(p *Pipeline, pl *Platform, m *Mapping) (float64, error) {
	return throughput.PeriodSustainable(p, pl, m)
}

// PeriodNoOverlap is the period under the sequential receive/compute/send
// machine model of the multi-criteria companion papers.
func PeriodNoOverlap(p *Pipeline, pl *Platform, m *Mapping) (float64, error) {
	return throughput.PeriodNoOverlap(p, pl, m)
}

// RoundRobinMapping wraps a reliability mapping as an RRMapping with one
// group per interval; split groups to trade reliability for throughput.
func RoundRobinMapping(m *Mapping) *RRMapping { return throughput.FromMapping(m) }

// MinPeriodUnderConstraints exhaustively finds the RR mapping of minimum
// period with latency ≤ maxLatency and FP ≤ maxFailProb (small instances).
func MinPeriodUnderConstraints(p *Pipeline, pl *Platform, maxLatency, maxFailProb float64) (TriResult, error) {
	return throughput.MinPeriodUnderConstraints(p, pl, maxLatency, maxFailProb, exact.Options{})
}

// GreedyRoundRobin splits bottleneck groups round-robin as long as the
// period improves within both constraints (scalable heuristic).
func GreedyRoundRobin(p *Pipeline, pl *Platform, m *Mapping, maxLatency, maxFailProb float64) (TriResult, error) {
	return throughput.GreedyRR(context.Background(), p, pl, m, maxLatency, maxFailProb)
}

// TriParetoFront enumerates the three-criteria Pareto front (latency, FP,
// period) over RR mappings of a small instance.
func TriParetoFront(p *Pipeline, pl *Platform) (*TriFront, error) {
	return throughput.TriPareto(p, pl, exact.Options{})
}

// Fig34Instance returns the paper's Section 3 motivating example
// (Figures 3 and 4): splitting beats any single processor, 7 versus 105.
func Fig34Instance() (*Pipeline, *Platform) { return workload.Fig34() }

// Fig5Instance returns the paper's Figure 5 example (CommHom+FailureHet,
// where the bi-criteria optimum needs two intervals).
func Fig5Instance() (*Pipeline, *Platform) { return workload.Fig5() }
