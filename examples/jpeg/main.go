// JPEG encoder case study (the real-world workflow of the paper's
// companion report [3]): map the 7-stage encoder pipeline onto a mixed
// cluster of slow-reliable and fast-unreliable workstations, then sweep
// the latency budget to expose the latency/reliability trade-off.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	// A 640×480 frame through the standard encoder stages: color
	// conversion, subsampling, block split, DCT, quantization,
	// zigzag+RLE, Huffman.
	pipe := repro.JPEGPipeline(640, 480)
	fmt.Println("JPEG pipeline:", pipe)

	// The cluster: 2 old reliable workstations + 6 fast flaky desktops,
	// 100 Mbit-class network (5e5 data units per time unit).
	speeds := []float64{2e6, 2e6, 12e6, 12e6, 12e6, 12e6, 12e6, 12e6}
	fps := []float64{0.02, 0.02, 0.25, 0.25, 0.25, 0.25, 0.25, 0.25}
	plat, err := repro.NewCommHomogeneousPlatform(speeds, fps, 5e5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cluster:", plat)

	// Latency floor: the whole pipeline on the fastest desktop.
	floor, err := repro.Solve(repro.Problem{Pipeline: pipe, Platform: plat, Objective: repro.MinimizeLatency})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlatency floor (Theorem 2): %.4g with FP %.4g\n",
		floor.Metrics.Latency, floor.Metrics.FailureProb)

	fmt.Println("\nbudget(xfloor)  intervals  procs  latency      FP          method")
	for _, factor := range []float64{1.0, 1.3, 1.8, 2.5, 4.0} {
		budget := floor.Metrics.Latency * factor
		res, err := repro.Solve(repro.Problem{
			Pipeline:   pipe,
			Platform:   plat,
			Objective:  repro.MinimizeFailureProb,
			MaxLatency: budget,
		})
		if err != nil {
			fmt.Printf("%-15.1f infeasible\n", factor)
			continue
		}
		fmt.Printf("%-15.1f %-10d %-6d %-12.5g %-11.4g %s\n",
			factor, res.Mapping.NumIntervals(), len(res.Mapping.UsedProcs()),
			res.Metrics.Latency, res.Metrics.FailureProb, res.Certainty)
	}

	// Validate the most reliable mapping empirically.
	res, err := repro.Solve(repro.Problem{
		Pipeline:   pipe,
		Platform:   plat,
		Objective:  repro.MinimizeFailureProb,
		MaxLatency: floor.Metrics.Latency * 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	est, err := repro.EstimateFailureProb(plat, res.Mapping, 100_000, rand.New(rand.NewSource(42)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMonte-Carlo check on the 4x mapping: sampled FP %.4g ± %.2g (analytic %.4g)\n",
		est.FP, est.StdErr, res.Metrics.FailureProb)
}
