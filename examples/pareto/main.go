// Pareto exploration on the open problem class (Communication Homogeneous
// with heterogeneous failure probabilities, paper §4.4): compute the full
// latency/reliability trade-off curve of a small instance exactly, print
// it as a table and a rough ASCII curve, and show where the paper's
// single-interval lemma stops applying.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	// Three-stage pipeline on a 6-processor mixed platform.
	pipe, err := repro.NewPipeline(
		[]float64{4, 30, 8},
		[]float64{6, 2, 3, 1},
	)
	if err != nil {
		log.Fatal(err)
	}
	plat, err := repro.NewCommHomogeneousPlatform(
		[]float64{1, 2, 8, 8, 10, 12},
		[]float64{0.02, 0.05, 0.30, 0.30, 0.40, 0.45},
		2,
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("application:", pipe)
	fmt.Println("platform:   ", plat)

	front, certainty, err := repro.ParetoFront(pipe, plat, repro.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPareto front (%s, %d points):\n", certainty, front.Len())
	fmt.Printf("%-12s %-12s %-10s %s\n", "latency", "failureProb", "intervals", "mapping")
	for _, e := range front.Entries() {
		fmt.Printf("%-12.5g %-12.5g %-10d %s\n",
			e.Metrics.Latency, e.Metrics.FailureProb, e.Mapping.NumIntervals(), e.Mapping)
	}

	// How many Pareto-optimal mappings need more than one interval? On
	// FullyHom/FailureHom platforms Lemma 1 says none would; here the
	// heterogeneous failure probabilities make splits worthwhile.
	multi := 0
	for _, e := range front.Entries() {
		if e.Mapping.NumIntervals() > 1 {
			multi++
		}
	}
	fmt.Printf("\n%d of %d Pareto-optimal mappings use several intervals\n", multi, front.Len())

	// ASCII trade-off curve: latency left to right, reliability as bars.
	fmt.Println("\nfailure probability by latency (each column one Pareto point):")
	es := front.Entries()
	const height = 12
	for row := 0; row < height; row++ {
		level := 1 - float64(row)/height
		var b strings.Builder
		for _, e := range es {
			if e.Metrics.FailureProb >= level-1e-12 {
				b.WriteString("█ ")
			} else {
				b.WriteString("  ")
			}
		}
		fmt.Printf("%4.2f |%s\n", level, b.String())
	}
	fmt.Printf("      %s\n", strings.Repeat("--", len(es)))
	lo, hi := es[0].Metrics.Latency, es[len(es)-1].Metrics.Latency
	fmt.Printf("      latency %.3g .. %.3g\n", lo, hi)

	// Hypervolume quality indicator against a loose reference point.
	ref := hi * 1.1
	fmt.Printf("\nhypervolume vs reference (%.3g, 1.0): %.4g\n", ref, front.Hypervolume(ref, 1))
}
