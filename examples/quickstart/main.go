// Quickstart: solve the paper's Figure 5 instance through the session
// API.
//
// A two-stage pipeline (a cheap stage followed by an expensive one) must
// run on one slow-but-reliable processor and ten fast-but-unreliable ones.
// Under a latency budget of 22 time units, the best single-interval
// mapping is stuck at a 64% failure probability; the optimal mapping puts
// the cheap stage alone on the reliable processor and replicates the
// expensive stage on all ten fast processors, cutting the failure
// probability below 20% at exactly the latency budget.
//
// The program creates one Session for the instance and issues every query
// through it — the solve, the latency-optimum comparison, a simulator
// cross-check and a Monte-Carlo campaign — so the instance is validated
// and the evaluator precomputed exactly once. It also demonstrates the
// deadline behavior: a context cancelled before the solve still returns a
// best-effort mapping, graded Partial instead of optimal.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// The application: w = {1, 100}, δ = {10, 1, 0}.
	pipe, err := repro.NewPipeline([]float64{1, 100}, []float64{10, 1, 0})
	if err != nil {
		log.Fatal(err)
	}

	// The platform: P1 slow and reliable, P2..P11 fast and flaky;
	// every link has bandwidth 1 (Communication Homogeneous).
	speeds := []float64{1}
	fps := []float64{0.1}
	for i := 0; i < 10; i++ {
		speeds = append(speeds, 100)
		fps = append(fps, 0.8)
	}
	plat, err := repro.NewCommHomogeneousPlatform(speeds, fps, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("application:", pipe)
	fmt.Println("platform:   ", plat)

	// One session per instance: validation and the evaluator
	// precomputation happen here, once, instead of on every call.
	sess, err := repro.NewSession(pipe, plat, repro.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Minimize the failure probability under the latency budget.
	res, err := sess.Solve(ctx, repro.SolveRequest{
		Objective:  repro.MinimizeFailureProb,
		MaxLatency: 22,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbest mapping:", res.Mapping)
	fmt.Printf("latency:      %.4g (budget 22)\n", res.Metrics.Latency)
	fmt.Printf("failure prob: %.4g\n", res.Metrics.FailureProb)
	fmt.Printf("method:       %s (%s)\n", res.Method, res.Certainty)

	// Compare with the best the fastest processor alone can do — the
	// session reuses the cached evaluator state for this second solve.
	fastest, err := sess.Solve(ctx, repro.SolveRequest{Objective: repro.MinimizeLatency})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlatency optimum (no reliability constraint): %.4g with FP %.4g\n",
		fastest.Metrics.Latency, fastest.Metrics.FailureProb)

	// Cross-check the analytic metrics on the simulator substrate.
	simRes, err := sess.Simulate(ctx, res.Mapping, repro.SimConfig{Mode: repro.WorstCase})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated worst-case latency: %.4g (matches the analytic formula)\n", simRes.MaxLatency)

	// Validate the failure probability empirically: a parallel
	// Monte-Carlo campaign with the session's deterministic seed.
	mc, err := sess.MonteCarloCampaign(ctx, res.Mapping, repro.SimConfig{}, 20_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Monte-Carlo FP over %d trials: %.4g (analytic %.4g)\n",
		mc.Trials, mc.FailureRate, res.Metrics.FailureProb)

	// Deadline-aware solving: a context that is already cancelled cannot
	// block — the session answers with its best-so-far mapping, graded
	// Partial instead of optimal. In cmd/pipeserve the same mechanism
	// backs the per-request "deadlineMillis" field.
	cancelled, cancel := context.WithTimeout(ctx, time.Nanosecond)
	defer cancel()
	partial, err := sess.Solve(cancelled, repro.SolveRequest{
		Objective:  repro.MinimizeFailureProb,
		MaxLatency: 22,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunder an expired deadline: %s mapping %v (FP %.4g)\n",
		partial.Certainty, partial.Mapping, partial.Metrics.FailureProb)
}
