// Quickstart: solve the paper's Figure 5 instance through the public API.
//
// A two-stage pipeline (a cheap stage followed by an expensive one) must
// run on one slow-but-reliable processor and ten fast-but-unreliable ones.
// Under a latency budget of 22 time units, the best single-interval
// mapping is stuck at a 64% failure probability; the optimal mapping puts
// the cheap stage alone on the reliable processor and replicates the
// expensive stage on all ten fast processors, cutting the failure
// probability below 20% at exactly the latency budget.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The application: w = {1, 100}, δ = {10, 1, 0}.
	pipe, err := repro.NewPipeline([]float64{1, 100}, []float64{10, 1, 0})
	if err != nil {
		log.Fatal(err)
	}

	// The platform: P1 slow and reliable, P2..P11 fast and flaky;
	// every link has bandwidth 1 (Communication Homogeneous).
	speeds := []float64{1}
	fps := []float64{0.1}
	for i := 0; i < 10; i++ {
		speeds = append(speeds, 100)
		fps = append(fps, 0.8)
	}
	plat, err := repro.NewCommHomogeneousPlatform(speeds, fps, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("application:", pipe)
	fmt.Println("platform:   ", plat)

	// Minimize the failure probability under the latency budget.
	res, err := repro.Solve(repro.Problem{
		Pipeline:   pipe,
		Platform:   plat,
		Objective:  repro.MinimizeFailureProb,
		MaxLatency: 22,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbest mapping:", res.Mapping)
	fmt.Printf("latency:      %.4g (budget 22)\n", res.Metrics.Latency)
	fmt.Printf("failure prob: %.4g\n", res.Metrics.FailureProb)
	fmt.Printf("method:       %s (%s)\n", res.Method, res.Certainty)

	// Compare with the best the fastest processor alone can do.
	fastest, err := repro.Solve(repro.Problem{
		Pipeline:  pipe,
		Platform:  plat,
		Objective: repro.MinimizeLatency,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlatency optimum (no reliability constraint): %.4g with FP %.4g\n",
		fastest.Metrics.Latency, fastest.Metrics.FailureProb)

	// Cross-check the analytic metrics on the simulator substrate.
	simRes, err := repro.Simulate(pipe, plat, res.Mapping, repro.SimConfig{Mode: repro.WorstCase})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated worst-case latency: %.4g (matches the analytic formula)\n", simRes.MaxLatency)
}
