// Streaming: the three-criteria extension announced in the paper's
// future work (§5). A video-rate JPEG pipeline must sustain a target
// throughput; reliability replication raises latency AND the input cycle
// (the paper's first replication type), while round-robin data
// parallelism lowers the period at the cost of more failure modes (the
// second type). This example walks the trade-off on a small platform and
// validates the analytic period against the simulator's steady state.
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"repro"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the walkthrough, writing the report to w. Split from main
// so the example is smoke-testable: the test drives it end to end against
// a buffer and checks the headline numbers.
func run(w io.Writer) error {
	// A compact 3-stage pipeline (preprocess / transform / encode).
	pipe, err := repro.NewPipeline([]float64{20, 120, 30}, []float64{8, 6, 4, 2})
	if err != nil {
		return err
	}
	plat, err := repro.NewCommHomogeneousPlatform(
		[]float64{10, 10, 10, 10, 10, 2},
		[]float64{0.2, 0.2, 0.2, 0.2, 0.2, 0.02},
		4,
	)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "application:", pipe)
	fmt.Fprintln(w, "platform:   ", plat)

	// Reliability-only mapping from the bi-criteria solver.
	res, err := repro.Solve(repro.Problem{
		Pipeline:   pipe,
		Platform:   plat,
		Objective:  repro.MinimizeFailureProb,
		MaxLatency: 40,
	})
	if err != nil {
		return err
	}
	period, err := repro.Period(pipe, plat, res.Mapping)
	if err != nil {
		return err
	}
	sustainable, _ := repro.PeriodSustainable(pipe, plat, res.Mapping)
	noOverlap, _ := repro.PeriodNoOverlap(pipe, plat, res.Mapping)
	fmt.Fprintf(w, "\nreliability mapping: %s\n", res.Mapping)
	fmt.Fprintf(w, "latency %.4g, FP %.4g\n", res.Metrics.Latency, res.Metrics.FailureProb)
	fmt.Fprintf(w, "period: output %.4g, sustainable %.4g, no-overlap %.4g\n", period, sustainable, noOverlap)

	// Validate the analytic period on the simulator: stream 64 data sets
	// and measure the inter-completion gap.
	const d = 64
	simRes, err := repro.Simulate(pipe, plat, res.Mapping, repro.SimConfig{Mode: repro.WorstCase, NumDataSets: d})
	if err != nil {
		return err
	}
	gap := simRes.DatasetLatencies[d-1] - simRes.DatasetLatencies[d-2]
	fmt.Fprintf(w, "simulated steady-state gap: %.4g (analytic %.4g)\n", gap, period)

	// Round-robin: split bottleneck groups while FP stays under 0.5.
	rr, err := repro.GreedyRoundRobin(pipe, plat, res.Mapping, math.Inf(1), 0.5)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nround-robin mapping: %s\n", rr.Mapping)
	fmt.Fprintf(w, "period %.4g (was %.4g), FP %.4g (was %.4g), latency %.4g\n",
		rr.Metrics.Period, period, rr.Metrics.FailureProb, res.Metrics.FailureProb, rr.Metrics.Latency)

	// The exhaustive three-criteria front on this small instance.
	front, err := repro.TriParetoFront(pipe, plat)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nthree-criteria Pareto front (%d points, first 12 by latency):\n", front.Len())
	fmt.Fprintf(w, "%-10s %-12s %-10s %s\n", "latency", "failureProb", "period", "mapping")
	for i, e := range front.Entries() {
		if i == 12 {
			fmt.Fprintln(w, "  ...")
			break
		}
		fmt.Fprintf(w, "%-10.5g %-12.5g %-10.5g %s\n",
			e.Metrics.Latency, e.Metrics.FailureProb, e.Metrics.Period, e.Mapping)
	}
	return nil
}
