package main

import (
	"strings"
	"testing"
)

// TestRunSmoke drives the full walkthrough and checks the headline
// numbers: the reliability mapping's metrics, the analytic period
// agreeing with the simulated steady-state gap, and a non-empty
// three-criteria front.
func TestRunSmoke(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"reliability mapping:",
		"latency 27.5, FP 0.00032",
		"period: output 17, sustainable 17, no-overlap 19.5",
		"simulated steady-state gap: 17 (analytic 17)",
		"round-robin mapping:",
		"three-criteria Pareto front (",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}
