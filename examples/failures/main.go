// Failure injection: execute the paper's Figure 5 mapping on the
// discrete-event simulator under worst-case, Monte-Carlo and targeted
// crash scenarios, and measure the consensus protocol's overhead when
// coordinators die.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	pipe, plat := repro.Fig5Instance()
	m := &repro.Mapping{
		Intervals: []repro.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	}
	analyticLat, err := repro.Latency(pipe, plat, m)
	if err != nil {
		log.Fatal(err)
	}
	analyticFP := repro.FailureProb(plat, m)
	fmt.Println("mapping:", m)
	fmt.Printf("analytic: latency %.4g, FP %.4g\n\n", analyticLat, analyticFP)

	// 1. Worst case: the simulator must land exactly on the formula.
	wc, err := repro.Simulate(pipe, plat, m, repro.SimConfig{Mode: repro.WorstCase})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst-case simulation: latency %.4g (%d events)\n", wc.MaxLatency, wc.Events)

	// 2. Monte-Carlo: empirical failure rate vs the analytic FP.
	rng := rand.New(rand.NewSource(7))
	const trials = 5000
	failures := 0
	var maxLat float64
	for i := 0; i < trials; i++ {
		res, err := repro.Simulate(pipe, plat, m, repro.SimConfig{Mode: repro.MonteCarlo, RNG: rng})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Completed {
			failures++
		} else if res.MaxLatency > maxLat {
			maxLat = res.MaxLatency
		}
	}
	fmt.Printf("Monte-Carlo (%d runs): failure rate %.4g (analytic %.4g), max latency %.4g ≤ %.4g\n",
		trials, float64(failures)/trials, analyticFP, maxLat, analyticLat)

	// 3. Targeted injection: progressively kill fast replicas.
	fmt.Println("\nkilling fast replicas one by one:")
	for dead := 0; dead <= 10; dead += 2 {
		failed := make([]bool, plat.NumProcs())
		for u := 1; u <= dead; u++ {
			failed[u] = true
		}
		res, err := repro.SimulateInjected(pipe, plat, m, repro.SimConfig{}, failed)
		if err != nil {
			log.Fatal(err)
		}
		if res.Completed {
			fmt.Printf("  %2d dead: completed, latency %.4g\n", dead, res.MaxLatency)
		} else {
			fmt.Printf("  %2d dead: APPLICATION FAILED\n", dead)
		}
	}

	// 4. Consensus overhead: dead coordinators cost detection timeouts.
	fmt.Println("\nconsensus overhead with 2 dead low-rank replicas:")
	failed := make([]bool, plat.NumProcs())
	failed[1], failed[2] = true, true
	for _, timeout := range []float64{0, 1, 5} {
		res, err := repro.SimulateInjected(pipe, plat, m, repro.SimConfig{ConsensusTimeout: timeout}, failed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  timeout %3.0f: latency %.4g (%d consensus rounds)\n",
			timeout, res.MaxLatency, res.ConsensusRounds)
	}

	// 5. Streaming: ten data sets back-to-back share the ports.
	stream, err := repro.Simulate(pipe, plat, m, repro.SimConfig{Mode: repro.WorstCase, NumDataSets: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreaming 10 data sets: first latency %.4g, last %.4g, makespan %.4g\n",
		stream.DatasetLatencies[0], stream.DatasetLatencies[9], stream.Makespan)
	fmt.Printf("throughput: %.4g data sets per time unit\n", 10/stream.Makespan)
}
