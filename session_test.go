package repro_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro"
)

// hetPlatform builds a fully heterogeneous platform of m processors with
// mildly varying speeds, failure probabilities and bandwidths.
func hetPlatform(t *testing.T, m int) *repro.Platform {
	t.Helper()
	speed := make([]float64, m)
	fp := make([]float64, m)
	bIn := make([]float64, m)
	bOut := make([]float64, m)
	b := make([][]float64, m)
	for u := 0; u < m; u++ {
		speed[u] = 1 + 0.5*float64(u)
		fp[u] = 0.05 + 0.3*float64(u)/float64(m)
		bIn[u] = 1 + 0.1*float64(u)
		bOut[u] = 1 + 0.2*float64(u)
		b[u] = make([]float64, m)
		for v := 0; v < m; v++ {
			if u != v {
				b[u][v] = 1 + 0.05*float64(u+v)
			}
		}
	}
	pl, err := repro.NewFullyHeterogeneousPlatform(speed, fp, b, bIn, bOut)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func rampPipeline(t *testing.T, n int) *repro.Pipeline {
	t.Helper()
	w := make([]float64, n)
	delta := make([]float64, n+1)
	for i := range w {
		w[i] = float64(5 + i)
	}
	for i := range delta {
		delta[i] = float64(1 + i%3)
	}
	p, err := repro.NewPipeline(w, delta)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSessionSolveMatchesTopLevel(t *testing.T) {
	pipe, plat := repro.Fig5Instance()
	s, err := repro.NewSession(pipe, plat)
	if err != nil {
		t.Fatal(err)
	}
	req := repro.SolveRequest{Objective: repro.MinimizeFailureProb, MaxLatency: 22}
	want, err := repro.Solve(repro.Problem{
		Pipeline: pipe, Platform: plat,
		Objective: repro.MinimizeFailureProb, MaxLatency: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := s.Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if got.Metrics != want.Metrics || got.Certainty != want.Certainty {
			t.Errorf("run %d: session result %+v differs from top-level %+v", i, got, want)
		}
	}
}

func TestSessionEvaluateMatchesPackage(t *testing.T) {
	pipe, plat := repro.Fig5Instance()
	s, err := repro.NewSession(pipe, plat)
	if err != nil {
		t.Fatal(err)
	}
	m := repro.SingleIntervalMapping(pipe.NumStages(), []int{0, 1, 2})
	want, err := repro.Evaluate(pipe, plat, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("session Evaluate = %+v, package Evaluate = %+v (must be bitwise identical)", got, want)
	}
	// Invalid mappings are still rejected through the cached path.
	bad := repro.SingleIntervalMapping(pipe.NumStages()+3, []int{0})
	if _, err := s.Evaluate(bad); err == nil {
		t.Error("invalid mapping must fail validation")
	}
}

// TestSessionCancelledSolveReturnsPartial is the acceptance scenario: a
// solve under an already-cancelled context must come back with a feasible
// best-so-far mapping graded Partial (never a blocking search, never a
// fake optimality claim).
func TestSessionCancelledSolveReturnsPartial(t *testing.T) {
	pipe := rampPipeline(t, 10)
	plat := hetPlatform(t, 10)
	// Force the exact enumeration route regardless of instance size.
	s, err := repro.NewSession(pipe, plat, repro.WithExactBudget(1e15))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	start := time.Now()
	res, err := s.Solve(ctx, repro.SolveRequest{Objective: repro.MinimizeFailureProb, MaxLatency: 1e6})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cancelled solve must still produce a best-effort result, got %v", err)
	}
	if res.Certainty != repro.Partial {
		t.Errorf("certainty = %v, want Partial", res.Certainty)
	}
	if res.Mapping == nil {
		t.Fatal("partial result must carry a mapping")
	}
	if met, err := s.Evaluate(res.Mapping); err != nil || met.Latency > 1e6 {
		t.Errorf("partial mapping must be feasible: metrics %+v, err %v", met, err)
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("cancelled solve took %v, want < 100ms", elapsed)
	}
}

// TestSessionCancelPrompt cancels an intractably large exact enumeration
// mid-flight and requires the solver to return within 100ms of the
// cancellation signal, with the incumbent graded Partial.
func TestSessionCancelPrompt(t *testing.T) {
	pipe := rampPipeline(t, 12)
	plat := hetPlatform(t, 14)
	s, err := repro.NewSession(pipe, plat, repro.WithExactBudget(1e18))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelledAt := make(chan time.Time, 1)
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancelledAt <- time.Now()
		cancel()
	}()
	res, err := s.Solve(ctx, repro.SolveRequest{Objective: repro.MinimizeFailureProb, MaxLatency: 1e6})
	sinceCancel := time.Since(<-cancelledAt)
	if sinceCancel > 100*time.Millisecond {
		t.Errorf("solve returned %v after cancellation, want < 100ms", sinceCancel)
	}
	if err != nil {
		t.Fatalf("cancelled solve must return its best-so-far, got %v", err)
	}
	if res.Certainty != repro.Partial {
		t.Errorf("certainty = %v, want Partial", res.Certainty)
	}
	if res.Mapping == nil {
		t.Error("partial result must carry a mapping")
	}
}

// TestSessionDeterministicUnderWorkers: completed (uncancelled) session
// solves must be identical for every worker count.
func TestSessionDeterministicUnderWorkers(t *testing.T) {
	pipe := rampPipeline(t, 6)
	plat := hetPlatform(t, 6)
	var ref repro.Result
	for i, workers := range []int{1, 2, 7} {
		s, err := repro.NewSession(pipe, plat, repro.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Solve(context.Background(), repro.SolveRequest{Objective: repro.MinimizeFailureProb, MaxLatency: 50})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res.Metrics != ref.Metrics || res.Mapping.String() != ref.Mapping.String() {
			t.Errorf("workers=%d: %+v differs from workers=1 result %+v", workers, res, ref)
		}
	}
}

// TestSessionConcurrentUse hammers one session from many goroutines (the
// -race CI job turns this into a data-race detector for the shared
// evaluator state) and checks that every goroutine sees identical answers.
func TestSessionConcurrentUse(t *testing.T) {
	pipe, plat := repro.Fig5Instance()
	s, err := repro.NewSession(pipe, plat)
	if err != nil {
		t.Fatal(err)
	}
	req := repro.SolveRequest{Objective: repro.MinimizeFailureProb, MaxLatency: 22}
	want, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	m := repro.SingleIntervalMapping(pipe.NumStages(), []int{0, 1})
	wantMet, err := s.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*3)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := s.Solve(context.Background(), req)
				if err != nil {
					errs <- err
					return
				}
				if res.Metrics != want.Metrics {
					errs <- errors.New("concurrent solve diverged")
					return
				}
				met, err := s.Evaluate(m)
				if err != nil || met != wantMet {
					errs <- errors.New("concurrent evaluate diverged")
					return
				}
				if _, _, err := s.Pareto(context.Background()); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSessionErrorsIsRoundTrip: the sentinels must survive every layer of
// wrapping between the solvers and the session surface.
func TestSessionErrorsIsRoundTrip(t *testing.T) {
	pipe := rampPipeline(t, 4)
	plat := hetPlatform(t, 4)

	// Exact enumeration proves infeasibility: ErrInfeasible.
	s, err := repro.NewSession(pipe, plat)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Solve(context.Background(), repro.SolveRequest{Objective: repro.MinimizeFailureProb, MaxLatency: 1e-4})
	if !errors.Is(err, repro.ErrInfeasible) {
		t.Errorf("errors.Is(err, ErrInfeasible) = false for %v", err)
	}
	if errors.Is(err, repro.ErrNotFound) {
		t.Errorf("proven infeasibility must not read as ErrNotFound: %v", err)
	}

	// Heuristic search exhausts without proof: ErrNotFound.
	sh, err := repro.NewSession(pipe, plat, repro.WithForceHeuristic(true))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sh.Solve(context.Background(), repro.SolveRequest{Objective: repro.MinimizeFailureProb, MaxLatency: 1e-4})
	if !errors.Is(err, repro.ErrNotFound) {
		t.Errorf("errors.Is(err, ErrNotFound) = false for %v", err)
	}
	if errors.Is(err, repro.ErrInfeasible) {
		t.Errorf("heuristic exhaustion must not claim proven infeasibility: %v", err)
	}
}

// TestSessionWithDeadlineOption: an (absurdly) short session deadline
// applies to every call without the caller wiring a context.
func TestSessionWithDeadlineOption(t *testing.T) {
	pipe := rampPipeline(t, 10)
	plat := hetPlatform(t, 10)
	s, err := repro.NewSession(pipe, plat,
		repro.WithExactBudget(1e15), repro.WithDeadline(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background(), repro.SolveRequest{Objective: repro.MinimizeFailureProb, MaxLatency: 1e6})
	if err != nil {
		t.Fatalf("deadline solve must degrade to best-effort, got %v", err)
	}
	if res.Certainty != repro.Partial {
		t.Errorf("certainty = %v, want Partial under an expired session deadline", res.Certainty)
	}
}

// TestSessionMonteCarloCancel: a cancelled campaign reports the trials it
// actually ran together with the context error.
func TestSessionMonteCarloCancel(t *testing.T) {
	pipe, plat := repro.Fig5Instance()
	s, err := repro.NewSession(pipe, plat, repro.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	m := repro.SingleIntervalMapping(pipe.NumStages(), []int{0, 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sum, err := s.MonteCarloCampaign(ctx, m, repro.SimConfig{}, 1_000_000)
	if err == nil {
		t.Fatal("cancelled campaign must report the cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if sum.Trials >= 1_000_000 {
		t.Errorf("campaign claims %d trials despite cancellation", sum.Trials)
	}

	// Uncancelled campaigns stay deterministic for a fixed seed.
	a, err := s.MonteCarloCampaign(context.Background(), m, repro.SimConfig{}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.MonteCarloCampaign(context.Background(), m, repro.SimConfig{}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("campaign not deterministic: %+v vs %+v", a, b)
	}
}

// TestSessionPareto: the session Pareto front matches the per-call
// surface and degrades to a Partial grade under cancellation.
func TestSessionPareto(t *testing.T) {
	pipe, plat := repro.Fig5Instance()
	s, err := repro.NewSession(pipe, plat)
	if err != nil {
		t.Fatal(err)
	}
	front, cert, err := s.Pareto(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantFront, wantCert, err := repro.ParetoFront(pipe, plat, repro.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cert != wantCert || front.Len() != wantFront.Len() {
		t.Errorf("session front (%d pts, %v) differs from top-level (%d pts, %v)",
			front.Len(), cert, wantFront.Len(), wantCert)
	}

	big := rampPipeline(t, 9)
	bigPl := hetPlatform(t, 9)
	sBig, err := repro.NewSession(big, bigPl, repro.WithExactBudget(1e15))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, cert, err = sBig.Pareto(ctx)
	if err != nil {
		t.Fatalf("cancelled Pareto must return the partial front, got %v", err)
	}
	if cert != repro.Partial {
		t.Errorf("certainty = %v, want Partial", cert)
	}
	cancel()
}

// TestSessionBounds sanity-checks the cached-instance bounds call.
func TestSessionBounds(t *testing.T) {
	pipe := rampPipeline(t, 5)
	plat := hetPlatform(t, 5)
	s, err := repro.NewSession(pipe, plat)
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := s.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if !(bounds.Lower <= bounds.Upper.Metrics.Latency+1e-9) || math.IsNaN(bounds.Lower) {
		t.Errorf("inconsistent bounds: %+v", bounds)
	}
}

// TestSessionParetoCancelledBeforeAnyPoint: a context that is already
// dead before the sweep starts must yield an error, not a silent empty
// front pretending to be a trade-off curve.
func TestSessionParetoCancelledBeforeAnyPoint(t *testing.T) {
	pipe := rampPipeline(t, 8)
	plat := hetPlatform(t, 8)
	s, err := repro.NewSession(pipe, plat, repro.WithForceHeuristic(true))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	front, _, err := s.Pareto(ctx)
	if err == nil {
		if front == nil || front.Len() == 0 {
			t.Error("cancelled Pareto returned an empty front with no error")
		}
	} else if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
}

// TestSessionWithRecorder: a session built with WithRecorder reports
// every solve into the shared recorder, and Result.Route names the
// route taken.
func TestSessionWithRecorder(t *testing.T) {
	pipe, plat := rampPipeline(t, 4), hetPlatform(t, 4)
	rec := repro.NewRecorder()
	s, err := repro.NewSession(pipe, plat, repro.WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background(), repro.SolveRequest{
		Objective:   repro.MinimizeLatency,
		MaxFailProb: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Route == "" {
		t.Fatal("Result.Route is empty")
	}
	if got := rec.Counter("solve_total").Load(); got != 1 {
		t.Fatalf("solve_total = %d, want 1", got)
	}
	stats := rec.SolveStats()
	if len(stats) == 0 {
		t.Fatal("recorder has no route profiles after a solve")
	}
}
