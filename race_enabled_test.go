//go:build race

package repro_test

// raceEnabled reports that this binary was built with the race detector,
// which slows wall-clock-bounded tests by an order of magnitude.
const raceEnabled = true
