package repro

// One benchmark per experiment of DESIGN.md §4. Each benchmark times the
// computation that regenerates the corresponding table; run
//
//	go test -bench=. -benchmem
//
// to reproduce all of them, or cmd/paperbench to print the tables.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/bitset"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/heuristics"
	"repro/internal/mapping"
	"repro/internal/npc"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/poly"
	"repro/internal/sim"
	"repro/internal/throughput"
	"repro/internal/workload"
)

// BenchmarkE1Fig34 regenerates the Figures 3-4 example: exhaustive
// interval-latency optimization on the fully heterogeneous platform.
func BenchmarkE1Fig34(b *testing.B) {
	p, pl := workload.Fig34()
	for i := 0; i < b.N; i++ {
		if _, err := exact.MinLatencyInterval(p, pl, exact.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2Fig5 regenerates the Figure 5 example: exhaustive bi-criteria
// optimization under the latency threshold 22.
func BenchmarkE2Fig5(b *testing.B) {
	p, pl := workload.Fig5()
	for i := 0; i < b.N; i++ {
		if _, err := exact.MinFPUnderLatency(p, pl, workload.Fig5LatencyThreshold,
			exact.Options{MaxEnum: 20_000_000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2Fig5DP is the ablation partner of E2: the same Figure 5
// optimum through the bitmask dynamic program (O(n²·3^m)) instead of full
// mapping enumeration.
func BenchmarkE2Fig5DP(b *testing.B) {
	p, pl := workload.Fig5()
	for i := 0; i < b.N; i++ {
		if _, err := exact.MinFPUnderLatencyDP(p, pl, workload.Fig5LatencyThreshold, exact.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2Fig5ParetoSeq and BenchmarkE2Fig5ParetoPar contrast the
// sequential and parallel exhaustive Pareto enumerations on the Figure 5
// instance (speedup scales with cores).
func BenchmarkE2Fig5ParetoSeq(b *testing.B) {
	p, pl := workload.Fig5()
	for i := 0; i < b.N; i++ {
		if _, err := exact.ParetoFront(p, pl, exact.Options{MaxEnum: 20_000_000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2Fig5ParetoPar(b *testing.B) {
	p, pl := workload.Fig5()
	for i := 0; i < b.N; i++ {
		if _, err := exact.ParetoFrontParallel(p, pl, exact.Options{}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3MinFP times Theorem 1 (trivial, the baseline cost of the
// routing layer).
func BenchmarkE3MinFP(b *testing.B) {
	p, pl := workload.Fig5()
	for i := 0; i < b.N; i++ {
		if _, err := poly.MinFailureProb(p, pl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4MinLatencyCommHom times Theorem 2.
func BenchmarkE4MinLatencyCommHom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inst := workload.Random(rng, platform.CommHomogeneous, 16, 64)
	for i := 0; i < b.N; i++ {
		if _, err := poly.MinLatencyCommHom(inst.Pipeline, inst.Platform); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5TSPReduction times a full Theorem 3 verification (gadget
// construction + Held-Karp + one-to-one enumeration) on a 7-vertex
// instance.
func BenchmarkE5TSPReduction(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 7
	cost := make([][]float64, n)
	for u := range cost {
		cost[u] = make([]float64, n)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			c := float64(1 + rng.Intn(9))
			cost[u][v], cost[v][u] = c, c
		}
	}
	ti := &npc.TSPInstance{Cost: cost, S: 0, T: n - 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := npc.VerifyTSPReduction(ti, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6GeneralShortestPath times Theorem 4's layered DP at n=m=64.
func BenchmarkE6GeneralShortestPath(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := pipeline.Random(rng, 64, 1, 10, 1, 10)
	pl := platform.RandomFullyHeterogeneous(rng, 64, 1, 10, 0, 1, 1, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		poly.MinLatencyGeneral(p, pl)
	}
}

// BenchmarkE6Dijkstra is the ablation partner of E6: same optimum through
// the explicit layered graph and Dijkstra.
func BenchmarkE6Dijkstra(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := pipeline.Random(rng, 64, 1, 10, 1, 10)
	pl := platform.RandomFullyHeterogeneous(rng, 64, 1, 10, 0, 1, 1, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.BuildLayered(p, pl)
		dist, _ := g.Dijkstra(graph.LayeredSource)
		_ = dist[graph.LayeredSink(64, 64)]
	}
}

// BenchmarkE7FullyHomBiCriteria times Algorithm 1 on a 1024-processor
// fully homogeneous platform.
func BenchmarkE7FullyHomBiCriteria(b *testing.B) {
	p := pipeline.MustNew([]float64{1, 1}, []float64{4, 9, 4})
	pl, err := platform.NewFullyHomogeneous(1024, 1, 2, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := poly.Algorithm1(p, pl, 500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8CommHomBiCriteria times Algorithm 3 on a 1024-processor
// CommHom+FailureHom platform.
func BenchmarkE8CommHomBiCriteria(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	speeds := make([]float64, 1024)
	fps := make([]float64, 1024)
	for i := range speeds {
		speeds[i] = 1 + rng.Float64()*9
		fps[i] = 0.4
	}
	pl, err := platform.NewCommHomogeneous(speeds, fps, 2)
	if err != nil {
		b.Fatal(err)
	}
	p := pipeline.MustNew([]float64{6, 4}, []float64{1, 2, 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := poly.Algorithm3(p, pl, 500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9PartitionReduction times a full Theorem 7 verification
// (subset-sum DP + 2^m gadget evaluations) at m=14.
func BenchmarkE9PartitionReduction(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := make([]int, 14)
	for i := range a {
		a[i] = 1 + rng.Intn(12)
	}
	pi := &npc.PartitionInstance{A: a}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := npc.VerifyPartitionReduction(pi); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10Greedy and BenchmarkE10Anneal time the open-case heuristics
// on a 6-stage, 20-processor CommHom+FailureHet instance.
func BenchmarkE10Greedy(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	inst := workload.Random(rng, platform.CommHomogeneous, 6, 20)
	fast, err := poly.MinLatencyCommHom(inst.Pipeline, inst.Platform)
	if err != nil {
		b.Fatal(err)
	}
	pr := &heuristics.Problem{Pipe: inst.Pipeline, Plat: inst.Platform, Goal: heuristics.MinFP, Bound: fast.Metrics.Latency * 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heuristics.Greedy(context.Background(), pr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10Anneal(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	inst := workload.Random(rng, platform.CommHomogeneous, 6, 20)
	fast, err := poly.MinLatencyCommHom(inst.Pipeline, inst.Platform)
	if err != nil {
		b.Fatal(err)
	}
	pr := &heuristics.Problem{Pipe: inst.Pipeline, Plat: inst.Platform, Goal: heuristics.MinFP, Bound: fast.Metrics.Latency * 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fixed seed: identical deterministic work per iteration (a
		// varying seed can hit a restart budget that misses feasibility).
		if _, err := heuristics.Anneal(context.Background(), pr, heuristics.AnnealConfig{Seed: 3, Iters: 1000, Restarts: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11SimWorstCase times one worst-case simulation of the Fig5
// split mapping; BenchmarkE11SimMonteCarlo one random-failure run;
// BenchmarkE11EstimateFP a 10k-trial FP estimation.
func BenchmarkE11SimWorstCase(b *testing.B) {
	p, pl := workload.Fig5()
	m := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	}
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(p, pl, m, sim.Config{Mode: sim.WorstCase}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11SimMonteCarlo(b *testing.B) {
	p, pl := workload.Fig5()
	m := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	}
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(p, pl, m, sim.Config{Mode: sim.MonteCarlo, RNG: rng}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11EstimateFP(b *testing.B) {
	_, pl := workload.Fig5()
	m := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	}
	rng := rand.New(rand.NewSource(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.EstimateFP(pl, m, 10_000, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12JPEG times the full JPEG case-study solve (exact routing on
// the 7-stage, 8-processor cluster).
func BenchmarkE12JPEG(b *testing.B) {
	tbl := func() { bench.E12JPEG() }
	for i := 0; i < b.N; i++ {
		tbl()
	}
}

// BenchmarkE13ScalabilityDP128 times the layered DP at n=m=128.
func BenchmarkE13ScalabilityDP128(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	p := pipeline.Random(rng, 128, 1, 10, 1, 10)
	pl := platform.RandomFullyHeterogeneous(rng, 128, 1, 10, 0, 1, 1, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		poly.MinLatencyGeneral(p, pl)
	}
}

// BenchmarkE13ScalabilityAlg1_4096 times Algorithm 1 at m=4096.
func BenchmarkE13ScalabilityAlg1_4096(b *testing.B) {
	p := pipeline.MustNew([]float64{2, 3}, []float64{1, 1, 1})
	pl, err := platform.NewFullyHomogeneous(4096, 2, 2, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := poly.Algorithm1(p, pl, 1e6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14ReplicationAblation times the k-sweep table (evaluation +
// worst-case simulation for k = 1..8).
func BenchmarkE14ReplicationAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E14ReplicationAblation()
	}
}

// BenchmarkE15TriCriteria times the exhaustive tri-criteria solver on the
// E15 instance (future work §5).
func BenchmarkE15TriCriteria(b *testing.B) {
	p := pipeline.MustNew([]float64{20, 120, 30}, []float64{8, 6, 4, 2})
	pl, err := platform.NewCommHomogeneous(
		[]float64{10, 10, 10, 10, 10}, []float64{0.2, 0.2, 0.2, 0.2, 0.2}, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := throughput.MinPeriodUnderConstraints(p, pl, 1e18, 0.2, exact.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE16PeriodEval times one period evaluation (the inner loop of
// the tri-criteria solvers).
func BenchmarkE16PeriodEval(b *testing.B) {
	p, pl := workload.Fig5()
	m := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	}
	for i := 0; i < b.N; i++ {
		if _, err := throughput.PeriodOverlap(p, pl, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE16SimSteadyState times a 48-data-set streaming simulation.
func BenchmarkE16SimSteadyState(b *testing.B) {
	p, pl := workload.Fig5()
	m := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	}
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(p, pl, m, sim.Config{Mode: sim.WorstCase, NumDataSets: 48}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE17IntervalBounds times the polynomial bounds for the open
// problem (shortest path + repair) at n=m=64.
func BenchmarkE17IntervalBounds(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	p := pipeline.Random(rng, 64, 1, 10, 1, 10)
	pl := platform.RandomFullyHeterogeneous(rng, 64, 1, 10, 0, 1, 1, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := poly.IntervalLatencyBounds(p, pl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluate times the analytic evaluators themselves (the inner
// loop of every solver).
func BenchmarkEvaluate(b *testing.B) {
	p, pl := workload.Fig5()
	m := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	}
	for i := 0; i < b.N; i++ {
		if _, err := mapping.Evaluate(p, pl, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE17BeamSearch times the beam-search heuristic for the open
// problem at n=32, m=48 (beam width 16).
func BenchmarkE17BeamSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	p := pipeline.Random(rng, 32, 1, 10, 1, 10)
	pl := platform.RandomFullyHeterogeneous(rng, 48, 1, 10, 0, 1, 1, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heuristics.BeamSearchMinLatency(context.Background(), &heuristics.Problem{Pipe: p, Plat: pl}, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionReuse quantifies what a long-lived Session amortizes
// versus the legacy per-call wrappers, which validate the instance and
// rebuild the evaluator state on every call. The Solve pair measures a
// full Figure 5 solve; the Evaluate pair isolates the metric evaluation
// hot path (the session serves it from the cached bitmask evaluator).
func BenchmarkSessionReuse(b *testing.B) {
	p, pl := workload.Fig5()
	req := SolveRequest{Objective: MinimizeFailureProb, MaxLatency: 22}
	prob := Problem{Pipeline: p, Platform: pl, Objective: MinimizeFailureProb, MaxLatency: 22}
	m := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	}
	ctx := context.Background()

	b.Run("Solve/session", func(b *testing.B) {
		s, err := NewSession(p, pl)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Solve/percall", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Solve(prob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Evaluate/session", func(b *testing.B) {
		s, err := NewSession(p, pl)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Evaluate(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Evaluate/percall", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Evaluate(p, pl, m); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// wideBenchInstance builds the m-processor fully heterogeneous platform
// used by the wide-platform (m > 64) benchmarks: per-processor speeds,
// failure probabilities and bandwidths all vary so the multi-word replica
// iteration is fully exercised.
func wideBenchInstance(b *testing.B, n, m int) (*pipeline.Pipeline, *platform.Platform) {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(100*n + m)))
	p := pipeline.Random(rng, n, 1, 10, 1, 10)
	pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.05, 0.95, 1, 20)
	return p, pl
}

// benchWideMinLatency times the exact latency solver on the multi-word
// wide search: singleton replica sets over every boundary split, pruned
// branch-and-bound, parallel first-interval fan-out.
func benchWideMinLatency(b *testing.B, n, m, workers int) {
	p, pl := wideBenchInstance(b, n, m)
	ev, err := mapping.NewEvaluator(p, pl)
	if err != nil {
		b.Fatal(err)
	}
	opts := exact.Options{Workers: workers, Eval: ev, MaxEnum: 1 << 62}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.MinLatencyInterval(p, pl, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWideM80Exact: m = 80, n = 3 — ≈ 500k singleton candidates.
func BenchmarkWideM80Exact(b *testing.B) {
	b.Run("seq", func(b *testing.B) { benchWideMinLatency(b, 3, 80, 1) })
	b.Run("par", func(b *testing.B) { benchWideMinLatency(b, 3, 80, 0) })
}

// BenchmarkWideM128Exact: m = 128, n = 3 — ≈ 2M singleton candidates on
// a two-word stride.
func BenchmarkWideM128Exact(b *testing.B) {
	b.Run("seq", func(b *testing.B) { benchWideMinLatency(b, 3, 128, 1) })
	b.Run("par", func(b *testing.B) { benchWideMinLatency(b, 3, 128, 0) })
}

// BenchmarkWideEvaluate isolates the multi-word evaluation hot path: one
// EvalW per iteration on an m = 128 candidate spanning both words.
func BenchmarkWideEvaluate(b *testing.B) {
	p, pl := wideBenchInstance(b, 6, 128)
	ev, err := mapping.NewEvaluator(p, pl)
	if err != nil {
		b.Fatal(err)
	}
	mp := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 1}, {First: 2, Last: 3}, {First: 4, Last: 5}},
		Alloc:     [][]int{{0, 65}, {10, 100}, {63, 64, 127}},
	}
	ends, words := mapping.BoundaryRepWide(mp, ev.Stride())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		met := ev.EvalW(ends, words)
		if met.Latency <= 0 {
			b.Fatal("bogus latency")
		}
	}
}

// BenchmarkEvaluateMany isolates one batch-evaluation call — the per-node
// unit of the exact search since the sibling-block refactor: score every
// singleton extension of a shared prefix in a single pass. narrow is the
// uint64 path at m = 64, wide the two-word stride path at m = 128. Both
// must stay allocation-free (pinned by CI).
func BenchmarkEvaluateMany(b *testing.B) {
	b.Run("narrow", func(b *testing.B) {
		p, pl := wideBenchInstance(b, 5, 64)
		ev, err := mapping.NewEvaluator(p, pl)
		if err != nil {
			b.Fatal(err)
		}
		out := make([]mapping.Sibling, 64)
		pre := mapping.BatchPrefix{Depth: 1, Lat: 1, Succ: 1, PrevFirst: 0, PrevLast: 0, PrevProc: 2}
		free := ^uint64(0) >> 1
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ev.EvaluateMany(pre, 1, 3, free, out) == 0 {
				b.Fatal("no siblings")
			}
		}
	})
	b.Run("wide", func(b *testing.B) {
		p, pl := wideBenchInstance(b, 5, 128)
		ev, err := mapping.NewEvaluator(p, pl)
		if err != nil {
			b.Fatal(err)
		}
		out := make([]mapping.Sibling, 128)
		pre := mapping.BatchPrefix{Depth: 1, Lat: 1, Succ: 1, PrevFirst: 0, PrevLast: 0, PrevProc: 100}
		free := bitset.Make(128)
		free.Fill(128)
		free.Remove(100)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ev.EvaluateManyW(pre, 1, 3, free, out) == 0 {
				b.Fatal("no siblings")
			}
		}
	})
}

// BenchmarkSharedIncumbentM80 contrasts the sequential search with the
// parallel one on the m = 80 wide instance: workers publish every new
// optimum through the shared incumbent, so parallel subtrees prune
// against the global best rather than their own. The outputs are
// bitwise-identical either way (see TestSharedIncumbentDeterminism); only
// the wall clock may differ.
func BenchmarkSharedIncumbentM80(b *testing.B) {
	b.Run("seq", func(b *testing.B) { benchWideMinLatency(b, 3, 80, 1) })
	b.Run("par", func(b *testing.B) { benchWideMinLatency(b, 3, 80, 0) })
}

// BenchmarkSharedIncumbentMemoM80 is the communication-homogeneous
// counterpart with a canonical suffix memo attached: processor speeds
// fold into 3 classes, so the branch-and-bound tail bound is the exact
// memoized suffix optimum instead of the static relaxation.
func BenchmarkSharedIncumbentMemoM80(b *testing.B) {
	rng := rand.New(rand.NewSource(380))
	p := pipeline.Random(rng, 3, 1, 10, 1, 10)
	pl := platform.RandomCommHomogeneous(rng, 80, 1, 10, 0.05, 0.95, 2)
	speeds := [3]float64{2.5, 5, 9}
	for u := range pl.Speed {
		pl.Speed[u] = speeds[u%3]
	}
	ev, err := mapping.NewEvaluator(p, pl)
	if err != nil {
		b.Fatal(err)
	}
	sm := exact.NewSuffixMemo(p, pl, 0)
	if sm == nil {
		b.Fatal("no suffix memo for the folded platform")
	}
	for _, bc := range []struct {
		name string
		opts exact.Options
	}{
		{"seq", exact.Options{Workers: 1, Eval: ev, SuffixMemo: sm, MaxEnum: 1 << 62}},
		{"par", exact.Options{Workers: 0, Eval: ev, SuffixMemo: sm, MaxEnum: 1 << 62}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exact.MinLatencyInterval(p, pl, bc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// heurBenchProblem builds the m-processor fully heterogeneous heuristics
// problem used by the wide greedy/anneal benchmarks: minimize FP under a
// latency bound 1.5× the fastest single processor, which is binding
// enough that greedy grows the mapping over many improvement rounds (the
// pre-refactor worst case). The evaluator is cached on the problem, so
// iterations measure the search, not the precomputation.
func heurBenchProblem(b *testing.B, n, m int) *heuristics.Problem {
	b.Helper()
	p, pl := wideBenchInstance(b, n, m)
	ref, err := mapping.Evaluate(p, pl, mapping.NewSingleInterval(n, []int{pl.FastestProc()}))
	if err != nil {
		b.Fatal(err)
	}
	return &heuristics.Problem{Pipe: p, Plat: pl, Goal: heuristics.MinFP, Bound: ref.Latency * 1.5}
}

// BenchmarkGreedyM80 times the full-het m = 80 greedy solve on the shared
// delta search state — the shape whose clone-path sweeps cost ~28s before
// the heuristics refactor (top-k bounded structural lookahead, apply/undo
// move scoring, zero allocations in the sweeps).
func BenchmarkGreedyM80(b *testing.B) {
	pr := heurBenchProblem(b, 12, 80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heuristics.Greedy(context.Background(), pr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepairM80 times the warm-restart repair after one crash in the
// m = 80 deployment — the reactive controller's hot path: load the
// deployed mapping into the incremental state, evict the dead replica,
// and re-optimize with bounded point-move rounds. Compare with
// BenchmarkGreedyM80, the cold solve on the same instance: the repair
// must stay an order of magnitude cheaper, which is what makes
// failure-reactive re-mapping viable at streaming rates.
func BenchmarkRepairM80(b *testing.B) {
	pr := heurBenchProblem(b, 12, 80)
	g, err := heuristics.Greedy(context.Background(), pr)
	if err != nil {
		b.Fatal(err)
	}
	banned := bitset.Make(80)
	banned.Add(g.Mapping.Alloc[0][0])
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heuristics.Repair(ctx, pr, g.Mapping, banned, heuristics.RepairBudget{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionRemapM80 times the same single-crash repair through the
// public Session.Remap surface (controller construction, eviction, greedy
// repair, violation grading) — the per-event server-side cost of the
// /v1/remap/stream endpoint.
func BenchmarkSessionRemapM80(b *testing.B) {
	pr := heurBenchProblem(b, 12, 80)
	s, err := NewSession(pr.Pipe, pr.Plat)
	if err != nil {
		b.Fatal(err)
	}
	g, err := heuristics.Greedy(context.Background(), pr)
	if err != nil {
		b.Fatal(err)
	}
	failed := make([]bool, 80)
	failed[g.Mapping.Alloc[0][0]] = true
	cfg := RemapConfig{Objective: MinimizeFailureProb, MaxLatency: pr.Bound}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Remap(ctx, g.Mapping, failed, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnnealDelta times the annealing walk on the incremental state
// at m = 80: each iteration applies, scores and (when rejected) undoes a
// move in place instead of cloning and re-validating a Mapping.
func BenchmarkAnnealDelta(b *testing.B) {
	pr := heurBenchProblem(b, 12, 80)
	cfg := heuristics.AnnealConfig{Seed: 3, Iters: 2000, Restarts: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heuristics.Anneal(context.Background(), pr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWideBeamSearch: the scalable wide-platform heuristic —
// session beam search over multi-word used-sets at m = 128 (the greedy +
// annealing Solve route runs at this width too since the delta refactor;
// see BenchmarkGreedyM80).
func BenchmarkWideBeamSearch(b *testing.B) {
	p, pl := wideBenchInstance(b, 8, 128)
	s, err := NewSession(p, pl)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.BeamSearchMinLatency(ctx, 16); err != nil {
			b.Fatal(err)
		}
	}
}
