//go:build !race

package repro_test

// raceEnabled reports that this binary was built with the race detector.
const raceEnabled = false
