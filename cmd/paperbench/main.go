// Command paperbench regenerates every experiment table of the
// reproduction (DESIGN.md §4): the paper's worked examples, executable
// validations of each theorem, and the extension experiments.
//
// Usage:
//
//	paperbench             # run every experiment
//	paperbench -run E2,E5  # run selected experiments
//	paperbench -list       # list experiment ids and titles
//	paperbench -timeout 30s # stop starting experiments past the budget
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

var experiments = []struct {
	id  string
	fn  func() *bench.Table
	ttl string
}{
	{"E1", bench.E1Fig34, "Figures 3-4 example"},
	{"E2", bench.E2Fig5, "Figure 5 example"},
	{"E3", bench.E3MinFP, "Theorem 1 validation"},
	{"E4", bench.E4MinLatencyCommHom, "Theorem 2 validation"},
	{"E5", bench.E5TSPReduction, "Theorem 3 reduction"},
	{"E6", bench.E6GeneralShortestPath, "Theorem 4 validation"},
	{"E7", bench.E7FullyHomBiCriteria, "Theorem 5 (Algorithms 1-2)"},
	{"E8", bench.E8CommHomBiCriteria, "Theorem 6 (Algorithms 3-4)"},
	{"E9", bench.E9PartitionReduction, "Theorem 7 reduction"},
	{"E10", bench.E10HeuristicsOpenCase, "open-case heuristics"},
	{"E11", bench.E11SimulatorValidation, "simulator validation"},
	{"E12", bench.E12JPEG, "JPEG case study"},
	{"E13", bench.E13Scalability, "scalability"},
	{"E14", bench.E14ReplicationAblation, "replication ablation"},
	{"E15", bench.E15TriCriteria, "tri-criteria (future work §5)"},
	{"E16", bench.E16PeriodValidation, "period model validation"},
	{"E17", bench.E17IntervalBounds, "open problem: interval latency bounds"},
}

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiment ids (e.g. E1,E5) or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	timeout := flag.Duration("timeout", 0, "wall-clock budget; experiments not started before it expires are skipped (0 = none)")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.id, e.ttl)
		}
		return
	}
	want := map[string]bool{}
	all := *runFlag == "all"
	if !all {
		for _, id := range strings.Split(*runFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ran := 0
	var skipped []string
	for _, e := range experiments {
		if !all && !want[e.id] {
			continue
		}
		if ctx.Err() != nil {
			skipped = append(skipped, e.id)
			continue
		}
		fmt.Println(e.fn().String())
		ran++
	}
	if len(skipped) > 0 {
		fmt.Fprintf(os.Stderr, "paperbench: wall-clock budget %s hit; skipped %s\n",
			*timeout, strings.Join(skipped, ","))
	}
	if ran == 0 && len(skipped) == 0 {
		fmt.Fprintf(os.Stderr, "paperbench: no experiment matches %q (use -list)\n", *runFlag)
		os.Exit(1)
	}
}
