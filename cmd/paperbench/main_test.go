package main

import (
	"strings"
	"testing"
)

func TestExperimentRegistryComplete(t *testing.T) {
	if len(experiments) != 17 {
		t.Fatalf("registry has %d experiments, want 17 (E1..E17)", len(experiments))
	}
	seen := map[string]bool{}
	for i, e := range experiments {
		want := "E" + itoa(i+1)
		if e.id != want {
			t.Errorf("experiment %d has id %s, want %s", i, e.id, want)
		}
		if seen[e.id] {
			t.Errorf("duplicate id %s", e.id)
		}
		seen[e.id] = true
		if e.fn == nil || e.ttl == "" {
			t.Errorf("%s incomplete", e.id)
		}
	}
}

// TestFastExperimentsRender runs the cheap experiments end to end through
// the registry (the expensive ones are covered by internal/bench tests).
func TestFastExperimentsRender(t *testing.T) {
	for _, e := range experiments {
		switch e.id {
		case "E1", "E5", "E7", "E8", "E9", "E16":
			tb := e.fn()
			out := tb.String()
			if !strings.Contains(out, e.id+":") {
				t.Errorf("%s output missing header:\n%s", e.id, out)
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
