package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRunDemoWorstCase(t *testing.T) {
	if err := run("", true, "worst", 0, 1, 1, 0, 0, 0, "", false, 0, 0); err != nil {
		t.Fatalf("demo worst: %v", err)
	}
}

func TestRunDemoMonteCarlo(t *testing.T) {
	if err := run("", true, "mc", 200, 7, 1, 0, 0, 0, "", false, 0, 0); err != nil {
		t.Fatalf("demo mc: %v", err)
	}
}

func TestRunDemoKillAndTrace(t *testing.T) {
	if err := run("", true, "worst", 0, 1, 1, 0, 2, 0, "1,2", true, 0, 0); err != nil {
		t.Fatalf("demo kill: %v", err)
	}
	// Killing the reliable processor fails the application but is not a
	// tool error.
	if err := run("", true, "worst", 0, 1, 1, 0, 0, 0, "0", false, 0, 0); err != nil {
		t.Fatalf("fatal kill: %v", err)
	}
}

func TestRunDemoStreaming(t *testing.T) {
	if err := run("", true, "worst", 0, 1, 5, 100, 0, 0, "", false, 0, 0); err != nil {
		t.Fatalf("streaming: %v", err)
	}
}

func TestRunFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inst.json")
	content := `{
	  "pipeline": {"w": [2, 2], "delta": [100, 100, 100]},
	  "platform": {
	    "speed": [1, 1], "failProb": [0.1, 0.1],
	    "b": [[0, 100], [100, 0]], "bIn": [100, 1], "bOut": [1, 100]
	  },
	  "mapping": {"intervals": [{"first":0,"last":0},{"first":1,"last":1}], "alloc": [[0],[1]]}
	}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, false, "worst", 0, 1, 1, 0, 0, 0, "", false, 0, 0); err != nil {
		t.Fatalf("file worst: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "nope.json"), false, "worst", 0, 1, 1, 0, 0, 0, "", false, 0, 0); err == nil {
		t.Error("missing file accepted")
	}
	if err := run("", true, "banana", 0, 1, 1, 0, 0, 0, "", false, 0, 0); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run("", true, "worst", 0, 1, 1, 0, 0, 0, "notanumber", false, 0, 0); err == nil {
		t.Error("bad kill list accepted")
	}
	if err := run("", true, "worst", 0, 1, 1, 0, 0, 0, "99", false, 0, 0); err == nil {
		t.Error("out-of-range kill id accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if err := run(bad, false, "worst", 0, 1, 1, 0, 0, 0, "", false, 0, 0); err == nil {
		t.Error("malformed JSON accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	os.WriteFile(empty, []byte("{}"), 0o644)
	if err := run(empty, false, "worst", 0, 1, 1, 0, 0, 0, "", false, 0, 0); err == nil {
		t.Error("instance without fields accepted")
	}
}

func TestRunMonteCarloWallBudget(t *testing.T) {
	// A generous budget completes all trials; the output path for the
	// truncated campaign is covered by the sim package's cancel tests.
	if err := run("", true, "mc", 300, 7, 1, 0, 0, 0, "", false, 2, time.Minute); err != nil {
		t.Fatalf("run mc -wall 1m: %v", err)
	}
}
