// Command pipesim runs the discrete-event simulator on a mapped pipeline
// workflow: worst-case adversarial mode (reproducing the paper's latency
// formulas), Monte-Carlo crash sampling, or explicit failure injection.
//
// Input format (stdin, or a file via -f):
//
//	{
//	  "pipeline": {"w": [...], "delta": [...]},
//	  "platform": {...},
//	  "mapping": {"intervals": [{"first":0,"last":0}], "alloc": [[0]]}
//	}
//
// With no input (-demo), the paper's Figure 5 instance and its optimal
// two-interval mapping are used.
//
// Flags:
//
//	-mode worst|mc   execution mode (default worst)
//	-trials N        Monte-Carlo trials (default 1000, mc mode)
//	-seed S          RNG seed (default 1)
//	-datasets D      data sets streamed through the pipeline (default 1)
//	-period P        release period between data sets (default 0)
//	-timeout T       consensus dead-coordinator timeout (default 0)
//	-msgsize X       consensus control message size (default 0)
//	-kill 1,4,7      explicit failure injection (processor ids, 0-based)
//	-workers N       Monte-Carlo campaign goroutines (default 1 so seeded
//	                 output is machine-independent; 0 = GOMAXPROCS)
//	-wall D          wall-clock budget for the campaign (e.g. 2s; 0 = none);
//	                 past it the partial statistics are printed
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

type instanceJSON struct {
	Pipeline *pipeline.Pipeline `json:"pipeline"`
	Platform *platform.Platform `json:"platform"`
	Mapping  *mapping.Mapping   `json:"mapping"`
}

func main() {
	file := flag.String("f", "", "instance JSON file (default: stdin unless -demo)")
	demo := flag.Bool("demo", false, "run the paper's Figure 5 instance")
	mode := flag.String("mode", "worst", "worst | mc")
	trials := flag.Int("trials", 1000, "Monte-Carlo trials")
	seed := flag.Int64("seed", 1, "RNG seed")
	datasets := flag.Int("datasets", 1, "number of data sets")
	period := flag.Float64("period", 0, "release period between data sets")
	timeout := flag.Float64("timeout", 0, "consensus dead-coordinator timeout")
	msgsize := flag.Float64("msgsize", 0, "consensus control message size")
	kill := flag.String("kill", "", "comma-separated processor ids to fail")
	trace := flag.Bool("trace", false, "print an ASCII Gantt chart of the run (worst/kill modes)")
	// Default 1, not GOMAXPROCS: the printed statistics depend on
	// (trials, workers, seed), so a host-dependent default would make the
	// same seeded command print different numbers on different machines.
	workers := flag.Int("workers", 1, "Monte-Carlo campaign goroutines (0 = GOMAXPROCS; >1 changes the RNG stream split)")
	wall := flag.Duration("wall", 0, "wall-clock budget for the Monte-Carlo campaign (0 = none)")
	flag.Parse()

	if err := run(*file, *demo, *mode, *trials, *seed, *datasets, *period, *timeout, *msgsize, *kill, *trace, *workers, *wall); err != nil {
		fmt.Fprintf(os.Stderr, "pipesim: %v\n", err)
		os.Exit(1)
	}
}

func run(file string, demo bool, mode string, trials int, seed int64, datasets int, period, timeout, msgsize float64, kill string, trace bool, workers int, wall time.Duration) error {
	var inst instanceJSON
	if demo {
		p, pl := workload.Fig5()
		inst = instanceJSON{
			Pipeline: p,
			Platform: pl,
			Mapping: &mapping.Mapping{
				Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
				Alloc:     [][]int{{0}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
			},
		}
	} else {
		in := os.Stdin
		if file != "" {
			f, err := os.Open(file)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		if err := json.NewDecoder(in).Decode(&inst); err != nil {
			return fmt.Errorf("decoding instance: %w", err)
		}
		if inst.Pipeline == nil || inst.Platform == nil || inst.Mapping == nil {
			return errors.New("instance needs \"pipeline\", \"platform\" and \"mapping\"")
		}
	}

	cfg := sim.Config{
		NumDataSets:      datasets,
		Period:           period,
		ConsensusTimeout: timeout,
		ControlMsgSize:   msgsize,
		CollectTrace:     trace,
	}

	analytic, err := mapping.Latency(inst.Pipeline, inst.Platform, inst.Mapping)
	if err != nil {
		return err
	}
	analyticFP := mapping.FailureProb(inst.Platform, inst.Mapping)
	fmt.Printf("mapping:          %s\n", inst.Mapping)
	fmt.Printf("analytic latency: %.6g\n", analytic)
	fmt.Printf("analytic FP:      %.6g\n", analyticFP)

	if kill != "" {
		failed := make([]bool, inst.Platform.NumProcs())
		for _, tok := range strings.Split(kill, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || id < 0 || id >= len(failed) {
				return fmt.Errorf("bad -kill id %q", tok)
			}
			failed[id] = true
		}
		res, err := sim.RunInjected(inst.Pipeline, inst.Platform, inst.Mapping, cfg, failed)
		if err != nil {
			return err
		}
		printRun("failure injection", res)
		return nil
	}

	switch mode {
	case "worst":
		res, err := sim.Run(inst.Pipeline, inst.Platform, inst.Mapping, cfg)
		if err != nil {
			return err
		}
		printRun("worst case", res)
	case "mc":
		// The campaign fans out over worker goroutines with deterministic
		// per-worker RNG streams; -wall maps to context cancellation, so an
		// over-budget campaign reports the trials it finished.
		ctx := context.Background()
		if wall > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, wall)
			defer cancel()
		}
		sum, err := sim.MonteCarloLatencyParallel(ctx, inst.Pipeline, inst.Platform, inst.Mapping, cfg, trials, workers, seed)
		if err != nil && sum.Trials == 0 {
			return err
		}
		if err != nil {
			fmt.Printf("mode:             Monte-Carlo, %d/%d trials (wall-clock budget hit)\n", sum.Trials, trials)
		} else {
			fmt.Printf("mode:             Monte-Carlo, %d trials\n", sum.Trials)
		}
		fmt.Printf("empirical FP:     %.6g (analytic %.6g)\n", sum.FailureRate, analyticFP)
		if sum.Completed > 0 {
			fmt.Printf("mean latency:     %.6g\n", sum.MeanLatency)
			fmt.Printf("max latency:      %.6g (worst-case bound %.6g)\n", sum.MaxLatency, analytic)
		}
	default:
		return fmt.Errorf("unknown mode %q (want worst or mc)", mode)
	}
	return nil
}

func printRun(name string, res sim.RunResult) {
	fmt.Printf("mode:             %s\n", name)
	fmt.Printf("completed:        %v\n", res.Completed)
	if len(res.FailedProcs) > 0 {
		fmt.Printf("failed procs:     %v\n", res.FailedProcs)
	}
	if res.Completed {
		fmt.Printf("max latency:      %.6g\n", res.MaxLatency)
		fmt.Printf("makespan:         %.6g\n", res.Makespan)
		if len(res.DatasetLatencies) > 1 {
			fmt.Printf("per-dataset:      %.6g\n", res.DatasetLatencies)
		}
	}
	fmt.Printf("events processed: %d\n", res.Events)
	if res.ConsensusRounds > 0 {
		fmt.Printf("consensus rounds: %d\n", res.ConsensusRounds)
	}
	if res.Trace != nil {
		fmt.Println()
		fmt.Print(res.Trace.Gantt(100))
	}
}
