package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/serve"
)

// TestServiceWiring spins the exact service configuration main would
// build and exercises one solve round trip (the full endpoint matrix is
// covered by the serve package's tests).
func TestServiceWiring(t *testing.T) {
	svc := serve.New(serve.Config{
		CacheSize:       8,
		DefaultDeadline: 5 * time.Second,
		MaxBatch:        4,
	})
	srv := httptest.NewServer(svc)
	defer srv.Close()

	body := `{
	  "pipeline": {"w": [1, 100], "delta": [10, 1, 0]},
	  "platform": {"speed": [1, 100], "failProb": [0.1, 0.8],
	               "b": [[0, 1], [1, 0]], "bIn": [1, 1], "bOut": [1, 1]},
	  "objective": "minFailureProb", "maxLatency": 22
	}`
	resp, err := srv.Client().Post(srv.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if resp, err := srv.Client().Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v / %v", err, resp)
	}
}
