// Command pipeserve runs the bi-criteria mapping solver as a JSON-over-
// HTTP service built on the library's session API: warm sessions are kept
// in an LRU keyed by instance hash, every request carries an optional
// deadline mapped to context cancellation, and batches fan out over a
// bounded worker pool.
//
// Endpoints:
//
//	POST /v1/solve         one problem  (same JSON schema as cmd/pipemap)
//	POST /v1/solve/batch   {"problems": [...]} — one result per problem
//	POST /v1/remap/stream  failure-reactive re-mapping campaign (NDJSON stream)
//	GET  /healthz          liveness probe
//	GET  /v1/stats         request, session-cache and latency counters
//	GET  /metrics          Prometheus text exposition of the same telemetry
//
// Example:
//
//	pipeserve -addr :8080 &
//	curl -s localhost:8080/v1/solve -d '{
//	  "pipeline": {"w": [1, 100], "delta": [10, 1, 0]},
//	  "platform": {"speed": [1, 100], "failProb": [0.1, 0.8],
//	               "b": [[0, 1], [1, 0]], "bIn": [1, 1], "bOut": [1, 1]},
//	  "objective": "minFailureProb", "maxLatency": 22,
//	  "deadlineMillis": 500
//	}'
//
// Flags:
//
//	-addr :8080           listen address
//	-cache 128            warm-session LRU capacity
//	-solcache 256         cross-request solution cache capacity: completed
//	                      answers keyed by canonical (relabeling-invariant)
//	                      instance hash (negative disables)
//	-deadline 30s         default per-request deadline (when the request has none)
//	-maxbatch 64          largest accepted batch
//	-parallel 0           concurrent solves per batch (0 = GOMAXPROCS)
//	-maxbody 8388608      largest accepted request body in bytes (413 past it)
//	-maxconcurrent 0      POST requests served at once (0 = 4 × GOMAXPROCS);
//	                      the overflow queues, the rest is shed with 429/503
//	-maxqueue 0           queued POST requests past the concurrency bound
//	                      (0 = 4 × maxconcurrent)
//	-metrics ""           optional second listen address serving only
//	                      GET /metrics, so the Prometheus scrape endpoint
//	                      can stay off the public solve port
//	-verbose              log one structured line per completed solve
//	                      (route, class size, certainty, timing, flags)
//	-readheadertimeout 10s  slowloris guard: time to receive request headers
//	-readtimeout 1m       time to receive a full request (headers + body)
//	-idletimeout 2m       keep-alive connections idle past this are closed
//	-drain 10s            graceful-shutdown drain deadline on SIGINT/SIGTERM
//
// No WriteTimeout is set on purpose: it would sever long re-mapping
// streams mid-flight; streams are already bounded by their own
// deadlineMillis mapped to context cancellation.
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests (including open re-mapping streams) for up to the
// -drain duration before exiting; a second signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 128, "warm-session LRU capacity")
	solCache := flag.Int("solcache", 256, "cross-request solution cache capacity (negative disables)")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request deadline")
	maxBatch := flag.Int("maxbatch", 64, "largest accepted batch")
	parallel := flag.Int("parallel", 0, "concurrent solves per batch (0 = GOMAXPROCS)")
	maxBody := flag.Int64("maxbody", 8<<20, "largest accepted request body in bytes")
	maxConcurrent := flag.Int("maxconcurrent", 0, "POST requests served at once (0 = 4 x GOMAXPROCS)")
	maxQueue := flag.Int("maxqueue", 0, "queued POST requests past the concurrency bound (0 = 4 x maxconcurrent)")
	metricsAddr := flag.String("metrics", "", "optional second listen address serving only GET /metrics")
	verbose := flag.Bool("verbose", false, "log one structured line per completed solve")
	readHeaderTimeout := flag.Duration("readheadertimeout", 10*time.Second, "time allowed to receive request headers (slowloris guard)")
	readTimeout := flag.Duration("readtimeout", time.Minute, "time allowed to receive a full request, headers and body")
	idleTimeout := flag.Duration("idletimeout", 2*time.Minute, "keep-alive connections idle past this are closed")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	flag.Parse()

	cfg := serve.Config{
		CacheSize:         *cache,
		SolutionCacheSize: *solCache,
		DefaultDeadline:   *deadline,
		MaxBatch:          *maxBatch,
		BatchParallelism:  *parallel,
		MaxBodyBytes:      *maxBody,
		MaxConcurrent:     *maxConcurrent,
		MaxQueue:          *maxQueue,
	}
	if *verbose {
		cfg.SolveLog = func(e serve.SolveLogEntry) {
			log.Printf("solve n=%d m=%d obj=%s route=%s certainty=%q elapsed=%s cacheHit=%t coalesced=%t cached=%t degraded=%t partial=%t err=%q",
				e.N, e.M, e.Objective, e.Route, e.Certainty, e.Elapsed, e.CacheHit, e.Coalesced, e.Cached, e.Degraded, e.Partial, e.Err)
		}
	}
	svc := serve.New(cfg)
	// No WriteTimeout: it would cut long-lived re-mapping streams; each
	// stream already bounds itself via its deadline context.
	server := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}

	// Optional private metrics listener: only GET /metrics, so operators
	// can scrape without exposing the solve API on the scrape network.
	var metricsServer *http.Server
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", svc.MetricsHandler())
		metricsServer = &http.Server{
			Addr:              *metricsAddr,
			Handler:           mux,
			ReadHeaderTimeout: *readHeaderTimeout,
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	if metricsServer != nil {
		go func() {
			if err := metricsServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pipeserve: metrics listener: %v", err)
			}
		}()
		log.Printf("pipeserve: metrics on %s", *metricsAddr)
	}
	log.Printf("pipeserve: listening on %s (cache=%d, deadline=%s)", *addr, *cache, *deadline)

	select {
	case err := <-errc:
		log.Fatalf("pipeserve: %v", err)
	case <-ctx.Done():
		// stop() re-arms the signals: a second SIGINT/SIGTERM during the
		// drain kills the process immediately instead of waiting it out.
		stop()
		log.Printf("pipeserve: draining for up to %s (signal again to abort)", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("pipeserve: shutdown: %v", err)
		}
		if metricsServer != nil {
			if err := metricsServer.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pipeserve: metrics shutdown: %v", err)
			}
		}
	}
}
