package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

const fig5Problem = `{
  "pipeline": {"w": [1, 100], "delta": [10, 1, 0]},
  "platform": {
    "speed": [1, 100, 100], "failProb": [0.1, 0.8, 0.8],
    "b": [[0, 1, 1], [1, 0, 1], [1, 1, 0]],
    "bIn": [1, 1, 1], "bOut": [1, 1, 1]
  },
  "objective": "minFailureProb",
  "maxLatency": 22
}`

func writeProblem(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "problem.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSolve(t *testing.T) {
	path := writeProblem(t, fig5Problem)
	if err := run(path, false, false, false, 0, 0, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunPareto(t *testing.T) {
	path := writeProblem(t, fig5Problem)
	if err := run(path, true, false, false, 0, 0, 0); err != nil {
		t.Fatalf("run -pareto: %v", err)
	}
}

func TestRunGeneralAndHeuristic(t *testing.T) {
	path := writeProblem(t, fig5Problem)
	if err := run(path, false, true, true, 0, 0, 0); err != nil {
		t.Fatalf("run -general -heuristic: %v", err)
	}
}

func TestRunMinLatencyObjective(t *testing.T) {
	path := writeProblem(t, `{
	  "pipeline": {"w": [1], "delta": [1, 1]},
	  "platform": {"speed": [2], "failProb": [0.1], "b": [[0]], "bIn": [1], "bOut": [1]},
	  "objective": "minLatency"
	}`)
	if err := run(path, false, false, false, 0, 0, 0); err != nil {
		t.Fatalf("run minLatency: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.json"), false, false, false, 0, 0, 0); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeProblem(t, `{not json`)
	if err := run(bad, false, false, false, 0, 0, 0); err == nil {
		t.Error("malformed JSON accepted")
	}
	noPipe := writeProblem(t, `{"platform": {"speed": [1], "failProb": [0], "b": [[0]], "bIn": [1], "bOut": [1]}}`)
	if err := run(noPipe, false, false, false, 0, 0, 0); err == nil {
		t.Error("problem without pipeline accepted")
	}
	badObjective := writeProblem(t, `{
	  "pipeline": {"w": [1], "delta": [1, 1]},
	  "platform": {"speed": [1], "failProb": [0], "b": [[0]], "bIn": [1], "bOut": [1]},
	  "objective": "maximizeFun"
	}`)
	if err := run(badObjective, false, false, false, 0, 0, 0); err == nil {
		t.Error("unknown objective accepted")
	}
	infeasible := writeProblem(t, `{
	  "pipeline": {"w": [1, 100], "delta": [10, 1, 0]},
	  "platform": {
	    "speed": [1, 100], "failProb": [0.1, 0.8],
	    "b": [[0, 1], [1, 0]], "bIn": [1, 1], "bOut": [1, 1]
	  },
	  "objective": "minFailureProb",
	  "maxLatency": 0.5
	}`)
	if err := run(infeasible, false, false, false, 0, 0, 0); err == nil {
		t.Error("infeasible problem reported success")
	}
}

func TestRunWithTimeoutAndTuning(t *testing.T) {
	path := writeProblem(t, fig5Problem)
	if err := run(path, false, false, false, time.Second, 2, 1e6); err != nil {
		t.Fatalf("run -timeout 1s -workers 2 -budget 1e6: %v", err)
	}
}
