// Command pipemap solves a bi-criteria pipeline mapping problem described
// in JSON and prints the mapping, its metrics, and the provenance of the
// answer (which of the paper's algorithms produced it). It drives the
// library's Session API, so solves are deadline-aware: with -timeout the
// search is cancelled at the deadline and the best-so-far mapping is
// printed marked "partial".
//
// Input format (stdin, or a file via -f):
//
//	{
//	  "pipeline": {"w": [1, 100], "delta": [10, 1, 0]},
//	  "platform": {
//	    "speed": [1, 100], "failProb": [0.1, 0.8],
//	    "b": [[0, 1], [1, 0]], "bIn": [1, 1], "bOut": [1, 1]
//	  },
//	  "objective": "minFailureProb",   // or "minLatency"
//	  "maxLatency": 22,                // constraint (0 = none)
//	  "maxFailProb": 0                 // constraint (0 or 1 = none)
//	}
//
// Flags:
//
//	-f file      read the problem from a file instead of stdin
//	-pareto      print the latency/FP Pareto front instead of one answer
//	-general     print Theorem 4's latency-optimal general mapping too
//	-heuristic   skip exact enumeration even on small instances
//	-timeout d   wall-clock budget (e.g. 500ms; 0 = none)
//	-workers n   solver goroutines (0 = GOMAXPROCS)
//	-budget x    exact-vs-heuristic routing budget (0 = default)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

type problemJSON struct {
	Pipeline    *pipeline.Pipeline `json:"pipeline"`
	Platform    *platform.Platform `json:"platform"`
	Objective   string             `json:"objective"`
	MaxLatency  float64            `json:"maxLatency"`
	MaxFailProb float64            `json:"maxFailProb"`
}

func main() {
	file := flag.String("f", "", "problem JSON file (default: stdin)")
	pareto := flag.Bool("pareto", false, "print the Pareto front")
	general := flag.Bool("general", false, "also print the Theorem 4 general mapping")
	heuristic := flag.Bool("heuristic", false, "force heuristic solving")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = none)")
	workers := flag.Int("workers", 0, "solver goroutines (0 = GOMAXPROCS)")
	budget := flag.Float64("budget", 0, "exact-vs-heuristic routing budget (0 = default)")
	flag.Parse()

	if err := run(*file, *pareto, *general, *heuristic, *timeout, *workers, *budget); err != nil {
		fmt.Fprintf(os.Stderr, "pipemap: %v\n", err)
		os.Exit(1)
	}
}

func run(file string, pareto, general, heuristic bool, timeout time.Duration, workers int, budget float64) error {
	var in io.Reader = os.Stdin
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var pj problemJSON
	if err := json.NewDecoder(in).Decode(&pj); err != nil {
		return fmt.Errorf("decoding problem: %w", err)
	}
	if pj.Pipeline == nil || pj.Platform == nil {
		return errors.New("problem needs both \"pipeline\" and \"platform\"")
	}
	fmt.Printf("application: %s\n", pj.Pipeline)
	fmt.Printf("platform:    %s\n", pj.Platform)

	opts := []repro.SessionOption{
		repro.WithWorkers(workers),
		repro.WithExactBudget(budget),
		repro.WithForceHeuristic(heuristic),
	}
	if timeout > 0 {
		opts = append(opts, repro.WithDeadline(timeout))
	}
	sess, err := repro.NewSession(pj.Pipeline, pj.Platform, opts...)
	if err != nil {
		return err
	}
	ctx := context.Background()

	if pareto {
		front, cert, err := sess.Pareto(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("pareto front (%s, %d points):\n", cert, front.Len())
		fmt.Printf("  %-14s %-14s mapping\n", "latency", "failureProb")
		for _, e := range front.Entries() {
			fmt.Printf("  %-14.6g %-14.6g %s\n", e.Metrics.Latency, e.Metrics.FailureProb, e.Mapping)
		}
		return nil
	}

	obj := repro.MinimizeFailureProb
	switch pj.Objective {
	case "minLatency":
		obj = repro.MinimizeLatency
	case "minFailureProb", "minFP", "":
	default:
		return fmt.Errorf("unknown objective %q (want minLatency or minFailureProb)", pj.Objective)
	}
	res, err := sess.Solve(ctx, repro.SolveRequest{
		Objective:   obj,
		MaxLatency:  pj.MaxLatency,
		MaxFailProb: pj.MaxFailProb,
	})
	if err != nil {
		return err
	}
	fmt.Printf("objective:   %s\n", obj)
	fmt.Printf("mapping:     %s\n", res.Mapping)
	fmt.Printf("latency:     %.6g\n", res.Metrics.Latency)
	fmt.Printf("failureProb: %.6g\n", res.Metrics.FailureProb)
	fmt.Printf("method:      %s (%s)\n", res.Method, res.Certainty)
	if res.Certainty == repro.Partial {
		fmt.Printf("note:        deadline hit — best mapping found before cancellation\n")
	}

	if general {
		g, err := core.MinLatencyGeneral(pj.Pipeline, pj.Platform)
		if err != nil {
			return err
		}
		fmt.Printf("general mapping (Theorem 4): %s  latency %.6g\n", g.Mapping, g.Latency)
	}
	return nil
}
