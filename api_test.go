package repro

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestQuickstartFlow exercises the documented public API end to end on
// the paper's Figure 5 instance.
func TestQuickstartFlow(t *testing.T) {
	p, pl := Fig5Instance()
	res, err := Solve(Problem{
		Pipeline:   p,
		Platform:   pl,
		Objective:  MinimizeFailureProb,
		MaxLatency: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (1-0.1)*(1-math.Pow(0.8, 10))
	if math.Abs(res.Metrics.FailureProb-want) > 1e-12 {
		t.Errorf("FP = %g, want %g", res.Metrics.FailureProb, want)
	}
	// Round trip through the public evaluators.
	met, err := Evaluate(p, pl, res.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	if met != res.Metrics {
		t.Error("Evaluate disagrees with Solve's metrics")
	}
	if lat, _ := Latency(p, pl, res.Mapping); lat != met.Latency {
		t.Error("Latency disagrees with Evaluate")
	}
	if fp := FailureProb(pl, res.Mapping); fp != met.FailureProb {
		t.Error("FailureProb disagrees with Evaluate")
	}
	if fpl := FailureProbLog(pl, res.Mapping); math.Abs(fpl-met.FailureProb) > 1e-9 {
		t.Error("FailureProbLog disagrees with FailureProb")
	}
}

func TestConstructors(t *testing.T) {
	if _, err := NewPipeline([]float64{1}, []float64{1, 1}); err != nil {
		t.Errorf("NewPipeline: %v", err)
	}
	if _, err := NewPipeline(nil, nil); err == nil {
		t.Error("invalid pipeline accepted")
	}
	if p := UniformPipeline(4, 2, 3); p.NumStages() != 4 {
		t.Error("UniformPipeline wrong shape")
	}
	if p := JPEGPipeline(100, 100); p.NumStages() != 7 {
		t.Error("JPEGPipeline wrong shape")
	}
	if _, err := NewFullyHomogeneousPlatform(3, 1, 1, 0.5); err != nil {
		t.Errorf("NewFullyHomogeneousPlatform: %v", err)
	}
	if _, err := NewCommHomogeneousPlatform([]float64{1}, []float64{0.5}, 1); err != nil {
		t.Errorf("NewCommHomogeneousPlatform: %v", err)
	}
	if _, err := NewFullyHeterogeneousPlatform(
		[]float64{1}, []float64{0}, [][]float64{{0}}, []float64{1}, []float64{1}); err != nil {
		t.Errorf("NewFullyHeterogeneousPlatform: %v", err)
	}
}

func TestGeneralMappingAPI(t *testing.T) {
	p, pl := Fig34Instance()
	g, lat, err := MinLatencyGeneralMapping(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat-7) > 1e-9 {
		t.Errorf("latency = %g, want 7", lat)
	}
	if !g.IsOneToOne() {
		t.Error("Fig34 optimum should be one-to-one")
	}
}

func TestMinFailureProbAPI(t *testing.T) {
	p, pl := Fig5Instance()
	res, err := MinFailureProb(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Certainty != ProvablyOptimal {
		t.Error("Theorem 1 result should be provably optimal")
	}
}

func TestSimulationAPI(t *testing.T) {
	p, pl := Fig5Instance()
	m := SingleIntervalMapping(2, []int{1, 2})
	res, err := Simulate(p, pl, m, SimConfig{Mode: WorstCase})
	if err != nil {
		t.Fatal(err)
	}
	analytic, _ := Latency(p, pl, m)
	if math.Abs(res.MaxLatency-analytic) > 1e-9 {
		t.Errorf("simulated %g != analytic %g", res.MaxLatency, analytic)
	}
	inj, err := SimulateInjected(p, pl, m, SimConfig{}, make([]bool, 11))
	if err != nil || !inj.Completed {
		t.Errorf("injection with no failures must complete: %v %v", inj, err)
	}
	est, err := EstimateFailureProb(pl, m, 5000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !est.Within(FailureProb(pl, m), 4) {
		t.Errorf("estimate %g ± %g too far from analytic %g", est.FP, est.StdErr, FailureProb(pl, m))
	}
}

func TestParetoFrontAPI(t *testing.T) {
	p, _ := Fig5Instance()
	pl, _ := NewCommHomogeneousPlatform([]float64{1, 100, 100}, []float64{0.1, 0.8, 0.8}, 1)
	front, cert, err := ParetoFront(p, pl, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cert != ExhaustivelyOptimal || front.Len() == 0 {
		t.Errorf("front: %d points, certainty %v", front.Len(), cert)
	}
}

func TestLemma1API(t *testing.T) {
	p := UniformPipeline(3, 2, 1)
	pl, _ := NewFullyHomogeneousPlatform(4, 1, 1, 0.3)
	m := &Mapping{
		Intervals: []Interval{{First: 0, Last: 0}, {First: 1, Last: 2}},
		Alloc:     [][]int{{0, 1}, {2}},
	}
	single, err := Lemma1SingleInterval(p, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	if single.NumIntervals() != 1 {
		t.Error("Lemma 1 must return a single interval")
	}
	before, _ := Evaluate(p, pl, m)
	after, _ := Evaluate(p, pl, single)
	if after.Latency > before.Latency+1e-9 || after.FailureProb > before.FailureProb+1e-12 {
		t.Error("Lemma 1 transformation worsened a criterion")
	}
}

func TestErrorSentinels(t *testing.T) {
	p, pl := Fig5Instance()
	_, err := Solve(Problem{Pipeline: p, Platform: pl, Objective: MinimizeFailureProb, MaxLatency: 0.1})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestThroughputAPI(t *testing.T) {
	p, err := NewPipeline([]float64{100}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewCommHomogeneousPlatform(
		[]float64{10, 10, 10}, []float64{0.3, 0.3, 0.3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := SingleIntervalMapping(1, []int{0, 1, 2})

	per, err := Period(p, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	sus, err := PeriodSustainable(p, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	no, err := PeriodNoOverlap(p, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	if !(per <= sus+1e-12 && sus <= no+1e-12) {
		t.Errorf("period ordering broken: %g, %g, %g", per, sus, no)
	}

	rr := RoundRobinMapping(m)
	if err := rr.Validate(1, 3); err != nil {
		t.Fatalf("RoundRobinMapping invalid: %v", err)
	}
	met, err := rr.Evaluate(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(met.Period-per) > 1e-9 {
		t.Errorf("single-group RR period %g != Period %g", met.Period, per)
	}

	greedy, err := GreedyRoundRobin(p, pl, m, math.Inf(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Metrics.Period > per+1e-12 {
		t.Error("greedy RR worsened the period")
	}

	exactRes, err := MinPeriodUnderConstraints(p, pl, math.Inf(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if exactRes.Metrics.Period > greedy.Metrics.Period+1e-9 {
		t.Error("exhaustive tri-criteria worse than greedy")
	}

	front, err := TriParetoFront(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if front.Len() == 0 {
		t.Error("empty tri-criteria front")
	}
}

func TestParallelEstimatorsAPI(t *testing.T) {
	p, pl := Fig5Instance()
	m := &Mapping{
		Intervals: []Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	}
	analytic := FailureProb(pl, m)
	est, err := EstimateFailureProbParallel(pl, m, 20000, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Within(analytic, 4) {
		t.Errorf("parallel estimate %g ± %g vs analytic %g", est.FP, est.StdErr, analytic)
	}
	sum, err := MonteCarloCampaign(p, pl, m, SimConfig{}, 500, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Trials != 500 || sum.Completed+sum.Failures != 500 {
		t.Errorf("campaign accounting: %+v", sum)
	}
}

func TestTraceAPI(t *testing.T) {
	p, pl := Fig5Instance()
	m := SingleIntervalMapping(2, []int{1, 2})
	res, err := Simulate(p, pl, m, SimConfig{Mode: WorstCase, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Gantt(50) == "" {
		t.Error("trace missing through the public API")
	}
}
