package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro"
)

// Property suite for the canonical-form layer: for random instances at
// m ∈ {8, 64, 80, 128} and random processor relabelings,
//
//	(a) the canonical bytes are identical across relabelings,
//	(b) Session.Solve metrics are bitwise-equal between the original and
//	    the permuted instance, and
//	(c) the canonical instance's solved mapping, translated back through
//	    the stored permutation, re-scores to bitwise-equal metrics via the
//	    original session's evaluator.
//
// Bitwise float equality under relabeling needs care: a permuted alloc
// set multiplies its failure probabilities in a different order, and
// float products are not associative in general. The scenarios are
// chosen so every label-order-sensitive reduction is exact — power-of-two
// failure probabilities (products of powers of two round nowhere), or
// minLatency optima (singleton allocs, so no label-ordered reductions at
// all) — and restricted to provably/exhaustively graded routes, because
// the heuristic route's annealing trajectory is label-dependent by
// construction.

// pow2FailProbs draws failure probabilities of the form 2^-k, k ∈ 1..4.
func pow2FailProbs(rng *rand.Rand, m int) []float64 {
	fps := make([]float64, m)
	for i := range fps {
		fps[i] = math.Ldexp(1, -(1 + rng.Intn(4)))
	}
	return fps
}

func continuousSpeeds(rng *rand.Rand, m int) []float64 {
	s := make([]float64, m)
	for i := range s {
		s[i] = 1 + 9*rng.Float64()
	}
	return s
}

// canonScenario is one (instance, solve request) pair of the suite.
type canonScenario struct {
	name string
	pipe *repro.Pipeline
	plat *repro.Platform
	req  repro.SolveRequest
}

// scenariosFor builds the property scenarios for one platform width.
func scenariosFor(t *testing.T, m int) []canonScenario {
	t.Helper()
	var out []canonScenario

	// minLatency, unconstrained, fully heterogeneous continuous draws:
	// optima use singleton allocs, so evaluation has no label-ordered
	// reduction at all.
	rng := rand.New(rand.NewSource(int64(1000 + m)))
	pipeHet := repro.UniformPipeline(5, 1, 1)
	{
		w := make([]float64, 5)
		d := make([]float64, 6)
		for i := range w {
			w[i] = 1 + 9*rng.Float64()
		}
		for i := range d {
			d[i] = 1 + 4*rng.Float64()
		}
		var err error
		pipeHet, err = repro.NewPipeline(w, d)
		if err != nil {
			t.Fatal(err)
		}
	}
	bMat := make([][]float64, m)
	bIn := make([]float64, m)
	bOut := make([]float64, m)
	for u := 0; u < m; u++ {
		bMat[u] = make([]float64, m)
		bIn[u] = 1 + 4*rng.Float64()
		bOut[u] = 1 + 4*rng.Float64()
	}
	for u := 0; u < m; u++ {
		for v := u + 1; v < m; v++ {
			bw := 1 + 4*rng.Float64()
			bMat[u][v], bMat[v][u] = bw, bw
		}
	}
	het, err := repro.NewFullyHeterogeneousPlatform(continuousSpeeds(rng, m), pow2FailProbs(rng, m), bMat, bIn, bOut)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, canonScenario{
		name: "minLatency/het",
		pipe: pipeHet, plat: het,
		req: repro.SolveRequest{Objective: repro.MinimizeLatency},
	})

	// minFailureProb, unconstrained, CommHom with power-of-two failure
	// probabilities: Theorem 1 replicates everything on one interval and
	// the exact products make the FP reduction order-free.
	rng = rand.New(rand.NewSource(int64(2000 + m)))
	commHom, err := repro.NewCommHomogeneousPlatform(continuousSpeeds(rng, m), pow2FailProbs(rng, m), 2)
	if err != nil {
		t.Fatal(err)
	}
	pipeCH, err := repro.NewPipeline(
		[]float64{1 + 9*rng.Float64(), 1 + 9*rng.Float64(), 1 + 9*rng.Float64()},
		[]float64{1, 2, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, canonScenario{
		name: "minFP/commHom",
		pipe: pipeCH, plat: commHom,
		req: repro.SolveRequest{Objective: repro.MinimizeFailureProb},
	})

	// minLatency, unconstrained, CommHom (Theorem 2: fastest processor).
	out = append(out, canonScenario{
		name: "minLatency/commHom",
		pipe: pipeCH, plat: commHom,
		req: repro.SolveRequest{Objective: repro.MinimizeLatency},
	})

	// minFailureProb under a latency bound, small instance only: the
	// bounded bi-criteria route (DP/exact enumeration) with power-of-two
	// failure probabilities. The bound is computed once from the original
	// instance so every relabeled run sees the identical float.
	if m == 8 {
		sess, err := repro.NewSession(pipeCH, commHom)
		if err != nil {
			t.Fatal(err)
		}
		lat, err := sess.Solve(context.Background(), repro.SolveRequest{Objective: repro.MinimizeLatency})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, canonScenario{
			name: "minFP/latencyBound",
			pipe: pipeCH, plat: commHom,
			req: repro.SolveRequest{Objective: repro.MinimizeFailureProb, MaxLatency: 2 * lat.Metrics.Latency},
		})
	}
	return out
}

// solveGraded solves and asserts the answer is provably or exhaustively
// graded — the property suite must never compare label-dependent
// heuristic trajectories.
func solveGraded(t *testing.T, p *repro.Pipeline, pl *repro.Platform, req repro.SolveRequest) repro.Result {
	t.Helper()
	sess, err := repro.NewSession(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Certainty != repro.ProvablyOptimal && res.Certainty != repro.ExhaustivelyOptimal {
		t.Fatalf("scenario routed to %q (%s); the suite needs an optimal route", res.Certainty, res.Method)
	}
	return res
}

func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestCanonicalPropertySuite(t *testing.T) {
	for _, m := range []int{8, 64, 80, 128} {
		m := m
		t.Run(fmt.Sprintf("m=%d", m), func(t *testing.T) {
			for _, sc := range scenariosFor(t, m) {
				sc := sc
				t.Run(sc.name, func(t *testing.T) {
					base, err := repro.CanonicalizeInstance(sc.pipe, sc.plat)
					if err != nil {
						t.Fatal(err)
					}
					orig := solveGraded(t, sc.pipe, sc.plat, sc.req)

					// (c) Solve the canonical instance and re-score its
					// translated mapping on the original labeling.
					canonRes := solveGraded(t, base.Pipeline(), base.Platform(), sc.req)
					translated := base.ToOriginal(canonRes.Mapping)
					origSess, err := repro.NewSession(sc.pipe, sc.plat)
					if err != nil {
						t.Fatal(err)
					}
					rescored, err := origSess.Evaluate(translated)
					if err != nil {
						t.Fatalf("translated mapping invalid on the original instance: %v", err)
					}
					if !bitsEqual(rescored.Latency, canonRes.Metrics.Latency) || !bitsEqual(rescored.FailureProb, canonRes.Metrics.FailureProb) {
						t.Fatalf("translated mapping re-scores to (%v, %v), canonical solve said (%v, %v)",
							rescored.Latency, rescored.FailureProb, canonRes.Metrics.Latency, canonRes.Metrics.FailureProb)
					}

					rng := rand.New(rand.NewSource(int64(31*m) + int64(len(sc.name))))
					for trial := 0; trial < 3; trial++ {
						perm := rng.Perm(sc.plat.NumProcs())
						permuted := sc.plat.Permute(perm)

						// (a) identical canonical bytes.
						cn, err := repro.CanonicalizeInstance(sc.pipe, permuted)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(cn.Bytes, base.Bytes) {
							t.Fatalf("trial %d: canonical bytes differ under relabeling", trial)
						}

						// (b) bitwise-equal solve metrics.
						permRes := solveGraded(t, sc.pipe, permuted, sc.req)
						if !bitsEqual(permRes.Metrics.Latency, orig.Metrics.Latency) || !bitsEqual(permRes.Metrics.FailureProb, orig.Metrics.FailureProb) {
							t.Fatalf("trial %d: permuted solve metrics (%v, %v) != original (%v, %v)",
								trial, permRes.Metrics.Latency, permRes.Metrics.FailureProb, orig.Metrics.Latency, orig.Metrics.FailureProb)
						}
						if permRes.Certainty != orig.Certainty {
							t.Fatalf("trial %d: certainty changed under relabeling: %v vs %v", trial, permRes.Certainty, orig.Certainty)
						}

						// (c) on the permuted labeling too: the canonical
						// mapping translated through the permuted instance's
						// own permutation re-scores identically there.
						permTranslated := cn.ToOriginal(canonRes.Mapping)
						permSess, err := repro.NewSession(sc.pipe, permuted)
						if err != nil {
							t.Fatal(err)
						}
						permScored, err := permSess.Evaluate(permTranslated)
						if err != nil {
							t.Fatalf("trial %d: translated mapping invalid on permuted instance: %v", trial, err)
						}
						if !bitsEqual(permScored.Latency, canonRes.Metrics.Latency) || !bitsEqual(permScored.FailureProb, canonRes.Metrics.FailureProb) {
							t.Fatalf("trial %d: permuted re-score (%v, %v) != canonical (%v, %v)",
								trial, permScored.Latency, permScored.FailureProb, canonRes.Metrics.Latency, canonRes.Metrics.FailureProb)
						}
					}
				})
			}
		})
	}
}
