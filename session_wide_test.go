package repro_test

import (
	"context"
	"math"
	"testing"
	"time"

	"repro"
)

// closeTo allows float-reassociation noise between evaluation orders.
func closeTo(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// Wide-platform (m > 64) session behavior: construction caches the
// multi-word evaluator, Evaluate stays bitwise identical to the package
// path, solves complete (heuristically, the replication space being
// astronomically large), beam search accepts the width, and deadlines
// still grade results Partial — i.e. WithWorkers / budgets / cancellation
// behave uniformly past 64 processors.

func TestSessionWidePlatformEvaluate(t *testing.T) {
	pipe := rampPipeline(t, 6)
	plat := hetPlatform(t, 80)
	s, err := repro.NewSession(pipe, plat)
	if err != nil {
		t.Fatalf("NewSession at m=80: %v", err)
	}
	// Replica ids on both sides of the word boundary.
	m := &repro.Mapping{
		Intervals: []repro.Interval{{First: 0, Last: 2}, {First: 3, Last: 5}},
		Alloc:     [][]int{{3, 70}, {10, 79}},
	}
	want, err := repro.Evaluate(pipe, plat, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("wide session Evaluate = %+v, package Evaluate = %+v (must be bitwise identical)", got, want)
	}
	bad := &repro.Mapping{
		Intervals: []repro.Interval{{First: 0, Last: 5}},
		Alloc:     [][]int{{99}},
	}
	if _, err := s.Evaluate(bad); err == nil {
		t.Error("mapping using processor 99 on an 80-processor platform must fail validation")
	}
}

func TestSessionWidePlatformSolve(t *testing.T) {
	// m = 66 crosses the word boundary while keeping the O(m³)-ish greedy
	// improvement rounds of the heuristic route test-sized.
	pipe := rampPipeline(t, 4)
	plat := hetPlatform(t, 66)
	var ref repro.Result
	for i, workers := range []int{1, 4} {
		// A short annealing schedule keeps the heuristic route fast; the
		// point here is wide-platform plumbing and worker determinism,
		// not solution quality.
		s, err := repro.NewSession(pipe, plat, repro.WithWorkers(workers), repro.WithSeed(3),
			repro.WithAnneal(repro.AnnealConfig{Iters: 200, Restarts: 2}))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Solve(context.Background(), repro.SolveRequest{
			Objective:  repro.MinimizeFailureProb,
			MaxLatency: 200,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := res.Mapping.Validate(pipe.NumStages(), plat.NumProcs()); err != nil {
			t.Fatalf("workers=%d: invalid mapping: %v", workers, err)
		}
		// Heuristic mappings may list replicas in non-ascending order, and
		// the bitmask evaluator sums in ascending id order, so allow float
		// reassociation noise (bitwise identity is the enumeration-order
		// contract, covered by the exact-path tests).
		met, err := s.Evaluate(res.Mapping)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !closeTo(met.Latency, res.Metrics.Latency) || !closeTo(met.FailureProb, res.Metrics.FailureProb) {
			t.Fatalf("workers=%d: result does not reproduce its metrics (%+v vs %+v)", workers, met, res.Metrics)
		}
		if i == 0 {
			ref = res
		} else if res.Metrics != ref.Metrics || res.Mapping.String() != ref.Mapping.String() {
			t.Errorf("workers=%d: %+v differs from workers=1 result %+v", workers, res, ref)
		}
	}
}

func TestSessionWideBeamSearch(t *testing.T) {
	pipe := rampPipeline(t, 6)
	plat := hetPlatform(t, 80)
	s, err := repro.NewSession(pipe, plat)
	if err != nil {
		t.Fatal(err)
	}
	mp, met, err := s.BeamSearchMinLatency(context.Background(), 8)
	if err != nil {
		t.Fatalf("beam search at m=80: %v", err)
	}
	if err := mp.Validate(pipe.NumStages(), plat.NumProcs()); err != nil {
		t.Fatalf("beam mapping invalid: %v", err)
	}
	if check, err := s.Evaluate(mp); err != nil || check != met {
		t.Fatalf("beam metrics not reproducible (%v, %v)", check, err)
	}
}

// TestSessionWideForceHeuristicFast pins the headline of the heuristics
// delta refactor: a full-het m=80 heuristic-route Solve with a binding
// latency bound completes in well under 2s (the pre-refactor clone-path
// greedy spent ~28s in its improvement rounds on this shape). The bound
// is relaxed under the race detector, whose instrumentation slows the
// sweeps by an order of magnitude.
func TestSessionWideForceHeuristicFast(t *testing.T) {
	pipe := rampPipeline(t, 12)
	plat := hetPlatform(t, 80)
	s, err := repro.NewSession(pipe, plat, repro.WithForceHeuristic(true))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := s.Solve(context.Background(), repro.SolveRequest{
		Objective:  repro.MinimizeFailureProb,
		MaxLatency: 20,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	limit := 2 * time.Second
	if raceEnabled {
		limit = 20 * time.Second
	}
	if elapsed > limit {
		t.Errorf("m=80 ForceHeuristic solve took %v, want < %v", elapsed, limit)
	}
	if res.Certainty != repro.Heuristic {
		t.Errorf("certainty = %v, want Heuristic", res.Certainty)
	}
	if err := res.Mapping.Validate(pipe.NumStages(), plat.NumProcs()); err != nil {
		t.Errorf("invalid mapping: %v", err)
	}
	if met, err := s.Evaluate(res.Mapping); err != nil || !closeTo(met.Latency, res.Metrics.Latency) {
		t.Errorf("result does not reproduce its metrics (%+v vs %+v, %v)", met, res.Metrics, err)
	}
}

func TestSessionWideDeadlinePartial(t *testing.T) {
	pipe := rampPipeline(t, 12)
	plat := hetPlatform(t, 80)
	s, err := repro.NewSession(pipe, plat, repro.WithDeadline(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := s.Solve(context.Background(), repro.SolveRequest{
		Objective:  repro.MinimizeFailureProb,
		MaxLatency: 1e9,
	})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline-bounded wide solve took %v", elapsed)
	}
	if err != nil {
		t.Fatalf("deadline-bounded wide solve failed outright: %v", err)
	}
	if res.Mapping == nil {
		t.Fatal("deadline-bounded wide solve returned no mapping")
	}
	if err := res.Mapping.Validate(pipe.NumStages(), plat.NumProcs()); err != nil {
		t.Errorf("partial mapping invalid: %v", err)
	}
}
