#!/usr/bin/env bash
# checkdocs.sh — keep the documentation from rotting:
#
#   1. gofmt -l over the tracked Go source (fails on any unformatted file);
#   2. go vet ./...;
#   3. every relative markdown link in README.md and docs/ must resolve;
#   4. every ```go code block in README.md is extracted into its own
#      throwaway main package (with a replace directive pointing at this
#      repository) and compiled, so README examples break CI instead of
#      silently drifting from the API. Blocks that should not compile as
#      programs use ```text instead.
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$(pwd)"

echo "== gofmt" >&2
UNFORMATTED="$(gofmt -l . 2>/dev/null || true)"
if [ -n "${UNFORMATTED}" ]; then
    echo "gofmt required on:" >&2
    echo "${UNFORMATTED}" >&2
    exit 1
fi

echo "== go vet" >&2
go vet ./...

echo "== markdown links" >&2
FAIL=0
for doc in README.md docs/*.md; do
    [ -f "${doc}" ] || continue
    dir="$(dirname "${doc}")"
    # Relative link targets: ](target) not starting with a scheme or anchor.
    while IFS= read -r target; do
        target="${target%%#*}"
        # Drop an optional link title: [text](target "title").
        target="${target%% *}"
        [ -z "${target}" ] && continue
        if [ ! -e "${dir}/${target}" ] && [ ! -e "${ROOT}/${target}" ]; then
            echo "${doc}: broken link -> ${target}" >&2
            FAIL=1
        fi
    done < <(grep -o '](\([^)]*\))' "${doc}" | sed -e 's/^](//' -e 's/)$//' \
        | grep -v -E '^(https?|mailto):' | grep -v '^#' || true)
done
[ "${FAIL}" -eq 0 ] || exit 1

echo "== README Go blocks" >&2
TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT
awk -v dir="${TMP}" '
    /^```go$/ { inblock = 1; n++; next }
    /^```/    { inblock = 0 }
    inblock   { print > (dir "/block" n ".go") }
' README.md

BLOCKS=0
for f in "${TMP}"/block*.go; do
    [ -e "${f}" ] || continue
    BLOCKS=$((BLOCKS + 1))
    d="${f%.go}"
    mkdir "${d}"
    mv "${f}" "${d}/main.go"
    cat > "${d}/go.mod" <<EOF
module readmeblock

go 1.24

require repro v0.0.0

replace repro => ${ROOT}
EOF
    echo "   compiling block ${BLOCKS} (${d##*/})" >&2
    (cd "${d}" && go build ./...)
done
if [ "${BLOCKS}" -eq 0 ]; then
    echo "README.md contains no \`\`\`go blocks — quickstart missing?" >&2
    exit 1
fi

echo "docs check passed (${BLOCKS} README code blocks compiled)" >&2
