#!/usr/bin/env bash
# bench.sh — run the root benchmark suite and record the results as JSON,
# starting the repository's performance trajectory. Each run writes
# BENCH_<date>.json (go test -bench -json stream) next to this script's
# repo root; pass a benchmark regex to restrict the run, e.g.
#
#   scripts/bench.sh 'BenchmarkE2Fig5|BenchmarkE14'
#
# Environment:
#   BENCHTIME  go test -benchtime value (default 1s)
#   COUNT      repetitions per benchmark (default 1)
set -euo pipefail

cd "$(dirname "$0")/.."

PATTERN="${1:-.}"
BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-1}"
OUT="BENCH_$(date +%Y%m%d_%H%M%S).json"

echo "benchmarking '${PATTERN}' (benchtime=${BENCHTIME}, count=${COUNT}) -> ${OUT}" >&2
go test -run '^$' -bench "${PATTERN}" -benchmem \
    -benchtime "${BENCHTIME}" -count "${COUNT}" -json . > "${OUT}"

# Human summary: reassemble the Output fragments (the JSON stream splits
# benchmark lines across events) and print the measurement lines.
grep -o '"Output":"[^"]*"' "${OUT}" \
    | sed -e 's/^"Output":"//' -e 's/"$//' \
    | while IFS= read -r frag; do printf '%b' "${frag}"; done \
    | grep -E '^Benchmark.*(ns/op|allocs/op)' || true

echo "wrote ${OUT}" >&2
