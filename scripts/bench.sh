#!/usr/bin/env bash
# bench.sh — run the benchmark suite (root package + ./serve) and record
# the results as JSON,
# extending the repository's performance trajectory. Each run writes
# BENCH_<date>.json (go test -bench -json stream) next to this script's
# repo root; pass a benchmark regex to restrict the run, e.g.
#
#   scripts/bench.sh 'BenchmarkE2Fig5|BenchmarkE14'
#
# Compare two snapshots with a benchstat-style delta table (matched by
# benchmark name; the worker-count suffix is stripped):
#
#   scripts/bench.sh -compare BENCH_old.json BENCH_new.json
#
# Guard a hot path against regression (CI gate): benchmarks matching the
# regex must not grow allocs/op at all, nor ns/op past the threshold.
# Exits non-zero on violation (or when nothing matches):
#
#   scripts/bench.sh -guard BENCH_old.json BENCH_new.json 'Evaluate|WideM80' 40
#
# Environment:
#   BENCHTIME  go test -benchtime value (default 1s)
#   COUNT      repetitions per benchmark (default 1)
set -euo pipefail

cd "$(dirname "$0")/.."

# extract_lines reassembles the Output fragments of a -json stream (the
# stream splits benchmark lines across events) and prints the measurement
# lines.
extract_lines() {
    grep -o '"Output":"[^"]*"' "$1" \
        | sed -e 's/^"Output":"//' -e 's/"$//' \
        | while IFS= read -r frag; do printf '%b' "${frag}"; done \
        | grep -E '^Benchmark.*(ns/op|allocs/op)' || true
}

if [[ "${1:-}" == "-guard" ]]; then
    if [[ $# -ne 5 ]]; then
        echo "usage: $0 -guard old.json new.json 'name-regex' max-ns-regress-pct" >&2
        exit 2
    fi
    old_file="$2" new_file="$3" regex="$4" maxpct="$5"
    { extract_lines "${old_file}"; echo "===SPLIT==="; extract_lines "${new_file}"; } \
        | awk -v regex="${regex}" -v maxpct="${maxpct}" '
            /^===SPLIT===$/ { second = 1; next }
            {
                name = $1; sub(/-[0-9]+$/, "", name)
                if (name !~ regex) next
                ns = ""; allocs = ""
                for (i = 2; i <= NF; i++) {
                    if ($i == "ns/op")     ns = $(i-1)
                    if ($i == "allocs/op") allocs = $(i-1)
                }
                if (ns == "") next
                if (!second) { oldNs[name] = ns; oldAllocs[name] = allocs }
                else         { newNs[name] = ns; newAllocs[name] = allocs }
            }
            END {
                bad = 0; n = 0
                for (name in oldNs) {
                    if (!(name in newNs)) {
                        printf "GUARD FAIL %s: benchmark disappeared\n", name
                        bad = 1; continue
                    }
                    n++
                    d = (newNs[name] - oldNs[name]) / oldNs[name] * 100
                    status = "ok"
                    if (oldAllocs[name] != "" && newAllocs[name] != "" \
                        && newAllocs[name] + 0 > oldAllocs[name] + 0) {
                        status = "FAIL: allocs/op grew"; bad = 1
                    } else if (d > maxpct + 0) {
                        status = sprintf("FAIL: ns/op regressed past %s%%", maxpct); bad = 1
                    }
                    printf "guard %-44s ns/op %+8.1f%%  allocs %s\xe2\x86\x92%s  %s\n", \
                        name, d, oldAllocs[name], newAllocs[name], status
                }
                if (n == 0) { printf "GUARD FAIL: no benchmark matched %s\n", regex; bad = 1 }
                exit bad
            }'
    exit 0
fi

if [[ "${1:-}" == "-compare" ]]; then
    if [[ $# -ne 3 ]]; then
        echo "usage: $0 -compare old.json new.json" >&2
        exit 2
    fi
    old_file="$2" new_file="$3"
    { extract_lines "${old_file}"; echo "===SPLIT==="; extract_lines "${new_file}"; } \
        | awk '
            /^===SPLIT===$/ { second = 1; next }
            {
                name = $1; sub(/-[0-9]+$/, "", name)
                ns = ""; bytes = ""; allocs = ""
                for (i = 2; i <= NF; i++) {
                    if ($i == "ns/op")     ns = $(i-1)
                    if ($i == "B/op")      bytes = $(i-1)
                    if ($i == "allocs/op") allocs = $(i-1)
                }
                if (ns == "") next
                if (!second) {
                    oldNs[name] = ns; oldAllocs[name] = allocs
                    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
                } else {
                    newNs[name] = ns; newAllocs[name] = allocs
                    if (!(name in seenNew)) { orderNew[++nn] = name; seenNew[name] = 1 }
                }
            }
            END {
                # One-sided rows keep all five columns: a benchmark present
                # in only one snapshot renders with "-" placeholders instead
                # of dropping fields, so the table stays aligned and
                # machine-splittable.
                printf "%-44s %14s %14s %9s %18s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs old→new"
                for (i = 1; i <= n; i++) {
                    name = order[i]
                    if (!(name in newNs)) {
                        printf "%-44s %14.0f %14s %9s %18s\n", name, oldNs[name], "-", "gone", oldAllocs[name] "→-"
                        continue
                    }
                    d = (newNs[name] - oldNs[name]) / oldNs[name] * 100
                    printf "%-44s %14.0f %14.0f %+8.1f%% %18s\n", name, oldNs[name], newNs[name], d, oldAllocs[name] "→" newAllocs[name]
                }
                for (i = 1; i <= nn; i++) {
                    name = orderNew[i]
                    if (name in oldNs) continue
                    printf "%-44s %14s %14.0f %9s %18s\n", name, "-", newNs[name], "new", "-→" newAllocs[name]
                }
            }'
    exit 0
fi

PATTERN="${1:-.}"
BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-1}"
OUT="BENCH_$(date +%Y%m%d_%H%M%S).json"

echo "benchmarking '${PATTERN}' (benchtime=${BENCHTIME}, count=${COUNT}) -> ${OUT}" >&2
go test -run '^$' -bench "${PATTERN}" -benchmem \
    -benchtime "${BENCHTIME}" -count "${COUNT}" -json . ./serve > "${OUT}"

# Human summary.
extract_lines "${OUT}"

echo "wrote ${OUT}" >&2
