// Package resilience provides the serve tier's overload-protection
// primitives: a deadline-aware admission limiter (bounded concurrency
// plus a bounded wait queue that sheds requests whose deadline cannot be
// met), a generation-counted circuit breaker, retry with exponential
// backoff and jitter, and per-key singleflight coalescing.
//
// The primitives are policy-free building blocks: they decide *whether*
// work may proceed and report *why* it may not (a structured ShedError
// carrying a retry-after hint), but never touch HTTP or the solver — the
// serve package maps outcomes to status codes and counters.
//
// Invariants:
//
//   - Every primitive is safe for concurrent use.
//   - Time is read through the Clock interface; NewFakeClock makes
//     every state machine (breaker cooldowns, limiter service-time
//     estimates, retry backoff) deterministic in tests.
//   - The limiter never blocks past the caller's context: a request
//     that cannot be admitted before its deadline is shed immediately
//     with the estimated wait, instead of queuing doomed work.
//   - Breaker bookkeeping is generation-counted: outcomes recorded
//     against a superseded state (a Record racing a trip) are dropped,
//     so stale probes can neither re-open a freshly closed breaker nor
//     close a freshly opened one.
package resilience
