package resilience

import (
	"sync"
	"testing"
	"time"
)

func newTestBreaker(clk Clock) *Breaker {
	return NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Second,
		HalfOpenProbes:   1,
		SuccessesToClose: 2,
		Clock:            clk,
	})
}

// step is one table entry: an action against the breaker and the state
// expected afterwards.
type step struct {
	name string
	act  func(b *Breaker, clk *FakeClock)
	want BreakerState
}

func runTable(t *testing.T, steps []step) {
	t.Helper()
	clk := NewFakeClock(time.Unix(0, 0))
	b := newTestBreaker(clk)
	for i, s := range steps {
		s.act(b, clk)
		if got := b.State(); got != s.want {
			t.Fatalf("step %d (%s): state = %v, want %v", i, s.name, got, s.want)
		}
	}
}

// fail runs one allowed call recorded as failure.
func fail(b *Breaker, _ *FakeClock) {
	gen, ok := b.Allow()
	if ok {
		b.Record(gen, false)
	}
}

// succeed runs one allowed call recorded as success.
func succeed(b *Breaker, _ *FakeClock) {
	gen, ok := b.Allow()
	if ok {
		b.Record(gen, true)
	}
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	runTable(t, []step{
		{"fail 1", fail, BreakerClosed},
		{"fail 2", fail, BreakerClosed},
		{"fail 3 trips", fail, BreakerOpen},
	})
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	runTable(t, []step{
		{"fail 1", fail, BreakerClosed},
		{"fail 2", fail, BreakerClosed},
		{"success resets", succeed, BreakerClosed},
		{"fail 1 again", fail, BreakerClosed},
		{"fail 2 again", fail, BreakerClosed},
		{"fail 3 trips", fail, BreakerOpen},
	})
}

func TestBreakerHalfOpenCloseAndReopen(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		fail(b, clk)
	}
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state = %v trips = %d, want open after 1 trip", b.State(), b.Trips())
	}

	// Still cooling down: rejected.
	if _, ok := b.Allow(); ok {
		t.Fatal("open breaker admitted a call before the cooldown")
	}
	clk.Advance(time.Second)

	// Cooldown over: exactly one probe fits (HalfOpenProbes = 1).
	gen, ok := b.Allow()
	if !ok || b.State() != BreakerHalfOpen {
		t.Fatalf("breaker should admit one probe half-open; state = %v", b.State())
	}
	if _, ok := b.Allow(); ok {
		t.Fatal("second concurrent probe admitted past HalfOpenProbes")
	}
	// Probe failure re-opens immediately and restarts the cooldown.
	b.Record(gen, false)
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("failed probe: state = %v trips = %d, want open/2", b.State(), b.Trips())
	}

	clk.Advance(time.Second)
	// Two sequential probe successes close it (SuccessesToClose = 2).
	for i := 0; i < 2; i++ {
		gen, ok := b.Allow()
		if !ok {
			t.Fatalf("probe %d rejected", i)
		}
		b.Record(gen, true)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed after 2 probe successes", b.State())
	}
}

func TestBreakerStaleGenerationIgnored(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := newTestBreaker(clk)
	gen, _ := b.Allow() // closed-generation token
	fail(b, clk)
	fail(b, clk)
	fail(b, clk) // trips: generation bumped
	// A success recorded against the pre-trip generation must not touch
	// the open state.
	b.Record(gen, true)
	if b.State() != BreakerOpen {
		t.Fatalf("stale success mutated the breaker: state = %v", b.State())
	}

	clk.Advance(time.Second)
	probeGen, ok := b.Allow()
	if !ok {
		t.Fatal("probe rejected after cooldown")
	}
	// A stale failure must not consume the probe's bookkeeping.
	b.Record(gen, false)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("stale failure mutated the breaker: state = %v", b.State())
	}
	b.Record(probeGen, true)
	probeGen2, ok := b.Allow()
	if !ok {
		t.Fatal("second probe rejected")
	}
	b.Record(probeGen2, true)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestBreakerCancelFreesProbeSlot(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		fail(b, clk)
	}
	clk.Advance(time.Second)
	gen, ok := b.Allow()
	if !ok {
		t.Fatal("probe rejected after cooldown")
	}
	if _, ok := b.Allow(); ok {
		t.Fatal("probe slot double-booked")
	}
	b.Cancel(gen)
	// The canceled probe's slot is free again.
	gen2, ok := b.Allow()
	if !ok {
		t.Fatal("probe slot not freed by Cancel")
	}
	b.Record(gen2, true)
	gen3, ok := b.Allow()
	if !ok {
		t.Fatal("second probe rejected")
	}
	b.Record(gen3, true)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := newTestBreaker(clk)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if gen, ok := b.Allow(); ok {
					b.Record(gen, (i+j)%3 != 0)
				}
				if j%50 == 0 {
					clk.Advance(time.Second)
				}
			}
		}()
	}
	wg.Wait()
	// No assertion beyond termination and the race detector: the state
	// must simply remain one of the three valid states.
	if s := b.State(); s != BreakerClosed && s != BreakerOpen && s != BreakerHalfOpen {
		t.Fatalf("invalid state %v", s)
	}
}

func TestBreakerStateString(t *testing.T) {
	for want, s := range map[string]BreakerState{
		"closed": BreakerClosed, "open": BreakerOpen, "half-open": BreakerHalfOpen,
	} {
		if s.String() != want {
			t.Errorf("String(%d) = %q, want %q", s, s.String(), want)
		}
	}
}
