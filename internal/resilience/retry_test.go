package resilience

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// recordedSleep returns a Sleeper that records the requested delays and
// never actually sleeps.
func recordedSleep(delays *[]time.Duration) Sleeper {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func TestBackoffScheduleDeterministic(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: -1}
	want := []time.Duration{
		100 * time.Millisecond, // attempt 1
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second,
	}
	for i, w := range want {
		if got := p.Backoff(i+1, nil); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffJitterBoundedAndSeeded(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: 0.5}
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for attempt := 1; attempt <= 6; attempt++ {
		base := p.Backoff(attempt, nil) // nil rng: no jitter
		ja := p.Backoff(attempt, a)
		jb := p.Backoff(attempt, b)
		if ja != jb {
			t.Fatalf("attempt %d: same seed produced %v and %v", attempt, ja, jb)
		}
		lo := time.Duration(float64(base) * 0.5)
		hi := time.Duration(float64(base) * 1.5)
		if ja < lo || ja > hi {
			t.Fatalf("attempt %d: jittered %v outside [%v, %v]", attempt, ja, lo, hi)
		}
	}
}

func TestRetrySucceedsAfterFailures(t *testing.T) {
	var delays []time.Duration
	tries := 0
	err := RetryWithSleeper(context.Background(), RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, Jitter: -1},
		nil, recordedSleep(&delays), func(context.Context) error {
			tries++
			if tries < 3 {
				return errors.New("flaky")
			}
			return nil
		})
	if err != nil || tries != 3 {
		t.Fatalf("err = %v after %d tries", err, tries)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(delays) != len(want) || delays[0] != want[0] || delays[1] != want[1] {
		t.Fatalf("delays = %v, want %v", delays, want)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	var delays []time.Duration
	boom := errors.New("always")
	err := RetryWithSleeper(context.Background(), RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: -1},
		nil, recordedSleep(&delays), func(context.Context) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times for 3 attempts, want 2", len(delays))
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	tries := 0
	boom := errors.New("fatal")
	err := RetryWithSleeper(context.Background(), RetryPolicy{MaxAttempts: 5},
		nil, recordedSleep(&[]time.Duration{}), func(context.Context) error {
			tries++
			return Permanent(boom)
		})
	if !errors.Is(err, boom) || tries != 1 {
		t.Fatalf("err = %v after %d tries, want boom after 1", err, tries)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must be nil")
	}
}

func TestRetryCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tries := 0
	sleep := func(context.Context, time.Duration) error {
		cancel() // the context dies during the backoff sleep
		return context.Cause(ctx)
	}
	err := RetryWithSleeper(ctx, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond},
		nil, sleep, func(context.Context) error { tries++; return errors.New("flaky") })
	if !errors.Is(err, context.Canceled) || tries != 1 {
		t.Fatalf("err = %v after %d tries, want context.Canceled after 1", err, tries)
	}
	// Pre-canceled: no attempt at all.
	tries = 0
	err = Retry(ctx, RetryPolicy{}, nil, func(context.Context) error { tries++; return nil })
	if !errors.Is(err, context.Canceled) || tries != 0 {
		t.Fatalf("pre-canceled: err = %v, tries = %d", err, tries)
	}
}

func TestRetryRealSleeperHonorsContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Retry(ctx, RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Second, Jitter: -1},
		nil, func(context.Context) error { return errors.New("flaky") })
	if err == nil {
		t.Fatal("want error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry ignored the context for %v", elapsed)
	}
}
