package resilience

import (
	"sync"
	"time"
)

// Clock abstracts time.Now so every time-dependent state machine in this
// package can run deterministically under test.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// SystemClock returns the wall clock.
func SystemClock() Clock { return realClock{} }

// FakeClock is a manually advanced Clock for deterministic tests.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock returns a FakeClock frozen at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the fake clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}
