package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestLimiterAdmitsUpToConcurrency(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 2, MaxWaiting: 1})
	r1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Both slots held; a third caller with an already-expired context is
	// shed from the queue instead of blocking.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.Acquire(ctx); AsShed(err) == nil {
		t.Fatalf("want ShedError, got %v", err)
	}
	r1()
	r2()
	r2() // double release must be a no-op
	if st := l.Stats(); st.InUse != 0 || st.Admitted != 2 || st.ShedDeadline != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Slots free again.
	r3, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r3()
}

func TestLimiterQueueOverflowSheds(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 1, MaxWaiting: 1})
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue.
	acquired := make(chan func(), 1)
	go func() {
		r, err := l.Acquire(context.Background())
		if err != nil {
			t.Error(err)
		}
		acquired <- r
	}()
	// Wait until the waiter is queued.
	for i := 0; l.Stats().Waiting == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if l.Stats().Waiting != 1 {
		t.Fatalf("waiting = %d, want 1", l.Stats().Waiting)
	}
	// The second waiter overflows the queue: immediate structured shed.
	_, err = l.Acquire(context.Background())
	shed := AsShed(err)
	if shed == nil || shed.Reason != ShedQueueFull {
		t.Fatalf("want queue-full shed, got %v", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("shed must carry a positive retry-after, got %v", shed.RetryAfter)
	}
	release()
	r := <-acquired
	r()
	if st := l.Stats(); st.ShedQueue != 1 || st.Admitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// deadlineOnlyCtx reports a deadline on the fake-clock timeline without
// a firing Done channel, so the deadline-aware shed path is exercised
// deterministically against the limiter's injected clock.
type deadlineOnlyCtx struct {
	context.Context
	deadline time.Time
}

func (c deadlineOnlyCtx) Deadline() (time.Time, bool) { return c.deadline, true }

func TestLimiterDeadlineAwareUpfrontShed(t *testing.T) {
	clk := NewFakeClock(time.Unix(1000, 0))
	l := NewLimiter(LimiterConfig{MaxConcurrent: 1, MaxWaiting: 4, Clock: clk})

	// Teach the EWMA a 1s service time.
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	release()
	if got := time.Duration(l.ewmaNanos.Load()); got != time.Second {
		t.Fatalf("ewma = %v, want 1s after the first sample", got)
	}

	// Saturate the slot, then ask with a 10ms (fake-clock) deadline: the
	// predicted 1s queue wait cannot meet it — shed upfront, without ever
	// reaching the blocking select (the context's Done never fires).
	release, err = l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx := deadlineOnlyCtx{Context: context.Background(), deadline: clk.Now().Add(10 * time.Millisecond)}
	_, err = l.Acquire(ctx)
	shed := AsShed(err)
	if shed == nil || shed.Reason != ShedDeadline {
		t.Fatalf("want deadline shed, got %v", err)
	}
	if shed.RetryAfter != time.Second {
		t.Fatalf("retry-after = %v, want the 1s estimated wait", shed.RetryAfter)
	}
	// A generous (fake-clock) deadline still queues normally.
	ctx2 := deadlineOnlyCtx{Context: context.Background(), deadline: clk.Now().Add(time.Hour)}
	done := make(chan error, 1)
	go func() {
		r, err := l.Acquire(ctx2)
		if err == nil {
			r()
		}
		done <- err
	}()
	for i := 0; l.Stats().Waiting == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	release()
	if err := <-done; err != nil {
		t.Fatalf("generous deadline should be admitted: %v", err)
	}
}

func TestLimiterConcurrentStress(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 4, MaxWaiting: 8})
	var wg sync.WaitGroup
	var mu sync.Mutex
	inUse, maxInUse := 0, 0
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
			defer cancel()
			release, err := l.Acquire(ctx)
			if err != nil {
				if AsShed(err) == nil {
					t.Errorf("non-structured refusal: %v", err)
				}
				return
			}
			mu.Lock()
			inUse++
			if inUse > maxInUse {
				maxInUse = inUse
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			inUse--
			mu.Unlock()
			release()
		}()
	}
	wg.Wait()
	if maxInUse > 4 {
		t.Fatalf("observed %d concurrent holders, cap is 4", maxInUse)
	}
	st := l.Stats()
	if st.InUse != 0 || st.Waiting != 0 {
		t.Fatalf("limiter not drained: %+v", st)
	}
	if st.Admitted+st.ShedQueue+st.ShedDeadline != 64 {
		t.Fatalf("counters do not add up to 64: %+v", st)
	}
}

func TestAsShedNonShed(t *testing.T) {
	if AsShed(errors.New("plain")) != nil {
		t.Fatal("plain error misread as shed")
	}
	if AsShed(nil) != nil {
		t.Fatal("nil error misread as shed")
	}
}
