package resilience

import (
	"context"
	"fmt"
	"sync"
)

// Group coalesces concurrent calls by key: while a call for a key is in
// flight, later Do calls for the same key wait for its result instead of
// repeating the work. The zero value is ready to use.
type Group[V any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
	dups int // waiters coalesced onto this call (guarded by Group.mu)
}

// Inflight reports how many callers currently share the in-flight call
// for key: 0 when none, 1 for a lone leader, 1+n with n waiting
// duplicates. Intended for metrics and for tests that need to observe a
// coalescing pile-up deterministically.
func (g *Group[V]) Inflight(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.calls[key]
	if !ok {
		return 0
	}
	return 1 + c.dups
}

// Do runs fn for key unless an identical call is already in flight, in
// which case it waits for that call's result; shared reports which case
// happened (false for the caller that ran fn). The leader runs fn to
// completion regardless of ctx — ctx only bounds how long a *waiting*
// duplicate blocks: when it fires first, Do returns ctx's error and the
// zero V while the leader keeps going for the remaining waiters.
func (g *Group[V]) Do(ctx context.Context, key string, fn func() (V, error)) (v V, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall[V])
	}
	if c, ok := g.calls[key]; ok {
		c.dups++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			return v, true, context.Cause(ctx)
		}
	}
	c := &flightCall[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	// A panicking fn must not strand the waiters: release them with an
	// in-band error, then let the panic continue up the leader's stack.
	finished := false
	defer func() {
		if !finished {
			c.err = fmt.Errorf("resilience: singleflight leader panicked for key %q", key)
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	finished = true
	return c.val, false, c.err
}
