package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitForDups blocks until the in-flight call for key has coalesced want
// duplicates (test-only synchronization through the package internals).
func waitForDups[V any](t *testing.T, g *Group[V], key string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		g.mu.Lock()
		c := g.calls[key]
		n := 0
		if c != nil {
			n = c.dups
		}
		g.mu.Unlock()
		if n >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d duplicates on %q", want, key)
}

func TestSingleflightCoalesces(t *testing.T) {
	var g Group[int]
	var calls atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]int, waiters)
	shareds := make([]bool, waiters)

	// Leader blocks in fn until every duplicate has piled up.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, shared, err := g.Do(context.Background(), "k", func() (int, error) {
			close(started)
			<-gate
			calls.Add(1)
			return 42, nil
		})
		if err != nil {
			t.Error(err)
		}
		results[0], shareds[0] = v, shared
	}()
	<-started
	for i := 1; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := g.Do(context.Background(), "k", func() (int, error) {
				calls.Add(1)
				return -1, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], shareds[i] = v, shared
		}()
	}
	// Release the leader only once every duplicate is registered, so none
	// of them can race past the leader's cleanup and start a fresh call.
	waitForDups(t, &g, "k", waiters-1)
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	sharedCount := 0
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %d, want 42", i, v)
		}
		if shareds[i] {
			sharedCount++
		}
	}
	if sharedCount != waiters-1 {
		t.Fatalf("%d callers report shared, want %d", sharedCount, waiters-1)
	}
}

func TestSingleflightSequentialCallsRunIndependently(t *testing.T) {
	var g Group[int]
	n := 0
	for i := 0; i < 3; i++ {
		v, shared, err := g.Do(context.Background(), "k", func() (int, error) {
			n++
			return n, nil
		})
		if err != nil || shared || v != i+1 {
			t.Fatalf("call %d: v=%d shared=%v err=%v", i, v, shared, err)
		}
	}
}

func TestSingleflightWaiterCancellation(t *testing.T) {
	var g Group[int]
	gate := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, _, err := g.Do(context.Background(), "k", func() (int, error) {
			close(started)
			<-gate
			return 7, nil
		})
		if v != 7 || err != nil {
			t.Errorf("leader got v=%d err=%v", v, err)
		}
	}()
	<-started

	// A duplicate whose context dies while waiting gets the context error;
	// the leader is unaffected.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, shared, err := g.Do(ctx, "k", func() (int, error) { return 0, nil })
		if !shared {
			err = errors.New("canceled duplicate must report shared")
		}
		errc <- err
	}()
	waitForDups(t, &g, "k", 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter error = %v, want context.Canceled", err)
	}
	close(gate)
	<-leaderDone
}

func TestSingleflightErrorsShared(t *testing.T) {
	var g Group[string]
	boom := errors.New("boom")
	_, _, err := g.Do(context.Background(), "k", func() (string, error) { return "", boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestSingleflightLeaderPanicReleasesWaiters(t *testing.T) {
	var g Group[int]
	started := make(chan struct{})
	gate := make(chan struct{})
	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		_, _, _ = g.Do(context.Background(), "k", func() (int, error) {
			close(started)
			<-gate
			panic("leader exploded")
		})
	}()
	<-started
	errc := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), "k", func() (int, error) { return 0, nil })
		errc <- err
	}()
	waitForDups(t, &g, "k", 1)
	close(gate)
	if rec := <-panicked; rec == nil {
		t.Fatal("leader panic swallowed")
	}
	if err := <-errc; err == nil {
		t.Fatal("waiter of a panicked leader must get an error")
	}
	// The key is free again: a fresh call runs.
	v, shared, err := g.Do(context.Background(), "k", func() (int, error) { return 9, nil })
	if v != 9 || shared || err != nil {
		t.Fatalf("post-panic call: v=%d shared=%v err=%v", v, shared, err)
	}
}
