package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// RetryPolicy shapes the retry loop: exponential backoff from BaseDelay
// doubling per attempt, capped at MaxDelay, with ±Jitter relative noise.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries, first included (default 3).
	MaxAttempts int
	// BaseDelay is the wait after the first failure (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 5s).
	MaxDelay time.Duration
	// Jitter spreads each delay uniformly over [1-Jitter, 1+Jitter]
	// (default 0.2; 0 < Jitter ≤ 1). Negative disables jitter.
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	return p
}

// Backoff computes the delay before attempt attempt+1 (attempt counts
// completed tries, so the first retry passes 1): BaseDelay·2^(attempt-1)
// capped at MaxDelay, jittered by rng. A nil rng disables jitter, making
// the schedule fully deterministic.
func (p RetryPolicy) Backoff(attempt int, rng *rand.Rand) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if rng != nil && p.Jitter > 0 {
		f := 1 + p.Jitter*(2*rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	return d
}

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Retry stops immediately instead of retrying;
// errors.Is/As see through the wrapper.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Sleeper abstracts the inter-attempt wait; the default honors ctx. Tests
// inject one to run the loop instantaneously while recording the
// schedule.
type Sleeper func(ctx context.Context, d time.Duration) error

func defaultSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// Retry runs fn up to p.MaxAttempts times, sleeping p.Backoff between
// failures. It stops early on success, on a Permanent error, or when ctx
// is done (the context error then wraps the last attempt's error). rng
// drives the jitter (nil = none).
func Retry(ctx context.Context, p RetryPolicy, rng *rand.Rand, fn func(ctx context.Context) error) error {
	return RetryWithSleeper(ctx, p, rng, defaultSleep, fn)
}

// RetryWithSleeper is Retry with the inter-attempt wait injected.
func RetryWithSleeper(ctx context.Context, p RetryPolicy, rng *rand.Rand, sleep Sleeper, fn func(ctx context.Context) error) error {
	p = p.withDefaults()
	var last error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return retryAbort(context.Cause(ctx), last)
		}
		err := fn(ctx)
		if err == nil {
			return nil
		}
		last = err
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if attempt >= p.MaxAttempts {
			return fmt.Errorf("retry: %d attempts exhausted: %w", p.MaxAttempts, err)
		}
		if serr := sleep(ctx, p.Backoff(attempt, rng)); serr != nil {
			return retryAbort(serr, last)
		}
	}
}

// retryAbort folds a cancellation into the last attempt error (if any);
// both stay visible to errors.Is/As.
func retryAbort(cause, last error) error {
	if last == nil {
		return cause
	}
	return fmt.Errorf("retry canceled: %w (last attempt error: %w)", cause, last)
}
