package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ShedReason says why the limiter refused a request.
type ShedReason int

const (
	// ShedQueueFull: the wait queue is at capacity — the caller should
	// back off and retry (maps to 429 at the HTTP layer).
	ShedQueueFull ShedReason = iota
	// ShedDeadline: the caller's deadline cannot be met — either the
	// estimated queue wait already exceeds it, or it expired while
	// queued (maps to 503 at the HTTP layer).
	ShedDeadline
)

func (r ShedReason) String() string {
	if r == ShedDeadline {
		return "deadline unmeetable"
	}
	return "queue full"
}

// ShedError is the structured admission refusal: the reason and a
// load-derived retry-after hint.
type ShedError struct {
	Reason     ShedReason
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admission shed (%s): retry after %s", e.Reason, e.RetryAfter)
}

// AsShed extracts a ShedError from err (nil when err carries none).
func AsShed(err error) *ShedError {
	var shed *ShedError
	if errors.As(err, &shed) {
		return shed
	}
	return nil
}

// LimiterConfig tunes a Limiter.
type LimiterConfig struct {
	// MaxConcurrent bounds the requests holding a slot at once
	// (default 16).
	MaxConcurrent int
	// MaxWaiting bounds the requests queued for a slot; one more is
	// shed immediately (default 4 × MaxConcurrent).
	MaxWaiting int
	// Clock injects time (default: the system clock).
	Clock Clock
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 16
	}
	if c.MaxWaiting <= 0 {
		c.MaxWaiting = 4 * c.MaxConcurrent
	}
	if c.Clock == nil {
		c.Clock = SystemClock()
	}
	return c
}

// Limiter is a deadline-aware admission controller: MaxConcurrent slots,
// a wait queue of at most MaxWaiting, and upfront shedding of requests
// whose context deadline the estimated queue wait would blow. The wait
// estimate is an exponential moving average of observed slot-hold times
// scaled by the queue position.
type Limiter struct {
	cfg   LimiterConfig
	slots chan struct{}

	waiting atomic.Int64
	// ewmaNanos tracks the service-time EWMA (alpha 1/8); 0 = no data
	// yet, in which case the deadline check is skipped and retry-after
	// hints fall back to a fixed 50ms.
	ewmaNanos atomic.Int64

	admitted  atomic.Int64
	shedQueue atomic.Int64
	shedDead  atomic.Int64
}

// NewLimiter builds a Limiter.
func NewLimiter(cfg LimiterConfig) *Limiter {
	cfg = cfg.withDefaults()
	return &Limiter{cfg: cfg, slots: make(chan struct{}, cfg.MaxConcurrent)}
}

const fallbackRetryAfter = 50 * time.Millisecond

// estimatedWait projects how long the queuePos-th waiter will queue:
// the service-time EWMA scaled by how many service completions must
// happen before a slot reaches it.
func (l *Limiter) estimatedWait(queuePos int64) time.Duration {
	ewma := time.Duration(l.ewmaNanos.Load())
	if ewma <= 0 {
		return 0
	}
	rounds := (queuePos + int64(l.cfg.MaxConcurrent) - 1) / int64(l.cfg.MaxConcurrent)
	return ewma * time.Duration(rounds)
}

// retryAfter turns the current load into the hint shipped with a shed.
func (l *Limiter) retryAfter(queuePos int64) time.Duration {
	if est := l.estimatedWait(queuePos); est > 0 {
		return est
	}
	return fallbackRetryAfter
}

// Acquire admits the caller, blocking in the bounded queue while the
// concurrency limit is saturated. It returns a release function that
// MUST be called exactly once when the admitted work finishes (it frees
// the slot and feeds the service-time estimate). A refusal returns a
// *ShedError: queue at capacity, estimated wait past ctx's deadline, or
// ctx done while queued.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot, no queuing.
	select {
	case l.slots <- struct{}{}:
		return l.admit(), nil
	default:
	}

	pos := l.waiting.Add(1)
	if pos > int64(l.cfg.MaxWaiting) {
		l.waiting.Add(-1)
		l.shedQueue.Add(1)
		return nil, &ShedError{Reason: ShedQueueFull, RetryAfter: l.retryAfter(pos)}
	}
	// Deadline-aware upfront shed: when past service times predict the
	// queue wait alone outlives the caller's deadline, fail now instead
	// of occupying a queue slot with doomed work.
	if deadline, ok := ctx.Deadline(); ok {
		if est := l.estimatedWait(pos); est > 0 && l.cfg.Clock.Now().Add(est).After(deadline) {
			l.waiting.Add(-1)
			l.shedDead.Add(1)
			return nil, &ShedError{Reason: ShedDeadline, RetryAfter: l.retryAfter(pos)}
		}
	}
	select {
	case l.slots <- struct{}{}:
		l.waiting.Add(-1)
		return l.admit(), nil
	case <-ctx.Done():
		l.waiting.Add(-1)
		l.shedDead.Add(1)
		return nil, &ShedError{Reason: ShedDeadline, RetryAfter: l.retryAfter(pos)}
	}
}

// admit records the admission and returns the release closure.
func (l *Limiter) admit() func() {
	l.admitted.Add(1)
	start := l.cfg.Clock.Now()
	var done atomic.Bool
	return func() {
		if !done.CompareAndSwap(false, true) {
			return
		}
		held := l.cfg.Clock.Now().Sub(start)
		for {
			old := l.ewmaNanos.Load()
			next := int64(held)
			if old > 0 {
				next = old + (int64(held)-old)/8
			}
			if l.ewmaNanos.CompareAndSwap(old, next) {
				break
			}
		}
		<-l.slots
	}
}

// LimiterStats is a snapshot of the limiter's counters.
type LimiterStats struct {
	Admitted     int64 // requests that got a slot
	ShedQueue    int64 // shed: queue at capacity
	ShedDeadline int64 // shed: deadline unmeetable or expired queued
	InUse        int   // slots currently held
	Waiting      int   // requests currently queued
}

// Stats snapshots the counters.
func (l *Limiter) Stats() LimiterStats {
	return LimiterStats{
		Admitted:     l.admitted.Load(),
		ShedQueue:    l.shedQueue.Load(),
		ShedDeadline: l.shedDead.Load(),
		InUse:        len(l.slots),
		Waiting:      int(l.waiting.Load()),
	}
}
