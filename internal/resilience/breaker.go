package resilience

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's coarse state.
type BreakerState int

const (
	// BreakerClosed admits every call; consecutive failures open it.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects every call until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of probe calls; enough
	// successes close the breaker, any failure re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a Breaker. The zero value gets sane defaults.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker (default 5).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before admitting
	// half-open probes (default 5s).
	Cooldown time.Duration
	// HalfOpenProbes bounds the probe calls in flight while half-open
	// (default 1).
	HalfOpenProbes int
	// SuccessesToClose is the probe-success count that closes a
	// half-open breaker (default 2).
	SuccessesToClose int
	// Clock injects time (default: the system clock).
	Clock Clock
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.SuccessesToClose <= 0 {
		c.SuccessesToClose = 2
	}
	if c.Clock == nil {
		c.Clock = SystemClock()
	}
	return c
}

// Breaker is a generation-counted circuit breaker. Callers ask Allow for
// a token, run the guarded work, and Record the outcome against the
// token; outcomes recorded against a generation the breaker has since
// left are dropped, so a slow call that straddles a state transition
// cannot corrupt the new state's counters. Cancel releases an unused
// token (for callers that took one but never ran the guarded work, e.g.
// a coalesced duplicate).
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    BreakerState
	gen      uint64
	fails    int // consecutive failures while closed
	succ     int // probe successes while half-open
	inflight int // probes in flight while half-open
	openedAt time.Time
	trips    int64
}

// NewBreaker builds a closed Breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a call may proceed, and under which generation
// its outcome must be recorded. An open breaker whose cooldown has
// elapsed transitions to half-open here, admitting the caller as a
// probe.
func (b *Breaker) Allow() (gen uint64, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return b.gen, true
	case BreakerOpen:
		if b.cfg.Clock.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return b.gen, false
		}
		b.transition(BreakerHalfOpen)
		b.inflight = 1
		return b.gen, true
	default: // half-open
		if b.inflight >= b.cfg.HalfOpenProbes {
			return b.gen, false
		}
		b.inflight++
		return b.gen, true
	}
}

// Record reports the outcome of a call admitted under gen. Stale
// generations are ignored.
func (b *Breaker) Record(gen uint64, success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if gen != b.gen {
		return
	}
	switch b.state {
	case BreakerClosed:
		if success {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.inflight--
		if !success {
			b.trip()
			return
		}
		b.succ++
		if b.succ >= b.cfg.SuccessesToClose {
			b.transition(BreakerClosed)
		}
	}
}

// Cancel releases a token taken with Allow whose guarded work never ran
// (it frees the half-open probe slot). Stale generations are ignored.
func (b *Breaker) Cancel(gen uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if gen != b.gen || b.state != BreakerHalfOpen {
		return
	}
	b.inflight--
}

// trip opens the breaker; callers hold b.mu.
func (b *Breaker) trip() {
	b.transition(BreakerOpen)
	b.openedAt = b.cfg.Clock.Now()
	b.trips++
}

// transition switches state, bumps the generation, and resets the
// per-state counters; callers hold b.mu.
func (b *Breaker) transition(to BreakerState) {
	b.state = to
	b.gen++
	b.fails = 0
	b.succ = 0
	b.inflight = 0
}

// State reports the current state (an elapsed cooldown shows as open
// until the next Allow performs the half-open transition).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips counts closed/half-open → open transitions since construction.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
