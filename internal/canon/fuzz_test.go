package canon

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// Fuzzed instances draw every value from small alphabets (containing the
// Figure 5 and E14 values) so the fuzzer constantly produces the exact
// ties — equal speeds, equal failure probabilities, repeated bandwidths —
// that stress the refinement and branching machinery. Continuous random
// values would almost never tie and would only ever exercise the easy
// path.
var (
	fuzzW  = []float64{0, 1, 5, 100}
	fuzzD  = []float64{0, 1, 4, 6, 10}
	fuzzS  = []float64{0.5, 1, 2, 100}
	fuzzFP = []float64{0, 0.1, 0.3, 0.5, 0.8, 1}
	fuzzB  = []float64{1, 2, 5}
)

// decodeFuzzInstance deterministically maps raw fuzz bytes to a valid
// small instance: a shape byte picks collapsed-vs-heterogeneous links,
// then successive bytes index the value alphabets (cursor wraps, so any
// input length decodes).
func decodeFuzzInstance(data []byte) (*pipeline.Pipeline, *platform.Platform) {
	pos := 0
	next := func() int {
		if len(data) == 0 {
			return 0
		}
		b := int(data[pos%len(data)])
		pos++
		return b
	}
	shape := next()
	n := 1 + next()%4
	m := 1 + next()%12
	w := make([]float64, n)
	for i := range w {
		w[i] = fuzzW[next()%len(fuzzW)]
	}
	d := make([]float64, n+1)
	for i := range d {
		d[i] = fuzzD[next()%len(fuzzD)]
	}
	p := pipeline.MustNew(w, d)
	speeds := make([]float64, m)
	fps := make([]float64, m)
	for u := 0; u < m; u++ {
		speeds[u] = fuzzS[next()%len(fuzzS)]
		fps[u] = fuzzFP[next()%len(fuzzFP)]
	}
	if shape&1 == 0 {
		pl, err := platform.NewCommHomogeneous(speeds, fps, fuzzB[next()%len(fuzzB)])
		if err != nil {
			panic(err)
		}
		return p, pl
	}
	bIn := make([]float64, m)
	bOut := make([]float64, m)
	b := make([][]float64, m)
	for u := 0; u < m; u++ {
		bIn[u] = fuzzB[next()%len(fuzzB)]
		bOut[u] = fuzzB[next()%len(fuzzB)]
		b[u] = make([]float64, m)
		for v := 0; v < m; v++ {
			if u != v {
				b[u][v] = fuzzB[next()%len(fuzzB)]
			}
		}
	}
	pl, err := platform.NewFullyHeterogeneous(speeds, fps, b, bIn, bOut)
	if err != nil {
		panic(err)
	}
	return p, pl
}

// seedBytes assembles a fuzz input that decodes to the given instance
// values (all of which must be alphabet members).
func seedBytes(shape, n, m int, w, d, speeds, fps []float64, links ...float64) []byte {
	idx := func(tab []float64, x float64) byte {
		for i, v := range tab {
			if v == x {
				return byte(i)
			}
		}
		panic("seed value not in alphabet")
	}
	out := []byte{byte(shape), byte(n - 1), byte(m - 1)}
	for _, x := range w {
		out = append(out, idx(fuzzW, x))
	}
	for _, x := range d {
		out = append(out, idx(fuzzD, x))
	}
	for i := 0; i < m; i++ {
		out = append(out, idx(fuzzS, speeds[i]), idx(fuzzFP, fps[i]))
	}
	for _, x := range links {
		out = append(out, idx(fuzzB, x))
	}
	return out
}

func FuzzCanonicalize(f *testing.F) {
	// Figure 5 of the paper: the 2-stage pipeline on the 11-processor
	// CommHom platform (one fast unreliable-free processor, ten slow
	// unreliable ones).
	fig5Speeds := append([]float64{1}, repeat(100, 10)...)
	fig5FPs := append([]float64{0.1}, repeat(0.8, 10)...)
	f.Add(seedBytes(0, 2, 11, []float64{1, 100}, []float64{10, 1, 0}, fig5Speeds, fig5FPs, 1), uint64(1))
	// E14 of the simulation campaign: uniform 2-stage pipeline on the
	// 8-processor fully homogeneous platform.
	f.Add(seedBytes(0, 2, 8, []float64{5, 5}, []float64{4, 6, 4}, repeat(2, 8), repeat(0.3, 8), 2), uint64(7))
	// Heterogeneous all-ties: every alphabet byte 0 with the het shape
	// bit, so all processors are twins.
	f.Add(bytes.Repeat([]byte{1}, 40), uint64(3))
	// Interleaved bytes provoke circulant-like symmetric link matrices.
	f.Add(bytes.Repeat([]byte{1, 0, 2, 0, 1, 2}, 30), uint64(11))

	f.Fuzz(func(t *testing.T, data []byte, permSeed uint64) {
		p, pl := decodeFuzzInstance(data)
		m := pl.NumProcs()
		cn, err := Canonicalize(p, pl)
		if errors.Is(err, ErrComplex) {
			t.Skip("symmetry past the refinement budget")
		}
		if err != nil {
			t.Fatalf("canonicalize valid instance: %v", err)
		}
		// Perm must be a bijection consistent with Inv.
		seen := make([]bool, m)
		for i, u := range cn.Perm {
			if u < 0 || u >= m || seen[u] {
				t.Fatalf("Perm not a bijection: %v", cn.Perm)
			}
			seen[u] = true
			if cn.Inv[u] != i {
				t.Fatalf("Inv inconsistent with Perm at %d", i)
			}
		}
		// Canonicalize(permuted instance) must be byte-identical. The
		// search-tree shape is label-invariant, so the permuted run cannot
		// hit the budget when the original did not.
		perm := rand.New(rand.NewSource(int64(permSeed))).Perm(m)
		cn2, err := Canonicalize(p, pl.Permute(perm))
		if err != nil {
			t.Fatalf("canonicalize permuted instance: %v", err)
		}
		if !bytes.Equal(cn.Bytes, cn2.Bytes) {
			t.Fatalf("canonical bytes differ under relabeling %v", perm)
		}
		// Idempotence: the canonical platform canonicalizes to itself.
		again, err := Canonicalize(p, cn.Platform())
		if err != nil {
			t.Fatalf("re-canonicalize: %v", err)
		}
		if !bytes.Equal(cn.Bytes, again.Bytes) {
			t.Fatal("canonical form not idempotent")
		}
		if !again.IsIdentity() {
			t.Fatal("canonical platform did not canonicalize to the identity")
		}
		// Translation round trip on the all-processors single interval.
		one := mapping.NewSingleInterval(p.NumStages(), seq(m))
		back := cn.ToOriginal(cn.ToCanonical(one))
		for i, u := range back.Alloc[0] {
			if u != i {
				t.Fatalf("translation round trip broke the identity alloc: %v", back.Alloc[0])
			}
		}
	})
}

func repeat(x float64, k int) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = x
	}
	return out
}

func seq(m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i
	}
	return out
}
