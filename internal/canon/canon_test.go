package canon

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// permutations returns all permutations of 0..n-1 (test sizes only).
func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	for _, sub := range permutations(n - 1) {
		for pos := 0; pos <= len(sub); pos++ {
			perm := make([]int, 0, n)
			perm = append(perm, sub[:pos]...)
			perm = append(perm, n-1)
			perm = append(perm, sub[pos:]...)
			out = append(out, perm)
		}
	}
	return out
}

func platformsEqual(a, b *platform.Platform) bool {
	m := a.NumProcs()
	if b.NumProcs() != m {
		return false
	}
	for u := 0; u < m; u++ {
		if a.Speed[u] != b.Speed[u] || a.FailProb[u] != b.FailProb[u] ||
			a.BIn[u] != b.BIn[u] || a.BOut[u] != b.BOut[u] {
			return false
		}
		for v := 0; v < m; v++ {
			if u != v && a.B[u][v] != b.B[u][v] {
				return false
			}
		}
	}
	return true
}

// checkInvariant canonicalizes pl and every given relabeling of it and
// asserts identical canonical bytes, valid permutations, and identical
// canonical-labeled platforms.
func checkInvariant(t *testing.T, p *pipeline.Pipeline, pl *platform.Platform, perms [][]int) {
	t.Helper()
	base, err := Canonicalize(p, pl)
	if err != nil {
		t.Fatalf("canonicalize base: %v", err)
	}
	checkPerm(t, base, pl)
	basePlat := base.Platform()
	for i, perm := range perms {
		cn, err := Canonicalize(p, pl.Permute(perm))
		if err != nil {
			t.Fatalf("perm %d: %v", i, err)
		}
		if !bytes.Equal(cn.Bytes, base.Bytes) {
			t.Fatalf("perm %d (%v): canonical bytes differ from base", i, perm)
		}
		checkPerm(t, cn, pl.Permute(perm))
		if !platformsEqual(cn.Platform(), basePlat) {
			t.Fatalf("perm %d: canonical platforms differ", i)
		}
	}
}

// checkPerm asserts cn.Perm is a bijection consistent with cn.Inv and
// that the canonical platform really is orig relabeled through it.
func checkPerm(t *testing.T, cn *Canonical, orig *platform.Platform) {
	t.Helper()
	m := orig.NumProcs()
	if len(cn.Perm) != m || len(cn.Inv) != m {
		t.Fatalf("perm/inv lengths %d/%d, want %d", len(cn.Perm), len(cn.Inv), m)
	}
	seen := make([]bool, m)
	for i, u := range cn.Perm {
		if u < 0 || u >= m || seen[u] {
			t.Fatalf("Perm is not a bijection: %v", cn.Perm)
		}
		seen[u] = true
		if cn.Inv[u] != i {
			t.Fatalf("Inv[%d]=%d inconsistent with Perm[%d]=%d", u, cn.Inv[u], i, u)
		}
	}
	if !platformsEqual(cn.Platform(), orig.Permute(cn.Perm)) {
		t.Fatal("Platform() is not the original relabeled through Perm")
	}
}

func TestCommHomInvarianceExhaustive(t *testing.T) {
	p := pipeline.MustNew([]float64{1, 100}, []float64{10, 1, 0})
	pl, err := platform.NewCommHomogeneous(
		[]float64{100, 1, 100, 7}, []float64{0.8, 0.1, 0.8, 0.25}, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, p, pl, permutations(4))
}

func TestCommHomCanonicalOrderSorted(t *testing.T) {
	p := pipeline.Uniform(2, 1, 1)
	pl, err := platform.NewCommHomogeneous(
		[]float64{5, 1, 5, 2}, []float64{0.9, 0.1, 0.2, 0.5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := Canonicalize(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	cp := cn.Platform()
	for u := 1; u < cp.NumProcs(); u++ {
		if cp.Speed[u] < cp.Speed[u-1] {
			t.Fatalf("canonical speeds not sorted: %v", cp.Speed)
		}
		if cp.Speed[u] == cp.Speed[u-1] && cp.FailProb[u] < cp.FailProb[u-1] {
			t.Fatalf("canonical fp not sorted within speed ties: %v", cp.FailProb)
		}
	}
}

func TestHetInvarianceExhaustiveSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := pipeline.Random(rng, 3, 1, 10, 0, 5)
	pl := platform.RandomFullyHeterogeneous(rng, 4, 1, 10, 0.05, 0.95, 1, 5)
	checkInvariant(t, p, pl, permutations(4))
}

func TestHetInvarianceRandomWide(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := pipeline.Random(rng, 5, 1, 10, 0, 5)
	for _, m := range []int{16, 64, 128} {
		pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.05, 0.95, 1, 5)
		perms := make([][]int, 5)
		for i := range perms {
			perms[i] = rng.Perm(m)
		}
		checkInvariant(t, p, pl, perms)
	}
}

// Twin processors (interchangeable under every automorphism) must not
// trigger branching and must still canonicalize invariantly. bIn differs
// from the link bandwidth, forcing the heterogeneous path.
func TestHetTwinCells(t *testing.T) {
	p := pipeline.Uniform(3, 2, 1)
	uniform := func(m int, b float64) [][]float64 {
		mat := make([][]float64, m)
		for u := range mat {
			mat[u] = make([]float64, m)
			for v := range mat[u] {
				if u != v {
					mat[u][v] = b
				}
			}
		}
		return mat
	}
	pl, err := platform.NewFullyHeterogeneous(
		[]float64{1, 1, 2, 2},
		[]float64{0.5, 0.5, 0.3, 0.3},
		uniform(4, 1),
		[]float64{3, 3, 5, 5},
		[]float64{4, 4, 6, 6},
	)
	if err != nil {
		t.Fatal(err)
	}
	st := &hetState{pl: pl, budget: Budget}
	if !st.twins(0, 1) || !st.twins(2, 3) || st.twins(0, 2) {
		t.Fatal("twin detection wrong on the twin platform")
	}
	checkInvariant(t, p, pl, permutations(4))
}

// A 4-ring bandwidth matrix (ring links 1, chords 2, all processor
// attributes equal) survives refinement as one symmetric cell that is not
// all-twins, so canonicalization must branch — and still produce one
// canonical form across all 24 relabelings.
func ring4Platform(t *testing.T) *platform.Platform {
	t.Helper()
	b := [][]float64{
		{0, 1, 2, 1},
		{1, 0, 1, 2},
		{2, 1, 0, 1},
		{1, 2, 1, 0},
	}
	pl, err := platform.NewFullyHeterogeneous(
		[]float64{1, 1, 1, 1},
		[]float64{0.5, 0.5, 0.5, 0.5},
		b,
		[]float64{7, 7, 7, 7},
		[]float64{7, 7, 7, 7},
	)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestHetBranchingRing(t *testing.T) {
	p := pipeline.Uniform(2, 1, 1)
	checkInvariant(t, p, ring4Platform(t), permutations(4))
}

func TestErrComplexOnTinyBudget(t *testing.T) {
	defer func(old int) { Budget = old }(Budget)
	Budget = 1
	_, err := Canonicalize(pipeline.Uniform(2, 1, 1), ring4Platform(t))
	if !errors.Is(err, ErrComplex) {
		t.Fatalf("want ErrComplex, got %v", err)
	}
}

func TestDiagonalIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := pipeline.Uniform(2, 1, 1)
	pl := platform.RandomFullyHeterogeneous(rng, 5, 1, 10, 0.1, 0.9, 1, 5)
	dirty := pl.Clone()
	for u := range dirty.B {
		dirty.B[u][u] = 99
	}
	a, err := Canonicalize(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Canonicalize(p, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes, b.Bytes) {
		t.Fatal("diagonal entries leaked into the canonical form")
	}
}

func TestDistinctInstancesDistinctBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := pipeline.Random(rng, 3, 1, 10, 0, 5)
	pl := platform.RandomFullyHeterogeneous(rng, 5, 1, 10, 0.1, 0.9, 1, 5)
	base, err := Canonicalize(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	// One changed value anywhere must change the canonical bytes.
	mutations := []func() (*pipeline.Pipeline, *platform.Platform){
		func() (*pipeline.Pipeline, *platform.Platform) {
			q := p.Clone()
			q.W[1] += 1
			return q, pl
		},
		func() (*pipeline.Pipeline, *platform.Platform) {
			q := p.Clone()
			q.Delta[0] += 1
			return q, pl
		},
		func() (*pipeline.Pipeline, *platform.Platform) {
			cp := pl.Clone()
			cp.Speed[2] *= 2
			return p, cp
		},
		func() (*pipeline.Pipeline, *platform.Platform) {
			cp := pl.Clone()
			cp.FailProb[4] /= 2
			return p, cp
		},
		func() (*pipeline.Pipeline, *platform.Platform) {
			cp := pl.Clone()
			cp.B[1][3] *= 3
			return p, cp
		},
		func() (*pipeline.Pipeline, *platform.Platform) {
			cp := pl.Clone()
			cp.BIn[0] *= 3
			return p, cp
		},
	}
	for i, mut := range mutations {
		q, cp := mut()
		cn, err := Canonicalize(q, cp)
		if err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
		if bytes.Equal(cn.Bytes, base.Bytes) {
			t.Errorf("mutation %d: canonical bytes unchanged", i)
		}
	}
}

func TestCommHomAndHetNeverCollide(t *testing.T) {
	// Same pipeline and per-processor attributes; one platform has uniform
	// links, one not. The class byte keeps the encodings apart even if the
	// remaining bytes lined up.
	p := pipeline.Uniform(1, 1, 1)
	ch, err := platform.NewCommHomogeneous([]float64{1, 2}, []float64{0.1, 0.2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	het := ch.Clone()
	het.BIn[0] = 2
	a, err := Canonicalize(p, ch)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Canonicalize(p, het)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes, b.Bytes) {
		t.Fatal("collapsed and heterogeneous forms collided")
	}
	if a.Bytes[1] != encClassCommHom || b.Bytes[1] != encClassHetero {
		t.Fatalf("class bytes %x/%x, want %x/%x", a.Bytes[1], b.Bytes[1], encClassCommHom, encClassHetero)
	}
}

func TestNegativeZeroNormalized(t *testing.T) {
	p := pipeline.Uniform(1, 1, 1)
	a, err := platform.NewCommHomogeneous([]float64{1, 2}, []float64{0, 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	b.FailProb[0] = negzero()
	ca, err := Canonicalize(p, a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Canonicalize(p, b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes, cb.Bytes) {
		t.Fatal("-0 and +0 failure probabilities split the equivalence class")
	}
}

func negzero() float64 {
	z := 0.0
	return -z
}

func TestSingleProcessor(t *testing.T) {
	p := pipeline.Uniform(2, 1, 1)
	// m=1 with bIn != bOut exercises the heterogeneous path with an empty
	// bandwidth section.
	pl, err := platform.NewFullyHeterogeneous(
		[]float64{2}, []float64{0.3}, [][]float64{{0}}, []float64{1}, []float64{4})
	if err != nil {
		t.Fatal(err)
	}
	cn, err := Canonicalize(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if !cn.IsIdentity() {
		t.Fatal("single-processor canonicalization must be the identity")
	}
}

func TestCanonicalizeRejectsInvalid(t *testing.T) {
	good := pipeline.Uniform(1, 1, 1)
	pl, err := platform.NewFullyHomogeneous(2, 1, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Canonicalize(nil, pl); err == nil {
		t.Error("nil pipeline accepted")
	}
	if _, err := Canonicalize(good, nil); err == nil {
		t.Error("nil platform accepted")
	}
	bad := &pipeline.Pipeline{W: []float64{-1}, Delta: []float64{0, 0}}
	if _, err := Canonicalize(bad, pl); err == nil {
		t.Error("invalid pipeline accepted")
	}
	badPl := pl.Clone()
	badPl.Speed[0] = 0
	if _, err := Canonicalize(good, badPl); err == nil {
		t.Error("invalid platform accepted")
	}
}

func TestTranslateMapping(t *testing.T) {
	m := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 1}, {First: 2, Last: 2}},
		Alloc:     [][]int{{0, 3}, {1}},
	}
	got := TranslateMapping(m, []int{2, 0, 3, 1})
	want := [][]int{{1, 2}, {0}}
	for j := range want {
		if len(got.Alloc[j]) != len(want[j]) {
			t.Fatalf("alloc %d: %v, want %v", j, got.Alloc[j], want[j])
		}
		for i := range want[j] {
			if got.Alloc[j][i] != want[j][i] {
				t.Fatalf("alloc %d: %v, want %v", j, got.Alloc[j], want[j])
			}
		}
	}
	// The input must be untouched.
	if m.Alloc[0][0] != 0 || m.Alloc[0][1] != 3 {
		t.Fatal("TranslateMapping mutated its input")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range processor id did not panic")
		}
	}()
	TranslateMapping(m, []int{0, 1})
}

func TestToOriginalToCanonicalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := pipeline.Random(rng, 4, 1, 10, 0, 5)
	pl := platform.RandomFullyHeterogeneous(rng, 6, 1, 10, 0.1, 0.9, 1, 5)
	cn, err := Canonicalize(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	m := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 2}, {First: 3, Last: 3}},
		Alloc:     [][]int{{0, 2, 5}, {1, 4}},
	}
	back := cn.ToCanonical(cn.ToOriginal(m))
	for j := range m.Alloc {
		if len(back.Alloc[j]) != len(m.Alloc[j]) {
			t.Fatalf("round trip changed alloc %d", j)
		}
		for i := range m.Alloc[j] {
			if back.Alloc[j][i] != m.Alloc[j][i] {
				t.Fatalf("round trip changed alloc %d: %v -> %v", j, m.Alloc[j], back.Alloc[j])
			}
		}
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := pipeline.Random(rng, 3, 1, 10, 0, 5)
	for _, pl := range []*platform.Platform{
		platform.RandomFullyHeterogeneous(rng, 8, 1, 10, 0.1, 0.9, 1, 5),
		platform.RandomCommHomogeneous(rng, 8, 1, 10, 0.1, 0.9, 2),
		ring4Platform(t),
	} {
		cn, err := Canonicalize(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		again, err := Canonicalize(p, cn.Platform())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cn.Bytes, again.Bytes) {
			t.Fatal("canonicalizing the canonical platform changed the bytes")
		}
		if !again.IsIdentity() {
			t.Fatal("canonical platform did not canonicalize to the identity")
		}
	}
}
