// Package canon computes a canonical form of (pipeline, platform)
// instances. The paper's mapping problem is invariant under relabeling of
// the processors (Section 3 defines mappings through the alloc sets, never
// through processor identity), so two requests whose platforms differ only
// by a processor permutation have the same optimal metrics and
// permutation-related optimal mappings. Canonicalizing before hashing lets
// a serving tier answer every member of such an equivalence class from one
// cached solution (ROADMAP open item 1).
//
// Canonicalize relabels the processors deterministically:
//
//   - Communication-homogeneous platforms (a single bandwidth everywhere)
//     collapse to an order-only form: processors sorted by (speed, failure
//     probability), the shared bandwidth encoded once.
//   - Fully heterogeneous platforms sort processors by a base invariant
//     (speed, failure probability, input/output bandwidth, the multisets
//     of outgoing and incoming link bandwidths), refine the resulting
//     ordered partition against the link matrix until it stabilizes, and
//     — when symmetric ties survive refinement — branch on the tied
//     processors and keep the lexicographically smallest encoding
//     (individualization-refinement with twin pruning). Searches past
//     Budget nodes abort with ErrComplex; callers fall back to the raw
//     labeling, losing cache sharing but never correctness.
//
// The canonical byte encoding is injective on validated instances: floats
// are encoded as IEEE-754 bit patterns (with -0 normalized to +0), so
// equal bytes mean structurally identical instances, and hashing the bytes
// is a sound cross-request cache key. The Perm/Inv permutations translate
// mappings between the canonical and original labelings (TranslateMapping).
package canon

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// Encoding header bytes: a version (bump on any layout change — cached
// keys must not collide across layouts) and the platform-class tag that
// keeps the collapsed communication-homogeneous form from ever colliding
// with a heterogeneous one.
const (
	encVersion      = 0x01
	encClassCommHom = 0x01
	encClassHetero  = 0x02
)

// ErrComplex reports that the platform's link symmetry forced the
// canonical search past Budget nodes. The instance is still solvable —
// callers just cannot share its cache entries across relabelings.
var ErrComplex = errors.New("canon: platform symmetry exceeds the refinement budget")

// Budget caps the individualization-refinement search nodes per
// Canonicalize call. Real platforms discretize in one refinement pass
// (distinct speeds, or homogeneous links); the budget only bites on
// adversarially symmetric link matrices (e.g. large circulants), where
// aborting beats an exponential search. Variable rather than constant so
// tests can exercise the ErrComplex path.
var Budget = 4096

// Canonical is the result of canonicalizing one instance.
type Canonical struct {
	// Bytes is the canonical encoding: equal bytes <=> the instances are
	// identical up to processor relabeling. Hash it (plus whatever options
	// shape an answer) to key cross-request caches.
	Bytes []byte
	// Perm maps canonical position -> original processor id: processor i
	// of the canonical platform is processor Perm[i] of the original.
	Perm []int
	// Inv maps original processor id -> canonical position.
	Inv []int

	pipe *pipeline.Pipeline
	plat *platform.Platform
}

// Canonicalize validates the instance and computes its canonical form.
// It returns ErrComplex (wrapped) when the search exceeds Budget.
func Canonicalize(p *pipeline.Pipeline, pl *platform.Platform) (*Canonical, error) {
	if p == nil || pl == nil {
		return nil, fmt.Errorf("canon: need both a pipeline and a platform")
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("canon: %w", err)
	}
	if err := pl.Validate(); err != nil {
		return nil, fmt.Errorf("canon: %w", err)
	}
	m := pl.NumProcs()
	var perm []int
	var enc []byte
	if b, ok := pl.CommHomogeneous(); ok {
		perm = commHomOrder(pl)
		enc = make([]byte, 0, 2+16*(m+1))
		enc = append(enc, encVersion, encClassCommHom)
		enc = p.AppendCanonicalBytes(enc)
		enc = binary.AppendUvarint(enc, uint64(m))
		enc = appendBits(enc, b)
		for _, u := range perm {
			enc = appendBits(enc, pl.Speed[u])
			enc = appendBits(enc, pl.FailProb[u])
		}
	} else {
		st := &hetState{pl: pl, budget: Budget}
		section, order, err := st.search(st.refine(baseCells(pl)))
		if err != nil {
			return nil, err
		}
		perm = order
		enc = make([]byte, 0, 2+16+len(section))
		enc = append(enc, encVersion, encClassHetero)
		enc = p.AppendCanonicalBytes(enc)
		enc = binary.AppendUvarint(enc, uint64(m))
		enc = append(enc, section...)
	}
	inv := make([]int, m)
	for i, u := range perm {
		inv[u] = i
	}
	return &Canonical{Bytes: enc, Perm: perm, Inv: inv, pipe: p, plat: pl}, nil
}

// Pipeline returns the instance's pipeline. Stage order carries meaning
// (the chain is directed), so the pipeline is never permuted — it is the
// caller's original, shared, do not mutate.
func (c *Canonical) Pipeline() *pipeline.Pipeline { return c.pipe }

// Platform returns a freshly allocated canonical-labeled platform:
// processor i is the original's processor Perm[i].
func (c *Canonical) Platform() *platform.Platform { return c.plat.Permute(c.Perm) }

// NumProcs returns the instance's processor count.
func (c *Canonical) NumProcs() int { return len(c.Perm) }

// IsIdentity reports whether the canonical labeling coincides with the
// original one (no translation needed for mappings).
func (c *Canonical) IsIdentity() bool {
	for i, u := range c.Perm {
		if i != u {
			return false
		}
	}
	return true
}

// ToOriginal translates a canonical-labeled mapping back to the original
// processor ids.
func (c *Canonical) ToOriginal(m *mapping.Mapping) *mapping.Mapping {
	return TranslateMapping(m, c.Perm)
}

// ToCanonical translates an original-labeled mapping to canonical ids.
func (c *Canonical) ToCanonical(m *mapping.Mapping) *mapping.Mapping {
	return TranslateMapping(m, c.Inv)
}

// TranslateMapping returns a copy of m with every processor id u replaced
// by procMap[u], each alloc set re-sorted ascending. It panics when the
// mapping references an id outside procMap — translation maps between two
// labelings of one platform, so that is a caller bug.
func TranslateMapping(m *mapping.Mapping, procMap []int) *mapping.Mapping {
	cp := m.Clone()
	for j := range cp.Alloc {
		for i, u := range cp.Alloc[j] {
			if u < 0 || u >= len(procMap) {
				panic(fmt.Sprintf("canon: mapping references processor %d outside the %d-id translation", u, len(procMap)))
			}
			cp.Alloc[j][i] = procMap[u]
		}
		sort.Ints(cp.Alloc[j])
	}
	return cp
}

// appendBits appends x's big-endian IEEE-754 bit pattern, normalizing -0
// to +0 so the two (numerically equal) zeros cannot split an equivalence
// class. Validated instances hold no NaN, so bit equality is value
// equality and — for the non-negative values at hand — bit order is value
// order.
func appendBits(dst []byte, x float64) []byte {
	return binary.BigEndian.AppendUint64(dst, normBits(x))
}

func normBits(x float64) uint64 {
	if x == 0 {
		return 0
	}
	return math.Float64bits(x)
}

// commHomOrder sorts processor ids by (speed, failure probability, id).
// On a communication-homogeneous platform processors tied on both
// attributes are fully interchangeable, so the id tie-break cannot leak
// original labels into the encoding.
func commHomOrder(pl *platform.Platform) []int {
	ids := make([]int, pl.NumProcs())
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		u, v := ids[a], ids[b]
		su, sv := normBits(pl.Speed[u]), normBits(pl.Speed[v])
		if su != sv {
			return su < sv
		}
		fu, fv := normBits(pl.FailProb[u]), normBits(pl.FailProb[v])
		if fu != fv {
			return fu < fv
		}
		return u < v
	})
	return ids
}

// hetState carries one heterogeneous canonical search.
type hetState struct {
	pl     *platform.Platform
	nodes  int
	budget int
}

// baseCells partitions processors by their label-invariant attributes:
// speed, failure probability, input/output bandwidth, and the sorted
// multisets of outgoing and incoming link bandwidths. Cells are ordered
// by key, members ascending by id.
//
// The link multisets are computed lazily: processors are first grouped by
// their four scalar attributes, and only groups still tied there pay the
// per-vertex link sorts. Because the scalar components lead the key, the
// final order (sort by scalars, then by link extension within each tied
// group) is exactly the order a sort on the full concatenated key would
// produce — the common all-distinct case just skips the O(m² log m) part.
func baseCells(pl *platform.Platform) [][]int {
	m := pl.NumProcs()
	keys := make([][]uint64, m)
	for u := 0; u < m; u++ {
		keys[u] = []uint64{normBits(pl.Speed[u]), normBits(pl.FailProb[u]), normBits(pl.BIn[u]), normBits(pl.BOut[u])}
	}
	ids := make([]int, m)
	for i := range ids {
		ids[i] = i
	}
	byKey := func(a, b int) bool {
		if c := compareU64(keys[ids[a]], keys[ids[b]]); c != 0 {
			return c < 0
		}
		return ids[a] < ids[b]
	}
	sort.Slice(ids, byKey)
	var cells [][]int
	for start := 0; start < m; {
		end := start + 1
		for end < m && compareU64(keys[ids[start]], keys[ids[end]]) == 0 {
			end++
		}
		if end-start > 1 {
			// Scalar tie: extend the tied keys with the link multisets and
			// re-sort just this group (its position among the groups is
			// already fixed by the shared scalar prefix).
			for _, u := range ids[start:end] {
				keys[u] = appendSortedLinks(keys[u], pl, u, true)
				keys[u] = appendSortedLinks(keys[u], pl, u, false)
			}
			group := ids[start:end]
			sort.Slice(group, func(a, b int) bool {
				if c := compareU64(keys[group[a]], keys[group[b]]); c != 0 {
					return c < 0
				}
				return group[a] < group[b]
			})
			for sub := start; sub < end; {
				subEnd := sub + 1
				for subEnd < end && compareU64(keys[ids[sub]], keys[ids[subEnd]]) == 0 {
					subEnd++
				}
				cells = append(cells, append([]int(nil), ids[sub:subEnd]...))
				sub = subEnd
			}
		} else {
			cells = append(cells, append([]int(nil), ids[start:end]...))
		}
		start = end
	}
	return cells
}

// appendSortedLinks appends the sorted bit patterns of u's off-diagonal
// row (out=true) or column (out=false) of the bandwidth matrix.
func appendSortedLinks(key []uint64, pl *platform.Platform, u int, out bool) []uint64 {
	m := pl.NumProcs()
	links := make([]uint64, 0, m-1)
	for v := 0; v < m; v++ {
		if v == u {
			continue
		}
		if out {
			links = append(links, normBits(pl.B[u][v]))
		} else {
			links = append(links, normBits(pl.B[v][u]))
		}
	}
	slices.Sort(links)
	return append(key, links...)
}

func compareU64(a, b []uint64) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

// refine splits every cell by each member's per-cell link signature until
// the partition stabilizes. Signatures are label-invariant (sorted
// multisets of bandwidths toward each cell in cell order), so the refined
// partition — including the order of its cells — is identical across
// relabelings of one platform.
func (st *hetState) refine(cells [][]int) [][]int {
	for {
		changed := false
		var out [][]int
		for _, cell := range cells {
			if len(cell) == 1 {
				out = append(out, cell)
				continue
			}
			sigs := make([][]uint64, len(cell))
			for i, u := range cell {
				sigs[i] = st.signature(u, cells)
			}
			idx := make([]int, len(cell))
			for i := range idx {
				idx[i] = i
			}
			sort.SliceStable(idx, func(a, b int) bool {
				return compareU64(sigs[idx[a]], sigs[idx[b]]) < 0
			})
			groups := 0
			for start := 0; start < len(idx); {
				end := start + 1
				for end < len(idx) && compareU64(sigs[idx[start]], sigs[idx[end]]) == 0 {
					end++
				}
				group := make([]int, 0, end-start)
				for _, i := range idx[start:end] {
					group = append(group, cell[i])
				}
				sort.Ints(group)
				out = append(out, group)
				groups++
				start = end
			}
			if groups > 1 {
				changed = true
			}
		}
		cells = out
		if !changed {
			return cells
		}
	}
}

// signature describes how u connects to every cell of the partition: for
// each cell in order, the sorted bandwidths of u's links into it and of
// its links back to u. Members of one cell produce equal-length
// signatures, so plain concatenation compares correctly.
func (st *hetState) signature(u int, cells [][]int) []uint64 {
	sig := make([]uint64, 0, 2*st.pl.NumProcs())
	for _, cell := range cells {
		sig = appendCellLinks(sig, st.pl, u, cell, true)
		sig = appendCellLinks(sig, st.pl, u, cell, false)
	}
	return sig
}

func appendCellLinks(sig []uint64, pl *platform.Platform, u int, cell []int, out bool) []uint64 {
	start := len(sig)
	for _, v := range cell {
		if v == u {
			continue
		}
		if out {
			sig = append(sig, normBits(pl.B[u][v]))
		} else {
			sig = append(sig, normBits(pl.B[v][u]))
		}
	}
	slices.Sort(sig[start:])
	return sig
}

// twins reports whether swapping u and v is an automorphism of the
// platform: identical attributes, identical links to every third
// processor, and a symmetric link between the two.
func (st *hetState) twins(u, v int) bool {
	pl := st.pl
	if pl.Speed[u] != pl.Speed[v] || normBits(pl.FailProb[u]) != normBits(pl.FailProb[v]) ||
		pl.BIn[u] != pl.BIn[v] || pl.BOut[u] != pl.BOut[v] ||
		pl.B[u][v] != pl.B[v][u] {
		return false
	}
	for w := 0; w < pl.NumProcs(); w++ {
		if w == u || w == v {
			continue
		}
		if pl.B[u][w] != pl.B[v][w] || pl.B[w][u] != pl.B[w][v] {
			return false
		}
	}
	return true
}

// allTwins reports whether every pair in the cell is a twin pair, in
// which case any internal order of the cell yields identical canonical
// bytes and no branching is needed.
func (st *hetState) allTwins(cell []int) bool {
	for i := 0; i < len(cell); i++ {
		for j := i + 1; j < len(cell); j++ {
			if !st.twins(cell[i], cell[j]) {
				return false
			}
		}
	}
	return true
}

// search runs individualization-refinement below an already-refined
// partition: when a cell survives refinement with non-twin ties, each
// distinguishable member is individualized in turn and the
// lexicographically smallest leaf encoding wins. Twin candidates are
// pruned (their subtrees encode identically), and the node budget bounds
// the worst case. The tree's shape is label-invariant, so budget
// exhaustion is deterministic across relabelings of one platform.
func (st *hetState) search(cells [][]int) ([]byte, []int, error) {
	st.nodes++
	if st.nodes > st.budget {
		return nil, nil, fmt.Errorf("canon: %d search nodes: %w", st.nodes, ErrComplex)
	}
	branch := -1
	for i, cell := range cells {
		if len(cell) > 1 && !st.allTwins(cell) {
			branch = i
			break
		}
	}
	if branch < 0 {
		order := make([]int, 0, st.pl.NumProcs())
		for _, cell := range cells {
			order = append(order, cell...)
		}
		return encodeHetSection(st.pl, order), order, nil
	}
	cell := cells[branch]
	var best []byte
	var bestOrder []int
	var tried []int
	for _, u := range cell {
		dup := false
		for _, t := range tried {
			if st.twins(u, t) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		tried = append(tried, u)
		rest := make([]int, 0, len(cell)-1)
		for _, v := range cell {
			if v != u {
				rest = append(rest, v)
			}
		}
		next := make([][]int, 0, len(cells)+1)
		next = append(next, cells[:branch]...)
		next = append(next, []int{u}, rest)
		next = append(next, cells[branch+1:]...)
		enc, order, err := st.search(st.refine(next))
		if err != nil {
			return nil, nil, err
		}
		if best == nil || bytes.Compare(enc, best) < 0 {
			best, bestOrder = enc, order
		}
	}
	return best, bestOrder, nil
}

// encodeHetSection encodes the platform under the given processor order:
// per-processor attributes, then the off-diagonal bandwidth matrix
// row-major. The (ignored) diagonal is never encoded, so instances
// differing only there share a canonical form.
func encodeHetSection(pl *platform.Platform, order []int) []byte {
	m := len(order)
	dst := make([]byte, 0, 8*(4*m+m*(m-1)))
	for _, u := range order {
		dst = appendBits(dst, pl.Speed[u])
		dst = appendBits(dst, pl.FailProb[u])
		dst = appendBits(dst, pl.BIn[u])
		dst = appendBits(dst, pl.BOut[u])
	}
	for _, u := range order {
		for _, v := range order {
			if u != v {
				dst = appendBits(dst, pl.B[u][v])
			}
		}
	}
	return dst
}
