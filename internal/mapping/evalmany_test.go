package mapping

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// These tests pin the bitwise contract documented at the top of
// evalmany.go: every Sibling field must equal — bit for bit, not within a
// tolerance — what the engine's incremental push/complete pair derives
// from the single-candidate Evaluator methods for the same singleton
// extension. A composed reference below replays exactly those methods in
// exactly the engine's association order.

// singletonPrefix is a randomly grown partial mapping of singleton
// intervals whose accumulators are maintained with the single-candidate
// methods precisely as search.push does.
type singletonPrefix struct {
	pre   BatchPrefix
	start int // first unassigned stage
	free  uint64
}

// growPrefix assigns `depth` singleton intervals over stages of p,
// reproducing push's latency/success recurrences for commHom or het
// platforms.
func growPrefix(rng *rand.Rand, e *Evaluator, commHom bool, depth int) singletonPrefix {
	n, m := e.NumStages(), e.NumProcs()
	sp := singletonPrefix{free: uint64(1)<<uint(m) - 1}
	sp.pre.Succ = 1
	prevFirst, prevLast, prevProc := 0, -1, 0
	for d := 0; d < depth && sp.start < n-1 && bitsOnes(sp.free) > 1; d++ {
		first := sp.start
		last := first + rng.Intn(n-1-first) // keep at least one stage free
		var u int
		for {
			u = rng.Intn(m)
			if sp.free&(1<<uint(u)) != 0 {
				break
			}
		}
		mask := uint64(1) << uint(u)
		sp.pre.Succ *= e.SuccessFactor(mask)
		if commHom {
			commIn, compute := e.IntervalEq1Cost(first, last, mask)
			lat := sp.pre.Lat + commIn
			lat += compute
			sp.pre.Lat = lat
		} else {
			if d == 0 {
				sp.pre.Lat = e.InputSum(mask)
			} else {
				sp.pre.Lat += e.IntervalEq2Term(prevFirst, prevLast, uint64(1)<<uint(prevProc), mask)
			}
		}
		prevFirst, prevLast, prevProc = first, last, u
		sp.pre.Depth = d + 1
		sp.free &^= mask
		sp.start = last + 1
	}
	sp.pre.PrevFirst, sp.pre.PrevLast, sp.pre.PrevProc = prevFirst, prevLast, prevProc
	return sp
}

func bitsOnes(x uint64) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// composedSibling replays the engine's single-candidate push (and, on the
// final stage, complete) arithmetic for the prefix extended by
// [first, last] on {u}.
func composedSibling(e *Evaluator, commHom bool, sp singletonPrefix, first, last, u int) Sibling {
	mask := uint64(1) << uint(u)
	sb := Sibling{Proc: u, Succ: sp.pre.Succ * e.SuccessFactor(mask)}
	if commHom {
		commIn, compute := e.IntervalEq1Cost(first, last, mask)
		lat := sp.pre.Lat + commIn
		lat += compute
		sb.Lat = lat
		sb.LB = lat
		if last == e.NumStages()-1 {
			sb.Final = lat + e.TailLatencyLB(e.NumStages())
		}
	} else {
		var lat float64
		if sp.pre.Depth == 0 {
			lat = e.InputSum(mask)
		} else {
			prevMask := uint64(1) << uint(sp.pre.PrevProc)
			lat = sp.pre.Lat + e.IntervalEq2Term(sp.pre.PrevFirst, sp.pre.PrevLast, prevMask, mask)
		}
		sb.Lat = lat
		sb.LB = lat + e.IntervalComputeLB(first, last, mask)
		if last == e.NumStages()-1 {
			sb.Final = lat + e.IntervalEq2FinalTerm(first, last, mask)
		}
	}
	return sb
}

func checkSibling(t *testing.T, label string, got, want Sibling) {
	t.Helper()
	if got != want {
		t.Fatalf("%s: sibling %+v, composed single-candidate reference %+v", label, got, want)
	}
}

// TestEvaluateManyMatchesSingleCandidate: narrow batch results must equal
// the composed single-candidate arithmetic bitwise, across platforms,
// depths and stage windows.
func TestEvaluateManyMatchesSingleCandidate(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := 2 + rng.Intn(6)
		p := pipeline.Random(rng, n, 1, 10, 0, 10)
		pls := []*platform.Platform{
			platform.RandomCommHomogeneous(rng, m, 1, 10, 0.05, 0.95, 1+rng.Float64()*4),
			platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.05, 0.95, 1, 20),
		}
		for pi, pl := range pls {
			commHom := pi == 0
			e, err := NewEvaluator(p, pl)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]Sibling, m)
			for depth := 0; depth <= 2; depth++ {
				sp := growPrefix(rng, e, commHom, depth)
				for first := sp.start; first < n; first = n { // one window start; vary the end
					for last := first; last < n; last++ {
						nb := e.EvaluateMany(sp.pre, first, last, sp.free, out)
						if nb != bitsOnes(sp.free) {
							t.Fatalf("seed %d: wrote %d siblings for %d free processors", seed, nb, bitsOnes(sp.free))
						}
						prev := -1
						for i := 0; i < nb; i++ {
							if out[i].Proc <= prev {
								t.Fatalf("seed %d: siblings out of ascending processor order", seed)
							}
							prev = out[i].Proc
							checkSibling(t, "narrow", out[i], composedSibling(e, commHom, sp, first, last, out[i].Proc))
						}
					}
				}
			}
		}
	}
}

// TestEvaluateManyWMatchesNarrow: on platforms that fit both paths the
// wide batch evaluator must reproduce the narrow one bitwise, word by
// word over a multi-word free set at m > 64.
func TestEvaluateManyWMatchesNarrow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, m := 4, 20
	p := pipeline.Random(rng, n, 1, 10, 0, 10)
	for pi, pl := range []*platform.Platform{
		platform.RandomCommHomogeneous(rng, m, 1, 10, 0.05, 0.95, 2),
		platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.05, 0.95, 1, 20),
	} {
		commHom := pi == 0
		e, err := NewEvaluator(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		narrow := make([]Sibling, m)
		wide := make([]Sibling, m)
		for depth := 0; depth <= 2; depth++ {
			sp := growPrefix(rng, e, commHom, depth)
			fs := bitset.Make(m)
			for u := 0; u < m; u++ {
				if sp.free&(1<<uint(u)) != 0 {
					fs.Add(u)
				}
			}
			for last := sp.start; last < n; last++ {
				nn := e.EvaluateMany(sp.pre, sp.start, last, sp.free, narrow)
				nw := e.EvaluateManyW(sp.pre, sp.start, last, fs, wide)
				if nn != nw {
					t.Fatalf("narrow wrote %d siblings, wide wrote %d", nn, nw)
				}
				for i := 0; i < nn; i++ {
					checkSibling(t, "wide-vs-narrow", wide[i], narrow[i])
				}
			}
		}
	}

	// Multi-word free sets: at m = 80 the wide path must still match the
	// composed reference (the narrow path cannot represent this width).
	m = 80
	pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.05, 0.95, 1, 20)
	e, err := NewEvaluator(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Sibling, m)
	fs := bitset.Make(m)
	for u := 0; u < m; u++ {
		if u%3 != 1 { // a ragged set spanning both words
			fs.Add(u)
		}
	}
	pre := BatchPrefix{Depth: 1, Lat: 3.25, Succ: 0.75, PrevFirst: 0, PrevLast: 0, PrevProc: 70}
	nb := e.EvaluateManyW(pre, 1, n-1, fs, out)
	if nb != fs.Count() {
		t.Fatalf("wrote %d siblings for %d free processors", nb, fs.Count())
	}
	for i := 0; i < nb; i++ {
		u := out[i].Proc
		mask := bitset.Make(m)
		mask.Add(u)
		prevMask := bitset.Make(m)
		prevMask.Add(pre.PrevProc)
		lat := pre.Lat + e.IntervalEq2TermW(pre.PrevFirst, pre.PrevLast, prevMask, mask)
		want := Sibling{
			Proc:  u,
			Lat:   lat,
			Succ:  pre.Succ * e.SuccessFactorW(mask),
			LB:    lat + e.IntervalComputeLBW(1, n-1, mask),
			Final: lat + e.IntervalEq2FinalTermW(1, n-1, mask),
		}
		checkSibling(t, "wide-multiword", out[i], want)
	}
}

// TestEvaluateManyZeroAllocs: both batch evaluators must stay off the
// heap — they run once per search node.
func TestEvaluateManyZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, m := 5, 80
	p := pipeline.Random(rng, n, 1, 10, 0, 10)
	pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.05, 0.95, 1, 20)
	e, err := NewEvaluator(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Sibling, m)
	pre := BatchPrefix{Depth: 1, Lat: 1, Succ: 1, PrevLast: 0, PrevProc: 2}

	narrowPl := platform.RandomCommHomogeneous(rng, 16, 1, 10, 0.05, 0.95, 2)
	ne, err := NewEvaluator(p, narrowPl)
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		ne.EvaluateMany(pre, 1, n-1, 0xffff, out)
	}); allocs != 0 {
		t.Fatalf("EvaluateMany allocates %.1f times per call", allocs)
	}

	fs := bitset.Make(m)
	for u := 0; u < m; u++ {
		fs.Add(u)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		e.EvaluateManyW(pre, 1, n-1, fs, out)
	}); allocs != 0 {
		t.Fatalf("EvaluateManyW allocates %.1f times per call", allocs)
	}
}
