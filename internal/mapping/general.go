package mapping

import (
	"fmt"
	"strings"

	"repro/internal/pipeline"
	"repro/internal/platform"
)

// GeneralMapping assigns each stage to one processor with no interval
// constraint and no replication: ProcOf[i] is the processor executing
// stage i. Consecutive stages on the same processor exchange data for
// free; a processor change between stages i and i+1 pays δ_{i+1}/b.
// This is the mapping family of Theorem 4 (polynomial by shortest path).
type GeneralMapping struct {
	ProcOf []int `json:"procOf"`
}

// Validate checks that every stage has a processor in range. Unlike
// interval mappings, a processor may serve several (possibly
// non-consecutive) stages.
func (g *GeneralMapping) Validate(n, mProcs int) error {
	if len(g.ProcOf) != n {
		return fmt.Errorf("general mapping: %d assignments for %d stages", len(g.ProcOf), n)
	}
	for i, u := range g.ProcOf {
		if u < 0 || u >= mProcs {
			return fmt.Errorf("general mapping: stage %d on invalid processor %d (m=%d)", i, u, mProcs)
		}
	}
	return nil
}

// IsOneToOne reports whether all stages are on pairwise distinct
// processors (the mapping family of Theorem 3).
func (g *GeneralMapping) IsOneToOne() bool {
	seen := make(map[int]bool, len(g.ProcOf))
	for _, u := range g.ProcOf {
		if seen[u] {
			return false
		}
		seen[u] = true
	}
	return true
}

// String renders "S1->P2 S2->P1 ...".
func (g *GeneralMapping) String() string {
	var b strings.Builder
	for i, u := range g.ProcOf {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "S%d->P%d", i+1, u+1)
	}
	return b.String()
}

// Latency computes the latency of a general mapping on any platform,
// following the path-weight construction of Figure 6:
//
//	T = δ_0/b_{in,proc(1)}
//	  + Σ_i w_i/s_{proc(i)}
//	  + Σ_{proc(i) ≠ proc(i+1)} δ_i/b_{proc(i),proc(i+1)}
//	  + δ_n/b_{proc(n),out}
//
// (1-based paper indices in the comment; the code is 0-based.)
func (g *GeneralMapping) Latency(p *pipeline.Pipeline, pl *platform.Platform) (float64, error) {
	if err := g.Validate(p.NumStages(), pl.NumProcs()); err != nil {
		return 0, err
	}
	n := p.NumStages()
	total := p.Delta[0] / pl.BIn[g.ProcOf[0]]
	for i := 0; i < n; i++ {
		u := g.ProcOf[i]
		total += p.W[i] / pl.Speed[u]
		if i+1 < n {
			v := g.ProcOf[i+1]
			if u != v {
				total += p.Delta[i+1] / pl.B[u][v]
			}
		}
	}
	total += p.Delta[n] / pl.BOut[g.ProcOf[n-1]]
	return total, nil
}

// ToIntervalMapping converts a general mapping into an equivalent interval
// mapping (each replica set a singleton) when the assignment is already
// interval-shaped, i.e. every processor's stages are consecutive and a
// processor is not revisited. It returns ok=false otherwise.
func (g *GeneralMapping) ToIntervalMapping() (*Mapping, bool) {
	if len(g.ProcOf) == 0 {
		return nil, false
	}
	m := &Mapping{}
	start := 0
	seen := make(map[int]bool)
	for i := 1; i <= len(g.ProcOf); i++ {
		if i == len(g.ProcOf) || g.ProcOf[i] != g.ProcOf[start] {
			u := g.ProcOf[start]
			if seen[u] {
				return nil, false // processor revisited: not interval-based
			}
			seen[u] = true
			m.Intervals = append(m.Intervals, Interval{First: start, Last: i - 1})
			m.Alloc = append(m.Alloc, []int{u})
			start = i
		}
	}
	return m, true
}

// FromIntervalMapping flattens an interval mapping whose replica sets are
// all singletons into a GeneralMapping. It returns ok=false if any
// interval is replicated.
func FromIntervalMapping(m *Mapping, n int) (*GeneralMapping, bool) {
	g := &GeneralMapping{ProcOf: make([]int, n)}
	for j, iv := range m.Intervals {
		if len(m.Alloc[j]) != 1 {
			return nil, false
		}
		for i := iv.First; i <= iv.Last; i++ {
			if i < 0 || i >= n {
				return nil, false
			}
			g.ProcOf[i] = m.Alloc[j][0]
		}
	}
	return g, true
}
