// Package mapping defines the mapping objects of the paper — interval
// mappings with replication, one-to-one mappings, and general (unrestricted)
// mappings — together with the paper's analytic metrics: the latency
// formulas Eq. (1) and Eq. (2) and the global failure probability.
//
// An interval mapping partitions the stages 1..n into p consecutive
// intervals I_j = [d_j, e_j]; interval I_j is replicated on the processor
// set alloc(j). Every processor executes at most one interval (it serves
// every data set flowing through the pipeline), so the alloc sets are
// pairwise disjoint.
package mapping

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/pipeline"
	"repro/internal/platform"
)

// Interval is an inclusive range of 0-based stage indices. The paper's
// interval [d_j, e_j] (1-based) corresponds to {First: d_j − 1, Last:
// e_j − 1}.
type Interval struct {
	First int `json:"first"`
	Last  int `json:"last"`
}

// Len returns the number of stages in the interval.
func (iv Interval) Len() int { return iv.Last - iv.First + 1 }

// String renders the interval in the paper's 1-based notation, e.g.
// "[S2..S4]".
func (iv Interval) String() string {
	if iv.First == iv.Last {
		return fmt.Sprintf("[S%d]", iv.First+1)
	}
	return fmt.Sprintf("[S%d..S%d]", iv.First+1, iv.Last+1)
}

// Mapping is an interval mapping with replication: Intervals[j] is
// executed by every processor in Alloc[j].
type Mapping struct {
	Intervals []Interval `json:"intervals"`
	Alloc     [][]int    `json:"alloc"`
}

// NewSingleInterval maps the whole pipeline of n stages as one interval
// replicated on procs. This is the shape Lemma 1 proves optimal on Fully
// Homogeneous and CommHom+FailureHom platforms.
func NewSingleInterval(n int, procs []int) *Mapping {
	return &Mapping{
		Intervals: []Interval{{First: 0, Last: n - 1}},
		Alloc:     [][]int{append([]int(nil), procs...)},
	}
}

// NumIntervals returns p, the number of intervals.
func (m *Mapping) NumIntervals() int { return len(m.Intervals) }

// Replication returns k_j = |alloc(j)| for interval j.
func (m *Mapping) Replication(j int) int { return len(m.Alloc[j]) }

// Validate checks that the mapping is a legal interval mapping of an
// n-stage pipeline onto an mProcs-processor platform: the intervals
// partition [0, n) consecutively, every interval has at least one replica,
// and no processor appears twice (within or across intervals).
func (m *Mapping) Validate(n, mProcs int) error {
	if len(m.Intervals) == 0 {
		return fmt.Errorf("mapping: no intervals")
	}
	if len(m.Alloc) != len(m.Intervals) {
		return fmt.Errorf("mapping: %d intervals but %d alloc sets", len(m.Intervals), len(m.Alloc))
	}
	next := 0
	for j, iv := range m.Intervals {
		if iv.First != next {
			return fmt.Errorf("mapping: interval %d starts at stage %d, want %d", j, iv.First, next)
		}
		if iv.Last < iv.First {
			return fmt.Errorf("mapping: interval %d is empty (%d > %d)", j, iv.First, iv.Last)
		}
		next = iv.Last + 1
	}
	if next != n {
		return fmt.Errorf("mapping: intervals end at stage %d, want %d", next-1, n-1)
	}
	if mProcs <= 64 {
		// Bitmask fast path: keeps the hot public Evaluate path free of the
		// map allocation.
		var used uint64
		for j, procs := range m.Alloc {
			if len(procs) == 0 {
				return fmt.Errorf("mapping: interval %d has no processors", j)
			}
			for _, u := range procs {
				if u < 0 || u >= mProcs {
					return fmt.Errorf("mapping: interval %d uses invalid processor %d (m=%d)", j, u, mProcs)
				}
				if used&(1<<uint(u)) != 0 {
					return fmt.Errorf("mapping: processor %d assigned to more than one interval (or duplicated)", u)
				}
				used |= 1 << uint(u)
			}
		}
		return nil
	}
	used := make(map[int]bool, mProcs)
	for j, procs := range m.Alloc {
		if len(procs) == 0 {
			return fmt.Errorf("mapping: interval %d has no processors", j)
		}
		for _, u := range procs {
			if u < 0 || u >= mProcs {
				return fmt.Errorf("mapping: interval %d uses invalid processor %d (m=%d)", j, u, mProcs)
			}
			if used[u] {
				return fmt.Errorf("mapping: processor %d assigned to more than one interval (or duplicated)", u)
			}
			used[u] = true
		}
	}
	return nil
}

// UsedProcs returns the sorted set of all processors enrolled by the
// mapping.
func (m *Mapping) UsedProcs() []int {
	var all []int
	for _, procs := range m.Alloc {
		all = append(all, procs...)
	}
	sort.Ints(all)
	return all
}

// Clone returns a deep copy of the mapping.
func (m *Mapping) Clone() *Mapping {
	cp := &Mapping{
		Intervals: append([]Interval(nil), m.Intervals...),
		Alloc:     make([][]int, len(m.Alloc)),
	}
	for j := range m.Alloc {
		cp.Alloc[j] = append([]int(nil), m.Alloc[j]...)
	}
	return cp
}

// String renders e.g. "[S1..S2]->{P1,P3} [S3]->{P2}" (1-based, paper
// style).
func (m *Mapping) String() string {
	var b strings.Builder
	for j, iv := range m.Intervals {
		if j > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(iv.String())
		b.WriteString("->{")
		for i, u := range m.Alloc[j] {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "P%d", u+1)
		}
		b.WriteByte('}')
	}
	return b.String()
}

// Metrics bundles the two objectives of the bi-criteria problem.
type Metrics struct {
	Latency     float64
	FailureProb float64
}

// Dominates reports Pareto dominance: a dominates b when a is no worse in
// both objectives and strictly better in at least one.
func (a Metrics) Dominates(b Metrics) bool {
	if a.Latency > b.Latency || a.FailureProb > b.FailureProb {
		return false
	}
	return a.Latency < b.Latency || a.FailureProb < b.FailureProb
}

// Evaluate computes both metrics for an interval mapping on any platform,
// dispatching to Eq. (1) on communication-homogeneous platforms and Eq. (2)
// otherwise.
func Evaluate(p *pipeline.Pipeline, pl *platform.Platform, m *Mapping) (Metrics, error) {
	lat, err := Latency(p, pl, m)
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{Latency: lat, FailureProb: FailureProb(pl, m)}, nil
}

// Latency computes the worst-case latency of an interval mapping,
// selecting the applicable paper formula from the platform class.
func Latency(p *pipeline.Pipeline, pl *platform.Platform, m *Mapping) (float64, error) {
	if _, ok := pl.CommHomogeneous(); ok {
		return LatencyEq1(p, pl, m)
	}
	return LatencyEq2(p, pl, m)
}

// LatencyEq1 implements the paper's Equation (1), valid on Fully
// Homogeneous and Communication Homogeneous platforms (single bandwidth b):
//
//	T = Σ_{j=1..p} [ k_j·δ_{d_j−1}/b + (Σ_{i∈I_j} w_i) / min_{u∈alloc(j)} s_u ] + δ_n/b
//
// The k_j factor charges the incoming communication once per replica: in
// the worst case the replicas of the previous interval fail one after the
// other and the one-port model serializes the k_j re-sends.
func LatencyEq1(p *pipeline.Pipeline, pl *platform.Platform, m *Mapping) (float64, error) {
	b, ok := pl.CommHomogeneous()
	if !ok {
		return 0, fmt.Errorf("mapping: Eq. (1) requires a communication-homogeneous platform")
	}
	if err := m.Validate(p.NumStages(), pl.NumProcs()); err != nil {
		return 0, err
	}
	total := 0.0
	for j, iv := range m.Intervals {
		kj := float64(len(m.Alloc[j]))
		total += kj * p.InputSize(iv.First) / b
		slowest := math.Inf(1)
		for _, u := range m.Alloc[j] {
			if pl.Speed[u] < slowest {
				slowest = pl.Speed[u]
			}
		}
		total += p.Work(iv.First, iv.Last) / slowest
	}
	total += p.OutputSize(p.NumStages()-1) / b
	return total, nil
}

// LatencyEq2 implements the paper's Equation (2) for Fully Heterogeneous
// platforms:
//
//	T = Σ_{u∈alloc(1)} δ_0/b_{in,u}
//	  + Σ_{j=1..p} max_{u∈alloc(j)} [ (Σ_{i∈I_j} w_i)/s_u + Σ_{v∈alloc(j+1)} δ_{e_j}/b_{u,v} ]
//
// with the convention alloc(p+1) = {out}, so the last interval's outgoing
// term is δ_n/b_{u,out}. On communication-homogeneous platforms Eq. (2)
// reduces to Eq. (1); tests rely on that identity.
func LatencyEq2(p *pipeline.Pipeline, pl *platform.Platform, m *Mapping) (float64, error) {
	if err := m.Validate(p.NumStages(), pl.NumProcs()); err != nil {
		return 0, err
	}
	total := 0.0
	for _, u := range m.Alloc[0] {
		total += p.InputSize(m.Intervals[0].First) / pl.BIn[u]
	}
	for j, iv := range m.Intervals {
		work := p.Work(iv.First, iv.Last)
		out := p.OutputSize(iv.Last)
		worst := math.Inf(-1)
		for _, u := range m.Alloc[j] {
			term := work / pl.Speed[u]
			if j == len(m.Intervals)-1 {
				term += out / pl.BOut[u]
			} else {
				for _, v := range m.Alloc[j+1] {
					term += out / pl.B[u][v]
				}
			}
			if term > worst {
				worst = term
			}
		}
		total += worst
	}
	return total, nil
}

// FailureProb computes the global failure probability of the mapping:
//
//	FP = 1 − Π_{j=1..p} (1 − Π_{u∈alloc(j)} fp_u)
//
// The application fails iff some interval loses all of its replicas.
func FailureProb(pl *platform.Platform, m *Mapping) float64 {
	success := 1.0
	for _, procs := range m.Alloc {
		qj := 1.0
		for _, u := range procs {
			qj *= pl.FailProb[u]
		}
		success *= 1 - qj
	}
	return 1 - success
}

// LogSuccessProb returns log(1 − FP) computed entirely in log space, so
// that mappings whose success probability underflows float64 (hundreds of
// unreliable replicas) still compare correctly. The result is −Inf when
// some interval is allocated only processors with fp = 1.
func LogSuccessProb(pl *platform.Platform, m *Mapping) float64 {
	logSuccess := 0.0
	for _, procs := range m.Alloc {
		logQ := 0.0 // log Π fp_u
		zero := false
		for _, u := range procs {
			fp := pl.FailProb[u]
			if fp == 0 {
				zero = true
				break
			}
			logQ += math.Log(fp)
		}
		if zero {
			continue // q_j = 0, interval never fails: contributes log(1) = 0
		}
		// log(1 − q_j) where q_j = exp(logQ).
		logSuccess += log1mexp(logQ)
	}
	return logSuccess
}

// log1mexp computes log(1 − e^x) for x ≤ 0 with good accuracy across the
// whole range (the standard two-branch trick).
func log1mexp(x float64) float64 {
	if x >= 0 {
		if x == 0 {
			return math.Inf(-1)
		}
		return math.NaN()
	}
	if x > -math.Ln2 {
		return math.Log(-math.Expm1(x))
	}
	return math.Log1p(-math.Exp(x))
}

// FailureProbLog computes FP via the log-space path; it equals
// FailureProb up to rounding but keeps precision for extreme mappings.
func FailureProbLog(pl *platform.Platform, m *Mapping) float64 {
	return -math.Expm1(LogSuccessProb(pl, m))
}
