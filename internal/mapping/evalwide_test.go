package mapping

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// randomWideMapping builds a valid interval mapping of n stages on m
// processors whose replica sets are drawn from the full width (so ids
// ≥ 64 actually occur for m > 64).
func randomWideMapping(rng *rand.Rand, n, m int) *Mapping {
	p := 1 + rng.Intn(n)
	if p > m {
		p = m
	}
	// Interval boundaries: choose p-1 cut points.
	cuts := rng.Perm(n - 1)[:p-1]
	bounds := append([]int{}, cuts...)
	bounds = append(bounds, n-1)
	sortInts(bounds)
	// Disjoint replica sets over a shuffled processor order.
	procs := rng.Perm(m)
	mp := &Mapping{}
	first := 0
	used := 0
	for j := 0; j < p; j++ {
		k := 1 + rng.Intn(3)
		if rem := m - used - (p - 1 - j); k > rem {
			k = rem
		}
		alloc := append([]int(nil), procs[used:used+k]...)
		sortInts(alloc)
		used += k
		mp.Intervals = append(mp.Intervals, Interval{First: first, Last: bounds[j]})
		mp.Alloc = append(mp.Alloc, alloc)
		first = bounds[j] + 1
	}
	return mp
}

// TestWideEvalMatchesSliceReference: on platforms wider than 64
// processors, EvalW / EvaluateMapping must be bitwise identical to the
// slice-based Evaluate, on both platform classes.
func TestWideEvalMatchesSliceReference(t *testing.T) {
	for _, m := range []int{65, 80, 128, 130} {
		for seed := int64(0); seed < 30; seed++ {
			rng := rand.New(rand.NewSource(seed + int64(m)*1000))
			n := 1 + rng.Intn(6)
			p := pipeline.Random(rng, n, 1, 10, 0, 10)
			var pl *platform.Platform
			if seed%2 == 0 {
				pl = platform.RandomCommHomogeneous(rng, m, 1, 10, 0.05, 0.95, 2)
			} else {
				pl = platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.05, 0.95, 1, 20)
			}
			ev, err := NewEvaluator(p, pl)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 20; trial++ {
				mp := randomWideMapping(rng, n, m)
				want, err := Evaluate(p, pl, mp)
				if err != nil {
					t.Fatalf("m=%d seed=%d: reference rejects generated mapping: %v", m, seed, err)
				}
				got, err := ev.EvaluateMapping(mp)
				if err != nil {
					t.Fatalf("m=%d seed=%d: EvaluateMapping: %v", m, seed, err)
				}
				if got != want {
					t.Fatalf("m=%d seed=%d: wide metrics %+v, slice reference %+v (mapping %s)",
						m, seed, got, want, mp)
				}
				ends, words := BoundaryRepWide(mp, ev.Stride())
				if direct := ev.EvalW(ends, words); direct != want {
					t.Fatalf("m=%d seed=%d: EvalW %+v, reference %+v", m, seed, direct, want)
				}
			}
		}
	}
}

// TestWideEvalMatchesNarrowEval: on narrow platforms the stride-1 wide
// path must agree bitwise with the uint64 path (they share the candidate
// representation, so this pins the shared-order contract).
func TestWideEvalMatchesNarrowEval(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(5), 1+rng.Intn(8)
		p := pipeline.Random(rng, n, 1, 10, 0, 10)
		var pl *platform.Platform
		if seed%2 == 0 {
			pl = platform.RandomCommHomogeneous(rng, m, 1, 10, 0.05, 0.95, 2)
		} else {
			pl = platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.05, 0.95, 1, 20)
		}
		ev, err := NewEvaluator(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		mp := randomWideMapping(rng, n, m)
		ends, masks, ok := BoundaryRep(mp)
		if !ok {
			t.Fatal("narrow BoundaryRep failed on a narrow platform")
		}
		wideEnds, words := BoundaryRepWide(mp, ev.Stride())
		if ev.Eval(ends, masks) != ev.EvalW(wideEnds, words) {
			t.Fatalf("seed %d: narrow and wide evaluation disagree on %s", seed, mp)
		}
	}
}

// TestWideEvalZeroAllocs: the wide masked hot path must not allocate.
func TestWideEvalZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, m := 4, 80
	p := pipeline.Random(rng, n, 1, 10, 1, 10)
	for _, commHom := range []bool{true, false} {
		var pl *platform.Platform
		if commHom {
			pl = platform.RandomCommHomogeneous(rng, m, 1, 10, 0.1, 0.9, 2)
		} else {
			pl = platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.1, 0.9, 1, 20)
		}
		ev, err := NewEvaluator(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		mp := randomWideMapping(rng, n, m)
		ends, words := BoundaryRepWide(mp, ev.Stride())
		row := Row(words, ev.Stride(), 0)
		var sink float64
		allocs := testing.AllocsPerRun(200, func() {
			met := ev.EvalW(ends, words)
			sink += met.Latency + met.FailureProb
			sink += ev.SuccessFactorW(row) + ev.MinSpeedW(row)
			sink += ev.IntervalComputeLBW(0, ends[0], row)
		})
		if allocs != 0 {
			t.Errorf("commHom=%v: wide evaluation allocates %.1f objects per run, want 0", commHom, allocs)
		}
		_ = sink
	}
}

// TestRowAndBoundaryRepWide: the flat representation round-trips through
// ToMappingW.
func TestRowAndBoundaryRepWide(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, m := 5, 100
	p := pipeline.Random(rng, n, 1, 10, 1, 10)
	pl := platform.RandomCommHomogeneous(rng, m, 1, 10, 0.1, 0.9, 2)
	ev, err := NewEvaluator(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		mp := randomWideMapping(rng, n, m)
		ends, words := BoundaryRepWide(mp, ev.Stride())
		back := ev.ToMappingW(ends, words)
		if back.String() != mp.String() {
			t.Fatalf("round trip changed the mapping: %s vs %s", back, mp)
		}
		for j := range ends {
			row := Row(words, ev.Stride(), j)
			if row.Count() != len(mp.Alloc[j]) {
				t.Fatalf("row %d has %d bits, want %d", j, row.Count(), len(mp.Alloc[j]))
			}
			for _, u := range mp.Alloc[j] {
				if !bitset.Set(row).Test(u) {
					t.Fatalf("row %d missing processor %d", j, u)
				}
			}
		}
	}
}
