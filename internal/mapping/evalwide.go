package mapping

import (
	"math"
	"math/bits"

	"repro/internal/bitset"
)

// This file is the wide-platform (m > 64) face of the Evaluator: every
// uint64-mask method of eval.go has a *W counterpart taking multi-word
// bitset.Set replica sets. A complete candidate is (ends, words) where
// ends[j] is the last stage of interval j and words is a flat row-major
// buffer of Stride() uint64 words per interval — row j is
// words[j*stride : (j+1)*stride], so a stride-1 buffer is exactly the
// legacy []uint64 mask slice.
//
// Invariants shared with the narrow path:
//
//   - zero heap allocations: the methods only read their arguments, and
//     iteration runs over the words in place;
//   - processors are visited in ascending index order (word by word,
//     TrailingZeros within a word), so the accumulated float metrics are
//     bitwise identical to the slice-based LatencyEq1 / LatencyEq2 /
//     FailureProb on the same candidate.

// Row returns interval j's replica set within a flat stride-words buffer.
func Row(words []uint64, stride, j int) bitset.Set {
	return bitset.Set(words[j*stride : (j+1)*stride])
}

// EvalW computes both metrics of the wide candidate (ends, words). Like
// Eval, the candidate must be valid by construction. Zero allocations.
func (e *Evaluator) EvalW(ends []int, words []uint64) Metrics {
	return Metrics{Latency: e.LatencyW(ends, words), FailureProb: e.FailureProbW(ends, words)}
}

// LatencyW dispatches to the Eq. (1) or Eq. (2) wide evaluation.
func (e *Evaluator) LatencyW(ends []int, words []uint64) float64 {
	if e.commHom {
		return e.latencyEq1W(ends, words)
	}
	return e.latencyEq2W(ends, words)
}

func (e *Evaluator) latencyEq1W(ends []int, words []uint64) float64 {
	total := 0.0
	first := 0
	for j, end := range ends {
		commIn, compute := e.IntervalEq1CostW(first, end, Row(words, e.stride, j))
		total += commIn
		total += compute
		first = end + 1
	}
	total += e.lbTail[e.n] // exact δ_n/b on comm-hom platforms
	return total
}

func (e *Evaluator) latencyEq2W(ends []int, words []uint64) float64 {
	total := e.InputSumW(Row(words, e.stride, 0))
	first := 0
	last := len(ends) - 1
	for j, end := range ends {
		if j == last {
			total += e.IntervalEq2FinalTermW(first, end, Row(words, e.stride, j))
		} else {
			total += e.IntervalEq2TermW(first, end, Row(words, e.stride, j), Row(words, e.stride, j+1))
		}
		first = end + 1
	}
	return total
}

// FailureProbW computes 1 − Π_j (1 − Π_{u∈row j} fp_u) over the wide
// candidate, in the same operation order as the slice-based FailureProb.
func (e *Evaluator) FailureProbW(ends []int, words []uint64) float64 {
	success := 1.0
	for j := range ends {
		success *= e.SuccessFactorW(Row(words, e.stride, j))
	}
	return 1 - success
}

// SuccessFactorW is SuccessFactor for a multi-word replica set.
func (e *Evaluator) SuccessFactorW(mask bitset.Set) float64 {
	qj := 1.0
	for w, word := range mask {
		base := w * bitset.WordBits
		for bm := word; bm != 0; bm &= bm - 1 {
			qj *= e.pl.FailProb[base+bits.TrailingZeros64(bm)]
		}
	}
	return 1 - qj
}

// IntervalEq1CostW is IntervalEq1Cost for a multi-word replica set.
func (e *Evaluator) IntervalEq1CostW(first, last int, mask bitset.Set) (commIn, compute float64) {
	kj := float64(mask.Count())
	commIn = kj * e.p.Delta[first] / e.b
	compute = e.p.Work(first, last) / e.MinSpeedW(mask)
	return commIn, compute
}

// MinSpeedW returns the speed of the slowest processor in mask.
func (e *Evaluator) MinSpeedW(mask bitset.Set) float64 {
	slowest := math.Inf(1)
	for w, word := range mask {
		base := w * bitset.WordBits
		for bm := word; bm != 0; bm &= bm - 1 {
			if s := e.pl.Speed[base+bits.TrailingZeros64(bm)]; s < slowest {
				slowest = s
			}
		}
	}
	return slowest
}

// InputSumW returns Σ_{u∈mask} δ_0/b_{in,u}, the Eq. (2) input term of
// the first interval.
func (e *Evaluator) InputSumW(mask bitset.Set) float64 {
	total := 0.0
	for w, word := range mask {
		base := w * bitset.WordBits
		for bm := word; bm != 0; bm &= bm - 1 {
			total += e.p.Delta[0] / e.pl.BIn[base+bits.TrailingZeros64(bm)]
		}
	}
	return total
}

// IntervalEq2TermW is IntervalEq2Term for multi-word replica sets.
func (e *Evaluator) IntervalEq2TermW(first, last int, mask, next bitset.Set) float64 {
	work := e.p.Work(first, last)
	out := e.p.Delta[last+1]
	worst := math.Inf(-1)
	for w, word := range mask {
		base := w * bitset.WordBits
		for bm := word; bm != 0; bm &= bm - 1 {
			u := base + bits.TrailingZeros64(bm)
			term := work / e.pl.Speed[u]
			for nw, nword := range next {
				nbase := nw * bitset.WordBits
				for nm := nword; nm != 0; nm &= nm - 1 {
					term += out / e.pl.B[u][nbase+bits.TrailingZeros64(nm)]
				}
			}
			if term > worst {
				worst = term
			}
		}
	}
	return worst
}

// IntervalEq2FinalTermW is IntervalEq2FinalTerm for a multi-word replica
// set.
func (e *Evaluator) IntervalEq2FinalTermW(first, last int, mask bitset.Set) float64 {
	work := e.p.Work(first, last)
	out := e.p.Delta[e.n]
	worst := math.Inf(-1)
	for w, word := range mask {
		base := w * bitset.WordBits
		for bm := word; bm != 0; bm &= bm - 1 {
			u := base + bits.TrailingZeros64(bm)
			term := work/e.pl.Speed[u] + out/e.pl.BOut[u]
			if term > worst {
				worst = term
			}
		}
	}
	return worst
}

// IntervalComputeLBW is IntervalComputeLB for a multi-word replica set.
func (e *Evaluator) IntervalComputeLBW(first, last int, mask bitset.Set) float64 {
	return e.p.Work(first, last) / e.MinSpeedW(mask)
}

// ToMappingW materializes a wide candidate as a regular *Mapping (this
// allocates; call it only for candidates worth keeping).
func (e *Evaluator) ToMappingW(ends []int, words []uint64) *Mapping {
	m := &Mapping{
		Intervals: make([]Interval, len(ends)),
		Alloc:     make([][]int, len(ends)),
	}
	first := 0
	for j, end := range ends {
		m.Intervals[j] = Interval{First: first, Last: end}
		row := Row(words, e.stride, j)
		m.Alloc[j] = row.AppendBits(make([]int, 0, row.Count()))
		first = end + 1
	}
	return m
}

// BoundaryRepWide converts a mapping into the flat wide boundary
// representation with the given stride. The mapping is not validated;
// pair with Mapping.Validate (as EvaluateMapping does).
func BoundaryRepWide(m *Mapping, stride int) (ends []int, words []uint64) {
	ends = make([]int, len(m.Intervals))
	words = make([]uint64, len(m.Intervals)*stride)
	for j, iv := range m.Intervals {
		ends[j] = iv.Last
		row := Row(words, stride, j)
		for _, u := range m.Alloc[j] {
			row.Add(u)
		}
	}
	return ends, words
}
