package mapping

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pipeline"
	"repro/internal/platform"
)

// fig34Pipeline and fig34Platform reproduce the paper's Figures 3 and 4:
// two stages with w=2 and all δ=100; two unit-speed processors where the
// chain P_in→P1→P2→P_out has bandwidth 100 and the shortcut links
// (P_in→P2, P1→P_out) have bandwidth 1.
func fig34Pipeline() *pipeline.Pipeline {
	return pipeline.MustNew([]float64{2, 2}, []float64{100, 100, 100})
}

func fig34Platform() *platform.Platform {
	pl, err := platform.NewFullyHeterogeneous(
		[]float64{1, 1},
		[]float64{0, 0},
		[][]float64{{0, 100}, {100, 0}},
		[]float64{100, 1},
		[]float64{1, 100},
	)
	if err != nil {
		panic(err)
	}
	return pl
}

// fig5Pipeline and fig5Platform reproduce the paper's Figure 5 example:
// w = {1, 100}, δ = {10, 1, 0}; one slow reliable processor (s=1, fp=0.1)
// and ten fast unreliable ones (s=100, fp=0.8); all bandwidths 1.
func fig5Pipeline() *pipeline.Pipeline {
	return pipeline.MustNew([]float64{1, 100}, []float64{10, 1, 0})
}

func fig5Platform() *platform.Platform {
	speeds := []float64{1}
	fps := []float64{0.1}
	for i := 0; i < 10; i++ {
		speeds = append(speeds, 100)
		fps = append(fps, 0.8)
	}
	pl, err := platform.NewCommHomogeneous(speeds, fps, 1)
	if err != nil {
		panic(err)
	}
	return pl
}

func TestValidate(t *testing.T) {
	good := &Mapping{
		Intervals: []Interval{{0, 1}, {2, 3}},
		Alloc:     [][]int{{0, 1}, {2}},
	}
	if err := good.Validate(4, 3); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
	cases := []struct {
		name string
		m    *Mapping
	}{
		{"no intervals", &Mapping{}},
		{"alloc length mismatch", &Mapping{Intervals: []Interval{{0, 3}}, Alloc: nil}},
		{"gap", &Mapping{Intervals: []Interval{{0, 1}, {3, 3}}, Alloc: [][]int{{0}, {1}}}},
		{"overlap", &Mapping{Intervals: []Interval{{0, 2}, {2, 3}}, Alloc: [][]int{{0}, {1}}}},
		{"not starting at 0", &Mapping{Intervals: []Interval{{1, 3}}, Alloc: [][]int{{0}}}},
		{"not ending at n-1", &Mapping{Intervals: []Interval{{0, 2}}, Alloc: [][]int{{0}}}},
		{"empty interval", &Mapping{Intervals: []Interval{{0, 1}, {2, 1}}, Alloc: [][]int{{0}, {1}}}},
		{"empty alloc", &Mapping{Intervals: []Interval{{0, 3}}, Alloc: [][]int{{}}}},
		{"proc out of range", &Mapping{Intervals: []Interval{{0, 3}}, Alloc: [][]int{{3}}}},
		{"negative proc", &Mapping{Intervals: []Interval{{0, 3}}, Alloc: [][]int{{-1}}}},
		{"proc reused across intervals", &Mapping{Intervals: []Interval{{0, 1}, {2, 3}}, Alloc: [][]int{{0}, {0}}}},
		{"proc duplicated within interval", &Mapping{Intervals: []Interval{{0, 3}}, Alloc: [][]int{{0, 0}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.m.Validate(4, 3); err == nil {
				t.Errorf("Validate accepted %s", c.name)
			}
		})
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{First: 1, Last: 3}
	if iv.Len() != 3 {
		t.Errorf("Len = %d, want 3", iv.Len())
	}
	if iv.String() != "[S2..S4]" {
		t.Errorf("String = %q, want [S2..S4]", iv.String())
	}
	if (Interval{2, 2}).String() != "[S3]" {
		t.Errorf("singleton String = %q", Interval{2, 2}.String())
	}
}

func TestMappingStringAndClone(t *testing.T) {
	m := &Mapping{Intervals: []Interval{{0, 0}, {1, 1}}, Alloc: [][]int{{0}, {1, 2}}}
	if got := m.String(); got != "[S1]->{P1} [S2]->{P2,P3}" {
		t.Errorf("String = %q", got)
	}
	cp := m.Clone()
	cp.Alloc[0][0] = 9
	if m.Alloc[0][0] == 9 {
		t.Error("Clone shares alloc memory")
	}
	used := m.UsedProcs()
	if len(used) != 3 || used[0] != 0 || used[2] != 2 {
		t.Errorf("UsedProcs = %v", used)
	}
}

// TestFig34Latency reproduces the motivating example of Section 3: mapping
// both stages on one processor costs 105 while splitting costs 7.
func TestFig34Latency(t *testing.T) {
	p, pl := fig34Pipeline(), fig34Platform()

	single1 := NewSingleInterval(2, []int{0})
	lat, err := LatencyEq2(p, pl, single1)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 105 {
		t.Errorf("single interval on P1: latency = %g, want 105", lat)
	}

	single2 := NewSingleInterval(2, []int{1})
	lat, err = LatencyEq2(p, pl, single2)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 105 {
		t.Errorf("single interval on P2: latency = %g, want 105", lat)
	}

	split := &Mapping{
		Intervals: []Interval{{0, 0}, {1, 1}},
		Alloc:     [][]int{{0}, {1}},
	}
	lat, err = LatencyEq2(p, pl, split)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 7 {
		t.Errorf("split mapping: latency = %g, want 7", lat)
	}
}

// TestFig5Example reproduces the second motivating example: under latency
// threshold 22, the best single interval has FP 0.64 while the two-interval
// mapping reaches latency exactly 22 with FP < 0.2.
func TestFig5Example(t *testing.T) {
	p, pl := fig5Pipeline(), fig5Platform()

	// Two fast processors as a single interval: latency 21.01, FP 0.64.
	twoFast := NewSingleInterval(2, []int{1, 2})
	met, err := Evaluate(p, pl, twoFast)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(met.Latency-21.01) > 1e-9 {
		t.Errorf("two fast procs: latency = %g, want 21.01", met.Latency)
	}
	if math.Abs(met.FailureProb-0.64) > 1e-12 {
		t.Errorf("two fast procs: FP = %g, want 0.64", met.FailureProb)
	}

	// Three fast processors exceed the threshold (31.01 > 22).
	threeFast := NewSingleInterval(2, []int{1, 2, 3})
	met3, err := Evaluate(p, pl, threeFast)
	if err != nil {
		t.Fatal(err)
	}
	if met3.Latency <= 22 {
		t.Errorf("three fast procs: latency = %g, want > 22", met3.Latency)
	}

	// Slow stage on the reliable processor + 10-fold replication of the
	// fast stage: latency exactly 22, FP = 1 − 0.9·(1−0.8^10) < 0.2.
	split := &Mapping{
		Intervals: []Interval{{0, 0}, {1, 1}},
		Alloc:     [][]int{{0}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	}
	metS, err := Evaluate(p, pl, split)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(metS.Latency-22) > 1e-9 {
		t.Errorf("split: latency = %g, want 22", metS.Latency)
	}
	wantFP := 1 - (1-0.1)*(1-math.Pow(0.8, 10))
	if math.Abs(metS.FailureProb-wantFP) > 1e-12 {
		t.Errorf("split: FP = %g, want %g", metS.FailureProb, wantFP)
	}
	if metS.FailureProb >= 0.2 {
		t.Errorf("split: FP = %g, want < 0.2", metS.FailureProb)
	}
}

func TestLatencyEq1HandComputed(t *testing.T) {
	// 3 stages w={4,2,6}, δ={8,2,4,10}; b=2; two intervals:
	// I1=[S1,S2] on {P0 (s=2), P1 (s=4)}  k=2
	// I2=[S3]    on {P2 (s=3)}            k=1
	// T = 2·8/2 + (4+2)/2 + 1·4/2 + 6/3 + 10/2 = 8 + 3 + 2 + 2 + 5 = 20.
	p := pipeline.MustNew([]float64{4, 2, 6}, []float64{8, 2, 4, 10})
	pl, err := platform.NewCommHomogeneous([]float64{2, 4, 3}, []float64{0.1, 0.1, 0.1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := &Mapping{Intervals: []Interval{{0, 1}, {2, 2}}, Alloc: [][]int{{0, 1}, {2}}}
	lat, err := LatencyEq1(p, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 20 {
		t.Errorf("latency = %g, want 20", lat)
	}
}

func TestLatencyEq1RequiresCommHom(t *testing.T) {
	p := fig34Pipeline()
	pl := fig34Platform()
	if _, err := LatencyEq1(p, pl, NewSingleInterval(2, []int{0})); err == nil {
		t.Error("Eq1 accepted a fully heterogeneous platform")
	}
}

func TestLatencyDispatch(t *testing.T) {
	p := fig5Pipeline()
	pl := fig5Platform()
	m := NewSingleInterval(2, []int{1, 2})
	via1, _ := LatencyEq1(p, pl, m)
	got, err := Latency(p, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	if got != via1 {
		t.Errorf("Latency dispatch = %g, want Eq1 value %g", got, via1)
	}

	pHet, plHet := fig34Pipeline(), fig34Platform()
	mHet := NewSingleInterval(2, []int{0})
	via2, _ := LatencyEq2(pHet, plHet, mHet)
	got, err = Latency(pHet, plHet, mHet)
	if err != nil {
		t.Fatal(err)
	}
	if got != via2 {
		t.Errorf("Latency dispatch = %g, want Eq2 value %g", got, via2)
	}
}

func TestLatencyValidatesMapping(t *testing.T) {
	p := fig5Pipeline()
	pl := fig5Platform()
	bad := &Mapping{Intervals: []Interval{{0, 0}}, Alloc: [][]int{{0}}} // misses stage 2
	if _, err := LatencyEq1(p, pl, bad); err == nil {
		t.Error("Eq1 accepted an invalid mapping")
	}
	if _, err := LatencyEq2(p, pl, bad); err == nil {
		t.Error("Eq2 accepted an invalid mapping")
	}
	if _, err := Evaluate(p, pl, bad); err == nil {
		t.Error("Evaluate accepted an invalid mapping")
	}
}

// Property: on communication-homogeneous platforms Eq. (2) reduces to
// Eq. (1) for every valid mapping.
func TestEq2ReducesToEq1OnCommHom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := n + rng.Intn(5)
		p := pipeline.Random(rng, n, 0.5, 10, 0.5, 10)
		pl := platform.RandomCommHomogeneous(rng, m, 1, 10, 0, 1, 1+rng.Float64()*9)
		mp := randomMapping(rng, n, m)
		l1, err1 := LatencyEq1(p, pl, mp)
		l2, err2 := LatencyEq2(p, pl, mp)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(l1-l2) <= 1e-9*math.Max(1, math.Abs(l1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randomMapping builds a random valid interval mapping of n stages onto m
// processors (m >= n is not required; m >= 1 interval count chosen to fit).
func randomMapping(rng *rand.Rand, n, m int) *Mapping {
	p := 1 + rng.Intn(minInt(n, m))
	// Random composition of n into p parts.
	cuts := rng.Perm(n - 1)[:p-1]
	bounds := append([]int{}, cuts...)
	sortInts(bounds)
	mp := &Mapping{}
	start := 0
	for j := 0; j < p; j++ {
		end := n - 1
		if j < p-1 {
			end = bounds[j]
		}
		mp.Intervals = append(mp.Intervals, Interval{First: start, Last: end})
		start = end + 1
	}
	procs := rng.Perm(m)
	// Distribute at least one processor per interval, the rest at random.
	alloc := make([][]int, p)
	for j := 0; j < p; j++ {
		alloc[j] = []int{procs[j]}
	}
	for _, u := range procs[p:] {
		if rng.Float64() < 0.5 {
			j := rng.Intn(p)
			alloc[j] = append(alloc[j], u)
		}
	}
	mp.Alloc = alloc
	return mp
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestFailureProbHandComputed(t *testing.T) {
	pl, _ := platform.NewCommHomogeneous([]float64{1, 1, 1}, []float64{0.5, 0.5, 0.2}, 1)
	// Single interval on all three: FP = 1 − (1 − 0.5·0.5·0.2) = 0.05.
	m := NewSingleInterval(1, []int{0, 1, 2})
	p := pipeline.Uniform(1, 1, 1)
	_ = p
	if got := FailureProb(pl, m); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("FP = %g, want 0.05", got)
	}
	// Two intervals {0,1} and {2}: FP = 1 − (1−0.25)(1−0.2) = 0.4.
	m2 := &Mapping{Intervals: []Interval{{0, 0}, {1, 1}}, Alloc: [][]int{{0, 1}, {2}}}
	if got := FailureProb(pl, m2); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("FP = %g, want 0.4", got)
	}
}

func TestFailureProbEdgeCases(t *testing.T) {
	pl, _ := platform.NewCommHomogeneous([]float64{1, 1}, []float64{0, 1}, 1)
	// A replica with fp=0 makes its interval perfectly reliable.
	m := NewSingleInterval(3, []int{0, 1})
	if got := FailureProb(pl, m); got != 0 {
		t.Errorf("FP with a perfect replica = %g, want 0", got)
	}
	// A single replica with fp=1 makes the mapping certainly fail.
	m2 := NewSingleInterval(3, []int{1})
	if got := FailureProb(pl, m2); got != 1 {
		t.Errorf("FP with only fp=1 = %g, want 1", got)
	}
	if got := LogSuccessProb(pl, m2); !math.IsInf(got, -1) {
		t.Errorf("LogSuccessProb with only fp=1 = %g, want -Inf", got)
	}
	if got := LogSuccessProb(pl, m); got != 0 {
		t.Errorf("LogSuccessProb with perfect replica = %g, want 0", got)
	}
}

// Property: the log-space failure probability matches the direct product
// for randomly generated mappings.
func TestFailureProbLogMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := n + rng.Intn(8)
		pl := platform.RandomCommHomogeneous(rng, m, 1, 2, 0.01, 0.99, 1)
		mp := randomMapping(rng, n, m)
		direct := FailureProb(pl, mp)
		logged := FailureProbLog(pl, mp)
		return math.Abs(direct-logged) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: adding a replica to any interval never increases the failure
// probability (monotonicity of replication, the premise of Theorem 1).
func TestReplicationMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := n + 1 + rng.Intn(6)
		pl := platform.RandomCommHomogeneous(rng, m, 1, 2, 0, 1, 1)
		mp := randomMapping(rng, n, m)
		used := make(map[int]bool)
		for _, procs := range mp.Alloc {
			for _, u := range procs {
				used[u] = true
			}
		}
		var free []int
		for u := 0; u < m; u++ {
			if !used[u] {
				free = append(free, u)
			}
		}
		if len(free) == 0 {
			return true // nothing to add
		}
		before := FailureProb(pl, mp)
		j := rng.Intn(len(mp.Alloc))
		mp.Alloc[j] = append(mp.Alloc[j], free[rng.Intn(len(free))])
		after := FailureProb(pl, mp)
		return after <= before+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLogSuccessProbExtreme(t *testing.T) {
	// 500 replicas with fp=0.99: success prob of one interval is
	// 1 − 0.99^500 ≈ 1 − 6.6e-3, fine; but 500 intervals each with one
	// fp=0.99 replica underflow the direct product? No — that needs
	// log-space to stay accurate. Check self-consistency instead:
	m := 400
	speeds := make([]float64, m)
	fps := make([]float64, m)
	for i := range speeds {
		speeds[i] = 1
		fps[i] = 0.99
	}
	pl, _ := platform.NewCommHomogeneous(speeds, fps, 1)
	mp := &Mapping{}
	for j := 0; j < m; j++ {
		mp.Intervals = append(mp.Intervals, Interval{j, j})
		mp.Alloc = append(mp.Alloc, []int{j})
	}
	logS := LogSuccessProb(pl, mp)
	want := float64(m) * math.Log(0.01)
	if math.Abs(logS-want) > 1e-6*math.Abs(want) {
		t.Errorf("LogSuccessProb = %g, want %g", logS, want)
	}
	// Direct computation would return exactly 1 here (success underflows
	// to 0); log-space keeps the information.
	if fp := FailureProbLog(pl, mp); fp != 1 {
		t.Errorf("FailureProbLog = %g, want 1 (rounds to 1 but from the log side)", fp)
	}
}

func TestMetricsDominates(t *testing.T) {
	a := Metrics{Latency: 1, FailureProb: 0.1}
	b := Metrics{Latency: 2, FailureProb: 0.2}
	if !a.Dominates(b) {
		t.Error("a should dominate b")
	}
	if b.Dominates(a) {
		t.Error("b should not dominate a")
	}
	if a.Dominates(a) {
		t.Error("a should not dominate itself")
	}
	c := Metrics{Latency: 0.5, FailureProb: 0.3}
	if a.Dominates(c) || c.Dominates(a) {
		t.Error("a and c are incomparable")
	}
	d := Metrics{Latency: 1, FailureProb: 0.05}
	if !d.Dominates(a) {
		t.Error("equal latency, lower FP should dominate")
	}
}

func TestNewSingleInterval(t *testing.T) {
	m := NewSingleInterval(5, []int{2, 0})
	if err := m.Validate(5, 3); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.NumIntervals() != 1 || m.Replication(0) != 2 {
		t.Errorf("unexpected shape: %v", m)
	}
}

func TestMappingJSONRoundTrip(t *testing.T) {
	m := &Mapping{
		Intervals: []Interval{{First: 0, Last: 1}, {First: 2, Last: 4}},
		Alloc:     [][]int{{3}, {0, 2}},
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var q Mapping
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if q.String() != m.String() {
		t.Errorf("round trip changed mapping: %s vs %s", q.String(), m.String())
	}
	if err := q.Validate(5, 4); err != nil {
		t.Errorf("round-tripped mapping invalid: %v", err)
	}
}

func TestGeneralMappingJSONRoundTrip(t *testing.T) {
	g := &GeneralMapping{ProcOf: []int{2, 0, 1}}
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var q GeneralMapping
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if q.String() != g.String() {
		t.Errorf("round trip changed mapping: %s vs %s", q.String(), g.String())
	}
}
