package mapping

import (
	"repro/internal/bitset"
)

// EvalState is the incremental face of the Evaluator: a mutable interval
// mapping held in the engine's boundary representation (interval ends plus
// a flat stride-words replica-mask buffer) together with the cached
// per-interval latency and failure-probability terms. Local-search
// solvers mutate the state in place — add/remove/replace/move a replica,
// split or merge an interval — and each mutation re-derives only the
// terms the move touches; Metrics then re-accumulates the cached terms in
// the canonical interval order.
//
// Invariants:
//
//   - metrics are bitwise identical to a fresh Evaluator.Eval / EvalW of
//     the same candidate (and hence to the slice-based Evaluate on the
//     ascending-id mapping ToMapping returns): every cached term is
//     produced by the same per-interval functions the batch evaluators
//     use, and the final accumulation visits the intervals in the same
//     order, so no float operation is reordered;
//   - mutations and Metrics perform zero heap allocations (all buffers
//     are sized for n intervals at construction); only ToMapping
//     allocates;
//   - the state is a pure function of (ends, masks): any sequence of
//     mutations that restores the boundary representation restores the
//     cached terms and metrics exactly, which is what makes apply/undo
//     move frameworks on top of it sound.
//
// Like Eval, the state must describe a valid-by-construction candidate
// whenever metrics are read: consecutive non-empty intervals covering all
// stages, pairwise-disjoint non-empty replica sets. Transiently invalid
// states (an empty interval between a Split and the AddReplica that
// staffs it) are permitted as long as no metric is read in between.
type EvalState struct {
	ev *Evaluator
	p  int // number of intervals

	ends  []int      // cap n; ends[j] = last stage of interval j
	words []uint64   // cap n*stride; row j = words[j*stride:(j+1)*stride]
	used  bitset.Set // union of all replica sets

	// Cached per-interval terms. Communication-homogeneous platforms cache
	// the two Eq. (1) addends (commIn, compute); fully heterogeneous
	// platforms cache the Eq. (2) interval term (the final-interval variant
	// for the last interval) plus the input sum of interval 0.
	commIn, compute []float64
	term            []float64
	inputSum        float64
	succ            []float64 // per-interval success factor 1 − Π fp
}

// NewState returns an empty EvalState bound to the evaluator, with every
// buffer sized for the instance's n intervals. Load it before use.
func (e *Evaluator) NewState() *EvalState {
	n := e.n
	return &EvalState{
		ev:      e,
		ends:    make([]int, n),
		words:   make([]uint64, n*e.stride),
		used:    bitset.Make(e.m),
		commIn:  make([]float64, n),
		compute: make([]float64, n),
		term:    make([]float64, n),
		succ:    make([]float64, n),
	}
}

// Load resets the state to the given mapping (assumed valid by
// construction; pair with Mapping.Validate when the source is untrusted)
// and recomputes every cached term.
func (st *EvalState) Load(m *Mapping) {
	stride := st.ev.stride
	st.p = len(m.Intervals)
	st.used.Zero()
	for j, iv := range m.Intervals {
		st.ends[j] = iv.Last
		row := st.row(j)
		row.Zero()
		for _, u := range m.Alloc[j] {
			row.Add(u)
			st.used.Add(u)
		}
	}
	for j := st.p; j < len(st.ends); j++ {
		bitset.Set(st.words[j*stride : (j+1)*stride]).Zero()
	}
	st.recomputeAll()
}

// CopyFrom overwrites st with a snapshot of o (same evaluator). Both the
// boundary representation and the cached terms are copied, so restoring a
// snapshot is a pure memcpy with no term recomputation.
func (st *EvalState) CopyFrom(o *EvalState) {
	st.p = o.p
	copy(st.ends[:o.p], o.ends[:o.p])
	copy(st.words[:o.p*st.ev.stride], o.words[:o.p*st.ev.stride])
	st.used.Copy(o.used)
	if st.ev.commHom {
		copy(st.commIn[:o.p], o.commIn[:o.p])
		copy(st.compute[:o.p], o.compute[:o.p])
	} else {
		copy(st.term[:o.p], o.term[:o.p])
		st.inputSum = o.inputSum
	}
	copy(st.succ[:o.p], o.succ[:o.p])
}

// NumIntervals returns the current interval count p.
func (st *EvalState) NumIntervals() int { return st.p }

// End returns the last stage of interval j.
func (st *EvalState) End(j int) int { return st.ends[j] }

// First returns the first stage of interval j.
func (st *EvalState) First(j int) int {
	if j == 0 {
		return 0
	}
	return st.ends[j-1] + 1
}

// Mask returns interval j's replica set as a view into the state's
// buffer. The view is invalidated by Split and Merge; do not retain it
// across structural mutations.
func (st *EvalState) Mask(j int) bitset.Set { return st.row(j) }

// Used returns the union of all replica sets as a view into the state's
// buffer (kept incrementally up to date by every mutator).
func (st *EvalState) Used() bitset.Set { return st.used }

// Replication returns k_j, the replica count of interval j.
func (st *EvalState) Replication(j int) int { return st.row(j).Count() }

func (st *EvalState) row(j int) bitset.Set {
	stride := st.ev.stride
	return bitset.Set(st.words[j*stride : (j+1)*stride])
}

// Metrics accumulates the cached terms in the canonical interval order,
// yielding metrics bitwise identical to Evaluator.Eval / EvalW on the same
// candidate. Zero allocations.
func (st *EvalState) Metrics() Metrics {
	return Metrics{Latency: st.Latency(), FailureProb: st.FailureProb()}
}

// Latency re-accumulates the cached latency terms.
func (st *EvalState) Latency() float64 {
	if st.ev.commHom {
		total := 0.0
		for j := 0; j < st.p; j++ {
			total += st.commIn[j]
			total += st.compute[j]
		}
		total += st.ev.lbTail[st.ev.n] // exact δ_n/b on comm-hom platforms
		return total
	}
	total := st.inputSum
	for j := 0; j < st.p; j++ {
		total += st.term[j]
	}
	return total
}

// FailureProb re-accumulates the cached per-interval success factors.
func (st *EvalState) FailureProb() float64 {
	success := 1.0
	for j := 0; j < st.p; j++ {
		success *= st.succ[j]
	}
	return 1 - success
}

// ToMapping materializes the state as a regular *Mapping with ascending
// replica ids (this allocates; call it only for states worth keeping).
func (st *EvalState) ToMapping() *Mapping {
	if st.ev.stride == 1 {
		return st.ev.ToMapping(st.ends[:st.p], st.words[:st.p])
	}
	return st.ev.ToMappingW(st.ends[:st.p], st.words[:st.p*st.ev.stride])
}

// AddReplica enrolls processor u (which must be unused) into interval j.
func (st *EvalState) AddReplica(j, u int) {
	st.row(j).Add(u)
	st.used.Add(u)
	st.touchMask(j)
}

// RemoveReplica withdraws processor u from interval j (caller keeps the
// interval non-empty, or immediately restaffs it).
func (st *EvalState) RemoveReplica(j, u int) {
	st.row(j).Remove(u)
	st.used.Remove(u)
	st.touchMask(j)
}

// ReplaceReplica swaps processor uOld of interval j for the unused uNew.
func (st *EvalState) ReplaceReplica(j, uOld, uNew int) {
	row := st.row(j)
	row.Remove(uOld)
	row.Add(uNew)
	st.used.Remove(uOld)
	st.used.Add(uNew)
	st.touchMask(j)
}

// MoveReplica migrates processor u from interval jFrom to interval jTo.
func (st *EvalState) MoveReplica(jFrom, jTo, u int) {
	st.row(jFrom).Remove(u)
	st.row(jTo).Add(u)
	st.touchMask(jFrom)
	st.touchMask(jTo)
}

// Split cuts interval j = [first, end] before stage cut: interval j
// becomes [first, cut−1] keeping mask(j) \ right, and a new interval j+1 =
// [cut, end] receives right (which must be a subset of mask(j)). A split
// that empties the left half is transiently invalid; staff it with
// AddReplica before reading metrics.
func (st *EvalState) Split(j, cut int, right bitset.Set) {
	stride := st.ev.stride
	for k := st.p; k > j+1; k-- {
		st.ends[k] = st.ends[k-1]
		copy(st.words[k*stride:(k+1)*stride], st.words[(k-1)*stride:k*stride])
		st.shiftTerms(k, k-1)
	}
	st.ends[j+1] = st.ends[j]
	st.ends[j] = cut - 1
	st.p++
	rowL, rowR := st.row(j), st.row(j+1)
	rowR.Copy(right)
	rowL.AndNot(rowL, right)
	st.touchRange(j-1, j+1)
}

// Merge fuses intervals j and j+1: interval j absorbs the stages and the
// replica set of j+1. It is the exact inverse of Split when the united
// replica set equals the pre-split mask.
func (st *EvalState) Merge(j int) {
	stride := st.ev.stride
	rowL, rowR := st.row(j), st.row(j+1)
	rowL.Or(rowL, rowR)
	st.ends[j] = st.ends[j+1]
	for k := j + 1; k < st.p-1; k++ {
		st.ends[k] = st.ends[k+1]
		copy(st.words[k*stride:(k+1)*stride], st.words[(k+1)*stride:(k+2)*stride])
		st.shiftTerms(k, k+1)
	}
	st.p--
	// The former interval j+2 (now j+1) keeps its mask, successor and work
	// window, so only j−1 (its successor set changed) and j need fresh terms.
	st.touchRange(j-1, j)
}

// shiftTerms moves interval src's cached terms to slot dst (used by the
// structural mutators when the interval sequence is reindexed; the terms
// themselves stay valid because neither the interval's stages, masks nor
// neighbors changed).
func (st *EvalState) shiftTerms(dst, src int) {
	st.succ[dst] = st.succ[src]
	if st.ev.commHom {
		st.commIn[dst] = st.commIn[src]
		st.compute[dst] = st.compute[src]
	} else {
		st.term[dst] = st.term[src]
	}
}

// touchMask refreshes the terms invalidated by a replica change in
// interval j: the interval's own terms, and on fully heterogeneous
// platforms also the predecessor's Eq. (2) term (whose outgoing transfer
// sums over interval j's replicas) and the input sum when j == 0.
func (st *EvalState) touchMask(j int) {
	st.recomputeTerm(j)
	if !st.ev.commHom {
		if j > 0 {
			st.recomputeTerm(j - 1)
		} else {
			st.recomputeInputSum()
		}
	}
}

// touchRange refreshes the terms of intervals [lo, hi] clamped to the
// current interval count, plus the heterogeneous input sum when interval 0
// is inside the window.
func (st *EvalState) touchRange(lo, hi int) {
	if lo < 0 {
		lo = 0
	}
	if hi > st.p-1 {
		hi = st.p - 1
	}
	for j := lo; j <= hi; j++ {
		st.recomputeTerm(j)
	}
	if !st.ev.commHom && lo == 0 {
		st.recomputeInputSum()
	}
}

func (st *EvalState) recomputeAll() {
	for j := 0; j < st.p; j++ {
		st.recomputeTerm(j)
	}
	if !st.ev.commHom {
		st.recomputeInputSum()
	}
}

// recomputeTerm re-derives interval j's cached terms from the current
// boundary representation through the same per-interval functions the
// batch evaluators use (narrow uint64 methods at stride 1, the *W
// multi-word methods otherwise).
func (st *EvalState) recomputeTerm(j int) {
	ev := st.ev
	first, end := st.First(j), st.ends[j]
	if ev.stride == 1 {
		mask := st.words[j]
		st.succ[j] = ev.SuccessFactor(mask)
		if ev.commHom {
			st.commIn[j], st.compute[j] = ev.IntervalEq1Cost(first, end, mask)
			return
		}
		if j == st.p-1 {
			st.term[j] = ev.IntervalEq2FinalTerm(first, end, mask)
		} else {
			st.term[j] = ev.IntervalEq2Term(first, end, mask, st.words[j+1])
		}
		return
	}
	mask := st.row(j)
	st.succ[j] = ev.SuccessFactorW(mask)
	if ev.commHom {
		st.commIn[j], st.compute[j] = ev.IntervalEq1CostW(first, end, mask)
		return
	}
	if j == st.p-1 {
		st.term[j] = ev.IntervalEq2FinalTermW(first, end, mask)
	} else {
		st.term[j] = ev.IntervalEq2TermW(first, end, mask, st.row(j+1))
	}
}

func (st *EvalState) recomputeInputSum() {
	if st.ev.stride == 1 {
		st.inputSum = st.ev.InputSum(st.words[0])
		return
	}
	st.inputSum = st.ev.InputSumW(st.row(0))
}
