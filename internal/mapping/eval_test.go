package mapping

import (
	"math/rand"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/platform"
)

// randomMasked draws a random valid candidate in boundary representation:
// a random partition of the n stages into intervals and random disjoint
// non-empty replica masks.
func randomMasked(rng *rand.Rand, n, m int) (ends []int, masks []uint64) {
	for start := 0; start < n; {
		end := start + rng.Intn(n-start)
		ends = append(ends, end)
		start = end + 1
	}
	free := make([]int, m)
	for u := range free {
		free[u] = u
	}
	rng.Shuffle(m, func(i, j int) { free[i], free[j] = free[j], free[i] })
	if len(ends) > m {
		// More intervals than processors can never validate; retry with a
		// coarser partition.
		return []int{n - 1}, []uint64{1 << uint(rng.Intn(m))}
	}
	idx := 0
	for range ends {
		remainingIntervals := len(ends) - len(masks) - 1
		maxK := m - idx - remainingIntervals // leave ≥ 1 processor per later interval
		k := 1 + rng.Intn(maxK)
		var mask uint64
		for i := 0; i < k; i++ {
			mask |= 1 << uint(free[idx])
			idx++
		}
		masks = append(masks, mask)
	}
	return ends, masks
}

func testInstances(seed int64) (*pipeline.Pipeline, *platform.Platform, *platform.Platform) {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(5)
	m := 1 + rng.Intn(5)
	p := pipeline.Random(rng, n, 1, 10, 0, 10)
	commHom := platform.RandomCommHomogeneous(rng, m, 1, 10, 0.05, 0.95, 1+rng.Float64()*4)
	het := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.05, 0.95, 1, 20)
	return p, commHom, het
}

// TestEvaluatorMatchesEvaluate: the masked evaluation must be bitwise
// identical to the public slice-based Evaluate on both platform classes.
func TestEvaluatorMatchesEvaluate(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p, commHom, het := testInstances(seed)
		rng := rand.New(rand.NewSource(seed + 1000))
		for _, pl := range []*platform.Platform{commHom, het} {
			ev, err := NewEvaluator(p, pl)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for trial := 0; trial < 20; trial++ {
				ends, masks := randomMasked(rng, p.NumStages(), pl.NumProcs())
				mp := ev.ToMapping(ends, masks)
				if err := mp.Validate(p.NumStages(), pl.NumProcs()); err != nil {
					t.Fatalf("seed %d: ToMapping produced invalid mapping: %v", seed, err)
				}
				want, err := Evaluate(p, pl, mp)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				got := ev.Eval(ends, masks)
				if got != want {
					t.Fatalf("seed %d trial %d: Eval = %+v, Evaluate = %+v (mapping %v)",
						seed, trial, got, want, mp)
				}
			}
		}
	}
}

// TestEvaluatorZeroAllocs: the masked hot path must not allocate.
func TestEvaluatorZeroAllocs(t *testing.T) {
	p := pipeline.MustNew([]float64{1, 100, 3}, []float64{10, 1, 2, 0.5})
	rng := rand.New(rand.NewSource(7))
	commHom := platform.RandomCommHomogeneous(rng, 5, 1, 10, 0.1, 0.9, 2)
	het := platform.RandomFullyHeterogeneous(rng, 5, 1, 10, 0.1, 0.9, 1, 20)
	ends := []int{0, 2}
	masks := []uint64{0b00011, 0b01100}
	for name, pl := range map[string]*platform.Platform{"commhom": commHom, "het": het} {
		ev, err := NewEvaluator(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		var sink Metrics
		if allocs := testing.AllocsPerRun(200, func() {
			sink = ev.Eval(ends, masks)
		}); allocs != 0 {
			t.Errorf("%s: Eval allocates %.1f objects per run, want 0", name, allocs)
		}
		var lat float64
		if allocs := testing.AllocsPerRun(200, func() {
			lat = ev.Latency(ends, masks)
			lat += ev.FailureProb(masks)
			lat += ev.TailLatencyLB(1)
			lat += ev.SuccessFactor(masks[0])
			lat += ev.IntervalComputeLB(0, 0, masks[0])
		}); allocs != 0 {
			t.Errorf("%s: evaluation helpers allocate %.1f objects per run, want 0", name, allocs)
		}
		_ = sink
		_ = lat
	}
}

// TestEvaluatorTailLBIsLowerBound: the suffix bound never exceeds the
// true latency contribution of any completion.
func TestEvaluatorTailLBIsLowerBound(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p, commHom, het := testInstances(seed)
		rng := rand.New(rand.NewSource(seed + 2000))
		for _, pl := range []*platform.Platform{commHom, het} {
			ev, err := NewEvaluator(p, pl)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 20; trial++ {
				ends, masks := randomMasked(rng, p.NumStages(), pl.NumProcs())
				lat := ev.Latency(ends, masks)
				// The full mapping is a completion of its empty prefix.
				if lb := ev.TailLatencyLB(0); lb > lat*(1+1e-12)+1e-12 {
					t.Fatalf("seed %d: TailLatencyLB(0) = %g exceeds achievable latency %g", seed, lb, lat)
				}
			}
		}
	}
}

func TestNewEvaluatorErrors(t *testing.T) {
	p := pipeline.Uniform(2, 1, 1)
	if _, err := NewEvaluator(&pipeline.Pipeline{}, nil); err == nil {
		t.Error("invalid pipeline accepted")
	}
	big, err := platform.NewFullyHomogeneous(65, 1, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := NewEvaluator(p, big)
	if err != nil {
		t.Errorf("m=65 rejected: %v (wide platforms use the multi-word representation)", err)
	}
	if !wide.Wide() || wide.Stride() != 2 {
		t.Errorf("m=65: Wide() = %v, Stride() = %d, want true, 2", wide.Wide(), wide.Stride())
	}
	ok, err := platform.NewFullyHomogeneous(64, 1, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := NewEvaluator(p, ok)
	if err != nil {
		t.Errorf("m=64 rejected: %v", err)
	}
	if narrow.Wide() || narrow.Stride() != 1 {
		t.Errorf("m=64: Wide() = %v, Stride() = %d, want false, 1", narrow.Wide(), narrow.Stride())
	}
}
