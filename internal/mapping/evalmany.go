package mapping

import (
	"math/bits"

	"repro/internal/bitset"
)

// This file is the batch face of the Evaluator: where the enumeration
// engine's recursion used to extend a shared interval prefix one sibling
// at a time — re-deriving the previous interval's Eq. (2) compute term,
// the Eq. (1) input transfer and the work window once per candidate —
// EvaluateMany and EvaluateManyW score the whole block of singleton
// sibling extensions {u}, u ∈ free, of one prefix per call, hoisting
// every shared subterm out of the per-candidate loop.
//
// Bitwise contract (the invariant the exact solvers depend on): each
// sibling's charged latency, success product, pre-tail lower bound and —
// on the final stage — complete latency are bitwise identical to what the
// engine's incremental push/complete pair computes through the
// single-candidate methods (IntervalEq1Cost, IntervalEq2Term, InputSum,
// SuccessFactor, IntervalComputeLB, IntervalEq2FinalTerm). Hoisting is
// restricted to subexpressions whose value is identical for every sibling
// and whose extraction does not reassociate any float operation:
//
//   - Eq. (1): k = 1 makes the input transfer 1·δ_first/b = δ_first/b
//     exactly (1.0·x == x in IEEE 754), so base = lat + δ_first/b is the
//     same two-operand sum push computes, and each sibling adds only its
//     own W/s_u;
//   - Eq. (2): a singleton predecessor {w} makes the previous interval's
//     term W_prev/s_w + δ_first/b_{w,u}; the first addend is
//     sibling-independent and hoisted as a value, the sum itself keeps
//     push's association (term first, then lat + term);
//   - FP: a singleton's success factor is 1 − 1.0·fp_u = 1 − fp_u.
//
// Both methods write into a caller-provided scratch slice and perform
// zero heap allocations, preserving the per-node allocation contract of
// the search.

// BatchPrefix describes the shared partial mapping whose singleton
// sibling extensions one EvaluateMany call scores: the charged latency
// and success product after Depth intervals (the engine's lat[Depth] /
// succ[Depth] accumulators) plus, on fully heterogeneous platforms with
// Depth ≥ 1, the previous interval's stage window and sole replica
// (whose Eq. (2) term is charged only now that its successor is known).
type BatchPrefix struct {
	Depth int     // intervals already chosen
	Lat   float64 // charged latency of the prefix
	Succ  float64 // success-probability product of the prefix
	// PrevFirst, PrevLast and PrevProc describe interval Depth−1 on
	// fully heterogeneous platforms (ignored when Depth == 0 and on
	// communication-homogeneous platforms).
	PrevFirst, PrevLast, PrevProc int
}

// Sibling is one scored candidate of a batch: the prefix extended by
// interval [first, last] on the singleton replica set {Proc}.
type Sibling struct {
	Proc int     // the candidate replica
	Lat  float64 // charged latency including this interval (lat[Depth+1])
	Succ float64 // success product including this interval (succ[Depth+1])
	// LB is the latency floor of every completion before the tail bound:
	// callers add their tail term (TailLatencyLB or a suffix-memo bound)
	// to obtain the branch-and-bound pruning bound. On
	// communication-homogeneous platforms LB == Lat (the interval's
	// compute cost is already charged); on fully heterogeneous platforms
	// LB = Lat + W/s_Proc (the pending interval's compute lower bound).
	LB float64
	// Final is the candidate's complete latency when last == n−1 (the
	// final output transfer included); 0 otherwise.
	Final float64
}

// EvaluateMany scores every singleton sibling extension of the prefix by
// interval [first, last] on one processor u ∈ free, in ascending
// processor order, writing the candidates into out (which must hold at
// least m entries) and returning how many were written. Zero heap
// allocations.
func (e *Evaluator) EvaluateMany(pre BatchPrefix, first, last int, free uint64, out []Sibling) int {
	work := e.p.Work(first, last)
	final := last == e.n-1
	nb := 0
	if e.commHom {
		base := pre.Lat + e.p.Delta[first]/e.b
		for bm := free; bm != 0; bm &= bm - 1 {
			u := bits.TrailingZeros64(bm)
			sb := &out[nb]
			nb++
			sb.Proc = u
			lat := base + work/e.pl.Speed[u]
			sb.Lat = lat
			sb.LB = lat
			sb.Succ = pre.Succ * (1 - e.pl.FailProb[u])
			sb.Final = 0
			if final {
				sb.Final = lat + e.lbTail[e.n] // exact δ_n/b
			}
		}
		return nb
	}
	var prevBase, outDelta float64
	if pre.Depth > 0 {
		prevBase = e.p.Work(pre.PrevFirst, pre.PrevLast) / e.pl.Speed[pre.PrevProc]
		outDelta = e.p.Delta[pre.PrevLast+1]
	}
	finalOut := e.p.Delta[e.n]
	prevRow := e.pl.B[pre.PrevProc]
	for bm := free; bm != 0; bm &= bm - 1 {
		u := bits.TrailingZeros64(bm)
		sb := &out[nb]
		nb++
		sb.Proc = u
		var lat float64
		if pre.Depth == 0 {
			lat = e.p.Delta[0] / e.pl.BIn[u]
		} else {
			term := prevBase + outDelta/prevRow[u]
			lat = pre.Lat + term
		}
		sb.Lat = lat
		compute := work / e.pl.Speed[u]
		sb.LB = lat + compute
		sb.Succ = pre.Succ * (1 - e.pl.FailProb[u])
		sb.Final = 0
		if final {
			sb.Final = lat + (compute + finalOut/e.pl.BOut[u])
		}
	}
	return nb
}

// EvaluateManyW is EvaluateMany for wide platforms: free is a multi-word
// replica set and processors are visited in the same ascending order as
// the *W single-candidate methods.
func (e *Evaluator) EvaluateManyW(pre BatchPrefix, first, last int, free bitset.Set, out []Sibling) int {
	work := e.p.Work(first, last)
	final := last == e.n-1
	nb := 0
	if e.commHom {
		base := pre.Lat + e.p.Delta[first]/e.b
		for w, word := range free {
			wbase := w * bitset.WordBits
			for bm := word; bm != 0; bm &= bm - 1 {
				u := wbase + bits.TrailingZeros64(bm)
				sb := &out[nb]
				nb++
				sb.Proc = u
				lat := base + work/e.pl.Speed[u]
				sb.Lat = lat
				sb.LB = lat
				sb.Succ = pre.Succ * (1 - e.pl.FailProb[u])
				sb.Final = 0
				if final {
					sb.Final = lat + e.lbTail[e.n] // exact δ_n/b
				}
			}
		}
		return nb
	}
	var prevBase, outDelta float64
	if pre.Depth > 0 {
		prevBase = e.p.Work(pre.PrevFirst, pre.PrevLast) / e.pl.Speed[pre.PrevProc]
		outDelta = e.p.Delta[pre.PrevLast+1]
	}
	finalOut := e.p.Delta[e.n]
	prevRow := e.pl.B[pre.PrevProc]
	inDelta := e.p.Delta[0]
	for w, word := range free {
		wbase := w * bitset.WordBits
		for bm := word; bm != 0; bm &= bm - 1 {
			u := wbase + bits.TrailingZeros64(bm)
			sb := &out[nb]
			nb++
			sb.Proc = u
			var lat float64
			if pre.Depth == 0 {
				lat = inDelta / e.pl.BIn[u]
			} else {
				term := prevBase + outDelta/prevRow[u]
				lat = pre.Lat + term
			}
			sb.Lat = lat
			compute := work / e.pl.Speed[u]
			sb.LB = lat + compute
			sb.Succ = pre.Succ * (1 - e.pl.FailProb[u])
			sb.Final = 0
			if final {
				sb.Final = lat + (compute + finalOut/e.pl.BOut[u])
			}
		}
	}
	return nb
}
