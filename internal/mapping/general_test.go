package mapping

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pipeline"
	"repro/internal/platform"
)

func TestGeneralMappingValidate(t *testing.T) {
	g := &GeneralMapping{ProcOf: []int{0, 1, 0}}
	if err := g.Validate(3, 2); err != nil {
		t.Fatalf("valid general mapping rejected: %v", err)
	}
	if err := g.Validate(4, 2); err == nil {
		t.Error("accepted wrong stage count")
	}
	if err := (&GeneralMapping{ProcOf: []int{0, 2}}).Validate(2, 2); err == nil {
		t.Error("accepted out-of-range processor")
	}
	if err := (&GeneralMapping{ProcOf: []int{-1}}).Validate(1, 2); err == nil {
		t.Error("accepted negative processor")
	}
}

func TestGeneralMappingIsOneToOne(t *testing.T) {
	if !(&GeneralMapping{ProcOf: []int{0, 1, 2}}).IsOneToOne() {
		t.Error("distinct processors should be one-to-one")
	}
	if (&GeneralMapping{ProcOf: []int{0, 1, 0}}).IsOneToOne() {
		t.Error("repeated processor should not be one-to-one")
	}
}

func TestGeneralMappingString(t *testing.T) {
	g := &GeneralMapping{ProcOf: []int{1, 0}}
	if got := g.String(); got != "S1->P2 S2->P1" {
		t.Errorf("String = %q", got)
	}
}

// TestGeneralLatencyFig34 cross-checks the general latency against the
// paper example: the split one-to-one mapping achieves 7.
func TestGeneralLatencyFig34(t *testing.T) {
	p := fig34Pipeline()
	pl := fig34Platform()
	g := &GeneralMapping{ProcOf: []int{0, 1}}
	lat, err := g.Latency(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 7 {
		t.Errorf("latency = %g, want 7", lat)
	}
	gSingle := &GeneralMapping{ProcOf: []int{0, 0}}
	lat, err = gSingle.Latency(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 105 {
		t.Errorf("latency = %g, want 105", lat)
	}
}

func TestGeneralLatencyIntraProcessorCommFree(t *testing.T) {
	// 3 stages on the same processor: only δ0, work, δ3 are paid.
	p := pipeline.MustNew([]float64{1, 2, 3}, []float64{4, 100, 100, 8})
	pl, err := platform.NewCommHomogeneous([]float64{2}, []float64{0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := &GeneralMapping{ProcOf: []int{0, 0, 0}}
	lat, err := g.Latency(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	want := 4.0/4 + (1+2+3)/2.0 + 8.0/4 // 1 + 3 + 2
	if lat != want {
		t.Errorf("latency = %g, want %g", lat, want)
	}
}

func TestGeneralLatencyRevisitingProcessor(t *testing.T) {
	// A non-interval general mapping: P0, P1, P0. Both processor changes
	// pay communications.
	p := pipeline.MustNew([]float64{1, 1, 1}, []float64{0, 6, 6, 0})
	pl, err := platform.NewCommHomogeneous([]float64{1, 1}, []float64{0, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := &GeneralMapping{ProcOf: []int{0, 1, 0}}
	lat, err := g.Latency(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0 + 3 + 6.0/3 + 6.0/3 // work 3 + two transfers of 2
	if lat != want {
		t.Errorf("latency = %g, want %g", lat, want)
	}
}

func TestGeneralLatencyValidates(t *testing.T) {
	p := pipeline.Uniform(2, 1, 1)
	pl, _ := platform.NewCommHomogeneous([]float64{1}, []float64{0}, 1)
	g := &GeneralMapping{ProcOf: []int{0}}
	if _, err := g.Latency(p, pl); err == nil {
		t.Error("accepted mismatched stage count")
	}
}

func TestToIntervalMapping(t *testing.T) {
	g := &GeneralMapping{ProcOf: []int{0, 0, 1, 2, 2}}
	m, ok := g.ToIntervalMapping()
	if !ok {
		t.Fatal("interval-shaped mapping not converted")
	}
	if err := m.Validate(5, 3); err != nil {
		t.Fatalf("converted mapping invalid: %v", err)
	}
	if m.NumIntervals() != 3 {
		t.Errorf("NumIntervals = %d, want 3", m.NumIntervals())
	}
	if m.Intervals[1] != (Interval{2, 2}) || m.Alloc[1][0] != 1 {
		t.Errorf("unexpected middle interval: %v", m)
	}

	if _, ok := (&GeneralMapping{ProcOf: []int{0, 1, 0}}).ToIntervalMapping(); ok {
		t.Error("revisiting mapping converted to interval mapping")
	}
	if _, ok := (&GeneralMapping{}).ToIntervalMapping(); ok {
		t.Error("empty mapping converted")
	}
}

func TestFromIntervalMapping(t *testing.T) {
	m := &Mapping{Intervals: []Interval{{0, 1}, {2, 2}}, Alloc: [][]int{{1}, {0}}}
	g, ok := FromIntervalMapping(m, 3)
	if !ok {
		t.Fatal("singleton interval mapping not flattened")
	}
	want := []int{1, 1, 0}
	for i := range want {
		if g.ProcOf[i] != want[i] {
			t.Fatalf("ProcOf = %v, want %v", g.ProcOf, want)
		}
	}
	mRepl := &Mapping{Intervals: []Interval{{0, 2}}, Alloc: [][]int{{0, 1}}}
	if _, ok := FromIntervalMapping(mRepl, 3); ok {
		t.Error("replicated mapping flattened")
	}
}

// Property: for interval-shaped single-replica mappings, the general
// latency and Eq. (2) latency agree (replication factor 1 makes the two
// formulas coincide).
func TestGeneralMatchesEq2OnSingletonIntervals(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := n + rng.Intn(4)
		p := pipeline.Random(rng, n, 0.5, 10, 0.5, 10)
		pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0, 1, 1, 50)
		// Build a random singleton interval mapping.
		mp := randomMapping(rng, n, m)
		for j := range mp.Alloc {
			mp.Alloc[j] = mp.Alloc[j][:1]
		}
		g, ok := FromIntervalMapping(mp, n)
		if !ok {
			return false
		}
		lEq2, err1 := LatencyEq2(p, pl, mp)
		lGen, err2 := g.Latency(p, pl)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(lEq2-lGen) <= 1e-9*math.Max(1, lEq2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: round trip GeneralMapping -> interval -> general preserves the
// assignment when the mapping is interval-shaped.
func TestIntervalRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := n + rng.Intn(4)
		mp := randomMapping(rng, n, m)
		for j := range mp.Alloc {
			mp.Alloc[j] = mp.Alloc[j][:1]
		}
		g, ok := FromIntervalMapping(mp, n)
		if !ok {
			return false
		}
		back, ok := g.ToIntervalMapping()
		if !ok {
			return false
		}
		g2, ok := FromIntervalMapping(back, n)
		if !ok {
			return false
		}
		for i := range g.ProcOf {
			if g.ProcOf[i] != g2.ProcOf[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
