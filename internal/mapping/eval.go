package mapping

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// MaxEvalProcs is the widest platform the single-word (uint64 mask)
// representation covers. It is no longer a limit of the Evaluator itself:
// wider platforms are evaluated through the multi-word replica sets of
// internal/bitset (see the *W methods in evalwide.go), with a stride of
// bitset.Words(m) words per replica set.
const MaxEvalProcs = 64

// Evaluator is the zero-allocation evaluation engine behind the exact
// solvers. It precomputes, once per (pipeline, platform) pair, everything
// the latency and failure-probability formulas need — the Eq. (1) / Eq. (2)
// dispatch, the single bandwidth of communication-homogeneous platforms,
// work prefix sums (via the pipeline), and suffix latency lower bounds for
// branch-and-bound — and then evaluates candidate mappings represented as
// interval end boundaries plus per-interval processor bitmasks without any
// heap allocation and without Validate (enumerated candidates are valid by
// construction; the public Evaluate path keeps full validation).
//
// The arithmetic deliberately mirrors LatencyEq1, LatencyEq2 and
// FailureProb operation for operation, in the same order, so that the
// metrics are bitwise identical to the slice-based evaluators. That
// contract holds for both mask representations: the uint64 methods below
// cover platforms up to MaxEvalProcs processors, and the *W methods of
// evalwide.go evaluate multi-word bitset.Set replica sets for any m,
// iterating processors in the same ascending order.
type Evaluator struct {
	p  *pipeline.Pipeline
	pl *platform.Platform

	n, m    int
	stride  int // bitset words per replica set (1 when m ≤ 64)
	commHom bool
	b       float64 // single bandwidth when commHom

	// lbTail[start] is a lower bound on the latency contributed by stages
	// [start, n) plus the final output transfer, valid for every completion
	// of a partial mapping whose charged prefix ends at stage start−1 (see
	// TailLatencyLB). lbTail[n] is the exact final-output term on
	// communication-homogeneous platforms.
	lbTail []float64
}

// NewEvaluator validates the instance once and builds the precomputed
// state. Platforms of any width are accepted: up to MaxEvalProcs
// processors the uint64 mask methods apply, beyond that callers use the
// multi-word *W methods (Stride reports the words per replica set).
func NewEvaluator(p *pipeline.Pipeline, pl *platform.Platform) (*Evaluator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	n, m := p.NumStages(), pl.NumProcs()
	e := &Evaluator{p: p, pl: pl, n: n, m: m, stride: bitset.Words(m)}
	e.b, e.commHom = pl.CommHomogeneous()

	maxSpeed := pl.Speed[0]
	for _, s := range pl.Speed[1:] {
		if s > maxSpeed {
			maxSpeed = s
		}
	}
	e.lbTail = make([]float64, n+1)
	if e.commHom {
		e.lbTail[n] = p.Delta[n] / e.b
		for start := n - 1; start >= 0; start-- {
			// The next interval receives its input at least once (k ≥ 1),
			// the remaining work runs at best on the fastest processor, and
			// the final output must still leave the platform.
			e.lbTail[start] = p.Delta[start]/e.b + p.Work(start, n-1)/maxSpeed + p.Delta[n]/e.b
		}
	} else {
		maxB := math.Inf(1) // m == 1: no inter-processor link is ever used
		if m > 1 {
			maxB = 0
			for u := 0; u < m; u++ {
				for v := 0; v < m; v++ {
					if u != v && pl.B[u][v] > maxB {
						maxB = pl.B[u][v]
					}
				}
			}
		}
		maxBOut := pl.BOut[0]
		for _, bo := range pl.BOut[1:] {
			if bo > maxBOut {
				maxBOut = bo
			}
		}
		maxBIn := pl.BIn[0]
		for _, bi := range pl.BIn[1:] {
			if bi > maxBIn {
				maxBIn = bi
			}
		}
		e.lbTail[n] = p.Delta[n] / maxBOut
		for start := n - 1; start >= 0; start-- {
			// δ_start crosses an inter-processor link, except at start = 0
			// where it is the initial input over a BIn link.
			cross := maxB
			if start == 0 {
				cross = maxBIn
			}
			e.lbTail[start] = p.Delta[start]/cross + p.Work(start, n-1)/maxSpeed + p.Delta[n]/maxBOut
		}
	}
	return e, nil
}

// NumStages returns n.
func (e *Evaluator) NumStages() int { return e.n }

// NumProcs returns m.
func (e *Evaluator) NumProcs() int { return e.m }

// Stride returns the number of bitset words per replica set
// (bitset.Words(m); 1 on platforms within the uint64 mask width).
func (e *Evaluator) Stride() int { return e.stride }

// Wide reports whether replica sets exceed the single-word uint64
// representation, i.e. whether callers must use the *W methods.
func (e *Evaluator) Wide() bool { return e.m > MaxEvalProcs }

// CommHom reports whether the platform is communication homogeneous, i.e.
// whether latency evaluation dispatches to Eq. (1) or Eq. (2).
func (e *Evaluator) CommHom() bool { return e.commHom }

// TailLatencyLB returns a lower bound on the latency still to be paid by
// any completion of a partial mapping covering stages [0, start): the
// input transfer of the next interval (or the pending interval's outgoing
// transfer on heterogeneous platforms), the remaining work on the fastest
// processor, and the final output transfer. TailLatencyLB(n) is the final
// output term alone.
func (e *Evaluator) TailLatencyLB(start int) float64 { return e.lbTail[start] }

// Eval computes both metrics of the candidate (ends, masks): ends[j] is
// the last stage (0-based, inclusive) of interval j, masks[j] the replica
// set of interval j as a processor bitmask. The candidate must be valid by
// construction — consecutive non-empty intervals with ends[len−1] == n−1
// and pairwise-disjoint non-empty masks. Zero heap allocations.
func (e *Evaluator) Eval(ends []int, masks []uint64) Metrics {
	return Metrics{Latency: e.Latency(ends, masks), FailureProb: e.FailureProb(masks)}
}

// Latency dispatches to the Eq. (1) or Eq. (2) masked evaluation.
func (e *Evaluator) Latency(ends []int, masks []uint64) float64 {
	if e.commHom {
		return e.latencyEq1(ends, masks)
	}
	return e.latencyEq2(ends, masks)
}

func (e *Evaluator) latencyEq1(ends []int, masks []uint64) float64 {
	total := 0.0
	first := 0
	for j, end := range ends {
		commIn, compute := e.IntervalEq1Cost(first, end, masks[j])
		total += commIn
		total += compute
		first = end + 1
	}
	total += e.lbTail[e.n] // exact δ_n/b on comm-hom platforms
	return total
}

func (e *Evaluator) latencyEq2(ends []int, masks []uint64) float64 {
	total := e.InputSum(masks[0])
	first := 0
	last := len(ends) - 1
	for j, end := range ends {
		if j == last {
			total += e.IntervalEq2FinalTerm(first, end, masks[j])
		} else {
			total += e.IntervalEq2Term(first, end, masks[j], masks[j+1])
		}
		first = end + 1
	}
	return total
}

// FailureProb computes 1 − Π_j (1 − Π_{u∈masks[j]} fp_u) with the same
// operation order as the slice-based FailureProb.
func (e *Evaluator) FailureProb(masks []uint64) float64 {
	success := 1.0
	for _, mask := range masks {
		success *= e.SuccessFactor(mask)
	}
	return 1 - success
}

// SuccessFactor returns 1 − Π_{u∈mask} fp_u, the per-interval success
// probability factor.
func (e *Evaluator) SuccessFactor(mask uint64) float64 {
	qj := 1.0
	for bm := mask; bm != 0; bm &= bm - 1 {
		qj *= e.pl.FailProb[bits.TrailingZeros64(bm)]
	}
	return 1 - qj
}

// IntervalEq1Cost returns the two Eq. (1) latency terms of one interval —
// the serialized input transfer k·δ_first/b and the computation on the
// slowest replica — as separate addends so callers accumulate them in the
// same order as LatencyEq1.
func (e *Evaluator) IntervalEq1Cost(first, last int, mask uint64) (commIn, compute float64) {
	kj := float64(bits.OnesCount64(mask))
	commIn = kj * e.p.Delta[first] / e.b
	compute = e.p.Work(first, last) / e.MinSpeed(mask)
	return commIn, compute
}

// MinSpeed returns the speed of the slowest processor in mask.
func (e *Evaluator) MinSpeed(mask uint64) float64 {
	slowest := math.Inf(1)
	for bm := mask; bm != 0; bm &= bm - 1 {
		if s := e.pl.Speed[bits.TrailingZeros64(bm)]; s < slowest {
			slowest = s
		}
	}
	return slowest
}

// InputSum returns Σ_{u∈mask} δ_0/b_{in,u}, the Eq. (2) input term of the
// first interval.
func (e *Evaluator) InputSum(mask uint64) float64 {
	total := 0.0
	for bm := mask; bm != 0; bm &= bm - 1 {
		total += e.p.Delta[0] / e.pl.BIn[bits.TrailingZeros64(bm)]
	}
	return total
}

// IntervalEq2Term returns the Eq. (2) term of a non-final interval
// [first, last] replicated on mask, sending its output to the replicas in
// next: max_{u∈mask} [ W/s_u + Σ_{v∈next} δ_{last+1}/b_{u,v} ].
func (e *Evaluator) IntervalEq2Term(first, last int, mask, next uint64) float64 {
	work := e.p.Work(first, last)
	out := e.p.Delta[last+1]
	worst := math.Inf(-1)
	for bm := mask; bm != 0; bm &= bm - 1 {
		u := bits.TrailingZeros64(bm)
		term := work / e.pl.Speed[u]
		for nm := next; nm != 0; nm &= nm - 1 {
			term += out / e.pl.B[u][bits.TrailingZeros64(nm)]
		}
		if term > worst {
			worst = term
		}
	}
	return worst
}

// IntervalEq2FinalTerm is IntervalEq2Term for the last interval, whose
// outgoing transfer goes to P_out: max_{u∈mask} [ W/s_u + δ_n/b_{u,out} ].
func (e *Evaluator) IntervalEq2FinalTerm(first, last int, mask uint64) float64 {
	work := e.p.Work(first, last)
	out := e.p.Delta[e.n]
	worst := math.Inf(-1)
	for bm := mask; bm != 0; bm &= bm - 1 {
		u := bits.TrailingZeros64(bm)
		term := work/e.pl.Speed[u] + out/e.pl.BOut[u]
		if term > worst {
			worst = term
		}
	}
	return worst
}

// IntervalComputeLB returns a lower bound on the Eq. (2) term of a pending
// interval whose successor replica set is not yet known: the exact compute
// part W/min_{u∈mask} s_u (every completion's term is at least this).
func (e *Evaluator) IntervalComputeLB(first, last int, mask uint64) float64 {
	return e.p.Work(first, last) / e.MinSpeed(mask)
}

// ToMapping materializes the candidate as a regular *Mapping (this
// allocates; call it only for candidates worth keeping).
func (e *Evaluator) ToMapping(ends []int, masks []uint64) *Mapping {
	m := &Mapping{
		Intervals: make([]Interval, len(ends)),
		Alloc:     make([][]int, len(ends)),
	}
	first := 0
	for j, end := range ends {
		m.Intervals[j] = Interval{First: first, Last: end}
		procs := make([]int, 0, bits.OnesCount64(masks[j]))
		for bm := masks[j]; bm != 0; bm &= bm - 1 {
			procs = append(procs, bits.TrailingZeros64(bm))
		}
		m.Alloc[j] = procs
		first = end + 1
	}
	return m
}

// BoundaryRep converts a mapping into the evaluator's boundary
// representation: ends[j] is the last stage of interval j, masks[j] its
// replica set as a processor bitmask. ok is false when some processor id
// is outside the uint64 mask range (≥ MaxEvalProcs). The mapping is not
// validated; pair this with Mapping.Validate (as EvaluateMapping does).
func BoundaryRep(m *Mapping) (ends []int, masks []uint64, ok bool) {
	ends = make([]int, len(m.Intervals))
	masks = make([]uint64, len(m.Intervals))
	for j, iv := range m.Intervals {
		ends[j] = iv.Last
		for _, u := range m.Alloc[j] {
			if u < 0 || u >= MaxEvalProcs {
				return nil, nil, false
			}
			masks[j] |= 1 << uint(u)
		}
	}
	return ends, masks, true
}

// EvaluateMapping validates m against the evaluator's instance and scores
// it through the precomputed state. It returns the same metrics as the
// package-level Evaluate but skips re-deriving the platform dispatch on
// every call, so long-lived sessions evaluating many mappings against one
// (pipeline, platform) pair amortize the precomputation.
func (e *Evaluator) EvaluateMapping(m *Mapping) (Metrics, error) {
	if err := m.Validate(e.n, e.m); err != nil {
		return Metrics{}, err
	}
	if e.Wide() {
		ends, words := BoundaryRepWide(m, e.stride)
		return e.EvalW(ends, words), nil
	}
	ends, masks, ok := BoundaryRep(m)
	if !ok {
		return Metrics{}, fmt.Errorf("mapping: processor id out of bitmask range (m ≤ %d)", MaxEvalProcs)
	}
	return e.Eval(ends, masks), nil
}
