package mapping

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// deltaInstance draws a random instance: communication-homogeneous on even
// seeds (Eq. (1) terms), fully heterogeneous otherwise (Eq. (2) terms).
func deltaInstance(rng *rand.Rand, n, m int) (*pipeline.Pipeline, *platform.Platform) {
	p := pipeline.Random(rng, n, 1, 10, 1, 10)
	if rng.Intn(2) == 0 {
		return p, platform.RandomCommHomogeneous(rng, m, 1, 10, 0.05, 0.95, 1+rng.Float64()*2)
	}
	return p, platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.05, 0.95, 1, 20)
}

// randomValidMapping draws a valid interval mapping with replication.
func randomValidMapping(rng *rand.Rand, n, m int) *Mapping {
	p := 1 + rng.Intn(min(n, m))
	cuts := rng.Perm(n - 1)[:p-1]
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	mp := &Mapping{}
	start := 0
	for j := 0; j < p; j++ {
		end := n - 1
		if j < p-1 {
			end = cuts[j]
		}
		mp.Intervals = append(mp.Intervals, Interval{First: start, Last: end})
		start = end + 1
	}
	procs := rng.Perm(m)
	mp.Alloc = make([][]int, p)
	for j := 0; j < p; j++ {
		mp.Alloc[j] = []int{procs[j]}
	}
	for _, u := range procs[p:] {
		if rng.Float64() < 0.5 {
			j := rng.Intn(p)
			mp.Alloc[j] = append(mp.Alloc[j], u)
		}
	}
	return mp
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// checkState asserts the state's incremental metrics are bitwise identical
// to a fresh batch evaluation of the materialized mapping — through the
// evaluator (mask path) and through the slice-based Evaluate.
func checkState(t *testing.T, ev *Evaluator, p *pipeline.Pipeline, pl *platform.Platform, st *EvalState, what string) {
	t.Helper()
	mp := st.ToMapping()
	got := st.Metrics()
	want, err := ev.EvaluateMapping(mp)
	if err != nil {
		t.Fatalf("%s: state materialized an invalid mapping %v: %v", what, mp, err)
	}
	if got != want {
		t.Fatalf("%s: incremental metrics %+v != batch evaluator %+v (mapping %v)", what, got, want, mp)
	}
	slice, err := Evaluate(p, pl, mp)
	if err != nil {
		t.Fatal(err)
	}
	if got != slice {
		t.Fatalf("%s: incremental metrics %+v != slice Evaluate %+v (mapping %v)", what, got, slice, mp)
	}
}

// mutate applies one random validity-preserving mutation and reports a
// description (empty when no move was applicable for the drawn kind).
func mutate(rng *rand.Rand, st *EvalState, m int) string {
	p := st.NumIntervals()
	switch rng.Intn(6) {
	case 0: // add an unused replica
		u := freeProc(rng, st, m)
		if u < 0 {
			return ""
		}
		j := rng.Intn(p)
		st.AddReplica(j, u)
		return "add"
	case 1: // remove a replica (keep intervals non-empty)
		j := rng.Intn(p)
		if st.Replication(j) < 2 {
			return ""
		}
		st.RemoveReplica(j, nthBit(st.Mask(j), rng.Intn(st.Replication(j))))
		return "remove"
	case 2: // replace a replica by an unused processor
		u := freeProc(rng, st, m)
		if u < 0 {
			return ""
		}
		j := rng.Intn(p)
		st.ReplaceReplica(j, nthBit(st.Mask(j), rng.Intn(st.Replication(j))), u)
		return "replace"
	case 3: // migrate a replica between intervals
		if p < 2 {
			return ""
		}
		j := rng.Intn(p)
		if st.Replication(j) < 2 {
			return ""
		}
		j2 := rng.Intn(p)
		if j2 == j {
			return ""
		}
		st.MoveReplica(j, j2, nthBit(st.Mask(j), rng.Intn(st.Replication(j))))
		return "move"
	case 4: // split an interval, sending a proper subset right
		j := rng.Intn(p)
		length := st.End(j) - st.First(j) + 1
		k := st.Replication(j)
		if length < 2 || k < 2 {
			return ""
		}
		cut := st.First(j) + 1 + rng.Intn(length-1)
		right := bitset.Make(m)
		keep := 1 + rng.Intn(k-1)
		for i := 0; i < keep; i++ {
			right.Add(nthBit(st.Mask(j), rng.Intn(k)))
		}
		if right.Equal(st.Mask(j)) || right.IsZero() {
			return ""
		}
		st.Split(j, cut, right)
		return "split"
	default: // merge two adjacent intervals
		if p < 2 {
			return ""
		}
		st.Merge(rng.Intn(p - 1))
		return "merge"
	}
}

func freeProc(rng *rand.Rand, st *EvalState, m int) int {
	free := make([]int, 0, m)
	for u := 0; u < m; u++ {
		if !st.Used().Test(u) {
			free = append(free, u)
		}
	}
	if len(free) == 0 {
		return -1
	}
	return free[rng.Intn(len(free))]
}

func nthBit(s bitset.Set, i int) int {
	n := -1
	for k := 0; k <= i; k++ {
		n = s.NextOne(n + 1)
	}
	return n
}

// TestEvalStateMatchesBatchEvaluators drives random mutation sequences on
// random instances across the narrow and wide mask representations and
// asserts the incrementally maintained metrics stay bitwise identical to
// the batch evaluators after every mutation.
func TestEvalStateMatchesBatchEvaluators(t *testing.T) {
	for _, m := range []int{8, 64, 80, 128} {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed*1000 + int64(m)))
			n := 2 + rng.Intn(6)
			p, pl := deltaInstance(rng, n, m)
			ev, err := NewEvaluator(p, pl)
			if err != nil {
				t.Fatal(err)
			}
			st := ev.NewState()
			st.Load(randomValidMapping(rng, n, m))
			checkState(t, ev, p, pl, st, "load")
			for step := 0; step < 60; step++ {
				if what := mutate(rng, st, m); what != "" {
					checkState(t, ev, p, pl, st, what)
				}
			}
		}
	}
}

// TestEvalStateUndoRoundTrip checks the apply/undo contract the heuristics
// move framework builds on: applying a move and its inverse restores the
// full state — boundary representation, cached terms and metrics —
// bitwise.
func TestEvalStateUndoRoundTrip(t *testing.T) {
	for _, m := range []int{8, 80} {
		for seed := int64(0); seed < 10; seed++ {
			rng := rand.New(rand.NewSource(seed*77 + int64(m)))
			n := 2 + rng.Intn(6)
			p, pl := deltaInstance(rng, n, m)
			ev, err := NewEvaluator(p, pl)
			if err != nil {
				t.Fatal(err)
			}
			st := ev.NewState()
			st.Load(randomValidMapping(rng, n, m))
			before := ev.NewState()
			scratch := bitset.Make(m)
			for step := 0; step < 40; step++ {
				before.CopyFrom(st)
				pcount := st.NumIntervals()
				switch rng.Intn(4) {
				case 0:
					u := freeProc(rng, st, m)
					if u < 0 {
						continue
					}
					j := rng.Intn(pcount)
					st.AddReplica(j, u)
					st.RemoveReplica(j, u)
				case 1:
					if pcount < 2 {
						continue
					}
					j := rng.Intn(pcount - 1)
					if st.Replication(j) < 2 {
						continue
					}
					u := nthBit(st.Mask(j), rng.Intn(st.Replication(j)))
					st.MoveReplica(j, j+1, u)
					st.MoveReplica(j+1, j, u)
				case 2:
					j := rng.Intn(pcount)
					length := st.End(j) - st.First(j) + 1
					k := st.Replication(j)
					if length < 2 || k < 2 {
						continue
					}
					cut := st.First(j) + 1 + rng.Intn(length-1)
					scratch.Zero()
					scratch.Add(nthBit(st.Mask(j), k-1))
					st.Split(j, cut, scratch)
					st.Merge(j)
				default:
					if pcount < 2 {
						continue
					}
					j := rng.Intn(pcount - 1)
					cut := st.First(j + 1)
					scratch.Copy(st.Mask(j + 1))
					st.Merge(j)
					st.Split(j, cut, scratch)
				}
				assertStatesEqual(t, before, st)
			}
		}
	}
}

func assertStatesEqual(t *testing.T, a, b *EvalState) {
	t.Helper()
	if a.p != b.p {
		t.Fatalf("interval count diverged: %d vs %d", a.p, b.p)
	}
	stride := a.ev.stride
	for j := 0; j < a.p; j++ {
		if a.ends[j] != b.ends[j] {
			t.Fatalf("ends[%d] diverged: %d vs %d", j, a.ends[j], b.ends[j])
		}
		if !bitset.Set(a.words[j*stride : (j+1)*stride]).Equal(b.words[j*stride : (j+1)*stride]) {
			t.Fatalf("mask %d diverged", j)
		}
		if a.succ[j] != b.succ[j] {
			t.Fatalf("succ[%d] diverged: %g vs %g", j, a.succ[j], b.succ[j])
		}
		if a.ev.commHom {
			if a.commIn[j] != b.commIn[j] || a.compute[j] != b.compute[j] {
				t.Fatalf("Eq1 terms of interval %d diverged", j)
			}
		} else if a.term[j] != b.term[j] {
			t.Fatalf("Eq2 term of interval %d diverged: %g vs %g", j, a.term[j], b.term[j])
		}
	}
	if !a.used.Equal(b.used) {
		t.Fatal("used set diverged")
	}
	if a.inputSum != b.inputSum {
		t.Fatalf("input sum diverged: %g vs %g", a.inputSum, b.inputSum)
	}
	if a.Metrics() != b.Metrics() {
		t.Fatalf("metrics diverged: %+v vs %+v", a.Metrics(), b.Metrics())
	}
}

// TestEvalStateZeroAllocs pins the zero-allocation contract of the
// mutators and the metric accumulation on both mask representations.
func TestEvalStateZeroAllocs(t *testing.T) {
	for _, m := range []int{12, 80} {
		rng := rand.New(rand.NewSource(int64(m)))
		n := 6
		p, pl := deltaInstance(rng, n, m)
		ev, err := NewEvaluator(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		st := ev.NewState()
		snap := ev.NewState()
		st.Load(randomValidMapping(rng, n, m))
		snap.CopyFrom(st)
		right := bitset.Make(m)
		allocs := testing.AllocsPerRun(200, func() {
			u := freeFixed(st, m)
			st.AddReplica(0, u)
			_ = st.Metrics()
			st.RemoveReplica(0, u)
			if st.End(0)-st.First(0)+1 >= 2 && st.Replication(0) >= 2 {
				right.Zero()
				right.Add(st.Mask(0).NextOne(0))
				st.Split(0, st.First(0)+1, right)
				_ = st.Metrics()
				st.Merge(0)
			}
			_ = st.Latency()
			_ = st.FailureProb()
			st.CopyFrom(snap)
		})
		if allocs != 0 {
			t.Errorf("m=%d: EvalState hot path allocates %.1f/op, want 0", m, allocs)
		}
	}
}

// freeFixed returns the lowest unused processor id (the hot-path variant
// of freeProc for the allocation test, which must not allocate).
func freeFixed(st *EvalState, m int) int {
	for u := 0; u < m; u++ {
		if !st.Used().Test(u) {
			return u
		}
	}
	return -1
}
