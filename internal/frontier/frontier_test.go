package frontier

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mapping"
)

func met(lat, fp float64) mapping.Metrics {
	return mapping.Metrics{Latency: lat, FailureProb: fp}
}

func TestInsertBasics(t *testing.T) {
	var f Front
	if !f.Insert(met(10, 0.5), nil) {
		t.Fatal("first insert rejected")
	}
	if f.Insert(met(11, 0.6), nil) {
		t.Error("dominated point kept")
	}
	if f.Insert(met(10, 0.5), nil) {
		t.Error("duplicate point kept")
	}
	if !f.Insert(met(5, 0.9), nil) {
		t.Error("incomparable point rejected")
	}
	if !f.Insert(met(20, 0.1), nil) {
		t.Error("incomparable point rejected")
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
	// A dominating point removes two of the three.
	if !f.Insert(met(4, 0.4), nil) {
		t.Error("dominating point rejected")
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d after dominating insert, want 2", f.Len())
	}
	es := f.Entries()
	if es[0].Metrics != met(4, 0.4) || es[1].Metrics != met(20, 0.1) {
		t.Errorf("unexpected front: %v", f.String())
	}
}

func TestInsertEqualLatency(t *testing.T) {
	var f Front
	f.Insert(met(10, 0.5), nil)
	if f.Insert(met(10, 0.7), nil) {
		t.Error("same latency, worse FP kept")
	}
	if !f.Insert(met(10, 0.3), nil) {
		t.Error("same latency, better FP rejected")
	}
	if f.Len() != 1 {
		t.Fatalf("Len = %d, want 1", f.Len())
	}
	if f.Entries()[0].Metrics.FailureProb != 0.3 {
		t.Error("better point did not replace worse")
	}
}

func TestInsertClonesMapping(t *testing.T) {
	var f Front
	m := mapping.NewSingleInterval(2, []int{0})
	f.Insert(met(1, 0.5), m)
	m.Alloc[0][0] = 7
	if f.Entries()[0].Mapping.Alloc[0][0] == 7 {
		t.Error("front shares mapping memory with caller")
	}
}

// Property: after random insertions the front is sorted by latency with
// strictly decreasing FP and no internal dominance.
func TestFrontInvariant(t *testing.T) {
	f2 := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var f Front
		for i := 0; i < 60; i++ {
			f.Insert(met(math.Round(rng.Float64()*20), math.Round(rng.Float64()*100)/100), nil)
		}
		es := f.Entries()
		for i := 1; i < len(es); i++ {
			if es[i].Metrics.Latency <= es[i-1].Metrics.Latency {
				return false
			}
			if es[i].Metrics.FailureProb >= es[i-1].Metrics.FailureProb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f2, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the front dominates or equals every point ever offered.
func TestFrontCoversAllOffered(t *testing.T) {
	f2 := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var f Front
		var offered []mapping.Metrics
		for i := 0; i < 40; i++ {
			m := met(rng.Float64()*20, rng.Float64())
			offered = append(offered, m)
			f.Insert(m, nil)
		}
		for _, m := range offered {
			ok := false
			for _, e := range f.Entries() {
				if e.Metrics == m || e.Metrics.Dominates(m) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f2, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeAndCovers(t *testing.T) {
	var a, b Front
	a.Insert(met(1, 0.9), nil)
	a.Insert(met(5, 0.5), nil)
	b.Insert(met(5, 0.5), nil)
	b.Insert(met(10, 0.1), nil)
	if a.Covers(&b) {
		t.Error("a should not cover b (b has (10,0.1))")
	}
	kept := a.Merge(&b)
	if kept != 1 {
		t.Errorf("Merge kept %d, want 1", kept)
	}
	if !a.Covers(&b) {
		t.Error("after merge a must cover b")
	}
	if a.Len() != 3 {
		t.Errorf("Len = %d, want 3", a.Len())
	}
}

func TestHypervolume(t *testing.T) {
	var f Front
	f.Insert(met(2, 0.5), nil)
	f.Insert(met(4, 0.25), nil)
	// Reference (10, 1): HV = (10-2)·(1-0.5) + (10-4)·(0.5-0.25) = 4 + 1.5.
	if hv := f.Hypervolume(10, 1); math.Abs(hv-5.5) > 1e-12 {
		t.Errorf("HV = %g, want 5.5", hv)
	}
	// Points outside the box contribute nothing.
	if hv := f.Hypervolume(1, 1); hv != 0 {
		t.Errorf("HV with tight box = %g, want 0", hv)
	}
	var empty Front
	if empty.Hypervolume(10, 1) != 0 {
		t.Error("empty front HV should be 0")
	}
}

// Property: merging can only grow the hypervolume.
func TestHypervolumeMonotoneUnderMerge(t *testing.T) {
	f2 := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b Front
		for i := 0; i < 20; i++ {
			a.Insert(met(rng.Float64()*10, rng.Float64()), nil)
			b.Insert(met(rng.Float64()*10, rng.Float64()), nil)
		}
		before := a.Hypervolume(12, 1.1)
		a.Merge(&b)
		after := a.Hypervolume(12, 1.1)
		return after >= before-1e-12
	}
	if err := quick.Check(f2, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	var f Front
	f.Insert(met(1.5, 0.25), nil)
	if s := f.String(); !strings.Contains(s, "1.5") || !strings.Contains(s, "0.25") {
		t.Errorf("String = %q", s)
	}
}

// TestInsertEvictsRun exercises the in-place splice: one insertion must be
// able to evict a whole run of dominated entries.
func TestInsertEvictsRun(t *testing.T) {
	var f Front
	f.Insert(met(1, 0.9), nil)
	f.Insert(met(2, 0.8), nil)
	f.Insert(met(3, 0.7), nil)
	f.Insert(met(4, 0.6), nil)
	f.Insert(met(5, 0.5), nil)
	// (1.5, 0.05) dominates everything at latency ≥ 2.
	if !f.Insert(met(1.5, 0.05), nil) {
		t.Fatal("dominating point rejected")
	}
	es := f.Entries()
	if len(es) != 2 {
		t.Fatalf("front has %d entries, want 2: %v", len(es), f.String())
	}
	if es[0].Metrics != met(1, 0.9) || es[1].Metrics != met(1.5, 0.05) {
		t.Errorf("front = %s", f.String())
	}
}

// TestInsertRejectDoesNotClone: a dominated offer must not clone the
// mapping (the exact enumeration offers millions of reused buffers).
func TestInsertRejectDoesNotClone(t *testing.T) {
	var f Front
	m := mapping.NewSingleInterval(2, []int{0})
	f.Insert(met(1, 0.1), m)
	allocs := testing.AllocsPerRun(100, func() {
		if f.Insert(met(2, 0.5), m) {
			t.Fatal("dominated point accepted")
		}
	})
	if allocs != 0 {
		t.Errorf("rejected Insert allocates %.1f objects, want 0", allocs)
	}
}
