// Package frontier maintains Pareto fronts over the paper's two
// objectives, latency and failure probability. Fronts are used by the
// exact solver (reference fronts on small instances), by the heuristics
// (archives of non-dominated mappings met during search), and by the
// benchmark harness (trade-off curves).
package frontier

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/mapping"
)

// Entry is one non-dominated point and the mapping achieving it.
type Entry struct {
	Metrics mapping.Metrics
	Mapping *mapping.Mapping
}

// Front is a set of mutually non-dominated entries kept sorted by
// increasing latency (hence strictly decreasing failure probability). The
// zero value is an empty front ready to use.
type Front struct {
	entries []Entry
}

// Len returns the number of points on the front.
func (f *Front) Len() int { return len(f.entries) }

// Entries returns the front sorted by increasing latency. The slice is
// shared; callers must not mutate it.
func (f *Front) Entries() []Entry { return f.entries }

// Insert offers a point to the front. It returns true when the point is
// kept (it is not dominated by, nor equal to, any current point); any
// existing points it dominates are removed. The mapping is cloned so the
// caller may reuse its buffer.
func (f *Front) Insert(met mapping.Metrics, m *mapping.Mapping) bool {
	// Position of the first entry with latency >= met.Latency.
	i := sort.Search(len(f.entries), func(i int) bool {
		return f.entries[i].Metrics.Latency >= met.Latency
	})
	// Dominated (or duplicated) by something at lower-or-equal latency?
	if i > 0 {
		left := f.entries[i-1].Metrics
		if left.FailureProb <= met.FailureProb {
			return false // left has ≤ latency and ≤ FP
		}
	}
	if i < len(f.entries) {
		right := f.entries[i].Metrics
		if right.Latency == met.Latency && right.FailureProb <= met.FailureProb {
			return false
		}
	}
	// Remove entries at ≥ latency whose FP is also ≥ (they are dominated).
	j := i
	for j < len(f.entries) && f.entries[j].Metrics.FailureProb >= met.FailureProb {
		j++
	}
	var mp *mapping.Mapping
	if m != nil {
		mp = m.Clone()
	}
	entry := Entry{Metrics: met, Mapping: mp}
	f.entries = append(f.entries[:i], append([]Entry{entry}, f.entries[j:]...)...)
	return true
}

// Merge inserts every entry of other into f and reports how many were
// kept.
func (f *Front) Merge(other *Front) int {
	kept := 0
	for _, e := range other.entries {
		if f.Insert(e.Metrics, e.Mapping) {
			kept++
		}
	}
	return kept
}

// Covers reports whether every point of other is dominated by or equal to
// some point of f (i.e. f is at least as good everywhere).
func (f *Front) Covers(other *Front) bool {
	for _, e := range other.entries {
		ok := false
		for _, mine := range f.entries {
			if mine.Metrics == e.Metrics || mine.Metrics.Dominates(e.Metrics) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Hypervolume returns the area dominated by the front inside the
// rectangle bounded by the reference point (refLatency, refFP): the
// standard 2-objective quality indicator (larger is better). Points
// outside the reference box contribute nothing.
func (f *Front) Hypervolume(refLatency, refFP float64) float64 {
	hv := 0.0
	prevFP := refFP
	for _, e := range f.entries {
		lat := e.Metrics.Latency
		fp := math.Min(e.Metrics.FailureProb, prevFP)
		if lat >= refLatency || fp >= prevFP {
			continue
		}
		hv += (refLatency - lat) * (prevFP - fp)
		prevFP = fp
	}
	return hv
}

// String renders the front as "(lat, fp) (lat, fp) ...".
func (f *Front) String() string {
	var b strings.Builder
	for i, e := range f.entries {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "(%.4g, %.4g)", e.Metrics.Latency, e.Metrics.FailureProb)
	}
	return b.String()
}
