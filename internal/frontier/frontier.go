// Package frontier maintains Pareto fronts over the paper's two
// objectives, latency and failure probability. Fronts are used by the
// exact solver (reference fronts on small instances), by the heuristics
// (archives of non-dominated mappings met during search), and by the
// benchmark harness (trade-off curves).
//
// Invariant: a Front's entry sequence is a deterministic function of the
// inserted (metrics, task) multiset — insertion order and goroutine
// scheduling never change the surviving entries or their representative
// mappings (InsertTagged resolves duplicate metric points to the lowest
// task tag). The exact parallel enumeration relies on this to merge
// per-worker fronts reproducibly.
package frontier

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/mapping"
)

// Entry is one non-dominated point and the mapping achieving it. Task is
// the discovery tag assigned by InsertTagged (0 for plain Insert): the
// exact parallel enumeration uses it to keep the representative mapping
// of a metric point deterministic — the candidate from the lowest
// enumeration subtree wins, independent of worker scheduling.
type Entry struct {
	Metrics mapping.Metrics
	Mapping *mapping.Mapping
	Task    int64
}

// Front is a set of mutually non-dominated entries kept sorted by
// increasing latency (hence strictly decreasing failure probability). The
// zero value is an empty front ready to use.
type Front struct {
	entries []Entry
}

// Len returns the number of points on the front.
func (f *Front) Len() int { return len(f.entries) }

// Entries returns the front sorted by increasing latency. The slice is
// shared; callers must not mutate it.
func (f *Front) Entries() []Entry { return f.entries }

// Insert offers a point to the front. It returns true when the point is
// kept (it is not dominated by, nor equal to, any current point); any
// existing points it dominates are removed. The mapping is cloned so the
// caller may reuse its buffer.
func (f *Front) Insert(met mapping.Metrics, m *mapping.Mapping) bool {
	return f.InsertTagged(met, m, 0)
}

// InsertTagged is Insert with a deterministic tie-break for duplicate
// metric points: when the offered point equals an existing entry's
// metrics exactly, the entry's mapping is replaced if task is strictly
// lower than the entry's tag (the set of points is unchanged, so it
// still returns false). Merging per-worker fronts through this keeps
// front representatives independent of worker count and scheduling.
func (f *Front) InsertTagged(met mapping.Metrics, m *mapping.Mapping, task int64) bool {
	return f.insert(met, m, task, true)
}

// InsertOwned is InsertTagged taking ownership of m instead of cloning
// it. Use it to merge fronts whose entries are already private (e.g.
// per-worker fronts about to be discarded) without re-copying every
// surviving mapping.
func (f *Front) InsertOwned(met mapping.Metrics, m *mapping.Mapping, task int64) bool {
	return f.insert(met, m, task, false)
}

func (f *Front) insert(met mapping.Metrics, m *mapping.Mapping, task int64, clone bool) bool {
	// Position of the first entry with latency >= met.Latency.
	i := sort.Search(len(f.entries), func(i int) bool {
		return f.entries[i].Metrics.Latency >= met.Latency
	})
	// Dominated (or duplicated) by something at lower-or-equal latency?
	if i > 0 {
		left := f.entries[i-1].Metrics
		if left.FailureProb <= met.FailureProb {
			return false // left has ≤ latency and ≤ FP
		}
	}
	if i < len(f.entries) {
		right := &f.entries[i]
		if right.Metrics.Latency == met.Latency && right.Metrics.FailureProb <= met.FailureProb {
			if right.Metrics == met && task < right.Task {
				// Same point, earlier discovery: swap the representative.
				right.Task = task
				right.Mapping = m
				if clone && m != nil {
					right.Mapping = m.Clone()
				}
			}
			return false
		}
	}
	// Remove entries at ≥ latency whose FP is also ≥ (they are dominated).
	j := i
	for j < len(f.entries) && f.entries[j].Metrics.FailureProb >= met.FailureProb {
		j++
	}
	// The entry survives: clone the mapping now (never earlier, so callers
	// can offer reused buffers cheaply) and splice it in place without a
	// temporary slice.
	mp := m
	if clone && m != nil {
		mp = m.Clone()
	}
	entry := Entry{Metrics: met, Mapping: mp, Task: task}
	switch {
	case j == i:
		// Pure insertion: extend by one and shift the tail right.
		f.entries = append(f.entries, Entry{})
		copy(f.entries[i+1:], f.entries[i:])
		f.entries[i] = entry
	case j == i+1:
		// Replace exactly one dominated entry in place.
		f.entries[i] = entry
	default:
		// Replace the run [i, j) by the new entry and shift the tail left.
		f.entries[i] = entry
		f.entries = append(f.entries[:i+1], f.entries[j:]...)
	}
	return true
}

// DominatesPoint reports whether some entry of the front is at least as
// good as the point (lat, fp) in both objectives. The exact solvers use it
// to prune enumeration subtrees whose latency lower bound and failure-
// probability prefix are already covered by the front.
func (f *Front) DominatesPoint(lat, fp float64) bool {
	// Entries are sorted by increasing latency with strictly decreasing FP,
	// so the best candidate is the last entry with Latency ≤ lat.
	i := sort.Search(len(f.entries), func(i int) bool {
		return f.entries[i].Metrics.Latency > lat
	})
	return i > 0 && f.entries[i-1].Metrics.FailureProb <= fp
}

// WouldKeep reports whether Insert(met, ·) would keep the point, i.e.
// whether no current entry is at least as good in both objectives. The
// heuristics' annealing archive uses it to materialize a mapping only
// when the point actually survives, keeping the search walk free of
// per-iteration allocations.
func (f *Front) WouldKeep(met mapping.Metrics) bool {
	return !f.DominatesPoint(met.Latency, met.FailureProb)
}

// Merge inserts every entry of other into f (preserving discovery tags,
// so duplicate points resolve to the lowest tag) and reports how many
// were kept.
func (f *Front) Merge(other *Front) int {
	kept := 0
	for _, e := range other.entries {
		if f.InsertTagged(e.Metrics, e.Mapping, e.Task) {
			kept++
		}
	}
	return kept
}

// Covers reports whether every point of other is dominated by or equal to
// some point of f (i.e. f is at least as good everywhere).
func (f *Front) Covers(other *Front) bool {
	for _, e := range other.entries {
		ok := false
		for _, mine := range f.entries {
			if mine.Metrics == e.Metrics || mine.Metrics.Dominates(e.Metrics) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Hypervolume returns the area dominated by the front inside the
// rectangle bounded by the reference point (refLatency, refFP): the
// standard 2-objective quality indicator (larger is better). Points
// outside the reference box contribute nothing.
func (f *Front) Hypervolume(refLatency, refFP float64) float64 {
	hv := 0.0
	prevFP := refFP
	for _, e := range f.entries {
		lat := e.Metrics.Latency
		fp := math.Min(e.Metrics.FailureProb, prevFP)
		if lat >= refLatency || fp >= prevFP {
			continue
		}
		hv += (refLatency - lat) * (prevFP - fp)
		prevFP = fp
	}
	return hv
}

// String renders the front as "(lat, fp) (lat, fp) ...".
func (f *Front) String() string {
	var b strings.Builder
	for i, e := range f.entries {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "(%.4g, %.4g)", e.Metrics.Latency, e.Metrics.FailureProb)
	}
	return b.String()
}
