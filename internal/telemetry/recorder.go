package telemetry

import (
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Route identifies a solve strategy of the core router. Routes double as
// profile keys: the Recorder keeps one latency sketch per (Class, Route)
// and the adaptive router compares a route's warm p95 against the
// caller's remaining deadline budget.
type Route uint8

const (
	// RouteNone marks an unset route.
	RouteNone Route = iota
	// RoutePoly: one of the paper's polynomial algorithms (Theorems 1/2,
	// Algorithms 1–4) on its provably-optimal platform class.
	RoutePoly
	// RouteDP: the O(n²·3^m) bitmask dynamic program (CommHom, small m).
	RouteDP
	// RouteExact: the pruned branch-and-bound enumeration.
	RouteExact
	// RouteHeuristic: greedy local improvement + simulated annealing.
	RouteHeuristic
	// RouteBeam: beam search over interval prefixes.
	RouteBeam
	// RouteSweep: the single-interval sweep fallback after cancellation.
	RouteSweep
	// RouteRepair: the failure-reactive warm-restart repair.
	RouteRepair

	numRoutes = int(RouteRepair) + 1
)

var routeNames = [numRoutes]string{
	"none", "poly", "dp", "exact", "heuristic", "beam", "sweep", "repair",
}

func (r Route) String() string {
	if int(r) < numRoutes {
		return routeNames[r]
	}
	return "unknown"
}

// Routes lists every real route (RouteNone excluded), in enum order, so
// exporters can walk the per-route counters without hard-coding names.
func Routes() []Route {
	rs := make([]Route, 0, numRoutes-1)
	for r := RoutePoly; int(r) < numRoutes; r++ {
		rs = append(rs, r)
	}
	return rs
}

// ParseRoute maps a route name back to its enum (RouteNone when unknown).
func ParseRoute(name string) Route {
	for i, n := range routeNames {
		if n == name {
			return Route(i)
		}
	}
	return RouteNone
}

// Outcome grades how a route attempt (or a whole solve) ended.
type Outcome uint8

const (
	// OutcomeOK: a complete answer within the attempt's guarantees.
	OutcomeOK Outcome = iota
	// OutcomePartial: the deadline or cancellation truncated the search;
	// the answer is best-so-far.
	OutcomePartial
	// OutcomeInfeasible: the attempt proved no mapping satisfies the
	// constraint.
	OutcomeInfeasible
	// OutcomeNotFound: the attempt found no feasible mapping without
	// proving infeasibility.
	OutcomeNotFound
	// OutcomeError: the attempt failed for any other reason.
	OutcomeError

	numOutcomes = int(OutcomeError) + 1
)

var outcomeNames = [numOutcomes]string{"ok", "partial", "infeasible", "notfound", "error"}

func (o Outcome) String() string {
	if int(o) < numOutcomes {
		return outcomeNames[o]
	}
	return "unknown"
}

// Obj is the minimized criterion of a solve, as a class dimension.
type Obj uint8

const (
	// ObjLatency: minimize latency (under an optional FP bound).
	ObjLatency Obj = iota
	// ObjFP: minimize failure probability (under an optional latency
	// bound).
	ObjFP
)

func (o Obj) String() string {
	if o == ObjLatency {
		return "lat"
	}
	return "fp"
}

// Class is an instance-class key: stage and processor counts bucketed to
// the next power of two, communication homogeneity, and the objective.
// Bucketing keeps the key space small enough that per-class latency
// profiles warm up quickly under real traffic while still separating
// regimes whose solve costs differ by orders of magnitude.
type Class struct {
	// N and M are the power-of-two bucket upper bounds (inclusive) of
	// the stage and processor counts.
	N, M int
	// CommHom is true on communication-homogeneous platforms (single
	// link bandwidth), where the DP route exists and Eq.(1) applies.
	CommHom bool
	// Obj is the minimized criterion.
	Obj Obj
}

// pow2Ceil rounds n up to the next power of two (minimum 1).
func pow2Ceil(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len64(uint64(n-1))
}

// ClassOf buckets an instance into its Class.
func ClassOf(n, m int, commHom bool, obj Obj) Class {
	return Class{N: pow2Ceil(n), M: pow2Ceil(m), CommHom: commHom, Obj: obj}
}

// String renders the class as a compact label, e.g. "n8.m16.het.lat".
func (c Class) String() string {
	hom := "het"
	if c.CommHom {
		hom = "hom"
	}
	return "n" + strconv.Itoa(c.N) + ".m" + strconv.Itoa(c.M) + "." + hom + "." + c.Obj.String()
}

// MaxAttempts bounds the route attempts one SolveObservation carries;
// a solve tries at most {poly|dp, exact, heuristic, beam, sweep}.
const MaxAttempts = 6

// Attempt is one timed route attempt within a solve.
type Attempt struct {
	Route    Route
	Duration time.Duration
	Outcome  Outcome
}

// SolveObservation reports one completed solve: the instance class, the
// route that produced the answer, per-route phase durations, and the
// solve's outcome and certainty grade. It is a fixed-size value so
// recording performs no allocation beyond first-touch registration.
type SolveObservation struct {
	Class     Class
	Route     Route // route that produced the final answer
	Outcome   Outcome
	Certainty string // label-safe certainty grade, e.g. "heuristic"
	Total     time.Duration
	Attempts  [MaxAttempts]Attempt
	NAttempts int
}

// AddAttempt appends a route attempt (dropping past MaxAttempts, which
// cannot happen for core's route set).
func (o *SolveObservation) AddAttempt(route Route, d time.Duration, out Outcome) {
	if o.NAttempts >= MaxAttempts {
		return
	}
	o.Attempts[o.NAttempts] = Attempt{Route: route, Duration: d, Outcome: out}
	o.NAttempts++
}

// routeStats aggregates one (Class, Route) cell: the duration sketch the
// adaptive router queries plus per-outcome counters.
type routeStats struct {
	sketch   Sketch
	outcomes [numOutcomes]Counter
}

type classRoute struct {
	class Class
	route Route
}

// Recorder aggregates solve telemetry: a general-purpose Registry plus
// per-(class, route) latency profiles. All record paths are safe for
// concurrent use; warm-key recording takes only a read-lock and atomic
// adds. A nil *Recorder disables everything at the cost of one pointer
// test per call site.
type Recorder struct {
	Registry

	mu     sync.RWMutex
	routes map[classRoute]*routeStats

	skips  [numRoutes]Counter // adaptive-router skips per route
	finals [numRoutes][numOutcomes]Counter
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// routeCell returns the (class, route) cell, creating it on first use.
func (r *Recorder) routeCell(class Class, route Route) *routeStats {
	key := classRoute{class, route}
	r.mu.RLock()
	st := r.routes[key]
	r.mu.RUnlock()
	if st != nil {
		return st
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st = r.routes[key]; st != nil {
		return st
	}
	if r.routes == nil {
		r.routes = make(map[classRoute]*routeStats)
	}
	st = &routeStats{}
	r.routes[key] = st
	return st
}

// ObserveRoute records one route attempt for the class: its duration
// feeds the (class, route) latency sketch, its outcome the per-cell
// counters. Safe on nil.
func (r *Recorder) ObserveRoute(class Class, route Route, d time.Duration, out Outcome) {
	if r == nil {
		return
	}
	st := r.routeCell(class, route)
	st.sketch.Observe(d)
	if int(out) < numOutcomes {
		st.outcomes[out].Inc()
	}
}

// RouteQuantile returns the q-quantile of the (class, route) duration
// distribution together with its sample count. A nil recorder or an
// unseen cell returns (0, 0).
func (r *Recorder) RouteQuantile(class Class, route Route, q float64) (time.Duration, int64) {
	if r == nil {
		return 0, 0
	}
	r.mu.RLock()
	st := r.routes[classRoute{class, route}]
	r.mu.RUnlock()
	if st == nil {
		return 0, 0
	}
	return st.sketch.Quantile(q), st.sketch.Count()
}

// RecordRouteSkip counts an adaptive-router decision to skip a route
// whose warm p95 did not fit the remaining deadline budget.
func (r *Recorder) RecordRouteSkip(route Route) {
	if r == nil || int(route) >= numRoutes {
		return
	}
	r.skips[route].Inc()
}

// RouteSkips returns how many times the adaptive router skipped route.
func (r *Recorder) RouteSkips(route Route) int64 {
	if r == nil || int(route) >= numRoutes {
		return 0
	}
	return r.skips[route].Load()
}

// RecordSolve folds one completed solve into the aggregates: every
// route attempt feeds its (class, route) profile, and the final
// (route, outcome) pair and certainty grade feed fixed counters.
func (r *Recorder) RecordSolve(obs SolveObservation) {
	if r == nil {
		return
	}
	for i := 0; i < obs.NAttempts && i < MaxAttempts; i++ {
		a := obs.Attempts[i]
		r.ObserveRoute(obs.Class, a.Route, a.Duration, a.Outcome)
	}
	if int(obs.Route) < numRoutes && int(obs.Outcome) < numOutcomes {
		r.finals[obs.Route][obs.Outcome].Inc()
	}
	if obs.Certainty != "" {
		r.Counter("solve_certainty_" + obs.Certainty + "_total").Inc()
	}
	r.Counter("solve_total").Inc()
}

// Solves returns the count of recorded solves ending on (route, outcome).
func (r *Recorder) Solves(route Route, out Outcome) int64 {
	if r == nil || int(route) >= numRoutes || int(out) >= numOutcomes {
		return 0
	}
	return r.finals[route][out].Load()
}

// RouteSnapshot is one (class, route) profile cell for export.
type RouteSnapshot struct {
	Class    Class
	Route    Route
	Count    int64
	Sum      time.Duration
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Outcomes [numOutcomes]int64
}

// SolveStats snapshots every (class, route) profile, sorted by class
// label then route, so /v1/stats and the Prometheus exporter render a
// stable order.
func (r *Recorder) SolveStats() []RouteSnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	keys := make([]classRoute, 0, len(r.routes))
	cells := make([]*routeStats, 0, len(r.routes))
	for k, st := range r.routes {
		keys = append(keys, k)
		cells = append(cells, st)
	}
	r.mu.RUnlock()
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		if ka.class != kb.class {
			return ka.class.String() < kb.class.String()
		}
		return ka.route < kb.route
	})
	out := make([]RouteSnapshot, 0, len(idx))
	for _, i := range idx {
		st := cells[i]
		snap := RouteSnapshot{
			Class: keys[i].class,
			Route: keys[i].route,
			Count: st.sketch.Count(),
			Sum:   st.sketch.Sum(),
			P50:   st.sketch.Quantile(0.50),
			P95:   st.sketch.Quantile(0.95),
			P99:   st.sketch.Quantile(0.99),
		}
		for o := range snap.Outcomes {
			snap.Outcomes[o] = st.outcomes[o].Load()
		}
		out = append(out, snap)
	}
	return out
}
