package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// exactQuantile computes the reference percentile by sorting: the
// ceil(q·n)-th smallest observation.
func exactQuantile(values []time.Duration, q float64) time.Duration {
	s := append([]time.Duration(nil), values...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// checkQuantiles asserts the sketch's quantiles land within the
// log-linear bucket guarantee (≤ 12.5% relative width, interpolation
// tightens it further; allow 15% headroom for rank-vs-interpolation
// off-by-half effects).
func checkQuantiles(t *testing.T, name string, values []time.Duration) {
	t.Helper()
	var s Sketch
	for _, v := range values {
		s.Observe(v)
	}
	if got := s.Count(); got != int64(len(values)) {
		t.Fatalf("%s: count = %d, want %d", name, got, len(values))
	}
	for _, q := range []float64{0.50, 0.90, 0.95, 0.99} {
		want := exactQuantile(values, q)
		got := s.Quantile(q)
		if want == 0 {
			if got > time.Microsecond {
				t.Errorf("%s: q%.0f = %v, want ~0", name, q*100, got)
			}
			continue
		}
		rel := math.Abs(float64(got-want)) / float64(want)
		if rel > 0.15 {
			t.Errorf("%s: q%.2f = %v, exact %v (relative error %.1f%% > 15%%)",
				name, q, got, want, rel*100)
		}
	}
}

func TestSketchQuantileUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := make([]time.Duration, 20000)
	for i := range values {
		values[i] = time.Duration(rng.Int63n(int64(100 * time.Millisecond)))
	}
	checkQuantiles(t, "uniform", values)
}

func TestSketchQuantileBimodal(t *testing.T) {
	// Fast DP-route-like mode around 200µs, slow exact-route-like mode
	// around 80ms — the shape the adaptive router actually sees.
	rng := rand.New(rand.NewSource(2))
	values := make([]time.Duration, 20000)
	for i := range values {
		if rng.Intn(10) < 7 {
			values[i] = 200*time.Microsecond + time.Duration(rng.Int63n(int64(50*time.Microsecond)))
		} else {
			values[i] = 80*time.Millisecond + time.Duration(rng.Int63n(int64(20*time.Millisecond)))
		}
	}
	checkQuantiles(t, "bimodal", values)
}

func TestSketchQuantileHeavyTail(t *testing.T) {
	// Pareto-ish tail: x = scale / u^(1/alpha) with alpha 1.2 spans
	// microseconds to tens of seconds.
	rng := rand.New(rand.NewSource(3))
	values := make([]time.Duration, 20000)
	for i := range values {
		u := rng.Float64()
		if u < 1e-6 {
			u = 1e-6
		}
		x := 50e3 / math.Pow(u, 1/1.2) // ns
		if x > 50e9 {
			x = 50e9
		}
		values[i] = time.Duration(x)
	}
	checkQuantiles(t, "heavy-tail", values)
}

func TestSketchQuantileEdgeCases(t *testing.T) {
	var s Sketch
	if got := s.Quantile(0.95); got != 0 {
		t.Fatalf("empty sketch quantile = %v, want 0", got)
	}
	s.Observe(7 * time.Millisecond)
	for _, q := range []float64{0, 0.5, 1} {
		got := s.Quantile(q)
		rel := math.Abs(float64(got-7*time.Millisecond)) / float64(7*time.Millisecond)
		if rel > 0.15 {
			t.Errorf("single-sample q%v = %v, want ≈7ms", q, got)
		}
	}
	s.Observe(-time.Second) // negative clamps to zero, must not panic
	if got := s.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

// TestSketchMergeAssociativity: bucket-wise addition is exact, so
// (a⊕b)⊕c and a⊕(b⊕c) agree bucket-for-bucket and quantile-for-quantile.
func TestSketchMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	parts := make([][]time.Duration, 3)
	for p := range parts {
		parts[p] = make([]time.Duration, 3000)
		for i := range parts[p] {
			parts[p][i] = time.Duration(rng.Int63n(int64(time.Second)))
		}
	}
	fill := func(values []time.Duration) *Sketch {
		s := &Sketch{}
		for _, v := range values {
			s.Observe(v)
		}
		return s
	}

	left := fill(parts[0]) // (a ⊕ b) ⊕ c
	left.Merge(fill(parts[1]))
	left.Merge(fill(parts[2]))

	bc := fill(parts[1]) // a ⊕ (b ⊕ c)
	bc.Merge(fill(parts[2]))
	right := fill(parts[0])
	right.Merge(bc)

	all := fill(append(append(append([]time.Duration(nil), parts[0]...), parts[1]...), parts[2]...))

	for i := 0; i < sketchBuckets; i++ {
		l, r, a := left.counts[i].Load(), right.counts[i].Load(), all.counts[i].Load()
		if l != r || l != a {
			t.Fatalf("bucket %d: left %d right %d direct %d", i, l, r, a)
		}
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if l, r := left.Quantile(q), right.Quantile(q); l != r {
			t.Fatalf("q%v: left %v != right %v", q, l, r)
		}
		if l, a := left.Quantile(q), all.Quantile(q); l != a {
			t.Fatalf("q%v: merged %v != direct %v", q, l, a)
		}
	}
	if left.Count() != all.Count() || left.Sum() != all.Sum() {
		t.Fatalf("merged count/sum %d/%v != direct %d/%v", left.Count(), left.Sum(), all.Count(), all.Sum())
	}
}

// TestSketchConcurrentRecord hammers one sketch from many goroutines;
// run under -race this is the data-race gate, and the final count/sum
// must account for every observation exactly.
func TestSketchConcurrentRecord(t *testing.T) {
	const goroutines = 8
	const perG = 5000
	var s Sketch
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				s.Observe(time.Duration(rng.Int63n(int64(10 * time.Millisecond))))
			}
		}(int64(g))
	}
	wg.Wait()
	if got := s.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	total := int64(0)
	for i := range s.counts {
		total += s.counts[i].Load()
	}
	if total != goroutines*perG {
		t.Fatalf("bucket total = %d, want %d", total, goroutines*perG)
	}
	if s.Quantile(0.95) <= 0 || s.Quantile(0.95) > 11*time.Millisecond {
		t.Fatalf("q95 = %v out of range", s.Quantile(0.95))
	}
}

// TestSketchObserveAllocs: the record path must stay allocation-free.
func TestSketchObserveAllocs(t *testing.T) {
	var s Sketch
	allocs := testing.AllocsPerRun(1000, func() {
		s.Observe(3 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f/op, want 0", allocs)
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 15, 16, 17, 1000, 1e6, 1e9, 1e12, 1e18} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, i, prev)
		}
		if i >= sketchBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		lo, hi := bucketBounds(i)
		if v < lo || v >= hi {
			t.Fatalf("value %d outside bucket %d bounds [%d, %d)", v, i, lo, hi)
		}
		prev = i
	}
}
