package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestClassOf(t *testing.T) {
	cases := []struct {
		n, m    int
		commHom bool
		obj     Obj
		want    string
	}{
		{1, 1, true, ObjLatency, "n1.m1.hom.lat"},
		{2, 11, true, ObjFP, "n2.m16.hom.fp"},
		{5, 64, false, ObjLatency, "n8.m64.het.lat"},
		{100, 150, false, ObjFP, "n128.m256.het.fp"},
		{8, 8, true, ObjLatency, "n8.m8.hom.lat"},
	}
	for _, c := range cases {
		got := ClassOf(c.n, c.m, c.commHom, c.obj)
		if got.String() != c.want {
			t.Errorf("ClassOf(%d, %d, %t, %v) = %q, want %q", c.n, c.m, c.commHom, c.obj, got, c.want)
		}
	}
	// Bucketing must be stable: same bucket for every n in (bucket/2, bucket].
	if ClassOf(5, 3, false, ObjLatency) != ClassOf(8, 4, false, ObjLatency) {
		t.Error("5→8 and 3→4 bucketing should collide with exact 8/4")
	}
}

func TestRouteRoundTrip(t *testing.T) {
	for r := RouteNone; r <= RouteRepair; r++ {
		if got := ParseRoute(r.String()); got != r {
			t.Errorf("ParseRoute(%q) = %v, want %v", r.String(), got, r)
		}
	}
	if ParseRoute("no-such-route") != RouteNone {
		t.Error("unknown route should parse to RouteNone")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	var reg Registry
	c1 := reg.Counter("x_total")
	c2 := reg.Counter("x_total")
	if c1 != c2 {
		t.Fatal("same name must return the same counter")
	}
	c1.Add(3)
	c1.Inc()
	if c2.Load() != 4 {
		t.Fatalf("counter = %d, want 4", c2.Load())
	}
	g := reg.Gauge("depth")
	g.Set(7)
	if reg.Gauge("depth").Load() != 7 {
		t.Fatal("gauge lost its value")
	}
	reg.Observe("lat", 5*time.Millisecond)
	if reg.Sketch("lat").Count() != 1 {
		t.Fatal("sketch lost its observation")
	}

	// Nil receivers are inert.
	var nilReg *Registry
	nilReg.Counter("a").Add(1)
	nilReg.Gauge("b").Set(1)
	nilReg.Observe("c", time.Second)
}

func TestRecorderRouteProfile(t *testing.T) {
	rec := NewRecorder()
	class := ClassOf(8, 16, false, ObjLatency)
	for i := 0; i < 100; i++ {
		rec.ObserveRoute(class, RouteExact, 50*time.Millisecond, OutcomeOK)
	}
	p95, n := rec.RouteQuantile(class, RouteExact, 0.95)
	if n != 100 {
		t.Fatalf("samples = %d, want 100", n)
	}
	if p95 < 40*time.Millisecond || p95 > 60*time.Millisecond {
		t.Fatalf("p95 = %v, want ≈50ms", p95)
	}
	// Unseen cells and nil recorders answer (0, 0).
	if _, n := rec.RouteQuantile(class, RouteDP, 0.95); n != 0 {
		t.Fatal("unseen cell should have 0 samples")
	}
	var nilRec *Recorder
	if d, n := nilRec.RouteQuantile(class, RouteExact, 0.95); d != 0 || n != 0 {
		t.Fatal("nil recorder should answer (0, 0)")
	}
	nilRec.ObserveRoute(class, RouteExact, time.Second, OutcomeOK)
	nilRec.RecordSolve(SolveObservation{})
	nilRec.RecordRouteSkip(RouteExact)
}

func TestRecordSolveAggregates(t *testing.T) {
	rec := NewRecorder()
	class := ClassOf(2, 11, true, ObjFP)
	obs := SolveObservation{
		Class:     class,
		Route:     RouteDP,
		Outcome:   OutcomeOK,
		Certainty: "exhaustively_optimal",
		Total:     3 * time.Millisecond,
	}
	obs.AddAttempt(RouteDP, 3*time.Millisecond, OutcomeOK)
	rec.RecordSolve(obs)
	rec.RecordSolve(obs)

	if got := rec.Solves(RouteDP, OutcomeOK); got != 2 {
		t.Fatalf("finals = %d, want 2", got)
	}
	if got := rec.Counter("solve_total").Load(); got != 2 {
		t.Fatalf("solve_total = %d, want 2", got)
	}
	if got := rec.Counter("solve_certainty_exhaustively_optimal_total").Load(); got != 2 {
		t.Fatalf("certainty counter = %d, want 2", got)
	}
	if _, n := rec.RouteQuantile(class, RouteDP, 0.5); n != 2 {
		t.Fatalf("profile samples = %d, want 2", n)
	}

	snaps := rec.SolveStats()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(snaps))
	}
	if snaps[0].Class != class || snaps[0].Route != RouteDP || snaps[0].Count != 2 {
		t.Fatalf("snapshot = %+v", snaps[0])
	}
	if snaps[0].Outcomes[OutcomeOK] != 2 {
		t.Fatalf("snapshot outcomes = %v", snaps[0].Outcomes)
	}
}

func TestRecorderSkipCounter(t *testing.T) {
	rec := NewRecorder()
	rec.RecordRouteSkip(RouteExact)
	rec.RecordRouteSkip(RouteExact)
	if got := rec.RouteSkips(RouteExact); got != 2 {
		t.Fatalf("skips = %d, want 2", got)
	}
	if got := rec.RouteSkips(RouteDP); got != 0 {
		t.Fatalf("dp skips = %d, want 0", got)
	}
}

// TestRecorderConcurrent hammers every record path from many goroutines;
// the -race CI job runs this to hold the concurrency contract.
func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder()
	classes := []Class{
		ClassOf(2, 4, true, ObjFP),
		ClassOf(16, 32, false, ObjLatency),
		ClassOf(100, 150, false, ObjFP),
	}
	var wg sync.WaitGroup
	const perG = 2000
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			class := classes[g%len(classes)]
			for i := 0; i < perG; i++ {
				rec.ObserveRoute(class, Route(1+i%4), time.Duration(i)*time.Microsecond, Outcome(i%numOutcomes))
				rec.Counter("hammer_total").Inc()
				obs := SolveObservation{Class: class, Route: RouteExact, Outcome: OutcomeOK, Certainty: "heuristic"}
				obs.AddAttempt(RouteExact, time.Millisecond, OutcomeOK)
				rec.RecordSolve(obs)
			}
		}(g)
	}
	wg.Wait()
	if got := rec.Counter("hammer_total").Load(); got != 8*perG {
		t.Fatalf("counter = %d, want %d", got, 8*perG)
	}
	if got := rec.Solves(RouteExact, OutcomeOK); got != 8*perG {
		t.Fatalf("finals = %d, want %d", got, 8*perG)
	}
}

// TestRecorderWarmPathAllocs: recording on warm keys must not allocate.
func TestRecorderWarmPathAllocs(t *testing.T) {
	rec := NewRecorder()
	class := ClassOf(8, 8, true, ObjLatency)
	rec.ObserveRoute(class, RouteDP, time.Millisecond, OutcomeOK) // warm the cell
	c := rec.Counter("warm_total")
	allocs := testing.AllocsPerRun(500, func() {
		rec.ObserveRoute(class, RouteDP, time.Millisecond, OutcomeOK)
		c.Add(1)
		rec.RecordRouteSkip(RouteDP)
	})
	if allocs != 0 {
		t.Fatalf("warm record path allocates %.1f/op, want 0", allocs)
	}
}

func TestWritePrometheus(t *testing.T) {
	rec := NewRecorder()
	rec.Counter("serve_requests_total").Add(5)
	rec.Gauge("serve_cache_size").Set(3)
	rec.Sketch("exact_search_duration").Observe(2 * time.Millisecond)
	class := ClassOf(2, 11, true, ObjFP)
	obs := SolveObservation{Class: class, Route: RouteDP, Outcome: OutcomeOK, Certainty: "exhaustively_optimal", Total: time.Millisecond}
	obs.AddAttempt(RouteDP, time.Millisecond, OutcomeOK)
	rec.RecordSolve(obs)
	rec.RecordRouteSkip(RouteExact)

	var sb strings.Builder
	if err := rec.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE serve_requests_total counter",
		"serve_requests_total 5",
		"serve_cache_size 3",
		"# TYPE exact_search_duration_seconds histogram",
		"exact_search_duration_seconds_count 1",
		`solve_route_skips_total{route="exact"} 1`,
		`solve_outcomes_total{route="dp",outcome="ok"} 1`,
		`solve_route_duration_seconds_count{class="n2.m16.hom.fp",route="dp"} 1`,
		`le="+Inf"`,
		"solve_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n---\n%s", want, out)
		}
	}
	// Nil recorder writes nothing and does not fail.
	var nilRec *Recorder
	if err := nilRec.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
}
