package telemetry

import (
	"bufio"
	"io"
	"strconv"
)

// WritePrometheus renders the recorder — registry counters and gauges,
// registry sketches as histograms, and the per-(class, route) solve
// profiles — in the Prometheus text exposition format (version 0.0.4).
// Durations are exported in seconds. Output order is deterministic:
// registry families sorted by name, profile cells by class label then
// route.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)

	r.visit(
		func(c *Counter) {
			writeTypeLine(bw, c.Name(), "counter")
			bw.WriteString(c.Name())
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(c.Load(), 10))
			bw.WriteByte('\n')
		},
		func(g *Gauge) {
			writeTypeLine(bw, g.Name(), "gauge")
			bw.WriteString(g.Name())
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(g.Load(), 10))
			bw.WriteByte('\n')
		},
		func(name string, s *Sketch) {
			writeHistogram(bw, name+"_seconds", "", s)
		},
	)

	// Adaptive-router skip counters (only routes that skipped).
	wroteSkips := false
	for route := 0; route < numRoutes; route++ {
		n := r.skips[route].Load()
		if n == 0 {
			continue
		}
		if !wroteSkips {
			writeTypeLine(bw, "solve_route_skips_total", "counter")
			wroteSkips = true
		}
		bw.WriteString("solve_route_skips_total{route=\"")
		bw.WriteString(Route(route).String())
		bw.WriteString("\"} ")
		bw.WriteString(strconv.FormatInt(n, 10))
		bw.WriteByte('\n')
	}

	// Final (route, outcome) solve counters.
	wroteFinals := false
	for route := 0; route < numRoutes; route++ {
		for out := 0; out < numOutcomes; out++ {
			n := r.finals[route][out].Load()
			if n == 0 {
				continue
			}
			if !wroteFinals {
				writeTypeLine(bw, "solve_outcomes_total", "counter")
				wroteFinals = true
			}
			bw.WriteString("solve_outcomes_total{route=\"")
			bw.WriteString(Route(route).String())
			bw.WriteString("\",outcome=\"")
			bw.WriteString(Outcome(out).String())
			bw.WriteString("\"} ")
			bw.WriteString(strconv.FormatInt(n, 10))
			bw.WriteByte('\n')
		}
	}

	// Per-(class, route) duration histograms and outcome counters.
	snaps := r.SolveStats()
	if len(snaps) > 0 {
		writeTypeLine(bw, "solve_route_duration_seconds", "histogram")
	}
	for i := range snaps {
		snap := &snaps[i]
		labels := "{class=\"" + snap.Class.String() + "\",route=\"" + snap.Route.String() + "\"}"
		r.mu.RLock()
		st := r.routes[classRoute{snap.Class, snap.Route}]
		r.mu.RUnlock()
		if st == nil {
			continue
		}
		uppers, cum := st.sketch.snapshotBuckets()
		for j := range uppers {
			bw.WriteString("solve_route_duration_seconds_bucket{class=\"")
			bw.WriteString(snap.Class.String())
			bw.WriteString("\",route=\"")
			bw.WriteString(snap.Route.String())
			bw.WriteString("\",le=\"")
			bw.WriteString(strconv.FormatFloat(float64(uppers[j])/1e9, 'g', -1, 64))
			bw.WriteString("\"} ")
			bw.WriteString(strconv.FormatInt(cum[j], 10))
			bw.WriteByte('\n')
		}
		bw.WriteString("solve_route_duration_seconds_bucket{class=\"")
		bw.WriteString(snap.Class.String())
		bw.WriteString("\",route=\"")
		bw.WriteString(snap.Route.String())
		bw.WriteString("\",le=\"+Inf\"} ")
		bw.WriteString(strconv.FormatInt(snap.Count, 10))
		bw.WriteByte('\n')
		bw.WriteString("solve_route_duration_seconds_sum")
		bw.WriteString(labels)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatFloat(snap.Sum.Seconds(), 'g', -1, 64))
		bw.WriteByte('\n')
		bw.WriteString("solve_route_duration_seconds_count")
		bw.WriteString(labels)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(snap.Count, 10))
		bw.WriteByte('\n')
	}

	return bw.Flush()
}

func writeTypeLine(w *bufio.Writer, name, kind string) {
	w.WriteString("# TYPE ")
	w.WriteString(name)
	w.WriteByte(' ')
	w.WriteString(kind)
	w.WriteByte('\n')
}

func writeHistogram(w *bufio.Writer, name, labels string, s *Sketch) {
	writeTypeLine(w, name, "histogram")
	uppers, cum := s.snapshotBuckets()
	for i := range uppers {
		w.WriteString(name)
		w.WriteString("_bucket{")
		if labels != "" {
			w.WriteString(labels)
			w.WriteByte(',')
		}
		w.WriteString("le=\"")
		w.WriteString(strconv.FormatFloat(float64(uppers[i])/1e9, 'g', -1, 64))
		w.WriteString("\"} ")
		w.WriteString(strconv.FormatInt(cum[i], 10))
		w.WriteByte('\n')
	}
	w.WriteString(name)
	w.WriteString("_bucket{")
	if labels != "" {
		w.WriteString(labels)
		w.WriteByte(',')
	}
	w.WriteString("le=\"+Inf\"} ")
	w.WriteString(strconv.FormatInt(s.Count(), 10))
	w.WriteByte('\n')
	w.WriteString(name)
	if labels != "" {
		w.WriteString("_sum{" + labels + "}")
	} else {
		w.WriteString("_sum")
	}
	w.WriteByte(' ')
	w.WriteString(strconv.FormatFloat(s.Sum().Seconds(), 'g', -1, 64))
	w.WriteByte('\n')
	w.WriteString(name)
	if labels != "" {
		w.WriteString("_count{" + labels + "}")
	} else {
		w.WriteString("_count")
	}
	w.WriteByte(' ')
	w.WriteString(strconv.FormatInt(s.Count(), 10))
	w.WriteByte('\n')
}
