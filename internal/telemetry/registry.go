package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value works;
// registry-owned counters carry their export name.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n (no-op on a nil receiver, so disabled
// telemetry costs one pointer test).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value metric.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores the current value (no-op on nil).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a name-keyed store of counters, gauges and sketches.
// Get-or-create takes a read-lock on warm names and a write-lock only
// on first registration; the returned pointers are stable, so callers
// should resolve them once and hold them for the hot path. The zero
// value is ready to use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	sketches map[string]*Sketch
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c != nil {
		return c
	}
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c = &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g != nil {
		return g
	}
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g = &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Sketch returns the named duration sketch, registering it on first use.
func (r *Registry) Sketch(name string) *Sketch {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	s := r.sketches[name]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.sketches[name]; s != nil {
		return s
	}
	if r.sketches == nil {
		r.sketches = make(map[string]*Sketch)
	}
	s = &Sketch{}
	r.sketches[name] = s
	return s
}

// Observe records d into the named sketch (registering it on first
// use); nil-safe like every record path.
func (r *Registry) Observe(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.Sketch(name).Observe(d)
}

// CounterValues returns a snapshot of every registered counter whose name
// starts with prefix ("" selects all), keyed by full name. Nil-safe; an
// empty result returns a nil map so JSON encoders can omit it.
func (r *Registry) CounterValues(prefix string) map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out map[string]int64
	for name, c := range r.counters {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			if out == nil {
				out = make(map[string]int64)
			}
			out[name] = c.Load()
		}
	}
	return out
}

// visit hands the caller a name-sorted snapshot of each metric family.
// Used by the Prometheus exporter; values are read live (atomics), only
// the key set is copied.
func (r *Registry) visit(counters func(*Counter), gauges func(*Gauge), sketches func(name string, s *Sketch)) {
	r.mu.RLock()
	cs := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		cs = append(cs, c)
	}
	gs := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gs = append(gs, g)
	}
	names := make([]string, 0, len(r.sketches))
	for n := range r.sketches {
		names = append(names, n)
	}
	sk := make(map[string]*Sketch, len(r.sketches))
	for n, s := range r.sketches {
		sk[n] = s
	}
	r.mu.RUnlock()
	sort.Slice(cs, func(i, j int) bool { return cs[i].name < cs[j].name })
	sort.Slice(gs, func(i, j int) bool { return gs[i].name < gs[j].name })
	sort.Strings(names)
	for _, c := range cs {
		counters(c)
	}
	for _, g := range gs {
		gauges(g)
	}
	for _, n := range names {
		sketches(n, sk[n])
	}
}
