package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Sketch bucket geometry: log-linear (HDR-style) buckets over
// nanoseconds. Values below 2^(subBits+1) ns get exact unit buckets;
// above that each power-of-two octave is split into 2^subBits linear
// sub-buckets, bounding the relative bucket width by 1/2^subBits. With
// subBits = 3 the width is ≤ 12.5% and 512 buckets cover every int64
// duration (≈ 292 years), so the index math never overflows or clamps
// for real timings.
const (
	sketchSubBits = 3
	sketchBuckets = 64 << sketchSubBits
)

// Sketch is a streaming histogram of durations with quantile queries:
// fixed log-linear buckets, atomic counters, no allocation and no lock
// on Observe. The zero value is ready to use. Merging two sketches adds
// their buckets — exact and associative, unlike sampling sketches — so
// aggregation across workers, shards or time windows is deterministic.
type Sketch struct {
	counts [sketchBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds; valid when count > 0
}

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if exp := bits.Len64(u); exp > sketchSubBits+1 {
		shift := uint(exp - sketchSubBits - 1)
		return int(shift)<<sketchSubBits + int(u>>shift)
	}
	return int(u) // exact unit buckets for v < 2^(subBits+1)
}

// bucketBounds returns the half-open value range [lo, hi) of bucket i
// (hi clamps to MaxInt64 on the last octave).
func bucketBounds(i int) (lo, hi int64) {
	if i < 1<<(sketchSubBits+1) {
		return int64(i), int64(i) + 1
	}
	shift := uint(i>>sketchSubBits) - 1
	ulo := uint64((1<<sketchSubBits)+(i&(1<<sketchSubBits-1))) << shift
	uhi := ulo + uint64(1)<<shift
	if uhi > math.MaxInt64 {
		uhi = math.MaxInt64
	}
	return int64(ulo), int64(uhi)
}

// Observe records one duration. Negative durations count as zero.
func (s *Sketch) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	s.counts[bucketIndex(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
	for {
		cur := s.max.Load()
		if v <= cur || s.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (s *Sketch) Count() int64 { return s.count.Load() }

// Sum returns the total of all observations.
func (s *Sketch) Sum() time.Duration { return time.Duration(s.sum.Load()) }

// Merge adds o's buckets into s. The operation is bucket-wise integer
// addition: associative, commutative and exact, so any merge tree over
// the same sketches yields identical quantiles.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil {
		return
	}
	for i := range o.counts {
		if c := o.counts[i].Load(); c != 0 {
			s.counts[i].Add(c)
		}
	}
	s.count.Add(o.count.Load())
	s.sum.Add(o.sum.Load())
	for {
		om, cur := o.max.Load(), s.max.Load()
		if om <= cur || s.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution, linearly interpolated within its bucket. It returns 0
// when the sketch is empty. Concurrent Observe calls may make the
// answer reflect a slightly torn snapshot; quiesced sketches are exact
// to within one bucket.
func (s *Sketch) Quantile(q float64) time.Duration {
	total := int64(0)
	var counts [sketchBuckets]int64
	for i := range s.counts {
		counts[i] = s.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	cum := int64(0)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketBounds(i)
			if mx := s.max.Load(); hi > mx+1 && mx >= lo {
				hi = mx + 1 // tighten the tail bucket to the observed max
			}
			frac := (float64(rank-cum) - 0.5) / float64(c)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += c
	}
	return time.Duration(s.max.Load())
}

// snapshotBuckets copies the non-zero buckets, returning parallel
// (upper bound, cumulative count) slices for text export.
func (s *Sketch) snapshotBuckets() (uppers []int64, cumulative []int64) {
	cum := int64(0)
	for i := range s.counts {
		c := s.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		_, hi := bucketBounds(i)
		uppers = append(uppers, hi)
		cumulative = append(cumulative, cum)
	}
	return uppers, cumulative
}
