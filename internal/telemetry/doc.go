// Package telemetry is the measurement layer of the solver stack: a
// lock-cheap metrics registry (counters, gauges, streaming duration
// sketches) plus a solve Recorder that aggregates per-phase solve
// timings into latency distributions keyed by instance class and route.
// The serve tier exposes the aggregates on /v1/stats and /metrics, and
// internal/core consults them to pick the strongest solve route whose
// observed p95 fits the caller's remaining deadline budget.
//
// Invariants the tests enforce:
//
//   - The record paths (Counter.Add, Gauge.Set, Sketch.Observe,
//     Recorder.ObserveRoute on a warm key) perform no heap allocations
//     and take no exclusive lock — counters and sketch buckets are
//     atomics; the registry and recorder maps take a read-lock on warm
//     keys and a write-lock only on first registration.
//   - Sketch.Merge is bucket-wise addition: associative, commutative,
//     and exact (no resampling), so distributed aggregation is
//     deterministic regardless of merge order.
//   - Sketch.Quantile is deterministic for a fixed observation multiset
//     and within one log-linear bucket (≤ 1/8 relative width above 2^4
//     ns) of the exact percentile.
//
// A nil *Recorder is the disabled state: every method on a nil receiver
// is a no-op (or returns zero), so solver hot paths guard telemetry with
// a single pointer test and stay allocation-free when tracing is off.
package telemetry
