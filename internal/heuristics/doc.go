// Package heuristics attacks the two bi-criteria cases for which the
// paper gives no polynomial algorithm: Communication Homogeneous with
// heterogeneous failure probabilities (left open, conjectured NP-hard in
// Section 4.4) and Fully Heterogeneous (NP-hard by Theorem 7).
//
// Three solver families are provided, in increasing cost and quality:
//
//   - SingleIntervalSweep: the best single-interval mapping over prefix
//     subsets of several processor orderings (the optimal shape on the
//     classes of Lemma 1, and a strong baseline elsewhere);
//   - Greedy: constructive local improvement — start from a feasible
//     mapping and repeatedly apply the best replica addition/removal,
//     split, or merge;
//   - Anneal: simulated annealing over the full interval-mapping search
//     space with repair-based neighborhood moves, with hill-climbing as
//     the zero-temperature special case.
//
// All solvers return the best feasible mapping found; ErrNotFound means
// the search saw no feasible mapping, which (heuristics being incomplete)
// does not prove infeasibility.
//
// # Search state and the move framework
//
// Greedy and Anneal share one search-state representation: a
// mapping.EvalState bound to the problem's cached Evaluator — interval
// ends plus stride-word replica masks, mirroring the exact engine's
// (ends, masks) form — wrapped with per-search scratch in the searcher of
// state.go. Candidate neighbors are expressed as moves (add, remove or
// replace a replica, migrate a replica between intervals, split an
// interval three ways, merge adjacent intervals) applied and undone in
// place; no candidate is ever materialized as a Mapping, and no
// Mapping.Clone happens on the hot path.
//
// Invariants of the move framework:
//
//   - apply/undo must round-trip the search state exactly: for every move
//     kind, apply followed by undo restores the boundary representation —
//     and therefore, EvalState being a pure function of (ends, masks),
//     the cached terms and metrics — bitwise;
//   - every score read from the state is bitwise identical to the legacy
//     clone path (Mapping.Clone + slice mapping.Evaluate of the
//     ascending-id materialization), which is what keeps the delta
//     refactor observationally equivalent to per-candidate re-evaluation;
//   - moves preserve mapping validity whenever their preconditions hold
//     (documented per constructor in state.go); the only transiently
//     invalid states are the empty halves inside the two-step split-new
//     moves, and no metric is read while they last.
//
// Invariants of the solvers: every solver is deterministic for a fixed
// seed and configuration; every long-running solver takes a
// context.Context and returns its best-so-far result alongside a
// cause-wrapping error when canceled. Platform width is unlimited — the
// search state and the beam search track processors in multi-word bitsets
// (internal/bitset), so m > 64 platforms run the same code paths.
package heuristics
