package heuristics

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/workload"
)

// bannedSet builds a bitset over m processors with the given ids set.
func bannedSet(m int, ids ...int) bitset.Set {
	b := bitset.Make(m)
	for _, u := range ids {
		b.Add(u)
	}
	return b
}

// mappingUses reports whether mp assigns any banned processor.
func mappingUses(mp *mapping.Mapping, banned bitset.Set) bool {
	for _, procs := range mp.Alloc {
		for _, u := range procs {
			if banned.Test(u) {
				return true
			}
		}
	}
	return false
}

func TestRepairEvictsBannedReplicas(t *testing.T) {
	p, pl := fig5()
	pr := &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: 22}
	// Two intervals, banned processor in each alloc set.
	start := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0, 1}, {2, 3, 4}},
	}
	banned := bannedSet(pl.NumProcs(), 1, 3)
	res, err := Repair(context.Background(), pr, start, banned, RepairBudget{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mapping.Validate(p.NumStages(), pl.NumProcs()); err != nil {
		t.Fatalf("repaired mapping invalid: %v", err)
	}
	if mappingUses(res.Mapping, banned) {
		t.Fatalf("repaired mapping still uses a banned processor: %v", res.Mapping)
	}
}

func TestRepairRestaffsEmptiedInterval(t *testing.T) {
	p, pl := fig5()
	pr := &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: 22}
	start := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {2, 3}},
	}
	// Interval 0 loses its only replica; free processors exist, so the
	// interval must survive (restaffed), not be merged away.
	banned := bannedSet(pl.NumProcs(), 0)
	res, err := Repair(context.Background(), pr, start, banned, RepairBudget{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mapping.Validate(p.NumStages(), pl.NumProcs()); err != nil {
		t.Fatalf("repaired mapping invalid: %v", err)
	}
	if mappingUses(res.Mapping, banned) {
		t.Fatal("repaired mapping uses the banned processor")
	}
}

func TestRepairMergesWhenNoFreeProcessor(t *testing.T) {
	// 2 stages on 3 processors, all enrolled: banning interval 0's whole
	// replica set leaves no free processor, so the intervals must merge.
	p, pl := fig34()
	// fig34 has m=2; build a start using both.
	start := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {1}},
	}
	pr := &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: 1e18}
	banned := bannedSet(pl.NumProcs(), 0)
	res, err := Repair(context.Background(), pr, start, banned, RepairBudget{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mapping.Validate(p.NumStages(), pl.NumProcs()); err != nil {
		t.Fatalf("repaired mapping invalid: %v", err)
	}
	if got := res.Mapping.NumIntervals(); got != 1 {
		t.Errorf("expected merged single interval, got %d intervals", got)
	}
	if mappingUses(res.Mapping, banned) {
		t.Fatal("repaired mapping uses the banned processor")
	}
}

func TestRepairAllBanned(t *testing.T) {
	p, pl := fig34()
	start := mapping.NewSingleInterval(p.NumStages(), []int{0, 1})
	pr := &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: 1e18}
	banned := bannedSet(pl.NumProcs(), 0, 1)
	_, err := Repair(context.Background(), pr, start, banned, RepairBudget{})
	if !errors.Is(err, ErrNoAliveProcs) {
		t.Fatalf("expected ErrNoAliveProcs, got %v", err)
	}
}

// TestRepairClimbsBackToFeasibility: kill the replicas that kept FP under
// the bound and check the repair rounds re-replicate to restore it.
func TestRepairRestoresFeasibility(t *testing.T) {
	p, pl := fig5()
	pr := &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: 22}
	g, err := Greedy(context.Background(), pr)
	if err != nil {
		t.Fatal(err)
	}
	// Ban two processors of the greedy solution.
	var hit []int
	for _, procs := range g.Mapping.Alloc {
		for _, u := range procs {
			if len(hit) < 2 {
				hit = append(hit, u)
			}
		}
	}
	banned := bannedSet(pl.NumProcs(), hit...)
	res, err := Repair(context.Background(), pr, g.Mapping, banned, RepairBudget{})
	if err != nil {
		t.Fatal(err)
	}
	if !pr.feasible(res.Metrics) {
		t.Errorf("repair left the mapping infeasible: %+v (bound %g)", res.Metrics, pr.Bound)
	}
	if mappingUses(res.Mapping, banned) {
		t.Fatal("repaired mapping uses a banned processor")
	}
}

// Repair must be a pure function of (problem, start, banned, budget).
func TestRepairDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := workload.Random(rng, platform.FullyHeterogeneous, 8, 20)
	pr := &Problem{Pipe: inst.Pipeline, Plat: inst.Platform, Goal: MinFP, Bound: 1e18}
	g, err := Greedy(context.Background(), pr)
	if err != nil {
		t.Fatal(err)
	}
	banned := bannedSet(20, g.Mapping.Alloc[0][0])
	a, err := Repair(context.Background(), pr, g.Mapping, banned, RepairBudget{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Repair(context.Background(), pr, g.Mapping, banned, RepairBudget{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics {
		t.Fatalf("repair metrics differ across identical runs: %+v vs %+v", a.Metrics, b.Metrics)
	}
	if a.Mapping.String() != b.Mapping.String() {
		t.Fatalf("repair mappings differ across identical runs:\n%v\n%v", a.Mapping, b.Mapping)
	}
}
