package heuristics

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/frontier"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// fig5 builds the paper's Figure 5 instance (1 slow reliable + 10 fast
// unreliable processors).
func fig5() (*pipeline.Pipeline, *platform.Platform) {
	p := pipeline.MustNew([]float64{1, 100}, []float64{10, 1, 0})
	speeds := []float64{1}
	fps := []float64{0.1}
	for i := 0; i < 10; i++ {
		speeds = append(speeds, 100)
		fps = append(fps, 0.8)
	}
	pl, err := platform.NewCommHomogeneous(speeds, fps, 1)
	if err != nil {
		panic(err)
	}
	return p, pl
}

func fig34() (*pipeline.Pipeline, *platform.Platform) {
	p := pipeline.MustNew([]float64{2, 2}, []float64{100, 100, 100})
	pl, err := platform.NewFullyHeterogeneous(
		[]float64{1, 1}, []float64{0.5, 0.5},
		[][]float64{{0, 100}, {100, 0}},
		[]float64{100, 1}, []float64{1, 100})
	if err != nil {
		panic(err)
	}
	return p, pl
}

// TestSweepFig5 reproduces the paper's single-interval bound: under L=22
// the best single interval is two fast processors with FP 0.64.
func TestSweepFig5(t *testing.T) {
	p, pl := fig5()
	pr := &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: 22}
	res, err := SingleIntervalSweep(pr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Metrics.FailureProb-0.64) > 1e-12 {
		t.Errorf("sweep FP = %g, want 0.64 (paper's one-interval bound)", res.Metrics.FailureProb)
	}
}

// TestGreedyFig5 is experiment E2's core claim: greedy splitting discovers
// the paper's two-interval optimum FP = 1 − 0.9·(1−0.8^10) ≈ 0.186 < 0.2.
func TestGreedyFig5(t *testing.T) {
	p, pl := fig5()
	pr := &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: 22}
	res, err := Greedy(context.Background(), pr)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (1-0.1)*(1-math.Pow(0.8, 10))
	if math.Abs(res.Metrics.FailureProb-want) > 1e-12 {
		t.Errorf("greedy FP = %g, want %g (two-interval optimum)", res.Metrics.FailureProb, want)
	}
	if !leqTol(res.Metrics.Latency, 22) {
		t.Errorf("latency %g exceeds bound 22", res.Metrics.Latency)
	}
	if res.Mapping.NumIntervals() != 2 {
		t.Errorf("mapping has %d intervals, want 2: %v", res.Mapping.NumIntervals(), res.Mapping)
	}
}

// TestGreedyFig34 checks the latency goal on the fully heterogeneous
// motivating example: the split mapping of latency 7 must be found.
func TestGreedyFig34(t *testing.T) {
	p, pl := fig34()
	pr := &Problem{Pipe: p, Plat: pl, Goal: MinLatency, Bound: 1} // FP ≤ 1: unconstrained
	res, err := Greedy(context.Background(), pr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Metrics.Latency-7) > 1e-9 {
		t.Errorf("greedy latency = %g, want 7", res.Metrics.Latency)
	}
}

func TestSweepInfeasible(t *testing.T) {
	p, pl := fig5()
	pr := &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: 0.5} // below any latency
	if _, err := SingleIntervalSweep(pr); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	if _, err := Greedy(context.Background(), pr); !errors.Is(err, ErrNotFound) {
		t.Errorf("greedy err = %v, want ErrNotFound", err)
	}
	if _, err := Anneal(context.Background(), pr, AnnealConfig{Iters: 50, Restarts: 1}); !errors.Is(err, ErrNotFound) {
		t.Errorf("anneal err = %v, want ErrNotFound", err)
	}
}

// TestAnnealFig5 checks the annealer also reaches the two-interval optimum
// on the Figure 5 instance (fixed seed for determinism).
func TestAnnealFig5(t *testing.T) {
	p, pl := fig5()
	pr := &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: 22}
	res, err := Anneal(context.Background(), pr, AnnealConfig{Seed: 3, Iters: 4000, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (1-0.1)*(1-math.Pow(0.8, 10))
	if res.Metrics.FailureProb > want+1e-9 {
		t.Errorf("anneal FP = %g, want ≤ %g", res.Metrics.FailureProb, want)
	}
}

// Property: heuristic results are always feasible valid mappings and never
// beat the exhaustive optimum (sanity of both sides).
func TestHeuristicsNeverBeatExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		m := 2 + rng.Intn(3)
		p := pipeline.Random(rng, n, 1, 5, 1, 5)
		pl := platform.RandomCommHomogeneous(rng, m, 1, 10, 0.05, 0.95, 1+rng.Float64()*2)
		L := 2 + rng.Float64()*30
		pr := &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: L}

		ex, exErr := exact.MinFPUnderLatency(p, pl, L, exact.Options{})
		for _, solve := range []func() (Result, error){
			func() (Result, error) { return SingleIntervalSweep(pr) },
			func() (Result, error) { return Greedy(context.Background(), pr) },
			func() (Result, error) {
				return Anneal(context.Background(), pr, AnnealConfig{Seed: seed, Iters: 300, Restarts: 2})
			},
		} {
			res, err := solve()
			if err != nil {
				continue // heuristics may miss feasible mappings
			}
			if exErr != nil {
				return false // heuristic found a mapping where exact says none exists
			}
			if err := res.Mapping.Validate(n, m); err != nil {
				return false
			}
			if !leqTol(res.Metrics.Latency, L) {
				return false
			}
			if res.Metrics.FailureProb < ex.Metrics.FailureProb-1e-9 {
				return false // heuristic "beat" the exact optimum: a bug
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGreedyDominatesSweep: greedy starts from the sweep's solution, so it
// can only be at least as good.
func TestGreedyDominatesSweep(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 2 + rng.Intn(5)
		p := pipeline.Random(rng, n, 1, 5, 1, 5)
		pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.05, 0.95, 1, 20)
		L := 2 + rng.Float64()*40
		pr := &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: L}
		sweep, errS := SingleIntervalSweep(pr)
		greedy, errG := Greedy(context.Background(), pr)
		if errS != nil {
			return true // nothing to compare
		}
		if errG != nil {
			return false // greedy must succeed whenever the sweep does
		}
		return greedy.Metrics.FailureProb <= sweep.Metrics.FailureProb+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGreedyMatchesExactOften: on a fixed panel of small open-case
// instances (CommHom + FailureHet), greedy finds the exhaustive optimum in
// the vast majority of cases. Deterministic: fixed seeds.
func TestGreedyMatchesExactOften(t *testing.T) {
	matches, total := 0, 0
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(2)
		m := 3 + rng.Intn(2)
		p := pipeline.Random(rng, n, 1, 5, 1, 5)
		pl := platform.RandomCommHomogeneous(rng, m, 1, 10, 0.05, 0.95, 1)
		L := 5 + rng.Float64()*20
		pr := &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: L}
		ex, err := exact.MinFPUnderLatency(p, pl, L, exact.Options{})
		if err != nil {
			continue
		}
		total++
		res, err := Greedy(context.Background(), pr)
		if err != nil {
			continue
		}
		if res.Metrics.FailureProb <= ex.Metrics.FailureProb+1e-9 {
			matches++
		}
	}
	if total == 0 {
		t.Skip("no feasible instances in panel")
	}
	if matches*2 < total {
		t.Errorf("greedy matched exact on %d/%d instances, want ≥ half", matches, total)
	}
}

func TestHillClimbFeasibleAndValid(t *testing.T) {
	p, pl := fig5()
	pr := &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: 30}
	res, err := HillClimb(context.Background(), pr, AnnealConfig{Seed: 7, Iters: 1500, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mapping.Validate(2, 11); err != nil {
		t.Fatalf("invalid mapping: %v", err)
	}
	if !leqTol(res.Metrics.Latency, 30) {
		t.Errorf("latency %g exceeds 30", res.Metrics.Latency)
	}
}

func TestAnnealMinLatencyGoal(t *testing.T) {
	p, pl := fig34()
	pr := &Problem{Pipe: p, Plat: pl, Goal: MinLatency, Bound: 1}
	res, err := Anneal(context.Background(), pr, AnnealConfig{Seed: 11, Iters: 3000, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Metrics.Latency-7) > 1e-9 {
		t.Errorf("anneal latency = %g, want 7", res.Metrics.Latency)
	}
}

// TestAnnealRespectsFPConstraint: with a binding FP bound the annealer
// returns only mappings within it.
func TestAnnealRespectsFPConstraint(t *testing.T) {
	p, pl := fig5()
	pr := &Problem{Pipe: p, Plat: pl, Goal: MinLatency, Bound: 0.2}
	res, err := Anneal(context.Background(), pr, AnnealConfig{Seed: 5, Iters: 4000, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.FailureProb > 0.2+1e-12 {
		t.Errorf("FP %g exceeds bound 0.2", res.Metrics.FailureProb)
	}
	// The known two-interval mapping achieves latency 22 at FP < 0.2, so
	// the annealer must do at least roughly that well.
	if res.Metrics.Latency > 22+1e-9 {
		t.Errorf("latency = %g, want ≤ 22", res.Metrics.Latency)
	}
}

func TestParetoSearchFrontSane(t *testing.T) {
	p, pl := fig5()
	pr := &Problem{Pipe: p, Plat: pl}
	front, err := ParetoSearch(context.Background(), pr, AnnealConfig{Seed: 2, Iters: 2000, Restarts: 3})
	if err != nil {
		t.Fatalf("uncanceled ParetoSearch reported %v", err)
	}
	if front.Len() < 3 {
		t.Fatalf("front has %d points, want several", front.Len())
	}
	es := front.Entries()
	for i := 1; i < len(es); i++ {
		if es[i].Metrics.Latency <= es[i-1].Metrics.Latency ||
			es[i].Metrics.FailureProb >= es[i-1].Metrics.FailureProb {
			t.Fatal("archive front violates Pareto invariant")
		}
	}
	// Every archived mapping must evaluate to its recorded metrics.
	for _, e := range es {
		met, err := mapping.Evaluate(p, pl, e.Mapping)
		if err != nil {
			t.Fatalf("archived mapping invalid: %v", err)
		}
		if math.Abs(met.Latency-e.Metrics.Latency) > 1e-9 {
			t.Fatal("archived metrics do not match mapping")
		}
	}
}

// TestRandomStateValid: the annealer's random initial states are always
// valid mappings.
func TestRandomStateValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		p := pipeline.Uniform(n, 1, 1)
		pl, _ := platform.NewFullyHomogeneous(m, 1, 1, 0.5)
		pr := &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: math.Inf(1)}
		st := randomState(rng, pr)
		return st.Validate(n, m) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRandomMovePreservesValidity: every applicable random move applied to
// a valid search state yields a valid mapping, and undoing it restores the
// previous mapping exactly (the apply/undo round-trip invariant of
// doc.go).
func TestRandomMovePreservesValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(6)
		p := pipeline.Uniform(n, 1, 1)
		pl, _ := platform.NewFullyHomogeneous(m, 1, 1, 0.5)
		pr := &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: math.Inf(1)}
		s, err := newSearcher(pr)
		if err != nil {
			return false
		}
		s.st.Load(randomState(rng, pr))
		for i := 0; i < 30; i++ {
			mv, ok := s.randomMove(rng)
			if !ok {
				continue
			}
			before := s.st.ToMapping().String()
			mv.apply(s)
			if s.st.ToMapping().Validate(n, m) != nil {
				return false
			}
			undo := rng.Intn(2) == 0
			if undo {
				mv.undo(s)
				if s.st.ToMapping().String() != before {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestParetoArchiveSharedWithFront(t *testing.T) {
	p, pl := fig5()
	front := &frontier.Front{}
	pr := &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: math.Inf(1)}
	_, err := Anneal(context.Background(), pr, AnnealConfig{Seed: 9, Iters: 500, Restarts: 1, Archive: front})
	if err != nil {
		t.Fatal(err)
	}
	if front.Len() == 0 {
		t.Error("archive stayed empty")
	}
}
