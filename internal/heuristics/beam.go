package heuristics

import (
	"context"
	"math"
	"sort"
	"time"

	"repro/internal/bitset"
	"repro/internal/mapping"
)

// BeamSearchMinLatency is a scalable heuristic for the open problem of
// latency-minimal interval mappings on Fully Heterogeneous platforms
// (paper §4.1). It runs the Theorem 4 layer dynamic program but over
// *valid* partial interval mappings — tracking the set of processors
// already used — and keeps only the beamWidth lowest-latency partial
// states per stage boundary. With an unbounded beam this would be exact
// (at exponential cost); with a small beam it is polynomial:
// O(n² · beam · m) expansions.
//
// The search uses singleton replica sets (replication cannot lower
// latency); the set of enrolled processors is a multi-word bitset, so
// any platform width is supported. A partial state's cost is the latency
// accumulated up to its cut, excluding the pending outgoing
// communication (charged on expansion, when the next processor is
// known), so states at the same boundary are comparable.
//
// ctx is polled once per stage boundary: on cancellation the search stops
// expanding and finalizes over the complete states it has already reached
// (single-interval completions exist after the first boundary), returning
// that best-so-far mapping alongside an error wrapping the context's
// cause — or just the error when no complete state exists yet.
//
// Like the other solvers of the layer, the winning state is scored
// through the problem's shared evaluator (the Session-cached one when
// routed via internal/core); pr.Goal and pr.Bound are ignored — the beam
// minimizes latency unconstrained.
func BeamSearchMinLatency(ctx context.Context, pr *Problem, beamWidth int) (Result, error) {
	if pr.Recorder != nil {
		defer pr.observeRun("beam", time.Now())
	}
	p, pl := pr.Pipe, pr.Plat
	n, m := p.NumStages(), pl.NumProcs()
	if beamWidth <= 0 {
		beamWidth = 16
	}

	type beamState struct {
		lat      float64
		lastProc int        // processor of the last interval (-1 at the root)
		used     bitset.Set // enrolled processors (any platform width)
		cuts     []int      // first stage of each interval so far
		procs    []int      // processor of each interval so far
	}

	beams := make([][]beamState, n+1)
	beams[0] = []beamState{{lastProc: -1, used: bitset.Make(m)}}

	prune := func(states []beamState) []beamState {
		if len(states) <= beamWidth {
			return states
		}
		sort.Slice(states, func(i, j int) bool { return states[i].lat < states[j].lat })
		return states[:beamWidth]
	}

	done := ctxDone(ctx)
	canceled := false
	for boundary := 0; boundary < n; boundary++ {
		if done != nil {
			select {
			case <-done:
				canceled = true
			default:
			}
			if canceled {
				break
			}
		}
		beams[boundary] = prune(beams[boundary])
		for _, st := range beams[boundary] {
			in := p.InputSize(boundary)
			for u := 0; u < m; u++ {
				if st.used.Test(u) {
					continue
				}
				var comm float64
				if st.lastProc == -1 {
					comm = in / pl.BIn[u]
				} else {
					comm = in / pl.B[st.lastProc][u]
				}
				base := st.lat + comm
				cuts := append(append([]int(nil), st.cuts...), boundary)
				procs := append(append([]int(nil), st.procs...), u)
				used := append(bitset.Set(nil), st.used...)
				used.Add(u)
				for end := boundary; end < n; end++ {
					beams[end+1] = append(beams[end+1], beamState{
						lat:      base + p.Work(boundary, end)/pl.Speed[u],
						lastProc: u,
						used:     used,
						cuts:     cuts,
						procs:    procs,
					})
				}
			}
		}
	}

	final := beams[n]
	if len(final) == 0 {
		if canceled {
			return Result{}, canceledErr(ctx)
		}
		return Result{}, ErrNotFound
	}
	best, bestLat := -1, math.Inf(1)
	for i, st := range final {
		lat := st.lat + p.OutputSize(n-1)/pl.BOut[st.lastProc]
		if lat < bestLat {
			best, bestLat = i, lat
		}
	}
	st := final[best]
	mp := &mapping.Mapping{}
	for i, start := range st.cuts {
		last := n - 1
		if i+1 < len(st.cuts) {
			last = st.cuts[i+1] - 1
		}
		mp.Intervals = append(mp.Intervals, mapping.Interval{First: start, Last: last})
		mp.Alloc = append(mp.Alloc, []int{st.procs[i]})
	}
	ev, err := pr.evaluator()
	if err != nil {
		return Result{}, err
	}
	met, err := ev.EvaluateMapping(mp)
	if err != nil {
		return Result{}, err
	}
	if canceled {
		return Result{Mapping: mp, Metrics: met}, canceledErr(ctx)
	}
	return Result{Mapping: mp, Metrics: met}, nil
}
