package heuristics

import (
	"repro/internal/bitset"
	"repro/internal/mapping"
)

// searcher is the per-search bundle shared by Greedy and Anneal: the
// problem, its cached evaluator, the live search state, and reusable
// scratch (snapshot states, free-processor buffer, split/merge mask rows)
// sized once so the move sweeps run without heap allocations.
type searcher struct {
	pr *Problem
	ev *mapping.Evaluator
	st *mapping.EvalState // the current search state

	m    int
	free []int // reusable unused-processor buffer (ascending ids)
	ids  []int // reusable replica-id buffer (ascending ids)
	// banned, when non-nil, removes processors from the candidate pool:
	// freeProcs never offers them, so no move enrolls one. Repair sets it
	// to the failed set of a fault-injection campaign; the full searches
	// leave it nil.
	banned bitset.Set
	// Greedy's per-class bounded structural candidate lists.
	topSplit, topMerge, topMigrate []rankEntry

	// Scratch replica-set rows for the structural moves. One row per
	// in-flight move is enough: moves are applied one at a time, and the
	// solvers keep winners as state snapshots, never as replayable moves.
	right bitset.Set

	snap   *mapping.EvalState // pre-move snapshot for saturated scoring
	bestSt *mapping.EvalState // best successor found during a sweep
}

func newSearcher(pr *Problem) (*searcher, error) {
	ev, err := pr.evaluator()
	if err != nil {
		return nil, err
	}
	m := ev.NumProcs()
	return &searcher{
		pr:         pr,
		ev:         ev,
		st:         ev.NewState(),
		m:          m,
		free:       make([]int, 0, m),
		ids:        make([]int, 0, m),
		topSplit:   make([]rankEntry, 0, topKSplit),
		topMerge:   make([]rankEntry, 0, topKMerge),
		topMigrate: make([]rankEntry, 0, topKMigrate),
		right:      bitset.Make(m),
		snap:       ev.NewState(),
		bestSt:     ev.NewState(),
	}, nil
}

// freeProcs refills and returns the searcher's buffer of processors not
// enrolled by the current state (and not banned), in ascending id order.
func (s *searcher) freeProcs() []int {
	s.free = s.free[:0]
	used := s.st.Used()
	for u := 0; u < s.m; u++ {
		if used.Test(u) || (s.banned != nil && s.banned.Test(u)) {
			continue
		}
		s.free = append(s.free, u)
	}
	return s.free
}

// replicaIDs refills the searcher's id buffer with interval j's replica
// set in ascending order (a stable snapshot the sweeps can iterate while
// applying and undoing moves on the same interval).
func (s *searcher) replicaIDs(j int) {
	s.ids = s.st.Mask(j).AppendBits(s.ids[:0])
}

// nthProc returns the i-th smallest processor id in mask (i zero-based;
// the caller guarantees i < mask.Count()).
func nthProc(mask bitset.Set, i int) int {
	u := -1
	for k := 0; k <= i; k++ {
		u = mask.NextOne(u + 1)
	}
	return u
}

// moveKind enumerates the neighborhood of the local searches.
type moveKind uint8

const (
	// mvAdd adds the unused processor u to interval j's replica set.
	mvAdd moveKind = iota
	// mvRemove withdraws replica u from interval j (which keeps ≥ 1).
	mvRemove
	// mvReplace swaps replica u of interval j for the unused u2.
	mvReplace
	// mvMigrate moves replica u from interval j (which keeps ≥ 1) to j2.
	mvMigrate
	// mvSplitSelf splits interval j before stage cut, sending the replica
	// set stored in the searcher's scratch row to the right half (a proper
	// non-empty subset of the interval's replicas).
	mvSplitSelf
	// mvSplitNewRight splits interval j before stage cut; the right half
	// is staffed by the single unused processor u, the left keeps the set.
	mvSplitNewRight
	// mvSplitNewLeft splits interval j before stage cut; the left half is
	// staffed by the single unused processor u, the right half inherits
	// the old set (the winning structure of the paper's Figure 5 example).
	mvSplitNewLeft
	// mvMerge fuses intervals j and j+1 (replica sets united). Undo data
	// (the cut and the right half's set) is captured by apply.
	mvMerge
)

// move is one reversible neighborhood step. apply mutates the searcher's
// state and records whatever undo needs (the merge's cut point and right
// replica set go into the searcher's scratch row); undo restores the
// state exactly — see the package invariants in doc.go. A move value is
// only valid between its apply and the next apply on the same searcher,
// because the scratch row is shared.
type move struct {
	kind moveKind
	j    int
	j2   int // mvMigrate: destination interval
	cut  int // splits: first stage of the right half; mvMerge: saved by apply
	u    int
	u2   int // mvReplace: incoming processor
}

func (mv *move) apply(s *searcher) {
	st := s.st
	switch mv.kind {
	case mvAdd:
		st.AddReplica(mv.j, mv.u)
	case mvRemove:
		st.RemoveReplica(mv.j, mv.u)
	case mvReplace:
		st.ReplaceReplica(mv.j, mv.u, mv.u2)
	case mvMigrate:
		st.MoveReplica(mv.j, mv.j2, mv.u)
	case mvSplitSelf:
		st.Split(mv.j, mv.cut, s.right)
	case mvSplitNewRight:
		st.AddReplica(mv.j, mv.u)
		s.right.Zero()
		s.right.Add(mv.u)
		st.Split(mv.j, mv.cut, s.right)
	case mvSplitNewLeft:
		s.right.Copy(st.Mask(mv.j))
		st.Split(mv.j, mv.cut, s.right) // left transiently empty
		st.AddReplica(mv.j, mv.u)
	case mvMerge:
		mv.cut = st.First(mv.j + 1)
		s.right.Copy(st.Mask(mv.j + 1))
		st.Merge(mv.j)
	}
}

func (mv *move) undo(s *searcher) {
	st := s.st
	switch mv.kind {
	case mvAdd:
		st.RemoveReplica(mv.j, mv.u)
	case mvRemove:
		st.AddReplica(mv.j, mv.u)
	case mvReplace:
		st.ReplaceReplica(mv.j, mv.u2, mv.u)
	case mvMigrate:
		st.MoveReplica(mv.j2, mv.j, mv.u)
	case mvSplitSelf:
		st.Merge(mv.j)
	case mvSplitNewRight:
		st.Merge(mv.j)
		st.RemoveReplica(mv.j, mv.u)
	case mvSplitNewLeft:
		st.RemoveReplica(mv.j, mv.u) // left transiently empty
		st.Merge(mv.j)
	case mvMerge:
		st.Split(mv.j, mv.cut, s.right)
	}
}

// setSplitSelfRight loads the scratch row with the canonical self-split
// right half of interval j: the ⌈k/2⌉ highest replica ids (the ascending-
// order analogue of the legacy Alloc[k/2:] split).
func (s *searcher) setSplitSelfRight(j int) {
	mask := s.st.Mask(j)
	k := mask.Count()
	s.right.Zero()
	skip := k / 2
	i := 0
	mask.ForEach(func(u int) bool {
		if i >= skip {
			s.right.Add(u)
		}
		i++
		return true
	})
}

// score returns the current state's metrics plus the feasibility verdict.
// When the test hook is installed it cross-checks the incremental metrics
// against the legacy clone-path evaluation (see reference_test.go).
func (s *searcher) score() (mapping.Metrics, bool) {
	met := s.st.Metrics()
	if testScoreCheck != nil {
		testScoreCheck(s.pr, s.st, met)
	}
	return met, s.pr.feasible(met)
}

// testScoreCheck, when non-nil (tests only), receives every metric the
// searchers read from the incremental state, so the equivalence suite can
// assert bitwise identity with the legacy Clone-and-Evaluate path at
// every single scoring point of a search.
var testScoreCheck func(*Problem, *mapping.EvalState, mapping.Metrics)
