package heuristics

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/mapping"
)

// Warm-restart repair: instead of solving the instance from scratch after
// a processor failure, Repair loads the currently deployed mapping into
// the shared incremental mapping.EvalState, evicts the dead replicas in
// place (restaffing or merging intervals that lost their whole replica
// set), and runs a small, bounded number of best-improvement point-move
// rounds that never enroll a banned processor. The result is valid by
// construction and excludes every banned processor; it is returned even
// when the problem's bound can no longer be met (the caller grades the
// violation), because a degraded-but-running mapping beats none.

// RepairBudget bounds the warm repair.
type RepairBudget struct {
	// Rounds caps the best-improvement point-move rounds after eviction
	// (default 16). Each round sweeps add/remove/replace/migrate moves
	// and commits the single best strictly-improving one, stopping early
	// at a local optimum, so the repair cost is at most rounds × one
	// point sweep — warm-restart fast, never a full solve. The default
	// leaves room to walk back from a catastrophic failure (e.g. shed
	// most of a big replica set to restore a latency bound) while a
	// typical single-crash repair converges in two or three rounds.
	Rounds int
}

func (b RepairBudget) rounds() int {
	if b.Rounds <= 0 {
		return 16
	}
	return b.Rounds
}

// ErrNoAliveProcs is returned when eviction cannot produce any valid
// mapping because every processor is banned.
var ErrNoAliveProcs = fmt.Errorf("heuristics: repair: no alive processor left")

// Repair warm-restarts the search from start under the banned-processor
// set: dead replicas are evicted in place on the incremental state,
// intervals that lost every replica are restaffed with the best free
// alive processor (or merged into a neighbor when none is free), and up
// to budget.Rounds point-move improvement rounds then re-optimize the
// survivor placement. Moves never enroll banned processors.
//
// The returned mapping is always a valid interval mapping that uses no
// banned processor, even when it violates the problem's bound — callers
// check feasibility themselves and report the violation. The error is
// non-nil only when no valid mapping exists at all (every processor
// banned) or when ctx fired mid-repair (the best state reached so far is
// still returned; grade it partial).
//
// Repair is deterministic: sweeps enumerate moves in a fixed order and
// ties keep the earlier candidate.
func Repair(ctx context.Context, pr *Problem, start *mapping.Mapping, banned bitset.Set, budget RepairBudget) (Result, error) {
	s, err := newSearcher(pr)
	if err != nil {
		return Result{}, err
	}
	s.banned = banned
	s.st.Load(start)
	if err := s.evict(); err != nil {
		return Result{}, err
	}
	done := ctxDone(ctx)
	met, _ := s.score()
	for r := 0; r < budget.rounds(); r++ {
		if fired(done) {
			return s.result(met), canceledErr(ctx)
		}
		improved, next := s.repairRound(met, done)
		if !improved {
			break
		}
		met = next
	}
	if fired(done) {
		return s.result(met), canceledErr(ctx)
	}
	return s.result(met), nil
}

// evict removes every banned replica from the state in place, then fixes
// intervals left empty: each is restaffed with the statically best free
// alive processor, or merged into a neighbor when no free processor
// remains. Returns ErrNoAliveProcs when eviction cannot end in a valid
// mapping.
func (s *searcher) evict() error {
	st := s.st
	for j := 0; j < st.NumIntervals(); j++ {
		s.replicaIDs(j)
		for _, u := range s.ids {
			if s.banned != nil && s.banned.Test(u) {
				st.RemoveReplica(j, u)
			}
		}
	}
	// Restaff or merge empty intervals left to right. Merging never
	// strands stages (interval counts shrink by fusing neighbors), and
	// each iteration either fixes interval j or reduces the interval
	// count, so the loop terminates.
	for j := 0; j < st.NumIntervals(); {
		if st.Replication(j) > 0 {
			j++
			continue
		}
		if free := s.freeProcs(); len(free) > 0 {
			st.AddReplica(j, s.bestRestaff(free))
			j++
			continue
		}
		switch {
		case st.NumIntervals() == 1:
			return ErrNoAliveProcs
		case j < st.NumIntervals()-1:
			st.Merge(j)
		default:
			st.Merge(j - 1)
			j--
		}
	}
	return nil
}

// bestRestaff picks the restaffing processor from the free pool by a
// static preference — no metric read, because other intervals may still
// be transiently empty during eviction. Minimizing FP favors reliability
// weighted by speed (the hybrid order); minimizing latency favors speed.
func (s *searcher) bestRestaff(free []int) int {
	pl := s.pr.Plat
	best, bestScore := free[0], math.Inf(-1)
	for _, u := range free {
		var sc float64
		if s.pr.Goal == MinFP {
			fp := pl.FailProb[u]
			if fp <= 0 {
				return u
			}
			sc = -math.Log(fp) * pl.Speed[u]
		} else {
			sc = pl.Speed[u]
		}
		if sc > bestScore {
			best, bestScore = u, sc
		}
	}
	return best
}

// violation measures how far metrics exceed the problem's bound (≤ 0 when
// feasible).
func (pr *Problem) violation(met mapping.Metrics) float64 {
	if pr.Goal == MinFP {
		return met.Latency - pr.Bound
	}
	return met.FailureProb - pr.Bound
}

// repairBetter orders repair candidates: feasible beats infeasible, among
// infeasible states the smaller bound violation wins, and otherwise the
// problem's usual objective ordering applies. This is what lets a repair
// climb back toward feasibility after a failure pushed the deployed
// mapping over its bound.
func repairBetter(pr *Problem, a, b mapping.Metrics) bool {
	fa, fb := pr.feasible(a), pr.feasible(b)
	if fa != fb {
		return fa
	}
	if !fa {
		va, vb := pr.violation(a), pr.violation(b)
		if va != vb {
			return va < vb
		}
	}
	return pr.better(a, b)
}

// repairRound sweeps the point-move neighborhood (add, remove, replace,
// migrate — no structural moves, repair must stay cheap) and commits the
// best strictly-improving successor under repairBetter. Cancellation is
// polled per candidate.
func (s *searcher) repairRound(curMet mapping.Metrics, done <-chan struct{}) (bool, mapping.Metrics) {
	bestMet := curMet
	improved := false
	try := func(mv move) {
		if fired(done) {
			return
		}
		mv.apply(s)
		met := s.st.Metrics()
		if testScoreCheck != nil {
			testScoreCheck(s.pr, s.st, met)
		}
		if repairBetter(s.pr, met, bestMet) {
			bestMet, improved = met, true
			s.bestSt.CopyFrom(s.st)
		}
		mv.undo(s)
	}
	p := s.st.NumIntervals()
	free := s.freeProcs()
	for j := 0; j < p; j++ {
		for _, u := range free {
			try(move{kind: mvAdd, j: j, u: u})
		}
	}
	for j := 0; j < p; j++ {
		if s.st.Replication(j) < 2 {
			continue
		}
		s.replicaIDs(j)
		for _, u := range s.ids {
			try(move{kind: mvRemove, j: j, u: u})
		}
	}
	for j := 0; j < p; j++ {
		s.replicaIDs(j)
		for _, u := range s.ids {
			for _, u2 := range free {
				try(move{kind: mvReplace, j: j, u: u, u2: u2})
			}
		}
	}
	for j := 0; j < p; j++ {
		if s.st.Replication(j) < 2 {
			continue
		}
		s.replicaIDs(j)
		for _, u := range s.ids {
			for j2 := 0; j2 < p; j2++ {
				if j2 != j {
					try(move{kind: mvMigrate, j: j, j2: j2, u: u})
				}
			}
		}
	}
	if improved {
		s.st.CopyFrom(s.bestSt)
	}
	return improved, bestMet
}
