package heuristics

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"time"

	"repro/internal/frontier"
	"repro/internal/mapping"
)

// AnnealConfig tunes the simulated-annealing solver. The zero value is
// replaced by sensible defaults (see the field comments).
type AnnealConfig struct {
	Seed     int64   // RNG seed (default 1)
	Iters    int     // iterations per restart (default 2000)
	Restarts int     // independent restarts (default 4)
	InitTemp float64 // initial temperature on the normalized cost (default 0.3)
	Cooling  float64 // geometric cooling factor per iteration (default so temp ends near 1e-3)
	// Archive, when non-nil, collects every mapping met during the search
	// into a Pareto front (used for trade-off curves).
	Archive *frontier.Front
}

func (c AnnealConfig) withDefaults() AnnealConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Iters <= 0 {
		c.Iters = 2000
	}
	if c.Restarts <= 0 {
		c.Restarts = 4
	}
	if c.InitTemp <= 0 {
		c.InitTemp = 0.3
	}
	if c.Cooling <= 0 || c.Cooling >= 1 {
		// Reach ~1e-3 of InitTemp by the last iteration.
		c.Cooling = math.Pow(1e-3, 1/float64(c.Iters))
	}
	return c
}

// Anneal runs repair-based simulated annealing over the space of interval
// mappings. Infeasible states are admitted during the walk (with a large
// penalty) so the search can cross infeasible ridges; only feasible states
// are recorded. HillClimb is the InitTemp→0 special case.
//
// The walk runs on the shared incremental search state: each drawn move is
// applied in place, scored through the cached per-interval terms, and
// undone when rejected — a mapping is materialized only when it improves
// the best-so-far or survives into the archive, so iterations themselves
// are allocation-free.
//
// The walk polls ctx every few iterations: on cancellation it stops and
// returns the best feasible mapping found so far together with an error
// wrapping the context's cause (or just the error when nothing feasible
// was seen). An uncanceled run is deterministic for a fixed config.
func Anneal(ctx context.Context, pr *Problem, cfg AnnealConfig) (Result, error) {
	if pr.Recorder != nil {
		defer pr.observeRun("anneal", time.Now())
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	done := ctxDone(ctx)
	canceled := false

	s, err := newSearcher(pr)
	if err != nil {
		return Result{}, err
	}

	best := Result{}
	found := false
	record := func(met mapping.Metrics) {
		if cfg.Archive != nil && cfg.Archive.WouldKeep(met) {
			cfg.Archive.InsertOwned(met, s.st.ToMapping(), 0)
		}
		if !pr.feasible(met) {
			return
		}
		if !found || pr.better(met, best.Metrics) {
			best = Result{Mapping: s.st.ToMapping(), Metrics: met}
			found = true
		}
	}

	// Normalization scale for latency costs: the single-interval latency
	// on the fastest processor (a reasonable magnitude for the instance).
	ref := mapping.NewSingleInterval(pr.Pipe.NumStages(), []int{pr.Plat.FastestProc()})
	refMet, ok := pr.evaluate(ref)
	if !ok {
		return Result{}, ErrNotFound
	}
	latScale := math.Max(refMet.Latency, 1e-12)

	cost := func(met mapping.Metrics) float64 {
		if pr.Goal == MinFP {
			if leqTol(met.Latency, pr.Bound) {
				return met.FailureProb
			}
			return 2 + (met.Latency-pr.Bound)/latScale // any feasible beats any infeasible
		}
		if met.FailureProb <= pr.Bound+1e-12 {
			return met.Latency / latScale
		}
		return 2 + refMet.Latency/latScale + (met.FailureProb - pr.Bound)
	}

restarts:
	for r := 0; r < cfg.Restarts; r++ {
		s.st.Load(randomState(rng, pr))
		curMet, _ := s.score()
		record(curMet)
		curCost := cost(curMet)
		temp := cfg.InitTemp
		for it := 0; it < cfg.Iters; it++ {
			if done != nil && it&31 == 0 {
				select {
				case <-done:
					canceled = true
					break restarts
				default:
				}
			}
			mv, ok := s.randomMove(rng)
			if !ok {
				temp *= cfg.Cooling
				continue
			}
			mv.apply(s)
			nextMet, _ := s.score()
			record(nextMet)
			nextCost := cost(nextMet)
			if accept(rng, curCost, nextCost, temp) {
				curMet, curCost = nextMet, nextCost
			} else {
				mv.undo(s)
			}
			temp *= cfg.Cooling
		}
	}
	if canceled {
		if !found {
			return Result{}, canceledErr(ctx)
		}
		return best, canceledErr(ctx)
	}
	if !found {
		return Result{}, ErrNotFound
	}
	return best, nil
}

// HillClimb is Anneal at zero temperature: only strictly improving moves
// are accepted. It keeps the restarts/iterations of cfg.
func HillClimb(ctx context.Context, pr *Problem, cfg AnnealConfig) (Result, error) {
	cfg = cfg.withDefaults()
	cfg.InitTemp = 1e-300 // effectively zero: exp(-Δ/T) vanishes for any Δ>0
	cfg.Cooling = 0.999999
	return Anneal(ctx, pr, cfg)
}

func accept(rng *rand.Rand, cur, next, temp float64) bool {
	if next <= cur {
		return true
	}
	if temp <= 0 {
		return false
	}
	return rng.Float64() < math.Exp(-(next-cur)/temp)
}

// randomState draws a random valid interval mapping: a random number of
// intervals (biased toward few), one random distinct processor per
// interval, then each remaining processor joins a random interval with
// probability ½.
func randomState(rng *rand.Rand, pr *Problem) *mapping.Mapping {
	n, m := pr.Pipe.NumStages(), pr.Plat.NumProcs()
	maxP := n
	if m < maxP {
		maxP = m
	}
	p := 1
	for p < maxP && rng.Float64() < 0.35 {
		p++
	}
	cuts := rng.Perm(n - 1)
	if len(cuts) > p-1 {
		cuts = cuts[:p-1]
	} else {
		p = len(cuts) + 1
	}
	sortInts(cuts)
	mp := &mapping.Mapping{}
	start := 0
	for j := 0; j < p; j++ {
		end := n - 1
		if j < p-1 {
			end = cuts[j]
		}
		mp.Intervals = append(mp.Intervals, mapping.Interval{First: start, Last: end})
		start = end + 1
	}
	procs := rng.Perm(m)
	mp.Alloc = make([][]int, p)
	for j := 0; j < p; j++ {
		mp.Alloc[j] = []int{procs[j]}
	}
	for _, u := range procs[p:] {
		if rng.Float64() < 0.5 {
			j := rng.Intn(p)
			mp.Alloc[j] = append(mp.Alloc[j], u)
		}
	}
	return mp
}

// randomMove draws a random single-move variation of the current state,
// mirroring the legacy neighbor distribution (add, remove, migrate,
// split, merge drawn uniformly; inapplicable draws report ok=false and
// the caller retries next iteration). The returned move has not been
// applied.
func (s *searcher) randomMove(rng *rand.Rand) (move, bool) {
	st := s.st
	p := st.NumIntervals()
	free := s.freeProcs()
	switch rng.Intn(5) {
	case 0: // add an unused processor to a random interval
		if len(free) == 0 {
			return move{}, false
		}
		j := rng.Intn(p)
		return move{kind: mvAdd, j: j, u: free[rng.Intn(len(free))]}, true
	case 1: // remove a random replica
		j := rng.Intn(p)
		k := st.Replication(j)
		if k < 2 {
			return move{}, false
		}
		return move{kind: mvRemove, j: j, u: nthProc(st.Mask(j), rng.Intn(k))}, true
	case 2: // move a replica to another interval
		if p < 2 {
			return move{}, false
		}
		j := rng.Intn(p)
		k := st.Replication(j)
		if k < 2 {
			return move{}, false
		}
		j2 := rng.Intn(p)
		if j2 == j {
			return move{}, false
		}
		return move{kind: mvMigrate, j: j, j2: j2, u: nthProc(st.Mask(j), rng.Intn(k))}, true
	case 3: // split a random interval at a random point
		j := rng.Intn(p)
		length := st.End(j) - st.First(j) + 1
		if length < 2 {
			return move{}, false
		}
		cut := st.First(j) + 1 + rng.Intn(length-1)
		if st.Replication(j) >= 2 && (len(free) == 0 || rng.Float64() < 0.5) {
			s.setSplitSelfRight(j)
			return move{kind: mvSplitSelf, j: j, cut: cut}, true
		}
		if len(free) == 0 {
			return move{}, false
		}
		u := free[rng.Intn(len(free))]
		if rng.Float64() < 0.5 {
			return move{kind: mvSplitNewLeft, j: j, cut: cut, u: u}, true
		}
		return move{kind: mvSplitNewRight, j: j, cut: cut, u: u}, true
	default: // merge two adjacent intervals
		if p < 2 {
			return move{}, false
		}
		return move{kind: mvMerge, j: rng.Intn(p - 1)}, true
	}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ParetoSearch runs Anneal once per goal direction with an archive and
// returns the combined Pareto front of all mappings encountered. The
// bounds are set wide open so the archive explores the whole trade-off
// curve.
//
// Cancellation is propagated: a canceled search returns the front holding
// whatever the walks archived before ctx fired together with an error
// wrapping the context's cause, so callers can grade the front partial
// (the Session surfaces this as core.Partial). ErrNotFound from a walk is
// not an error of the front — an empty front speaks for itself.
func ParetoSearch(ctx context.Context, pr *Problem, cfg AnnealConfig) (*frontier.Front, error) {
	front := &frontier.Front{}
	cfg = cfg.withDefaults()
	cfg.Archive = front
	pr.evaluator() // build once so the two problem copies share it
	wide := *pr
	wide.Goal = MinFP
	wide.Bound = math.Inf(1)
	_, err1 := Anneal(ctx, &wide, cfg)
	wide2 := *pr
	wide2.Goal = MinLatency
	wide2.Bound = 1
	cfg.Seed++
	_, err2 := Anneal(ctx, &wide2, cfg)
	for _, err := range []error{err1, err2} {
		if err != nil && !errors.Is(err, ErrNotFound) {
			return front, err
		}
	}
	return front, nil
}
