package heuristics

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

func TestBeamSearchFig34(t *testing.T) {
	p, pl := fig34()
	res, err := BeamSearchMinLatency(context.Background(), &Problem{Pipe: p, Plat: pl}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Metrics.Latency-7) > 1e-9 {
		t.Errorf("beam latency = %g, want 7", res.Metrics.Latency)
	}
	if err := res.Mapping.Validate(2, 2); err != nil {
		t.Fatalf("invalid mapping: %v", err)
	}
}

// Property: the beam result is a valid interval mapping whose latency is
// never below the exact optimum, and a generous beam finds the optimum on
// small instances.
func TestBeamSearchAgainstExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		p := pipeline.Random(rng, n, 1, 10, 1, 10)
		pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0, 1, 1, 20)
		res, err := BeamSearchMinLatency(context.Background(), &Problem{Pipe: p, Plat: pl}, 64) // generous beam: exact here
		if err != nil {
			return false
		}
		if res.Mapping.Validate(n, m) != nil {
			return false
		}
		ex, err := exact.MinLatencyInterval(p, pl, exact.Options{})
		if err != nil {
			return false
		}
		return math.Abs(res.Metrics.Latency-ex.Metrics.Latency) <= 1e-9*math.Max(1, ex.Metrics.Latency)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: widening the beam never worsens the result.
func TestBeamMonotoneInWidth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := 2 + rng.Intn(4)
		p := pipeline.Random(rng, n, 1, 10, 1, 10)
		pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0, 1, 1, 20)
		narrow, err1 := BeamSearchMinLatency(context.Background(), &Problem{Pipe: p, Plat: pl}, 2)
		wide, err2 := BeamSearchMinLatency(context.Background(), &Problem{Pipe: p, Plat: pl}, 32)
		if err1 != nil || err2 != nil {
			return false
		}
		return wide.Metrics.Latency <= narrow.Metrics.Latency+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBeamSearchDefaultsAndErrors(t *testing.T) {
	p := pipeline.Uniform(3, 1, 1)
	pl, _ := platform.NewFullyHomogeneous(3, 1, 1, 0.1)
	if _, err := BeamSearchMinLatency(context.Background(), &Problem{Pipe: p, Plat: pl}, 0); err != nil {
		t.Errorf("default beam width failed: %v", err)
	}
	// n > m still works (intervals are mandatory).
	p2 := pipeline.Uniform(5, 1, 1)
	pl2, _ := platform.NewFullyHomogeneous(2, 1, 1, 0.1)
	res, err := BeamSearchMinLatency(context.Background(), &Problem{Pipe: p2, Plat: pl2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mapping.Validate(5, 2); err != nil {
		t.Fatalf("invalid mapping: %v", err)
	}
}

func TestBeamScalesToLargeInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := pipeline.Random(rng, 32, 1, 10, 1, 10)
	pl := platform.RandomFullyHeterogeneous(rng, 48, 1, 10, 0, 1, 1, 20)
	res, err := BeamSearchMinLatency(context.Background(), &Problem{Pipe: p, Plat: pl}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mapping.Validate(32, 48); err != nil {
		t.Fatalf("invalid mapping at scale: %v", err)
	}
}
