package heuristics

import (
	"context"
	"time"

	"repro/internal/mapping"
)

// topKSplit, topKMerge and topKMigrate bound, per move class, the number
// of structural candidates that receive the expensive saturated lookahead
// per improvement round. Every structural candidate is still scored raw
// through the incremental state (cheap); only the most promising of each
// class by that raw score — feasible candidates ranked by objective,
// infeasible ones after them by constraint violation, ties broken by
// enumeration order — are saturated. The legacy sweep saturated every
// candidate, which is what made a full-het m=80 Solve spend ~28s in
// greedy rounds; on small instances (fewer candidates than the class
// quota) the bounded sweep is exhaustive and the policies coincide.
//
// The quota is per class rather than global because the raw score is
// exactly the signal saturation exists to correct: the motivating
// Figure 5 split looks worse than the status quo until the lookahead
// re-replicates the fast half, and a shared list would let raw-neutral
// merges and migrations starve such splits out of the lookahead entirely.
const (
	topKSplit   = 10
	topKMerge   = 4
	topKMigrate = 6
)

// Greedy runs constructive local improvement. It seeds the search with the
// best result of SingleIntervalSweep (plus the full-replication mapping of
// Theorem 1 as an alternative start) and repeatedly applies the best
// improving move among:
//
//   - add an unused processor to an interval's replica set;
//   - remove a replica (keeping at least one per interval);
//   - replace a replica by an unused processor;
//   - split an interval at any point, staffing the new half with an unused
//     processor (on either side) or with half of the old replica set;
//   - merge two adjacent intervals (replica sets united);
//   - move a replica from one interval to another.
//
// Point moves (add/remove/replace) are scored raw; structural moves
// (split/merge/migrate) are scored after *saturation*: a nested greedy
// that re-optimizes replica counts before the comparison. Without the
// lookahead, profitable splits can look worse than the status quo — e.g.
// the paper's Figure 5 instance, where isolating the slow reliable
// processor only pays off once the fast stage is re-replicated tenfold.
// The saturated lookahead is bounded to the per-class raw-best structural
// candidates per round (topKSplit/topKMerge/topKMigrate).
//
// All candidates are scored through the problem's shared incremental
// mapping.EvalState (apply/undo deltas, no Mapping.Clone, zero
// allocations in the sweeps). Cancellation is polled per candidate: a
// canceled search returns the best feasible mapping reached so far
// alongside an error wrapping the context's cause.
func Greedy(ctx context.Context, pr *Problem) (Result, error) {
	if pr.Recorder != nil {
		defer pr.observeRun("greedy", time.Now())
	}
	best, err := seed(pr)
	if err != nil {
		return Result{}, err
	}
	s, err := newSearcher(pr)
	if err != nil {
		return Result{}, err
	}
	done := ctxDone(ctx)
	s.st.Load(best.Mapping)
	cur := s.saturate(done)
	for {
		if fired(done) {
			return s.result(cur), canceledErr(ctx)
		}
		improved, next := s.bestMove(cur, done)
		if !improved {
			if fired(done) {
				// The round was cut short: report the truncation so the
				// caller can grade the answer as partial.
				return s.result(cur), canceledErr(ctx)
			}
			return s.result(cur), nil
		}
		cur = next
	}
}

// result materializes the searcher's current state.
func (s *searcher) result(met mapping.Metrics) Result {
	return Result{Mapping: s.st.ToMapping(), Metrics: met}
}

// fired reports whether the done channel (possibly nil) is closed.
func fired(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// seed returns the best feasible starting point.
func seed(pr *Problem) (Result, error) {
	best, err := SingleIntervalSweep(pr)
	found := err == nil
	// Full replication is the global FP optimum (Theorem 1); it is the
	// natural start when the FP constraint is tight.
	n, m := pr.Pipe.NumStages(), pr.Plat.NumProcs()
	all := make([]int, m)
	for u := range all {
		all[u] = u
	}
	full := mapping.NewSingleInterval(n, all)
	if met, ok := pr.evaluate(full); ok && pr.feasible(met) {
		if !found || pr.better(met, best.Metrics) {
			best = Result{Mapping: full, Metrics: met}
			found = true
		}
	}
	if !found {
		return Result{}, ErrNotFound
	}
	return best, nil
}

// saturate repeatedly applies the best replica-count adjustment — additions
// when minimizing FP, removals when minimizing latency — until none
// improves (or done fires, which stops at the current state). It mutates
// the searcher's state in place and returns its final metrics. It never
// changes which stages form which interval.
func (s *searcher) saturate(done <-chan struct{}) mapping.Metrics {
	curMet, _ := s.score()
	for {
		if fired(done) {
			return curMet
		}
		improved := false
		bestMet := curMet
		var bestMv move
		try := func(mv move) {
			mv.apply(s)
			if met, feas := s.score(); feas && s.pr.better(met, bestMet) {
				bestMet, bestMv, improved = met, mv, true
			}
			mv.undo(s)
		}
		p := s.st.NumIntervals()
		if s.pr.Goal == MinFP {
			free := s.freeProcs()
			for j := 0; j < p; j++ {
				for _, u := range free {
					try(move{kind: mvAdd, j: j, u: u})
				}
			}
		} else {
			for j := 0; j < p; j++ {
				if s.st.Replication(j) < 2 {
					continue
				}
				s.replicaIDs(j)
				for _, u := range s.ids {
					try(move{kind: mvRemove, j: j, u: u})
				}
			}
		}
		if !improved {
			return curMet
		}
		bestMv.apply(s)
		curMet = bestMet
	}
}

// rankKey orders structural candidates for the saturated lookahead:
// feasible before infeasible, then by the value (the objective for
// feasible candidates, the constraint violation for infeasible ones),
// then by enumeration order.
type rankKey struct {
	infeasible bool
	val        float64
	idx        int
}

func (a rankKey) less(b rankKey) bool {
	if a.infeasible != b.infeasible {
		return b.infeasible
	}
	if a.val != b.val {
		return a.val < b.val
	}
	return a.idx < b.idx
}

// rankEntry is one structural candidate retained for saturation.
type rankEntry struct {
	key rankKey
	mv  move
}

// bestMove evaluates the candidate moves from the current state — point
// moves raw, the structuralTopK raw-best structural moves after
// saturation — and commits the best strictly improving feasible
// successor, returning its metrics. When done fires mid-round the
// remaining candidates are skipped, so cancellation latency is one
// candidate evaluation.
func (s *searcher) bestMove(curMet mapping.Metrics, done <-chan struct{}) (bool, mapping.Metrics) {
	bestMet := curMet
	improved := false
	tryRaw := func(mv move) {
		if fired(done) {
			return
		}
		mv.apply(s)
		if met, feas := s.score(); feas && s.pr.better(met, bestMet) {
			bestMet, improved = met, true
			s.bestSt.CopyFrom(s.st)
		}
		mv.undo(s)
	}

	p := s.st.NumIntervals()
	free := s.freeProcs()

	// Phase 1 — point moves, scored raw.
	for j := 0; j < p; j++ {
		for _, u := range free {
			tryRaw(move{kind: mvAdd, j: j, u: u})
		}
	}
	for j := 0; j < p; j++ {
		if s.st.Replication(j) < 2 {
			continue
		}
		s.replicaIDs(j)
		for _, u := range s.ids {
			tryRaw(move{kind: mvRemove, j: j, u: u})
		}
	}
	for j := 0; j < p; j++ {
		s.replicaIDs(j)
		for _, u := range s.ids {
			for _, u2 := range free {
				tryRaw(move{kind: mvReplace, j: j, u: u, u2: u2})
			}
		}
	}

	// Phase 2 — rank every structural move by its raw delta score into the
	// per-class bounded candidate lists.
	topSplit := s.topSplit[:0]
	topMerge := s.topMerge[:0]
	topMigrate := s.topMigrate[:0]
	idx := 0
	offer := func(mv move, top *[]rankEntry, quota int) {
		if fired(done) {
			return
		}
		if mv.kind == mvSplitSelf {
			s.setSplitSelfRight(mv.j)
		}
		mv.apply(s)
		met, feas := s.score()
		mv.undo(s)
		key := rankKey{idx: idx}
		idx++
		if feas {
			key.val = s.pr.objective(met)
		} else {
			key.infeasible = true
			if s.pr.Goal == MinFP {
				key.val = met.Latency - s.pr.Bound
			} else {
				key.val = met.FailureProb - s.pr.Bound
			}
		}
		// Insertion into the bounded, sorted candidate list.
		if len(*top) == quota && !key.less((*top)[len(*top)-1].key) {
			return
		}
		if len(*top) < quota {
			*top = append(*top, rankEntry{})
		}
		i := len(*top) - 1
		for i > 0 && key.less((*top)[i-1].key) {
			(*top)[i] = (*top)[i-1]
			i--
		}
		(*top)[i] = rankEntry{key: key, mv: mv}
	}
	for j := 0; j < p; j++ {
		first, end := s.st.First(j), s.st.End(j)
		canSelf := s.st.Replication(j) >= 2
		for cut := first + 1; cut <= end; cut++ {
			for _, u := range free {
				offer(move{kind: mvSplitNewRight, j: j, cut: cut, u: u}, &topSplit, topKSplit)
				offer(move{kind: mvSplitNewLeft, j: j, cut: cut, u: u}, &topSplit, topKSplit)
			}
			if canSelf {
				offer(move{kind: mvSplitSelf, j: j, cut: cut}, &topSplit, topKSplit)
			}
		}
	}
	for j := 0; j+1 < p; j++ {
		offer(move{kind: mvMerge, j: j}, &topMerge, topKMerge)
	}
	for j := 0; j < p; j++ {
		if s.st.Replication(j) < 2 {
			continue
		}
		s.replicaIDs(j)
		for _, u := range s.ids {
			for j2 := 0; j2 < p; j2++ {
				if j2 != j {
					offer(move{kind: mvMigrate, j: j, j2: j2, u: u}, &topMigrate, topKMigrate)
				}
			}
		}
	}
	s.topSplit, s.topMerge, s.topMigrate = topSplit, topMerge, topMigrate

	// Phase 3 — saturated lookahead on the retained candidates. Saturation
	// can restore feasibility (e.g. dropping replicas after a split under a
	// latency bound), so infeasible raw candidates are saturated too.
	for _, top := range [][]rankEntry{topSplit, topMerge, topMigrate} {
		for i := range top {
			if fired(done) {
				break
			}
			mv := top[i].mv
			s.snap.CopyFrom(s.st)
			if mv.kind == mvSplitSelf {
				s.setSplitSelfRight(mv.j)
			}
			mv.apply(s)
			met := s.saturate(done)
			if s.pr.feasible(met) && s.pr.better(met, bestMet) {
				bestMet, improved = met, true
				s.bestSt.CopyFrom(s.st)
			}
			s.st.CopyFrom(s.snap)
		}
	}

	if improved {
		s.st.CopyFrom(s.bestSt)
	}
	return improved, bestMet
}
