package heuristics

import (
	"context"

	"repro/internal/mapping"
)

// Greedy runs constructive local improvement. It seeds the search with the
// best result of SingleIntervalSweep (plus the full-replication mapping of
// Theorem 1 as an alternative start) and repeatedly applies the best
// improving move among:
//
//   - add an unused processor to an interval's replica set;
//   - remove a replica (keeping at least one per interval);
//   - split an interval at any point, staffing the new half with an unused
//     processor (on either side) or with half of the old replica set;
//   - merge two adjacent intervals (replica sets united);
//   - move a replica from one interval to another.
//
// Structural moves (split/merge/move) are scored after *saturation*: a
// nested greedy that re-optimizes replica counts before the comparison.
// Without the lookahead, profitable splits can look worse than the status
// quo — e.g. the paper's Figure 5 instance, where isolating the slow
// reliable processor only pays off once the fast stage is re-replicated
// tenfold.
// Cancellation is polled between improvement rounds: a canceled search
// returns the best feasible mapping reached so far alongside an error
// wrapping the context's cause.
func Greedy(ctx context.Context, pr *Problem) (Result, error) {
	best, err := seed(pr)
	if err != nil {
		return Result{}, err
	}
	done := ctxDone(ctx)
	best = saturate(pr, best, done)
	for {
		if fired(done) {
			return best, canceledErr(ctx)
		}
		improved, next := bestMove(pr, best, done)
		if !improved {
			if fired(done) {
				// The round was cut short: report the truncation so the
				// caller can grade the answer as partial.
				return best, canceledErr(ctx)
			}
			return best, nil
		}
		best = next
	}
}

// fired reports whether the done channel (possibly nil) is closed.
func fired(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// seed returns the best feasible starting point.
func seed(pr *Problem) (Result, error) {
	best, err := SingleIntervalSweep(pr)
	found := err == nil
	// Full replication is the global FP optimum (Theorem 1); it is the
	// natural start when the FP constraint is tight.
	n, m := pr.Pipe.NumStages(), pr.Plat.NumProcs()
	all := make([]int, m)
	for u := range all {
		all[u] = u
	}
	full := mapping.NewSingleInterval(n, all)
	if met, ok := pr.evaluate(full); ok && pr.feasible(met) {
		if !found || pr.better(met, best.Metrics) {
			best = Result{Mapping: full, Metrics: met}
			found = true
		}
	}
	if !found {
		return Result{}, ErrNotFound
	}
	return best, nil
}

// saturate repeatedly applies the best replica-count adjustment — additions
// when minimizing FP, removals and merges when minimizing latency — until
// none improves (or done fires, which stops at the current state). It
// never changes which stages form which interval except through merges in
// the latency goal.
func saturate(pr *Problem, cur Result, done <-chan struct{}) Result {
	for {
		if fired(done) {
			return cur
		}
		improved := false
		best := cur
		try := func(m *mapping.Mapping) {
			met, ok := pr.evaluate(m)
			if !ok || !pr.feasible(met) {
				return
			}
			if pr.better(met, best.Metrics) {
				best = Result{Mapping: m, Metrics: met}
				improved = true
			}
		}
		cm := cur.Mapping
		if pr.Goal == MinFP {
			for j := range cm.Alloc {
				for _, u := range unusedProcs(cm, pr.Plat.NumProcs()) {
					next := cm.Clone()
					next.Alloc[j] = append(next.Alloc[j], u)
					try(next)
				}
			}
		} else {
			for j := range cm.Alloc {
				if len(cm.Alloc[j]) < 2 {
					continue
				}
				for i := range cm.Alloc[j] {
					next := cm.Clone()
					next.Alloc[j] = append(next.Alloc[j][:i:i], next.Alloc[j][i+1:]...)
					try(next)
				}
			}
		}
		if !improved {
			return cur
		}
		cur = best
	}
}

// bestMove evaluates every candidate move from cur — structural moves
// scored after saturation — and returns the best strictly improving
// feasible successor. When done fires mid-round the remaining candidates
// are skipped, so cancellation latency is one candidate evaluation.
func bestMove(pr *Problem, cur Result, done <-chan struct{}) (bool, Result) {
	best := cur
	improved := false
	tryRaw := func(m *mapping.Mapping) {
		if m == nil || fired(done) {
			return
		}
		met, ok := pr.evaluate(m)
		if !ok || !pr.feasible(met) {
			return
		}
		if pr.better(met, best.Metrics) {
			best = Result{Mapping: m, Metrics: met}
			improved = true
		}
	}
	trySaturated := func(m *mapping.Mapping) {
		if m == nil || fired(done) {
			return
		}
		met, ok := pr.evaluate(m)
		if !ok {
			return
		}
		res := Result{Mapping: m, Metrics: met}
		if pr.feasible(met) {
			res = saturate(pr, res, done)
		} else {
			// Saturation can restore feasibility (e.g. dropping replicas
			// after a split under a latency bound); try from the raw
			// state anyway.
			res = saturate(pr, res, done)
			if !pr.feasible(res.Metrics) {
				return
			}
		}
		if pr.better(res.Metrics, best.Metrics) {
			best = res
			improved = true
		}
	}
	cm := cur.Mapping
	unused := unusedProcs(cm, pr.Plat.NumProcs())

	// Plain replica adjustments.
	for j := range cm.Alloc {
		for _, u := range unused {
			next := cm.Clone()
			next.Alloc[j] = append(next.Alloc[j], u)
			tryRaw(next)
		}
		if len(cm.Alloc[j]) >= 2 {
			for i := range cm.Alloc[j] {
				next := cm.Clone()
				next.Alloc[j] = append(next.Alloc[j][:i:i], next.Alloc[j][i+1:]...)
				tryRaw(next)
			}
		}
	}
	// Splits (saturated lookahead).
	for j, iv := range cm.Intervals {
		for cut := iv.First + 1; cut <= iv.Last; cut++ {
			for _, u := range unused {
				trySaturated(splitNewRight(cm, j, cut, u))
				trySaturated(splitNewLeft(cm, j, cut, u))
			}
			if k := len(cm.Alloc[j]); k >= 2 {
				right := append([]int(nil), cm.Alloc[j][k/2:]...)
				trySaturated(splitSelf(cm, j, cut, right))
			}
		}
	}
	// Merges (saturated lookahead).
	for j := 0; j+1 < len(cm.Intervals); j++ {
		next := cm.Clone()
		next.Intervals[j].Last = next.Intervals[j+1].Last
		next.Alloc[j] = append(next.Alloc[j], next.Alloc[j+1]...)
		next.Intervals = append(next.Intervals[:j+1], next.Intervals[j+2:]...)
		next.Alloc = append(next.Alloc[:j+1], next.Alloc[j+2:]...)
		trySaturated(next)
	}
	// Replica migrations (saturated lookahead).
	for j := range cm.Alloc {
		if len(cm.Alloc[j]) < 2 {
			continue
		}
		for i := range cm.Alloc[j] {
			u := cm.Alloc[j][i]
			for j2 := range cm.Alloc {
				if j2 == j {
					continue
				}
				next := cm.Clone()
				next.Alloc[j] = append(next.Alloc[j][:i:i], next.Alloc[j][i+1:]...)
				next.Alloc[j2] = append(next.Alloc[j2], u)
				trySaturated(next)
			}
		}
	}
	// Replica replacements: swap a used processor for an unused one.
	for j := range cm.Alloc {
		for i := range cm.Alloc[j] {
			for _, u := range unused {
				next := cm.Clone()
				next.Alloc[j][i] = u
				tryRaw(next)
			}
		}
	}
	return improved, best
}

// splitNewRight splits interval j at stage cut; the right half is staffed
// by the single (unused) processor u, the left half keeps the old set.
func splitNewRight(m *mapping.Mapping, j, cut, u int) *mapping.Mapping {
	return splitCommon(m, j, cut, append([]int(nil), m.Alloc[j]...), []int{u})
}

// splitNewLeft splits interval j at stage cut; the left half is staffed by
// the single (unused) processor u, the right half inherits the old set.
// This is the move that isolates a reliable processor on a cheap prefix
// stage (the winning structure of the paper's Figure 5 example).
func splitNewLeft(m *mapping.Mapping, j, cut, u int) *mapping.Mapping {
	return splitCommon(m, j, cut, []int{u}, append([]int(nil), m.Alloc[j]...))
}

// splitSelf splits interval j at stage cut, moving rightProcs (a subset of
// the old replica set) to the right half. Returns nil when the left half
// would be left without processors.
func splitSelf(m *mapping.Mapping, j, cut int, rightProcs []int) *mapping.Mapping {
	var left []int
	for _, u := range m.Alloc[j] {
		keep := true
		for _, r := range rightProcs {
			if u == r {
				keep = false
				break
			}
		}
		if keep {
			left = append(left, u)
		}
	}
	if len(left) == 0 {
		return nil
	}
	return splitCommon(m, j, cut, left, append([]int(nil), rightProcs...))
}

// splitCommon builds the mapping with interval j split at cut and the two
// halves staffed by leftProcs and rightProcs (both owned by the callee).
func splitCommon(m *mapping.Mapping, j, cut int, leftProcs, rightProcs []int) *mapping.Mapping {
	next := m.Clone()
	iv := next.Intervals[j]
	left := mapping.Interval{First: iv.First, Last: cut - 1}
	right := mapping.Interval{First: cut, Last: iv.Last}
	next.Intervals = append(next.Intervals[:j], append([]mapping.Interval{left, right}, next.Intervals[j+1:]...)...)
	next.Alloc = append(next.Alloc[:j], append([][]int{leftProcs, rightProcs}, next.Alloc[j+1:]...)...)
	return next
}

func unusedProcs(m *mapping.Mapping, numProcs int) []int {
	used := make([]bool, numProcs)
	for _, procs := range m.Alloc {
		for _, u := range procs {
			used[u] = true
		}
	}
	var free []int
	for u, b := range used {
		if !b {
			free = append(free, u)
		}
	}
	return free
}
