package heuristics

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/telemetry"
)

// ErrNotFound is returned when the heuristic encountered no mapping
// satisfying the constraint.
var ErrNotFound = errors.New("heuristics: no feasible mapping found")

// canceledErr wraps the context's cancellation cause so callers can test
// with errors.Is(err, context.Canceled) / context.DeadlineExceeded. The
// ctx-aware searches (Anneal, Greedy, BeamSearchMinLatency) return their
// best feasible mapping found so far alongside this error when one exists;
// such a result is usable but carries no optimality claim.
func canceledErr(ctx context.Context) error {
	return fmt.Errorf("heuristics: search canceled: %w", context.Cause(ctx))
}

// ctxDone returns the context's done channel (nil when the context is nil
// or not cancellable, making the select check free).
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// Result mirrors poly.Result.
type Result struct {
	Mapping *mapping.Mapping
	Metrics mapping.Metrics
}

// latencyTol mirrors package poly's threshold slack.
const latencyTol = 1e-9

func leqTol(x, bound float64) bool {
	return x <= bound+latencyTol*math.Max(1, math.Abs(bound))
}

// Goal states which criterion is minimized; the other is constrained.
type Goal int

const (
	// MinFP minimizes failure probability subject to latency ≤ Bound.
	MinFP Goal = iota
	// MinLatency minimizes latency subject to failure probability ≤ Bound.
	MinLatency
)

// Problem is a bi-criteria instance for the heuristic solvers.
type Problem struct {
	Pipe  *pipeline.Pipeline
	Plat  *platform.Platform
	Goal  Goal
	Bound float64 // MaxLatency when Goal == MinFP; MaxFailProb otherwise
	// Eval optionally carries a prebuilt evaluator for (Pipe, Plat) — the
	// Session-cached one when the problem is routed through internal/core —
	// so every solver in the package scores candidates through the shared
	// precomputed state. When nil it is built lazily on first use.
	Eval *mapping.Evaluator
	// Recorder, when non-nil, receives per-run counters and duration
	// sketches for each heuristic family (greedy, anneal, beam). Recording
	// happens once per run, outside the candidate-scoring loop.
	Recorder *telemetry.Recorder
}

// observeRun records one heuristic run (no-op without a recorder): a
// "heuristic_<family>_runs_total" counter and a
// "heuristic_<family>_duration" sketch keyed by the family name.
func (pr *Problem) observeRun(family string, started time.Time) {
	if pr.Recorder == nil {
		return
	}
	pr.Recorder.Counter("heuristic_" + family + "_runs_total").Inc()
	pr.Recorder.Observe("heuristic_"+family+"_duration", time.Since(started))
}

// evaluator returns the problem's evaluator, building and caching it on
// first use. The heuristic solvers run one goroutine per Problem value,
// and copies made after the first call share the cached pointer.
func (pr *Problem) evaluator() (*mapping.Evaluator, error) {
	if pr.Eval == nil {
		ev, err := mapping.NewEvaluator(pr.Pipe, pr.Plat)
		if err != nil {
			return nil, err
		}
		pr.Eval = ev
	}
	return pr.Eval, nil
}

// feasible reports whether metrics satisfy the problem's constraint.
func (pr *Problem) feasible(met mapping.Metrics) bool {
	if pr.Goal == MinFP {
		return leqTol(met.Latency, pr.Bound)
	}
	return met.FailureProb <= pr.Bound+1e-12
}

// objective returns the minimized criterion value.
func (pr *Problem) objective(met mapping.Metrics) float64 {
	if pr.Goal == MinFP {
		return met.FailureProb
	}
	return met.Latency
}

// better reports whether a strictly improves on b for the problem's goal,
// breaking ties with the secondary criterion.
func (pr *Problem) better(a, b mapping.Metrics) bool {
	oa, ob := pr.objective(a), pr.objective(b)
	if oa != ob {
		return oa < ob
	}
	if pr.Goal == MinFP {
		return a.Latency < b.Latency
	}
	return a.FailureProb < b.FailureProb
}

// evaluate scores a mapping through the problem's cached evaluator (the
// legacy per-call path rebuilt the platform dispatch on every candidate),
// returning ok=false on invalid mappings or instances.
func (pr *Problem) evaluate(m *mapping.Mapping) (mapping.Metrics, bool) {
	ev, err := pr.evaluator()
	if err != nil {
		return mapping.Metrics{}, false
	}
	met, err := ev.EvaluateMapping(m)
	if err != nil {
		return mapping.Metrics{}, false
	}
	return met, true
}

// SingleIntervalSweep evaluates whole-pipeline single-interval mappings
// over all prefixes of three processor orderings — by reliability, by
// speed, and by a reliability-per-latency hybrid — plus every singleton
// processor, and returns the best feasible one.
//
// On Fully Homogeneous and CommHom+FailureHom platforms this sweep
// contains the provably optimal mapping (Lemma 1 plus the exchange
// arguments of Theorems 5–6), so the heuristic degrades gracefully into
// the exact algorithm on the easy classes.
func SingleIntervalSweep(pr *Problem) (Result, error) {
	n := pr.Pipe.NumStages()
	m := pr.Plat.NumProcs()
	best := Result{}
	found := false
	consider := func(procs []int) {
		mp := mapping.NewSingleInterval(n, procs)
		met, ok := pr.evaluate(mp)
		if !ok || !pr.feasible(met) {
			return
		}
		if !found || pr.better(met, best.Metrics) {
			best = Result{Mapping: mp, Metrics: met}
			found = true
		}
	}
	orders := [][]int{
		pr.Plat.ProcsByReliabilityDesc(),
		pr.Plat.ProcsBySpeedDesc(),
		hybridOrder(pr.Plat),
	}
	for _, order := range orders {
		for k := 1; k <= m; k++ {
			consider(order[:k])
		}
	}
	for u := 0; u < m; u++ {
		consider([]int{u})
	}
	if !found {
		return Result{}, ErrNotFound
	}
	return best, nil
}

// hybridOrder sorts processors by log-reliability gain per unit of speed
// loss: processors that are both reliable and fast come first.
func hybridOrder(pl *platform.Platform) []int {
	ids := make([]int, pl.NumProcs())
	for i := range ids {
		ids[i] = i
	}
	score := func(u int) float64 {
		// -log(fp) rewards reliability; multiplying by speed rewards both.
		fp := pl.FailProb[u]
		if fp <= 0 {
			return math.Inf(1)
		}
		return -math.Log(fp) * pl.Speed[u]
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && score(ids[j]) > score(ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}
