package heuristics

// The legacy heuristics evaluation path — Mapping.Clone per candidate,
// full Validate, slice-based mapping.Evaluate — survives here as the
// unexported reference the delta refactor is proven against, following
// the pattern of exact/reference_test.go (where the retired slice
// enumerator validates the bitmask engine). The testScoreCheck hook in
// state.go lets these tests intercept *every* metric the searchers read
// from the incremental state during a real Greedy/Anneal run and assert
// it is bitwise identical to the clone-path evaluation of the same
// candidate, which by induction makes the refactored searches follow the
// exact trajectory the clone-path implementation would.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// referenceEvaluate is the pre-refactor per-candidate path: deep-copy the
// mapping, then validate and score it through the slice-based evaluators
// (mapping.Evaluate dispatches Eq. (1)/Eq. (2) per call, exactly like the
// old Problem.evaluate).
func referenceEvaluate(pr *Problem, m *mapping.Mapping) (mapping.Metrics, error) {
	return mapping.Evaluate(pr.Pipe, pr.Plat, m.Clone())
}

// installCloneCheck routes every searcher score through the legacy path
// and fails the test on the first bitwise mismatch. It returns the
// uninstall func and a counter so tests can assert the hook actually saw
// scores.
func installCloneCheck(t *testing.T, scores *int) func() {
	t.Helper()
	testScoreCheck = func(pr *Problem, st *mapping.EvalState, met mapping.Metrics) {
		mp := st.ToMapping()
		want, err := referenceEvaluate(pr, mp)
		if err != nil {
			t.Fatalf("delta path scored an invalid state %v: %v", mp, err)
		}
		if met != want {
			t.Fatalf("delta score %+v != clone-path score %+v for %v", met, want, mp)
		}
		*scores++
	}
	return func() { testScoreCheck = nil }
}

// equivInstance draws a random instance at the given width —
// communication-homogeneous on even seeds, fully heterogeneous otherwise
// — plus a latency bound that is binding often enough to exercise
// split/merge/saturation moves.
func equivInstance(seed int64, m int) (*Problem, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(4)
	p := pipeline.Random(rng, n, 1, 8, 1, 8)
	var pl *platform.Platform
	if seed%2 == 0 {
		pl = platform.RandomCommHomogeneous(rng, m, 1, 10, 0.05, 0.95, 1+rng.Float64()*2)
	} else {
		pl = platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.05, 0.95, 1, 20)
	}
	// A bound between the fastest single-processor latency and a small
	// multiple of it keeps the instance feasible but the constraint tight.
	ref := mapping.NewSingleInterval(n, []int{pl.FastestProc()})
	met, err := mapping.Evaluate(p, pl, ref)
	if err != nil {
		panic(err)
	}
	bound := met.Latency * (1.2 + 2*rng.Float64())
	return &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: bound}, rng
}

// TestGreedyDeltaMatchesClonePath runs the refactored greedy under the
// clone-check hook across the narrow and wide mask representations: every
// single candidate score of the search must be bitwise identical to the
// legacy Clone+Evaluate path, and the returned metrics must reproduce
// through it as well.
func TestGreedyDeltaMatchesClonePath(t *testing.T) {
	for _, m := range []int{8, 64, 80, 128} {
		for seed := int64(0); seed < 4; seed++ {
			pr, _ := equivInstance(seed*4+int64(m), m)
			scores := 0
			uninstall := installCloneCheck(t, &scores)
			res, err := Greedy(context.Background(), pr)
			uninstall()
			if err != nil {
				continue // infeasible draw: nothing scored beyond the sweep
			}
			if scores == 0 {
				t.Fatalf("m=%d seed=%d: clone-check hook saw no scores", m, seed)
			}
			want, refErr := referenceEvaluate(pr, res.Mapping)
			if refErr != nil {
				t.Fatalf("m=%d seed=%d: greedy returned invalid mapping: %v", m, seed, refErr)
			}
			if res.Metrics != want {
				t.Errorf("m=%d seed=%d: greedy metrics %+v != clone path %+v", m, seed, res.Metrics, want)
			}
		}
	}
}

// TestAnnealDeltaMatchesClonePath is the annealing analogue: the whole
// walk (accepted and rejected moves alike) scores bitwise identically to
// the clone path, so the trajectory is the one a clone-based walk with the
// same seed would take.
func TestAnnealDeltaMatchesClonePath(t *testing.T) {
	for _, m := range []int{8, 64, 80, 128} {
		for seed := int64(0); seed < 3; seed++ {
			pr, _ := equivInstance(seed*4+int64(m)+1, m)
			scores := 0
			uninstall := installCloneCheck(t, &scores)
			res, err := Anneal(context.Background(), pr, AnnealConfig{Seed: seed + 1, Iters: 120, Restarts: 2})
			uninstall()
			if err != nil {
				continue
			}
			if scores == 0 {
				t.Fatalf("m=%d seed=%d: clone-check hook saw no scores", m, seed)
			}
			want, refErr := referenceEvaluate(pr, res.Mapping)
			if refErr != nil {
				t.Fatalf("m=%d seed=%d: anneal returned invalid mapping: %v", m, seed, refErr)
			}
			if res.Metrics != want {
				t.Errorf("m=%d seed=%d: anneal metrics %+v != clone path %+v", m, seed, res.Metrics, want)
			}
		}
	}
}

// TestGreedyPaperOptimaPreserved pins the known optima of the paper's
// instances through the refactored policy (the bounded structural sweep
// is exhaustive at these sizes, so the delta rewrite must not change the
// answers the legacy greedy found).
func TestGreedyPaperOptimaPreserved(t *testing.T) {
	p, pl := fig5()
	pr := &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: 22}
	res, err := Greedy(context.Background(), pr)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (1-0.1)*(1-math.Pow(0.8, 10))
	if math.Abs(res.Metrics.FailureProb-want) > 1e-12 {
		t.Errorf("Fig5 greedy FP = %g, want %g", res.Metrics.FailureProb, want)
	}
	p2, pl2 := fig34()
	pr2 := &Problem{Pipe: p2, Plat: pl2, Goal: MinLatency, Bound: 1}
	res2, err := Greedy(context.Background(), pr2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Metrics.Latency-7) > 1e-9 {
		t.Errorf("Fig34 greedy latency = %g, want 7", res2.Metrics.Latency)
	}
}

// TestMoveSweepZeroAllocs pins the zero-allocation contract of the greedy
// move sweep (point moves, structural ranking and the saturated lookahead
// all run on the in-place search state; only result materialization may
// allocate).
func TestMoveSweepZeroAllocs(t *testing.T) {
	for _, m := range []int{12, 80} {
		pr, _ := equivInstance(int64(m)+1, m) // odd offset: fully heterogeneous
		s, err := newSearcher(pr)
		if err != nil {
			t.Fatal(err)
		}
		best, err := seed(pr)
		if err != nil {
			t.Skipf("m=%d: no feasible seed", m)
		}
		s.st.Load(best.Mapping)
		cur := s.saturate(nil)
		// Drive to a local optimum first so the measured sweeps are the
		// steady-state full rounds (improved=false paths).
		for {
			improved, next := s.bestMove(cur, nil)
			if !improved {
				break
			}
			cur = next
		}
		allocs := testing.AllocsPerRun(10, func() {
			s.bestMove(cur, nil)
			s.saturate(nil)
		})
		if allocs != 0 {
			t.Errorf("m=%d: move sweep allocates %.1f/op, want 0", m, allocs)
		}
	}
}

// TestAnnealIterationsZeroAlloc verifies the annealing walk allocates only
// when a mapping is actually recorded: a walk whose archive and best are
// already settled performs allocation-free iterations.
func TestAnnealIterationsZeroAlloc(t *testing.T) {
	pr, rng := equivInstance(81, 80)
	s, err := newSearcher(pr)
	if err != nil {
		t.Fatal(err)
	}
	s.st.Load(randomState(rng, pr))
	allocs := testing.AllocsPerRun(200, func() {
		mv, ok := s.randomMove(rng)
		if !ok {
			return
		}
		mv.apply(s)
		_, _ = s.score()
		mv.undo(s)
	})
	if allocs != 0 {
		t.Errorf("anneal move iteration allocates %.1f/op, want 0", allocs)
	}
}
