package heuristics

import (
	"context"
	"errors"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/platform"
)

func ctxTestProblem(t *testing.T) *Problem {
	t.Helper()
	n := 20
	w := make([]float64, n)
	delta := make([]float64, n+1)
	for i := range w {
		w[i] = float64(2 + i)
	}
	for i := range delta {
		delta[i] = 1
	}
	p, err := pipeline.New(w, delta)
	if err != nil {
		t.Fatal(err)
	}
	m := 20
	speeds := make([]float64, m)
	fps := make([]float64, m)
	for u := 0; u < m; u++ {
		speeds[u] = 1 + float64(u)
		fps[u] = 0.1 + 0.02*float64(u)
	}
	pl, err := platform.NewCommHomogeneous(speeds, fps, 2)
	if err != nil {
		t.Fatal(err)
	}
	return &Problem{Pipe: p, Plat: pl, Goal: MinFP, Bound: 1e9}
}

func TestAnnealCancelledReturnsBestSoFar(t *testing.T) {
	pr := ctxTestProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Anneal(ctx, pr, AnnealConfig{Seed: 1, Iters: 1_000_000, Restarts: 4})
	if err == nil {
		t.Fatal("cancelled anneal must report the cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	// Pre-cancelled: the walk never started, so no mapping is required —
	// but a mid-run cancel must surface one.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go cancel2()
	res, err = Anneal(ctx2, pr, AnnealConfig{Seed: 1, Iters: 1_000_000, Restarts: 4})
	if err == nil {
		t.Skip("anneal finished before the cancel was observed")
	}
	if res.Mapping == nil && errors.Is(err, context.Canceled) {
		// Acceptable only when cancellation hit before the first record;
		// with a same-goroutine cancel this is timing-dependent, so just
		// require the error to carry the context cause.
		t.Logf("cancel landed before the first feasible state: %v", err)
	}
}

func TestGreedyCancelledReturnsSeed(t *testing.T) {
	pr := ctxTestProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Greedy(ctx, pr)
	if err == nil {
		t.Fatal("cancelled greedy must report the cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if res.Mapping == nil {
		t.Error("greedy seeds before polling ctx, so a best-so-far must exist")
	}
}

func TestBeamSearchCancelled(t *testing.T) {
	pr := ctxTestProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BeamSearchMinLatency(ctx, pr, 8)
	if err == nil {
		t.Fatal("cancelled beam search must report the cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
}

func TestHeuristicsDeterministicWithBackgroundCtx(t *testing.T) {
	pr := ctxTestProblem(t)
	cfg := AnnealConfig{Seed: 5, Iters: 500, Restarts: 2}
	a, errA := Anneal(context.Background(), pr, cfg)
	b, errB := Anneal(context.Background(), pr, cfg)
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v, %v", errA, errB)
	}
	if a.Metrics != b.Metrics {
		t.Errorf("anneal not deterministic: %+v vs %+v", a.Metrics, b.Metrics)
	}
}
