package remap

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

// solveStart produces a starting mapping for an instance with the same
// objective/bounds the controller will run under.
func solveStart(t testing.TB, pr core.Problem) *mapping.Mapping {
	t.Helper()
	res, err := core.SolveCtx(context.Background(), pr, core.Options{})
	if err != nil {
		t.Fatalf("start solve: %v", err)
	}
	return res.Mapping
}

// assertRepairInvariant checks the controller's core guarantee: the
// installed mapping is valid, assigns no failed processor, and the
// simulator agrees it survives the failure pattern.
func assertRepairInvariant(t testing.TB, p *pipeline.Pipeline, pl *platform.Platform, rep Repair, failed []bool) {
	t.Helper()
	if rep.Mapping == nil {
		t.Fatal("repair installed a nil mapping")
	}
	if err := rep.Mapping.Validate(p.NumStages(), pl.NumProcs()); err != nil {
		t.Fatalf("installed mapping invalid after %v: %v", rep.Event, err)
	}
	for j, procs := range rep.Mapping.Alloc {
		for _, u := range procs {
			if failed[u] {
				t.Fatalf("interval %d assigns failed processor %d after %v", j, u, rep.Event)
			}
		}
	}
	if !sim.SurvivesFailures(rep.Mapping, failed) {
		t.Fatalf("sim.SurvivesFailures disagrees after %v", rep.Event)
	}
}

// usedProcs returns distinct processors enrolled by m, in first-seen order.
func usedProcs(m *mapping.Mapping) []int {
	seen := map[int]bool{}
	var out []int
	for _, procs := range m.Alloc {
		for _, u := range procs {
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	return out
}

// TestCampaignM80 is the acceptance campaign: three sequential crashes
// of enrolled processors on a wide (m = 80) platform, with the mapping
// staying valid throughout and the whole repair sequence deterministic
// across identical runs.
func TestCampaignM80(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := workload.Random(rng, platform.FullyHeterogeneous, 12, 80)
	// Self-calibrate a latency bound: twice the (heuristic) minimum
	// latency leaves room to replicate, so the min-FP start enrolls a
	// realistic multi-interval, multi-replica mapping.
	lref, err := core.SolveCtx(context.Background(), core.Problem{
		Pipeline: inst.Pipeline, Platform: inst.Platform, Objective: core.MinimizeLatency,
	}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bound := 2 * lref.Metrics.Latency
	pr := core.Problem{
		Pipeline:   inst.Pipeline,
		Platform:   inst.Platform,
		Objective:  core.MinimizeFailureProb,
		MaxLatency: bound,
	}
	start := solveStart(t, pr)
	victims := usedProcs(start)
	if len(victims) < 3 {
		t.Fatalf("start mapping enrolls only %d processors", len(victims))
	}
	schedule := sim.ScriptedCrashes(victims[0], victims[1], victims[2])

	run := func() []string {
		cfg := Config{Objective: core.MinimizeFailureProb, MaxLatency: bound}
		c, err := New(inst.Pipeline, inst.Platform, start, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var installed []string
		err = c.Campaign(context.Background(), schedule, func(rep Repair) error {
			_, _, failed := c.Current()
			assertRepairInvariant(t, inst.Pipeline, inst.Platform, rep, failed)
			if !rep.Changed {
				t.Fatalf("crash of enrolled processor %d did not trigger a repair", rep.Event.Proc)
			}
			installed = append(installed, rep.Mapping.String())
			t.Logf("event %v: %s in %v (grade %v)", rep.Event, rep.Method, rep.Elapsed, rep.Certainty)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return installed
	}

	a, b := run(), run()
	if len(a) != len(schedule) {
		t.Fatalf("got %d repairs for %d events", len(a), len(schedule))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("repair %d differs across identical runs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// TestRandomCampaignsProperty sweeps seeds: under any generated
// crash/recovery schedule, every successfully applied event leaves a
// valid mapping that excludes the failed set.
func TestRandomCampaignsProperty(t *testing.T) {
	const n, m = 8, 20
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := workload.Random(rng, platform.FullyHeterogeneous, n, m)
		pr := core.Problem{Pipeline: inst.Pipeline, Platform: inst.Platform, Objective: core.MinimizeFailureProb}
		start := solveStart(t, pr)
		c, err := New(inst.Pipeline, inst.Platform, start, Config{Objective: core.MinimizeFailureProb})
		if err != nil {
			t.Fatal(err)
		}
		schedule := sim.RandomFaultSchedule(rng, m, sim.RandomFaultConfig{Events: 24})
		for _, ev := range schedule {
			rep, err := c.Apply(context.Background(), ev)
			if err != nil {
				t.Fatalf("seed %d, event %+v: %v", seed, ev, err)
			}
			_, _, failed := c.Current()
			assertRepairInvariant(t, inst.Pipeline, inst.Platform, rep, failed)
		}
	}
}

// FuzzCrashSchedule decodes arbitrary bytes into a fault-event stream
// and checks the repair invariant after every applied event. ErrAllFailed
// may only surface when the stream really killed every processor; the
// controller must keep working once recoveries arrive.
func FuzzCrashSchedule(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 0, 0, 1})
	f.Add([]byte{3, 0, 3, 1, 3, 0, 5, 0, 7, 0})
	f.Add([]byte{0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7, 0, 8, 0})

	const n, m = 4, 9
	rng := rand.New(rand.NewSource(17))
	inst := workload.Random(rng, platform.FullyHeterogeneous, n, m)
	pr := core.Problem{Pipeline: inst.Pipeline, Platform: inst.Platform, Objective: core.MinimizeFailureProb}
	res, err := core.SolveCtx(context.Background(), pr, core.Options{})
	if err != nil {
		f.Fatal(err)
	}
	start := res.Mapping

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := New(inst.Pipeline, inst.Platform, start, Config{Objective: core.MinimizeFailureProb})
		if err != nil {
			t.Fatal(err)
		}
		alive := m
		failed := make([]bool, m)
		for i := 0; i+1 < len(data); i += 2 {
			proc := int(data[i]) % m
			kind := sim.FaultCrash
			if data[i+1]%2 == 1 {
				kind = sim.FaultRecover
			}
			ev := sim.FaultEvent{Seq: i / 2, Time: float64(i), Proc: proc, Kind: kind}
			wouldKillAll := kind == sim.FaultCrash && !failed[proc] && alive == 1
			rep, err := c.Apply(context.Background(), ev)
			if wouldKillAll {
				if !errors.Is(err, ErrAllFailed) {
					t.Fatalf("killing the last processor: got %v, want ErrAllFailed", err)
				}
				failed[proc], alive = true, 0
				continue
			}
			if err != nil {
				t.Fatalf("event %+v: %v", ev, err)
			}
			if kind == sim.FaultCrash && !failed[proc] {
				failed[proc], alive = true, alive-1
			} else if kind == sim.FaultRecover && failed[proc] {
				failed[proc], alive = false, alive+1
			}
			if alive > 0 {
				// With every processor down the controller holds the last
				// mapping (which necessarily enrolls failed processors), so
				// the invariant only applies while someone survives.
				assertRepairInvariant(t, inst.Pipeline, inst.Platform, rep, failed)
			}
		}
	})
}

// TestCancelDuringEscalation: when the per-event deadline fires while
// the exact escalation is running, the controller returns the
// greedy-repaired mapping graded Partial — fast.
func TestCancelDuringEscalation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := workload.Random(rng, platform.FullyHeterogeneous, 12, 14)
	pr := core.Problem{
		Pipeline:   inst.Pipeline,
		Platform:   inst.Platform,
		Objective:  core.MinimizeFailureProb,
		MaxLatency: math.Inf(1),
	}
	start := solveStart(t, pr)
	// A finite latency bound keeps the problem in the hard class, and a
	// huge ExactBudget forces the escalation gate open on an instance far
	// too big to enumerate within the deadline.
	cfg := Config{
		Objective:   core.MinimizeFailureProb,
		MaxLatency:  1e12,
		Deadline:    30 * time.Millisecond,
		ExactBudget: 1e18,
		Workers:     1,
	}
	c, err := New(inst.Pipeline, inst.Platform, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	victim := usedProcs(start)[0]
	t0 := time.Now()
	rep, err := c.Apply(context.Background(), sim.FaultEvent{Proc: victim, Kind: sim.FaultCrash})
	elapsed := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("deadline-truncated repair took %v, want < 100ms", elapsed)
	}
	if rep.Certainty != core.Partial {
		t.Errorf("certainty = %v (%s), want Partial", rep.Certainty, rep.Method)
	}
	_, _, failed := c.Current()
	assertRepairInvariant(t, inst.Pipeline, inst.Platform, rep, failed)
}

// TestEscalationCompletes: on a small instance with budget to spare the
// repair upgrades to an exact grade.
func TestEscalationCompletes(t *testing.T) {
	p, pl := workload.Fig5()
	pr := core.Problem{Pipeline: p, Platform: pl, Objective: core.MinimizeFailureProb, MaxLatency: 22}
	start := solveStart(t, pr)
	cfg := Config{
		Objective:   core.MinimizeFailureProb,
		MaxLatency:  22,
		Deadline:    5 * time.Second,
		ExactBudget: 5_000_000,
	}
	c, err := New(p, pl, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	victim := usedProcs(start)[0]
	rep, err := c.Apply(context.Background(), sim.FaultEvent{Proc: victim, Kind: sim.FaultCrash})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Certainty != core.ExhaustivelyOptimal && rep.Certainty != core.ProvablyOptimal {
		t.Errorf("certainty = %v (%s), want an exact grade", rep.Certainty, rep.Method)
	}
	_, _, failed := c.Current()
	assertRepairInvariant(t, p, pl, rep, failed)
}

// TestRecoveryReEnrolls: after a crash and a recovery the controller
// re-opens the recovered processor to placement and reports an empty
// failed set.
func TestRecoveryReEnrolls(t *testing.T) {
	p, pl := workload.Fig5()
	pr := core.Problem{Pipeline: p, Platform: pl, Objective: core.MinimizeFailureProb, MaxLatency: 22}
	start := solveStart(t, pr)
	c, err := New(p, pl, start, Config{Objective: core.MinimizeFailureProb, MaxLatency: 22})
	if err != nil {
		t.Fatal(err)
	}
	victim := usedProcs(start)[0]
	if _, err := c.Apply(context.Background(), sim.FaultEvent{Proc: victim, Kind: sim.FaultCrash}); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Apply(context.Background(), sim.FaultEvent{Proc: victim, Kind: sim.FaultRecover})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Changed {
		t.Error("recovery must trigger a re-optimization pass")
	}
	if len(rep.Down) != 0 {
		t.Errorf("Down = %v after full recovery, want empty", rep.Down)
	}
	_, met, failed := c.Current()
	assertRepairInvariant(t, p, pl, rep, failed)
	if met != rep.Metrics {
		t.Errorf("Current metrics %+v disagree with repair metrics %+v", met, rep.Metrics)
	}
}

// TestUnaffectedCrashFastPath: crashing a processor the mapping does not
// enroll must not re-plan.
func TestUnaffectedCrashFastPath(t *testing.T) {
	p, pl := workload.Fig5()
	pr := core.Problem{Pipeline: p, Platform: pl, Objective: core.MinimizeFailureProb, MaxLatency: 22}
	start := solveStart(t, pr)
	used := map[int]bool{}
	for _, u := range usedProcs(start) {
		used[u] = true
	}
	spare := -1
	for u := 0; u < pl.NumProcs(); u++ {
		if !used[u] {
			spare = u
			break
		}
	}
	if spare < 0 {
		t.Skip("start mapping enrolls every processor")
	}
	c, err := New(p, pl, start, Config{Objective: core.MinimizeFailureProb, MaxLatency: 22})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Apply(context.Background(), sim.FaultEvent{Proc: spare, Kind: sim.FaultCrash})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changed {
		t.Errorf("crash of unenrolled processor %d re-planned: %s", spare, rep.Method)
	}
	if rep.Mapping != start {
		t.Error("unaffected crash must keep the installed mapping")
	}
	if len(rep.Down) != 1 || rep.Down[0] != spare {
		t.Errorf("Down = %v, want [%d]", rep.Down, spare)
	}
}

// TestViolationReport: when the surviving platform cannot meet the
// bound, the controller still installs a valid mapping and reports the
// violation.
func TestViolationReport(t *testing.T) {
	p, pl := workload.Fig34()
	start := mapping.NewSingleInterval(p.NumStages(), []int{0, 1})
	c, err := New(p, pl, start, Config{Objective: core.MinimizeFailureProb, MaxLatency: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Apply(context.Background(), sim.FaultEvent{Proc: 0, Kind: sim.FaultCrash})
	if err != nil {
		t.Fatal(err)
	}
	_, _, failed := c.Current()
	assertRepairInvariant(t, p, pl, rep, failed)
	if rep.Violation == nil {
		t.Fatalf("latency bound 1e-6 met with metrics %+v?", rep.Metrics)
	}
	if rep.Violation.Metric != "latency" {
		t.Errorf("violated metric = %q, want latency", rep.Violation.Metric)
	}
	if rep.Violation.Value <= rep.Violation.Bound {
		t.Errorf("violation value %g not above bound %g", rep.Violation.Value, rep.Violation.Bound)
	}
}

// TestSyncOneShot: Sync replaces the failure state wholesale and repairs
// once — the Remap entry point.
func TestSyncOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := workload.Random(rng, platform.FullyHeterogeneous, 8, 20)
	pr := core.Problem{Pipeline: inst.Pipeline, Platform: inst.Platform, Objective: core.MinimizeFailureProb}
	start := solveStart(t, pr)
	c, err := New(inst.Pipeline, inst.Platform, start, Config{Objective: core.MinimizeFailureProb})
	if err != nil {
		t.Fatal(err)
	}
	failed := make([]bool, 20)
	for _, u := range usedProcs(start)[:3] {
		failed[u] = true
	}
	rep, err := c.Sync(context.Background(), failed)
	if err != nil {
		t.Fatal(err)
	}
	assertRepairInvariant(t, inst.Pipeline, inst.Platform, rep, failed)
	if len(rep.Down) != 3 {
		t.Errorf("Down = %v, want 3 processors", rep.Down)
	}
	if _, err := c.Sync(context.Background(), make([]bool, 7)); err == nil {
		t.Error("mis-sized failure vector must be rejected")
	}
}

// TestControllerConcurrentEventLoop drives Run from one goroutine while
// another polls Current — the -race exercise for the controller's
// serialization.
func TestControllerConcurrentEventLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	inst := workload.Random(rng, platform.FullyHeterogeneous, 8, 16)
	pr := core.Problem{Pipeline: inst.Pipeline, Platform: inst.Platform, Objective: core.MinimizeFailureProb}
	start := solveStart(t, pr)
	c, err := New(inst.Pipeline, inst.Platform, start, Config{Objective: core.MinimizeFailureProb})
	if err != nil {
		t.Fatal(err)
	}
	schedule := sim.RandomFaultSchedule(rng, 16, sim.RandomFaultConfig{Events: 30})
	events := make(chan sim.FaultEvent)
	go func() {
		defer close(events)
		for _, ev := range schedule {
			events <- ev
		}
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m, _, failed := c.Current()
				if m == nil || len(failed) != 16 {
					t.Error("Current returned an inconsistent snapshot")
					return
				}
			}
		}
	}()

	count := 0
	if err := c.Run(context.Background(), events, func(rep Repair) error {
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if count != len(schedule) {
		t.Errorf("emitted %d repairs for %d events", count, len(schedule))
	}
	_, _, failed := c.Current()
	m, met, _ := c.Current()
	assertRepairInvariant(t, inst.Pipeline, inst.Platform, Repair{Mapping: m, Metrics: met}, failed)
}

// TestRunEmitErrorAborts: an emit error (disconnected stream consumer)
// stops the loop.
func TestRunEmitErrorAborts(t *testing.T) {
	p, pl := workload.Fig5()
	pr := core.Problem{Pipeline: p, Platform: pl, Objective: core.MinimizeFailureProb, MaxLatency: 22}
	start := solveStart(t, pr)
	c, err := New(p, pl, start, Config{Objective: core.MinimizeFailureProb, MaxLatency: 22})
	if err != nil {
		t.Fatal(err)
	}
	events := make(chan sim.FaultEvent, 2)
	events <- sim.FaultEvent{Proc: usedProcs(start)[0], Kind: sim.FaultCrash}
	close(events)
	sentinel := errors.New("consumer gone")
	if err := c.Run(context.Background(), events, func(Repair) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the emit error", err)
	}
}

// TestCampaignHoldsThroughTotalFailure: a schedule that crashes every
// processor and then recovers one must not abort the campaign — the
// all-failed event yields a hold record (last mapping kept, graded
// Partial) and the recovery resumes repairs with a valid mapping.
func TestCampaignHoldsThroughTotalFailure(t *testing.T) {
	p, pl := workload.Fig5()
	m := pl.NumProcs()
	pr := core.Problem{Pipeline: p, Platform: pl, Objective: core.MinimizeFailureProb}
	start := solveStart(t, pr)
	c, err := New(p, pl, start, Config{Objective: core.MinimizeFailureProb})
	if err != nil {
		t.Fatal(err)
	}
	var schedule sim.FaultSchedule
	for u := 0; u < m; u++ {
		schedule = append(schedule, sim.FaultEvent{Time: float64(u + 1), Proc: u, Kind: sim.FaultCrash})
	}
	schedule = append(schedule, sim.FaultEvent{Time: float64(m + 1), Proc: 0, Kind: sim.FaultRecover})
	schedule.Renumber()

	var reps []Repair
	if err := c.Campaign(context.Background(), schedule, func(rep Repair) error {
		reps = append(reps, rep)
		return nil
	}); err != nil {
		t.Fatalf("campaign aborted: %v", err)
	}
	if len(reps) != m+1 {
		t.Fatalf("emitted %d repairs for %d events", len(reps), m+1)
	}
	hold := reps[m-1]
	if hold.Changed {
		t.Error("all-failed event must not claim a re-mapping")
	}
	if hold.Certainty != core.Partial {
		t.Errorf("hold record graded %v (%s), want Partial", hold.Certainty, hold.Method)
	}
	if hold.Mapping == nil {
		t.Fatal("hold record must carry the held mapping")
	}
	if len(hold.Down) != m {
		t.Errorf("hold record Down = %v, want all %d processors", hold.Down, m)
	}
	last := reps[m]
	failed := make([]bool, m)
	for u := 1; u < m; u++ {
		failed[u] = true
	}
	assertRepairInvariant(t, p, pl, last, failed)
	if !last.Changed {
		t.Error("recovery after total failure must re-plan")
	}
}
