// Package remap closes the simulator ↔ solver loop: a failure-reactive
// controller that keeps a deployed interval mapping valid — and as close
// to its latency/reliability bound as the surviving platform allows —
// while processors crash and recover.
//
// The controller subscribes to fault events (see internal/sim's
// fault-injection harness) and on each transition warm-restarts the
// search from the *current* mapping instead of solving from scratch:
// dead replicas are evicted in place on the incremental
// mapping.EvalState, bounded greedy repair re-optimizes the survivors
// (heuristics.Repair), and when the remaining per-event deadline budget
// allows it escalates to the exact branch-and-bound on the alive
// sub-platform. When the bound can no longer be met the controller
// degrades gracefully: it still installs the best valid mapping found
// (excluding every failed processor) and reports the violation, because
// a degraded-but-running pipeline beats none.
//
// Invariants:
//
//   - after every successfully applied event the installed mapping is a
//     valid interval mapping that assigns no failed processor, and
//     sim.SurvivesFailures(mapping, failed) holds;
//   - event application is serialized (internal mutex): the controller
//     is safe for concurrent Apply/Current use and for a Run event loop
//     fed from another goroutine;
//   - repair sequences are deterministic for a fixed (instance, start,
//     schedule, config) as long as the escalation decision is stable —
//     the mapping-count gate is deterministic, and the wall-clock gate
//     only flips when a repair consumes nearly the whole per-event
//     budget.
package remap

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/heuristics"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// DefaultDeadline is the per-event repair budget when Config.Deadline is
// zero: enough for the bounded greedy repair at any width plus a small
// exact escalation, small enough to keep a streaming controller live.
const DefaultDeadline = 50 * time.Millisecond

// DefaultExactBudget is the largest estimated interval-mapping count of
// the alive sub-platform for which a repair escalates to the exact
// search (Config.ExactBudget == 0). It is deliberately much smaller than
// the offline solver's budget: escalation shares the per-event deadline
// with the greedy repair that already ran.
const DefaultExactBudget = 200_000

// DefaultEscalateReserve is the minimum remaining per-event budget
// required to attempt exact escalation (Config.EscalateReserve == 0).
const DefaultEscalateReserve = 5 * time.Millisecond

// ErrAllFailed is returned by Apply and Sync when every processor is
// down: no valid mapping exists. The controller keeps the last installed
// mapping and waits for recoveries — the accompanying Repair record
// reports the hold (its mapping is the held one, so it necessarily
// enrolls failed processors). Run and Campaign treat it as a non-fatal
// per-event outcome: they emit the hold record and keep folding events,
// so a later recovery resumes repairs.
var ErrAllFailed = errors.New("remap: every processor has failed")

// Config tunes a Controller. The zero value minimizes failure
// probability with no latency bound under the default budgets.
type Config struct {
	// Objective selects the minimized criterion (the other is bounded).
	Objective core.Objective
	// MaxLatency bounds the latency when minimizing failure probability
	// (0 or +Inf: unconstrained).
	MaxLatency float64
	// MaxFailProb bounds the failure probability when minimizing latency
	// (0 or 1: unconstrained).
	MaxFailProb float64
	// Deadline is the per-event repair budget (default DefaultDeadline).
	// Past it the controller installs its best-so-far mapping graded
	// Partial.
	Deadline time.Duration
	// RepairRounds bounds the greedy repair's point-move rounds
	// (0 = heuristics.RepairBudget default).
	RepairRounds int
	// ExactBudget gates escalation to the exact search: it runs only
	// when the alive sub-platform's estimated mapping count is at most
	// this (0 = DefaultExactBudget; negative disables escalation).
	ExactBudget float64
	// EscalateReserve is the minimum remaining per-event budget for the
	// escalation to be attempted (default DefaultEscalateReserve).
	EscalateReserve time.Duration
	// Workers is the goroutine count of the escalated exact search
	// (0 = GOMAXPROCS).
	Workers int
	// Eval optionally carries the session-cached evaluator for
	// (pipeline, platform), so the controller's repair state shares the
	// precomputation. Built on demand when nil.
	Eval *mapping.Evaluator
	// Recorder, when non-nil, receives repair telemetry: each repair feeds
	// the instance class's "repair" route latency profile, and the
	// escalated exact solves record through the same recorder.
	Recorder *telemetry.Recorder
}

func (c Config) deadline() time.Duration {
	if c.Deadline <= 0 {
		return DefaultDeadline
	}
	return c.Deadline
}

func (c Config) exactBudget() float64 {
	if c.ExactBudget == 0 {
		return DefaultExactBudget
	}
	return c.ExactBudget
}

func (c Config) escalateReserve() time.Duration {
	if c.EscalateReserve <= 0 {
		return DefaultEscalateReserve
	}
	return c.EscalateReserve
}

// Violation reports that the installed mapping exceeds the configured
// bound (the pipeline keeps running, degraded).
type Violation struct {
	// Metric is the violated bound: "latency" or "failureProb".
	Metric string `json:"metric"`
	// Value is the installed mapping's metric value.
	Value float64 `json:"value"`
	// Bound is the configured limit it exceeds.
	Bound float64 `json:"bound"`
}

// Repair reports one controller reaction: the event, the mapping now
// installed, its metrics and provenance, and the repair latency.
type Repair struct {
	// Event is the fault event that triggered the repair (zero-valued
	// Seq/Time for one-shot Sync repairs).
	Event sim.FaultEvent
	// Mapping is the installed mapping after the event (never assigns a
	// failed processor).
	Mapping *mapping.Mapping
	// Metrics are Mapping's analytic latency and failure probability,
	// computed through the controller's evaluator.
	Metrics mapping.Metrics
	// Certainty grades the repair: Heuristic for the greedy warm repair,
	// ExhaustivelyOptimal/ProvablyOptimal when escalation completed, and
	// Partial when the per-event deadline truncated the search.
	Certainty core.Certainty
	// Method names the repair route taken.
	Method string
	// Changed is false when the event required no re-mapping (redundant
	// transition, or a crash of a processor the mapping does not use).
	Changed bool
	// Violation is non-nil when the configured bound can no longer be
	// met on the surviving platform; the mapping is the best degraded
	// answer.
	Violation *Violation
	// Down lists the processors failed after this event (sorted).
	Down []int
	// Elapsed is the wall-clock repair time for this event.
	Elapsed time.Duration
}

// Controller is the failure-reactive re-mapping loop. Create it with
// New; it is safe for concurrent use.
type Controller struct {
	pipe  *pipeline.Pipeline
	plat  *platform.Platform
	cfg   Config
	hp    *heuristics.Problem
	class telemetry.Class // instance class for repair telemetry

	mu     sync.Mutex
	fs     *sim.FaultState
	banned bitset.Set
	cur    *mapping.Mapping
	met    mapping.Metrics
	grade  core.Certainty
}

// New validates the instance and the starting mapping and returns a
// controller with every processor alive and start installed.
func New(pipe *pipeline.Pipeline, plat *platform.Platform, start *mapping.Mapping, cfg Config) (*Controller, error) {
	if pipe == nil || plat == nil || start == nil {
		return nil, fmt.Errorf("remap: controller needs a pipeline, a platform and a starting mapping")
	}
	if err := pipe.Validate(); err != nil {
		return nil, err
	}
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	if err := start.Validate(pipe.NumStages(), plat.NumProcs()); err != nil {
		return nil, fmt.Errorf("remap: starting mapping: %w", err)
	}
	ev := cfg.Eval
	if ev == nil {
		var err error
		ev, err = mapping.NewEvaluator(pipe, plat)
		if err != nil {
			return nil, err
		}
	}
	hp := &heuristics.Problem{Pipe: pipe, Plat: plat, Eval: ev, Recorder: cfg.Recorder}
	if cfg.Objective == core.MinimizeFailureProb {
		hp.Goal = heuristics.MinFP
		hp.Bound = cfg.MaxLatency
		if hp.Bound == 0 || math.IsInf(hp.Bound, 1) {
			hp.Bound = math.Inf(1)
		}
	} else {
		hp.Goal = heuristics.MinLatency
		hp.Bound = cfg.MaxFailProb
		if hp.Bound == 0 || hp.Bound == 1 {
			hp.Bound = 1
		}
	}
	met, err := ev.EvaluateMapping(start)
	if err != nil {
		return nil, err
	}
	obj := telemetry.ObjLatency
	if cfg.Objective == core.MinimizeFailureProb {
		obj = telemetry.ObjFP
	}
	_, commHom := plat.CommHomogeneous()
	return &Controller{
		pipe:   pipe,
		plat:   plat,
		cfg:    cfg,
		hp:     hp,
		class:  telemetry.ClassOf(pipe.NumStages(), plat.NumProcs(), commHom, obj),
		fs:     sim.NewFaultState(plat.NumProcs()),
		banned: bitset.Make(plat.NumProcs()),
		cur:    start,
		met:    met,
		grade:  core.Heuristic,
	}, nil
}

// Current snapshots the installed mapping, its metrics and the failed
// set. The mapping pointer is never mutated by the controller (repairs
// install fresh mappings), so the caller may read it freely; the failed
// slice is a copy.
func (c *Controller) Current() (*mapping.Mapping, mapping.Metrics, []bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	failed := append([]bool(nil), c.fs.Failed()...)
	return c.cur, c.met, failed
}

// Apply folds one fault event into the controller's failure state and
// re-plans when the event affects the installed mapping (any crash of
// an enrolled processor, or any recovery — recoveries reopen placement
// options worth a cheap improvement pass). It returns the repair record;
// the error is non-nil only when no valid mapping exists (ErrAllFailed —
// the record still reports the held mapping) or the event is malformed.
func (c *Controller) Apply(ctx context.Context, ev sim.FaultEvent) (Repair, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	m := c.plat.NumProcs()
	if ev.Proc < 0 || ev.Proc >= m {
		return Repair{}, fmt.Errorf("remap: event targets processor %d (platform has %d)", ev.Proc, m)
	}
	if ev.Kind != sim.FaultCrash && ev.Kind != sim.FaultRecover {
		return Repair{}, fmt.Errorf("remap: unknown fault kind %d", int(ev.Kind))
	}
	changed := c.fs.Apply(ev)
	if changed {
		if ev.Kind == sim.FaultCrash {
			c.banned.Add(ev.Proc)
		} else {
			c.banned.Remove(ev.Proc)
		}
	}
	if !changed {
		return c.unchanged(ev, "no-op (redundant transition)", start), nil
	}
	if ev.Kind == sim.FaultCrash && !c.mappingUses(ev.Proc) {
		// The crash shrinks the pool but touches no installed replica:
		// the mapping stays valid, nothing to re-plan.
		return c.unchanged(ev, "unaffected (processor not enrolled)", start), nil
	}
	return c.repairLocked(ctx, ev, start)
}

// Sync replaces the whole failure state with the given crash pattern and
// repairs once — the one-shot Remap entry point.
func (c *Controller) Sync(ctx context.Context, failed []bool) (Repair, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.plat.NumProcs()
	if len(failed) != m {
		return Repair{}, fmt.Errorf("remap: failure vector has %d entries, want %d", len(failed), m)
	}
	start := time.Now()
	c.fs = sim.NewFaultState(m)
	c.banned.Zero()
	for u, f := range failed {
		if f {
			c.fs.Apply(sim.FaultEvent{Proc: u, Kind: sim.FaultCrash})
			c.banned.Add(u)
		}
	}
	return c.repairLocked(ctx, sim.FaultEvent{Seq: -1}, start)
}

// Run consumes fault events until the channel closes or ctx is done,
// emitting one Repair per event. A nil emit just drives the controller.
// Emit errors abort the loop (e.g. a disconnected stream consumer).
// ErrAllFailed is non-fatal: the hold record is emitted and the loop
// keeps folding events so later recoveries resume repairs.
func (c *Controller) Run(ctx context.Context, events <-chan sim.FaultEvent, emit func(Repair) error) error {
	for {
		select {
		case <-ctx.Done():
			return fmt.Errorf("remap: run canceled: %w", context.Cause(ctx))
		case ev, ok := <-events:
			if !ok {
				return nil
			}
			rep, err := c.Apply(ctx, ev)
			if err != nil && !errors.Is(err, ErrAllFailed) {
				return err
			}
			if emit != nil {
				if err := emit(rep); err != nil {
					return err
				}
			}
		}
	}
}

// Campaign replays a scripted schedule synchronously, emitting one
// Repair per event. ErrAllFailed is non-fatal: the hold record is
// emitted and the replay continues, so later recoveries resume repairs.
func (c *Controller) Campaign(ctx context.Context, schedule sim.FaultSchedule, emit func(Repair) error) error {
	if err := schedule.Validate(c.plat.NumProcs()); err != nil {
		return err
	}
	for _, ev := range schedule {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("remap: campaign canceled: %w", context.Cause(ctx))
		}
		rep, err := c.Apply(ctx, ev)
		if err != nil && !errors.Is(err, ErrAllFailed) {
			return err
		}
		if emit != nil {
			if err := emit(rep); err != nil {
				return err
			}
		}
	}
	return nil
}

// unchanged records a no-repair reaction (c.mu held).
func (c *Controller) unchanged(ev sim.FaultEvent, method string, start time.Time) Repair {
	return Repair{
		Event:     ev,
		Mapping:   c.cur,
		Metrics:   c.met,
		Certainty: c.grade,
		Method:    method,
		Violation: c.violation(c.met),
		Down:      c.fs.FailedProcs(),
		Elapsed:   time.Since(start),
	}
}

// mappingUses reports whether the installed mapping enrolls u (c.mu held).
func (c *Controller) mappingUses(u int) bool {
	for _, procs := range c.cur.Alloc {
		for _, v := range procs {
			if v == u {
				return true
			}
		}
	}
	return false
}

// violation grades met against the configured bound (nil when met).
func (c *Controller) violation(met mapping.Metrics) *Violation {
	if c.hp.Goal == heuristics.MinFP {
		if math.IsInf(c.hp.Bound, 1) || met.Latency <= c.hp.Bound+1e-9*math.Max(1, math.Abs(c.hp.Bound)) {
			return nil
		}
		return &Violation{Metric: "latency", Value: met.Latency, Bound: c.hp.Bound}
	}
	if met.FailureProb <= c.hp.Bound+1e-12 {
		return nil
	}
	return &Violation{Metric: "failureProb", Value: met.FailureProb, Bound: c.hp.Bound}
}

// repairLocked re-plans from the current mapping under the current
// failure state (c.mu held): bounded greedy warm repair, then exact
// escalation when the remaining per-event budget and the alive
// sub-platform's size allow it.
func (c *Controller) repairLocked(ctx context.Context, ev sim.FaultEvent, start time.Time) (Repair, error) {
	if c.fs.Alive() == 0 {
		// No valid mapping exists; hold the last installed one (graded
		// Partial — it enrolls failed processors) until a recovery.
		hold := c.unchanged(ev, "all processors failed (holding last mapping)", start)
		hold.Certainty = core.Partial
		c.grade = core.Partial
		if rec := c.cfg.Recorder; rec != nil {
			rec.ObserveRoute(c.class, telemetry.RouteRepair, hold.Elapsed, telemetry.OutcomeError)
		}
		return hold, ErrAllFailed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	deadline := c.cfg.deadline()
	rctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()

	res, rerr := heuristics.Repair(rctx, c.hp, c.cur, c.banned, heuristics.RepairBudget{Rounds: c.cfg.RepairRounds})
	if res.Mapping == nil {
		if rerr == nil {
			rerr = fmt.Errorf("remap: repair produced no mapping")
		}
		return Repair{}, rerr
	}
	grade := core.Heuristic
	method := "greedy warm repair"
	if rerr != nil {
		grade = core.Partial
		method = "greedy warm repair (deadline truncated)"
	}

	// Escalate to the exact search on the alive sub-platform when the
	// remaining budget allows; a canceled escalation degrades to the
	// greedy result graded Partial.
	if rerr == nil {
		remaining := deadline - time.Since(start)
		exm, exMet, exCert, exMethod, status := c.escalate(rctx, remaining)
		switch status {
		case escDone:
			res.Mapping, res.Metrics = exm, exMet
			grade, method = exCert, exMethod
		case escCanceled:
			grade = core.Partial
			method = "greedy warm repair (escalation canceled)"
		}
	}

	c.cur, c.met, c.grade = res.Mapping, res.Metrics, grade
	elapsed := time.Since(start)
	if rec := c.cfg.Recorder; rec != nil {
		out := telemetry.OutcomeOK
		if grade == core.Partial {
			out = telemetry.OutcomePartial
		}
		rec.ObserveRoute(c.class, telemetry.RouteRepair, elapsed, out)
	}
	return Repair{
		Event:     ev,
		Mapping:   res.Mapping,
		Metrics:   res.Metrics,
		Certainty: grade,
		Method:    method,
		Changed:   true,
		Violation: c.violation(res.Metrics),
		Down:      c.fs.FailedProcs(),
		Elapsed:   elapsed,
	}, nil
}

// escStatus reports how an escalation attempt ended.
type escStatus int

const (
	// escSkipped: the gates blocked escalation, it failed, or it proved
	// infeasible — the greedy repair stands with its own grade.
	escSkipped escStatus = iota
	// escDone: the exact search completed; adopt its mapping and grade.
	escDone
	// escCanceled: the per-event deadline fired mid-escalation; the
	// greedy repair stands, graded Partial.
	escCanceled
)

// escalate runs the exact solver over the alive sub-platform when the
// gates pass. On success the returned metrics are recomputed through the
// controller's own evaluator, so installed metrics always share one
// float pipeline.
func (c *Controller) escalate(ctx context.Context, remaining time.Duration) (*mapping.Mapping, mapping.Metrics, core.Certainty, string, escStatus) {
	budget := c.cfg.exactBudget()
	if budget < 0 || remaining < c.cfg.escalateReserve() {
		return nil, mapping.Metrics{}, 0, "", escSkipped
	}
	n, alive := c.pipe.NumStages(), c.fs.Alive()
	if core.EstimateMappingCount(n, alive) > budget {
		return nil, mapping.Metrics{}, 0, "", escSkipped
	}
	sub, ids := alivePlatform(c.plat, c.fs.Failed())
	pr := core.Problem{
		Pipeline:    c.pipe,
		Platform:    sub,
		Objective:   c.cfg.Objective,
		MaxLatency:  c.cfg.MaxLatency,
		MaxFailProb: c.cfg.MaxFailProb,
	}
	ectx, cancel := context.WithTimeout(ctx, remaining)
	defer cancel()
	exres, err := core.SolveCtx(ectx, pr, core.Options{ExactBudget: budget, Workers: c.cfg.Workers, Recorder: c.cfg.Recorder})
	if ectx.Err() != nil {
		return nil, mapping.Metrics{}, 0, "", escCanceled
	}
	if err != nil || exres.Mapping == nil {
		return nil, mapping.Metrics{}, 0, "", escSkipped
	}
	if exres.Certainty != core.ExhaustivelyOptimal && exres.Certainty != core.ProvablyOptimal {
		// A truncated or heuristic escalation cannot beat the warm
		// repair's claim; keep the greedy result.
		return nil, mapping.Metrics{}, 0, "", escSkipped
	}
	translated := translateMapping(exres.Mapping, ids)
	met, mErr := c.hp.Eval.EvaluateMapping(translated)
	if mErr != nil {
		return nil, mapping.Metrics{}, 0, "", escSkipped
	}
	return translated, met, exres.Certainty, "warm repair + exact escalation: " + exres.Method, escDone
}

// alivePlatform builds the platform restricted to the alive processors,
// returning it together with the sub-index → original-id table.
func alivePlatform(pl *platform.Platform, failed []bool) (*platform.Platform, []int) {
	m := pl.NumProcs()
	ids := make([]int, 0, m)
	for u := 0; u < m; u++ {
		if !failed[u] {
			ids = append(ids, u)
		}
	}
	k := len(ids)
	sub := &platform.Platform{
		Speed:    make([]float64, k),
		FailProb: make([]float64, k),
		B:        make([][]float64, k),
		BIn:      make([]float64, k),
		BOut:     make([]float64, k),
	}
	for i, u := range ids {
		sub.Speed[i] = pl.Speed[u]
		sub.FailProb[i] = pl.FailProb[u]
		sub.BIn[i] = pl.BIn[u]
		sub.BOut[i] = pl.BOut[u]
		row := make([]float64, k)
		for j, v := range ids {
			row[j] = pl.B[u][v]
		}
		sub.B[i] = row
	}
	return sub, ids
}

// translateMapping rewrites a sub-platform mapping back to original
// processor ids.
func translateMapping(m *mapping.Mapping, ids []int) *mapping.Mapping {
	out := &mapping.Mapping{
		Intervals: append([]mapping.Interval(nil), m.Intervals...),
		Alloc:     make([][]int, len(m.Alloc)),
	}
	for j, procs := range m.Alloc {
		row := make([]int, len(procs))
		for i, u := range procs {
			row[i] = ids[u]
		}
		out.Alloc[j] = row
	}
	return out
}
