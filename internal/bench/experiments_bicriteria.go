package bench

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/exact"
	"repro/internal/heuristics"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/poly"
	"repro/internal/workload"
)

// E7FullyHomBiCriteria sweeps latency and FP thresholds on a Fully
// Homogeneous platform and compares Algorithms 1 and 2 against exhaustive
// enumeration (Theorem 5).
func E7FullyHomBiCriteria() *Table {
	t := &Table{
		ID:     "E7",
		Title:  "Theorem 5 (Algorithms 1-2): bi-criteria on Fully Homogeneous",
		Header: []string{"query", "threshold", "algorithm", "exhaustive", "k used", "agree"},
	}
	p := pipeline.MustNew([]float64{1, 1}, []float64{4, 9, 4})
	pl, err := platform.NewFullyHomogeneous(5, 1, 2, 0.5)
	if err != nil {
		panic(err)
	}
	for _, L := range []float64{6, 8, 10, 12, 14} {
		res, err1 := poly.Algorithm1(p, pl, L)
		ex, err2 := exact.MinFPUnderLatency(p, pl, L, exact.Options{})
		t.AddRow("min FP s.t. latency", f(L), cellFP(res, err1), cellFPExact(ex, err2), cellK(res, err1), agreeFP(res, err1, ex, err2))
	}
	for _, F := range []float64{0.6, 0.3, 0.13, 0.04, 0.01} {
		res, err1 := poly.Algorithm2(p, pl, F)
		ex, err2 := exact.MinLatencyUnderFP(p, pl, F, exact.Options{})
		t.AddRow("min latency s.t. FP", f(F), cellLat(res, err1), cellLatExact(ex, err2), cellK(res, err1), agreeLat(res, err1, ex, err2))
	}
	t.AddNote("latency(k) = k*δ0/b + ΣW/s + δn/b = 2k+4 here; FP(k) = 0.5^k")
	return t
}

// E8CommHomBiCriteria does the same for Algorithms 3 and 4 on a CommHom +
// FailureHom platform (Theorem 6).
func E8CommHomBiCriteria() *Table {
	t := &Table{
		ID:     "E8",
		Title:  "Theorem 6 (Algorithms 3-4): bi-criteria on CommHom + FailureHom",
		Header: []string{"query", "threshold", "algorithm", "exhaustive", "k used", "agree"},
	}
	p := pipeline.MustNew([]float64{6}, []float64{1, 1})
	pl, err := platform.NewCommHomogeneous([]float64{4, 3, 2, 1}, []float64{0.5, 0.5, 0.5, 0.5}, 1)
	if err != nil {
		panic(err)
	}
	for _, L := range []float64{3.5, 5, 7, 11} {
		res, err1 := poly.Algorithm3(p, pl, L)
		ex, err2 := exact.MinFPUnderLatency(p, pl, L, exact.Options{})
		t.AddRow("min FP s.t. latency", f(L), cellFP(res, err1), cellFPExact(ex, err2), cellK(res, err1), agreeFP(res, err1, ex, err2))
	}
	for _, F := range []float64{0.6, 0.3, 0.13, 0.07} {
		res, err1 := poly.Algorithm4(p, pl, F)
		ex, err2 := exact.MinLatencyUnderFP(p, pl, F, exact.Options{})
		t.AddRow("min latency s.t. FP", f(F), cellLat(res, err1), cellLatExact(ex, err2), cellK(res, err1), agreeLat(res, err1, ex, err2))
	}
	return t
}

// E10HeuristicsOpenCase measures heuristic quality on the open class
// (CommHom + FailureHet): optimality gap of the single-interval sweep,
// greedy, and annealing against exhaustive optima on random instances.
func E10HeuristicsOpenCase() *Table {
	t := &Table{
		ID:     "E10",
		Title:  "Open case (CommHom+FailureHet): heuristics vs exhaustive optimum (min FP s.t. latency)",
		Header: []string{"inst", "n", "m", "exact FP", "sweep FP", "greedy FP", "anneal FP", "greedy=opt"},
	}
	rng := rand.New(rand.NewSource(83))
	matches, total := 0, 0
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(2)
		m := 3 + rng.Intn(3)
		inst := workload.Random(rng, platform.CommHomogeneous, n, m)
		// A threshold between the fastest single processor latency and a
		// loose bound, so the constraint binds.
		fast, err := poly.MinLatencyCommHom(inst.Pipeline, inst.Platform)
		if err != nil {
			panic(err)
		}
		L := fast.Metrics.Latency * (1.3 + rng.Float64())
		ex, err := exact.MinFPUnderLatency(inst.Pipeline, inst.Platform, L, exact.Options{})
		if errors.Is(err, exact.ErrInfeasible) {
			continue
		}
		if err != nil {
			panic(err)
		}
		pr := &heuristics.Problem{Pipe: inst.Pipeline, Plat: inst.Platform, Goal: heuristics.MinFP, Bound: L}
		sweep, errS := heuristics.SingleIntervalSweep(pr)
		greedy, errG := heuristics.Greedy(context.Background(), pr)
		anneal, errA := heuristics.Anneal(context.Background(), pr, heuristics.AnnealConfig{Seed: int64(trial + 1), Iters: 1500, Restarts: 3})
		total++
		match := errG == nil && greedy.Metrics.FailureProb <= ex.Metrics.FailureProb+1e-9
		if match {
			matches++
		}
		t.AddRow(fmt.Sprint(trial), fmt.Sprint(n), fmt.Sprint(m), f(ex.Metrics.FailureProb),
			cellHeur(sweep, errS), cellHeur(greedy, errG), cellHeur(anneal, errA), fmt.Sprint(match))
	}
	t.AddNote("greedy matched the exhaustive optimum on %d/%d instances", matches, total)
	return t
}

func cellFP(res poly.Result, err error) string {
	if err != nil {
		return "infeasible"
	}
	return f(res.Metrics.FailureProb)
}

func cellLat(res poly.Result, err error) string {
	if err != nil {
		return "infeasible"
	}
	return f(res.Metrics.Latency)
}

func cellFPExact(res exact.Result, err error) string {
	if err != nil {
		return "infeasible"
	}
	return f(res.Metrics.FailureProb)
}

func cellLatExact(res exact.Result, err error) string {
	if err != nil {
		return "infeasible"
	}
	return f(res.Metrics.Latency)
}

func cellK(res poly.Result, err error) string {
	if err != nil {
		return "-"
	}
	return fmt.Sprint(len(res.Mapping.UsedProcs()))
}

func cellHeur(res heuristics.Result, err error) string {
	if err != nil {
		return "not found"
	}
	return f(res.Metrics.FailureProb)
}

func agreeFP(res poly.Result, err1 error, ex exact.Result, err2 error) string {
	if (err1 != nil) != (err2 != nil) {
		return "MISMATCH"
	}
	if err1 != nil {
		return "true"
	}
	return fmt.Sprint(math.Abs(res.Metrics.FailureProb-ex.Metrics.FailureProb) <= 1e-9)
}

func agreeLat(res poly.Result, err1 error, ex exact.Result, err2 error) string {
	if (err1 != nil) != (err2 != nil) {
		return "MISMATCH"
	}
	if err1 != nil {
		return "true"
	}
	return fmt.Sprint(math.Abs(res.Metrics.Latency-ex.Metrics.Latency) <= 1e-9)
}
