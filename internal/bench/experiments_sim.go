package bench

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/poly"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E11SimulatorValidation runs the discrete-event simulator against the
// analytic formulas: worst-case mode must equal Eq. (1)/(2) exactly, and
// the Monte-Carlo failure rate must converge to the analytic FP.
func E11SimulatorValidation() *Table {
	t := &Table{
		ID:     "E11",
		Title:  "Simulator substrate: worst case = analytic latency; Monte-Carlo rate = analytic FP",
		Header: []string{"instance", "analytic lat", "simulated lat", "analytic FP", "sampled FP (40k)", "within 4σ"},
	}
	rng := rand.New(rand.NewSource(97))

	run := func(name string, p *pipeline.Pipeline, pl *platform.Platform, m *mapping.Mapping) {
		analyticLat, err := mapping.Latency(p, pl, m)
		if err != nil {
			panic(err)
		}
		res, err := sim.Run(p, pl, m, sim.Config{Mode: sim.WorstCase})
		if err != nil {
			panic(err)
		}
		analyticFP := mapping.FailureProb(pl, m)
		est, err := sim.EstimateFP(pl, m, 40_000, rng)
		if err != nil {
			panic(err)
		}
		t.AddRow(name, f(analyticLat), f(res.MaxLatency), f(analyticFP), f(est.FP),
			fmt.Sprint(est.Within(analyticFP, 4)))
	}

	p5, pl5 := workload.Fig5()
	run("Fig5 split", p5, pl5, &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	})
	run("Fig5 two fast", p5, pl5, mapping.NewSingleInterval(2, []int{1, 2}))
	p34, pl34 := workload.Fig34()
	run("Fig34 split", p34, pl34, &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {1}},
	})
	for trial := 0; trial < 3; trial++ {
		inst := workload.Random(rng, platform.FullyHeterogeneous, 2+rng.Intn(3), 4+rng.Intn(3))
		m := mapping.NewSingleInterval(inst.Pipeline.NumStages(), []int{0, 1, 2})
		run(fmt.Sprintf("random het %d", trial), inst.Pipeline, inst.Platform, m)
	}
	t.AddNote("worst-case simulation and the analytic formula agree to 1e-9 on every row")
	return t
}

// E12JPEG maps the JPEG encoder pipeline of the companion report [3] onto
// a mixed cluster and reports the latency/reliability trade-off at several
// latency thresholds.
func E12JPEG() *Table {
	t := &Table{
		ID:     "E12",
		Title:  "JPEG encoder case study (companion report [3]): 7 stages on a mixed cluster",
		Header: []string{"latency bound (xT2)", "intervals", "procs used", "latency", "FP", "certainty"},
	}
	p := workload.JPEG(640, 480)
	pl := workload.Cluster(5e5,
		workload.Group{Count: 2, Speed: 2e6, FP: 0.02},  // slow, very reliable
		workload.Group{Count: 6, Speed: 12e6, FP: 0.25}, // fast, unreliable
	)
	base, err := poly.MinLatencyCommHom(p, pl)
	if err != nil {
		panic(err)
	}
	for _, factor := range []float64{1.0, 1.3, 1.8, 2.5, 4} {
		L := base.Metrics.Latency * factor
		res, err := core.SolveWithOptions(core.Problem{
			Pipeline:   p,
			Platform:   pl,
			Objective:  core.MinimizeFailureProb,
			MaxLatency: L,
		}, core.Options{})
		if err != nil {
			t.AddRow(fmt.Sprintf("%.1f", factor), "-", "-", "-", "infeasible", "-")
			continue
		}
		t.AddRow(fmt.Sprintf("%.1f", factor),
			fmt.Sprint(res.Mapping.NumIntervals()),
			fmt.Sprint(len(res.Mapping.UsedProcs())),
			f(res.Metrics.Latency), f(res.Metrics.FailureProb), res.Certainty.String())
	}
	t.AddNote("T2 = fastest-single-processor latency (Theorem 2) = %s", f(base.Metrics.Latency))
	t.AddNote("relaxing the latency bound buys reliability by widening replication")
	return t
}

// E13Scalability times the polynomial algorithms on growing instances:
// the Theorem 4 layered DP (O(n·m²)) and Algorithms 1/3 (O(m log m)).
func E13Scalability() *Table {
	t := &Table{
		ID:     "E13",
		Title:  "Scalability of the polynomial algorithms",
		Header: []string{"algorithm", "n", "m", "time"},
	}
	rng := rand.New(rand.NewSource(101))
	for _, size := range []int{16, 64, 128} {
		p := pipeline.Random(rng, size, 1, 10, 1, 10)
		pl := platform.RandomFullyHeterogeneous(rng, size, 1, 10, 0, 1, 1, 10)
		start := time.Now()
		poly.MinLatencyGeneral(p, pl)
		t.AddRow("Thm4 layered DP", fmt.Sprint(size), fmt.Sprint(size), time.Since(start).String())
	}
	for _, m := range []int{256, 1024, 4096} {
		p := pipeline.Random(rng, 16, 1, 10, 1, 10)
		pl, err := platform.NewFullyHomogeneous(m, 2, 2, 0.3)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		if _, err := poly.Algorithm1(p, pl, 1e6); err != nil {
			panic(err)
		}
		t.AddRow("Algorithm 1", "16", fmt.Sprint(m), time.Since(start).String())
	}
	return t
}

// E14ReplicationAblation traces the latency/FP curve as the replication
// factor k grows on a Fully Homogeneous platform — the trade-off curve
// that Algorithms 1 and 2 walk — plus the consensus-overhead ablation of
// the simulator.
func E14ReplicationAblation() *Table {
	t := &Table{
		ID:     "E14",
		Title:  "Ablation: replication factor k vs latency and FP (Fully Homogeneous), consensus overhead",
		Header: []string{"k", "latency Eq.(1)", "FP", "simulated (free consensus)", "simulated (timeout=1, 2 dead)"},
	}
	p, pl, ev := e14Instance()
	// One Evaluator serves the whole sweep: the k-replica mapping is a
	// single interval [S1..S2] on the mask of the first k processors, and
	// the sweep mappings share one backing processor slice.
	ends := []int{1}
	masks := []uint64{0}
	procs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	m := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 1}},
		Alloc:     [][]int{nil},
	}
	failed := make([]bool, 8)
	failed[0], failed[1] = true, true
	for k := 1; k <= 8; k++ {
		m.Alloc[0] = procs[:k]
		masks[0] = 1<<uint(k) - 1
		met := ev.Eval(ends, masks)
		wc, err := sim.Run(p, pl, m, sim.Config{Mode: sim.WorstCase})
		if err != nil {
			panic(err)
		}
		injected := "-"
		if k >= 3 {
			res, err := sim.RunInjected(p, pl, m, sim.Config{ConsensusTimeout: 1}, failed)
			if err != nil {
				panic(err)
			}
			injected = f(res.MaxLatency)
		}
		t.AddRow(strconv.Itoa(k), f(met.Latency), f(met.FailureProb), f(wc.MaxLatency), injected)
	}
	t.AddNote("each extra replica adds δ0/b = 2 to the latency and multiplies FP by fp = 0.3")
	return t
}

// e14Instance lazily builds the fixed E14 pipeline, platform and
// evaluator once — the sweep itself is what the E14 benchmark times.
var e14Once = sync.OnceValue(func() *e14State {
	p := pipeline.MustNew([]float64{5, 5}, []float64{4, 6, 4})
	pl, err := platform.NewFullyHomogeneous(8, 2, 2, 0.3)
	if err != nil {
		panic(err)
	}
	ev, err := mapping.NewEvaluator(p, pl)
	if err != nil {
		panic(err)
	}
	return &e14State{p: p, pl: pl, ev: ev}
})

type e14State struct {
	p  *pipeline.Pipeline
	pl *platform.Platform
	ev *mapping.Evaluator
}

func e14Instance() (*pipeline.Pipeline, *platform.Platform, *mapping.Evaluator) {
	st := e14Once()
	return st.p, st.pl, st.ev
}

// DPvsDijkstra compares the two Theorem 4 implementations (layer DP vs
// explicit-graph Dijkstra) — an implementation ablation used by the
// benchmarks.
func DPvsDijkstra(n, m int, seed int64) (dpLatency, dijkstraLatency float64) {
	rng := rand.New(rand.NewSource(seed))
	p := pipeline.Random(rng, n, 1, 10, 1, 10)
	pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0, 1, 1, 10)
	dpLatency, _ = graph.LayeredShortestPathDP(p, pl)
	g := graph.BuildLayered(p, pl)
	dist, _ := g.Dijkstra(graph.LayeredSource)
	dijkstraLatency = dist[graph.LayeredSink(n, m)]
	return dpLatency, dijkstraLatency
}
