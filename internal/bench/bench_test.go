package bench

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddNote("hello %d", 7)
	s := tb.String()
	for _, want := range []string{"== T: demo ==", "a", "bb", "note: hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}

// TestE1Numbers asserts the paper's Figure 3-4 values inside the table.
func TestE1Numbers(t *testing.T) {
	tb := E1Fig34()
	if tb.Rows[0][1] != "105" || tb.Rows[1][1] != "105" {
		t.Errorf("single-processor latencies = %v, want 105", tb.Rows[0:2])
	}
	if tb.Rows[2][1] != "7" || tb.Rows[3][1] != "7" {
		t.Errorf("split/optimal latency rows = %v, want 7", tb.Rows[2:4])
	}
}

// TestE2Numbers asserts the Figure 5 values: 0.64 for the single interval
// and 1 − 0.9(1 − 0.8^10) for the exhaustive optimum.
func TestE2Numbers(t *testing.T) {
	tb := E2Fig5()
	if tb.Rows[0][2] != "0.64" {
		t.Errorf("single-interval FP = %s, want 0.64", tb.Rows[0][2])
	}
	want := 1 - (1-0.1)*(1-math.Pow(0.8, 10))
	for _, row := range tb.Rows[1:] {
		var got float64
		if _, err := sscan(row[2], &got); err != nil {
			t.Fatalf("bad FP cell %q", row[2])
		}
		if math.Abs(got-want) > 1e-4 {
			t.Errorf("FP cell = %s, want ≈ %g", row[2], want)
		}
	}
	if tb.Rows[1][1] != "22" {
		t.Errorf("split latency = %s, want 22", tb.Rows[1][1])
	}
}

// TestAgreementExperiments: every validation experiment must report full
// agreement between algorithm and oracle.
func TestAgreementExperiments(t *testing.T) {
	for _, tb := range []*Table{E3MinFP(), E4MinLatencyCommHom()} {
		for _, row := range tb.Rows {
			if row[len(row)-1] != "true" {
				t.Errorf("%s: disagreement row %v", tb.ID, row)
			}
		}
	}
	for _, tb := range []*Table{E7FullyHomBiCriteria(), E8CommHomBiCriteria()} {
		for _, row := range tb.Rows {
			if row[len(row)-1] != "true" {
				t.Errorf("%s: disagreement row %v", tb.ID, row)
			}
		}
	}
	for _, tb := range []*Table{E5TSPReduction(), E9PartitionReduction()} {
		for _, row := range tb.Rows {
			if row[len(row)-1] != "true" {
				t.Errorf("%s: non-equivalent reduction row %v", tb.ID, row)
			}
		}
	}
}

// TestE6Ordering: the shortest path equals brute force and lower-bounds
// the restricted mapping families.
func TestE6Ordering(t *testing.T) {
	tb := E6GeneralShortestPath()
	for _, row := range tb.Rows {
		var sp, brute, oto, iv float64
		for i, dst := range []*float64{&sp, &brute, &oto, &iv} {
			if _, err := sscan(row[2+i], dst); err != nil {
				t.Fatalf("bad cell %q", row[2+i])
			}
		}
		if math.Abs(sp-brute) > 1e-6*math.Max(1, brute) {
			t.Errorf("shortest path %g != brute force %g", sp, brute)
		}
		if oto < sp-1e-6 || iv < sp-1e-6 {
			t.Errorf("restricted optimum below general optimum: %v", row)
		}
	}
}

// TestE10GreedyQuality: the note records how often greedy matched the
// exact optimum; require a majority on this fixed panel.
func TestE10GreedyQuality(t *testing.T) {
	tb := E10HeuristicsOpenCase()
	if len(tb.Rows) == 0 {
		t.Skip("no feasible instances")
	}
	matches := 0
	for _, row := range tb.Rows {
		if row[len(row)-1] == "true" {
			matches++
		}
	}
	if matches*2 < len(tb.Rows) {
		t.Errorf("greedy matched exact on %d/%d rows", matches, len(tb.Rows))
	}
}

// TestE11WithinSigma: every simulator row must be inside the Monte-Carlo
// confidence band.
func TestE11WithinSigma(t *testing.T) {
	tb := E11SimulatorValidation()
	for _, row := range tb.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("Monte-Carlo row outside 4σ: %v", row)
		}
		var analytic, simulated float64
		sscan(row[1], &analytic)
		sscan(row[2], &simulated)
		if math.Abs(analytic-simulated) > 1e-6*math.Max(1, analytic) {
			t.Errorf("worst-case mismatch: %v", row)
		}
	}
}

// TestE12MonotoneTradeoff: relaxing the latency bound never increases the
// optimal FP.
func TestE12MonotoneTradeoff(t *testing.T) {
	tb := E12JPEG()
	prev := math.Inf(1)
	for _, row := range tb.Rows {
		var fp float64
		if _, err := sscan(row[4], &fp); err != nil {
			continue // infeasible row
		}
		if fp > prev+1e-12 {
			t.Errorf("FP increased when relaxing the bound: %v", tb.Rows)
		}
		prev = fp
	}
}

// TestE14Monotone: latency grows and FP shrinks with k.
func TestE14Monotone(t *testing.T) {
	tb := E14ReplicationAblation()
	var prevLat, prevFP float64
	for i, row := range tb.Rows {
		var lat, fp float64
		sscan(row[1], &lat)
		sscan(row[2], &fp)
		if i > 0 {
			if lat <= prevLat || fp >= prevFP {
				t.Errorf("k-curve not monotone at row %d: %v", i, row)
			}
		}
		prevLat, prevFP = lat, fp
	}
}

func TestDPvsDijkstraAgree(t *testing.T) {
	dp, dij := DPvsDijkstra(10, 10, 5)
	if math.Abs(dp-dij) > 1e-9*math.Max(1, dp) {
		t.Errorf("DP %g != Dijkstra %g", dp, dij)
	}
}

// TestAllRuns: every experiment renders without panicking and with at
// least one row (smoke test for cmd/paperbench).
func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	for _, tb := range All() {
		if len(tb.Rows) == 0 {
			t.Errorf("%s produced no rows", tb.ID)
		}
		if tb.String() == "" {
			t.Errorf("%s renders empty", tb.ID)
		}
	}
}

func sscan(s string, dst *float64) (int, error) {
	return fmt.Sscan(s, dst)
}
