// Package bench regenerates every reproducible artifact of the paper as a
// formatted table: the worked examples of Section 3, an executable
// validation of each theorem and algorithm, and the extension experiments
// described in DESIGN.md (heuristic quality on the open classes, simulator
// validation, the JPEG case study, scalability and ablation sweeps).
//
// Each experiment EXX has a function returning a *Table; cmd/paperbench
// prints them and the root-level benchmarks time the underlying
// computations. Experiments are deterministic (fixed seeds).
package bench

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is one experiment's output: a title, a header row, data rows, and
// free-form notes (typically the paper-vs-measured comparison).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned monospace text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f formats a float compactly (like %.6g, without the fmt reflection
// overhead — table rendering shows up in the experiment benchmarks).
// Integral values below 10^6 print identically under %.6g and base-10
// integer formatting, so they take the cheap path.
func f(x float64) string {
	if x > -1e6 && x < 1e6 {
		if i := int64(x); float64(i) == x {
			return strconv.FormatInt(i, 10)
		}
	}
	return strconv.FormatFloat(x, 'g', 6, 64)
}

// All runs every experiment and returns the tables in order.
func All() []*Table {
	return []*Table{
		E1Fig34(),
		E2Fig5(),
		E3MinFP(),
		E4MinLatencyCommHom(),
		E5TSPReduction(),
		E6GeneralShortestPath(),
		E7FullyHomBiCriteria(),
		E8CommHomBiCriteria(),
		E9PartitionReduction(),
		E10HeuristicsOpenCase(),
		E11SimulatorValidation(),
		E12JPEG(),
		E13Scalability(),
		E14ReplicationAblation(),
		E15TriCriteria(),
		E16PeriodValidation(),
		E17IntervalBounds(),
	}
}
