package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/exact"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/poly"
)

// E17IntervalBounds probes the paper's open question (§4.1: the
// complexity of latency-minimal interval mappings on Fully Heterogeneous
// platforms) experimentally: the Theorem 4 relaxation gives polynomial
// two-sided bounds, and the table reports how often they are tight and the
// worst observed gap against the exhaustive optimum.
func E17IntervalBounds() *Table {
	t := &Table{
		ID:     "E17",
		Title:  "Open problem (§4.1): Theorem 4 relaxation bounds on interval latency (FullyHet)",
		Header: []string{"n", "m", "lower (Thm4)", "exact optimum", "upper (repair)", "tight"},
	}
	rng := rand.New(rand.NewSource(131))
	tight, total := 0, 0
	worstGap := 0.0
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(3)
		m := 2 + rng.Intn(3)
		p := pipeline.Random(rng, n, 1, 10, 1, 10)
		pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0, 1, 1, 20)
		b, err := poly.IntervalLatencyBounds(p, pl)
		if err != nil {
			continue
		}
		ex, err := exact.MinLatencyInterval(p, pl, exact.Options{})
		if err != nil {
			continue
		}
		total++
		if b.Tight {
			tight++
		}
		if gap := b.Upper.Metrics.Latency/math.Max(ex.Metrics.Latency, 1e-12) - 1; gap > worstGap {
			worstGap = gap
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(m), f(b.Lower), f(ex.Metrics.Latency),
			f(b.Upper.Metrics.Latency), fmt.Sprint(b.Tight))
	}
	t.AddNote("relaxation tight on %d/%d instances; worst upper-bound gap %.2f%%", tight, total, worstGap*100)
	return t
}
