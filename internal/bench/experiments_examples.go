package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/exact"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/poly"
	"repro/internal/workload"
)

// E1Fig34 reproduces the Section 3 motivating example (Figures 3 and 4):
// on the fully heterogeneous two-processor platform, any single-processor
// mapping costs 105 while the split mapping costs 7, and the exhaustive
// optimum is the split.
func E1Fig34() *Table {
	p, pl := workload.Fig34()
	t := &Table{
		ID:     "E1",
		Title:  "Figures 3-4: splitting beats any single processor (Fully Heterogeneous)",
		Header: []string{"mapping", "latency", "paper"},
	}
	for u := 0; u < 2; u++ {
		m := mapping.NewSingleInterval(2, []int{u})
		lat, err := mapping.LatencyEq2(p, pl, m)
		if err != nil {
			panic(err)
		}
		t.AddRow(fmt.Sprintf("[S1..S2] on P%d", u+1), f(lat), "105")
	}
	split := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {1}},
	}
	lat, err := mapping.LatencyEq2(p, pl, split)
	if err != nil {
		panic(err)
	}
	t.AddRow("[S1] on P1, [S2] on P2", f(lat), "7")
	opt, err := exact.MinLatencyInterval(p, pl, exact.Options{})
	if err != nil {
		panic(err)
	}
	t.AddRow("exhaustive optimum", f(opt.Metrics.Latency), "7")
	t.AddNote("optimal mapping: %s (%d intervals)", opt.Mapping, opt.Mapping.NumIntervals())
	return t
}

// E2Fig5 reproduces the Figure 5 example: under latency threshold 22 on
// the CommHom+FailureHet platform, the best single interval reaches
// FP = 0.64 while the two-interval mapping reaches FP ≈ 0.1966 at latency
// exactly 22 — proving Lemma 1 cannot extend to this class.
func E2Fig5() *Table {
	p, pl := workload.Fig5()
	L := workload.Fig5LatencyThreshold
	t := &Table{
		ID:     "E2",
		Title:  "Figure 5: the bi-criteria optimum needs two intervals (CommHom+FailureHet, L=22)",
		Header: []string{"mapping", "latency", "FP", "paper FP"},
	}
	twoFast := mapping.NewSingleInterval(2, []int{1, 2})
	met, err := mapping.Evaluate(p, pl, twoFast)
	if err != nil {
		panic(err)
	}
	t.AddRow("best single interval (2 fast procs)", f(met.Latency), f(met.FailureProb), "0.64")

	split := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	}
	metS, err := mapping.Evaluate(p, pl, split)
	if err != nil {
		panic(err)
	}
	t.AddRow("slow stage on reliable + 10x replication", f(metS.Latency), f(metS.FailureProb), "< 0.2")

	opt, err := exact.MinFPUnderLatency(p, pl, L, exact.Options{MaxEnum: 20_000_000})
	if err != nil {
		panic(err)
	}
	t.AddRow("exhaustive optimum", f(opt.Metrics.Latency), f(opt.Metrics.FailureProb), "")
	t.AddNote("optimal mapping: %s", opt.Mapping)
	return t
}

// E3MinFP validates Theorem 1 on random platforms of every class: the
// full-replication mapping always matches the exhaustive FP optimum.
func E3MinFP() *Table {
	t := &Table{
		ID:     "E3",
		Title:  "Theorem 1: minimum failure probability = replicate everything everywhere",
		Header: []string{"platform", "n", "m", "Thm1 FP", "exhaustive FP", "agree"},
	}
	rng := rand.New(rand.NewSource(31))
	classes := []platform.Class{platform.FullyHomogeneous, platform.CommHomogeneous, platform.FullyHeterogeneous}
	for _, cls := range classes {
		for trial := 0; trial < 3; trial++ {
			n := 1 + rng.Intn(3)
			m := 2 + rng.Intn(3)
			inst := workload.Random(rng, cls, n, m)
			res, err := poly.MinFailureProb(inst.Pipeline, inst.Platform)
			if err != nil {
				panic(err)
			}
			ex, err := exact.MinFPUnderLatency(inst.Pipeline, inst.Platform, math.Inf(1), exact.Options{})
			if err != nil {
				panic(err)
			}
			agree := math.Abs(res.Metrics.FailureProb-ex.Metrics.FailureProb) <= 1e-12
			t.AddRow(cls.String(), fmt.Sprint(n), fmt.Sprint(m),
				f(res.Metrics.FailureProb), f(ex.Metrics.FailureProb), fmt.Sprint(agree))
		}
	}
	return t
}

// E4MinLatencyCommHom validates Theorem 2: on CommHom platforms the
// latency optimum is the whole pipeline on the fastest processor.
func E4MinLatencyCommHom() *Table {
	t := &Table{
		ID:     "E4",
		Title:  "Theorem 2: minimum latency on CommHom = fastest single processor",
		Header: []string{"n", "m", "Thm2 latency", "exhaustive latency", "agree"},
	}
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 6; trial++ {
		n := 1 + rng.Intn(4)
		m := 2 + rng.Intn(3)
		inst := workload.Random(rng, platform.CommHomogeneous, n, m)
		res, err := poly.MinLatencyCommHom(inst.Pipeline, inst.Platform)
		if err != nil {
			panic(err)
		}
		ex, err := exact.MinLatencyInterval(inst.Pipeline, inst.Platform, exact.Options{})
		if err != nil {
			panic(err)
		}
		agree := math.Abs(res.Metrics.Latency-ex.Metrics.Latency) <= 1e-9
		t.AddRow(fmt.Sprint(n), fmt.Sprint(m), f(res.Metrics.Latency), f(ex.Metrics.Latency), fmt.Sprint(agree))
	}
	return t
}

// E6GeneralShortestPath validates Theorem 4: the layered-graph shortest
// path equals the brute-force general-mapping optimum, and is never above
// the one-to-one or interval optima (general mappings are a superset).
func E6GeneralShortestPath() *Table {
	t := &Table{
		ID:     "E6",
		Title:  "Theorem 4 / Figure 6: general mappings via shortest path (Fully Heterogeneous)",
		Header: []string{"n", "m", "shortest path", "brute force", "one-to-one opt", "interval opt"},
	}
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 6; trial++ {
		n := 2 + rng.Intn(3)
		m := n + rng.Intn(2)
		p := pipeline.Random(rng, n, 1, 10, 1, 10)
		pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0, 1, 1, 20)
		dp := poly.MinLatencyGeneral(p, pl)
		brute, err := exact.MinLatencyGeneralBrute(p, pl)
		if err != nil {
			panic(err)
		}
		oto, err := exact.MinLatencyOneToOne(p, pl)
		if err != nil {
			panic(err)
		}
		iv, err := exact.MinLatencyInterval(p, pl, exact.Options{})
		if err != nil {
			panic(err)
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(m), f(dp.Latency), f(brute.Latency), f(oto.Latency), f(iv.Metrics.Latency))
	}
	t.AddNote("shortest path = brute force on every row; one-to-one and interval optima are ≥ (restrictions)")
	return t
}
