package bench

import (
	"fmt"
	"math"

	"repro/internal/exact"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/throughput"
)

// E15TriCriteria regenerates the future-work (§5) experiment: the
// three-criteria trade-off between latency, failure probability and
// period on a small instance, solved exhaustively over round-robin
// mappings at several FP budgets.
func E15TriCriteria() *Table {
	t := &Table{
		ID:     "E15",
		Title:  "Future work (§5): min period under latency+FP constraints (RR mappings, exhaustive)",
		Header: []string{"FP budget", "period", "latency", "FP", "mapping"},
	}
	p := pipeline.MustNew([]float64{20, 120, 30}, []float64{8, 6, 4, 2})
	pl, err := platform.NewCommHomogeneous(
		[]float64{10, 10, 10, 10, 10},
		[]float64{0.2, 0.2, 0.2, 0.2, 0.2},
		4)
	if err != nil {
		panic(err)
	}
	for _, budget := range []float64{1, 0.5, 0.2, 0.05, 0.01} {
		res, err := throughput.MinPeriodUnderConstraints(p, pl, math.Inf(1), budget, exact.Options{})
		if err != nil {
			t.AddRow(f(budget), "infeasible", "-", "-", "-")
			continue
		}
		t.AddRow(f(budget), f(res.Metrics.Period), f(res.Metrics.Latency),
			f(res.Metrics.FailureProb), res.Mapping.String())
	}
	t.AddNote("tighter reliability budgets force groups to merge: the period climbs as FP drops")
	return t
}

// E16PeriodValidation cross-checks the three period models against the
// simulator's measured steady state on the paper's instances.
func E16PeriodValidation() *Table {
	t := &Table{
		ID:     "E16",
		Title:  "Period models vs simulator steady state (48 data sets)",
		Header: []string{"instance", "overlap", "sustainable", "no-overlap", "simulated gap", "agree"},
	}
	type instCase struct {
		name string
		p    *pipeline.Pipeline
		pl   *platform.Platform
		m    *mapping.Mapping
	}
	p5 := pipeline.MustNew([]float64{1, 100}, []float64{10, 1, 0})
	speeds := []float64{1}
	fps := []float64{0.1}
	for i := 0; i < 10; i++ {
		speeds = append(speeds, 100)
		fps = append(fps, 0.8)
	}
	pl5, err := platform.NewCommHomogeneous(speeds, fps, 1)
	if err != nil {
		panic(err)
	}
	p34 := pipeline.MustNew([]float64{2, 2}, []float64{100, 100, 100})
	pl34, err := platform.NewFullyHeterogeneous(
		[]float64{1, 1}, []float64{0.1, 0.1},
		[][]float64{{0, 100}, {100, 0}}, []float64{100, 1}, []float64{1, 100})
	if err != nil {
		panic(err)
	}
	cases := []instCase{
		{"Fig5 split", p5, pl5, &mapping.Mapping{
			Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
			Alloc:     [][]int{{0}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
		}},
		{"Fig5 two fast", p5, pl5, mapping.NewSingleInterval(2, []int{1, 2})},
		{"Fig34 split", p34, pl34, &mapping.Mapping{
			Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
			Alloc:     [][]int{{0}, {1}},
		}},
	}
	for _, c := range cases {
		po, err := throughput.PeriodOverlap(c.p, c.pl, c.m)
		if err != nil {
			panic(err)
		}
		ps, err := throughput.PeriodSustainable(c.p, c.pl, c.m)
		if err != nil {
			panic(err)
		}
		pn, err := throughput.PeriodNoOverlap(c.p, c.pl, c.m)
		if err != nil {
			panic(err)
		}
		const d = 48
		res, err := sim.Run(c.p, c.pl, c.m, sim.Config{Mode: sim.WorstCase, NumDataSets: d})
		if err != nil {
			panic(err)
		}
		gap := res.DatasetLatencies[d-1] - res.DatasetLatencies[d-2]
		agree := math.Abs(gap-po) <= 1e-9*math.Max(1, po)
		t.AddRow(c.name, f(po), f(ps), f(pn), f(gap), fmt.Sprint(agree))
	}
	t.AddNote("the simulator's steady-state inter-completion gap equals the overlap model exactly")
	return t
}
