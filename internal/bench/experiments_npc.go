package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/npc"
)

// E5TSPReduction validates Theorem 3's reduction on random TSP instances:
// the one-to-one mapping decision always agrees with the Hamiltonian-path
// decision, and the optimal values satisfy latency = path + n + 2.
func E5TSPReduction() *Table {
	t := &Table{
		ID:     "E5",
		Title:  "Theorem 3: TSP -> one-to-one latency reduction (decision equivalence)",
		Header: []string{"|V|", "K", "opt path", "opt latency", "TSP yes", "mapping yes", "equivalent"},
	}
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 6; trial++ {
		n := 3 + rng.Intn(3)
		cost := make([][]float64, n)
		for u := range cost {
			cost[u] = make([]float64, n)
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				c := float64(1 + rng.Intn(9))
				cost[u][v], cost[v][u] = c, c
			}
		}
		s := rng.Intn(n)
		tail := (s + 1 + rng.Intn(n-1)) % n
		ti := &npc.TSPInstance{Cost: cost, S: s, T: tail}
		k := float64(n-1) * 3 // a threshold near typical path costs
		v, err := npc.VerifyTSPReduction(ti, k)
		if err != nil {
			panic(err)
		}
		t.AddRow(fmt.Sprint(n), f(k), f(v.OptimalPath), f(v.OptimalLatency),
			fmt.Sprint(v.TSPYes), fmt.Sprint(v.MappingYes), fmt.Sprint(v.Equivalent()))
	}
	t.AddNote("value identity: optimal latency = optimal path + n + 2 whenever feasible")
	return t
}

// E9PartitionReduction validates Theorem 7's reduction on random
// 2-PARTITION instances: the bi-criteria mapping decision always agrees
// with the subset-sum decision.
func E9PartitionReduction() *Table {
	t := &Table{
		ID:     "E9",
		Title:  "Theorem 7: 2-PARTITION -> bi-criteria decision reduction (equivalence)",
		Header: []string{"m", "sum", "partition yes", "mapping yes", "equivalent"},
	}
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 8; trial++ {
		m := 3 + rng.Intn(8)
		a := make([]int, m)
		for i := range a {
			a[i] = 1 + rng.Intn(12)
		}
		pi := &npc.PartitionInstance{A: a}
		v, err := npc.VerifyPartitionReduction(pi)
		if err != nil {
			panic(err)
		}
		t.AddRow(fmt.Sprint(m), fmt.Sprint(pi.Sum()),
			fmt.Sprint(v.PartitionYes), fmt.Sprint(v.MappingYes), fmt.Sprint(v.Equivalent()))
	}
	t.AddNote("the FP side is decided in log space: 1-(1-q) cancels catastrophically for tiny q")
	return t
}
