package poly

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

func fig5() (*pipeline.Pipeline, *platform.Platform) {
	p := pipeline.MustNew([]float64{1, 100}, []float64{10, 1, 0})
	speeds := []float64{1}
	fps := []float64{0.1}
	for i := 0; i < 10; i++ {
		speeds = append(speeds, 100)
		fps = append(fps, 0.8)
	}
	pl, err := platform.NewCommHomogeneous(speeds, fps, 1)
	if err != nil {
		panic(err)
	}
	return p, pl
}

func TestMinFailureProbUsesEveryProcessor(t *testing.T) {
	p, pl := fig5()
	res, err := MinFailureProb(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Mapping.UsedProcs()); got != pl.NumProcs() {
		t.Errorf("used %d processors, want all %d", got, pl.NumProcs())
	}
	want := 0.1 * math.Pow(0.8, 10)
	if math.Abs(res.Metrics.FailureProb-want) > 1e-12 {
		t.Errorf("FP = %g, want %g", res.Metrics.FailureProb, want)
	}
}

// Property (Theorem 1): no random interval mapping beats full replication.
func TestMinFailureProbOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := n + rng.Intn(5)
		p := pipeline.Random(rng, n, 1, 5, 1, 5)
		pl := platform.RandomCommHomogeneous(rng, m, 1, 5, 0.05, 0.95, 1)
		res, err := MinFailureProb(p, pl)
		if err != nil {
			return false
		}
		other := randomIntervalMapping(rng, n, m)
		fp := mapping.FailureProb(pl, other)
		return res.Metrics.FailureProb <= fp+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinLatencyCommHomPicksFastest(t *testing.T) {
	p, pl := fig5()
	res, err := MinLatencyCommHom(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	used := res.Mapping.UsedProcs()
	if len(used) != 1 || pl.Speed[used[0]] != 100 {
		t.Errorf("expected one fastest processor, got %v", res.Mapping)
	}
	// Latency: δ0/b + (1+100)/100 + δ2/b = 10 + 1.01 + 0 = 11.01.
	if math.Abs(res.Metrics.Latency-11.01) > 1e-9 {
		t.Errorf("latency = %g, want 11.01", res.Metrics.Latency)
	}
}

func TestMinLatencyCommHomWrongClass(t *testing.T) {
	p := pipeline.Uniform(2, 1, 1)
	pl, _ := platform.NewFullyHeterogeneous(
		[]float64{1, 1}, []float64{0, 0},
		[][]float64{{0, 1}, {1, 0}}, []float64{1, 2}, []float64{1, 1})
	if _, err := MinLatencyCommHom(p, pl); !errors.Is(err, ErrWrongClass) {
		t.Errorf("err = %v, want ErrWrongClass", err)
	}
}

// Property (Theorem 2): no random interval mapping on a CommHom platform
// beats the fastest-single-processor latency.
func TestMinLatencyCommHomOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := n + rng.Intn(5)
		p := pipeline.Random(rng, n, 1, 5, 1, 5)
		pl := platform.RandomCommHomogeneous(rng, m, 1, 5, 0, 1, 1+9*rng.Float64())
		res, err := MinLatencyCommHom(p, pl)
		if err != nil {
			return false
		}
		other := randomIntervalMapping(rng, n, m)
		lat, err := mapping.Latency(p, pl, other)
		if err != nil {
			return false
		}
		return res.Metrics.Latency <= lat+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinLatencyGeneralConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := pipeline.Random(rng, 6, 1, 10, 1, 10)
	pl := platform.RandomFullyHeterogeneous(rng, 5, 1, 10, 0, 1, 1, 50)
	res := MinLatencyGeneral(p, pl)
	lat, err := res.Mapping.Latency(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat-res.Latency) > 1e-9 {
		t.Errorf("reported latency %g but mapping evaluates to %g", res.Latency, lat)
	}
}

func TestAlgorithm1HandComputed(t *testing.T) {
	// n=2, W=Σ2, δ0=δn=4, b=2, s=1, fp=0.5, m=5.
	// Latency(k) = 2k + 2 + 2 = 2k + 4. L=11 → k=3. FP = 0.5³ = 0.125.
	p := pipeline.MustNew([]float64{1, 1}, []float64{4, 9, 4})
	pl, _ := platform.NewFullyHomogeneous(5, 1, 2, 0.5)
	res, err := Algorithm1(p, pl, 11)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Mapping.UsedProcs()); got != 3 {
		t.Errorf("k = %d, want 3", got)
	}
	if math.Abs(res.Metrics.FailureProb-0.125) > 1e-12 {
		t.Errorf("FP = %g, want 0.125", res.Metrics.FailureProb)
	}
	if !leqTol(res.Metrics.Latency, 11) {
		t.Errorf("latency %g exceeds threshold 11", res.Metrics.Latency)
	}
	// Exactly achievable threshold: L = 14 → k = 5 (all processors).
	res, err = Algorithm1(p, pl, 14)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Mapping.UsedProcs()); got != 5 {
		t.Errorf("k = %d, want 5 at L=14", got)
	}
	// Infeasible: even k=1 costs 6.
	if _, err = Algorithm1(p, pl, 5.9); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestAlgorithm1HeterogeneousFailures(t *testing.T) {
	// Paper remark: with fully homogeneous speed/links but different fp,
	// the k most reliable processors are selected.
	p := pipeline.MustNew([]float64{2}, []float64{2, 2})
	speeds := []float64{1, 1, 1, 1}
	fps := []float64{0.9, 0.2, 0.5, 0.4}
	pl, err := platform.NewCommHomogeneous(speeds, fps, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Latency(k) = 2k + 2 + 2; L=8 → k=2 → procs with fp 0.2 and 0.4.
	res, err := Algorithm1(p, pl, 8)
	if err != nil {
		t.Fatal(err)
	}
	used := res.Mapping.UsedProcs()
	if len(used) != 2 || used[0] != 1 || used[1] != 3 {
		t.Errorf("used = %v, want [1 3] (the two most reliable)", used)
	}
	if math.Abs(res.Metrics.FailureProb-0.08) > 1e-12 {
		t.Errorf("FP = %g, want 0.08", res.Metrics.FailureProb)
	}
}

func TestAlgorithm1WrongClass(t *testing.T) {
	p := pipeline.Uniform(2, 1, 1)
	pl, _ := platform.NewCommHomogeneous([]float64{1, 2}, []float64{0.1, 0.1}, 1)
	if _, err := Algorithm1(p, pl, 100); !errors.Is(err, ErrWrongClass) {
		t.Errorf("err = %v, want ErrWrongClass (heterogeneous speeds)", err)
	}
}

func TestAlgorithm2HandComputed(t *testing.T) {
	p := pipeline.MustNew([]float64{1, 1}, []float64{4, 9, 4})
	pl, _ := platform.NewFullyHomogeneous(5, 1, 2, 0.5)
	// fp^k ≤ 0.2 → k=3 (0.125). Latency = 2·3+4 = 10.
	res, err := Algorithm2(p, pl, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Mapping.UsedProcs()); got != 3 {
		t.Errorf("k = %d, want 3", got)
	}
	if res.Metrics.Latency != 10 {
		t.Errorf("latency = %g, want 10", res.Metrics.Latency)
	}
	// Infeasible: 0.5^5 = 0.03125 > 0.01.
	if _, err := Algorithm2(p, pl, 0.01); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	// FP threshold 1 is always feasible with one replica.
	res, err = Algorithm2(p, pl, 1)
	if err != nil || len(res.Mapping.UsedProcs()) != 1 {
		t.Errorf("FP=1 should give k=1, got %v, %v", res, err)
	}
}

func TestAlgorithm3Fig5SingleIntervalBound(t *testing.T) {
	// On the Figure-5 platform restricted to the ten identical fast
	// processors (FailureHom), L=22 admits k=2 (latency 21.01) but not
	// k=3 (31.01).
	p := pipeline.MustNew([]float64{1, 100}, []float64{10, 1, 0})
	speeds := make([]float64, 10)
	fps := make([]float64, 10)
	for i := range speeds {
		speeds[i] = 100
		fps[i] = 0.8
	}
	pl, _ := platform.NewCommHomogeneous(speeds, fps, 1)
	res, err := Algorithm3(p, pl, 22)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Mapping.UsedProcs()); got != 2 {
		t.Errorf("k = %d, want 2", got)
	}
	if math.Abs(res.Metrics.FailureProb-0.64) > 1e-12 {
		t.Errorf("FP = %g, want 0.64", res.Metrics.FailureProb)
	}
}

func TestAlgorithm3UsesFastestAndSlowestUsedSpeed(t *testing.T) {
	// Speeds 4,3,2,1; fp=0.5; b=1; W=6; δ0=1, δn=1.
	// k=1: 1+6/4+1 = 3.5 ; k=2: 2+6/3+1 = 5 ; k=3: 3+6/2+1 = 7 ;
	// k=4: 4+6/1+1 = 11.
	p := pipeline.MustNew([]float64{6}, []float64{1, 1})
	pl, _ := platform.NewCommHomogeneous([]float64{4, 3, 2, 1}, []float64{0.5, 0.5, 0.5, 0.5}, 1)
	res, err := Algorithm3(p, pl, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Mapping.UsedProcs()); got != 3 {
		t.Errorf("k = %d, want 3 at L=7", got)
	}
	if res.Metrics.Latency != 7 {
		t.Errorf("latency = %g, want exactly 7", res.Metrics.Latency)
	}
	used := res.Mapping.UsedProcs()
	want := []int{0, 1, 2}
	for i := range want {
		if used[i] != want[i] {
			t.Fatalf("used = %v, want the three fastest %v", used, want)
		}
	}
	if _, err := Algorithm3(p, pl, 3.4); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestAlgorithm3WrongClass(t *testing.T) {
	p, pl := fig5() // Failure Heterogeneous
	if _, err := Algorithm3(p, pl, 100); !errors.Is(err, ErrWrongClass) {
		t.Errorf("err = %v, want ErrWrongClass", err)
	}
}

func TestAlgorithm4HandComputed(t *testing.T) {
	p := pipeline.MustNew([]float64{6}, []float64{1, 1})
	pl, _ := platform.NewCommHomogeneous([]float64{4, 3, 2, 1}, []float64{0.5, 0.5, 0.5, 0.5}, 1)
	// fp^k ≤ 0.2 → k=3; latency = 3 + 6/2 + 1 = 7 on the 3 fastest.
	res, err := Algorithm4(p, pl, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Mapping.UsedProcs()); got != 3 {
		t.Errorf("k = %d, want 3", got)
	}
	if res.Metrics.Latency != 7 {
		t.Errorf("latency = %g, want 7", res.Metrics.Latency)
	}
	if _, err := Algorithm4(p, pl, 0.05); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible (0.5^4 = 0.0625 > 0.05)", err)
	}
}

func TestAlgorithm4WrongClass(t *testing.T) {
	p, pl := fig5()
	if _, err := Algorithm4(p, pl, 0.5); !errors.Is(err, ErrWrongClass) {
		t.Errorf("err = %v, want ErrWrongClass", err)
	}
}

// Property: Algorithm 1's answer satisfies the threshold and beats every
// single-interval subset choice (which, by Lemma 1, is the optimal shape).
func TestAlgorithm1OptimalAgainstSubsets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		m := 1 + rng.Intn(6)
		p := pipeline.Random(rng, n, 1, 5, 1, 5)
		fps := make([]float64, m)
		speeds := make([]float64, m)
		for i := range fps {
			fps[i] = rng.Float64()
			speeds[i] = 3
		}
		pl, err := platform.NewCommHomogeneous(speeds, fps, 2)
		if err != nil {
			return false
		}
		L := 1 + rng.Float64()*20
		res, err := Algorithm1(p, pl, L)
		bestFP, feasible := bestSingleIntervalFP(p, pl, L)
		if errors.Is(err, ErrInfeasible) {
			return !feasible
		}
		if err != nil {
			return false
		}
		return leqTol(res.Metrics.Latency, L) && res.Metrics.FailureProb <= bestFP+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// bestSingleIntervalFP enumerates all non-empty processor subsets for a
// whole-pipeline single interval and returns the best feasible FP.
func bestSingleIntervalFP(p *pipeline.Pipeline, pl *platform.Platform, L float64) (float64, bool) {
	m := pl.NumProcs()
	best := math.Inf(1)
	feasible := false
	for mask := 1; mask < 1<<m; mask++ {
		var procs []int
		for u := 0; u < m; u++ {
			if mask&(1<<u) != 0 {
				procs = append(procs, u)
			}
		}
		mp := mapping.NewSingleInterval(p.NumStages(), procs)
		met, err := mapping.Evaluate(p, pl, mp)
		if err != nil {
			continue
		}
		if leqTol(met.Latency, L) {
			feasible = true
			if met.FailureProb < best {
				best = met.FailureProb
			}
		}
	}
	return best, feasible
}

// Property: Lemma 1's transformation never worsens either criterion on the
// platform classes where it applies.
func TestLemma1TransformProperty(t *testing.T) {
	f := func(seed int64, fullyHom bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := n + rng.Intn(5)
		p := pipeline.Random(rng, n, 1, 5, 1, 5)
		var pl *platform.Platform
		if fullyHom {
			// Fully homogeneous speed/links, heterogeneous failures
			// (the lemma's most general homogeneous setting).
			fps := make([]float64, m)
			speeds := make([]float64, m)
			for i := range fps {
				fps[i] = rng.Float64()
				speeds[i] = 2
			}
			pl, _ = platform.NewCommHomogeneous(speeds, fps, 3)
		} else {
			// CommHom speeds + FailureHom.
			fps := make([]float64, m)
			speeds := make([]float64, m)
			fp := rng.Float64()
			for i := range fps {
				fps[i] = fp
				speeds[i] = 1 + rng.Float64()*9
			}
			pl, _ = platform.NewCommHomogeneous(speeds, fps, 3)
		}
		orig := randomIntervalMapping(rng, n, m)
		origMet, err := mapping.Evaluate(p, pl, orig)
		if err != nil {
			return false
		}
		single, err := Lemma1Transform(p, pl, orig)
		if err != nil {
			return false
		}
		newMet, err := mapping.Evaluate(p, pl, single)
		if err != nil {
			return false
		}
		return newMet.Latency <= origMet.Latency+1e-9 &&
			newMet.FailureProb <= origMet.FailureProb+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestLemma1TransformWrongClass(t *testing.T) {
	p, pl := fig5() // CommHom + FailureHet: lemma does not apply
	m := mapping.NewSingleInterval(2, []int{0})
	if _, err := Lemma1Transform(p, pl, m); !errors.Is(err, ErrWrongClass) {
		t.Errorf("err = %v, want ErrWrongClass", err)
	}
	bad := &mapping.Mapping{Intervals: []mapping.Interval{{First: 0, Last: 0}}, Alloc: [][]int{{0}}}
	if _, err := Lemma1Transform(p, pl, bad); err == nil {
		t.Error("invalid mapping accepted")
	}
}

func TestRouting(t *testing.T) {
	p := pipeline.MustNew([]float64{1, 1}, []float64{4, 9, 4})
	plHom, _ := platform.NewFullyHomogeneous(5, 1, 2, 0.5)
	if res, err := MinFPUnderLatency(p, plHom, 11); err != nil || len(res.Mapping.UsedProcs()) != 3 {
		t.Errorf("routing to Algorithm1 failed: %v %v", res, err)
	}
	if res, err := MinLatencyUnderFP(p, plHom, 0.2); err != nil || len(res.Mapping.UsedProcs()) != 3 {
		t.Errorf("routing to Algorithm2 failed: %v %v", res, err)
	}
	plCH, _ := platform.NewCommHomogeneous([]float64{4, 3, 2, 1}, []float64{0.5, 0.5, 0.5, 0.5}, 1)
	p2 := pipeline.MustNew([]float64{6}, []float64{1, 1})
	if res, err := MinFPUnderLatency(p2, plCH, 7); err != nil || len(res.Mapping.UsedProcs()) != 3 {
		t.Errorf("routing to Algorithm3 failed: %v %v", res, err)
	}
	if res, err := MinLatencyUnderFP(p2, plCH, 0.2); err != nil || len(res.Mapping.UsedProcs()) != 3 {
		t.Errorf("routing to Algorithm4 failed: %v %v", res, err)
	}
	_, plHet := fig5()
	if _, err := MinFPUnderLatency(p, plHet, 100); !errors.Is(err, ErrWrongClass) {
		t.Errorf("open class routed to a polynomial algorithm: %v", err)
	}
}

// randomIntervalMapping builds a random valid interval mapping (same
// helper as in package mapping's tests; duplicated to avoid exporting test
// internals).
func randomIntervalMapping(rng *rand.Rand, n, m int) *mapping.Mapping {
	pCount := 1 + rng.Intn(minInt(n, m))
	bounds := rng.Perm(n - 1)[:pCount-1]
	sortInts(bounds)
	mp := &mapping.Mapping{}
	start := 0
	for j := 0; j < pCount; j++ {
		end := n - 1
		if j < pCount-1 {
			end = bounds[j]
		}
		mp.Intervals = append(mp.Intervals, mapping.Interval{First: start, Last: end})
		start = end + 1
	}
	procs := rng.Perm(m)
	alloc := make([][]int, pCount)
	for j := 0; j < pCount; j++ {
		alloc[j] = []int{procs[j]}
	}
	for _, u := range procs[pCount:] {
		if rng.Float64() < 0.5 {
			j := rng.Intn(pCount)
			alloc[j] = append(alloc[j], u)
		}
	}
	mp.Alloc = alloc
	return mp
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
