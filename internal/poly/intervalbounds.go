package poly

import (
	"math"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// The complexity of latency-minimal *interval* mappings on Fully
// Heterogeneous platforms is left open by the paper (§4.1: "we suspect it
// might be NP-hard"). This file provides polynomial two-sided bounds built
// on Theorem 4:
//
//   - general mappings are exactly interval mappings with the
//     processor-disjointness constraint relaxed (a path through the
//     Figure 6 graph groups consecutive stages on one processor, but may
//     revisit a processor in a later interval), so Theorem 4's shortest
//     path is a *lower bound* on the interval optimum;
//
//   - repairing the path — reassigning each revisited processor to the
//     best unused one — yields a valid interval mapping, an *upper bound*;
//
//   - when the shortest path never revisits a processor, both bounds
//     coincide and the repaired mapping is provably latency-optimal among
//     interval mappings.
//
// IntervalBounds packages the result.
type IntervalBounds struct {
	// Lower is Theorem 4's general-mapping optimum: no interval mapping
	// can beat it.
	Lower float64
	// Upper is the best feasible interval mapping found (repaired path or
	// fastest-single-processor fallback) with its metrics.
	Upper Result
	// Tight reports Lower == Upper.Metrics.Latency (up to float noise):
	// the upper mapping is then provably optimal.
	Tight bool
}

// IntervalLatencyBounds computes the bounds in polynomial time
// (O(n·m²) for the shortest path, O(p·m) for the repair).
func IntervalLatencyBounds(p *pipeline.Pipeline, pl *platform.Platform) (IntervalBounds, error) {
	gen := MinLatencyGeneral(p, pl)
	lower := gen.Latency

	candidates := make([]*mapping.Mapping, 0, 3)
	if repaired := repairToInterval(gen.Mapping, p, pl); repaired != nil {
		candidates = append(candidates, repaired)
	}
	// Fallbacks that are always valid: the whole pipeline on each single
	// processor (cheap, and optimal on CommHom by Theorem 2).
	bestSingle, singleLat := -1, math.Inf(1)
	for u := 0; u < pl.NumProcs(); u++ {
		m := mapping.NewSingleInterval(p.NumStages(), []int{u})
		lat, err := mapping.LatencyEq2(p, pl, m)
		if err == nil && lat < singleLat {
			bestSingle, singleLat = u, lat
		}
	}
	if bestSingle >= 0 {
		candidates = append(candidates, mapping.NewSingleInterval(p.NumStages(), []int{bestSingle}))
	}

	best := Result{Metrics: mapping.Metrics{Latency: math.Inf(1)}}
	for _, m := range candidates {
		met, err := mapping.Evaluate(p, pl, m)
		if err != nil {
			continue
		}
		if met.Latency < best.Metrics.Latency {
			best = Result{Mapping: m, Metrics: met}
		}
	}
	if best.Mapping == nil {
		return IntervalBounds{}, ErrInfeasible // unreachable for valid inputs
	}
	tight := best.Metrics.Latency <= lower+latencyTol*math.Max(1, lower)
	return IntervalBounds{Lower: lower, Upper: best, Tight: tight}, nil
}

// repairToInterval converts a general mapping into a valid interval
// mapping. Consecutive same-processor stages merge into intervals; when a
// later interval revisits an already-used processor, it is reassigned to
// the unused processor that minimizes the interval's local Eq. (2) term
// (computation plus adjacent communications, neighbors as currently
// assigned). Returns nil when no unused processor remains for some
// conflicting interval.
// run is one (interval, processor) segment of a collapsed general mapping.
type run struct {
	iv   mapping.Interval
	proc int
}

func repairToInterval(g *mapping.GeneralMapping, p *pipeline.Pipeline, pl *platform.Platform) *mapping.Mapping {
	n := p.NumStages()
	// Collapse into (interval, proc) runs.
	var runs []run
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || g.ProcOf[i] != g.ProcOf[start] {
			runs = append(runs, run{mapping.Interval{First: start, Last: i - 1}, g.ProcOf[start]})
			start = i
		}
	}
	used := make([]bool, pl.NumProcs())
	for j := range runs {
		u := runs[j].proc
		if !used[u] {
			used[u] = true
			continue
		}
		// Conflict: pick the cheapest unused replacement for this run.
		best, bestCost := -1, math.Inf(1)
		for v := 0; v < pl.NumProcs(); v++ {
			if used[v] {
				continue
			}
			cost := localCost(p, pl, runs[j].iv, v, prevProc(runs, j), nextProc(runs, j))
			if cost < bestCost {
				best, bestCost = v, cost
			}
		}
		if best == -1 {
			return nil // not enough processors to disentangle
		}
		runs[j].proc = best
		used[best] = true
	}
	m := &mapping.Mapping{}
	for _, r := range runs {
		m.Intervals = append(m.Intervals, r.iv)
		m.Alloc = append(m.Alloc, []int{r.proc})
	}
	return m
}

func prevProc(runs []run, j int) int {
	if j == 0 {
		return -1 // P_in
	}
	return runs[j-1].proc
}

func nextProc(runs []run, j int) int {
	if j == len(runs)-1 {
		return -2 // P_out
	}
	return runs[j+1].proc
}

// localCost is the Eq. (2)-style cost of executing interval iv on v with
// the given neighbors: incoming transfer + computation + outgoing
// transfer.
func localCost(p *pipeline.Pipeline, pl *platform.Platform, iv mapping.Interval, v, prev, next int) float64 {
	cost := p.Work(iv.First, iv.Last) / pl.Speed[v]
	in := p.InputSize(iv.First)
	switch {
	case prev == -1:
		cost += in / pl.BIn[v]
	case prev != v:
		cost += in / pl.B[prev][v]
	}
	out := p.OutputSize(iv.Last)
	switch {
	case next == -2:
		cost += out / pl.BOut[v]
	case next != v:
		cost += out / pl.B[v][next]
	}
	return cost
}
