package poly

import (
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// Lemma1Transform implements the constructive proof of Lemma 1: given any
// valid interval mapping on a Fully Homogeneous platform (any failure
// probabilities), or on a Communication Homogeneous + Failure Homogeneous
// platform, it returns a single-interval mapping that is at least as good
// in both latency and failure probability.
//
//   - Fully Homogeneous case: with k₀ the replication count of the first
//     interval, replicate the whole pipeline on the k₀ most reliable
//     processors. The k₀·δ_0/b input term was already paid by the original
//     mapping, all other communication terms disappear, and the work term
//     is unchanged (identical speeds); the failure probability can only
//     shrink (one interval instead of several, most reliable replicas).
//
//   - CommHom + FailureHom case: with k the minimum replication count over
//     all intervals, replicate the whole pipeline on the k fastest
//     processors. FP_new = fp^k ≤ 1 − Π_j(1−fp^{k_j}) = FP_old, and the
//     k-th fastest processor overall is no slower than the slowest
//     processor of any interval that used ≥ k distinct processors.
//
// The function returns ErrWrongClass on other platform classes: Section 3
// (Figure 5) exhibits a CommHom + FailureHet instance where no
// single-interval mapping is optimal.
func Lemma1Transform(p *pipeline.Pipeline, pl *platform.Platform, m *mapping.Mapping) (*mapping.Mapping, error) {
	if err := m.Validate(p.NumStages(), pl.NumProcs()); err != nil {
		return nil, err
	}
	switch {
	case pl.Classify() == platform.FullyHomogeneous:
		k0 := len(m.Alloc[0])
		procs := pl.ProcsByReliabilityDesc()[:k0]
		return mapping.NewSingleInterval(p.NumStages(), procs), nil
	case func() bool { _, ok := pl.CommHomogeneous(); return ok }() && pl.FailureHomogeneous():
		k := len(m.Alloc[0])
		for _, procs := range m.Alloc[1:] {
			if len(procs) < k {
				k = len(procs)
			}
		}
		procs := pl.ProcsBySpeedDesc()[:k]
		return mapping.NewSingleInterval(p.NumStages(), procs), nil
	default:
		return nil, ErrWrongClass
	}
}
