package poly

import (
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// Algorithm1 implements the paper's Algorithm 1 (Theorem 5): on a Fully
// Homogeneous platform, minimize the failure probability under a latency
// threshold L. By Lemma 1 the optimum is a single interval replicated on k
// processors, with latency k·δ_0/b + ΣW/s + δ_n/b; the algorithm takes the
// largest feasible k and, per the paper's remark, the k most reliable
// processors (so it also covers heterogeneous failure probabilities on
// otherwise fully homogeneous platforms).
func Algorithm1(p *pipeline.Pipeline, pl *platform.Platform, maxLatency float64) (Result, error) {
	b, ok := pl.CommHomogeneous()
	if !ok || !pl.SpeedHomogeneous() {
		return Result{}, ErrWrongClass
	}
	s := pl.Speed[0]
	base := p.TotalWork()/s + p.Delta[p.NumStages()]/b
	perReplica := p.Delta[0] / b
	m := pl.NumProcs()
	// Latency is non-decreasing in k (each extra replica adds δ_0/b ≥ 0),
	// so scan downward for the largest feasible replication factor.
	k := 0
	for cand := m; cand >= 1; cand-- {
		if leqTol(float64(cand)*perReplica+base, maxLatency) {
			k = cand
			break
		}
	}
	if k == 0 {
		return Result{}, ErrInfeasible
	}
	procs := pl.ProcsByReliabilityDesc()[:k]
	return evaluate(p, pl, mapping.NewSingleInterval(p.NumStages(), procs))
}

// Algorithm2 implements the paper's Algorithm 2 (Theorem 5): on a Fully
// Homogeneous platform, minimize the latency under a failure-probability
// threshold FP. Latency grows with the replica count, so the algorithm
// finds the smallest k whose best achievable failure probability — the
// product of the k smallest fp_u — meets the threshold.
func Algorithm2(p *pipeline.Pipeline, pl *platform.Platform, maxFailureProb float64) (Result, error) {
	_, ok := pl.CommHomogeneous()
	if !ok || !pl.SpeedHomogeneous() {
		return Result{}, ErrWrongClass
	}
	byReliability := pl.ProcsByReliabilityDesc()
	prod := 1.0
	for k := 1; k <= len(byReliability); k++ {
		prod *= pl.FailProb[byReliability[k-1]]
		if prod <= maxFailureProb {
			return evaluate(p, pl, mapping.NewSingleInterval(p.NumStages(), byReliability[:k]))
		}
	}
	return Result{}, ErrInfeasible
}

// Algorithm3 implements the paper's Algorithm 3 (Theorem 6): on a
// Communication Homogeneous platform with identical failure probabilities,
// minimize FP under a latency threshold. Processors are taken in
// non-increasing speed order; with k replicas the latency is
// k·δ_0/b + ΣW/s_(k) + δ_n/b where s_(k) is the k-th fastest speed. Both
// terms are non-decreasing in k, so the algorithm returns the largest
// feasible k (FP = fp^k is decreasing in k).
func Algorithm3(p *pipeline.Pipeline, pl *platform.Platform, maxLatency float64) (Result, error) {
	b, ok := pl.CommHomogeneous()
	if !ok || !pl.FailureHomogeneous() {
		return Result{}, ErrWrongClass
	}
	bySpeed := pl.ProcsBySpeedDesc()
	work := p.TotalWork()
	out := p.Delta[p.NumStages()] / b
	perReplica := p.Delta[0] / b
	k := 0
	for cand := len(bySpeed); cand >= 1; cand-- {
		lat := float64(cand)*perReplica + work/pl.Speed[bySpeed[cand-1]] + out
		if leqTol(lat, maxLatency) {
			k = cand
			break
		}
	}
	if k == 0 {
		return Result{}, ErrInfeasible
	}
	return evaluate(p, pl, mapping.NewSingleInterval(p.NumStages(), bySpeed[:k]))
}

// Algorithm4 implements the paper's Algorithm 4 (Theorem 6): on a
// Communication Homogeneous + Failure Homogeneous platform, minimize the
// latency under a failure-probability threshold. The smallest k with
// fp^k ≤ FP is selected and mapped on the k fastest processors.
func Algorithm4(p *pipeline.Pipeline, pl *platform.Platform, maxFailureProb float64) (Result, error) {
	_, ok := pl.CommHomogeneous()
	if !ok || !pl.FailureHomogeneous() {
		return Result{}, ErrWrongClass
	}
	bySpeed := pl.ProcsBySpeedDesc()
	prod := 1.0
	for k := 1; k <= len(bySpeed); k++ {
		prod *= pl.FailProb[0]
		if prod <= maxFailureProb {
			return evaluate(p, pl, mapping.NewSingleInterval(p.NumStages(), bySpeed[:k]))
		}
	}
	return Result{}, ErrInfeasible
}

// MinFPUnderLatency routes a "minimize FP subject to latency ≤ L" query to
// the provably optimal algorithm for the platform class, or reports
// ErrWrongClass when the paper gives none (CommHom+FailureHet is open,
// FullyHet is NP-hard — use the exact or heuristic solvers instead).
func MinFPUnderLatency(p *pipeline.Pipeline, pl *platform.Platform, maxLatency float64) (Result, error) {
	if pl.Classify() == platform.FullyHomogeneous {
		return Algorithm1(p, pl, maxLatency)
	}
	return Algorithm3(p, pl, maxLatency)
}

// MinLatencyUnderFP routes a "minimize latency subject to FP ≤ F" query to
// the provably optimal algorithm for the platform class (see
// MinFPUnderLatency for the unsupported classes).
func MinLatencyUnderFP(p *pipeline.Pipeline, pl *platform.Platform, maxFailureProb float64) (Result, error) {
	if pl.Classify() == platform.FullyHomogeneous {
		return Algorithm2(p, pl, maxFailureProb)
	}
	return Algorithm4(p, pl, maxFailureProb)
}
