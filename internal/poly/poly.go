// Package poly implements the paper's polynomial-time algorithms:
//
//   - Theorem 1: minimizing the failure probability (all platforms) —
//     replicate the whole pipeline as a single interval on every processor.
//   - Theorem 2: minimizing the latency on Communication Homogeneous
//     platforms — map the whole pipeline on the fastest processor.
//   - Theorem 4: minimizing the latency over general mappings on Fully
//     Heterogeneous platforms — shortest path in the Figure-6 layered DAG.
//   - Theorem 5 (Algorithms 1 and 2): the bi-criteria problem on Fully
//     Homogeneous platforms.
//   - Theorem 6 (Algorithms 3 and 4): the bi-criteria problem on
//     Communication Homogeneous + Failure Homogeneous platforms.
//   - Lemma 1: the transformation that turns any interval mapping into a
//     single-interval mapping that is at least as good in both criteria
//     (on the platform classes where the lemma holds).
//
// All entry points validate that the platform belongs to the class for
// which the algorithm is proved optimal and return ErrWrongClass
// otherwise; constraint-infeasible instances return ErrInfeasible.
package poly

import (
	"errors"
	"math"

	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// ErrInfeasible is returned when no mapping can satisfy the requested
// threshold (e.g. the latency bound is below the cost of a single replica
// on the fastest processor).
var ErrInfeasible = errors.New("poly: no mapping satisfies the constraint")

// ErrWrongClass is returned when an algorithm is invoked on a platform
// outside the class for which the paper proves it optimal.
var ErrWrongClass = errors.New("poly: platform outside the algorithm's class")

// Result is an interval mapping together with its two objective values.
type Result struct {
	Mapping *mapping.Mapping
	Metrics mapping.Metrics
}

// latencyTol is the relative tolerance used when comparing a computed
// latency against a user threshold, absorbing float accumulation error so
// that thresholds chosen exactly at an achievable latency (as in the
// paper's Figure 5 example, L = 22) remain feasible.
const latencyTol = 1e-9

func leqTol(x, bound float64) bool {
	return x <= bound+latencyTol*math.Max(1, math.Abs(bound))
}

// evaluate builds a Result for a mapping, computing both metrics.
func evaluate(p *pipeline.Pipeline, pl *platform.Platform, m *mapping.Mapping) (Result, error) {
	met, err := mapping.Evaluate(p, pl, m)
	if err != nil {
		return Result{}, err
	}
	return Result{Mapping: m, Metrics: met}, nil
}

// MinFailureProb implements Theorem 1: the failure probability is
// minimized, on every platform class, by replicating the whole pipeline as
// a single interval on all m processors, reaching FP = Π_u fp_u.
func MinFailureProb(p *pipeline.Pipeline, pl *platform.Platform) (Result, error) {
	m := pl.NumProcs()
	procs := make([]int, m)
	for u := range procs {
		procs[u] = u
	}
	return evaluate(p, pl, mapping.NewSingleInterval(p.NumStages(), procs))
}

// MinLatencyCommHom implements Theorem 2: on Communication Homogeneous
// (and a fortiori Fully Homogeneous) platforms the latency is minimized by
// mapping the whole pipeline as a single interval on the fastest
// processor; replication and splitting can only add communications.
func MinLatencyCommHom(p *pipeline.Pipeline, pl *platform.Platform) (Result, error) {
	if _, ok := pl.CommHomogeneous(); !ok {
		return Result{}, ErrWrongClass
	}
	return evaluate(p, pl, mapping.NewSingleInterval(p.NumStages(), []int{pl.FastestProc()}))
}

// GeneralResult is a general (unrestricted) mapping with its latency.
// General mappings have no replication, so the failure probability is not
// part of the paper's Theorem 4 statement; callers can still compute it
// from the processor multiset if desired.
type GeneralResult struct {
	Mapping *mapping.GeneralMapping
	Latency float64
}

// MinLatencyGeneral implements Theorem 4: the latency-optimal general
// mapping on a Fully Heterogeneous platform (hence on any platform) is a
// shortest source→sink path in the layered graph of Figure 6, computed
// here with the O(n·m²) layer DP.
func MinLatencyGeneral(p *pipeline.Pipeline, pl *platform.Platform) GeneralResult {
	lat, procs := graph.LayeredShortestPathDP(p, pl)
	return GeneralResult{Mapping: &mapping.GeneralMapping{ProcOf: procs}, Latency: lat}
}
