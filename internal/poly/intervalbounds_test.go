package poly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

func TestIntervalBoundsFig34(t *testing.T) {
	// On the Figures 3-4 instance the shortest general path (S1→P1,
	// S2→P2) never revisits a processor, so the bounds are tight and the
	// repaired mapping is provably optimal: latency 7.
	p := pipeline.MustNew([]float64{2, 2}, []float64{100, 100, 100})
	pl, _ := platform.NewFullyHeterogeneous(
		[]float64{1, 1}, []float64{0, 0},
		[][]float64{{0, 100}, {100, 0}},
		[]float64{100, 1}, []float64{1, 100})
	b, err := IntervalLatencyBounds(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Tight {
		t.Error("bounds should be tight on Fig34")
	}
	if math.Abs(b.Lower-7) > 1e-9 || math.Abs(b.Upper.Metrics.Latency-7) > 1e-9 {
		t.Errorf("bounds (%g, %g), want (7, 7)", b.Lower, b.Upper.Metrics.Latency)
	}
	if err := b.Upper.Mapping.Validate(2, 2); err != nil {
		t.Fatalf("upper mapping invalid: %v", err)
	}
}

// Property: lower ≤ exact interval optimum ≤ upper on random FullyHet
// instances, and the upper mapping is always valid.
func TestIntervalBoundsBracketExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		p := pipeline.Random(rng, n, 1, 10, 1, 10)
		pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0, 1, 1, 20)
		b, err := IntervalLatencyBounds(p, pl)
		if err != nil {
			return false
		}
		if b.Upper.Mapping.Validate(n, m) != nil {
			return false
		}
		ex, err := exact.MinLatencyInterval(p, pl, exact.Options{})
		if err != nil {
			return false
		}
		opt := ex.Metrics.Latency
		if !(b.Lower <= opt+1e-9 && opt <= b.Upper.Metrics.Latency+1e-9) {
			return false
		}
		// Tight certificate must be truthful.
		if b.Tight && math.Abs(b.Upper.Metrics.Latency-opt) > 1e-6*math.Max(1, opt) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestIntervalBoundsTightnessRate: on a fixed panel, the relaxation is
// tight most of the time — an empirical observation about the open
// problem (E17).
func TestIntervalBoundsTightnessRate(t *testing.T) {
	tight, total := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := 2 + rng.Intn(4)
		p := pipeline.Random(rng, n, 1, 10, 1, 10)
		pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0, 1, 1, 20)
		b, err := IntervalLatencyBounds(p, pl)
		if err != nil {
			continue
		}
		total++
		if b.Tight {
			tight++
		}
	}
	if total == 0 {
		t.Skip("no instances")
	}
	if tight*2 < total {
		t.Errorf("relaxation tight on only %d/%d instances; expected a majority", tight, total)
	}
}

func TestRepairHandlesRevisits(t *testing.T) {
	// Force a revisit: processors 0 is overwhelmingly best for stages 1
	// and 3, processor 1 best for stage 2 (comm costs make merging bad).
	p := pipeline.MustNew([]float64{1, 1, 1}, []float64{1, 50, 50, 1})
	// Two fast procs with a fast interlink; the shortest general path may
	// bounce P0→P1→P0. Craft bandwidths so the path revisits.
	pl, err := platform.NewFullyHeterogeneous(
		[]float64{10, 10, 1},
		[]float64{0, 0, 0},
		[][]float64{{0, 100, 1}, {100, 0, 1}, {1, 1, 0}},
		[]float64{100, 0.1, 0.1},
		[]float64{100, 0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	g := &mapping.GeneralMapping{ProcOf: []int{0, 1, 0}}
	repaired := repairToInterval(g, p, pl)
	if repaired == nil {
		t.Fatal("repair failed with a spare processor available")
	}
	if err := repaired.Validate(3, 3); err != nil {
		t.Fatalf("repaired mapping invalid: %v", err)
	}
	// The revisited third run must have been reassigned to the spare P2.
	if got := repaired.Alloc[2][0]; got != 2 {
		t.Errorf("conflicting run reassigned to P%d, want P3", got+1)
	}
}

func TestRepairFailsWithoutSpares(t *testing.T) {
	p := pipeline.MustNew([]float64{1, 1, 1}, []float64{1, 1, 1, 1})
	pl, _ := platform.NewCommHomogeneous([]float64{1, 1}, []float64{0, 0}, 1)
	g := &mapping.GeneralMapping{ProcOf: []int{0, 1, 0}}
	if repaired := repairToInterval(g, p, pl); repaired != nil {
		t.Error("repair succeeded with no spare processor")
	}
	// IntervalLatencyBounds still returns a valid upper bound via the
	// single-processor fallback.
	b, err := IntervalLatencyBounds(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Upper.Mapping.Validate(3, 2); err != nil {
		t.Fatalf("fallback mapping invalid: %v", err)
	}
}
