package npc

import (
	"fmt"
	"math"

	"repro/internal/exact"
	"repro/internal/mapping"
)

// tol absorbs float accumulation when comparing against thresholds that
// sit exactly on achievable values (the reductions are built that way).
const tol = 1e-9

// TSPVerification reports both sides of the Theorem 3 equivalence on one
// instance: whether the TSP decision is yes, whether the mapping decision
// is yes, and the two optimal values.
type TSPVerification struct {
	TSPYes         bool
	MappingYes     bool
	OptimalPath    float64 // optimal S→T Hamiltonian path cost
	OptimalLatency float64 // optimal one-to-one latency on the gadget
}

// Equivalent reports whether the two decisions agree, which Theorem 3
// guarantees for every instance.
func (v TSPVerification) Equivalent() bool { return v.TSPYes == v.MappingYes }

// VerifyTSPReduction solves both sides of the Theorem 3 reduction exactly
// (Held–Karp for the TSP, permutation enumeration for the one-to-one
// mapping) and reports the decisions. The instance must be small enough
// for both oracles (|V| ≤ 9 is comfortable).
func VerifyTSPReduction(ti *TSPInstance, k float64) (TSPVerification, error) {
	pathCost, _, err := SolveTSP(ti)
	if err != nil {
		return TSPVerification{}, err
	}
	p, pl, kPrime, err := ReduceTSP(ti, k)
	if err != nil {
		return TSPVerification{}, err
	}
	oto, err := exact.MinLatencyOneToOne(p, pl)
	if err != nil {
		return TSPVerification{}, err
	}
	return TSPVerification{
		TSPYes:         pathCost <= k+tol,
		MappingYes:     oto.Latency <= kPrime+tol,
		OptimalPath:    pathCost,
		OptimalLatency: oto.Latency,
	}, nil
}

// PartitionVerification reports both sides of the Theorem 7 equivalence.
type PartitionVerification struct {
	PartitionYes bool
	MappingYes   bool
	// BestSubsetSum is the subset sum closest to S/2 from below or equal,
	// as found by the mapping-side search (for diagnostics).
	BestSubsetSum float64
}

// Equivalent reports whether the two decisions agree, which Theorem 7
// guarantees for every instance.
func (v PartitionVerification) Equivalent() bool { return v.PartitionYes == v.MappingYes }

// MaxPartitionVerify bounds the subset enumeration of the mapping-side
// decision procedure.
const MaxPartitionVerify = 22

// VerifyPartitionReduction solves both sides of the Theorem 7 reduction:
// the subset-sum DP decides 2-PARTITION, and exhaustive subset enumeration
// over the gadget platform — evaluated with the repository's Eq. (2) and
// failure-probability implementations — decides the bi-criteria mapping
// problem.
func VerifyPartitionReduction(pi *PartitionInstance) (PartitionVerification, error) {
	if len(pi.A) > MaxPartitionVerify {
		return PartitionVerification{}, fmt.Errorf("npc: instance with m=%d exceeds verification limit %d", len(pi.A), MaxPartitionVerify)
	}
	_, partYes, err := SolvePartition(pi)
	if err != nil {
		return PartitionVerification{}, err
	}
	inst, err := ReducePartition(pi)
	if err != nil {
		return PartitionVerification{}, err
	}
	m := len(pi.A)
	mappingYes := false
	bestSum := math.Inf(-1)
	for mask := 1; mask < 1<<m; mask++ {
		var procs []int
		for j := 0; j < m; j++ {
			if mask&(1<<j) != 0 {
				procs = append(procs, j)
			}
		}
		mp := mapping.NewSingleInterval(1, procs)
		lat, err := mapping.Latency(inst.Pipeline, inst.Platform, mp)
		if err != nil {
			return PartitionVerification{}, err
		}
		latOK := lat <= inst.MaxLatency+tol
		// The FP threshold e^{−S/2} can be astronomically small, so two
		// precautions are required: the comparison must be relative, and
		// the failure probability must come from the log-space evaluator —
		// the direct formula 1−(1−q) cancels catastrophically for q near
		// the double-precision ulp of 1 and inflates the value by ~1e−3
		// relative, enough to flip the decision.
		fp := mapping.FailureProbLog(inst.Platform, mp)
		fpOK := fp <= inst.MaxFailProb*(1+tol)
		if latOK {
			if s := lat - 2; s > bestSum {
				bestSum = s
			}
		}
		if latOK && fpOK {
			mappingYes = true
		}
	}
	return PartitionVerification{
		PartitionYes:  partYes,
		MappingYes:    mappingYes,
		BestSubsetSum: bestSum,
	}, nil
}
