// Package npc builds the paper's NP-hardness reduction gadgets as
// executable artifacts and validates them end-to-end on concrete
// instances:
//
//   - Theorem 3 reduces the Traveling Salesman Problem (Hamiltonian path
//     version) to one-to-one latency minimization on Fully Heterogeneous
//     platforms;
//   - Theorem 7 reduces 2-PARTITION to the bi-criteria decision problem on
//     Fully Heterogeneous platforms.
//
// For each reduction the package provides the instance builder exactly as
// the proof describes, an exact solver for the source problem (Held–Karp
// for TSP, a subset-sum dynamic program for 2-PARTITION), and a verifier
// that checks the proof's "yes iff yes" equivalence using the repository's
// own latency/reliability evaluators as the decision procedure for the
// target problem.
package npc

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// TSPInstance is a complete weighted graph with a source vertex S, a tail
// vertex T, and edge costs Cost[u][v] (> 0 for u ≠ v; the diagonal is
// ignored). The decision question: is there a Hamiltonian path from S to T
// of total cost at most K?
type TSPInstance struct {
	Cost [][]float64
	S, T int
}

// Validate checks the structural invariants of the instance.
func (ti *TSPInstance) Validate() error {
	n := len(ti.Cost)
	if n < 2 {
		return fmt.Errorf("npc: TSP instance needs at least 2 vertices")
	}
	for u := range ti.Cost {
		if len(ti.Cost[u]) != n {
			return fmt.Errorf("npc: ragged cost matrix at row %d", u)
		}
		for v, c := range ti.Cost[u] {
			if u != v && !(c > 0) {
				return fmt.Errorf("npc: Cost[%d][%d]=%v must be > 0", u, v, c)
			}
		}
	}
	if ti.S < 0 || ti.S >= n || ti.T < 0 || ti.T >= n || ti.S == ti.T {
		return fmt.Errorf("npc: invalid endpoints S=%d T=%d", ti.S, ti.T)
	}
	return nil
}

// ReduceTSP builds the Theorem 3 instance I₂ from a TSP instance I₁ and
// bound K:
//
//   - application: n = |V| identical stages with w_i = δ_i = 1;
//   - platform: n unit-speed processors; link bandwidth b_{u,v} =
//     1/c(e_{u,v}); the input link reaches only s (bandwidth 1, all other
//     input links slow) and the output link leaves only t; "slow" links
//     have bandwidth 1/(K+n+3), making any path that uses one exceed the
//     latency bound K' = K + n + 2.
//
// It returns the application, the platform, and the latency bound K'.
func ReduceTSP(ti *TSPInstance, k float64) (*pipeline.Pipeline, *platform.Platform, float64, error) {
	if err := ti.Validate(); err != nil {
		return nil, nil, 0, err
	}
	n := len(ti.Cost)
	p := pipeline.Uniform(n, 1, 1)

	slowCost := k + float64(n) + 3 // traversing a slow link costs K+n+3 > K'
	speeds := make([]float64, n)
	fps := make([]float64, n)
	b := make([][]float64, n)
	bIn := make([]float64, n)
	bOut := make([]float64, n)
	for u := 0; u < n; u++ {
		speeds[u] = 1
		fps[u] = 0
		b[u] = make([]float64, n)
		for v := 0; v < n; v++ {
			if u != v {
				b[u][v] = 1 / ti.Cost[u][v]
			}
		}
		bIn[u] = 1 / slowCost
		bOut[u] = 1 / slowCost
	}
	bIn[ti.S] = 1
	bOut[ti.T] = 1
	pl, err := platform.NewFullyHeterogeneous(speeds, fps, b, bIn, bOut)
	if err != nil {
		return nil, nil, 0, err
	}
	kPrime := k + float64(n) + 2
	return p, pl, kPrime, nil
}

// SolveTSP finds the optimal S→T Hamiltonian path cost with Held–Karp.
func SolveTSP(ti *TSPInstance) (float64, []int, error) {
	if err := ti.Validate(); err != nil {
		return 0, nil, err
	}
	return graph.HamiltonianPath(ti.Cost, ti.S, ti.T)
}
