package npc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mapping"
)

func TestTSPInstanceValidate(t *testing.T) {
	good := &TSPInstance{Cost: [][]float64{{0, 1}, {1, 0}}, S: 0, T: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	cases := []*TSPInstance{
		{Cost: [][]float64{{0}}, S: 0, T: 0},                     // too small
		{Cost: [][]float64{{0, 1}, {1}}, S: 0, T: 1},             // ragged
		{Cost: [][]float64{{0, 0}, {1, 0}}, S: 0, T: 1},          // zero cost
		{Cost: [][]float64{{0, 1}, {1, 0}}, S: 0, T: 0},          // S == T
		{Cost: [][]float64{{0, 1}, {1, 0}}, S: 2, T: 0},          // S out of range
		{Cost: [][]float64{{0, -1}, {1, 0}}, S: 0, T: 1},         // negative cost
		{Cost: [][]float64{{0, math.NaN()}, {1, 0}}, S: 0, T: 1}, // NaN
	}
	for i, ti := range cases {
		if err := ti.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReduceTSPShape(t *testing.T) {
	ti := &TSPInstance{Cost: [][]float64{{0, 2, 5}, {2, 0, 3}, {5, 3, 0}}, S: 0, T: 2}
	p, pl, kPrime, err := ReduceTSP(ti, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStages() != 3 || pl.NumProcs() != 3 {
		t.Errorf("gadget sizes n=%d m=%d, want 3,3", p.NumStages(), pl.NumProcs())
	}
	if kPrime != 10+3+2 {
		t.Errorf("K' = %g, want 15", kPrime)
	}
	// Link bandwidths are reciprocals of edge costs.
	if pl.B[0][1] != 0.5 || pl.B[1][2] != 1.0/3 {
		t.Errorf("bandwidths not 1/c: B01=%g B12=%g", pl.B[0][1], pl.B[1][2])
	}
	// Input reaches only S at full speed; output leaves only T.
	if pl.BIn[0] != 1 || pl.BOut[2] != 1 {
		t.Error("fast input/output links missing")
	}
	slow := 1 / (10 + 3 + 3.0)
	if pl.BIn[1] != slow || pl.BIn[2] != slow || pl.BOut[0] != slow || pl.BOut[1] != slow {
		t.Error("slow links have wrong bandwidth")
	}
}

// TestTSPReductionKnownInstance checks the value identity
// optimal latency = optimal Hamiltonian path cost + n + 2 on a small
// instance where the path optimum is known.
func TestTSPReductionKnownInstance(t *testing.T) {
	// Path 0→1→2 costs 2+3 = 5; 0→2 direct is not Hamiltonian with 3
	// vertices unless it passes 1: 0→2→... T must be 2. Alternatives:
	// 0→1→2 = 5.
	ti := &TSPInstance{Cost: [][]float64{{0, 2, 5}, {2, 0, 3}, {5, 3, 0}}, S: 0, T: 2}
	v, err := VerifyTSPReduction(ti, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !v.TSPYes || !v.MappingYes || !v.Equivalent() {
		t.Errorf("K=5 should be yes/yes: %+v", v)
	}
	if math.Abs(v.OptimalPath-5) > 1e-9 {
		t.Errorf("optimal path = %g, want 5", v.OptimalPath)
	}
	if math.Abs(v.OptimalLatency-(5+3+2)) > 1e-9 {
		t.Errorf("optimal latency = %g, want path+n+2 = 10", v.OptimalLatency)
	}
	// K just below the optimum flips both decisions.
	v2, err := VerifyTSPReduction(ti, 4.9)
	if err != nil {
		t.Fatal(err)
	}
	if v2.TSPYes || v2.MappingYes || !v2.Equivalent() {
		t.Errorf("K=4.9 should be no/no: %+v", v2)
	}
}

// Property (Theorem 3): the reduction's decision equivalence holds on
// random instances with integer costs and random thresholds.
func TestTSPReductionEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4) // 3..6 vertices
		cost := make([][]float64, n)
		for u := range cost {
			cost[u] = make([]float64, n)
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				c := float64(1 + rng.Intn(9))
				cost[u][v], cost[v][u] = c, c
			}
		}
		s := rng.Intn(n)
		tt := (s + 1 + rng.Intn(n-1)) % n
		ti := &TSPInstance{Cost: cost, S: s, T: tt}
		// Try thresholds around the plausible range of path costs.
		for _, k := range []float64{float64(n - 1), float64(2 * n), float64(5 * n), 1} {
			v, err := VerifyTSPReduction(ti, k)
			if err != nil || !v.Equivalent() {
				return false
			}
			// When both say yes, the value identity must hold:
			// latency = path + n + 2 is achievable, and nothing better.
			if v.TSPYes && math.Abs(v.OptimalLatency-(v.OptimalPath+float64(n)+2)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolvePartitionKnownInstances(t *testing.T) {
	subset, ok, err := SolvePartition(&PartitionInstance{A: []int{3, 1, 1, 2, 2, 1}})
	if err != nil || !ok {
		t.Fatalf("solvable instance reported unsolvable: %v %v", ok, err)
	}
	sum := 0
	for _, idx := range subset {
		sum += []int{3, 1, 1, 2, 2, 1}[idx]
	}
	if sum != 5 {
		t.Errorf("witness sums to %d, want 5", sum)
	}
	// Odd total sum: trivially unsolvable.
	if _, ok, _ := SolvePartition(&PartitionInstance{A: []int{1, 2}}); ok {
		t.Error("odd-sum instance reported solvable")
	}
	// Even sum but no partition: {1, 1, 4}.
	if _, ok, _ := SolvePartition(&PartitionInstance{A: []int{1, 1, 4}}); ok {
		t.Error("{1,1,4} reported solvable")
	}
	if _, _, err := SolvePartition(&PartitionInstance{A: nil}); err == nil {
		t.Error("empty instance accepted")
	}
	if _, _, err := SolvePartition(&PartitionInstance{A: []int{0}}); err == nil {
		t.Error("zero element accepted")
	}
}

func TestReducePartitionShape(t *testing.T) {
	pi := &PartitionInstance{A: []int{2, 4, 6}}
	inst, err := ReducePartition(pi)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Pipeline.NumStages() != 1 {
		t.Error("gadget must be a single-stage pipeline")
	}
	if inst.MaxLatency != 6+2 {
		t.Errorf("L = %g, want S/2+2 = 8", inst.MaxLatency)
	}
	if math.Abs(inst.MaxFailProb-math.Exp(-6)) > 1e-15 {
		t.Errorf("FP threshold = %g, want e^-6", inst.MaxFailProb)
	}
	for j, a := range pi.A {
		if math.Abs(inst.Platform.FailProb[j]-math.Exp(-float64(a))) > 1e-15 {
			t.Errorf("fp[%d] = %g, want e^-%d", j, inst.Platform.FailProb[j], a)
		}
		if inst.Platform.BIn[j] != 1/float64(a) {
			t.Errorf("bIn[%d] = %g, want 1/%d", j, inst.Platform.BIn[j], a)
		}
	}
}

// TestPartitionGadgetMetrics checks the proof's arithmetic: replicating on
// subset I gives latency Σa_j + 2 and FP = e^{−Σa_j}.
func TestPartitionGadgetMetrics(t *testing.T) {
	pi := &PartitionInstance{A: []int{3, 5, 2}}
	inst, err := ReducePartition(pi)
	if err != nil {
		t.Fatal(err)
	}
	mp := mapping.NewSingleInterval(1, []int{0, 2}) // subset {a0=3, a2=2}, sum 5
	met, err := mapping.Evaluate(inst.Pipeline, inst.Platform, mp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(met.Latency-(5+2)) > 1e-9 {
		t.Errorf("latency = %g, want 7", met.Latency)
	}
	if math.Abs(met.FailureProb-math.Exp(-5)) > 1e-12 {
		t.Errorf("FP = %g, want e^-5", met.FailureProb)
	}
}

func TestVerifyPartitionKnownInstances(t *testing.T) {
	yes, err := VerifyPartitionReduction(&PartitionInstance{A: []int{3, 1, 1, 2, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !yes.PartitionYes || !yes.MappingYes || !yes.Equivalent() {
		t.Errorf("solvable instance: %+v", yes)
	}
	no, err := VerifyPartitionReduction(&PartitionInstance{A: []int{1, 1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if no.PartitionYes || no.MappingYes || !no.Equivalent() {
		t.Errorf("unsolvable instance: %+v", no)
	}
}

func TestVerifyPartitionTooLarge(t *testing.T) {
	a := make([]int, MaxPartitionVerify+1)
	for i := range a {
		a[i] = 1
	}
	if _, err := VerifyPartitionReduction(&PartitionInstance{A: a}); err == nil {
		t.Error("oversized instance accepted")
	}
}

// Property (Theorem 7): decision equivalence on random instances.
func TestPartitionReductionEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(9) // 2..10 elements
		a := make([]int, m)
		for i := range a {
			a[i] = 1 + rng.Intn(12)
		}
		pi := &PartitionInstance{A: a}
		v, err := VerifyPartitionReduction(pi)
		if err != nil {
			return false
		}
		return v.Equivalent()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: SolvePartition's witness, when produced, is always a correct
// half-sum subset.
func TestSolvePartitionWitnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(14)
		a := make([]int, m)
		for i := range a {
			a[i] = 1 + rng.Intn(30)
		}
		pi := &PartitionInstance{A: a}
		subset, ok, err := SolvePartition(pi)
		if err != nil {
			return false
		}
		if !ok {
			return true // unsolvable claims are cross-checked by the reduction property
		}
		sum := 0
		seen := map[int]bool{}
		for _, idx := range subset {
			if idx < 0 || idx >= m || seen[idx] {
				return false
			}
			seen[idx] = true
			sum += a[idx]
		}
		return sum*2 == pi.Sum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
