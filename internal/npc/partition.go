package npc

import (
	"fmt"
	"math"

	"repro/internal/pipeline"
	"repro/internal/platform"
)

// PartitionInstance is a multiset of positive integers a_1..a_m. The
// decision question: is there a subset I with Σ_{i∈I} a_i = (Σ a_i)/2?
type PartitionInstance struct {
	A []int
}

// Sum returns Σ a_i.
func (pi *PartitionInstance) Sum() int {
	s := 0
	for _, a := range pi.A {
		s += a
	}
	return s
}

// Validate checks that the instance has at least one strictly positive
// integer.
func (pi *PartitionInstance) Validate() error {
	if len(pi.A) == 0 {
		return fmt.Errorf("npc: empty 2-PARTITION instance")
	}
	for i, a := range pi.A {
		if a <= 0 {
			return fmt.Errorf("npc: a[%d]=%d must be > 0", i, a)
		}
	}
	return nil
}

// SolvePartition decides 2-PARTITION with the classic subset-sum dynamic
// program in O(m·S) time, returning a witness subset when one exists.
func SolvePartition(pi *PartitionInstance) ([]int, bool, error) {
	if err := pi.Validate(); err != nil {
		return nil, false, err
	}
	s := pi.Sum()
	if s%2 != 0 {
		return nil, false, nil
	}
	half := s / 2
	// reach[t] = index of the last element used to first reach sum t (+1),
	// or 0 if unreached.
	reach := make([]int, half+1)
	reach[0] = -1 // sentinel: sum 0 reachable with no elements
	for idx, a := range pi.A {
		for t := half; t >= a; t-- {
			if reach[t] == 0 && reach[t-a] != 0 {
				reach[t] = idx + 1
			}
		}
	}
	if reach[half] == 0 {
		return nil, false, nil
	}
	var subset []int
	t := half
	for t > 0 {
		idx := reach[t] - 1
		subset = append(subset, idx)
		t -= pi.A[idx]
	}
	for i, j := 0, len(subset)-1; i < j; i, j = i+1, j-1 {
		subset[i], subset[j] = subset[j], subset[i]
	}
	return subset, true, nil
}

// BiCriteriaInstance is the Theorem 7 gadget: a single-stage application,
// a platform, and the two thresholds of the bi-criteria decision problem.
type BiCriteriaInstance struct {
	Pipeline    *pipeline.Pipeline
	Platform    *platform.Platform
	MaxLatency  float64
	MaxFailProb float64
}

// ReducePartition builds the Theorem 7 instance I₂ from a 2-PARTITION
// instance I₁:
//
//   - application: one stage with w = 1 and δ_0 = δ_1 = 1;
//   - platform: m unit-speed processors with fp_j = e^{−a_j}, input
//     bandwidth b_{in,j} = 1/a_j and output bandwidth b_{j,out} = 1
//     (internal links are never used by a single-stage mapping; set to 1);
//   - thresholds: L = S/2 + 2 and FP = e^{−S/2}.
//
// Replicating the stage on subset I yields latency Σ_{j∈I} a_j + 2 and
// failure probability e^{−Σ_{j∈I} a_j}, so both thresholds hold iff
// Σ_{j∈I} a_j = S/2.
func ReducePartition(pi *PartitionInstance) (*BiCriteriaInstance, error) {
	if err := pi.Validate(); err != nil {
		return nil, err
	}
	m := len(pi.A)
	p := pipeline.MustNew([]float64{1}, []float64{1, 1})
	speeds := make([]float64, m)
	fps := make([]float64, m)
	b := make([][]float64, m)
	bIn := make([]float64, m)
	bOut := make([]float64, m)
	for j := 0; j < m; j++ {
		speeds[j] = 1
		fps[j] = math.Exp(-float64(pi.A[j]))
		bIn[j] = 1 / float64(pi.A[j])
		bOut[j] = 1
		b[j] = make([]float64, m)
		for v := 0; v < m; v++ {
			if v != j {
				b[j][v] = 1
			}
		}
	}
	pl, err := platform.NewFullyHeterogeneous(speeds, fps, b, bIn, bOut)
	if err != nil {
		return nil, err
	}
	s := float64(pi.Sum())
	return &BiCriteriaInstance{
		Pipeline:    p,
		Platform:    pl,
		MaxLatency:  s/2 + 2,
		MaxFailProb: math.Exp(-s / 2),
	}, nil
}
