package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/telemetry"
)

// DefaultMinRouteSamples is the per-(class, route) sample count the
// adaptive router requires before it trusts a latency profile over the
// structural gates. Below it a route's p95 is noise, and acting on noise
// would flap between routes during warm-up.
const DefaultMinRouteSamples = 20

func (o Options) minRouteSamples() int64 {
	if o.MinRouteSamples < 0 {
		return 0 // adaptive gating disabled
	}
	if o.MinRouteSamples == 0 {
		return DefaultMinRouteSamples
	}
	return int64(o.MinRouteSamples)
}

// solveTrace accumulates one solve's telemetry — the instance class, the
// timed route attempts, and the final outcome — and answers the adaptive
// router's deadline-fit queries from the recorder's per-class latency
// profiles. A nil *solveTrace (no Recorder configured) is valid and makes
// every method a no-op, so the instrumented paths cost one pointer test
// when telemetry is off.
type solveTrace struct {
	rec        *telemetry.Recorder
	class      telemetry.Class
	obs        telemetry.SolveObservation
	start      time.Time
	deadline   time.Time // zero when the context carries no deadline
	minSamples int64
}

// startTrace opens a trace for one solve; returns nil when telemetry is
// disabled.
func startTrace(ctx context.Context, pr Problem, opts Options) *solveTrace {
	if opts.Recorder == nil {
		return nil
	}
	obj := telemetry.ObjLatency
	if pr.Objective == MinimizeFailureProb {
		obj = telemetry.ObjFP
	}
	_, commHom := pr.Platform.CommHomogeneous()
	tr := &solveTrace{
		rec:        opts.Recorder,
		class:      telemetry.ClassOf(pr.Pipeline.NumStages(), pr.Platform.NumProcs(), commHom, obj),
		start:      time.Now(),
		minSamples: opts.minRouteSamples(),
	}
	if d, ok := ctx.Deadline(); ok {
		tr.deadline = d
	}
	tr.obs.Class = tr.class
	return tr
}

// begin stamps the start of a route attempt (zero time when disabled).
func (t *solveTrace) begin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// end closes a route attempt opened by begin.
func (t *solveTrace) end(route telemetry.Route, began time.Time, out telemetry.Outcome) {
	if t == nil {
		return
	}
	t.obs.AddAttempt(route, time.Since(began), out)
}

// fits reports whether the route's warm p95 latency for this instance
// class fits the remaining deadline budget. It answers true — deferring
// entirely to the structural gates, i.e. pre-telemetry behavior — when
// the trace is nil, the context has no deadline, adaptive routing is
// disabled, or the profile is cold (fewer than MinRouteSamples). A false
// answer is counted on the recorder's per-route skip counter.
func (t *solveTrace) fits(route telemetry.Route) bool {
	if t == nil || t.deadline.IsZero() || t.minSamples <= 0 {
		return true
	}
	p95, n := t.rec.RouteQuantile(t.class, route, 0.95)
	if n < t.minSamples {
		return true
	}
	if p95 <= time.Until(t.deadline) {
		return true
	}
	t.rec.RecordRouteSkip(route)
	return false
}

// finish folds the completed solve into the recorder. Single-leaf solves
// (the polynomial routes) record no explicit attempts; their one attempt
// is synthesized from the total duration so every route builds a latency
// profile.
func (t *solveTrace) finish(res *Result, err error) {
	if t == nil {
		return
	}
	t.obs.Route = telemetry.ParseRoute(res.Route)
	t.obs.Outcome = solveOutcome(res, err)
	t.obs.Total = time.Since(t.start)
	if err == nil {
		t.obs.Certainty = certaintyLabel(res.Certainty)
	}
	if t.obs.NAttempts == 0 && t.obs.Route != telemetry.RouteNone {
		t.obs.AddAttempt(t.obs.Route, t.obs.Total, t.obs.Outcome)
	}
	t.rec.RecordSolve(t.obs)
}

// solveOutcome grades the solve's end state for telemetry.
func solveOutcome(res *Result, err error) telemetry.Outcome {
	switch {
	case err == nil && res.Certainty == Partial:
		return telemetry.OutcomePartial
	case err == nil:
		return telemetry.OutcomeOK
	case errors.Is(err, ErrInfeasible):
		return telemetry.OutcomeInfeasible
	case errors.Is(err, ErrNotFound):
		return telemetry.OutcomeNotFound
	default:
		return telemetry.OutcomeError
	}
}

// certaintyLabel renders a Certainty as a metric-label-safe token.
func certaintyLabel(c Certainty) string {
	switch c {
	case ProvablyOptimal:
		return "provably_optimal"
	case ExhaustivelyOptimal:
		return "exhaustively_optimal"
	case Partial:
		return "partial"
	default:
		return "heuristic"
	}
}

// attemptOutcome grades one route attempt's (result, error) pair.
func attemptOutcome(err error, partial bool) telemetry.Outcome {
	switch {
	case err == nil && partial:
		return telemetry.OutcomePartial
	case err == nil:
		return telemetry.OutcomeOK
	case errors.Is(err, ErrInfeasible):
		return telemetry.OutcomeInfeasible
	default:
		return telemetry.OutcomeError
	}
}
