package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/telemetry"
)

// hardHetInstance builds a small fully-heterogeneous constrained instance
// that routes to solveHard, where only the exact and heuristic routes
// compete (no DP: communication is heterogeneous).
func hardHetInstance(t *testing.T) Problem {
	t.Helper()
	p := pipeline.MustNew([]float64{2, 1, 3, 2}, []float64{1, 2, 1, 2, 1})
	pl, err := platform.NewFullyHeterogeneous(
		[]float64{1, 2, 3, 4},
		[]float64{0.1, 0.2, 0.15, 0.05},
		[][]float64{
			{0, 1, 2, 3},
			{1, 0, 4, 5},
			{2, 4, 0, 6},
			{3, 5, 6, 0},
		},
		[]float64{1, 2, 3, 4},
		[]float64{4, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, commHom := pl.CommHomogeneous(); commHom {
		t.Fatal("fixture must be communication-heterogeneous")
	}
	return Problem{Pipeline: p, Platform: pl, Objective: MinimizeLatency, MaxFailProb: 0.9}
}

// seedRoute pre-warms a (class, route) latency profile with n samples of
// duration d, the deterministic stand-in for past traffic.
func seedRoute(rec *telemetry.Recorder, class telemetry.Class, route telemetry.Route, n int, d time.Duration) {
	for i := 0; i < n; i++ {
		rec.ObserveRoute(class, route, d, telemetry.OutcomeOK)
	}
}

func (pr Problem) class() telemetry.Class {
	obj := telemetry.ObjLatency
	if pr.Objective == MinimizeFailureProb {
		obj = telemetry.ObjFP
	}
	_, commHom := pr.Platform.CommHomogeneous()
	return telemetry.ClassOf(pr.Pipeline.NumStages(), pr.Platform.NumProcs(), commHom, obj)
}

// TestAdaptiveRouterSkipsBlownRoute: with a warm profile saying the exact
// route's p95 (10s) cannot fit the remaining deadline (~2s), the router
// must choose the heuristic route up front and return a complete
// (non-Partial) heuristic answer instead of a deadline-truncated one.
func TestAdaptiveRouterSkipsBlownRoute(t *testing.T) {
	pr := hardHetInstance(t)
	rec := telemetry.NewRecorder()
	seedRoute(rec, pr.class(), telemetry.RouteExact, DefaultMinRouteSamples+5, 10*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := SolveCtx(ctx, pr, Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Route != "heuristic" {
		t.Fatalf("route = %q (method %q), want heuristic", res.Route, res.Method)
	}
	if res.Certainty != Heuristic {
		t.Fatalf("certainty = %v, want Heuristic (complete answer, not Partial)", res.Certainty)
	}
	if got := rec.RouteSkips(telemetry.RouteExact); got != 1 {
		t.Fatalf("exact skips = %d, want 1", got)
	}
	if got := rec.Solves(telemetry.RouteHeuristic, telemetry.OutcomeOK); got != 1 {
		t.Fatalf("recorded heuristic/ok solves = %d, want 1", got)
	}
}

// TestAdaptiveRouterGenerousDeadline: the same warm profile under a
// deadline with room for the exact route's p95 must still reach the
// exhaustive answer.
func TestAdaptiveRouterGenerousDeadline(t *testing.T) {
	pr := hardHetInstance(t)
	rec := telemetry.NewRecorder()
	seedRoute(rec, pr.class(), telemetry.RouteExact, DefaultMinRouteSamples+5, 10*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	res, err := SolveCtx(ctx, pr, Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Route != "exact" || res.Certainty != ExhaustivelyOptimal {
		t.Fatalf("route = %q certainty = %v, want exact/ExhaustivelyOptimal", res.Route, res.Certainty)
	}
	if got := rec.RouteSkips(telemetry.RouteExact); got != 0 {
		t.Fatalf("exact skips = %d, want 0", got)
	}
}

// TestAdaptiveRouterColdProfileFallsBackToStructure: below MinRouteSamples
// the profile must be ignored — structural gates route to exact even
// under a deadline the (sparse) samples would reject.
func TestAdaptiveRouterColdProfileFallsBackToStructure(t *testing.T) {
	pr := hardHetInstance(t)
	rec := telemetry.NewRecorder()
	seedRoute(rec, pr.class(), telemetry.RouteExact, DefaultMinRouteSamples-1, 10*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := SolveCtx(ctx, pr, Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Route != "exact" || res.Certainty != ExhaustivelyOptimal {
		t.Fatalf("route = %q certainty = %v, want exact (cold profile → structural gates)", res.Route, res.Certainty)
	}
}

// TestAdaptiveRouterDisabled: MinRouteSamples < 0 turns adaptive routing
// off even with a warm profile.
func TestAdaptiveRouterDisabled(t *testing.T) {
	pr := hardHetInstance(t)
	rec := telemetry.NewRecorder()
	seedRoute(rec, pr.class(), telemetry.RouteExact, 100, 10*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := SolveCtx(ctx, pr, Options{Recorder: rec, MinRouteSamples: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Route != "exact" {
		t.Fatalf("route = %q, want exact (adaptive routing disabled)", res.Route)
	}
}

// TestSolveRouteFieldWithoutRecorder: Result.Route is populated on every
// solve, recorder or not.
func TestSolveRouteFieldWithoutRecorder(t *testing.T) {
	pr := hardHetInstance(t)
	res, err := Solve(pr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Route != "exact" {
		t.Fatalf("route = %q, want exact", res.Route)
	}
	// Unconstrained min-FP routes through Theorem 1.
	res, err = Solve(Problem{Pipeline: pr.Pipeline, Platform: pr.Platform, Objective: MinimizeFailureProb})
	if err != nil {
		t.Fatal(err)
	}
	if res.Route != "poly" {
		t.Fatalf("route = %q, want poly", res.Route)
	}
}

// TestRecorderObservesPolyRoute: single-leaf polynomial solves synthesize
// their one attempt from the total, so poly builds a profile too.
func TestRecorderObservesPolyRoute(t *testing.T) {
	pr := hardHetInstance(t)
	pr.Objective = MinimizeFailureProb
	pr.MaxLatency = 0 // unconstrained → Theorem 1
	pr.MaxFailProb = 0
	rec := telemetry.NewRecorder()
	if _, err := SolveCtx(context.Background(), pr, Options{Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	class := pr.class()
	if _, n := rec.RouteQuantile(class, telemetry.RoutePoly, 0.5); n != 1 {
		t.Fatalf("poly profile samples = %d, want 1", n)
	}
	if got := rec.Solves(telemetry.RoutePoly, telemetry.OutcomeOK); got != 1 {
		t.Fatalf("poly/ok solves = %d, want 1", got)
	}
}

// TestNilRecorderTraceZeroAlloc: with no recorder configured, the trace
// machinery must stay off the solve path entirely — nil trace, zero
// allocations — so untelemetered solves keep the evaluator hot path's
// 0 allocs/op guarantee (see internal/mapping's AllocsPerRun tests).
func TestNilRecorderTraceZeroAlloc(t *testing.T) {
	pr := hardHetInstance(t)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(500, func() {
		if tr := startTrace(ctx, pr, Options{}); tr != nil {
			t.Fatal("trace without recorder must be nil")
		}
	})
	if allocs != 0 {
		t.Fatalf("startTrace with nil recorder allocates %v/op, want 0", allocs)
	}
}

// TestNilTraceMethods: every solveTrace method must be a no-op on nil.
func TestNilTraceMethods(t *testing.T) {
	var tr *solveTrace
	if !tr.fits(telemetry.RouteExact) {
		t.Fatal("nil trace must not gate any route")
	}
	began := tr.begin()
	tr.end(telemetry.RouteExact, began, telemetry.OutcomeOK)
	tr.finish(&Result{}, nil)
}
