package core
