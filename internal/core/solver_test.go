package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/heuristics"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/workload"
)

func TestSolveValidation(t *testing.T) {
	p, pl := workload.Fig5()
	if _, err := Solve(Problem{}); err == nil {
		t.Error("empty problem accepted")
	}
	if _, err := Solve(Problem{Pipeline: p, Platform: pl, MaxLatency: -1}); err == nil {
		t.Error("negative MaxLatency accepted")
	}
	if _, err := Solve(Problem{Pipeline: p, Platform: pl, MaxFailProb: 2}); err == nil {
		t.Error("MaxFailProb > 1 accepted")
	}
	if _, err := Solve(Problem{Pipeline: p, Platform: pl, MaxFailProb: math.NaN()}); err == nil {
		t.Error("NaN MaxFailProb accepted")
	}
}

func TestSolveTheorem1Routing(t *testing.T) {
	p, pl := workload.Fig5()
	res, err := Solve(Problem{Pipeline: p, Platform: pl, Objective: MinimizeFailureProb})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certainty != ProvablyOptimal {
		t.Errorf("certainty = %v, want ProvablyOptimal", res.Certainty)
	}
	want := 0.1 * math.Pow(0.8, 10)
	if math.Abs(res.Metrics.FailureProb-want) > 1e-12 {
		t.Errorf("FP = %g, want %g", res.Metrics.FailureProb, want)
	}
}

func TestSolveTheorem2Routing(t *testing.T) {
	p, pl := workload.Fig5()
	res, err := Solve(Problem{Pipeline: p, Platform: pl, Objective: MinimizeLatency})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certainty != ProvablyOptimal {
		t.Errorf("certainty = %v, want ProvablyOptimal", res.Certainty)
	}
	if math.Abs(res.Metrics.Latency-11.01) > 1e-9 {
		t.Errorf("latency = %g, want 11.01", res.Metrics.Latency)
	}
}

func TestSolveAlgorithm1Routing(t *testing.T) {
	p := pipeline.MustNew([]float64{1, 1}, []float64{4, 9, 4})
	pl, _ := platform.NewFullyHomogeneous(5, 1, 2, 0.5)
	res, err := Solve(Problem{Pipeline: p, Platform: pl, Objective: MinimizeFailureProb, MaxLatency: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certainty != ProvablyOptimal || res.Method != "Algorithm 1 (Theorem 5)" {
		t.Errorf("got %v via %q", res.Certainty, res.Method)
	}
	if math.Abs(res.Metrics.FailureProb-0.125) > 1e-12 {
		t.Errorf("FP = %g, want 0.125", res.Metrics.FailureProb)
	}
	// Infeasible threshold surfaces ErrInfeasible.
	if _, err := Solve(Problem{Pipeline: p, Platform: pl, Objective: MinimizeFailureProb, MaxLatency: 1}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveAlgorithm2Routing(t *testing.T) {
	p := pipeline.MustNew([]float64{1, 1}, []float64{4, 9, 4})
	pl, _ := platform.NewFullyHomogeneous(5, 1, 2, 0.5)
	res, err := Solve(Problem{Pipeline: p, Platform: pl, Objective: MinimizeLatency, MaxFailProb: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "Algorithm 2 (Theorem 5)" || res.Metrics.Latency != 10 {
		t.Errorf("got %q latency %g, want Algorithm 2 latency 10", res.Method, res.Metrics.Latency)
	}
}

func TestSolveAlgorithms34Routing(t *testing.T) {
	p := pipeline.MustNew([]float64{6}, []float64{1, 1})
	pl, _ := platform.NewCommHomogeneous([]float64{4, 3, 2, 1}, []float64{0.5, 0.5, 0.5, 0.5}, 1)
	res, err := Solve(Problem{Pipeline: p, Platform: pl, Objective: MinimizeFailureProb, MaxLatency: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "Algorithm 3 (Theorem 6)" || math.Abs(res.Metrics.FailureProb-0.125) > 1e-12 {
		t.Errorf("got %q FP %g, want Algorithm 3 FP 0.125", res.Method, res.Metrics.FailureProb)
	}
	res, err = Solve(Problem{Pipeline: p, Platform: pl, Objective: MinimizeLatency, MaxFailProb: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "Algorithm 4 (Theorem 6)" || res.Metrics.Latency != 7 {
		t.Errorf("got %q latency %g, want Algorithm 4 latency 7", res.Method, res.Metrics.Latency)
	}
}

// TestSolveOpenCaseFig5: the open class (CommHom + FailureHet) routes to
// exact enumeration on this small instance and finds the paper's
// two-interval optimum.
func TestSolveOpenCaseFig5(t *testing.T) {
	p, pl := workload.Fig5()
	res, err := Solve(Problem{
		Pipeline:   p,
		Platform:   pl,
		Objective:  MinimizeFailureProb,
		MaxLatency: workload.Fig5LatencyThreshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (1-0.1)*(1-math.Pow(0.8, 10))
	if math.Abs(res.Metrics.FailureProb-want) > 1e-12 {
		t.Errorf("FP = %g, want %g", res.Metrics.FailureProb, want)
	}
	if res.Certainty == ProvablyOptimal {
		t.Error("open class must not be labeled ProvablyOptimal")
	}
}

// TestSolveHeuristicFallback: forcing heuristics still solves Fig5.
func TestSolveHeuristicFallback(t *testing.T) {
	p, pl := workload.Fig5()
	res, err := SolveWithOptions(Problem{
		Pipeline:   p,
		Platform:   pl,
		Objective:  MinimizeFailureProb,
		MaxLatency: workload.Fig5LatencyThreshold,
	}, Options{ForceHeuristic: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certainty != Heuristic {
		t.Errorf("certainty = %v, want Heuristic", res.Certainty)
	}
	want := 1 - (1-0.1)*(1-math.Pow(0.8, 10))
	if res.Metrics.FailureProb > want+1e-9 {
		t.Errorf("heuristic FP = %g, want ≤ %g", res.Metrics.FailureProb, want)
	}
}

// TestSolveFullyHetLatency: minimizing latency on the Fig 3/4 instance
// (NP-hard class) returns the split mapping of latency 7.
func TestSolveFullyHetLatency(t *testing.T) {
	p, pl := workload.Fig34()
	res, err := Solve(Problem{Pipeline: p, Platform: pl, Objective: MinimizeLatency})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Metrics.Latency-7) > 1e-9 {
		t.Errorf("latency = %g, want 7", res.Metrics.Latency)
	}
}

func TestSolveHeuristicNotFound(t *testing.T) {
	p, pl := workload.Fig5()
	_, err := SolveWithOptions(Problem{
		Pipeline:   p,
		Platform:   pl,
		Objective:  MinimizeFailureProb,
		MaxLatency: 0.5, // below any achievable latency
	}, Options{ForceHeuristic: true, Anneal: heuristics.AnnealConfig{Iters: 200, Restarts: 1, Seed: 1}})
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	// Exact path proves infeasibility instead.
	_, err = Solve(Problem{Pipeline: p, Platform: pl, Objective: MinimizeFailureProb, MaxLatency: 0.5})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestMinLatencyGeneral(t *testing.T) {
	p, pl := workload.Fig34()
	res, err := MinLatencyGeneral(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Latency-7) > 1e-9 {
		t.Errorf("general latency = %g, want 7", res.Latency)
	}
	if _, err := MinLatencyGeneral(&pipeline.Pipeline{}, pl); err == nil {
		t.Error("invalid pipeline accepted")
	}
}

func TestEstimateMappingCount(t *testing.T) {
	// n=1, m=2 with replication: subsets counted as (p+1)^m = 3^2 = 9 ≥ 3
	// actual — the estimate is an upper bound used only for routing.
	if got := EstimateMappingCount(1, 2); got < 3 {
		t.Errorf("estimate %g below actual mapping count 3", got)
	}
	if EstimateMappingCount(4, 6) <= EstimateMappingCount(2, 3) {
		t.Error("estimate should grow with instance size")
	}
	if EstimateMappingCount(20, 64) < 1e18 {
		t.Error("large instances should blow past the exact budget")
	}
}

func TestParetoExactSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := workload.Random(rng, platform.CommHomogeneous, 2, 4)
	front, cert, err := Pareto(inst.Pipeline, inst.Platform, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert != ExhaustivelyOptimal {
		t.Errorf("certainty = %v, want ExhaustivelyOptimal for 2×4", cert)
	}
	if front.Len() == 0 {
		t.Fatal("empty front")
	}
	// The extremes must agree with the mono-criterion optima.
	minFP, _ := Solve(Problem{Pipeline: inst.Pipeline, Platform: inst.Platform, Objective: MinimizeFailureProb})
	es := front.Entries()
	tail := es[len(es)-1]
	if math.Abs(tail.Metrics.FailureProb-minFP.Metrics.FailureProb) > 1e-12 {
		t.Errorf("front tail FP %g != Theorem 1 optimum %g", tail.Metrics.FailureProb, minFP.Metrics.FailureProb)
	}
}

func TestParetoHeuristicLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := workload.Random(rng, platform.CommHomogeneous, 6, 14)
	front, cert, err := Pareto(inst.Pipeline, inst.Platform, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert != Heuristic {
		t.Errorf("certainty = %v, want Heuristic for 6×14", cert)
	}
	if front.Len() == 0 {
		t.Fatal("empty front")
	}
}

// Property: on the provably-polynomial classes, Solve agrees with
// exhaustive enumeration.
func TestSolveMatchesExactOnEasyClasses(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := workload.RandomFailureHomogeneous(rng, 1+rng.Intn(3), 2+rng.Intn(3))
		L := 10 + rng.Float64()*200
		got, gotErr := Solve(Problem{Pipeline: inst.Pipeline, Platform: inst.Platform, Objective: MinimizeFailureProb, MaxLatency: L})
		want, wantErr := exact.MinFPUnderLatency(inst.Pipeline, inst.Platform, L, exact.Options{})
		if (gotErr == nil) != (wantErr == nil) {
			return false
		}
		if gotErr != nil {
			return true
		}
		return math.Abs(got.Metrics.FailureProb-want.Metrics.FailureProb) <= 1e-9 &&
			got.Certainty == ProvablyOptimal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestObjectiveAndCertaintyStrings(t *testing.T) {
	if MinimizeLatency.String() != "minimize latency" ||
		MinimizeFailureProb.String() != "minimize failure probability" {
		t.Error("Objective.String mismatch")
	}
	if ProvablyOptimal.String() != "provably optimal" ||
		ExhaustivelyOptimal.String() != "exhaustively optimal" ||
		Heuristic.String() != "heuristic" {
		t.Error("Certainty.String mismatch")
	}
}

// TestSolveFullyHetConstrained routes through the exhaustive solver (the
// bitmask DP only covers CommHom platforms).
func TestSolveFullyHetConstrained(t *testing.T) {
	p, pl := workload.Fig34()
	// Min FP under a latency bound on the fully heterogeneous platform.
	res, err := Solve(Problem{
		Pipeline:   p,
		Platform:   pl,
		Objective:  MinimizeFailureProb,
		MaxLatency: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certainty != ExhaustivelyOptimal {
		t.Errorf("certainty = %v, want ExhaustivelyOptimal", res.Certainty)
	}
	if res.Metrics.Latency > 10+1e-9 {
		t.Errorf("latency %g violates bound", res.Metrics.Latency)
	}
	// Min latency under an FP bound: with fp = 0.1 each, a single replica
	// gives FP 0.1; demanding 0.05 forces replication somewhere.
	res2, err := Solve(Problem{
		Pipeline:    p,
		Platform:    pl,
		Objective:   MinimizeLatency,
		MaxFailProb: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics.FailureProb > 0.2+1e-12 {
		t.Errorf("FP %g violates bound", res2.Metrics.FailureProb)
	}
	// Infeasible FP bound: single-stage intervals need a replica each and
	// 0.1·0.1 = 0.01 is the best single-interval FP; ask for less.
	if _, err := Solve(Problem{
		Pipeline:    p,
		Platform:    pl,
		Objective:   MinimizeLatency,
		MaxFailProb: 0.005,
	}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

// TestSolveBoundsFallbackPath: a FullyHet instance whose general optimum
// revisits a processor exercises the relaxation-plus-search fallback (the
// result must still be within the bounds bracket).
func TestSolveBoundsFallbackPath(t *testing.T) {
	// P0 is fast with fast in/out links; P1 is the only good middle-stage
	// host: the general optimum is P0,P1,P0 (a revisit).
	p := pipeline.MustNew([]float64{1, 8, 1}, []float64{4, 4, 4, 4})
	pl, err := platform.NewFullyHeterogeneous(
		[]float64{8, 8},
		[]float64{0.1, 0.1},
		[][]float64{{0, 8}, {8, 0}},
		[]float64{8, 0.5},
		[]float64{8, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(Problem{Pipeline: p, Platform: pl, Objective: MinimizeLatency})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exact.MinLatencyInterval(p, pl, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Metrics.Latency-ex.Metrics.Latency) > 1e-9 {
		t.Errorf("solver latency %g, exhaustive %g", res.Metrics.Latency, ex.Metrics.Latency)
	}
}

func TestSolveCustomExactBudget(t *testing.T) {
	p, pl := workload.Fig34()
	// A tiny budget forces the heuristic even on this small instance.
	res, err := SolveWithOptions(Problem{
		Pipeline:   p,
		Platform:   pl,
		Objective:  MinimizeFailureProb,
		MaxLatency: 200,
	}, Options{ExactBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certainty != Heuristic {
		t.Errorf("certainty = %v, want Heuristic under budget 1", res.Certainty)
	}
}

// TestSolveMoreStagesThanProcessors: when m < n interval mappings are
// mandatory (paper §2.2); the solver must still work across classes.
func TestSolveMoreStagesThanProcessors(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := pipeline.Random(rng, 6, 1, 5, 1, 5)

	plHom, _ := platform.NewFullyHomogeneous(2, 2, 2, 0.3)
	res, err := Solve(Problem{Pipeline: p, Platform: plHom, Objective: MinimizeFailureProb, MaxLatency: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mapping.Validate(6, 2); err != nil {
		t.Fatalf("invalid mapping: %v", err)
	}

	plHet := platform.RandomFullyHeterogeneous(rng, 3, 1, 10, 0.1, 0.5, 1, 10)
	res2, err := Solve(Problem{Pipeline: p, Platform: plHet, Objective: MinimizeLatency})
	if err != nil {
		t.Fatal(err)
	}
	if err := res2.Mapping.Validate(6, 3); err != nil {
		t.Fatalf("invalid mapping: %v", err)
	}
	// At most m intervals can exist.
	if res2.Mapping.NumIntervals() > 3 {
		t.Errorf("%d intervals with m=3", res2.Mapping.NumIntervals())
	}
}
