// Package core is the solver facade of the library: it routes a
// bi-criteria mapping problem to the strongest method available for its
// platform class, mirroring the paper's complexity map.
//
//	platform class              method                      certainty
//	─────────────────────────   ─────────────────────────   ───────────
//	Fully Homogeneous           Algorithm 1 / Algorithm 2   provably optimal
//	CommHom + FailureHom        Algorithm 3 / Algorithm 4   provably optimal
//	CommHom + FailureHet        exact search (small) or     exhaustive /
//	(open problem, §4.4)        greedy + annealing          heuristic
//	Fully Heterogeneous         exact search (small) or     exhaustive /
//	(NP-hard, Theorem 7)        greedy + annealing          heuristic
//
// Mono-criterion queries (no constraint) route to Theorem 1 (minimum
// failure probability, any platform) and Theorem 2 (minimum latency,
// communication-homogeneous platforms). Latency minimization over
// *general* mappings — Theorem 4's shortest-path algorithm — is exposed
// separately as MinLatencyGeneral since it leaves the interval-mapping
// space.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/exact"
	"repro/internal/frontier"
	"repro/internal/heuristics"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/poly"
	"repro/internal/telemetry"
)

// Objective selects the minimized criterion.
type Objective int

const (
	// MinimizeLatency minimizes the response time, optionally under a
	// failure-probability bound.
	MinimizeLatency Objective = iota
	// MinimizeFailureProb minimizes the failure probability, optionally
	// under a latency bound.
	MinimizeFailureProb
)

func (o Objective) String() string {
	if o == MinimizeLatency {
		return "minimize latency"
	}
	return "minimize failure probability"
}

// Problem is a bi-criteria interval-mapping instance. Leave the
// constraint at its zero value (or +Inf / 1 respectively) for
// mono-criterion queries.
type Problem struct {
	Pipeline  *pipeline.Pipeline
	Platform  *platform.Platform
	Objective Objective
	// MaxLatency bounds the latency when minimizing failure probability.
	// 0 or +Inf means unconstrained.
	MaxLatency float64
	// MaxFailProb bounds the failure probability when minimizing latency.
	// 0 or 1 means unconstrained (every mapping has FP ≤ 1).
	MaxFailProb float64
}

// Certainty grades how strong the returned answer is.
type Certainty int

const (
	// ProvablyOptimal: produced by one of the paper's polynomial
	// algorithms on its platform class.
	ProvablyOptimal Certainty = iota
	// ExhaustivelyOptimal: produced by complete enumeration.
	ExhaustivelyOptimal
	// Heuristic: best mapping found by the heuristic search; optimality
	// is not guaranteed (the underlying problem is NP-hard or open).
	Heuristic
	// Partial: the solve was canceled (context deadline or explicit
	// cancellation) before the search completed; the result is the best
	// feasible mapping found so far and carries no optimality claim.
	Partial
)

func (c Certainty) String() string {
	switch c {
	case ProvablyOptimal:
		return "provably optimal"
	case ExhaustivelyOptimal:
		return "exhaustively optimal"
	case Partial:
		return "partial (canceled)"
	default:
		return "heuristic"
	}
}

// Result is a solved problem: the mapping, its metrics, and the provenance
// of the answer.
type Result struct {
	Mapping   *mapping.Mapping
	Metrics   mapping.Metrics
	Certainty Certainty
	Method    string
	// Route names the solver family that produced the answer — "poly",
	// "dp", "exact", "heuristic", "beam" or "sweep" — the routing decision
	// in machine-readable form (Method carries the human-readable detail).
	Route string
}

// ErrInfeasible is returned when it is certain that no interval mapping
// satisfies the constraint.
var ErrInfeasible = errors.New("core: no mapping satisfies the constraint")

// ErrNotFound is returned when the heuristic search found no feasible
// mapping; unlike ErrInfeasible this does not prove none exists.
var ErrNotFound = errors.New("core: no feasible mapping found (heuristic search; instance may still be feasible)")

// Options tunes the solver.
type Options struct {
	// ExactBudget is the largest interval-mapping count for which the
	// exact enumerator is used on the hard classes (default 5,000,000).
	// The pruned branch-and-bound engine solves instances of that size in
	// well under a second on commodity hardware (the 1.94M-mapping Figure 5
	// instance enumerates in ~2 ms), so the default is set by answer
	// latency, not by enumeration feasibility.
	ExactBudget float64
	// Workers is the goroutine count for the exact enumeration fan-out
	// (0 = GOMAXPROCS, 1 = sequential). Forwarded to exact.Options.Workers;
	// results are identical for every worker count.
	Workers int
	// Anneal configures the annealing fallback.
	Anneal heuristics.AnnealConfig
	// ForceHeuristic skips exact enumeration even on small instances.
	ForceHeuristic bool
	// Eval, when non-nil, is a prebuilt evaluator for the problem's
	// (pipeline, platform) pair; long-lived sessions use it to amortize the
	// evaluator precomputation across calls. It is forwarded to the exact
	// solvers, which otherwise rebuild it per call.
	Eval *mapping.Evaluator
	// SuffixMemo, when non-nil, is a prebuilt exact.SuffixMemo for the
	// problem's (pipeline, platform) pair, forwarded to the exact solvers
	// and the bitmask DP so warm sessions reuse solved sub-instances
	// across calls. Like Eval, the caller guarantees it matches the
	// problem instance.
	SuffixMemo *exact.SuffixMemo
	// Recorder, when non-nil, receives per-solve telemetry (route attempts
	// with phase durations, outcome, certainty) and powers deadline-adaptive
	// routing: on the hard classes, a route whose warm per-class p95 exceeds
	// the context's remaining deadline budget is skipped up front in favor
	// of a faster route, instead of starting a search that is statistically
	// certain to be truncated to a Partial answer. Nil keeps the purely
	// structural routing and adds no overhead.
	Recorder *telemetry.Recorder
	// MinRouteSamples is the per-(class, route) sample count required
	// before the adaptive router trusts a latency profile (0 = the default
	// DefaultMinRouteSamples, negative = disable adaptive routing). Cold
	// profiles always fall back to the structural gates.
	MinRouteSamples int
}

func (o Options) exactBudget() float64 {
	if o.ExactBudget > 0 {
		return o.ExactBudget
	}
	return 5_000_000
}

// Solve routes the problem with default options.
func Solve(pr Problem) (Result, error) { return SolveWithOptions(pr, Options{}) }

// SolveWithOptions routes the problem to the strongest applicable method.
func SolveWithOptions(pr Problem, opts Options) (Result, error) {
	return SolveCtx(context.Background(), pr, opts)
}

// SolveCtx is SolveWithOptions under a context: the exact enumeration,
// the annealing/greedy fallbacks and the beam search all poll ctx and
// stop early when it is done. A canceled solve returns the best feasible
// mapping found so far graded Partial (falling back to a fast
// single-interval sweep when cancellation struck before the search saw
// any candidate); the error is non-nil only when no feasible mapping
// could be produced at all. Uncanceled solves are deterministic and
// behave exactly like SolveWithOptions.
func SolveCtx(ctx context.Context, pr Problem, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validate(pr); err != nil {
		return Result{}, err
	}
	tr := startTrace(ctx, pr, opts)
	var res Result
	var err error
	if pr.Objective == MinimizeFailureProb {
		res, err = solveMinFP(ctx, pr, opts, tr)
	} else {
		res, err = solveMinLatency(ctx, pr, opts, tr)
	}
	tr.finish(&res, err)
	return res, err
}

func validate(pr Problem) error {
	if pr.Pipeline == nil || pr.Platform == nil {
		return fmt.Errorf("core: problem needs both a pipeline and a platform")
	}
	if err := pr.Pipeline.Validate(); err != nil {
		return err
	}
	if err := pr.Platform.Validate(); err != nil {
		return err
	}
	if pr.MaxLatency < 0 || math.IsNaN(pr.MaxLatency) {
		return fmt.Errorf("core: invalid MaxLatency %v", pr.MaxLatency)
	}
	if pr.MaxFailProb < 0 || pr.MaxFailProb > 1 || math.IsNaN(pr.MaxFailProb) {
		return fmt.Errorf("core: invalid MaxFailProb %v", pr.MaxFailProb)
	}
	return nil
}

func (pr Problem) latencyUnconstrained() bool {
	return pr.MaxLatency == 0 || math.IsInf(pr.MaxLatency, 1)
}

func (pr Problem) fpUnconstrained() bool {
	return pr.MaxFailProb == 0 || pr.MaxFailProb == 1
}

func solveMinFP(ctx context.Context, pr Problem, opts Options, tr *solveTrace) (Result, error) {
	// Unconstrained: Theorem 1 on every platform class.
	if pr.latencyUnconstrained() {
		res, err := poly.MinFailureProb(pr.Pipeline, pr.Platform)
		if err != nil {
			return Result{}, err
		}
		return Result{res.Mapping, res.Metrics, ProvablyOptimal, "Theorem 1: replicate the whole pipeline on all processors", "poly"}, nil
	}
	cls := pr.Platform.Classify()
	switch {
	case cls == platform.FullyHomogeneous:
		res, err := poly.Algorithm1(pr.Pipeline, pr.Platform, pr.MaxLatency)
		if errors.Is(err, poly.ErrInfeasible) {
			return Result{}, fmt.Errorf("Algorithm 1: %w", ErrInfeasible)
		}
		if err != nil {
			return Result{}, err
		}
		return Result{res.Mapping, res.Metrics, ProvablyOptimal, "Algorithm 1 (Theorem 5)", "poly"}, nil
	case cls == platform.CommHomogeneous && pr.Platform.FailureHomogeneous():
		res, err := poly.Algorithm3(pr.Pipeline, pr.Platform, pr.MaxLatency)
		if errors.Is(err, poly.ErrInfeasible) {
			return Result{}, fmt.Errorf("Algorithm 3: %w", ErrInfeasible)
		}
		if err != nil {
			return Result{}, err
		}
		return Result{res.Mapping, res.Metrics, ProvablyOptimal, "Algorithm 3 (Theorem 6)", "poly"}, nil
	}
	return solveHard(ctx, pr, opts, tr)
}

func solveMinLatency(ctx context.Context, pr Problem, opts Options, tr *solveTrace) (Result, error) {
	cls := pr.Platform.Classify()
	if pr.fpUnconstrained() {
		if cls == platform.FullyHomogeneous || cls == platform.CommHomogeneous {
			res, err := poly.MinLatencyCommHom(pr.Pipeline, pr.Platform)
			if err != nil {
				return Result{}, err
			}
			return Result{res.Mapping, res.Metrics, ProvablyOptimal, "Theorem 2: whole pipeline on the fastest processor", "poly"}, nil
		}
		// Fully heterogeneous latency minimization over interval mappings:
		// complexity open (the paper suspects NP-hard). The Theorem 4
		// relaxation gives two-sided bounds; when the shortest general
		// path is already interval-shaped the repaired mapping is provably
		// optimal. Otherwise fall back to exact/heuristic search and keep
		// the better of the two answers.
		bounds, bErr := poly.IntervalLatencyBounds(pr.Pipeline, pr.Platform)
		if bErr == nil && bounds.Tight {
			return Result{bounds.Upper.Mapping, bounds.Upper.Metrics, ProvablyOptimal,
				"Theorem 4 relaxation (general optimum is interval-shaped)", "poly"}, nil
		}
		res, err := solveHard(ctx, pr, opts, tr)
		if bErr == nil && (err != nil || bounds.Upper.Metrics.Latency < res.Metrics.Latency) {
			cert := Heuristic
			if ctx.Err() != nil {
				cert = Partial
			}
			res = Result{bounds.Upper.Mapping, bounds.Upper.Metrics, cert,
				"Theorem 4 relaxation + path repair", "poly"}
			err = nil
		}
		// Beam search explores interval mappings with singleton replica
		// sets — a strict subset of the exact enumeration space — so it
		// can only help when the search above was heuristic or partial.
		if err != nil || (res.Certainty != ProvablyOptimal && res.Certainty != ExhaustivelyOptimal) {
			began := tr.begin()
			beam, beamErr := heuristics.BeamSearchMinLatency(ctx, heuristicProblem(pr, opts), 32)
			if beam.Mapping != nil {
				tr.end(telemetry.RouteBeam, began, attemptOutcome(nil, beamErr != nil))
				if err != nil || beam.Metrics.Latency < res.Metrics.Latency {
					cert := Heuristic
					if beamErr != nil { // canceled mid-search: best-so-far
						cert = Partial
					}
					res = Result{beam.Mapping, beam.Metrics, cert, "beam search over interval prefixes", "beam"}
					err = nil
				}
			} else {
				tr.end(telemetry.RouteBeam, began, telemetry.OutcomeNotFound)
			}
		}
		return res, err
	}
	switch {
	case cls == platform.FullyHomogeneous:
		res, err := poly.Algorithm2(pr.Pipeline, pr.Platform, pr.MaxFailProb)
		if errors.Is(err, poly.ErrInfeasible) {
			return Result{}, fmt.Errorf("Algorithm 2: %w", ErrInfeasible)
		}
		if err != nil {
			return Result{}, err
		}
		return Result{res.Mapping, res.Metrics, ProvablyOptimal, "Algorithm 2 (Theorem 5)", "poly"}, nil
	case cls == platform.CommHomogeneous && pr.Platform.FailureHomogeneous():
		res, err := poly.Algorithm4(pr.Pipeline, pr.Platform, pr.MaxFailProb)
		if errors.Is(err, poly.ErrInfeasible) {
			return Result{}, fmt.Errorf("Algorithm 4: %w", ErrInfeasible)
		}
		if err != nil {
			return Result{}, err
		}
		return Result{res.Mapping, res.Metrics, ProvablyOptimal, "Algorithm 4 (Theorem 6)", "poly"}, nil
	}
	return solveHard(ctx, pr, opts, tr)
}

// solveHard handles the open and NP-hard classes: the bitmask dynamic
// program on communication-homogeneous platforms with few processors,
// exact enumeration when the instance is small enough, and greedy +
// annealing otherwise. Cancellation during the exact enumeration yields
// the incumbent graded Partial; when the context fired before any
// candidate was seen, a fast single-interval sweep provides the
// best-effort answer.
//
// With a warm telemetry profile, each structural gate is additionally
// conditioned on tr.fits: a route whose per-class p95 latency exceeds the
// remaining deadline budget is skipped up front — the next route serves a
// complete (if weaker-certainty) answer instead of a truncated Partial.
func solveHard(ctx context.Context, pr Problem, opts Options, tr *solveTrace) (Result, error) {
	n, m := pr.Pipeline.NumStages(), pr.Platform.NumProcs()
	// An already-done context must not start a new search phase — not
	// even the polynomial DP, which is fast but not interruptible once
	// running. Serve the sweep-based best-effort answer immediately.
	if ctx.Err() != nil {
		return solvePartialFallback(pr, opts, tr, fmt.Errorf("%w: %w", exact.ErrCanceled, context.Cause(ctx)))
	}
	if !opts.ForceHeuristic {
		if _, commHom := pr.Platform.CommHomogeneous(); commHom && m <= exact.MaxBitmaskProcs && tr.fits(telemetry.RouteDP) {
			began := tr.begin()
			res, err := solveBitmaskDP(ctx, pr, opts)
			if err == nil || errors.Is(err, ErrInfeasible) {
				tr.end(telemetry.RouteDP, began, attemptOutcome(err, false))
				return res, err
			}
			if errors.Is(err, exact.ErrCanceled) {
				tr.end(telemetry.RouteDP, began, telemetry.OutcomePartial)
				return solvePartialFallback(pr, opts, tr, err)
			}
			tr.end(telemetry.RouteDP, began, telemetry.OutcomeError)
		}
		if EstimateMappingCount(n, m) <= opts.exactBudget() && tr.fits(telemetry.RouteExact) {
			began := tr.begin()
			res, err := solveExact(ctx, pr, opts)
			if err == nil || errors.Is(err, ErrInfeasible) {
				tr.end(telemetry.RouteExact, began, attemptOutcome(err, res.Certainty == Partial))
				return res, err
			}
			if errors.Is(err, exact.ErrCanceled) {
				tr.end(telemetry.RouteExact, began, telemetry.OutcomePartial)
				return solvePartialFallback(pr, opts, tr, err)
			}
			// Enumeration failed for another reason: fall through.
			tr.end(telemetry.RouteExact, began, telemetry.OutcomeError)
		}
	}
	return solveHeuristic(ctx, pr, opts, tr)
}

// solvePartialFallback produces a best-effort answer after a cancellation
// that left the exact search without any incumbent: the single-interval
// sweep costs microseconds, honors the constraint, and on the easy
// platform classes even contains the true optimum. cancelErr wraps the
// context's cause; it is propagated (together with ErrNotFound) when even
// the sweep sees no feasible mapping.
func solvePartialFallback(pr Problem, opts Options, tr *solveTrace, cancelErr error) (Result, error) {
	hp := heuristicProblem(pr, opts)
	began := tr.begin()
	if sweep, err := heuristics.SingleIntervalSweep(hp); err == nil {
		tr.end(telemetry.RouteSweep, began, telemetry.OutcomePartial)
		return Result{sweep.Mapping, sweep.Metrics, Partial, "single-interval sweep (canceled before search)", "sweep"}, nil
	}
	tr.end(telemetry.RouteSweep, began, telemetry.OutcomeNotFound)
	return Result{}, fmt.Errorf("%w: %w", ErrNotFound, cancelErr)
}

// solveBitmaskDP routes to the O(n²·3^m) exact dynamic program for
// communication-homogeneous platforms. The DP polls ctx through its layer
// loop, so a mid-run cancellation surfaces as exact.ErrCanceled and the
// caller falls back to the sweep-based partial answer.
func solveBitmaskDP(ctx context.Context, pr Problem, opts Options) (Result, error) {
	var res exact.Result
	var err error
	var method string
	if pr.Objective == MinimizeFailureProb {
		res, err = exact.MinFPUnderLatencyDP(pr.Pipeline, pr.Platform, pr.MaxLatency, exact.Options{Ctx: ctx, SuffixMemo: opts.SuffixMemo})
		method = "bitmask DP (min FP s.t. latency)"
	} else {
		bound := pr.MaxFailProb
		if pr.fpUnconstrained() {
			bound = 1
		}
		res, err = exact.MinLatencyUnderFPDP(pr.Pipeline, pr.Platform, bound, exact.Options{Ctx: ctx, SuffixMemo: opts.SuffixMemo})
		method = "bitmask DP (min latency s.t. FP)"
	}
	if errors.Is(err, exact.ErrInfeasible) {
		return Result{}, fmt.Errorf("%s: %w", method, ErrInfeasible)
	}
	if err != nil {
		return Result{}, err
	}
	return Result{res.Mapping, res.Metrics, ExhaustivelyOptimal, method, "dp"}, nil
}

func solveExact(ctx context.Context, pr Problem, opts Options) (Result, error) {
	exOpts := exact.Options{MaxEnum: int64(opts.exactBudget()) * 2, Workers: opts.Workers, Ctx: ctx, Eval: opts.Eval, Recorder: opts.Recorder, SuffixMemo: opts.SuffixMemo}
	var res exact.Result
	var err error
	var method string
	if pr.Objective == MinimizeFailureProb {
		res, err = exact.MinFPUnderLatency(pr.Pipeline, pr.Platform, pr.MaxLatency, exOpts)
		method = "exhaustive search (min FP s.t. latency)"
	} else {
		bound := pr.MaxFailProb
		if pr.fpUnconstrained() {
			bound = 1
		}
		res, err = exact.MinLatencyUnderFP(pr.Pipeline, pr.Platform, bound, exOpts)
		method = "exhaustive search (min latency s.t. FP)"
	}
	if errors.Is(err, exact.ErrCanceled) {
		if res.Mapping != nil {
			return Result{res.Mapping, res.Metrics, Partial, method + " (canceled: best-so-far)", "exact"}, nil
		}
		return Result{}, err
	}
	if errors.Is(err, exact.ErrInfeasible) {
		return Result{}, fmt.Errorf("%s: %w", method, ErrInfeasible)
	}
	if err != nil {
		return Result{}, err
	}
	return Result{res.Mapping, res.Metrics, ExhaustivelyOptimal, method, "exact"}, nil
}

// heuristicProblem translates the core problem into the heuristics
// package's goal/bound form, handing down the Session-cached evaluator
// (when one is configured) so every heuristic scores candidates through
// the shared precomputed state instead of rebuilding it per call.
func heuristicProblem(pr Problem, opts Options) *heuristics.Problem {
	hp := &heuristics.Problem{Pipe: pr.Pipeline, Plat: pr.Platform, Eval: opts.Eval, Recorder: opts.Recorder}
	if pr.Objective == MinimizeFailureProb {
		hp.Goal = heuristics.MinFP
		hp.Bound = pr.MaxLatency
	} else {
		hp.Goal = heuristics.MinLatency
		hp.Bound = pr.MaxFailProb
		if pr.fpUnconstrained() {
			hp.Bound = 1
		}
	}
	return hp
}

func solveHeuristic(ctx context.Context, pr Problem, opts Options, tr *solveTrace) (Result, error) {
	hp := heuristicProblem(pr, opts)
	best := Result{}
	found := false
	began := tr.begin()
	// The ctx-aware searches return their best-so-far result alongside a
	// non-nil error when canceled; any mapping they produced is usable.
	if g, err := heuristics.Greedy(ctx, hp); g.Mapping != nil {
		cert := Heuristic
		if err != nil {
			cert = Partial
		}
		best = Result{g.Mapping, g.Metrics, cert, "greedy local improvement", "heuristic"}
		found = true
	}
	if a, err := heuristics.Anneal(ctx, hp, opts.Anneal); a.Mapping != nil {
		if !found || better(pr, a.Metrics, best.Metrics) {
			cert := Heuristic
			if err != nil {
				cert = Partial
			}
			best = Result{a.Mapping, a.Metrics, cert, "simulated annealing", "heuristic"}
			found = true
		}
	}
	if !found {
		tr.end(telemetry.RouteHeuristic, began, telemetry.OutcomeNotFound)
		if cause := context.Cause(ctx); cause != nil {
			return Result{}, fmt.Errorf("%w: %w", ErrNotFound, cause)
		}
		return Result{}, fmt.Errorf("greedy + annealing: %w", ErrNotFound)
	}
	// Even when one component finished cleanly, a done context means the
	// search pipeline as a whole was truncated: the answer is best-effort.
	if ctx.Err() != nil {
		best.Certainty = Partial
	}
	tr.end(telemetry.RouteHeuristic, began, attemptOutcome(nil, best.Certainty == Partial))
	return best, nil
}

func better(pr Problem, a, b mapping.Metrics) bool {
	if pr.Objective == MinimizeFailureProb {
		return a.FailureProb < b.FailureProb
	}
	return a.Latency < b.Latency
}

// MinLatencyGeneral exposes Theorem 4: the latency-optimal general
// (non-interval, non-replicated) mapping via the layered-graph shortest
// path. Valid on every platform class.
func MinLatencyGeneral(p *pipeline.Pipeline, pl *platform.Platform) (poly.GeneralResult, error) {
	if err := p.Validate(); err != nil {
		return poly.GeneralResult{}, err
	}
	if err := pl.Validate(); err != nil {
		return poly.GeneralResult{}, err
	}
	return poly.MinLatencyGeneral(p, pl), nil
}

// EstimateMappingCount returns the number of interval mappings of n
// stages on m processors with replication: Σ_p C(n−1, p−1)·A(p, m), where
// A(p, m) = Σ_i (−1)^i C(p, i)·(p+1−i)^m counts (by inclusion–exclusion
// over empty intervals) the assignments of each processor to one of the p
// intervals or to none, with every interval non-empty. Used to decide
// exact-vs-heuristic routing against Options.ExactBudget.
//
// Earlier revisions upper-bounded A(p, m) by (p+1)^m, which overshoots by
// orders of magnitude for p close to m and made the router fall back to
// heuristics on instances the pruned enumerator dispatches in
// milliseconds; the count here is exact (up to float64 rounding), so the
// budget now measures real enumeration work.
func EstimateMappingCount(n, m int) float64 {
	total := 0.0
	for p := 1; p <= n && p <= m; p++ {
		total += binom(n-1, p-1) * surjectiveAssignments(p, m)
		if total > 1e18 {
			return total
		}
	}
	return total
}

// surjectiveAssignments counts the ways to give each of m processors one
// of p interval labels or the "unused" label such that no interval label
// is missing.
func surjectiveAssignments(p, m int) float64 {
	total := 0.0
	sign := 1.0
	for i := 0; i <= p; i++ {
		total += sign * binom(p, i) * math.Pow(float64(p+1-i), float64(m))
		sign = -sign
	}
	return total
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// Pareto computes the latency/FP trade-off front: exhaustively on small
// instances, by annealing archive otherwise.
func Pareto(p *pipeline.Pipeline, pl *platform.Platform, opts Options) (*frontier.Front, Certainty, error) {
	return ParetoCtx(context.Background(), p, pl, opts)
}

// ParetoCtx is Pareto under a context. A canceled enumeration returns the
// non-dominated set of the candidates visited so far graded Partial (the
// metric points are genuine mappings, but the front may be incomplete);
// the heuristic fallback is graded Partial likewise when its annealing
// walks were cut short.
func ParetoCtx(ctx context.Context, p *pipeline.Pipeline, pl *platform.Platform, opts Options) (*frontier.Front, Certainty, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	if err := pl.Validate(); err != nil {
		return nil, 0, err
	}
	n, m := p.NumStages(), pl.NumProcs()
	if !opts.ForceHeuristic && EstimateMappingCount(n, m) <= opts.exactBudget() {
		results, err := exact.ParetoFront(p, pl, exact.Options{MaxEnum: int64(opts.exactBudget()) * 2, Workers: opts.Workers, Ctx: ctx, Eval: opts.Eval, SuffixMemo: opts.SuffixMemo})
		if err == nil || (errors.Is(err, exact.ErrCanceled) && len(results) > 0) {
			front := &frontier.Front{}
			for _, r := range results {
				front.Insert(r.Metrics, r.Mapping)
			}
			if err != nil {
				return front, Partial, nil
			}
			return front, ExhaustivelyOptimal, nil
		}
	}
	front, hErr := heuristics.ParetoSearch(ctx, &heuristics.Problem{Pipe: p, Plat: pl, Eval: opts.Eval}, opts.Anneal)
	if hErr != nil || ctx.Err() != nil {
		// A truncated sweep that archived nothing is a failure, not an
		// empty trade-off curve: mirror Solve's contract (result or
		// error, never a silent empty success).
		if front.Len() == 0 {
			return nil, 0, fmt.Errorf("core: pareto canceled before any feasible mapping: %w", context.Cause(ctx))
		}
		return front, Partial, nil
	}
	return front, Heuristic, nil
}
