// Package core is the solver facade of the library: it routes a
// bi-criteria mapping problem to the strongest method available for its
// platform class, mirroring the paper's complexity map.
//
//	platform class              method                      certainty
//	─────────────────────────   ─────────────────────────   ───────────
//	Fully Homogeneous           Algorithm 1 / Algorithm 2   provably optimal
//	CommHom + FailureHom        Algorithm 3 / Algorithm 4   provably optimal
//	CommHom + FailureHet        exact search (small) or     exhaustive /
//	(open problem, §4.4)        greedy + annealing          heuristic
//	Fully Heterogeneous         exact search (small) or     exhaustive /
//	(NP-hard, Theorem 7)        greedy + annealing          heuristic
//
// Mono-criterion queries (no constraint) route to Theorem 1 (minimum
// failure probability, any platform) and Theorem 2 (minimum latency,
// communication-homogeneous platforms). Latency minimization over
// *general* mappings — Theorem 4's shortest-path algorithm — is exposed
// separately as MinLatencyGeneral since it leaves the interval-mapping
// space.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/exact"
	"repro/internal/frontier"
	"repro/internal/heuristics"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/poly"
)

// Objective selects the minimized criterion.
type Objective int

const (
	// MinimizeLatency minimizes the response time, optionally under a
	// failure-probability bound.
	MinimizeLatency Objective = iota
	// MinimizeFailureProb minimizes the failure probability, optionally
	// under a latency bound.
	MinimizeFailureProb
)

func (o Objective) String() string {
	if o == MinimizeLatency {
		return "minimize latency"
	}
	return "minimize failure probability"
}

// Problem is a bi-criteria interval-mapping instance. Leave the
// constraint at its zero value (or +Inf / 1 respectively) for
// mono-criterion queries.
type Problem struct {
	Pipeline  *pipeline.Pipeline
	Platform  *platform.Platform
	Objective Objective
	// MaxLatency bounds the latency when minimizing failure probability.
	// 0 or +Inf means unconstrained.
	MaxLatency float64
	// MaxFailProb bounds the failure probability when minimizing latency.
	// 0 or 1 means unconstrained (every mapping has FP ≤ 1).
	MaxFailProb float64
}

// Certainty grades how strong the returned answer is.
type Certainty int

const (
	// ProvablyOptimal: produced by one of the paper's polynomial
	// algorithms on its platform class.
	ProvablyOptimal Certainty = iota
	// ExhaustivelyOptimal: produced by complete enumeration.
	ExhaustivelyOptimal
	// Heuristic: best mapping found by the heuristic search; optimality
	// is not guaranteed (the underlying problem is NP-hard or open).
	Heuristic
)

func (c Certainty) String() string {
	switch c {
	case ProvablyOptimal:
		return "provably optimal"
	case ExhaustivelyOptimal:
		return "exhaustively optimal"
	default:
		return "heuristic"
	}
}

// Result is a solved problem: the mapping, its metrics, and the provenance
// of the answer.
type Result struct {
	Mapping   *mapping.Mapping
	Metrics   mapping.Metrics
	Certainty Certainty
	Method    string
}

// ErrInfeasible is returned when it is certain that no interval mapping
// satisfies the constraint.
var ErrInfeasible = errors.New("core: no mapping satisfies the constraint")

// ErrNotFound is returned when the heuristic search found no feasible
// mapping; unlike ErrInfeasible this does not prove none exists.
var ErrNotFound = errors.New("core: no feasible mapping found (heuristic search; instance may still be feasible)")

// Options tunes the solver.
type Options struct {
	// ExactBudget is the largest interval-mapping count for which the
	// exact enumerator is used on the hard classes (default 200000).
	ExactBudget float64
	// Workers is the goroutine count for the exact enumeration fan-out
	// (0 = GOMAXPROCS, 1 = sequential). Forwarded to exact.Options.Workers;
	// results are identical for every worker count.
	Workers int
	// Anneal configures the annealing fallback.
	Anneal heuristics.AnnealConfig
	// ForceHeuristic skips exact enumeration even on small instances.
	ForceHeuristic bool
}

func (o Options) exactBudget() float64 {
	if o.ExactBudget > 0 {
		return o.ExactBudget
	}
	return 200_000
}

// Solve routes the problem with default options.
func Solve(pr Problem) (Result, error) { return SolveWithOptions(pr, Options{}) }

// SolveWithOptions routes the problem to the strongest applicable method.
func SolveWithOptions(pr Problem, opts Options) (Result, error) {
	if err := validate(pr); err != nil {
		return Result{}, err
	}
	if pr.Objective == MinimizeFailureProb {
		return solveMinFP(pr, opts)
	}
	return solveMinLatency(pr, opts)
}

func validate(pr Problem) error {
	if pr.Pipeline == nil || pr.Platform == nil {
		return fmt.Errorf("core: problem needs both a pipeline and a platform")
	}
	if err := pr.Pipeline.Validate(); err != nil {
		return err
	}
	if err := pr.Platform.Validate(); err != nil {
		return err
	}
	if pr.MaxLatency < 0 || math.IsNaN(pr.MaxLatency) {
		return fmt.Errorf("core: invalid MaxLatency %v", pr.MaxLatency)
	}
	if pr.MaxFailProb < 0 || pr.MaxFailProb > 1 || math.IsNaN(pr.MaxFailProb) {
		return fmt.Errorf("core: invalid MaxFailProb %v", pr.MaxFailProb)
	}
	return nil
}

func (pr Problem) latencyUnconstrained() bool {
	return pr.MaxLatency == 0 || math.IsInf(pr.MaxLatency, 1)
}

func (pr Problem) fpUnconstrained() bool {
	return pr.MaxFailProb == 0 || pr.MaxFailProb == 1
}

func solveMinFP(pr Problem, opts Options) (Result, error) {
	// Unconstrained: Theorem 1 on every platform class.
	if pr.latencyUnconstrained() {
		res, err := poly.MinFailureProb(pr.Pipeline, pr.Platform)
		if err != nil {
			return Result{}, err
		}
		return Result{res.Mapping, res.Metrics, ProvablyOptimal, "Theorem 1: replicate the whole pipeline on all processors"}, nil
	}
	cls := pr.Platform.Classify()
	switch {
	case cls == platform.FullyHomogeneous:
		res, err := poly.Algorithm1(pr.Pipeline, pr.Platform, pr.MaxLatency)
		if errors.Is(err, poly.ErrInfeasible) {
			return Result{}, ErrInfeasible
		}
		if err != nil {
			return Result{}, err
		}
		return Result{res.Mapping, res.Metrics, ProvablyOptimal, "Algorithm 1 (Theorem 5)"}, nil
	case cls == platform.CommHomogeneous && pr.Platform.FailureHomogeneous():
		res, err := poly.Algorithm3(pr.Pipeline, pr.Platform, pr.MaxLatency)
		if errors.Is(err, poly.ErrInfeasible) {
			return Result{}, ErrInfeasible
		}
		if err != nil {
			return Result{}, err
		}
		return Result{res.Mapping, res.Metrics, ProvablyOptimal, "Algorithm 3 (Theorem 6)"}, nil
	}
	return solveHard(pr, opts)
}

func solveMinLatency(pr Problem, opts Options) (Result, error) {
	cls := pr.Platform.Classify()
	if pr.fpUnconstrained() {
		if cls == platform.FullyHomogeneous || cls == platform.CommHomogeneous {
			res, err := poly.MinLatencyCommHom(pr.Pipeline, pr.Platform)
			if err != nil {
				return Result{}, err
			}
			return Result{res.Mapping, res.Metrics, ProvablyOptimal, "Theorem 2: whole pipeline on the fastest processor"}, nil
		}
		// Fully heterogeneous latency minimization over interval mappings:
		// complexity open (the paper suspects NP-hard). The Theorem 4
		// relaxation gives two-sided bounds; when the shortest general
		// path is already interval-shaped the repaired mapping is provably
		// optimal. Otherwise fall back to exact/heuristic search and keep
		// the better of the two answers.
		bounds, bErr := poly.IntervalLatencyBounds(pr.Pipeline, pr.Platform)
		if bErr == nil && bounds.Tight {
			return Result{bounds.Upper.Mapping, bounds.Upper.Metrics, ProvablyOptimal,
				"Theorem 4 relaxation (general optimum is interval-shaped)"}, nil
		}
		res, err := solveHard(pr, opts)
		if bErr == nil && (err != nil || bounds.Upper.Metrics.Latency < res.Metrics.Latency) {
			res = Result{bounds.Upper.Mapping, bounds.Upper.Metrics, Heuristic,
				"Theorem 4 relaxation + path repair"}
			err = nil
		}
		if pr.Platform.NumProcs() <= 64 {
			if beam, beamErr := heuristics.BeamSearchMinLatency(pr.Pipeline, pr.Platform, 32); beamErr == nil {
				if err != nil || beam.Metrics.Latency < res.Metrics.Latency {
					res = Result{beam.Mapping, beam.Metrics, Heuristic, "beam search over interval prefixes"}
					err = nil
				}
			}
		}
		return res, err
	}
	switch {
	case cls == platform.FullyHomogeneous:
		res, err := poly.Algorithm2(pr.Pipeline, pr.Platform, pr.MaxFailProb)
		if errors.Is(err, poly.ErrInfeasible) {
			return Result{}, ErrInfeasible
		}
		if err != nil {
			return Result{}, err
		}
		return Result{res.Mapping, res.Metrics, ProvablyOptimal, "Algorithm 2 (Theorem 5)"}, nil
	case cls == platform.CommHomogeneous && pr.Platform.FailureHomogeneous():
		res, err := poly.Algorithm4(pr.Pipeline, pr.Platform, pr.MaxFailProb)
		if errors.Is(err, poly.ErrInfeasible) {
			return Result{}, ErrInfeasible
		}
		if err != nil {
			return Result{}, err
		}
		return Result{res.Mapping, res.Metrics, ProvablyOptimal, "Algorithm 4 (Theorem 6)"}, nil
	}
	return solveHard(pr, opts)
}

// solveHard handles the open and NP-hard classes: the bitmask dynamic
// program on communication-homogeneous platforms with few processors,
// exact enumeration when the instance is small enough, and greedy +
// annealing otherwise.
func solveHard(pr Problem, opts Options) (Result, error) {
	n, m := pr.Pipeline.NumStages(), pr.Platform.NumProcs()
	if !opts.ForceHeuristic {
		if _, commHom := pr.Platform.CommHomogeneous(); commHom && m <= exact.MaxBitmaskProcs {
			res, err := solveBitmaskDP(pr)
			if err == nil || errors.Is(err, ErrInfeasible) {
				return res, err
			}
		}
		if EstimateMappingCount(n, m) <= opts.exactBudget() {
			res, err := solveExact(pr, opts)
			if err == nil || errors.Is(err, ErrInfeasible) {
				return res, err
			}
			// Enumeration failed for another reason: fall through.
		}
	}
	return solveHeuristic(pr, opts)
}

// solveBitmaskDP routes to the O(n²·3^m) exact dynamic program for
// communication-homogeneous platforms.
func solveBitmaskDP(pr Problem) (Result, error) {
	var res exact.Result
	var err error
	var method string
	if pr.Objective == MinimizeFailureProb {
		res, err = exact.MinFPUnderLatencyDP(pr.Pipeline, pr.Platform, pr.MaxLatency)
		method = "bitmask DP (min FP s.t. latency)"
	} else {
		bound := pr.MaxFailProb
		if pr.fpUnconstrained() {
			bound = 1
		}
		res, err = exact.MinLatencyUnderFPDP(pr.Pipeline, pr.Platform, bound)
		method = "bitmask DP (min latency s.t. FP)"
	}
	if errors.Is(err, exact.ErrInfeasible) {
		return Result{}, ErrInfeasible
	}
	if err != nil {
		return Result{}, err
	}
	return Result{res.Mapping, res.Metrics, ExhaustivelyOptimal, method}, nil
}

func solveExact(pr Problem, opts Options) (Result, error) {
	exOpts := exact.Options{MaxEnum: int64(opts.exactBudget()) * 2, Workers: opts.Workers}
	var res exact.Result
	var err error
	var method string
	if pr.Objective == MinimizeFailureProb {
		res, err = exact.MinFPUnderLatency(pr.Pipeline, pr.Platform, pr.MaxLatency, exOpts)
		method = "exhaustive search (min FP s.t. latency)"
	} else {
		bound := pr.MaxFailProb
		if pr.fpUnconstrained() {
			bound = 1
		}
		res, err = exact.MinLatencyUnderFP(pr.Pipeline, pr.Platform, bound, exOpts)
		method = "exhaustive search (min latency s.t. FP)"
	}
	if errors.Is(err, exact.ErrInfeasible) {
		return Result{}, ErrInfeasible
	}
	if err != nil {
		return Result{}, err
	}
	return Result{res.Mapping, res.Metrics, ExhaustivelyOptimal, method}, nil
}

func solveHeuristic(pr Problem, opts Options) (Result, error) {
	hp := &heuristics.Problem{Pipe: pr.Pipeline, Plat: pr.Platform}
	if pr.Objective == MinimizeFailureProb {
		hp.Goal = heuristics.MinFP
		hp.Bound = pr.MaxLatency
	} else {
		hp.Goal = heuristics.MinLatency
		hp.Bound = pr.MaxFailProb
		if pr.fpUnconstrained() {
			hp.Bound = 1
		}
	}
	best := Result{}
	found := false
	if g, err := heuristics.Greedy(hp); err == nil {
		best = Result{g.Mapping, g.Metrics, Heuristic, "greedy local improvement"}
		found = true
	}
	if a, err := heuristics.Anneal(hp, opts.Anneal); err == nil {
		if !found || better(pr, a.Metrics, best.Metrics) {
			best = Result{a.Mapping, a.Metrics, Heuristic, "simulated annealing"}
			found = true
		}
	}
	if !found {
		return Result{}, ErrNotFound
	}
	return best, nil
}

func better(pr Problem, a, b mapping.Metrics) bool {
	if pr.Objective == MinimizeFailureProb {
		return a.FailureProb < b.FailureProb
	}
	return a.Latency < b.Latency
}

// MinLatencyGeneral exposes Theorem 4: the latency-optimal general
// (non-interval, non-replicated) mapping via the layered-graph shortest
// path. Valid on every platform class.
func MinLatencyGeneral(p *pipeline.Pipeline, pl *platform.Platform) (poly.GeneralResult, error) {
	if err := p.Validate(); err != nil {
		return poly.GeneralResult{}, err
	}
	if err := pl.Validate(); err != nil {
		return poly.GeneralResult{}, err
	}
	return poly.MinLatencyGeneral(p, pl), nil
}

// EstimateMappingCount approximates the number of interval mappings of n
// stages on m processors (with replication): Σ_p C(n−1, p−1)·S(p, m)
// where S(p, m) counts assignments of disjoint non-empty replica sets,
// upper-bounded here by (p+1)^m. Used to decide exact-vs-heuristic.
func EstimateMappingCount(n, m int) float64 {
	total := 0.0
	for p := 1; p <= n && p <= m; p++ {
		total += binom(n-1, p-1) * math.Pow(float64(p+1), float64(m))
		if total > 1e18 {
			return total
		}
	}
	return total
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// Pareto computes the latency/FP trade-off front: exhaustively on small
// instances, by annealing archive otherwise.
func Pareto(p *pipeline.Pipeline, pl *platform.Platform, opts Options) (*frontier.Front, Certainty, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	if err := pl.Validate(); err != nil {
		return nil, 0, err
	}
	n, m := p.NumStages(), pl.NumProcs()
	if !opts.ForceHeuristic && EstimateMappingCount(n, m) <= opts.exactBudget() {
		results, err := exact.ParetoFront(p, pl, exact.Options{MaxEnum: int64(opts.exactBudget()) * 2, Workers: opts.Workers})
		if err == nil {
			front := &frontier.Front{}
			for _, r := range results {
				front.Insert(r.Metrics, r.Mapping)
			}
			return front, ExhaustivelyOptimal, nil
		}
	}
	front := heuristics.ParetoSearch(&heuristics.Problem{Pipe: p, Plat: pl}, opts.Anneal)
	return front, Heuristic, nil
}
