package graph

import (
	"math"

	"repro/internal/pipeline"
	"repro/internal/platform"
)

// The layered DAG of the paper's Figure 6 encodes general mappings as
// paths: vertex V_{i,u} means "stage i runs on processor u". A path from
// the source (V_{0,in}) to the sink (V_{n+1,out}) selects one processor per
// stage; edge weights are chosen so the path weight equals the mapping's
// latency:
//
//	source → V_{1,u}:  δ_0 / b_{in,u}
//	V_{i,u} → V_{i+1,v}:  w_i/s_u  +  (δ_i / b_{u,v}  if u ≠ v, else 0)
//	V_{n,u} → sink:  w_n/s_u + δ_n / b_{u,out}
//
// LayeredVertexID maps (stage i, processor u) to a vertex id; the source
// is 0 and the sink is n·m + 1.

// LayeredSource is the vertex id of V_{0,in}.
const LayeredSource = 0

// LayeredVertexID returns the vertex id of V_{i+1,u} for 0-based stage i
// on processor u, in a pipeline of n stages on m processors.
func LayeredVertexID(i, u, m int) int { return 1 + i*m + u }

// LayeredSink returns the sink vertex id for n stages on m processors.
func LayeredSink(n, m int) int { return 1 + n*m }

// BuildLayered constructs the Figure-6 graph for the given application and
// platform. The graph has n·m + 2 vertices and (n−1)·m² + 2m edges.
func BuildLayered(p *pipeline.Pipeline, pl *platform.Platform) *Graph {
	n, m := p.NumStages(), pl.NumProcs()
	g := New(n*m + 2)
	for u := 0; u < m; u++ {
		// source → V_{1,u}
		mustAdd(g, LayeredSource, LayeredVertexID(0, u, m), p.Delta[0]/pl.BIn[u])
	}
	for i := 0; i+1 < n; i++ {
		for u := 0; u < m; u++ {
			comp := p.W[i] / pl.Speed[u]
			for v := 0; v < m; v++ {
				w := comp
				if u != v {
					w += p.Delta[i+1] / pl.B[u][v]
				}
				mustAdd(g, LayeredVertexID(i, u, m), LayeredVertexID(i+1, v, m), w)
			}
		}
	}
	last := n - 1
	for u := 0; u < m; u++ {
		w := p.W[last]/pl.Speed[u] + p.Delta[n]/pl.BOut[u]
		mustAdd(g, LayeredVertexID(last, u, m), LayeredSink(n, m), w)
	}
	return g
}

func mustAdd(g *Graph, u, v int, w float64) {
	if err := g.AddEdge(u, v, w); err != nil {
		panic(err) // construction bug, not user input
	}
}

// LayeredShortestPathDP solves the layered graph directly with a
// layer-by-layer dynamic program in O(n·m²) time and O(m) extra space,
// avoiding the heap overhead of Dijkstra. It returns the minimum latency
// and, for each stage, the chosen processor.
func LayeredShortestPathDP(p *pipeline.Pipeline, pl *platform.Platform) (float64, []int) {
	n, m := p.NumStages(), pl.NumProcs()
	dist := make([]float64, m)
	prev := make([][]int, n) // prev[i][u] = processor of stage i-1 on the best path reaching V_{i,u}
	for u := 0; u < m; u++ {
		dist[u] = p.Delta[0] / pl.BIn[u]
	}
	next := make([]float64, m)
	for i := 0; i+1 < n; i++ {
		prev[i+1] = make([]int, m)
		for v := 0; v < m; v++ {
			next[v] = math.Inf(1)
		}
		for u := 0; u < m; u++ {
			comp := dist[u] + p.W[i]/pl.Speed[u]
			for v := 0; v < m; v++ {
				w := comp
				if u != v {
					w += p.Delta[i+1] / pl.B[u][v]
				}
				if w < next[v] {
					next[v] = w
					prev[i+1][v] = u
				}
			}
		}
		dist, next = next, dist
	}
	best := math.Inf(1)
	bestU := -1
	last := n - 1
	for u := 0; u < m; u++ {
		w := dist[u] + p.W[last]/pl.Speed[u] + p.Delta[n]/pl.BOut[u]
		if w < best {
			best = w
			bestU = u
		}
	}
	procs := make([]int, n)
	procs[last] = bestU
	for i := last; i > 0; i-- {
		procs[i-1] = prev[i][procs[i]]
	}
	return best, procs
}
