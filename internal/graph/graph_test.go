package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeErrors(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := g.AddEdge(-1, 0, 1); err == nil {
		t.Error("negative source accepted")
	}
	if err := g.AddEdge(0, 2, 1); err == nil {
		t.Error("out-of-range target accepted")
	}
	if err := g.AddEdge(0, 1, -0.5); err == nil {
		t.Error("negative weight accepted")
	}
	if err := g.AddEdge(0, 1, math.NaN()); err == nil {
		t.Error("NaN weight accepted")
	}
	if g.NumVertices() != 2 {
		t.Errorf("NumVertices = %d, want 2", g.NumVertices())
	}
}

func TestDijkstraSmall(t *testing.T) {
	// 0 →(1) 1 →(2) 3;  0 →(4) 2 →(1) 3;  0 →(10) 3
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 2)
	g.AddEdge(0, 2, 4)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 10)
	dist, prev := g.Dijkstra(0)
	want := []float64{0, 1, 4, 3}
	for v, d := range want {
		if dist[v] != d {
			t.Errorf("dist[%d] = %g, want %g", v, dist[v], d)
		}
	}
	path := Path(prev, 0, 3)
	wantPath := []int{0, 1, 3}
	if len(path) != len(wantPath) {
		t.Fatalf("path = %v, want %v", path, wantPath)
	}
	for i := range wantPath {
		if path[i] != wantPath[i] {
			t.Fatalf("path = %v, want %v", path, wantPath)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	dist, prev := g.Dijkstra(0)
	if !math.IsInf(dist[2], 1) {
		t.Errorf("dist[2] = %g, want +Inf", dist[2])
	}
	if Path(prev, 0, 2) != nil {
		t.Error("Path to unreachable vertex should be nil")
	}
	if p := Path(prev, 0, 0); len(p) != 1 || p[0] != 0 {
		t.Errorf("Path(src,src) = %v, want [0]", p)
	}
}

// TestDijkstraAgainstBellmanFord cross-validates Dijkstra with a naive
// Bellman–Ford on random graphs.
func TestDijkstraAgainstBellmanFord(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		for u := 0; u < n; u++ {
			deg := rng.Intn(4)
			for e := 0; e < deg; e++ {
				g.AddEdge(u, rng.Intn(n), rng.Float64()*10)
			}
		}
		dist, _ := g.Dijkstra(0)
		bf := bellmanFord(g, 0)
		for v := 0; v < n; v++ {
			dv, bv := dist[v], bf[v]
			if math.IsInf(dv, 1) != math.IsInf(bv, 1) {
				return false
			}
			if !math.IsInf(dv, 1) && math.Abs(dv-bv) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func bellmanFord(g *Graph, src int) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			for _, e := range g.Adj[u] {
				if nd := dist[u] + e.Weight; nd < dist[e.To] {
					dist[e.To] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestHamiltonianPathTriangle(t *testing.T) {
	// 3 vertices; best path 0→2→1 costs 1+1=2 versus direct order 0→1→2 = 5+1.
	cost := [][]float64{
		{0, 5, 1},
		{9, 0, 9},
		{9, 1, 0},
	}
	c, order, err := HamiltonianPath(cost, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c != 2 {
		t.Errorf("cost = %g, want 2", c)
	}
	want := []int{0, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestHamiltonianPathErrors(t *testing.T) {
	if _, _, err := HamiltonianPath(nil, 0, 0); err == nil {
		t.Error("empty matrix accepted")
	}
	big := make([][]float64, MaxHeldKarp+1)
	for i := range big {
		big[i] = make([]float64, MaxHeldKarp+1)
	}
	if _, _, err := HamiltonianPath(big, 0, 1); err == nil {
		t.Error("oversized instance accepted")
	}
	if _, _, err := HamiltonianPath([][]float64{{0, 1}, {1}}, 0, 1); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, _, err := HamiltonianPath([][]float64{{0, 1}, {1, 0}}, 0, 2); err == nil {
		t.Error("endpoint out of range accepted")
	}
	if _, _, err := HamiltonianPath([][]float64{{0, 1}, {1, 0}}, 0, 0); err == nil {
		t.Error("s == t with n > 1 accepted")
	}
	if c, order, err := HamiltonianPath([][]float64{{0}}, 0, 0); err != nil || c != 0 || len(order) != 1 {
		t.Errorf("single vertex: got (%g,%v,%v)", c, order, err)
	}
	if _, _, err := HamiltonianPath([][]float64{{0}}, 0, 1); err == nil {
		t.Error("single vertex with bad endpoint accepted")
	}
}

// TestHamiltonianPathAgainstBruteForce validates Held–Karp against
// permutation enumeration on random instances.
func TestHamiltonianPathAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		cost := make([][]float64, n)
		for u := range cost {
			cost[u] = make([]float64, n)
			for v := range cost[u] {
				if u != v {
					cost[u][v] = 1 + rng.Float64()*9
				}
			}
		}
		s := rng.Intn(n)
		t2 := (s + 1 + rng.Intn(n-1)) % n
		got, order, err := HamiltonianPath(cost, s, t2)
		if err != nil {
			return false
		}
		// Path must be a valid s→t Hamiltonian order with matching cost.
		if order[0] != s || order[len(order)-1] != t2 || len(order) != n {
			return false
		}
		sum := 0.0
		seen := make([]bool, n)
		for i, v := range order {
			if seen[v] {
				return false
			}
			seen[v] = true
			if i > 0 {
				sum += cost[order[i-1]][v]
			}
		}
		if math.Abs(sum-got) > 1e-9 {
			return false
		}
		want := bruteHamiltonian(cost, s, t2)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func bruteHamiltonian(cost [][]float64, s, t int) float64 {
	n := len(cost)
	var mids []int
	for v := 0; v < n; v++ {
		if v != s && v != t {
			mids = append(mids, v)
		}
	}
	best := math.Inf(1)
	var rec func(order []int, rest []int)
	rec = func(order []int, rest []int) {
		if len(rest) == 0 {
			sum := 0.0
			prevV := s
			for _, v := range order {
				sum += cost[prevV][v]
				prevV = v
			}
			sum += cost[prevV][t]
			if sum < best {
				best = sum
			}
			return
		}
		for i := range rest {
			next := append(append([]int{}, rest[:i]...), rest[i+1:]...)
			rec(append(order, rest[i]), next)
		}
	}
	rec(nil, mids)
	return best
}
