package graph

import (
	"fmt"
	"math"
)

// MaxHeldKarp bounds the instance size accepted by HamiltonianPath; the DP
// table is O(2^n · n) and becomes impractical beyond ~20 vertices.
const MaxHeldKarp = 20

// HamiltonianPath computes a minimum-cost Hamiltonian path from s to t in
// the complete directed graph described by the cost matrix (cost[u][v] is
// the cost of traversing u → v; diagonal entries are ignored), using the
// Held–Karp subset dynamic program in O(2^n·n²) time.
//
// It returns the optimal cost and the vertex order. This is the exact
// oracle that the Theorem 3 reduction from the Traveling Salesman Problem
// is validated against.
func HamiltonianPath(cost [][]float64, s, t int) (float64, []int, error) {
	n := len(cost)
	if n == 0 {
		return 0, nil, fmt.Errorf("heldkarp: empty cost matrix")
	}
	if n > MaxHeldKarp {
		return 0, nil, fmt.Errorf("heldkarp: n=%d exceeds limit %d", n, MaxHeldKarp)
	}
	for u := range cost {
		if len(cost[u]) != n {
			return 0, nil, fmt.Errorf("heldkarp: ragged cost matrix at row %d", u)
		}
	}
	if s < 0 || s >= n || t < 0 || t >= n {
		return 0, nil, fmt.Errorf("heldkarp: endpoints (%d,%d) out of range [0,%d)", s, t, n)
	}
	if n == 1 {
		if s != t {
			return 0, nil, fmt.Errorf("heldkarp: single vertex but s != t")
		}
		return 0, []int{s}, nil
	}
	if s == t {
		return 0, nil, fmt.Errorf("heldkarp: s == t with n > 1 has no Hamiltonian path")
	}

	full := 1 << n
	// dp[mask][v]: min cost of a path starting at s, visiting exactly the
	// vertices of mask, ending at v (s, v ∈ mask).
	dp := make([][]float64, full)
	par := make([][]int8, full)
	for mask := range dp {
		dp[mask] = make([]float64, n)
		par[mask] = make([]int8, n)
		for v := range dp[mask] {
			dp[mask][v] = math.Inf(1)
			par[mask][v] = -1
		}
	}
	start := 1 << s
	dp[start][s] = 0
	for mask := start; mask < full; mask++ {
		if mask&start == 0 {
			continue
		}
		for v := 0; v < n; v++ {
			if mask&(1<<v) == 0 || math.IsInf(dp[mask][v], 1) {
				continue
			}
			base := dp[mask][v]
			for w := 0; w < n; w++ {
				if mask&(1<<w) != 0 {
					continue
				}
				nm := mask | 1<<w
				if nd := base + cost[v][w]; nd < dp[nm][w] {
					dp[nm][w] = nd
					par[nm][w] = int8(v)
				}
			}
		}
	}
	best := dp[full-1][t]
	if math.IsInf(best, 1) {
		return 0, nil, fmt.Errorf("heldkarp: no Hamiltonian path from %d to %d", s, t)
	}
	// Reconstruct.
	order := make([]int, 0, n)
	mask, v := full-1, t
	for v != -1 {
		order = append(order, v)
		pv := int(par[mask][v])
		mask ^= 1 << v
		v = pv
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return best, order, nil
}
