package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

func randomInstance(seed int64, maxN, maxM int) (*pipeline.Pipeline, *platform.Platform, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(maxN)
	m := 1 + rng.Intn(maxM)
	p := pipeline.Random(rng, n, 0.5, 10, 0.5, 10)
	pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0, 1, 1, 50)
	return p, pl, rng
}

func TestBuildLayeredShape(t *testing.T) {
	p := pipeline.Uniform(3, 1, 1)
	pl := platform.RandomFullyHeterogeneous(rand.New(rand.NewSource(1)), 4, 1, 2, 0, 1, 1, 2)
	g := BuildLayered(p, pl)
	n, m := 3, 4
	if got, want := g.NumVertices(), n*m+2; got != want {
		t.Errorf("NumVertices = %d, want %d", got, want)
	}
	edges := 0
	for _, adj := range g.Adj {
		edges += len(adj)
	}
	if want := (n-1)*m*m + 2*m; edges != want {
		t.Errorf("edges = %d, want %d (paper: (n−1)m²+2m)", edges, want)
	}
}

// TestLayeredPathWeightEqualsLatency: any source→sink path's weight equals
// the latency of the general mapping it encodes.
func TestLayeredPathWeightEqualsLatency(t *testing.T) {
	f := func(seed int64) bool {
		p, pl, rng := randomInstance(seed, 5, 5)
		n, m := p.NumStages(), pl.NumProcs()
		procs := make([]int, n)
		for i := range procs {
			procs[i] = rng.Intn(m)
		}
		// Walk the path in the layered graph, summing weights.
		g := BuildLayered(p, pl)
		sum := 0.0
		cur := LayeredSource
		for i := 0; i <= n; i++ {
			var target int
			if i < n {
				target = LayeredVertexID(i, procs[i], m)
			} else {
				target = LayeredSink(n, m)
			}
			found := false
			for _, e := range g.Adj[cur] {
				if e.To == target {
					sum += e.Weight
					cur = target
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		gm := &mapping.GeneralMapping{ProcOf: procs}
		lat, err := gm.Latency(p, pl)
		if err != nil {
			return false
		}
		return math.Abs(sum-lat) <= 1e-9*math.Max(1, lat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDPMatchesDijkstra: the O(n·m²) DP and Dijkstra over the explicit
// graph must agree on the optimum.
func TestDPMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		p, pl, _ := randomInstance(seed, 6, 6)
		n, m := p.NumStages(), pl.NumProcs()
		g := BuildLayered(p, pl)
		dist, _ := g.Dijkstra(LayeredSource)
		viaDijkstra := dist[LayeredSink(n, m)]
		viaDP, procs := LayeredShortestPathDP(p, pl)
		if math.Abs(viaDijkstra-viaDP) > 1e-9*math.Max(1, viaDP) {
			return false
		}
		// The DP's processor choice must achieve its reported latency.
		gm := &mapping.GeneralMapping{ProcOf: procs}
		lat, err := gm.Latency(p, pl)
		if err != nil {
			return false
		}
		return math.Abs(lat-viaDP) <= 1e-9*math.Max(1, viaDP)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestDPOptimalSmall: exhaustive m^n enumeration confirms the DP optimum
// on small instances.
func TestDPOptimalSmall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		p := pipeline.Random(rng, n, 0.5, 10, 0.5, 10)
		pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0, 1, 1, 50)
		got, _ := LayeredShortestPathDP(p, pl)
		best := math.Inf(1)
		procs := make([]int, n)
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				gm := &mapping.GeneralMapping{ProcOf: procs}
				if lat, err := gm.Latency(p, pl); err == nil && lat < best {
					best = lat
				}
				return
			}
			for u := 0; u < m; u++ {
				procs[i] = u
				rec(i + 1)
			}
		}
		rec(0)
		return math.Abs(got-best) <= 1e-9*math.Max(1, best)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestLayeredSingleStage(t *testing.T) {
	p := pipeline.MustNew([]float64{6}, []float64{2, 4})
	pl, err := platform.NewFullyHeterogeneous(
		[]float64{2, 3},
		[]float64{0, 0},
		[][]float64{{0, 1}, {1, 0}},
		[]float64{1, 2},
		[]float64{4, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	lat, procs := LayeredShortestPathDP(p, pl)
	// P0: 2/1 + 6/2 + 4/4 = 6;  P1: 2/2 + 6/3 + 4/1 = 7.
	if lat != 6 || procs[0] != 0 {
		t.Errorf("got latency %g on P%d, want 6 on P0", lat, procs[0]+1)
	}
}
