// Package graph provides the small graph toolbox the reproduction needs:
// a binary-heap Dijkstra, the layered DAG of the paper's Figure 6 (used by
// Theorem 4's polynomial algorithm for general mappings), and a Held–Karp
// dynamic program for minimum-cost Hamiltonian paths (used to validate the
// Theorem 3 NP-hardness reduction from TSP).
package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// Edge is a weighted directed edge.
type Edge struct {
	To     int
	Weight float64
}

// Graph is a directed graph in adjacency-list form with float64 weights.
type Graph struct {
	Adj [][]Edge
}

// New creates a graph with n vertices and no edges.
func New(n int) *Graph { return &Graph{Adj: make([][]Edge, n)} }

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Adj) }

// AddEdge appends a directed edge u -> v with weight w. Negative weights
// are rejected (Dijkstra requirement).
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= len(g.Adj) || v < 0 || v >= len(g.Adj) {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.Adj))
	}
	if w < 0 || math.IsNaN(w) {
		return fmt.Errorf("graph: edge (%d,%d) has invalid weight %v", u, v, w)
	}
	g.Adj[u] = append(g.Adj[u], Edge{To: v, Weight: w})
	return nil
}

// pqItem is a priority-queue entry.
type pqItem struct {
	v    int
	dist float64
}

// pq implements heap.Interface over pqItem, ordered by dist.
type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra computes single-source shortest paths from src. It returns the
// distance slice (math.Inf(1) for unreachable vertices) and the
// predecessor slice (-1 when undefined). Lazy deletion is used: stale heap
// entries are skipped on pop.
func (g *Graph) Dijkstra(src int) (dist []float64, prev []int) {
	n := len(g.Adj)
	dist = make([]float64, n)
	prev = make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{v: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.v] {
			continue // stale entry
		}
		for _, e := range g.Adj[it.v] {
			if nd := it.dist + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = it.v
				heap.Push(q, pqItem{v: e.To, dist: nd})
			}
		}
	}
	return dist, prev
}

// Path reconstructs the shortest path from the Dijkstra predecessor array,
// ending at dst. It returns nil if dst is unreachable.
func Path(prev []int, src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	if prev[dst] == -1 {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = prev[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
