package pipeline

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

func TestAppendCanonicalBytesLayout(t *testing.T) {
	p := MustNew([]float64{1, 100}, []float64{10, 1, 0})
	got := p.AppendCanonicalBytes(nil)
	want := binary.AppendUvarint(nil, 2)
	for _, x := range []float64{1, 100, 10, 1, 0} {
		want = binary.BigEndian.AppendUint64(want, math.Float64bits(x))
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoding mismatch:\n got %x\nwant %x", got, want)
	}
}

func TestAppendCanonicalBytesAppends(t *testing.T) {
	p := Uniform(3, 2, 1)
	prefix := []byte{0xde, 0xad}
	got := p.AppendCanonicalBytes(append([]byte(nil), prefix...))
	if !bytes.HasPrefix(got, prefix) {
		t.Fatal("existing dst bytes not preserved")
	}
	if !bytes.Equal(got[len(prefix):], p.AppendCanonicalBytes(nil)) {
		t.Fatal("appended bytes differ from fresh encoding")
	}
}

func TestAppendCanonicalBytesInjective(t *testing.T) {
	// Pairs that agree on total work / concatenated values but differ
	// structurally must encode differently.
	pairs := [][2]*Pipeline{
		{MustNew([]float64{1, 2}, []float64{0, 0, 0}), MustNew([]float64{2, 1}, []float64{0, 0, 0})},
		{MustNew([]float64{3}, []float64{1, 2}), MustNew([]float64{3}, []float64{2, 1})},
		{MustNew([]float64{1, 2}, []float64{3, 4, 5}), MustNew([]float64{1}, []float64{2, 3})},
		{MustNew([]float64{0}, []float64{0, 0}), MustNew([]float64{0, 0}, []float64{0, 0, 0})},
	}
	for i, pair := range pairs {
		a := pair[0].AppendCanonicalBytes(nil)
		b := pair[1].AppendCanonicalBytes(nil)
		if bytes.Equal(a, b) {
			t.Errorf("pair %d: distinct pipelines encoded identically", i)
		}
	}
	// And Equal pipelines must encode identically.
	p := MustNew([]float64{5, 5}, []float64{4, 6, 4})
	q := MustNew([]float64{5, 5}, []float64{4, 6, 4})
	if !bytes.Equal(p.AppendCanonicalBytes(nil), q.AppendCanonicalBytes(nil)) {
		t.Fatal("equal pipelines encoded differently")
	}
}
