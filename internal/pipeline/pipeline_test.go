package pipeline

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValid(t *testing.T) {
	p, err := New([]float64{1, 2, 3}, []float64{10, 11, 12, 13})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := p.NumStages(); got != 3 {
		t.Errorf("NumStages = %d, want 3", got)
	}
}

func TestNewErrors(t *testing.T) {
	cases := []struct {
		name  string
		w     []float64
		delta []float64
	}{
		{"empty", nil, []float64{1}},
		{"delta too short", []float64{1, 2}, []float64{1, 2}},
		{"delta too long", []float64{1}, []float64{1, 2, 3}},
		{"negative w", []float64{-1}, []float64{1, 1}},
		{"negative delta", []float64{1}, []float64{-1, 1}},
		{"nan w", []float64{math.NaN()}, []float64{1, 1}},
		{"inf delta", []float64{1}, []float64{math.Inf(1), 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.w, c.delta); err == nil {
				t.Errorf("New(%v,%v) succeeded, want error", c.w, c.delta)
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew on invalid input did not panic")
		}
	}()
	MustNew(nil, nil)
}

func TestWork(t *testing.T) {
	p := MustNew([]float64{1, 2, 3, 4}, []float64{0, 0, 0, 0, 0})
	cases := []struct {
		first, last int
		want        float64
	}{
		{0, 0, 1}, {0, 1, 3}, {0, 3, 10}, {1, 2, 5}, {3, 3, 4},
	}
	for _, c := range cases {
		if got := p.Work(c.first, c.last); got != c.want {
			t.Errorf("Work(%d,%d) = %g, want %g", c.first, c.last, got, c.want)
		}
	}
	if got := p.TotalWork(); got != 10 {
		t.Errorf("TotalWork = %g, want 10", got)
	}
}

func TestWorkPanicsOnBadRange(t *testing.T) {
	p := Uniform(3, 1, 1)
	for _, rg := range [][2]int{{-1, 0}, {0, 3}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Work(%d,%d) did not panic", rg[0], rg[1])
				}
			}()
			p.Work(rg[0], rg[1])
		}()
	}
}

func TestInputOutputSize(t *testing.T) {
	p := MustNew([]float64{1, 1}, []float64{5, 6, 7})
	if got := p.InputSize(0); got != 5 {
		t.Errorf("InputSize(0) = %g, want 5", got)
	}
	if got := p.InputSize(1); got != 6 {
		t.Errorf("InputSize(1) = %g, want 6", got)
	}
	if got := p.OutputSize(0); got != 6 {
		t.Errorf("OutputSize(0) = %g, want 6", got)
	}
	if got := p.OutputSize(1); got != 7 {
		t.Errorf("OutputSize(1) = %g, want 7", got)
	}
}

func TestCloneEqual(t *testing.T) {
	p := MustNew([]float64{1, 2}, []float64{3, 4, 5})
	q := p.Clone()
	if !p.Equal(q) {
		t.Error("clone not Equal to original")
	}
	q.W[0] = 99
	if p.Equal(q) {
		t.Error("mutated clone still Equal")
	}
	if p.W[0] != 1 {
		t.Error("mutating clone affected original")
	}
	r := Uniform(3, 1, 1)
	if p.Equal(r) {
		t.Error("different-length pipelines reported Equal")
	}
}

func TestString(t *testing.T) {
	p := MustNew([]float64{2, 2}, []float64{100, 100, 100})
	s := p.String()
	for _, want := range []string{"S1", "S2", "w=2", "δ0=100", "δ2=100"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := MustNew([]float64{1.5, 2.5}, []float64{0.5, 1, 2})
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var q Pipeline
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !p.Equal(&q) {
		t.Errorf("round trip mismatch: %v vs %v", p, &q)
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var q Pipeline
	if err := json.Unmarshal([]byte(`{"w":[1],"delta":[1]}`), &q); err == nil {
		t.Error("Unmarshal accepted mismatched delta length")
	}
	if err := json.Unmarshal([]byte(`{bad`), &q); err == nil {
		t.Error("Unmarshal accepted syntactically invalid JSON")
	}
}

func TestUniform(t *testing.T) {
	p := Uniform(5, 2, 3)
	if p.NumStages() != 5 {
		t.Fatalf("NumStages = %d, want 5", p.NumStages())
	}
	for i, w := range p.W {
		if w != 2 {
			t.Errorf("W[%d] = %g, want 2", i, w)
		}
	}
	for k, d := range p.Delta {
		if d != 3 {
			t.Errorf("Delta[%d] = %g, want 3", k, d)
		}
	}
}

func TestRandomInRangeAndDeterministic(t *testing.T) {
	p := Random(rand.New(rand.NewSource(42)), 20, 1, 5, 10, 20)
	for i, w := range p.W {
		if w < 1 || w > 5 {
			t.Errorf("W[%d] = %g out of [1,5]", i, w)
		}
	}
	for k, d := range p.Delta {
		if d < 10 || d > 20 {
			t.Errorf("Delta[%d] = %g out of [10,20]", k, d)
		}
	}
	q := Random(rand.New(rand.NewSource(42)), 20, 1, 5, 10, 20)
	if !p.Equal(q) {
		t.Error("same seed produced different pipelines")
	}
}

// Property: Work is additive over any split point of an interval.
func TestWorkAdditiveProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%16) + 2
		rng := rand.New(rand.NewSource(seed))
		p := Random(rng, n, 0, 10, 0, 10)
		first := rng.Intn(n)
		last := first + rng.Intn(n-first)
		if first == last {
			return math.Abs(p.Work(first, last)-p.W[first]) < 1e-9
		}
		mid := first + rng.Intn(last-first)
		lhs := p.Work(first, last)
		rhs := p.Work(first, mid) + p.Work(mid+1, last)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: JSON round trip preserves Equal for random pipelines.
func TestJSONRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%10) + 1
		p := Random(rand.New(rand.NewSource(seed)), n, 0, 100, 0, 100)
		data, err := json.Marshal(p)
		if err != nil {
			return false
		}
		var q Pipeline
		if err := json.Unmarshal(data, &q); err != nil {
			return false
		}
		return p.Equal(&q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestWorkLiteralFallback: pipelines assembled as struct literals (no
// prefix cache) still answer Work correctly, by direct summation.
func TestWorkLiteralFallback(t *testing.T) {
	p := &Pipeline{W: []float64{1, 2, 3}, Delta: []float64{0, 0, 0, 0}}
	if got := p.Work(0, 2); got != 6 {
		t.Errorf("Work on literal = %g, want 6", got)
	}
	if got := p.Work(1, 1); got != 2 {
		t.Errorf("Work on literal = %g, want 2", got)
	}
}

// TestWorkConcurrentReadOnly: concurrent Work calls are race-free both on
// New-built pipelines (cached prefix) and struct literals (no cache).
// Meaningful under -race.
func TestWorkConcurrentReadOnly(t *testing.T) {
	built := MustNew([]float64{1, 2, 3, 4}, []float64{0, 0, 0, 0, 0})
	literal := &Pipeline{W: []float64{1, 2, 3, 4}, Delta: []float64{0, 0, 0, 0, 0}}
	done := make(chan bool)
	for w := 0; w < 4; w++ {
		go func() {
			for i := 0; i < 200; i++ {
				if built.Work(0, 3) != 10 || literal.Work(1, 2) != 5 {
					t.Error("wrong concurrent Work result")
				}
			}
			done <- true
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
