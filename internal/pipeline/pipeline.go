// Package pipeline models the linear workflow applications studied in the
// paper "Optimizing Latency and Reliability of Pipeline Workflow
// Applications" (Benoit, Rehn-Sonigo, Robert; INRIA RR-6345, 2008).
//
// An application is a chain of n stages S_1 .. S_n. Stage S_k receives an
// input of size δ_{k-1} from its predecessor, performs w_k units of
// computation, and emits an output of size δ_k. The first stage reads its
// input (size δ_0) from a distinguished input processor P_in and the last
// stage writes its result (size δ_n) to an output processor P_out.
//
// Internally stages are 0-based: W[i] is the paper's w_{i+1} and Delta[k]
// is the paper's δ_k (so Delta has length n+1, Delta[0] being the initial
// input size and Delta[n] the final output size).
package pipeline

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Pipeline is an immutable-by-convention description of an n-stage
// workflow. The zero value is an empty pipeline with no stages; use New or
// one of the generators to obtain a valid instance.
type Pipeline struct {
	// W holds the computation volume of each stage: W[i] is the number of
	// operations performed by stage i (0-based). len(W) == n.
	W []float64
	// Delta holds the communication volumes between consecutive stages:
	// Delta[k] is the size of the data produced by stage k-1 and consumed
	// by stage k (Delta[0] enters the pipeline, Delta[n] leaves it).
	// len(Delta) == n+1.
	Delta []float64

	// prefix[i] = sum of W[0..i-1], built eagerly by New (and
	// UnmarshalJSON) so that interval work queries are O(1). It is
	// derived state, never encoded. Pipelines assembled as struct
	// literals have no prefix and fall back to direct summation, which
	// keeps concurrent read-only use race-free.
	prefix []float64
}

// New builds a Pipeline from stage computation volumes w and communication
// volumes delta and validates it. len(delta) must be len(w)+1.
func New(w, delta []float64) (*Pipeline, error) {
	p := &Pipeline{W: append([]float64(nil), w...), Delta: append([]float64(nil), delta...)}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.buildPrefix()
	return p, nil
}

// MustNew is New but panics on invalid input. Intended for tests, examples
// and hard-coded paper instances.
func MustNew(w, delta []float64) *Pipeline {
	p, err := New(w, delta)
	if err != nil {
		panic(err)
	}
	return p
}

// NumStages returns n, the number of stages.
func (p *Pipeline) NumStages() int { return len(p.W) }

// Validate checks structural invariants: at least one stage, matching
// slice lengths, and non-negative finite volumes.
func (p *Pipeline) Validate() error {
	n := len(p.W)
	if n == 0 {
		return fmt.Errorf("pipeline: must have at least one stage")
	}
	if len(p.Delta) != n+1 {
		return fmt.Errorf("pipeline: len(Delta)=%d, want n+1=%d", len(p.Delta), n+1)
	}
	for i, w := range p.W {
		if w < 0 || isNaNOrInf(w) {
			return fmt.Errorf("pipeline: W[%d]=%v must be finite and >= 0", i, w)
		}
	}
	for k, d := range p.Delta {
		if d < 0 || isNaNOrInf(d) {
			return fmt.Errorf("pipeline: Delta[%d]=%v must be finite and >= 0", k, d)
		}
	}
	return nil
}

func isNaNOrInf(x float64) bool { return x != x || x > maxFinite || x < -maxFinite }

const maxFinite = 1.7976931348623157e308

// Work returns the total computation volume of the inclusive stage range
// [first, last] (0-based). It panics if the range is out of bounds; the
// mapping layer validates ranges before calling. O(1) for pipelines built
// with New; struct-literal pipelines sum directly (still safe under
// concurrent read-only use).
func (p *Pipeline) Work(first, last int) float64 {
	if first < 0 || last >= len(p.W) || first > last {
		panic(fmt.Sprintf("pipeline: invalid stage range [%d,%d] for n=%d", first, last, len(p.W)))
	}
	if len(p.prefix) == len(p.W)+1 {
		return p.prefix[last+1] - p.prefix[first]
	}
	sum := 0.0
	for i := first; i <= last; i++ {
		sum += p.W[i]
	}
	return sum
}

// TotalWork returns the computation volume of the whole pipeline.
func (p *Pipeline) TotalWork() float64 { return p.Work(0, len(p.W)-1) }

func (p *Pipeline) buildPrefix() {
	p.prefix = make([]float64, len(p.W)+1)
	for i, w := range p.W {
		p.prefix[i+1] = p.prefix[i] + w
	}
}

// InputSize returns δ_{first}, the volume entering stage `first`, i.e. the
// data an interval starting at that stage must receive.
func (p *Pipeline) InputSize(first int) float64 { return p.Delta[first] }

// OutputSize returns δ_{last+1}, the volume produced by stage `last`, i.e.
// the data an interval ending at that stage must send.
func (p *Pipeline) OutputSize(last int) float64 { return p.Delta[last+1] }

// Clone returns a deep copy of the pipeline.
func (p *Pipeline) Clone() *Pipeline {
	return &Pipeline{
		W:      append([]float64(nil), p.W...),
		Delta:  append([]float64(nil), p.Delta...),
		prefix: append([]float64(nil), p.prefix...),
	}
}

// Equal reports whether two pipelines have identical stage and
// communication volumes.
func (p *Pipeline) Equal(q *Pipeline) bool {
	if len(p.W) != len(q.W) || len(p.Delta) != len(q.Delta) {
		return false
	}
	for i := range p.W {
		if p.W[i] != q.W[i] {
			return false
		}
	}
	for k := range p.Delta {
		if p.Delta[k] != q.Delta[k] {
			return false
		}
	}
	return true
}

// AppendCanonicalBytes appends a deterministic byte encoding of the
// pipeline to dst and returns the extended slice: uvarint(n) followed by
// every W then every Delta value as the big-endian IEEE-754 bit pattern.
// Bit patterns (rather than a decimal rendering) make the encoding
// injective on the float values a validated pipeline can hold: Validate
// rejects NaN, and the remaining finite non-negative floats map
// one-to-one onto their bit patterns. Two pipelines produce equal bytes
// exactly when Equal reports true, which is what lets the canon package
// hash (pipeline, platform) instances structurally.
func (p *Pipeline) AppendCanonicalBytes(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p.W)))
	for _, w := range p.W {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(w))
	}
	for _, d := range p.Delta {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(d))
	}
	return dst
}

// String renders the pipeline in the paper's figure-1 style:
//
//	δ0 → [S1 w=2] → δ1 → [S2 w=2] → δ2
func (p *Pipeline) String() string {
	var b strings.Builder
	for i, w := range p.W {
		fmt.Fprintf(&b, "δ%d=%g → [S%d w=%g] → ", i, p.Delta[i], i+1, w)
	}
	fmt.Fprintf(&b, "δ%d=%g", len(p.W), p.Delta[len(p.W)])
	return b.String()
}

// jsonPipeline is the stable wire format.
type jsonPipeline struct {
	W     []float64 `json:"w"`
	Delta []float64 `json:"delta"`
}

// MarshalJSON encodes the pipeline as {"w":[...],"delta":[...]}.
func (p *Pipeline) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonPipeline{W: p.W, Delta: p.Delta})
}

// UnmarshalJSON decodes and validates a pipeline.
func (p *Pipeline) UnmarshalJSON(data []byte) error {
	var jp jsonPipeline
	if err := json.Unmarshal(data, &jp); err != nil {
		return err
	}
	p.W, p.Delta, p.prefix = jp.W, jp.Delta, nil
	if err := p.Validate(); err != nil {
		return err
	}
	p.buildPrefix()
	return nil
}

// Uniform returns an n-stage pipeline in which every stage computes w
// operations and every communication (including δ_0 and δ_n) has volume d.
func Uniform(n int, w, d float64) *Pipeline {
	ws := make([]float64, n)
	ds := make([]float64, n+1)
	for i := range ws {
		ws[i] = w
	}
	for k := range ds {
		ds[k] = d
	}
	return MustNew(ws, ds)
}

// Random returns an n-stage pipeline with stage computations drawn
// uniformly from [wMin, wMax] and communication volumes from [dMin, dMax],
// using the caller-provided source for reproducibility.
func Random(rng *rand.Rand, n int, wMin, wMax, dMin, dMax float64) *Pipeline {
	ws := make([]float64, n)
	ds := make([]float64, n+1)
	for i := range ws {
		ws[i] = wMin + rng.Float64()*(wMax-wMin)
	}
	for k := range ds {
		ds[k] = dMin + rng.Float64()*(dMax-dMin)
	}
	return MustNew(ws, ds)
}
