package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

func fig34() (*pipeline.Pipeline, *platform.Platform) {
	p := pipeline.MustNew([]float64{2, 2}, []float64{100, 100, 100})
	pl, err := platform.NewFullyHeterogeneous(
		[]float64{1, 1}, []float64{0.2, 0.2},
		[][]float64{{0, 100}, {100, 0}},
		[]float64{100, 1}, []float64{1, 100})
	if err != nil {
		panic(err)
	}
	return p, pl
}

func fig5() (*pipeline.Pipeline, *platform.Platform) {
	p := pipeline.MustNew([]float64{1, 100}, []float64{10, 1, 0})
	speeds := []float64{1}
	fps := []float64{0.1}
	for i := 0; i < 10; i++ {
		speeds = append(speeds, 100)
		fps = append(fps, 0.8)
	}
	pl, err := platform.NewCommHomogeneous(speeds, fps, 1)
	if err != nil {
		panic(err)
	}
	return p, pl
}

func fig5Split() *mapping.Mapping {
	return &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	}
}

// TestWorstCaseFig34 replays the Section 3 example on the simulator: the
// single-processor mapping measures 105, the split mapping 7.
func TestWorstCaseFig34(t *testing.T) {
	p, pl := fig34()
	res, err := Run(p, pl, mapping.NewSingleInterval(2, []int{0}), Config{Mode: WorstCase})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MaxLatency-105) > 1e-9 {
		t.Errorf("single-proc simulated latency = %g, want 105", res.MaxLatency)
	}
	split := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {1}},
	}
	res, err = Run(p, pl, split, Config{Mode: WorstCase})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MaxLatency-7) > 1e-9 {
		t.Errorf("split simulated latency = %g, want 7", res.MaxLatency)
	}
	if !res.Completed || res.Events == 0 {
		t.Error("worst-case run must complete and process events")
	}
}

// TestWorstCaseFig5 replays the Figure 5 two-interval mapping: latency 22.
func TestWorstCaseFig5(t *testing.T) {
	p, pl := fig5()
	res, err := Run(p, pl, fig5Split(), Config{Mode: WorstCase})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MaxLatency-22) > 1e-9 {
		t.Errorf("simulated latency = %g, want 22", res.MaxLatency)
	}
}

// randomIntervalMapping builds a random valid interval mapping.
func randomIntervalMapping(rng *rand.Rand, n, m int) *mapping.Mapping {
	pCount := 1 + rng.Intn(minInt(n, m))
	bounds := rng.Perm(n - 1)
	if len(bounds) > pCount-1 {
		bounds = bounds[:pCount-1]
	} else {
		pCount = len(bounds) + 1
	}
	for i := 1; i < len(bounds); i++ {
		for j := i; j > 0 && bounds[j] < bounds[j-1]; j-- {
			bounds[j], bounds[j-1] = bounds[j-1], bounds[j]
		}
	}
	mp := &mapping.Mapping{}
	start := 0
	for j := 0; j < pCount; j++ {
		end := n - 1
		if j < pCount-1 {
			end = bounds[j]
		}
		mp.Intervals = append(mp.Intervals, mapping.Interval{First: start, Last: end})
		start = end + 1
	}
	procs := rng.Perm(m)
	mp.Alloc = make([][]int, pCount)
	for j := 0; j < pCount; j++ {
		mp.Alloc[j] = []int{procs[j]}
	}
	for _, u := range procs[pCount:] {
		if rng.Float64() < 0.5 {
			j := rng.Intn(pCount)
			mp.Alloc[j] = append(mp.Alloc[j], u)
		}
	}
	return mp
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Property (E11 core): the worst-case simulator reproduces Eq. (2) — hence
// Eq. (1) on CommHom platforms — to 1e-9 on random instances and mappings.
func TestWorstCaseMatchesAnalyticLatency(t *testing.T) {
	f := func(seed int64, commHom bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := n + rng.Intn(5)
		p := pipeline.Random(rng, n, 0.5, 10, 0.5, 10)
		var pl *platform.Platform
		if commHom {
			pl = platform.RandomCommHomogeneous(rng, m, 1, 10, 0, 1, 1+rng.Float64()*4)
		} else {
			pl = platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0, 1, 1, 50)
		}
		mp := randomIntervalMapping(rng, n, m)
		analytic, err := mapping.Latency(p, pl, mp)
		if err != nil {
			return false
		}
		res, err := Run(p, pl, mp, Config{Mode: WorstCase})
		if err != nil {
			return false
		}
		return math.Abs(res.MaxLatency-analytic) <= 1e-9*math.Max(1, analytic)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Property: Monte-Carlo latencies never exceed the worst case (with free
// consensus), and completion matches SurvivesFailures.
func TestMonteCarloBoundedByWorstCase(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := n + rng.Intn(4)
		p := pipeline.Random(rng, n, 0.5, 10, 0.5, 10)
		pl := platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.1, 0.9, 1, 50)
		mp := randomIntervalMapping(rng, n, m)
		wc, err := Run(p, pl, mp, Config{Mode: WorstCase})
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			mc, err := Run(p, pl, mp, Config{Mode: MonteCarlo, RNG: rng})
			if err != nil {
				return false
			}
			if !mc.Completed {
				continue
			}
			if mc.MaxLatency > wc.MaxLatency+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestMonteCarloSuccessRate (E11): the empirical failure rate converges to
// the analytic FP within 4 standard errors.
func TestMonteCarloSuccessRate(t *testing.T) {
	p, pl := fig5()
	mp := fig5Split()
	analytic := mapping.FailureProb(pl, mp)

	rng := rand.New(rand.NewSource(123))
	est, err := EstimateFP(pl, mp, 40000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Within(analytic, 4) {
		t.Errorf("sampled FP = %g ± %g, analytic %g: outside 4σ", est.FP, est.StdErr, analytic)
	}

	// The full DES agrees with the sampler on completion counting.
	rng2 := rand.New(rand.NewSource(77))
	failures := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		res, err := Run(p, pl, mp, Config{Mode: MonteCarlo, RNG: rng2})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			failures++
		}
	}
	phat := float64(failures) / trials
	se := math.Sqrt(analytic*(1-analytic)/trials) + 1e-9
	if math.Abs(phat-analytic) > 5*se {
		t.Errorf("DES failure rate %g vs analytic %g (5σ = %g)", phat, analytic, 5*se)
	}
}

func TestRunInjected(t *testing.T) {
	p, pl := fig5()
	mp := fig5Split()
	// Kill the slow processor (only replica of interval 1): total failure.
	failed := make([]bool, 11)
	failed[0] = true
	res, err := RunInjected(p, pl, mp, Config{}, failed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Error("application should fail when an interval loses all replicas")
	}
	if len(res.FailedProcs) != 1 || res.FailedProcs[0] != 0 {
		t.Errorf("FailedProcs = %v, want [0]", res.FailedProcs)
	}
	// Kill 9 of the 10 fast replicas: still completes.
	failed = make([]bool, 11)
	for u := 2; u <= 10; u++ {
		failed[u] = true
	}
	res, err = RunInjected(p, pl, mp, Config{}, failed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Error("application should survive with one replica per interval")
	}
	// With one fast replica the input is sent once (not 10 times):
	// 10 + 1 + 1·1 + 1 + 0 = 13.
	if math.Abs(res.MaxLatency-13) > 1e-9 {
		t.Errorf("latency with 9 dead replicas = %g, want 13", res.MaxLatency)
	}
	// Wrong failure-vector length is rejected.
	if _, err := RunInjected(p, pl, mp, Config{}, []bool{true}); err == nil {
		t.Error("short failure vector accepted")
	}
}

func TestRunValidatesMapping(t *testing.T) {
	p, pl := fig5()
	bad := mapping.NewSingleInterval(1, []int{0}) // wrong stage count
	if _, err := Run(p, pl, bad, Config{Mode: WorstCase}); err == nil {
		t.Error("invalid mapping accepted")
	}
	if _, err := Run(p, pl, fig5Split(), Config{Mode: MonteCarlo}); err == nil {
		t.Error("MonteCarlo without RNG accepted")
	}
	if _, err := Run(p, pl, fig5Split(), Config{Mode: Mode(9)}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestMultipleDataSetsLatenciesGrow(t *testing.T) {
	p, pl := fig5()
	mp := fig5Split()
	res, err := Run(p, pl, mp, Config{Mode: WorstCase, NumDataSets: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DatasetLatencies) != 5 {
		t.Fatalf("got %d latencies, want 5", len(res.DatasetLatencies))
	}
	// All released at t=0: later data sets queue behind earlier ones.
	for d := 1; d < 5; d++ {
		if res.DatasetLatencies[d] < res.DatasetLatencies[d-1]-1e-9 {
			t.Errorf("dataset %d latency %g < dataset %d latency %g", d,
				res.DatasetLatencies[d], d-1, res.DatasetLatencies[d-1])
		}
	}
	if res.MaxLatency != res.DatasetLatencies[4] {
		t.Error("MaxLatency should be the last dataset's latency here")
	}
	if res.Makespan < res.MaxLatency {
		t.Error("makespan below max latency")
	}
	// A long release period decouples the data sets: every latency equals
	// the single-shot latency.
	resSpaced, err := Run(p, pl, mp, Config{Mode: WorstCase, NumDataSets: 3, Period: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for d, lat := range resSpaced.DatasetLatencies {
		if math.Abs(lat-22) > 1e-9 {
			t.Errorf("spaced dataset %d latency = %g, want 22", d, lat)
		}
	}
}

func TestConsensusElectsLowestAliveRank(t *testing.T) {
	pl, _ := platform.NewFullyHomogeneous(4, 1, 1, 0)
	eng := &Engine{}
	nw := newNetwork(eng, pl)
	aliveSet := map[int]bool{2: true, 3: true}
	var got consensusResult
	var ok bool
	runConsensus(nw, []int{1, 2, 3}, func(u int) bool { return aliveSet[u] }, 5, 0, 0,
		func(res consensusResult, o bool) { got, ok = res, o })
	eng.Run()
	if !ok || got.Leader != 2 {
		t.Errorf("leader = %v (ok=%v), want P2 alive leader", got.Leader, ok)
	}
	if got.Decided != 5 {
		t.Errorf("decision at %g, want 5 (free consensus)", got.Decided)
	}
	if got.Rounds != 2 {
		t.Errorf("rounds = %d, want 2 (one dead coordinator)", got.Rounds)
	}
}

func TestConsensusAllDead(t *testing.T) {
	pl, _ := platform.NewFullyHomogeneous(2, 1, 1, 0)
	eng := &Engine{}
	nw := newNetwork(eng, pl)
	called := false
	runConsensus(nw, []int{0, 1}, func(int) bool { return false }, 0, 0, 0,
		func(_ consensusResult, ok bool) {
			called = true
			if ok {
				t.Error("consensus succeeded with no survivors")
			}
		})
	eng.Run()
	if !called {
		t.Error("callback not invoked")
	}
}

func TestConsensusTimeoutCost(t *testing.T) {
	pl, _ := platform.NewFullyHomogeneous(3, 1, 1, 0)
	eng := &Engine{}
	nw := newNetwork(eng, pl)
	alive := func(u int) bool { return u == 2 }
	var got consensusResult
	runConsensus(nw, []int{0, 1, 2}, alive, 10, 7, 0,
		func(res consensusResult, ok bool) { got = res })
	eng.Run()
	// Two dead coordinators before rank 2: decision at 10 + 2·7 = 24.
	if got.Decided != 24 || got.Leader != 2 || got.Rounds != 3 {
		t.Errorf("got %+v, want leader 2 decided at 24 after 3 rounds", got)
	}
}

func TestConsensusMessageCost(t *testing.T) {
	pl, _ := platform.NewFullyHomogeneous(3, 1, 2, 0) // bandwidth 2
	eng := &Engine{}
	nw := newNetwork(eng, pl)
	alive := func(int) bool { return true }
	var got consensusResult
	runConsensus(nw, []int{0, 1, 2}, alive, 0, 0, 4, // control messages of size 4: 2 units each
		func(res consensusResult, ok bool) { got = res })
	eng.Run()
	// PROPOSE to P1 at 2, to P2 at 4 (serialized); ACKs arrive at the
	// leader's receive port serialized: P1's ack ready 2 → arrives 4;
	// P2's ack ready 4 → starts after recv busy 4 → arrives 6.
	if got.Decided != 6 {
		t.Errorf("decision at %g, want 6", got.Decided)
	}
}

// TestConsensusOverheadVisibleInLatency: dead coordinators delay the
// pipeline by the detection timeouts (the ablation of E11).
func TestConsensusOverheadVisibleInLatency(t *testing.T) {
	p, pl := fig5()
	mp := fig5Split()
	// Kill fast replicas 1 and 2 (ranks 0 and 1 of interval 2's group):
	// leader is rank 2; with timeout 3 the election costs 2·3 = 6 extra.
	failed := make([]bool, 11)
	failed[1], failed[2] = true, true
	base, err := RunInjected(p, pl, mp, Config{}, failed)
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := RunInjected(p, pl, mp, Config{ConsensusTimeout: 3}, failed)
	if err != nil {
		t.Fatal(err)
	}
	// Two elections happen (one per interval); only interval 2's has dead
	// lower-rank coordinators.
	if math.Abs((delayed.MaxLatency-base.MaxLatency)-6) > 1e-9 {
		t.Errorf("timeout overhead = %g, want 6", delayed.MaxLatency-base.MaxLatency)
	}
	// Rounds count coordinator attempts, not time: 1 for interval 1 plus
	// 3 for interval 2 (two dead coordinators) in both runs.
	if base.ConsensusRounds != 4 || delayed.ConsensusRounds != 4 {
		t.Errorf("consensus rounds = %d/%d, want 4/4", base.ConsensusRounds, delayed.ConsensusRounds)
	}
}

func TestEstimateFPErrors(t *testing.T) {
	_, pl := fig5()
	if _, err := EstimateFP(pl, fig5Split(), 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestSurvivesFailures(t *testing.T) {
	mp := fig5Split()
	all := make([]bool, 11)
	if !SurvivesFailures(mp, all) {
		t.Error("no failures must survive")
	}
	all[0] = true
	if SurvivesFailures(mp, all) {
		t.Error("losing the only replica of interval 1 must fail")
	}
}

// Property: EstimateFP within 5σ of analytic FP on random small instances.
func TestEstimateFPMatchesAnalytic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		m := n + rng.Intn(4)
		pl := platform.RandomCommHomogeneous(rng, m, 1, 2, 0.05, 0.95, 1)
		mp := randomIntervalMapping(rng, n, m)
		analytic := mapping.FailureProb(pl, mp)
		est, err := EstimateFP(pl, mp, 6000, rng)
		if err != nil {
			return false
		}
		return est.Within(analytic, 5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
