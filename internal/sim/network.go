package sim

import (
	"fmt"

	"repro/internal/platform"
)

// Special endpoint ids for the input and output processors.
const (
	PinID  = -1
	PoutID = -2
)

// network models the clique interconnect under the one-port model: every
// endpoint (the m processors plus P_in and P_out) owns one send port and
// one receive port, each usable by a single transfer at a time.
type network struct {
	eng   *Engine
	pl    *platform.Platform
	send  map[int]*resource
	recv  map[int]*resource
	trace *Trace // nil unless Config.CollectTrace
}

func newNetwork(eng *Engine, pl *platform.Platform) *network {
	nw := &network{
		eng:  eng,
		pl:   pl,
		send: make(map[int]*resource, pl.NumProcs()+2),
		recv: make(map[int]*resource, pl.NumProcs()+2),
	}
	for u := -2; u < pl.NumProcs(); u++ {
		nw.send[u] = &resource{}
		nw.recv[u] = &resource{}
	}
	return nw
}

// bandwidth returns the bandwidth of the link from endpoint u to endpoint
// v, following the platform's parameterization (P_in only sends, P_out
// only receives).
func (nw *network) bandwidth(from, to int) (float64, error) {
	switch {
	case from == PinID && to >= 0:
		return nw.pl.BIn[to], nil
	case to == PoutID && from >= 0:
		return nw.pl.BOut[from], nil
	case from >= 0 && to >= 0 && from != to:
		return nw.pl.B[from][to], nil
	case from >= 0 && to == from:
		return 0, fmt.Errorf("sim: self transfer on P%d", from+1)
	default:
		return 0, fmt.Errorf("sim: no link from %d to %d", from, to)
	}
}

// transfer moves size data units from endpoint `from` to endpoint `to`,
// not starting before `ready`, and calls done with the arrival time. The
// one-port model is enforced by claiming both the sender's send port and
// the receiver's receive port for the duration.
//
// Zero-size transfers are instantaneous and bypass the ports: the linear
// cost model charges them nothing, and the paper's latency formulas treat
// both δ = 0 communications and consensus control traffic as free.
func (nw *network) transfer(from, to int, size, ready float64, done func(arrival float64)) error {
	b, err := nw.bandwidth(from, to)
	if err != nil {
		return err
	}
	if size <= 0 {
		nw.eng.At(ready, func() { done(ready) })
		return nil
	}
	dur := size / b
	start := ready
	if s := nw.send[from].busyUntil; s > start {
		start = s
	}
	if r := nw.recv[to].busyUntil; r > start {
		start = r
	}
	end := start + dur
	nw.send[from].busyUntil = end
	nw.recv[to].busyUntil = end
	if nw.trace != nil {
		label := fmt.Sprintf("→%s δ=%g", procName(to), size)
		nw.trace.add(procName(from)+":send", "transfer", label, start, end)
		nw.trace.add(procName(to)+":recv", "transfer", procName(from)+"→ ", start, end)
	}
	nw.eng.At(end, func() { done(end) })
	return nil
}

// transferChain sends size data units from one sender to each target in
// order (serialized on the sender's port, per the one-port model) and
// calls done once with the completion time of the final transfer and the
// per-target arrival times.
func (nw *network) transferChain(from int, targets []int, size, ready float64, done func(last float64, arrivals []float64)) error {
	if len(targets) == 0 {
		nw.eng.At(ready, func() { done(ready, nil) })
		return nil
	}
	arrivals := make([]float64, len(targets))
	remaining := len(targets)
	var lastArrival float64
	for i, to := range targets {
		i, to := i, to
		err := nw.transfer(from, to, size, ready, func(arrival float64) {
			arrivals[i] = arrival
			if arrival > lastArrival {
				lastArrival = arrival
			}
			remaining--
			if remaining == 0 {
				done(lastArrival, arrivals)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}
