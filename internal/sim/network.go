package sim

import (
	"fmt"

	"repro/internal/platform"
)

// Special endpoint ids for the input and output processors.
const (
	PinID  = -1
	PoutID = -2
)

// network models the clique interconnect under the one-port model: every
// endpoint (the m processors plus P_in and P_out) owns one send port and
// one receive port, each usable by a single transfer at a time. Ports are
// stored in flat slices indexed by endpoint id + 2 (PoutID = -2 maps to
// 0), so constructing and using a network allocates two slices total
// instead of two maps of pointers.
type network struct {
	eng   *Engine
	pl    *platform.Platform
	send  []resource
	recv  []resource
	trace *Trace // nil unless Config.CollectTrace

	// chain-state arena: transferChain draws states from here so pooled
	// runs reuse them instead of allocating three objects per fan-out.
	// Entries are recycled only between runs (chainNext resets in
	// getScratch), never while their callbacks may still fire.
	chains    []*chainState
	chainNext int
}

// getChain returns a reset chain state with room for n arrivals.
func (nw *network) getChain(n int, done func(last float64, arrivals []float64)) *chainState {
	var st *chainState
	if nw.chainNext < len(nw.chains) {
		st = nw.chains[nw.chainNext]
	} else {
		st = &chainState{}
		st.deliverFn = st.deliver
		nw.chains = append(nw.chains, st)
	}
	nw.chainNext++
	if cap(st.arrivals) < n {
		st.arrivals = make([]float64, n)
	}
	st.arrivals = st.arrivals[:n]
	st.next = 0
	st.last = 0
	st.done = done
	return st
}

func newNetwork(eng *Engine, pl *platform.Platform) *network {
	return &network{
		eng:  eng,
		pl:   pl,
		send: make([]resource, pl.NumProcs()+2),
		recv: make([]resource, pl.NumProcs()+2),
	}
}

// port maps an endpoint id (-2..m-1) to its slice index.
func port(u int) int { return u + 2 }

// bandwidth returns the bandwidth of the link from endpoint u to endpoint
// v, following the platform's parameterization (P_in only sends, P_out
// only receives).
func (nw *network) bandwidth(from, to int) (float64, error) {
	switch {
	case from == PinID && to >= 0:
		return nw.pl.BIn[to], nil
	case to == PoutID && from >= 0:
		return nw.pl.BOut[from], nil
	case from >= 0 && to >= 0 && from != to:
		return nw.pl.B[from][to], nil
	case from >= 0 && to == from:
		return 0, fmt.Errorf("sim: self transfer on P%d", from+1)
	default:
		return 0, fmt.Errorf("sim: no link from %d to %d", from, to)
	}
}

// transfer moves size data units from endpoint `from` to endpoint `to`,
// not starting before `ready`, and calls done with the arrival time. The
// one-port model is enforced by claiming both the sender's send port and
// the receiver's receive port for the duration.
//
// Zero-size transfers are instantaneous and bypass the ports: the linear
// cost model charges them nothing, and the paper's latency formulas treat
// both δ = 0 communications and consensus control traffic as free.
func (nw *network) transfer(from, to int, size, ready float64, done func(arrival float64)) error {
	b, err := nw.bandwidth(from, to)
	if err != nil {
		return err
	}
	if size <= 0 {
		nw.eng.AtCall(ready, done, ready)
		return nil
	}
	dur := size / b
	start := ready
	if s := nw.send[port(from)].busyUntil; s > start {
		start = s
	}
	if r := nw.recv[port(to)].busyUntil; r > start {
		start = r
	}
	end := start + dur
	nw.send[port(from)].busyUntil = end
	nw.recv[port(to)].busyUntil = end
	if nw.trace != nil {
		label := fmt.Sprintf("→%s δ=%g", procName(to), size)
		nw.trace.add(procName(from)+":send", "transfer", label, start, end)
		nw.trace.add(procName(to)+":recv", "transfer", procName(from)+"→ ", start, end)
	}
	nw.eng.AtCall(end, done, end)
	return nil
}

// chainState gathers the arrivals of one transferChain fan-out with a
// single shared callback instead of one closure per target. Deliveries
// arrive in target order: the sender's port serializes the transfers, so
// their completion times are non-decreasing in claim order, and
// simultaneous (zero-size) completions fire in scheduling order.
type chainState struct {
	arrivals []float64
	next     int
	last     float64
	done     func(last float64, arrivals []float64)
	// deliverFn is the method value bound once at construction so reusing
	// the state does not re-allocate the closure.
	deliverFn func(arrival float64)
}

func (c *chainState) deliver(arrival float64) {
	c.arrivals[c.next] = arrival
	c.next++
	if arrival > c.last {
		c.last = arrival
	}
	if c.next == len(c.arrivals) {
		c.done(c.last, c.arrivals)
	}
}

// transferChain sends size data units from one sender to each target in
// order (serialized on the sender's port, per the one-port model) and
// calls done once with the completion time of the final transfer and the
// per-target arrival times.
func (nw *network) transferChain(from int, targets []int, size, ready float64, done func(last float64, arrivals []float64)) error {
	if len(targets) == 0 {
		nw.eng.At(ready, func() { done(ready, nil) })
		return nil
	}
	st := nw.getChain(len(targets), done)
	for _, to := range targets {
		if err := nw.transfer(from, to, size, ready, st.deliverFn); err != nil {
			return err
		}
	}
	return nil
}
