package sim

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/mapping"
)

func TestEstimateFPParallelMatchesAnalytic(t *testing.T) {
	_, pl := fig5()
	m := fig5Split()
	analytic := mapping.FailureProb(pl, m)
	est, err := EstimateFPParallel(context.Background(), pl, m, 40_000, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Within(analytic, 4) {
		t.Errorf("parallel estimate %g ± %g vs analytic %g", est.FP, est.StdErr, analytic)
	}
	if est.Trials != 40_000 {
		t.Errorf("Trials = %d, want 40000", est.Trials)
	}
}

func TestEstimateFPParallelDeterministic(t *testing.T) {
	_, pl := fig5()
	m := fig5Split()
	a, err := EstimateFPParallel(context.Background(), pl, m, 5000, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateFPParallel(context.Background(), pl, m, 5000, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.FP != b.FP {
		t.Errorf("same seed/workers produced %g and %g", a.FP, b.FP)
	}
	// Different worker counts resample but stay in the same band.
	c, err := EstimateFPParallel(context.Background(), pl, m, 5000, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.FP-c.FP) > 5*(a.StdErr+c.StdErr)+1e-9 {
		t.Errorf("worker-count change moved estimate beyond noise: %g vs %g", a.FP, c.FP)
	}
}

func TestEstimateFPParallelErrors(t *testing.T) {
	_, pl := fig5()
	m := fig5Split()
	if _, err := EstimateFPParallel(context.Background(), pl, m, 0, 2, 1); err == nil {
		t.Error("zero trials accepted")
	}
	bad := mapping.NewSingleInterval(2, []int{99})
	if _, err := EstimateFPParallel(context.Background(), pl, bad, 10, 2, 1); err == nil {
		t.Error("invalid mapping accepted")
	}
	// More workers than trials must still work.
	if _, err := EstimateFPParallel(context.Background(), pl, m, 3, 64, 1); err != nil {
		t.Errorf("workers > trials failed: %v", err)
	}
	// workers <= 0 defaults to GOMAXPROCS.
	if _, err := EstimateFPParallel(context.Background(), pl, m, 100, 0, 1); err != nil {
		t.Errorf("default workers failed: %v", err)
	}
}

func TestMonteCarloLatencyParallel(t *testing.T) {
	p, pl := fig5()
	m := fig5Split()
	analyticFP := mapping.FailureProb(pl, m)
	analyticLat, _ := mapping.Latency(p, pl, m)
	sum, err := MonteCarloLatencyParallel(context.Background(), p, pl, m, Config{}, 2000, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Trials != 2000 || sum.Failures+sum.Completed != 2000 {
		t.Errorf("trial accounting broken: %+v", sum)
	}
	se := math.Sqrt(analyticFP*(1-analyticFP)/2000) + 1e-9
	if math.Abs(sum.FailureRate-analyticFP) > 5*se {
		t.Errorf("failure rate %g vs analytic %g", sum.FailureRate, analyticFP)
	}
	if sum.MaxLatency > analyticLat+1e-9 {
		t.Errorf("MC latency %g exceeded worst case %g", sum.MaxLatency, analyticLat)
	}
	if sum.MeanLatency <= 0 || sum.MeanLatency > sum.MaxLatency {
		t.Errorf("mean latency %g out of range (max %g)", sum.MeanLatency, sum.MaxLatency)
	}
	// Deterministic.
	sum2, err := MonteCarloLatencyParallel(context.Background(), p, pl, m, Config{}, 2000, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if sum != sum2 {
		t.Error("same seed produced different summaries")
	}
	if _, err := MonteCarloLatencyParallel(context.Background(), p, pl, m, Config{}, 0, 4, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestTraceCollection(t *testing.T) {
	p, pl := fig5()
	m := fig5Split()
	res, err := Run(p, pl, m, Config{Mode: WorstCase, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.Trace.Spans) == 0 {
		t.Fatal("trace not collected")
	}
	// The trace must contain Pin sends, computes, and the Pout delivery.
	kinds := map[string]bool{}
	resources := map[string]bool{}
	for _, s := range res.Trace.Spans {
		kinds[s.Kind] = true
		resources[s.Resource] = true
		if s.End < s.Start {
			t.Fatalf("span ends before it starts: %+v", s)
		}
	}
	if !kinds["compute"] || !kinds["transfer"] {
		t.Errorf("missing span kinds: %v", kinds)
	}
	if !resources["Pin:send"] || !resources["P1:compute"] {
		t.Errorf("missing resources: %v", resources)
	}
	if got := res.Trace.Makespan(); math.Abs(got-res.Makespan) > 1e-9 {
		t.Errorf("trace makespan %g, run makespan %g", got, res.Makespan)
	}
	// Without the flag no trace is allocated.
	res2, _ := Run(p, pl, m, Config{Mode: WorstCase})
	if res2.Trace != nil {
		t.Error("trace allocated without CollectTrace")
	}
}

func TestTraceGantt(t *testing.T) {
	p, pl := fig5()
	m := fig5Split()
	res, err := Run(p, pl, m, Config{Mode: WorstCase, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Trace.Gantt(60)
	if !strings.Contains(g, "Pin:send") || !strings.Contains(g, "P1:compute") {
		t.Errorf("Gantt missing rows:\n%s", g)
	}
	if !strings.Contains(g, "#") || !strings.Contains(g, "=") {
		t.Errorf("Gantt missing bars:\n%s", g)
	}
	var empty Trace
	if got := empty.Gantt(40); got != "(empty trace)\n" {
		t.Errorf("empty trace rendering = %q", got)
	}
	// A narrow width is clamped, not crashed.
	if g := res.Trace.Gantt(1); g == "" {
		t.Error("narrow Gantt empty")
	}
}

func TestTraceInMonteCarloMode(t *testing.T) {
	p, pl := fig5()
	m := fig5Split()
	failed := make([]bool, 11)
	failed[1] = true
	res, err := RunInjected(p, pl, m, Config{CollectTrace: true, ConsensusTimeout: 1}, failed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace in injected mode")
	}
	foundConsensus := false
	for _, s := range res.Trace.Spans {
		if s.Kind == "consensus" {
			foundConsensus = true
		}
	}
	if !foundConsensus {
		t.Error("consensus decision not traced")
	}
}

func TestEstimateFPParallelCancel(t *testing.T) {
	_, pl := fig5()
	m := fig5Split()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	est, err := EstimateFPParallel(ctx, pl, m, 50_000_000, 4, 1)
	if err == nil {
		t.Fatal("cancelled estimate must report the cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if est.Trials >= 50_000_000 {
		t.Errorf("estimate claims %d trials despite cancellation", est.Trials)
	}
}

func TestMonteCarloLatencyParallelCancel(t *testing.T) {
	p, pl := fig5()
	m := fig5Split()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sum, err := MonteCarloLatencyParallel(ctx, p, pl, m, Config{}, 10_000_000, 4, 1)
	if err == nil {
		t.Fatal("cancelled campaign must report the cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if sum.Trials >= 10_000_000 {
		t.Errorf("campaign claims %d trials despite cancellation", sum.Trials)
	}
}
