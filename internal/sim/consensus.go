package sim

// Consensus among the replicas of an interval: the paper relies on "a
// standard consensus protocol to determine which of the surviving
// processors performs the outgoing communications" [17]. We implement a
// deterministic rotating-coordinator protocol over the simulated network:
//
//   - replicas are ranked by their position in the replica set;
//   - in round r, the rank-r replica is the coordinator candidate; a dead
//     candidate is detected after cfg.ConsensusTimeout time units and the
//     protocol advances to round r+1;
//   - the first alive coordinator broadcasts a PROPOSE control message of
//     size cfg.ControlMsgSize to every other alive replica (serialized on
//     its send port) and each replica answers with an ACK; the decision is
//     reached when the last ACK arrives.
//
// With the default zero-cost control messages and zero timeout the
// decision is instantaneous and the elected sender is the lowest-ranked
// surviving replica — exactly the abstraction the paper's latency formulas
// assume. Non-zero costs expose the consensus overhead as a measurable
// quantity (see the ablation benchmarks).

// consensusResult reports the elected leader, the decision time, and the
// number of coordinator rounds consumed.
type consensusResult struct {
	Leader  int
	Decided float64
	Rounds  int
}

// runConsensus elects the outgoing sender among the alive members of
// group, starting at time start. The done callback receives the result;
// ok=false means every replica is dead (no leader can be elected).
func runConsensus(nw *network, group []int, alive func(int) bool, start float64, timeout, msgSize float64, done func(res consensusResult, ok bool)) {
	leaderRank := -1
	for r, u := range group {
		if alive(u) {
			leaderRank = r
			break
		}
	}
	if leaderRank == -1 {
		nw.eng.At(start, func() { done(consensusResult{}, false) })
		return
	}
	leader := group[leaderRank]
	// Dead coordinator rounds each burn one timeout.
	electionStart := start + float64(leaderRank)*timeout
	var followers []int
	for r, u := range group {
		if r != leaderRank && alive(u) {
			followers = append(followers, u)
		}
	}
	if len(followers) == 0 || msgSize <= 0 {
		// Free control messages (the paper's abstraction, and the default):
		// the zero-size PROPOSE/ACK exchange is instantaneous and bypasses
		// the ports, so the decision lands exactly at electionStart — skip
		// simulating the individual control transfers.
		nw.eng.At(electionStart, func() {
			done(consensusResult{Leader: leader, Decided: electionStart, Rounds: leaderRank + 1}, true)
		})
		return
	}
	// PROPOSE broadcast, serialized on the leader's send port.
	err := nw.transferChain(leader, followers, msgSize, electionStart, func(_ float64, arrivals []float64) {
		// Each follower ACKs; decision at the last ACK arrival. The
		// callback never reads the follower id, so one shared closure
		// serves every ACK.
		remaining := len(followers)
		last := electionStart
		onAck := func(arrival float64) {
			if arrival > last {
				last = arrival
			}
			remaining--
			if remaining == 0 {
				done(consensusResult{Leader: leader, Decided: last, Rounds: leaderRank + 1}, true)
			}
		}
		for i, f := range followers {
			if ackErr := nw.transfer(f, leader, msgSize, arrivals[i], onAck); ackErr != nil {
				panic(ackErr) // group members are valid processors by construction
			}
		}
	})
	if err != nil {
		panic(err) // group members are valid processors by construction
	}
}
