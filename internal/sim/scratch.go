package sim

import (
	"sync"

	"repro/internal/platform"
)

// runScratch pools the per-run simulator state — the event heap, the
// network ports, and the compute resources — so repeated Run calls (the
// Monte-Carlo estimators and the ablation sweeps fire thousands) reuse
// buffers instead of reallocating them. A scratch is private to one run:
// it is taken from the pool at the start, fully reset, and returned once
// the event loop has drained.
type runScratch struct {
	eng     Engine
	nw      network
	compute []resource

	// alive-replica scratch for runWithFailures: groups reslices into
	// aliveBuf so the survivor sets cost no per-run allocations.
	groups   [][]int
	aliveBuf []int
}

// aliveGroups filters alloc by the alive predicate into pooled storage.
// The returned slices are valid until the scratch is reused; the empty
// group index (if any) is returned as dead = j, dead = -1 otherwise.
func (sc *runScratch) aliveGroups(alloc [][]int, alive func(int) bool) (groups [][]int, dead int) {
	sc.groups = sc.groups[:0]
	sc.aliveBuf = sc.aliveBuf[:0]
	for j, procs := range alloc {
		start := len(sc.aliveBuf)
		for _, u := range procs {
			if alive(u) {
				sc.aliveBuf = append(sc.aliveBuf, u)
			}
		}
		if len(sc.aliveBuf) == start {
			return nil, j
		}
		sc.groups = append(sc.groups, sc.aliveBuf[start:len(sc.aliveBuf):len(sc.aliveBuf)])
	}
	return sc.groups, -1
}

var scratchPool = sync.Pool{New: func() interface{} { return new(runScratch) }}

func getScratch(pl *platform.Platform) *runScratch {
	sc := scratchPool.Get().(*runScratch)
	m := pl.NumProcs()
	sc.eng.now, sc.eng.seq, sc.eng.count = 0, 0, 0
	if sc.eng.events == nil {
		sc.eng.events = make(eventHeap, 0, 16)
	}
	sc.eng.events = sc.eng.events[:0]
	sc.eng.cbs = sc.eng.cbs[:0]
	sc.eng.free = sc.eng.free[:0]
	sc.nw.eng = &sc.eng
	sc.nw.pl = pl
	sc.nw.trace = nil
	sc.nw.send = resetResources(sc.nw.send, m+2)
	sc.nw.recv = resetResources(sc.nw.recv, m+2)
	sc.nw.chainNext = 0
	sc.compute = resetResources(sc.compute, m)
	return sc
}

func putScratch(sc *runScratch) {
	sc.nw.pl = nil
	sc.nw.trace = nil
	for _, st := range sc.nw.chains[:sc.nw.chainNext] {
		st.done = nil // release the run's closures for GC
	}
	scratchPool.Put(sc)
}

func resetResources(s []resource, n int) []resource {
	if cap(s) < n {
		return make([]resource, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = resource{}
	}
	return s
}
