// Package sim is the execution substrate of the reproduction: a
// discrete-event simulator of pipeline workflows running on the paper's
// platform model. It implements
//
//   - the linear communication cost model (X/b time units per X data
//     units) under the one-port constraint (a processor participates in at
//     most one send and one receive at a time);
//   - per-processor computation at speed s_u;
//   - crash-failure injection: a processor that fails is dead for the
//     whole run, matching the paper's "does the processor break down at
//     any time during execution" semantics;
//   - a rotating-coordinator consensus protocol among the replicas of an
//     interval to elect the surviving output sender (the paper's
//     "standard consensus protocol [17]").
//
// Two execution modes mirror the paper's analysis. WorstCase drives the
// adversarial schedule behind Equations (1) and (2) — serialized input
// copies, barrier hand-off, the worst surviving replica elected — and must
// reproduce the analytic latency exactly (tests enforce equality to 1e−9).
// MonteCarlo draws a random failure pattern from the fp_u and measures
// empirical success rates and latencies; the success rate converges to
// 1 − FP and per-run latencies never exceed the worst case.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Engine is a minimal deterministic discrete-event engine: events fire in
// (time, insertion order) sequence and may schedule further events.
type Engine struct {
	now    float64
	seq    int64
	events eventHeap
	count  int
}

type event struct {
	time float64
	seq  int64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute time t (clamped to the present: scheduling
// in the past fires now, keeping causality).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{time: t, seq: e.seq, fn: fn})
}

// After schedules fn d time units from now (d < 0 is clamped to 0).
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Run processes events until none remain and returns how many fired.
func (e *Engine) Run() int {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(event)
		if ev.time < e.now {
			panic(fmt.Sprintf("sim: time went backwards (%g < %g)", ev.time, e.now))
		}
		e.now = ev.time
		e.count++
		ev.fn()
	}
	return e.count
}

// Processed returns the number of events fired so far.
func (e *Engine) Processed() int { return e.count }

// resource serializes exclusive use of a port or a processor core: claims
// are granted FIFO in claim order.
type resource struct {
	busyUntil float64
}

// claim reserves the resource from max(ready, free time) for dur units and
// returns the start and end of the reservation.
func (r *resource) claim(ready, dur float64) (start, end float64) {
	start = math.Max(ready, r.busyUntil)
	end = start + dur
	r.busyUntil = end
	return start, end
}
