// Package sim is the execution substrate of the reproduction: a
// discrete-event simulator of pipeline workflows running on the paper's
// platform model. It implements
//
//   - the linear communication cost model (X/b time units per X data
//     units) under the one-port constraint (a processor participates in at
//     most one send and one receive at a time);
//   - per-processor computation at speed s_u;
//   - crash-failure injection: a processor that fails is dead for the
//     whole run, matching the paper's "does the processor break down at
//     any time during execution" semantics;
//   - a rotating-coordinator consensus protocol among the replicas of an
//     interval to elect the surviving output sender (the paper's
//     "standard consensus protocol [17]").
//
// Two execution modes mirror the paper's analysis. WorstCase drives the
// adversarial schedule behind Equations (1) and (2) — serialized input
// copies, barrier hand-off, the worst surviving replica elected — and must
// reproduce the analytic latency exactly (tests enforce equality to 1e−9).
// MonteCarlo draws a random failure pattern from the fp_u and measures
// empirical success rates and latencies; the success rate converges to
// 1 − FP and per-run latencies never exceed the worst case.
//
// Invariants: runs are deterministic for a fixed RNG seed — the event
// heap fires in (time, insertion order) sequence with no map iteration
// anywhere on the hot path — and the parallel Monte-Carlo campaigns
// derive one RNG stream per worker from the seed, so aggregates are
// identical for every worker count. Per-run scratch (event arenas, chain
// state) is pooled via sync.Pool; steady-state sweeps allocate O(1) per
// run, not per event. Platform width is unlimited (replica sets are id
// slices here, not bitmasks).
package sim

import (
	"fmt"
	"math"
)

// Engine is a minimal deterministic discrete-event engine: events fire in
// (time, insertion order) sequence and may schedule further events.
//
// Callbacks live in an indexed arena (cbs + free list) while the heap
// itself holds only pointer-free {time, seq, idx} triples: sift swaps
// move 24 plain bytes with no GC write barriers, which is what the
// simulator's profile was previously dominated by.
type Engine struct {
	now    float64
	seq    int64
	events eventHeap
	cbs    []eventCB
	free   []int32
	count  int
}

type event struct {
	time float64
	seq  int64
	idx  int32
}

// eventCB is a scheduled callback: either fn(), or the closure-free
// variant fnArg(arg) used by the network's hot path.
type eventCB struct {
	fn    func()
	fnArg func(float64)
	arg   float64
}

func (e *Engine) allocCB(cb eventCB) int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		e.cbs[idx] = cb
		return idx
	}
	e.cbs = append(e.cbs, cb)
	return int32(len(e.cbs) - 1)
}

// eventHeap is a hand-rolled binary min-heap ordered by (time, seq). It
// avoids container/heap so events are pushed and popped without the
// interface{} boxing allocation — the engine sits on every simulated
// communication and computation, and boxing dominated its profile.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute time t (clamped to the present: scheduling
// in the past fires now, keeping causality).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.push(event{time: t, seq: e.seq, idx: e.allocCB(eventCB{fn: fn})})
}

// AtCall schedules fn(arg) at absolute time t (clamped like At). Because
// fn is an existing function value and arg rides in the callback arena,
// no closure is allocated — this is the scheduling path of every
// simulated transfer.
func (e *Engine) AtCall(t float64, fn func(float64), arg float64) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.push(event{time: t, seq: e.seq, idx: e.allocCB(eventCB{fnArg: fn, arg: arg})})
}

// After schedules fn d time units from now (d < 0 is clamped to 0).
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Run processes events until none remain and returns how many fired.
func (e *Engine) Run() int {
	for len(e.events) > 0 {
		ev := e.events.pop()
		if ev.time < e.now {
			panic(fmt.Sprintf("sim: time went backwards (%g < %g)", ev.time, e.now))
		}
		e.now = ev.time
		e.count++
		cb := e.cbs[ev.idx]
		e.cbs[ev.idx] = eventCB{} // release the closure for GC
		e.free = append(e.free, ev.idx)
		if cb.fn != nil {
			cb.fn()
		} else {
			cb.fnArg(cb.arg)
		}
	}
	return e.count
}

// Processed returns the number of events fired so far.
func (e *Engine) Processed() int { return e.count }

// resource serializes exclusive use of a port or a processor core: claims
// are granted FIFO in claim order.
type resource struct {
	busyUntil float64
}

// claim reserves the resource from max(ready, free time) for dur units and
// returns the start and end of the reservation.
func (r *resource) claim(ready, dur float64) (start, end float64) {
	start = math.Max(ready, r.busyUntil)
	end = start + dur
	r.busyUntil = end
	return start, end
}
