package sim

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// EstimateFPParallel estimates the failure probability like EstimateFP but
// fans the trials out over `workers` goroutines (0 = GOMAXPROCS). Each
// worker samples with an independent RNG deterministically derived from
// seed, so the result is reproducible for a fixed (trials, workers, seed)
// triple regardless of scheduling.
func EstimateFPParallel(pl *platform.Platform, m *mapping.Mapping, trials, workers int, seed int64) (FPEstimate, error) {
	if trials <= 0 {
		return FPEstimate{}, fmt.Errorf("sim: trials must be > 0")
	}
	if err := m.Validate(maxStage(m)+1, pl.NumProcs()); err != nil {
		return FPEstimate{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}

	counts := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		// Split trials as evenly as possible; the first `trials%workers`
		// workers take one extra.
		share := trials / workers
		if w < trials%workers {
			share++
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// splitmix-style stream separation keeps the per-worker
			// sequences independent for nearby seeds.
			rng := rand.New(rand.NewSource(seed ^ (int64(w)+1)*0x5851F42D4C957F2D))
			failed := make([]bool, pl.NumProcs())
			local := 0
			for t := 0; t < share; t++ {
				for u := range failed {
					failed[u] = rng.Float64() < pl.FailProb[u]
				}
				if !SurvivesFailures(m, failed) {
					local++
				}
			}
			counts[w] = local
		}()
	}
	wg.Wait()

	failures := 0
	for _, c := range counts {
		failures += c
	}
	p := float64(failures) / float64(trials)
	return FPEstimate{
		FP:     p,
		StdErr: math.Sqrt(p * (1 - p) / float64(trials)),
		Trials: trials,
	}, nil
}

// MonteCarloLatencyParallel runs `trials` independent Monte-Carlo
// simulations across `workers` goroutines and aggregates: the empirical
// failure rate, the mean and maximum latency of completed runs, and the
// number of completions. Deterministic for fixed (trials, workers, seed).
func MonteCarloLatencyParallel(p *pipeline.Pipeline, pl *platform.Platform, m *mapping.Mapping, cfg Config, trials, workers int, seed int64) (MCSummary, error) {
	if trials <= 0 {
		return MCSummary{}, fmt.Errorf("sim: trials must be > 0")
	}
	if err := m.Validate(p.NumStages(), pl.NumProcs()); err != nil {
		return MCSummary{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	type partial struct {
		failures  int
		completed int
		sumLat    float64
		maxLat    float64
	}
	parts := make([]partial, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		share := trials / workers
		if w < trials%workers {
			share++
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := cfg
			local.Mode = MonteCarlo
			local.RNG = rand.New(rand.NewSource(seed ^ (int64(w)+1)*0x5851F42D4C957F2D))
			for t := 0; t < share; t++ {
				res, err := Run(p, pl, m, local)
				if err != nil {
					errs[w] = err
					return
				}
				if !res.Completed {
					parts[w].failures++
					continue
				}
				parts[w].completed++
				parts[w].sumLat += res.MaxLatency
				if res.MaxLatency > parts[w].maxLat {
					parts[w].maxLat = res.MaxLatency
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return MCSummary{}, err
		}
	}
	var sum MCSummary
	sum.Trials = trials
	var totLat float64
	for _, pt := range parts {
		sum.Failures += pt.failures
		sum.Completed += pt.completed
		totLat += pt.sumLat
		if pt.maxLat > sum.MaxLatency {
			sum.MaxLatency = pt.maxLat
		}
	}
	if sum.Completed > 0 {
		sum.MeanLatency = totLat / float64(sum.Completed)
	}
	sum.FailureRate = float64(sum.Failures) / float64(trials)
	return sum, nil
}

// MCSummary aggregates a parallel Monte-Carlo campaign.
type MCSummary struct {
	Trials      int
	Failures    int
	Completed   int
	FailureRate float64
	MeanLatency float64
	MaxLatency  float64
}
