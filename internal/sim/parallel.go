package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// canceledErr wraps the context's cancellation cause so callers can test
// with errors.Is against context.Canceled / context.DeadlineExceeded.
func canceledErr(ctx context.Context) error {
	return fmt.Errorf("sim: campaign canceled: %w", context.Cause(ctx))
}

// ctxDone returns the context's done channel (nil when ctx is nil or not
// cancellable, making the per-trial select check free).
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// EstimateFPParallel estimates the failure probability like EstimateFP but
// fans the trials out over `workers` goroutines (0 = GOMAXPROCS). Each
// worker samples with an independent RNG deterministically derived from
// seed, so the result is reproducible for a fixed (trials, workers, seed)
// triple regardless of scheduling.
//
// Cancelling ctx stops the campaign early: the estimate is then computed
// over the trials actually performed (FPEstimate.Trials reports how many)
// and returned together with an error wrapping the context's cause.
func EstimateFPParallel(ctx context.Context, pl *platform.Platform, m *mapping.Mapping, trials, workers int, seed int64) (FPEstimate, error) {
	if trials <= 0 {
		return FPEstimate{}, fmt.Errorf("sim: trials must be > 0")
	}
	if err := m.Validate(maxStage(m)+1, pl.NumProcs()); err != nil {
		return FPEstimate{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	done := ctxDone(ctx)
	var canceled atomic.Bool

	counts := make([]int, workers)
	performed := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		// Split trials as evenly as possible; the first `trials%workers`
		// workers take one extra.
		share := trials / workers
		if w < trials%workers {
			share++
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// splitmix-style stream separation keeps the per-worker
			// sequences independent for nearby seeds.
			rng := rand.New(rand.NewSource(seed ^ (int64(w)+1)*0x5851F42D4C957F2D))
			failed := make([]bool, pl.NumProcs())
			local := 0
			t := 0
			for ; t < share; t++ {
				if done != nil && t&255 == 0 && canceled.Load() {
					break
				}
				for u := range failed {
					failed[u] = rng.Float64() < pl.FailProb[u]
				}
				if !SurvivesFailures(m, failed) {
					local++
				}
			}
			counts[w] = local
			performed[w] = t
		}()
	}
	if done != nil {
		stop := make(chan struct{})
		go func() {
			select {
			case <-done:
				canceled.Store(true)
			case <-stop:
			}
		}()
		wg.Wait()
		close(stop)
	} else {
		wg.Wait()
	}

	failures, did := 0, 0
	for w := range counts {
		failures += counts[w]
		did += performed[w]
	}
	if canceled.Load() {
		est := FPEstimate{Trials: did}
		if did > 0 {
			p := float64(failures) / float64(did)
			est.FP = p
			est.StdErr = math.Sqrt(p * (1 - p) / float64(did))
		}
		return est, canceledErr(ctx)
	}
	p := float64(failures) / float64(trials)
	return FPEstimate{
		FP:     p,
		StdErr: math.Sqrt(p * (1 - p) / float64(trials)),
		Trials: trials,
	}, nil
}

// MonteCarloLatencyParallel runs `trials` independent Monte-Carlo
// simulations across `workers` goroutines and aggregates: the empirical
// failure rate, the mean and maximum latency of completed runs, and the
// number of completions. Deterministic for fixed (trials, workers, seed).
//
// Cancelling ctx stops the campaign early: the summary then aggregates
// the trials actually executed (MCSummary.Trials reports how many) and is
// returned together with an error wrapping the context's cause.
func MonteCarloLatencyParallel(ctx context.Context, p *pipeline.Pipeline, pl *platform.Platform, m *mapping.Mapping, cfg Config, trials, workers int, seed int64) (MCSummary, error) {
	if trials <= 0 {
		return MCSummary{}, fmt.Errorf("sim: trials must be > 0")
	}
	if err := m.Validate(p.NumStages(), pl.NumProcs()); err != nil {
		return MCSummary{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	done := ctxDone(ctx)
	var canceled atomic.Bool
	type partial struct {
		failures  int
		completed int
		sumLat    float64
		maxLat    float64
	}
	parts := make([]partial, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		share := trials / workers
		if w < trials%workers {
			share++
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := cfg
			local.Mode = MonteCarlo
			local.RNG = rand.New(rand.NewSource(seed ^ (int64(w)+1)*0x5851F42D4C957F2D))
			for t := 0; t < share; t++ {
				if done != nil && canceled.Load() {
					return
				}
				res, err := Run(p, pl, m, local)
				if err != nil {
					errs[w] = err
					return
				}
				if !res.Completed {
					parts[w].failures++
					continue
				}
				parts[w].completed++
				parts[w].sumLat += res.MaxLatency
				if res.MaxLatency > parts[w].maxLat {
					parts[w].maxLat = res.MaxLatency
				}
			}
		}()
	}
	if done != nil {
		stop := make(chan struct{})
		go func() {
			select {
			case <-done:
				canceled.Store(true)
			case <-stop:
			}
		}()
		wg.Wait()
		close(stop)
	} else {
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return MCSummary{}, err
		}
	}
	var sum MCSummary
	var totLat float64
	for _, pt := range parts {
		sum.Failures += pt.failures
		sum.Completed += pt.completed
		totLat += pt.sumLat
		if pt.maxLat > sum.MaxLatency {
			sum.MaxLatency = pt.maxLat
		}
	}
	sum.Trials = sum.Failures + sum.Completed
	if !canceled.Load() {
		sum.Trials = trials
	}
	if sum.Completed > 0 {
		sum.MeanLatency = totLat / float64(sum.Completed)
	}
	if sum.Trials > 0 {
		sum.FailureRate = float64(sum.Failures) / float64(sum.Trials)
	}
	if canceled.Load() {
		return sum, canceledErr(ctx)
	}
	return sum, nil
}

// MCSummary aggregates a parallel Monte-Carlo campaign.
type MCSummary struct {
	Trials      int
	Failures    int
	Completed   int
	FailureRate float64
	MeanLatency float64
	MaxLatency  float64
}
