package sim

import (
	"math/rand"
	"testing"
)

func TestFaultScheduleValidate(t *testing.T) {
	good := ScriptedCrashes(0, 2, 1)
	if err := good.Validate(3); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if err := good.Validate(2); err == nil {
		t.Error("processor 2 on a 2-processor platform must be rejected")
	}
	back := FaultSchedule{
		{Time: 2, Proc: 0, Kind: FaultCrash},
		{Time: 1, Proc: 1, Kind: FaultCrash},
	}
	if err := back.Validate(3); err == nil {
		t.Error("time-reversed schedule must be rejected")
	}
	bad := FaultSchedule{{Time: 1, Proc: 0, Kind: FaultKind(7)}}
	if err := bad.Validate(3); err == nil {
		t.Error("unknown kind must be rejected")
	}
}

func TestRandomFaultScheduleDeterministicAndValid(t *testing.T) {
	const m = 12
	gen := func(seed int64) FaultSchedule {
		return RandomFaultSchedule(rand.New(rand.NewSource(seed)), m, RandomFaultConfig{Events: 40})
	}
	a, b := gen(7), gen(7)
	if len(a) != 40 {
		t.Fatalf("got %d events, want 40", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	if err := a.Validate(m); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	// The generator never kills the last processor and never emits
	// redundant transitions.
	fs := NewFaultState(m)
	for _, ev := range a {
		if !fs.Apply(ev) {
			t.Fatalf("generated schedule contains redundant transition %+v", ev)
		}
		if fs.Alive() < 1 {
			t.Fatal("generated schedule killed every processor")
		}
	}
	if c := gen(8); len(c) == len(a) && c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Error("different seeds produced an identical schedule prefix (suspicious)")
	}
}

// TestRandomFaultScheduleDegeneratePlatform: with fewer than two
// processors no event can keep a survivor alive, so the generator must
// return an empty schedule instead of looping forever (regression: it
// used to spin when MaxDown collapsed to 0).
func TestRandomFaultScheduleDegeneratePlatform(t *testing.T) {
	for _, m := range []int{0, 1} {
		s := RandomFaultSchedule(rand.New(rand.NewSource(1)), m, RandomFaultConfig{Events: 4})
		if len(s) != 0 {
			t.Errorf("m=%d: got %d events, want an empty schedule", m, len(s))
		}
	}
}

func TestFaultStateTracking(t *testing.T) {
	fs := NewFaultState(4)
	if fs.Down() != 0 || fs.Alive() != 4 {
		t.Fatalf("fresh state: down=%d alive=%d", fs.Down(), fs.Alive())
	}
	if !fs.Apply(FaultEvent{Proc: 2, Kind: FaultCrash}) {
		t.Fatal("first crash must change state")
	}
	if fs.Apply(FaultEvent{Proc: 2, Kind: FaultCrash}) {
		t.Error("crashing a crashed processor must be a no-op")
	}
	if got := fs.FailedProcs(); len(got) != 1 || got[0] != 2 {
		t.Errorf("FailedProcs = %v, want [2]", got)
	}
	if !fs.Failed()[2] {
		t.Error("Failed()[2] must be true")
	}
	if !fs.Apply(FaultEvent{Proc: 2, Kind: FaultRecover}) {
		t.Fatal("recovery of a failed processor must change state")
	}
	if fs.Apply(FaultEvent{Proc: 2, Kind: FaultRecover}) {
		t.Error("recovering an alive processor must be a no-op")
	}
	if fs.Down() != 0 || len(fs.FailedProcs()) != 0 {
		t.Errorf("after recovery: down=%d failed=%v", fs.Down(), fs.FailedProcs())
	}
}
