package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/platform"
)

func TestEngineOrdering(t *testing.T) {
	eng := &Engine{}
	var order []int
	eng.At(2, func() { order = append(order, 2) })
	eng.At(1, func() { order = append(order, 1) })
	eng.At(3, func() { order = append(order, 3) })
	n := eng.Run()
	if n != 3 {
		t.Fatalf("processed %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineTieBreakBySequence(t *testing.T) {
	eng := &Engine{}
	var order []string
	eng.At(1, func() { order = append(order, "a") })
	eng.At(1, func() { order = append(order, "b") })
	eng.Run()
	if order[0] != "a" || order[1] != "b" {
		t.Errorf("tie order = %v, want insertion order", order)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := &Engine{}
	var times []float64
	eng.At(1, func() {
		times = append(times, eng.Now())
		eng.After(2, func() { times = append(times, eng.Now()) })
		eng.After(-5, func() { times = append(times, eng.Now()) }) // clamped to now
	})
	eng.Run()
	if len(times) != 3 || times[0] != 1 || times[1] != 1 || times[2] != 3 {
		t.Errorf("times = %v, want [1 1 3]", times)
	}
}

func TestEnginePastSchedulingClamped(t *testing.T) {
	eng := &Engine{}
	fired := 0.0
	eng.At(5, func() {
		eng.At(1, func() { fired = eng.Now() }) // in the past: fires now
	})
	eng.Run()
	if fired != 5 {
		t.Errorf("past event fired at %g, want clamped to 5", fired)
	}
}

func TestEngineProcessedCount(t *testing.T) {
	eng := &Engine{}
	for i := 0; i < 10; i++ {
		eng.At(float64(i), func() {})
	}
	if eng.Run() != 10 || eng.Processed() != 10 {
		t.Error("event count mismatch")
	}
}

func TestResourceClaimFIFO(t *testing.T) {
	r := &resource{}
	s1, e1 := r.claim(0, 5)
	if s1 != 0 || e1 != 5 {
		t.Errorf("first claim (%g,%g), want (0,5)", s1, e1)
	}
	s2, e2 := r.claim(2, 3)
	if s2 != 5 || e2 != 8 {
		t.Errorf("queued claim (%g,%g), want (5,8)", s2, e2)
	}
	s3, e3 := r.claim(20, 1)
	if s3 != 20 || e3 != 21 {
		t.Errorf("idle claim (%g,%g), want (20,21)", s3, e3)
	}
}

func TestNetworkBandwidthLookup(t *testing.T) {
	pl, _ := platform.NewFullyHeterogeneous(
		[]float64{1, 1}, []float64{0, 0},
		[][]float64{{0, 4}, {4, 0}}, []float64{2, 3}, []float64{5, 6})
	nw := newNetwork(&Engine{}, pl)
	cases := []struct {
		from, to int
		want     float64
	}{
		{PinID, 0, 2}, {PinID, 1, 3}, {0, PoutID, 5}, {1, PoutID, 6}, {0, 1, 4}, {1, 0, 4},
	}
	for _, c := range cases {
		got, err := nw.bandwidth(c.from, c.to)
		if err != nil || got != c.want {
			t.Errorf("bandwidth(%d,%d) = %g,%v; want %g", c.from, c.to, got, err, c.want)
		}
	}
	for _, bad := range [][2]int{{0, 0}, {PoutID, 0}, {1, PinID}, {PinID, PoutID}} {
		if _, err := nw.bandwidth(bad[0], bad[1]); err == nil {
			t.Errorf("bandwidth(%d,%d) accepted", bad[0], bad[1])
		}
	}
}

func TestNetworkOnePortSerialization(t *testing.T) {
	pl, _ := platform.NewFullyHomogeneous(3, 1, 2, 0) // all bandwidths 2
	eng := &Engine{}
	nw := newNetwork(eng, pl)
	// P0 sends 4 units to P1 and then to P2: second transfer must wait for
	// the sender's port (4/2 = 2 time units each).
	var a1, a2 float64
	nw.transfer(0, 1, 4, 0, func(at float64) { a1 = at })
	nw.transfer(0, 2, 4, 0, func(at float64) { a2 = at })
	eng.Run()
	if a1 != 2 || a2 != 4 {
		t.Errorf("arrivals (%g,%g), want (2,4): one-port violated", a1, a2)
	}
}

func TestNetworkReceiverPortSerialization(t *testing.T) {
	pl, _ := platform.NewFullyHomogeneous(3, 1, 1, 0)
	eng := &Engine{}
	nw := newNetwork(eng, pl)
	// P0→P2 and P1→P2 both of size 3: the receiver serializes.
	var a1, a2 float64
	nw.transfer(0, 2, 3, 0, func(at float64) { a1 = at })
	nw.transfer(1, 2, 3, 0, func(at float64) { a2 = at })
	eng.Run()
	if a1 != 3 || a2 != 6 {
		t.Errorf("arrivals (%g,%g), want (3,6): receive port shared", a1, a2)
	}
}

func TestTransferChainSerializesAndReports(t *testing.T) {
	pl, _ := platform.NewFullyHomogeneous(4, 1, 1, 0)
	eng := &Engine{}
	nw := newNetwork(eng, pl)
	var last float64
	var arr []float64
	nw.transferChain(0, []int{1, 2, 3}, 2, 1, func(l float64, a []float64) {
		last, arr = l, a
	})
	eng.Run()
	if last != 7 {
		t.Errorf("last arrival = %g, want 1+2+2+2 = 7", last)
	}
	want := []float64{3, 5, 7}
	for i := range want {
		if arr[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", arr, want)
		}
	}
}

func TestTransferChainEmptyTargets(t *testing.T) {
	pl, _ := platform.NewFullyHomogeneous(1, 1, 1, 0)
	eng := &Engine{}
	nw := newNetwork(eng, pl)
	called := false
	nw.transferChain(0, nil, 1, 3, func(last float64, arr []float64) {
		called = true
		if last != 3 || arr != nil {
			t.Errorf("empty chain returned (%g, %v)", last, arr)
		}
	})
	eng.Run()
	if !called {
		t.Error("empty chain callback not invoked")
	}
}

func TestZeroSizeTransferIsInstant(t *testing.T) {
	pl, _ := platform.NewFullyHomogeneous(2, 1, 1, 0)
	eng := &Engine{}
	nw := newNetwork(eng, pl)
	var at float64
	nw.transfer(0, 1, 0, 5, func(a float64) { at = a })
	eng.Run()
	if at != 5 {
		t.Errorf("zero-size transfer arrived at %g, want 5", at)
	}
}

// Property: engine processes any random event set in non-decreasing time
// order.
func TestEngineMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := &Engine{}
		var times []float64
		for i := 0; i < 50; i++ {
			eng.At(rng.Float64()*100, func() { times = append(times, eng.Now()) })
		}
		eng.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
