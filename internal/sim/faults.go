package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file is the fault-injection harness: failures are modeled as an
// ordered *event stream* (crashes and recoveries at virtual times) rather
// than a single static crash pattern, so a re-mapping controller can
// subscribe and react to each transition. Schedules are either scripted
// (explicit event lists) or stochastic (seeded generators, deterministic
// for a fixed seed), and a FaultState tracks the cumulative alive/failed
// picture an observer holds after each event.

// FaultKind distinguishes the two processor state transitions of a
// fault-injection campaign.
type FaultKind int

const (
	// FaultCrash marks processor Proc as failed from Time on.
	FaultCrash FaultKind = iota
	// FaultRecover returns processor Proc to service at Time.
	FaultRecover
)

// String returns the wire name of the kind ("crash" / "recover").
func (k FaultKind) String() string {
	if k == FaultCrash {
		return "crash"
	}
	return "recover"
}

// FaultEvent is one transition of a fault-injection campaign.
type FaultEvent struct {
	// Seq is the event's position in its schedule (0-based, assigned by
	// the schedule constructors; informational for consumers).
	Seq int `json:"seq"`
	// Time is the virtual occurrence time (non-decreasing in a schedule).
	Time float64 `json:"time"`
	// Proc is the affected processor id.
	Proc int `json:"proc"`
	// Kind is the transition: FaultCrash or FaultRecover.
	Kind FaultKind `json:"kind"`
}

// FaultSchedule is an ordered fault-event sequence. Schedules are values:
// safe to reuse, replay and share across runs.
type FaultSchedule []FaultEvent

// Validate checks that the schedule is well-formed for an m-processor
// platform: processor ids in range and non-decreasing times. Redundant
// transitions (crashing a crashed processor) are permitted — observers
// treat them as no-ops — so scripted schedules compose freely.
func (s FaultSchedule) Validate(m int) error {
	prev := 0.0
	for i, ev := range s {
		if ev.Proc < 0 || ev.Proc >= m {
			return fmt.Errorf("sim: fault event %d targets processor %d (platform has %d)", i, ev.Proc, m)
		}
		if ev.Kind != FaultCrash && ev.Kind != FaultRecover {
			return fmt.Errorf("sim: fault event %d has unknown kind %d", i, int(ev.Kind))
		}
		if ev.Time < prev {
			return fmt.Errorf("sim: fault event %d goes back in time (%g after %g)", i, ev.Time, prev)
		}
		prev = ev.Time
	}
	return nil
}

// ScriptedCrashes builds the simplest campaign: the given processors
// crash one after another at unit-spaced times, no recoveries.
func ScriptedCrashes(procs ...int) FaultSchedule {
	s := make(FaultSchedule, len(procs))
	for i, u := range procs {
		s[i] = FaultEvent{Seq: i, Time: float64(i + 1), Proc: u, Kind: FaultCrash}
	}
	return s
}

// Renumber rewrites the Seq fields to the events' positions, so hand-built
// or concatenated schedules carry consistent sequence numbers.
func (s FaultSchedule) Renumber() FaultSchedule {
	for i := range s {
		s[i].Seq = i
	}
	return s
}

// RandomFaultConfig tunes RandomFaultSchedule.
type RandomFaultConfig struct {
	// Events is the number of events drawn (default 8).
	Events int
	// CrashBias is the probability that an event is a crash rather than a
	// recovery of an already-failed processor (default 0.7). Recoveries
	// are only drawn when some processor is down; otherwise the event is a
	// crash regardless of the bias.
	CrashBias float64
	// MeanGap is the mean exponential inter-event time (default 1).
	MeanGap float64
	// MaxDown caps how many processors may be down simultaneously
	// (default 0: no cap beyond m−1, so at least one processor always
	// survives a generated schedule).
	MaxDown int
}

func (c RandomFaultConfig) withDefaults(m int) RandomFaultConfig {
	if c.Events <= 0 {
		c.Events = 8
	}
	if c.CrashBias <= 0 || c.CrashBias > 1 {
		c.CrashBias = 0.7
	}
	if c.MeanGap <= 0 {
		c.MeanGap = 1
	}
	if c.MaxDown <= 0 || c.MaxDown > m-1 {
		c.MaxDown = m - 1
	}
	return c
}

// RandomFaultSchedule draws a stochastic crash/recovery campaign over an
// m-processor platform: exponential inter-event gaps, crashes of uniformly
// chosen alive processors, recoveries of uniformly chosen failed ones.
// The schedule is a deterministic function of (m, cfg, the RNG stream), so
// a fixed seed reproduces the campaign exactly. At least one processor is
// always left alive (cfg.MaxDown ≤ m−1); on a platform with fewer than two
// processors no event can satisfy that invariant, so the schedule is empty.
func RandomFaultSchedule(rng *rand.Rand, m int, cfg RandomFaultConfig) FaultSchedule {
	if m < 2 {
		return FaultSchedule{}
	}
	cfg = cfg.withDefaults(m)
	failed := make([]bool, m)
	down := 0
	now := 0.0
	s := make(FaultSchedule, 0, cfg.Events)
	for len(s) < cfg.Events {
		now += rng.ExpFloat64() * cfg.MeanGap
		crash := rng.Float64() < cfg.CrashBias
		if down == 0 {
			crash = true
		}
		if down >= cfg.MaxDown {
			crash = false
		}
		if !crash && down == 0 {
			// Neither transition is drawable: a crash would breach the
			// down cap and there is nobody to recover.
			break
		}
		var pool []int
		for u := 0; u < m; u++ {
			if failed[u] == !crash {
				pool = append(pool, u)
			}
		}
		if len(pool) == 0 {
			break
		}
		u := pool[rng.Intn(len(pool))]
		kind := FaultRecover
		if crash {
			kind = FaultCrash
			failed[u] = true
			down++
		} else {
			failed[u] = false
			down--
		}
		s = append(s, FaultEvent{Seq: len(s), Time: now, Proc: u, Kind: kind})
	}
	return s
}

// FaultState tracks the cumulative failed/alive picture of a platform as
// fault events are applied in order. The zero value is unusable; create
// with NewFaultState. FaultState is not safe for concurrent use; guard it
// externally (the remap controller serializes events through its own
// mutex).
type FaultState struct {
	failed []bool
	down   int
}

// NewFaultState returns an all-alive tracker for m processors.
func NewFaultState(m int) *FaultState {
	return &FaultState{failed: make([]bool, m)}
}

// Apply folds one event into the state and reports whether it changed
// anything (false for redundant transitions: crashing a crashed processor
// or recovering an alive one).
func (fs *FaultState) Apply(ev FaultEvent) bool {
	switch ev.Kind {
	case FaultCrash:
		if fs.failed[ev.Proc] {
			return false
		}
		fs.failed[ev.Proc] = true
		fs.down++
		return true
	case FaultRecover:
		if !fs.failed[ev.Proc] {
			return false
		}
		fs.failed[ev.Proc] = false
		fs.down--
		return true
	}
	return false
}

// Failed returns the live crash-pattern view (do not mutate; the slice is
// shared with the tracker and is the shape RunInjected and
// SurvivesFailures consume).
func (fs *FaultState) Failed() []bool { return fs.failed }

// Down returns how many processors are currently failed.
func (fs *FaultState) Down() int { return fs.down }

// Alive returns how many processors are currently in service.
func (fs *FaultState) Alive() int { return len(fs.failed) - fs.down }

// FailedProcs returns the sorted ids of the currently failed processors
// (freshly allocated).
func (fs *FaultState) FailedProcs() []int {
	out := make([]int, 0, fs.down)
	for u, f := range fs.failed {
		if f {
			out = append(out, u)
		}
	}
	sort.Ints(out)
	return out
}
