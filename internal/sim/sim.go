package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// Mode selects the failure semantics of a run.
type Mode int

const (
	// WorstCase replays the adversarial schedule behind the paper's
	// latency formulas: every replica of an interval receives the input
	// (serialized sends), computation starts at the barrier, and the
	// elected sender is the replica with the worst compute+send term (all
	// better-placed replicas are assumed to fail right after forwarding).
	WorstCase Mode = iota
	// MonteCarlo draws a crash pattern — each processor fails for the
	// whole run with probability fp_u — and executes the workflow with the
	// surviving replicas (lowest-ranked survivor elected by consensus,
	// per-arrival computation starts, dead receivers skipped).
	MonteCarlo
)

// Config parameterizes a simulation run.
type Config struct {
	Mode Mode
	// RNG drives failure sampling; required in MonteCarlo mode.
	RNG *rand.Rand
	// NumDataSets is the number of data sets streamed through the
	// pipeline (default 1).
	NumDataSets int
	// Period is the release interval between consecutive data sets
	// (default 0: all released at time 0; P_in serializes them anyway).
	Period float64
	// ConsensusTimeout is the detection delay charged per dead
	// coordinator round in the election protocol (default 0).
	ConsensusTimeout float64
	// ControlMsgSize is the size of consensus control messages
	// (default 0: elections are free, matching the paper's abstraction).
	ControlMsgSize float64
	// CollectTrace records every resource occupation into
	// RunResult.Trace (see Trace.Gantt for rendering).
	CollectTrace bool
}

func (c Config) withDefaults() Config {
	if c.NumDataSets <= 0 {
		c.NumDataSets = 1
	}
	return c
}

// RunResult reports a completed simulation.
type RunResult struct {
	// Completed is false when some interval lost all of its replicas, in
	// which case no data set leaves the pipeline.
	Completed bool
	// FailedProcs lists the processors that crashed (sorted).
	FailedProcs []int
	// DatasetLatencies[d] is the response time of data set d (from its
	// release to its arrival at P_out). Empty when Completed is false.
	DatasetLatencies []float64
	// MaxLatency is the maximum data-set latency (the paper's metric).
	MaxLatency float64
	// Makespan is the arrival time of the last data set at P_out.
	Makespan float64
	// ConsensusRounds counts coordinator rounds over all elections.
	ConsensusRounds int
	// Events is the number of simulator events processed.
	Events int
	// Trace holds the resource-occupation spans when Config.CollectTrace
	// was set (nil otherwise).
	Trace *Trace
}

// Run executes the mapped workflow under cfg and returns the measured
// result. The mapping must be valid for the pipeline/platform pair.
func Run(p *pipeline.Pipeline, pl *platform.Platform, m *mapping.Mapping, cfg Config) (RunResult, error) {
	if err := m.Validate(p.NumStages(), pl.NumProcs()); err != nil {
		return RunResult{}, err
	}
	cfg = cfg.withDefaults()
	switch cfg.Mode {
	case WorstCase:
		return runWorstCase(p, pl, m, cfg)
	case MonteCarlo:
		if cfg.RNG == nil {
			return RunResult{}, fmt.Errorf("sim: MonteCarlo mode requires Config.RNG")
		}
		return runMonteCarlo(p, pl, m, cfg)
	default:
		return RunResult{}, fmt.Errorf("sim: unknown mode %d", cfg.Mode)
	}
}

// electWorst returns the replica of interval j with the largest
// compute-plus-outgoing-communication term — the adversary's choice of
// surviving sender in Equations (1) and (2).
func electWorst(p *pipeline.Pipeline, pl *platform.Platform, m *mapping.Mapping, j int) int {
	iv := m.Intervals[j]
	work := p.Work(iv.First, iv.Last)
	out := p.OutputSize(iv.Last)
	best, bestTerm := -1, math.Inf(-1)
	for _, u := range m.Alloc[j] {
		term := work / pl.Speed[u]
		if j == len(m.Intervals)-1 {
			term += out / pl.BOut[u]
		} else {
			for _, v := range m.Alloc[j+1] {
				term += out / pl.B[u][v]
			}
		}
		if term > bestTerm {
			best, bestTerm = u, term
		}
	}
	return best
}

// runWorstCase executes the adversarial schedule. The resulting maximum
// latency equals mapping.LatencyEq2 (hence Eq. (1) on CommHom platforms)
// for a single data set; with several data sets resources are shared FIFO
// and latencies can only grow.
func runWorstCase(p *pipeline.Pipeline, pl *platform.Platform, m *mapping.Mapping, cfg Config) (RunResult, error) {
	sc := getScratch(pl)
	defer putScratch(sc)
	eng, nw, compute := &sc.eng, &sc.nw, sc.compute
	res := RunResult{Completed: true, DatasetLatencies: make([]float64, cfg.NumDataSets)}
	if cfg.CollectTrace {
		res.Trace = &Trace{}
		nw.trace = res.Trace
	}
	var runErr error

	var startInterval func(d, j int, ready, release float64)
	startInterval = func(d, j int, ready, release float64) {
		iv := m.Intervals[j]
		work := p.Work(iv.First, iv.Last)
		elected := electWorst(p, pl, m, j)
		// All replicas compute from the barrier; only the elected one
		// gates the dataflow (the others are assumed to fail after it).
		var electedEnd float64
		for _, u := range m.Alloc[j] {
			start, end := compute[u].claim(ready, work/pl.Speed[u])
			if res.Trace != nil {
				res.Trace.add(procName(u)+":compute", "compute", fmt.Sprintf("d%d I%d", d, j+1), start, end)
			}
			if u == elected {
				electedEnd = end
			}
		}
		out := p.OutputSize(iv.Last)
		if j == len(m.Intervals)-1 {
			err := nw.transfer(elected, PoutID, out, electedEnd, func(arrival float64) {
				res.DatasetLatencies[d] = arrival - release
				if arrival > res.Makespan {
					res.Makespan = arrival
				}
			})
			if err != nil {
				runErr = err
			}
			return
		}
		err := nw.transferChain(elected, m.Alloc[j+1], out, electedEnd, func(last float64, _ []float64) {
			startInterval(d, j+1, last, release)
		})
		if err != nil {
			runErr = err
		}
	}

	for d := 0; d < cfg.NumDataSets; d++ {
		d := d
		release := float64(d) * cfg.Period
		eng.At(release, func() {
			err := nw.transferChain(PinID, m.Alloc[0], p.InputSize(0), release, func(last float64, _ []float64) {
				startInterval(d, 0, last, release)
			})
			if err != nil {
				runErr = err
			}
		})
	}
	res.Events = eng.Run()
	if runErr != nil {
		return RunResult{}, runErr
	}
	for _, lat := range res.DatasetLatencies {
		if lat > res.MaxLatency {
			res.MaxLatency = lat
		}
	}
	return res, nil
}

// runMonteCarlo samples a crash pattern and executes the workflow with the
// survivors.
func runMonteCarlo(p *pipeline.Pipeline, pl *platform.Platform, m *mapping.Mapping, cfg Config) (RunResult, error) {
	failed := make([]bool, pl.NumProcs())
	for u := range failed {
		if cfg.RNG.Float64() < pl.FailProb[u] {
			failed[u] = true
		}
	}
	return runWithFailures(p, pl, m, cfg, failed)
}

// runWithFailures executes the workflow given an explicit crash pattern.
// Exposed to tests (and the failure-injection example) via RunInjected.
func runWithFailures(p *pipeline.Pipeline, pl *platform.Platform, m *mapping.Mapping, cfg Config, failed []bool) (RunResult, error) {
	res := RunResult{}
	for u, f := range failed {
		if f {
			res.FailedProcs = append(res.FailedProcs, u)
		}
	}
	sort.Ints(res.FailedProcs)
	alive := func(u int) bool { return !failed[u] }

	sc := getScratch(pl)
	defer putScratch(sc)

	// An interval with no surviving replica kills the whole application.
	aliveReplicas, dead := sc.aliveGroups(m.Alloc, alive)
	if dead >= 0 {
		res.Completed = false
		return res, nil
	}
	res.Completed = true
	res.DatasetLatencies = make([]float64, cfg.NumDataSets)

	eng, nw, compute := &sc.eng, &sc.nw, sc.compute
	if cfg.CollectTrace {
		res.Trace = &Trace{}
		nw.trace = res.Trace
	}
	var runErr error

	var startInterval func(d, j int, arrivals []float64, release float64)
	startInterval = func(d, j int, arrivals []float64, release float64) {
		iv := m.Intervals[j]
		work := p.Work(iv.First, iv.Last)
		// Every surviving replica computes from its own arrival time.
		leader := aliveReplicas[j][0]
		var leaderEnd float64
		for i, u := range aliveReplicas[j] {
			start, end := compute[u].claim(arrivals[i], work/pl.Speed[u])
			if res.Trace != nil {
				res.Trace.add(procName(u)+":compute", "compute", fmt.Sprintf("d%d I%d", d, j+1), start, end)
			}
			if u == leader {
				leaderEnd = end
			}
		}
		// Elect the outgoing sender among the full replica set (dead
		// coordinators burn timeout rounds).
		runConsensus(nw, m.Alloc[j], alive, leaderEnd, cfg.ConsensusTimeout, cfg.ControlMsgSize,
			func(cres consensusResult, ok bool) {
				if !ok {
					runErr = fmt.Errorf("sim: consensus failed with survivors present")
					return
				}
				res.ConsensusRounds += cres.Rounds
				if res.Trace != nil {
					res.Trace.add(procName(cres.Leader)+":compute", "consensus",
						fmt.Sprintf("d%d I%d elect", d, j+1), cres.Decided, cres.Decided)
				}
				out := p.OutputSize(iv.Last)
				// The leader is the lowest-ranked survivor; its result is
				// ready at leaderEnd and the election decided at
				// cres.Decided ≥ leaderEnd.
				sendReady := cres.Decided
				if j == len(m.Intervals)-1 {
					err := nw.transfer(cres.Leader, PoutID, out, sendReady, func(arrival float64) {
						res.DatasetLatencies[d] = arrival - release
						if arrival > res.Makespan {
							res.Makespan = arrival
						}
					})
					if err != nil {
						runErr = err
					}
					return
				}
				err := nw.transferChain(cres.Leader, aliveReplicas[j+1], out, sendReady, func(_ float64, arr []float64) {
					startInterval(d, j+1, arr, release)
				})
				if err != nil {
					runErr = err
				}
			})
	}

	for d := 0; d < cfg.NumDataSets; d++ {
		d := d
		release := float64(d) * cfg.Period
		eng.At(release, func() {
			err := nw.transferChain(PinID, aliveReplicas[0], p.InputSize(0), release, func(_ float64, arr []float64) {
				startInterval(d, 0, arr, release)
			})
			if err != nil {
				runErr = err
			}
		})
	}
	res.Events = eng.Run()
	if runErr != nil {
		return RunResult{}, runErr
	}
	for _, lat := range res.DatasetLatencies {
		if lat > res.MaxLatency {
			res.MaxLatency = lat
		}
	}
	return res, nil
}

// RunInjected executes the workflow with an explicit crash pattern (true =
// failed), for failure-injection studies. cfg.Mode is ignored.
func RunInjected(p *pipeline.Pipeline, pl *platform.Platform, m *mapping.Mapping, cfg Config, failed []bool) (RunResult, error) {
	if err := m.Validate(p.NumStages(), pl.NumProcs()); err != nil {
		return RunResult{}, err
	}
	if len(failed) != pl.NumProcs() {
		return RunResult{}, fmt.Errorf("sim: failure vector has %d entries, want %d", len(failed), pl.NumProcs())
	}
	cfg = cfg.withDefaults()
	// failed is only read during the run, never retained or mutated.
	return runWithFailures(p, pl, m, cfg, failed)
}
