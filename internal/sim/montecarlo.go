package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mapping"
	"repro/internal/platform"
)

// SurvivesFailures reports whether the mapped application survives a given
// crash pattern: every interval must keep at least one replica alive. This
// is the event whose probability the paper's FP formula computes.
func SurvivesFailures(m *mapping.Mapping, failed []bool) bool {
	for _, procs := range m.Alloc {
		anyAlive := false
		for _, u := range procs {
			if !failed[u] {
				anyAlive = true
				break
			}
		}
		if !anyAlive {
			return false
		}
	}
	return true
}

// FPEstimate is a Monte-Carlo estimate of the failure probability.
type FPEstimate struct {
	FP     float64 // fraction of trials that failed
	StdErr float64 // binomial standard error sqrt(p(1-p)/trials)
	Trials int
}

// Within reports whether the analytic value lies within k standard errors
// of the estimate (with a tiny absolute floor for p≈0 or p≈1 cases).
func (e FPEstimate) Within(analytic float64, k float64) bool {
	slack := k*e.StdErr + 1e-9
	return math.Abs(e.FP-analytic) <= slack
}

// EstimateFP estimates the mapping's failure probability by sampling crash
// patterns directly (each processor fails independently with its fp_u).
// This is the fast path — no event simulation — used for large trial
// counts; RunInjected exercises the full simulator on any specific
// pattern.
func EstimateFP(pl *platform.Platform, m *mapping.Mapping, trials int, rng *rand.Rand) (FPEstimate, error) {
	if trials <= 0 {
		return FPEstimate{}, fmt.Errorf("sim: trials must be > 0")
	}
	if err := m.Validate(maxStage(m)+1, pl.NumProcs()); err != nil {
		return FPEstimate{}, err
	}
	failed := make([]bool, pl.NumProcs())
	failures := 0
	for t := 0; t < trials; t++ {
		for u := range failed {
			failed[u] = rng.Float64() < pl.FailProb[u]
		}
		if !SurvivesFailures(m, failed) {
			failures++
		}
	}
	p := float64(failures) / float64(trials)
	return FPEstimate{
		FP:     p,
		StdErr: math.Sqrt(p * (1 - p) / float64(trials)),
		Trials: trials,
	}, nil
}

func maxStage(m *mapping.Mapping) int {
	last := 0
	for _, iv := range m.Intervals {
		if iv.Last > last {
			last = iv.Last
		}
	}
	return last
}
