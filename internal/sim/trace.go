package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Span is one traced resource occupation: a transfer holding a port, a
// computation holding a core, or a consensus decision point.
type Span struct {
	// Resource names the occupied resource, e.g. "P3:compute",
	// "P1:send", "Pin:send", "Pout:recv".
	Resource string
	// Kind is "compute", "transfer" or "consensus".
	Kind string
	// Label carries human-readable detail ("d0 →P4 δ=1").
	Label string
	// Start and End bound the occupation in simulation time.
	Start, End float64
}

// Trace accumulates spans during a simulation run (enable with
// Config.CollectTrace). The zero value is ready to use.
type Trace struct {
	Spans []Span
}

func (t *Trace) add(resource, kind, label string, start, end float64) {
	if t == nil {
		return
	}
	t.Spans = append(t.Spans, Span{Resource: resource, Kind: kind, Label: label, Start: start, End: end})
}

// Makespan returns the end of the last span.
func (t *Trace) Makespan() float64 {
	end := 0.0
	for _, s := range t.Spans {
		if s.End > end {
			end = s.End
		}
	}
	return end
}

// Gantt renders the trace as an ASCII chart, one row per resource, scaled
// to width columns. Instantaneous spans are drawn as '|'; busy time as
// '#' for computations and '=' for transfers.
func (t *Trace) Gantt(width int) string {
	if len(t.Spans) == 0 {
		return "(empty trace)\n"
	}
	if width < 10 {
		width = 10
	}
	makespan := t.Makespan()
	if makespan <= 0 {
		makespan = 1
	}
	scale := float64(width) / makespan

	byResource := make(map[string][]Span)
	for _, s := range t.Spans {
		byResource[s.Resource] = append(byResource[s.Resource], s)
	}
	resources := make([]string, 0, len(byResource))
	for r := range byResource {
		resources = append(resources, r)
	}
	sort.Strings(resources)

	nameWidth := 0
	for _, r := range resources {
		if len(r) > nameWidth {
			nameWidth = len(r)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-*s 0%s%.4g\n", nameWidth, "time", strings.Repeat(" ", width-len(fmt.Sprintf("%.4g", makespan))), makespan)
	for _, r := range resources {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range byResource[r] {
			lo := int(math.Floor(s.Start * scale))
			hi := int(math.Ceil(s.End * scale))
			if lo >= width {
				lo = width - 1
			}
			if hi > width {
				hi = width
			}
			ch := byte('=')
			switch s.Kind {
			case "compute":
				ch = '#'
			case "consensus":
				ch = '|'
			}
			if hi <= lo { // instantaneous
				row[lo] = '|'
				continue
			}
			for i := lo; i < hi; i++ {
				row[i] = ch
			}
		}
		fmt.Fprintf(&b, "%-*s %s\n", nameWidth, r, string(row))
	}
	return b.String()
}

// procName renders an endpoint id for trace labels.
func procName(id int) string {
	switch id {
	case PinID:
		return "Pin"
	case PoutID:
		return "Pout"
	default:
		return fmt.Sprintf("P%d", id+1)
	}
}
