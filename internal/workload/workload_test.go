package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mapping"
	"repro/internal/platform"
)

func TestFig34ReproducesPaperNumbers(t *testing.T) {
	p, pl := Fig34()
	single, err := mapping.LatencyEq2(p, pl, mapping.NewSingleInterval(2, []int{0}))
	if err != nil || single != 105 {
		t.Errorf("single-interval latency = %g (%v), want 105", single, err)
	}
	split := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {1}},
	}
	lat, err := mapping.LatencyEq2(p, pl, split)
	if err != nil || lat != 7 {
		t.Errorf("split latency = %g (%v), want 7", lat, err)
	}
}

func TestFig5ReproducesPaperNumbers(t *testing.T) {
	p, pl := Fig5()
	if pl.NumProcs() != 11 {
		t.Fatalf("m = %d, want 11", pl.NumProcs())
	}
	if pl.Classify() != platform.CommHomogeneous || pl.FailureHomogeneous() {
		t.Error("Fig5 must be CommHom + FailureHet")
	}
	split := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{0}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	}
	met, err := mapping.Evaluate(p, pl, split)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(met.Latency-Fig5LatencyThreshold) > 1e-9 {
		t.Errorf("latency = %g, want 22", met.Latency)
	}
	want := 1 - (1-0.1)*(1-math.Pow(0.8, 10))
	if math.Abs(met.FailureProb-want) > 1e-12 {
		t.Errorf("FP = %g, want %g", met.FailureProb, want)
	}
}

func TestJPEGShape(t *testing.T) {
	p := JPEG(640, 480)
	if p.NumStages() != 7 {
		t.Fatalf("JPEG pipeline has %d stages, want 7", p.NumStages())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	n := float64(640 * 480)
	if p.Delta[0] != 3*n {
		t.Errorf("input size = %g, want 3N (RGB)", p.Delta[0])
	}
	if p.Delta[7] != 0.15*n {
		t.Errorf("output size = %g, want 0.15N (compressed)", p.Delta[7])
	}
	// Volumes scale linearly with pixel count.
	q := JPEG(1280, 960)
	for i := range p.W {
		if math.Abs(q.W[i]/p.W[i]-4) > 1e-9 {
			t.Errorf("W[%d] does not scale 4× with pixels", i)
		}
	}
	// The DCT and color conversion dominate computation, as in the real
	// encoder.
	if p.W[0] != p.W[3] || p.W[0] <= p.W[2] {
		t.Error("stage cost ordering broken")
	}
}

func TestRandomInstances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(8)
		for _, class := range []platform.Class{platform.FullyHomogeneous, platform.CommHomogeneous, platform.FullyHeterogeneous} {
			inst := Random(rng, class, n, m)
			if inst.Pipeline.Validate() != nil || inst.Platform.Validate() != nil {
				return false
			}
			got := inst.Platform.Classify()
			// A random "CommHom" draw can degenerate to FullyHom (equal
			// speeds) only with probability 0; FullyHet can degenerate
			// likewise. Exact class match is expected in practice.
			if m > 1 && got != class {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRandomFailureHomogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	inst := RandomFailureHomogeneous(rng, 3, 6)
	if !inst.Platform.FailureHomogeneous() {
		t.Error("platform not failure homogeneous")
	}
	if _, ok := inst.Platform.CommHomogeneous(); !ok {
		t.Error("platform not communication homogeneous")
	}
}

func TestCluster(t *testing.T) {
	pl := Cluster(2, Group{Count: 2, Speed: 1, FP: 0.05}, Group{Count: 3, Speed: 10, FP: 0.4})
	if pl.NumProcs() != 5 {
		t.Fatalf("m = %d, want 5", pl.NumProcs())
	}
	if pl.Speed[0] != 1 || pl.Speed[2] != 10 || pl.FailProb[4] != 0.4 {
		t.Error("group parameters misapplied")
	}
	if b, ok := pl.CommHomogeneous(); !ok || b != 2 {
		t.Error("cluster must be communication homogeneous")
	}
}
