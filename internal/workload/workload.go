// Package workload provides the concrete problem instances used across
// the test suite, the examples, and the benchmark harness:
//
//   - the two worked examples of the paper's Section 3 (Figures 3–4 and
//     Figure 5), reproduced parameter-for-parameter;
//   - the JPEG encoder pipeline of the companion report [3] (Benoit,
//     Kosch, Rehn-Sonigo, Robert, "Bi-criteria Pipeline Mappings for
//     Parallel Image Processing"), rebuilt from the published stage
//     structure with volumes derived from the image dimensions;
//   - seeded synthetic generators for platform-class sweeps.
package workload

import (
	"math/rand"

	"repro/internal/pipeline"
	"repro/internal/platform"
)

// Fig34 returns the paper's Figure 3 pipeline and Figure 4 platform: two
// stages (w = 2, δ = 100 everywhere) on two unit-speed processors where
// the chain P_in→P1→P2→P_out runs at bandwidth 100 and the two shortcut
// links at bandwidth 1. The latency-optimal mapping splits the stages
// (latency 7 versus 105 for any single processor).
func Fig34() (*pipeline.Pipeline, *platform.Platform) {
	p := pipeline.MustNew([]float64{2, 2}, []float64{100, 100, 100})
	pl, err := platform.NewFullyHeterogeneous(
		[]float64{1, 1},
		[]float64{0.1, 0.1}, // failure probabilities are not used by the example
		[][]float64{{0, 100}, {100, 0}},
		[]float64{100, 1},
		[]float64{1, 100},
	)
	if err != nil {
		panic(err)
	}
	return p, pl
}

// Fig5 returns the paper's Figure 5 instance: a two-stage pipeline
// (w = {1, 100}, δ = {10, 1, 0}) on one slow reliable processor (s = 1,
// fp = 0.1) plus ten fast unreliable ones (s = 100, fp = 0.8), all links
// of bandwidth 1. Under the latency threshold 22 the best single interval
// reaches FP = 0.64 while the two-interval mapping — slow stage on the
// reliable processor, fast stage replicated tenfold — reaches latency
// exactly 22 with FP = 1 − 0.9·(1 − 0.8¹⁰) ≈ 0.197.
func Fig5() (*pipeline.Pipeline, *platform.Platform) {
	p := pipeline.MustNew([]float64{1, 100}, []float64{10, 1, 0})
	speeds := []float64{1}
	fps := []float64{0.1}
	for i := 0; i < 10; i++ {
		speeds = append(speeds, 100)
		fps = append(fps, 0.8)
	}
	pl, err := platform.NewCommHomogeneous(speeds, fps, 1)
	if err != nil {
		panic(err)
	}
	return p, pl
}

// Fig5LatencyThreshold is the latency bound used throughout the Figure 5
// example.
const Fig5LatencyThreshold = 22.0

// JPEG builds the 7-stage JPEG encoder pipeline of the companion report
// [3] for an image of width×height pixels. Stage structure and volume
// ratios follow the standard encoder:
//
//	S1 RGB→YCbCr color conversion   w = 12·N     in 3·N   out 3·N
//	S2 4:2:0 chroma subsampling     w = 3·N      in 3·N   out 1.5·N
//	S3 8×8 block splitting          w = 1.5·N    in 1.5·N out 1.5·N
//	S4 forward DCT                  w = 12·N     in 1.5·N out 3·N
//	S5 quantization                 w = 3·N      in 3·N   out 1.5·N
//	S6 zigzag scan + RLE            w = 3·N      in 1.5·N out 0.6·N
//	S7 Huffman entropy coding       w = 5·N      in 0.6·N out 0.15·N
//
// with N = width·height. The absolute constants are calibrated to the
// operation counts of the textbook algorithms (3×3 matrix product per
// pixel for S1, ~12 multiply-adds per pixel for a fast 2-D DCT, …); the
// paper's analysis only depends on the ratios.
func JPEG(width, height int) *pipeline.Pipeline {
	n := float64(width * height)
	w := []float64{12 * n, 3 * n, 1.5 * n, 12 * n, 3 * n, 3 * n, 5 * n}
	delta := []float64{3 * n, 3 * n, 1.5 * n, 1.5 * n, 3 * n, 1.5 * n, 0.6 * n, 0.15 * n}
	return pipeline.MustNew(w, delta)
}

// Class mirrors platform.Class for generator selection.
type Class = platform.Class

// Instance bundles a generated problem.
type Instance struct {
	Name     string
	Pipeline *pipeline.Pipeline
	Platform *platform.Platform
}

// Random draws a synthetic instance of the given platform class with n
// stages and m processors. Stage computations are uniform in [10, 100],
// communications in [1, 20], speeds in [1, 10], failure probabilities in
// [0.01, 0.3] (heterogeneous classes) and bandwidths in [1, 10].
func Random(rng *rand.Rand, class platform.Class, n, m int) Instance {
	p := pipeline.Random(rng, n, 10, 100, 1, 20)
	var pl *platform.Platform
	switch class {
	case platform.FullyHomogeneous:
		var err error
		pl, err = platform.NewFullyHomogeneous(m, 1+rng.Float64()*9, 1+rng.Float64()*9, 0.01+rng.Float64()*0.29)
		if err != nil {
			panic(err)
		}
	case platform.CommHomogeneous:
		pl = platform.RandomCommHomogeneous(rng, m, 1, 10, 0.01, 0.3, 1+rng.Float64()*9)
	default:
		pl = platform.RandomFullyHeterogeneous(rng, m, 1, 10, 0.01, 0.3, 1, 10)
	}
	return Instance{Name: class.String(), Pipeline: p, Platform: pl}
}

// RandomFailureHomogeneous draws a Communication Homogeneous platform
// whose processors share one failure probability — the Theorem 6 class.
func RandomFailureHomogeneous(rng *rand.Rand, n, m int) Instance {
	p := pipeline.Random(rng, n, 10, 100, 1, 20)
	speeds := make([]float64, m)
	fps := make([]float64, m)
	fp := 0.01 + rng.Float64()*0.29
	for i := range speeds {
		speeds[i] = 1 + rng.Float64()*9
		fps[i] = fp
	}
	pl, err := platform.NewCommHomogeneous(speeds, fps, 1+rng.Float64()*9)
	if err != nil {
		panic(err)
	}
	return Instance{Name: "CommHom+FailureHom", Pipeline: p, Platform: pl}
}

// HeterogeneousCluster builds a deterministic "grid site" platform: mixes
// of fast-unreliable and slow-reliable processor groups, the regime the
// paper's Figure 5 example distills. groups[i] = {count, speed, fp}.
type Group struct {
	Count int
	Speed float64
	FP    float64
}

// Cluster assembles a Communication Homogeneous platform from processor
// groups with a common bandwidth.
func Cluster(bandwidth float64, groups ...Group) *platform.Platform {
	var speeds, fps []float64
	for _, g := range groups {
		for i := 0; i < g.Count; i++ {
			speeds = append(speeds, g.Speed)
			fps = append(fps, g.FP)
		}
	}
	pl, err := platform.NewCommHomogeneous(speeds, fps, bandwidth)
	if err != nil {
		panic(err)
	}
	return pl
}
