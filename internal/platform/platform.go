// Package platform models the heterogeneous target platforms of the paper:
// m processors fully interconnected as a virtual clique, plus two special
// processors P_in (holding initial data) and P_out (receiving results).
//
// Each processor P_u has a speed s_u (it executes X operations in X/s_u
// time units) and a failure probability fp_u in [0,1] (the chance that it
// breaks down at some point while the workflow runs). Each directed link
// has a bandwidth; the linear cost model charges X/b time units to move X
// data units over a link of bandwidth b. Communication contention follows
// the one-port model: a processor is involved in at most one send and one
// receive at a time.
//
// The paper distinguishes three platform classes —
//
//   - Fully Homogeneous: identical speeds and identical link bandwidths;
//   - Communication Homogeneous: identical links, heterogeneous speeds;
//   - Fully Heterogeneous: both speeds and links heterogeneous;
//
// crossed with two failure classes (Failure Homogeneous: all fp_u equal;
// Failure Heterogeneous otherwise). Class detection drives algorithm
// selection in the core solver.
package platform

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Class identifies one of the paper's three platform families.
type Class int

const (
	// FullyHomogeneous: identical processors and identical links.
	FullyHomogeneous Class = iota
	// CommHomogeneous: identical links, processor speeds may differ.
	CommHomogeneous
	// FullyHeterogeneous: both processor speeds and links may differ.
	FullyHeterogeneous
)

// String returns the paper's name for the class.
func (c Class) String() string {
	switch c {
	case FullyHomogeneous:
		return "Fully Homogeneous"
	case CommHomogeneous:
		return "Communication Homogeneous"
	case FullyHeterogeneous:
		return "Fully Heterogeneous"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Platform describes the m-processor target. All slices are indexed by
// processor id 0..m-1. Bandwidth matrices use the convention that
// B[u][v] is the bandwidth of link_{u,v}; diagonal entries are ignored
// (intra-processor transfers are free in the paper's model).
type Platform struct {
	// Speed[u] is s_u > 0.
	Speed []float64
	// FailProb[u] is fp_u in [0,1].
	FailProb []float64
	// B[u][v] is the bandwidth between P_u and P_v (u != v), > 0.
	B [][]float64
	// BIn[u] is the bandwidth of the link P_in -> P_u, > 0.
	BIn []float64
	// BOut[u] is the bandwidth of the link P_u -> P_out, > 0.
	BOut []float64
}

// NumProcs returns m, the number of (regular) processors.
func (pl *Platform) NumProcs() int { return len(pl.Speed) }

// Validate checks the structural invariants described on the fields.
func (pl *Platform) Validate() error {
	m := len(pl.Speed)
	if m == 0 {
		return fmt.Errorf("platform: must have at least one processor")
	}
	if len(pl.FailProb) != m || len(pl.B) != m || len(pl.BIn) != m || len(pl.BOut) != m {
		return fmt.Errorf("platform: inconsistent slice lengths (m=%d, fp=%d, B=%d, BIn=%d, BOut=%d)",
			m, len(pl.FailProb), len(pl.B), len(pl.BIn), len(pl.BOut))
	}
	for u := 0; u < m; u++ {
		if !(pl.Speed[u] > 0) {
			return fmt.Errorf("platform: Speed[%d]=%v must be > 0", u, pl.Speed[u])
		}
		if !(pl.FailProb[u] >= 0 && pl.FailProb[u] <= 1) {
			return fmt.Errorf("platform: FailProb[%d]=%v must be in [0,1]", u, pl.FailProb[u])
		}
		if len(pl.B[u]) != m {
			return fmt.Errorf("platform: B[%d] has length %d, want %d", u, len(pl.B[u]), m)
		}
		for v := 0; v < m; v++ {
			if u != v && !(pl.B[u][v] > 0) {
				return fmt.Errorf("platform: B[%d][%d]=%v must be > 0", u, v, pl.B[u][v])
			}
		}
		if !(pl.BIn[u] > 0) {
			return fmt.Errorf("platform: BIn[%d]=%v must be > 0", u, pl.BIn[u])
		}
		if !(pl.BOut[u] > 0) {
			return fmt.Errorf("platform: BOut[%d]=%v must be > 0", u, pl.BOut[u])
		}
	}
	return nil
}

// CommHomogeneous reports whether every link (including the input and
// output links) has the same bandwidth, and returns that bandwidth.
func (pl *Platform) CommHomogeneous() (b float64, ok bool) {
	m := pl.NumProcs()
	b = pl.BIn[0]
	for u := 0; u < m; u++ {
		if pl.BIn[u] != b || pl.BOut[u] != b {
			return 0, false
		}
		for v := 0; v < m; v++ {
			if u != v && pl.B[u][v] != b {
				return 0, false
			}
		}
	}
	return b, true
}

// SpeedHomogeneous reports whether all processors have the same speed.
func (pl *Platform) SpeedHomogeneous() bool {
	for _, s := range pl.Speed {
		if s != pl.Speed[0] {
			return false
		}
	}
	return true
}

// FailureHomogeneous reports whether all processors share one failure
// probability (the paper's "Failure Homogeneous" qualifier).
func (pl *Platform) FailureHomogeneous() bool {
	for _, f := range pl.FailProb {
		if f != pl.FailProb[0] {
			return false
		}
	}
	return true
}

// Classify returns the platform class per the paper's taxonomy.
func (pl *Platform) Classify() Class {
	if _, ok := pl.CommHomogeneous(); !ok {
		return FullyHeterogeneous
	}
	if pl.SpeedHomogeneous() {
		return FullyHomogeneous
	}
	return CommHomogeneous
}

// FastestProc returns the index of a fastest processor (lowest index on
// ties, so results are deterministic).
func (pl *Platform) FastestProc() int {
	best := 0
	for u := 1; u < pl.NumProcs(); u++ {
		if pl.Speed[u] > pl.Speed[best] {
			best = u
		}
	}
	return best
}

// ProcsBySpeedDesc returns processor ids sorted by non-increasing speed
// (stable: ties keep ascending id order), as used by Algorithms 3 and 4.
func (pl *Platform) ProcsBySpeedDesc() []int {
	ids := make([]int, pl.NumProcs())
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool { return pl.Speed[ids[a]] > pl.Speed[ids[b]] })
	return ids
}

// ProcsByReliabilityDesc returns processor ids sorted from most reliable
// (lowest fp) to least reliable, as used by Algorithms 1 and 2.
func (pl *Platform) ProcsByReliabilityDesc() []int {
	ids := make([]int, pl.NumProcs())
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool { return pl.FailProb[ids[a]] < pl.FailProb[ids[b]] })
	return ids
}

// Clone returns a deep copy.
func (pl *Platform) Clone() *Platform {
	cp := &Platform{
		Speed:    append([]float64(nil), pl.Speed...),
		FailProb: append([]float64(nil), pl.FailProb...),
		B:        make([][]float64, len(pl.B)),
		BIn:      append([]float64(nil), pl.BIn...),
		BOut:     append([]float64(nil), pl.BOut...),
	}
	for u := range pl.B {
		cp.B[u] = append([]float64(nil), pl.B[u]...)
	}
	return cp
}

// Permute returns a relabeled deep copy: processor i of the result is
// processor perm[i] of the receiver (perm maps new id -> old id), with
// link bandwidths carried along (B'[i][j] = B[perm[i]][perm[j]]).
// Diagonal entries of the result are normalized to 0 — the model ignores
// them, and a canonical relabeling must not leak whatever garbage the
// original diagonal held. It panics when perm is not a permutation of
// 0..m-1; callers (the canon package, tests) construct perms
// programmatically, so a bad one is a bug, not an input error.
func (pl *Platform) Permute(perm []int) *Platform {
	m := pl.NumProcs()
	if len(perm) != m {
		panic(fmt.Sprintf("platform: Permute with %d indices, want %d", len(perm), m))
	}
	seen := make([]bool, m)
	for _, u := range perm {
		if u < 0 || u >= m || seen[u] {
			panic(fmt.Sprintf("platform: Permute with invalid permutation %v", perm))
		}
		seen[u] = true
	}
	cp := &Platform{
		Speed:    make([]float64, m),
		FailProb: make([]float64, m),
		B:        make([][]float64, m),
		BIn:      make([]float64, m),
		BOut:     make([]float64, m),
	}
	for i, u := range perm {
		cp.Speed[i] = pl.Speed[u]
		cp.FailProb[i] = pl.FailProb[u]
		cp.BIn[i] = pl.BIn[u]
		cp.BOut[i] = pl.BOut[u]
		cp.B[i] = make([]float64, m)
		for j, v := range perm {
			if i != j {
				cp.B[i][j] = pl.B[u][v]
			}
		}
	}
	return cp
}

// String summarises the platform ("m=3 Communication Homogeneous, Failure
// Heterogeneous").
func (pl *Platform) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "m=%d %s", pl.NumProcs(), pl.Classify())
	if pl.FailureHomogeneous() {
		b.WriteString(", Failure Homogeneous")
	} else {
		b.WriteString(", Failure Heterogeneous")
	}
	return b.String()
}

type jsonPlatform struct {
	Speed    []float64   `json:"speed"`
	FailProb []float64   `json:"failProb"`
	B        [][]float64 `json:"b"`
	BIn      []float64   `json:"bIn"`
	BOut     []float64   `json:"bOut"`
}

// MarshalJSON encodes all platform parameters.
func (pl *Platform) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonPlatform{pl.Speed, pl.FailProb, pl.B, pl.BIn, pl.BOut})
}

// UnmarshalJSON decodes and validates a platform.
func (pl *Platform) UnmarshalJSON(data []byte) error {
	var jp jsonPlatform
	if err := json.Unmarshal(data, &jp); err != nil {
		return err
	}
	pl.Speed, pl.FailProb, pl.B, pl.BIn, pl.BOut = jp.Speed, jp.FailProb, jp.B, jp.BIn, jp.BOut
	return pl.Validate()
}

// uniformMatrix returns an m×m matrix filled with b off-diagonal.
func uniformMatrix(m int, b float64) [][]float64 {
	mat := make([][]float64, m)
	for u := range mat {
		mat[u] = make([]float64, m)
		for v := range mat[u] {
			if u != v {
				mat[u][v] = b
			}
		}
	}
	return mat
}

func uniformSlice(m int, x float64) []float64 {
	s := make([]float64, m)
	for i := range s {
		s[i] = x
	}
	return s
}

// NewFullyHomogeneous builds a Fully Homogeneous platform of m processors
// of speed s and failure probability fp, with all links of bandwidth b.
func NewFullyHomogeneous(m int, s, b, fp float64) (*Platform, error) {
	pl := &Platform{
		Speed:    uniformSlice(m, s),
		FailProb: uniformSlice(m, fp),
		B:        uniformMatrix(m, b),
		BIn:      uniformSlice(m, b),
		BOut:     uniformSlice(m, b),
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	return pl, nil
}

// NewCommHomogeneous builds a Communication Homogeneous platform: one
// bandwidth b for every link, per-processor speeds and failure
// probabilities.
func NewCommHomogeneous(speeds, failProbs []float64, b float64) (*Platform, error) {
	if len(speeds) != len(failProbs) {
		return nil, fmt.Errorf("platform: len(speeds)=%d != len(failProbs)=%d", len(speeds), len(failProbs))
	}
	m := len(speeds)
	pl := &Platform{
		Speed:    append([]float64(nil), speeds...),
		FailProb: append([]float64(nil), failProbs...),
		B:        uniformMatrix(m, b),
		BIn:      uniformSlice(m, b),
		BOut:     uniformSlice(m, b),
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	return pl, nil
}

// NewFullyHeterogeneous builds a platform from explicit parameter slices.
// The matrix b is copied; diagonal entries are ignored.
func NewFullyHeterogeneous(speeds, failProbs []float64, b [][]float64, bIn, bOut []float64) (*Platform, error) {
	pl := &Platform{
		Speed:    append([]float64(nil), speeds...),
		FailProb: append([]float64(nil), failProbs...),
		B:        make([][]float64, len(b)),
		BIn:      append([]float64(nil), bIn...),
		BOut:     append([]float64(nil), bOut...),
	}
	for u := range b {
		pl.B[u] = append([]float64(nil), b[u]...)
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	return pl, nil
}

// RandomCommHomogeneous draws a Communication Homogeneous platform with m
// processors, speeds uniform in [sMin,sMax], failure probabilities uniform
// in [fpMin,fpMax], and a single bandwidth b.
func RandomCommHomogeneous(rng *rand.Rand, m int, sMin, sMax, fpMin, fpMax, b float64) *Platform {
	speeds := make([]float64, m)
	fps := make([]float64, m)
	for u := 0; u < m; u++ {
		speeds[u] = sMin + rng.Float64()*(sMax-sMin)
		fps[u] = fpMin + rng.Float64()*(fpMax-fpMin)
	}
	pl, err := NewCommHomogeneous(speeds, fps, b)
	if err != nil {
		panic(err) // unreachable for valid ranges
	}
	return pl
}

// RandomFullyHeterogeneous draws a Fully Heterogeneous platform with all
// parameters uniform in the given ranges (bandwidths in [bMin,bMax],
// including input/output links).
func RandomFullyHeterogeneous(rng *rand.Rand, m int, sMin, sMax, fpMin, fpMax, bMin, bMax float64) *Platform {
	speeds := make([]float64, m)
	fps := make([]float64, m)
	bIn := make([]float64, m)
	bOut := make([]float64, m)
	b := make([][]float64, m)
	for u := 0; u < m; u++ {
		speeds[u] = sMin + rng.Float64()*(sMax-sMin)
		fps[u] = fpMin + rng.Float64()*(fpMax-fpMin)
		bIn[u] = bMin + rng.Float64()*(bMax-bMin)
		bOut[u] = bMin + rng.Float64()*(bMax-bMin)
		b[u] = make([]float64, m)
	}
	// Links are bidirectional in the paper (link_{u,v} between each pair),
	// so keep the bandwidth matrix symmetric.
	for u := 0; u < m; u++ {
		for v := u + 1; v < m; v++ {
			bw := bMin + rng.Float64()*(bMax-bMin)
			b[u][v], b[v][u] = bw, bw
		}
	}
	pl, err := NewFullyHeterogeneous(speeds, fps, b, bIn, bOut)
	if err != nil {
		panic(err) // unreachable for valid ranges
	}
	return pl
}
