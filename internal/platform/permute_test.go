package platform

import (
	"math/rand"
	"testing"
)

func TestPermuteRelabels(t *testing.T) {
	pl, err := NewFullyHeterogeneous(
		[]float64{1, 2, 3},
		[]float64{0.1, 0.2, 0.3},
		[][]float64{
			{0, 12, 13},
			{21, 0, 23},
			{31, 32, 0},
		},
		[]float64{101, 102, 103},
		[]float64{201, 202, 203},
	)
	if err != nil {
		t.Fatal(err)
	}
	perm := []int{2, 0, 1} // new id -> old id
	got := pl.Permute(perm)
	if err := got.Validate(); err != nil {
		t.Fatalf("permuted platform invalid: %v", err)
	}
	for i, u := range perm {
		if got.Speed[i] != pl.Speed[u] || got.FailProb[i] != pl.FailProb[u] ||
			got.BIn[i] != pl.BIn[u] || got.BOut[i] != pl.BOut[u] {
			t.Fatalf("per-proc attrs not carried for new id %d (old %d)", i, u)
		}
		for j, v := range perm {
			want := pl.B[u][v]
			if i == j {
				want = 0
			}
			if got.B[i][j] != want {
				t.Fatalf("B[%d][%d]=%v, want %v", i, j, got.B[i][j], want)
			}
		}
	}
	// The original must be untouched (deep copy).
	if pl.B[0][1] != 12 || pl.Speed[0] != 1 {
		t.Fatal("Permute mutated the receiver")
	}
}

func TestPermuteIdentityEqualsClone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pl := RandomFullyHeterogeneous(rng, 6, 1, 10, 0, 1, 1, 5)
	id := []int{0, 1, 2, 3, 4, 5}
	got := pl.Permute(id)
	for u := 0; u < 6; u++ {
		if got.Speed[u] != pl.Speed[u] || got.FailProb[u] != pl.FailProb[u] {
			t.Fatalf("identity permute changed processor %d", u)
		}
		for v := 0; v < 6; v++ {
			if u != v && got.B[u][v] != pl.B[u][v] {
				t.Fatalf("identity permute changed B[%d][%d]", u, v)
			}
		}
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pl := RandomFullyHeterogeneous(rng, 8, 1, 10, 0, 1, 1, 5)
	perm := rng.Perm(8)
	inv := make([]int, 8)
	for i, u := range perm {
		inv[u] = i
	}
	back := pl.Permute(perm).Permute(inv)
	for u := 0; u < 8; u++ {
		if back.Speed[u] != pl.Speed[u] || back.FailProb[u] != pl.FailProb[u] ||
			back.BIn[u] != pl.BIn[u] || back.BOut[u] != pl.BOut[u] {
			t.Fatalf("round trip changed processor %d", u)
		}
		for v := 0; v < 8; v++ {
			if u != v && back.B[u][v] != pl.B[u][v] {
				t.Fatalf("round trip changed B[%d][%d]", u, v)
			}
		}
	}
}

func TestPermutePanicsOnInvalid(t *testing.T) {
	pl, err := NewFullyHomogeneous(3, 1, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, perm := range [][]int{
		{0, 1},          // wrong length
		{0, 1, 1},       // duplicate
		{0, 1, 3},       // out of range
		{-1, 1, 2},      // negative
		{0, 1, 2, 3, 4}, // too long
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Permute(%v) did not panic", perm)
				}
			}()
			pl.Permute(perm)
		}()
	}
}
