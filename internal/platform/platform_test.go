package platform

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFullyHomogeneous(t *testing.T) {
	pl, err := NewFullyHomogeneous(4, 2, 10, 0.1)
	if err != nil {
		t.Fatalf("NewFullyHomogeneous: %v", err)
	}
	if pl.NumProcs() != 4 {
		t.Fatalf("NumProcs = %d, want 4", pl.NumProcs())
	}
	if got := pl.Classify(); got != FullyHomogeneous {
		t.Errorf("Classify = %v, want FullyHomogeneous", got)
	}
	if !pl.FailureHomogeneous() {
		t.Error("FailureHomogeneous = false, want true")
	}
	if b, ok := pl.CommHomogeneous(); !ok || b != 10 {
		t.Errorf("CommHomogeneous = (%g,%v), want (10,true)", b, ok)
	}
}

func TestNewCommHomogeneous(t *testing.T) {
	pl, err := NewCommHomogeneous([]float64{1, 2, 3}, []float64{0.1, 0.2, 0.3}, 5)
	if err != nil {
		t.Fatalf("NewCommHomogeneous: %v", err)
	}
	if got := pl.Classify(); got != CommHomogeneous {
		t.Errorf("Classify = %v, want CommHomogeneous", got)
	}
	if pl.FailureHomogeneous() {
		t.Error("FailureHomogeneous = true, want false")
	}
}

func TestNewFullyHeterogeneous(t *testing.T) {
	b := [][]float64{{0, 1}, {1, 0}}
	pl, err := NewFullyHeterogeneous([]float64{1, 2}, []float64{0, 0}, b, []float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatalf("NewFullyHeterogeneous: %v", err)
	}
	if got := pl.Classify(); got != FullyHeterogeneous {
		t.Errorf("Classify = %v, want FullyHeterogeneous", got)
	}
}

func TestClassifyBoundaries(t *testing.T) {
	// Same bandwidth everywhere but heterogeneous speeds -> CommHom.
	pl, _ := NewCommHomogeneous([]float64{1, 2}, []float64{0, 0}, 1)
	if pl.Classify() != CommHomogeneous {
		t.Error("expected CommHomogeneous")
	}
	// One deviant internal link -> FullyHet.
	pl2 := pl.Clone()
	pl2.B[0][1] = 2
	if pl2.Classify() != FullyHeterogeneous {
		t.Error("deviant internal link should make platform FullyHeterogeneous")
	}
	// One deviant input link -> FullyHet.
	pl3 := pl.Clone()
	pl3.BIn[1] = 9
	if pl3.Classify() != FullyHeterogeneous {
		t.Error("deviant input link should make platform FullyHeterogeneous")
	}
	// One deviant output link -> FullyHet.
	pl4 := pl.Clone()
	pl4.BOut[0] = 9
	if pl4.Classify() != FullyHeterogeneous {
		t.Error("deviant output link should make platform FullyHeterogeneous")
	}
}

func TestValidateErrors(t *testing.T) {
	good, _ := NewFullyHomogeneous(2, 1, 1, 0.5)
	cases := []struct {
		name   string
		mutate func(*Platform)
	}{
		{"zero speed", func(p *Platform) { p.Speed[0] = 0 }},
		{"negative speed", func(p *Platform) { p.Speed[1] = -1 }},
		{"fp above 1", func(p *Platform) { p.FailProb[0] = 1.5 }},
		{"fp below 0", func(p *Platform) { p.FailProb[0] = -0.1 }},
		{"zero bandwidth", func(p *Platform) { p.B[0][1] = 0 }},
		{"zero BIn", func(p *Platform) { p.BIn[0] = 0 }},
		{"zero BOut", func(p *Platform) { p.BOut[1] = 0 }},
		{"short FailProb", func(p *Platform) { p.FailProb = p.FailProb[:1] }},
		{"ragged B", func(p *Platform) { p.B[0] = p.B[0][:1] }},
		{"short B", func(p *Platform) { p.B = p.B[:1] }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pl := good.Clone()
			c.mutate(pl)
			if err := pl.Validate(); err == nil {
				t.Errorf("Validate accepted %s", c.name)
			}
		})
	}
	empty := &Platform{}
	if err := empty.Validate(); err == nil {
		t.Error("Validate accepted empty platform")
	}
}

func TestFastestProc(t *testing.T) {
	pl, _ := NewCommHomogeneous([]float64{1, 5, 3, 5}, []float64{0, 0, 0, 0}, 1)
	if got := pl.FastestProc(); got != 1 {
		t.Errorf("FastestProc = %d, want 1 (first of the tied fastest)", got)
	}
}

func TestProcsBySpeedDesc(t *testing.T) {
	pl, _ := NewCommHomogeneous([]float64{1, 5, 3}, []float64{0, 0, 0}, 1)
	got := pl.ProcsBySpeedDesc()
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ProcsBySpeedDesc = %v, want %v", got, want)
		}
	}
}

func TestProcsByReliabilityDesc(t *testing.T) {
	pl, _ := NewCommHomogeneous([]float64{1, 1, 1}, []float64{0.5, 0.1, 0.3}, 1)
	got := pl.ProcsByReliabilityDesc()
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ProcsByReliabilityDesc = %v, want %v", got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	pl, _ := NewFullyHomogeneous(3, 1, 1, 0.2)
	cp := pl.Clone()
	cp.Speed[0] = 42
	cp.B[0][1] = 99
	if pl.Speed[0] == 42 || pl.B[0][1] == 99 {
		t.Error("Clone shares memory with original")
	}
}

func TestString(t *testing.T) {
	pl, _ := NewCommHomogeneous([]float64{1, 2}, []float64{0.1, 0.2}, 1)
	s := pl.String()
	if s != "m=2 Communication Homogeneous, Failure Heterogeneous" {
		t.Errorf("String = %q", s)
	}
	pl2, _ := NewFullyHomogeneous(2, 1, 1, 0.1)
	if got := pl2.String(); got != "m=2 Fully Homogeneous, Failure Homogeneous" {
		t.Errorf("String = %q", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pl := RandomFullyHeterogeneous(rng, 5, 1, 10, 0, 1, 1, 100)
	data, err := json.Marshal(pl)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var q Platform
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if q.NumProcs() != pl.NumProcs() || q.Classify() != pl.Classify() {
		t.Error("round trip changed platform")
	}
	for u := 0; u < pl.NumProcs(); u++ {
		if q.Speed[u] != pl.Speed[u] || q.FailProb[u] != pl.FailProb[u] {
			t.Fatalf("proc %d parameters changed in round trip", u)
		}
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var q Platform
	if err := json.Unmarshal([]byte(`{"speed":[1],"failProb":[2],"b":[[0]],"bIn":[1],"bOut":[1]}`), &q); err == nil {
		t.Error("Unmarshal accepted fp=2")
	}
}

func TestRandomGeneratorsDeterministic(t *testing.T) {
	a := RandomCommHomogeneous(rand.New(rand.NewSource(3)), 6, 1, 4, 0, 0.5, 2)
	b := RandomCommHomogeneous(rand.New(rand.NewSource(3)), 6, 1, 4, 0, 0.5, 2)
	for u := range a.Speed {
		if a.Speed[u] != b.Speed[u] || a.FailProb[u] != b.FailProb[u] {
			t.Fatal("same seed produced different CommHom platforms")
		}
	}
}

func TestRandomFullyHetSymmetricBandwidth(t *testing.T) {
	pl := RandomFullyHeterogeneous(rand.New(rand.NewSource(11)), 8, 1, 2, 0, 1, 1, 10)
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			if u != v && pl.B[u][v] != pl.B[v][u] {
				t.Fatalf("B[%d][%d]=%g != B[%d][%d]=%g", u, v, pl.B[u][v], v, u, pl.B[v][u])
			}
		}
	}
}

// Property: random platforms always validate, classify consistently, and
// generator ranges are respected.
func TestRandomPlatformProperties(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		m := int(mRaw%12) + 1
		rng := rand.New(rand.NewSource(seed))
		pl := RandomFullyHeterogeneous(rng, m, 1, 10, 0, 1, 1, 100)
		if pl.Validate() != nil {
			return false
		}
		for u := 0; u < m; u++ {
			if pl.Speed[u] < 1 || pl.Speed[u] > 10 {
				return false
			}
			if pl.FailProb[u] < 0 || pl.FailProb[u] > 1 {
				return false
			}
		}
		// Sorted orders must be permutations of 0..m-1.
		seen := make([]bool, m)
		for _, id := range pl.ProcsBySpeedDesc() {
			if id < 0 || id >= m || seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestClassString(t *testing.T) {
	if FullyHomogeneous.String() != "Fully Homogeneous" ||
		CommHomogeneous.String() != "Communication Homogeneous" ||
		FullyHeterogeneous.String() != "Fully Heterogeneous" {
		t.Error("Class.String mismatch")
	}
	if Class(99).String() != "Class(99)" {
		t.Error("unknown class String mismatch")
	}
}
