package throughput

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/exact"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// The tri-criteria enumerations ride on exact.ForEachMappingParallel,
// which past m = 62 (replication) switches to the multi-word wide
// search. These tests pin the wide plumbing: budgets trip cleanly,
// cancellation returns promptly, and PeriodOverlap accepts replica ids
// beyond bit 64.

func TestMinPeriodWideBudgetTrips(t *testing.T) {
	p := pipeline.Uniform(1, 1, 1)
	pl, err := platform.NewFullyHomogeneous(65, 1, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_, err = MinPeriodUnderConstraints(p, pl, math.Inf(1), 1, exact.Options{MaxEnum: 10})
	if !errors.Is(err, exact.ErrBudget) {
		t.Errorf("err = %v, want exact.ErrBudget via the wide search", err)
	}
}

func TestTriParetoWideCancelPrompt(t *testing.T) {
	p := pipeline.Uniform(4, 2, 1)
	pl, err := platform.NewFullyHomogeneous(70, 1, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	front, err := TriPareto(p, pl, exact.Options{MaxEnum: 1 << 62, Ctx: ctx})
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("canceled wide TriPareto took %v, want well under 500ms", elapsed)
	}
	if !errors.Is(err, exact.ErrCanceled) {
		t.Fatalf("err = %v, want exact.ErrCanceled", err)
	}
	if front == nil {
		t.Fatal("canceled TriPareto must surface its partial front")
	}
}

func TestPeriodOverlapHighReplicaIDs(t *testing.T) {
	m := 80
	p := pipeline.Uniform(2, 4, 1)
	pl, err := platform.NewFullyHomogeneous(m, 2, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	mp := &mapping.Mapping{
		Intervals: []mapping.Interval{{First: 0, Last: 0}, {First: 1, Last: 1}},
		Alloc:     [][]int{{3, 70}, {79}},
	}
	period, err := PeriodOverlap(p, pl, mp)
	if err != nil {
		t.Fatalf("PeriodOverlap at m=80: %v", err)
	}
	if period <= 0 || math.IsInf(period, 0) || math.IsNaN(period) {
		t.Errorf("period = %v, want a positive finite value", period)
	}
	// GreedyRR must accept and improve wide mappings too.
	res, err := GreedyRR(context.Background(), p, pl, mp, math.Inf(1), 1)
	if err != nil {
		t.Fatalf("GreedyRR at m=80: %v", err)
	}
	if res.Mapping == nil || res.Metrics.Period <= 0 {
		t.Errorf("GreedyRR returned %+v", res)
	}
}
