package throughput

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// RRMapping combines the paper's two replication types. Each interval is
// served by one or more *groups*; consecutive data sets are dealt to the
// groups round-robin (data parallelism, raising throughput), and within a
// group every processor runs identical computations (reliability
// replication, lowering the failure probability).
//
// Groups[j][g] is the replica set of group g of interval j. An RRMapping
// with a single group per interval is exactly the paper's interval
// mapping.
type RRMapping struct {
	Intervals []mapping.Interval `json:"intervals"`
	Groups    [][][]int          `json:"groups"`
}

// FromMapping wraps a reliability-only interval mapping as an RRMapping
// with one group per interval.
func FromMapping(m *mapping.Mapping) *RRMapping {
	r := &RRMapping{Intervals: append([]mapping.Interval(nil), m.Intervals...)}
	for _, procs := range m.Alloc {
		r.Groups = append(r.Groups, [][]int{append([]int(nil), procs...)})
	}
	return r
}

// Flatten returns the underlying interval mapping when every interval has
// exactly one group (ok=false otherwise).
func (r *RRMapping) Flatten() (*mapping.Mapping, bool) {
	m := &mapping.Mapping{Intervals: append([]mapping.Interval(nil), r.Intervals...)}
	for _, groups := range r.Groups {
		if len(groups) != 1 {
			return nil, false
		}
		m.Alloc = append(m.Alloc, append([]int(nil), groups[0]...))
	}
	return m, true
}

// Validate checks the interval partition, non-empty groups, and global
// processor disjointness (a processor serves one group of one interval).
func (r *RRMapping) Validate(n, mProcs int) error {
	if len(r.Intervals) == 0 || len(r.Groups) != len(r.Intervals) {
		return fmt.Errorf("throughput: %d intervals but %d group lists", len(r.Intervals), len(r.Groups))
	}
	next := 0
	for j, iv := range r.Intervals {
		if iv.First != next || iv.Last < iv.First {
			return fmt.Errorf("throughput: interval %d = %v does not continue the partition", j, iv)
		}
		next = iv.Last + 1
	}
	if next != n {
		return fmt.Errorf("throughput: intervals cover stages up to %d, want %d", next-1, n-1)
	}
	used := make(map[int]bool)
	for j, groups := range r.Groups {
		if len(groups) == 0 {
			return fmt.Errorf("throughput: interval %d has no groups", j)
		}
		for g, procs := range groups {
			if len(procs) == 0 {
				return fmt.Errorf("throughput: interval %d group %d is empty", j, g)
			}
			for _, u := range procs {
				if u < 0 || u >= mProcs {
					return fmt.Errorf("throughput: invalid processor %d", u)
				}
				if used[u] {
					return fmt.Errorf("throughput: processor %d used twice", u)
				}
				used[u] = true
			}
		}
	}
	return nil
}

// String renders "[S1]->{P1|P2,P3}": groups separated by '|'.
func (r *RRMapping) String() string {
	var b strings.Builder
	for j, iv := range r.Intervals {
		if j > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(iv.String())
		b.WriteString("->{")
		for g, procs := range r.Groups[j] {
			if g > 0 {
				b.WriteByte('|')
			}
			for i, u := range procs {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "P%d", u+1)
			}
		}
		b.WriteByte('}')
	}
	return b.String()
}

// FailureProb: the application fails if any group of any interval loses
// all of its replicas — each group owns a share of the data sets, so a
// dead group means lost data sets even though the other groups survive:
//
//	FP = 1 − Π_j Π_g (1 − Π_{u∈Groups[j][g]} fp_u)
func (r *RRMapping) FailureProb(pl *platform.Platform) float64 {
	success := 1.0
	for _, groups := range r.Groups {
		for _, procs := range groups {
			q := 1.0
			for _, u := range procs {
				q *= pl.FailProb[u]
			}
			success *= 1 - q
		}
	}
	return 1 - success
}

// Latency: a data set traverses one group per interval; the worst case
// takes, per interval, the group with the largest Eq. (2)-style term
// (serialized input copies to the group, slowest replica, outgoing chain
// toward the worst next-interval group).
func (r *RRMapping) Latency(p *pipeline.Pipeline, pl *platform.Platform) (float64, error) {
	if err := r.Validate(p.NumStages(), pl.NumProcs()); err != nil {
		return 0, err
	}
	return r.latency(p, pl), nil
}

// latency is Latency without the validation walk, for mappings valid by
// construction (see evaluateTrusted).
func (r *RRMapping) latency(p *pipeline.Pipeline, pl *platform.Platform) float64 {
	total := 0.0
	// Worst first-interval group for the input copies.
	worstIn := 0.0
	for _, g := range r.Groups[0] {
		in := 0.0
		for _, u := range g {
			in += p.InputSize(r.Intervals[0].First) / pl.BIn[u]
		}
		if in > worstIn {
			worstIn = in
		}
	}
	total += worstIn
	for j, iv := range r.Intervals {
		work := p.Work(iv.First, iv.Last)
		out := p.OutputSize(iv.Last)
		worst := math.Inf(-1)
		for _, g := range r.Groups[j] {
			for _, u := range g {
				term := work / pl.Speed[u]
				if j == len(r.Intervals)-1 {
					term += out / pl.BOut[u]
				} else {
					// Worst-case next group.
					worstSend := 0.0
					for _, ng := range r.Groups[j+1] {
						send := 0.0
						for _, v := range ng {
							send += out / pl.B[u][v]
						}
						if send > worstSend {
							worstSend = send
						}
					}
					term += worstSend
				}
				if term > worst {
					worst = term
				}
			}
		}
		total += worst
	}
	return total
}

// Period: each group of interval j serves one data set out of G_j, so its
// resource cycles shrink by the factor G_j. The overall period is the
// bottleneck over P_in (which still touches every data set), every
// group's compute/receive cycles, and every group sender's outgoing chain.
func (r *RRMapping) Period(p *pipeline.Pipeline, pl *platform.Platform) (float64, error) {
	if err := r.Validate(p.NumStages(), pl.NumProcs()); err != nil {
		return 0, err
	}
	return r.period(p, pl), nil
}

// period is Period without the validation walk, for mappings valid by
// construction (see evaluateTrusted).
func (r *RRMapping) period(p *pipeline.Pipeline, pl *platform.Platform) float64 {
	period := 0.0
	upd := func(x float64) {
		if x > period {
			period = x
		}
	}
	// P_in sends every data set to each replica of the target group;
	// averaged over the round-robin the per-data-set cost is the mean
	// group fan-out.
	pinTotal := 0.0
	for _, g := range r.Groups[0] {
		for _, u := range g {
			pinTotal += p.InputSize(r.Intervals[0].First) / pl.BIn[u]
		}
	}
	upd(pinTotal / float64(len(r.Groups[0])))

	for j, iv := range r.Intervals {
		work := p.Work(iv.First, iv.Last)
		in := p.InputSize(iv.First)
		out := p.OutputSize(iv.Last)
		gj := float64(len(r.Groups[j]))
		// Receive cycles: each replica gets one data set out of G_j from
		// the previous interval's (worst-case) group sender.
		if j > 0 {
			for _, g := range r.Groups[j] {
				for _, u := range g {
					worstRecv := 0.0
					for pg := range r.Groups[j-1] {
						w := r.electGroupSender(p, pl, j-1, pg)
						if rc := in / pl.B[w][u]; rc > worstRecv {
							worstRecv = rc
						}
					}
					upd(worstRecv / gj)
				}
			}
		}
		for _, g := range r.Groups[j] {
			// The group's worst-case sender is elected by the same rule as
			// everywhere else: the replica maximizing compute + outgoing
			// chain. As in PeriodOverlap, only the elected replica's
			// compute gates the group's share of the output stream.
			bestTerm, senderCycle, senderComp := math.Inf(-1), 0.0, 0.0
			for _, u := range g {
				// Outgoing chain if u were the group's sender.
				cycle := 0.0
				if j == len(r.Intervals)-1 {
					cycle = out / pl.BOut[u]
				} else {
					worstSend := 0.0
					for _, ng := range r.Groups[j+1] {
						send := 0.0
						for _, v := range ng {
							send += out / pl.B[u][v]
						}
						if send > worstSend {
							worstSend = send
						}
					}
					cycle = worstSend
				}
				comp := work / pl.Speed[u]
				if term := comp + cycle; term > bestTerm {
					bestTerm, senderCycle, senderComp = term, cycle, comp
				}
			}
			upd(senderComp / gj)
			upd(senderCycle / gj)
		}
		_ = iv
	}
	return period
}

// electGroupSender returns the worst-case sender of group g of interval
// j: the replica maximizing compute plus the worst outgoing chain, the
// same election rule as the latency formulas and the simulator.
func (r *RRMapping) electGroupSender(p *pipeline.Pipeline, pl *platform.Platform, j, g int) int {
	iv := r.Intervals[j]
	work := p.Work(iv.First, iv.Last)
	out := p.OutputSize(iv.Last)
	best, bestTerm := -1, math.Inf(-1)
	for _, u := range r.Groups[j][g] {
		term := work / pl.Speed[u]
		if j == len(r.Intervals)-1 {
			term += out / pl.BOut[u]
		} else {
			worstSend := 0.0
			for _, ng := range r.Groups[j+1] {
				send := 0.0
				for _, v := range ng {
					send += out / pl.B[u][v]
				}
				if send > worstSend {
					worstSend = send
				}
			}
			term += worstSend
		}
		if term > bestTerm {
			best, bestTerm = u, term
		}
	}
	return best
}

// Metrics bundles the three criteria of the extension.
type Metrics struct {
	Latency     float64
	FailureProb float64
	Period      float64
}

// Evaluate computes all three criteria.
func (r *RRMapping) Evaluate(p *pipeline.Pipeline, pl *platform.Platform) (Metrics, error) {
	if err := r.Validate(p.NumStages(), pl.NumProcs()); err != nil {
		return Metrics{}, err
	}
	return r.evaluateTrusted(p, pl), nil
}

// evaluateTrusted is Evaluate for mappings known valid by construction —
// the grouping sweeps enumerate set partitions of interval mappings the
// engine already validated, so re-walking every replica set (and
// allocating Validate's seen-map) once per grouping would dominate sweep
// time. Metric values are identical to Evaluate's.
func (r *RRMapping) evaluateTrusted(p *pipeline.Pipeline, pl *platform.Platform) Metrics {
	return Metrics{
		Latency:     r.latency(p, pl),
		FailureProb: r.FailureProb(pl),
		Period:      r.period(p, pl),
	}
}

// Dominates is three-way Pareto dominance (all ≤, one <).
func (a Metrics) Dominates(b Metrics) bool {
	if a.Latency > b.Latency || a.FailureProb > b.FailureProb || a.Period > b.Period {
		return false
	}
	return a.Latency < b.Latency || a.FailureProb < b.FailureProb || a.Period < b.Period
}

// TriEntry is one point of a three-criteria front. Task is the discovery
// tag used by the parallel enumeration to keep duplicate-point
// representatives deterministic (see frontier.Entry.Task).
type TriEntry struct {
	Metrics Metrics
	Mapping *RRMapping
	Task    int64
}

// TriFront is a set of mutually non-dominated three-criteria points.
type TriFront struct {
	entries []TriEntry
}

// Len returns the number of points.
func (f *TriFront) Len() int { return len(f.entries) }

// Entries returns the points sorted by (latency, period).
func (f *TriFront) Entries() []TriEntry {
	sort.Slice(f.entries, func(i, j int) bool {
		a, b := f.entries[i].Metrics, f.entries[j].Metrics
		if a.Latency != b.Latency {
			return a.Latency < b.Latency
		}
		return a.Period < b.Period
	})
	return f.entries
}

// Insert offers a point; dominated or duplicate points are rejected and
// newly dominated points evicted.
func (f *TriFront) Insert(met Metrics, m *RRMapping) bool {
	return f.InsertTagged(met, m, 0)
}

// InsertTagged is Insert with the deterministic duplicate tie-break of
// frontier.Front.InsertTagged: an exactly-equal metric point replaces the
// existing representative when task is strictly lower.
func (f *TriFront) InsertTagged(met Metrics, m *RRMapping, task int64) bool {
	return f.insert(met, m, task, true)
}

// InsertOwned is InsertTagged taking ownership of m instead of cloning it
// (for merging per-worker fronts about to be discarded).
func (f *TriFront) InsertOwned(met Metrics, m *RRMapping, task int64) bool {
	return f.insert(met, m, task, false)
}

func (f *TriFront) insert(met Metrics, m *RRMapping, task int64, clone bool) bool {
	cp := func() *RRMapping {
		if clone {
			return cloneRROrNil(m)
		}
		return m
	}
	for i := range f.entries {
		e := &f.entries[i]
		if e.Metrics == met {
			if task < e.Task {
				e.Task = task
				e.Mapping = cp()
			}
			return false
		}
		if e.Metrics.Dominates(met) {
			return false
		}
	}
	keep := f.entries[:0]
	for _, e := range f.entries {
		if !met.Dominates(e.Metrics) {
			keep = append(keep, e)
		}
	}
	f.entries = append(keep, TriEntry{Metrics: met, Mapping: cp(), Task: task})
	return true
}
