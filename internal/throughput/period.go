// Package throughput implements the paper's announced future work
// (Section 5): the interplay between throughput, latency and reliability.
//
// For streaming workloads the steady-state *period* P — the inverse of the
// throughput — is the time between consecutive data sets leaving the
// pipeline. Two classic machine models are provided:
//
//   - PeriodOverlap: every processor owns independent receive, compute and
//     send resources (communication/computation overlap); the period is
//     the cycle time of the bottleneck resource. This matches the
//     discrete-event simulator of package sim exactly (tests enforce
//     equality of the simulated steady state).
//
//   - PeriodNoOverlap: a processor performs its receive, compute and send
//     phases sequentially (the non-overlap model of the multi-criteria
//     companion papers [4,5]); the period is the largest per-processor
//     sum. It upper-bounds the overlap period.
//
// The package also implements the paper's "second type of replication":
// round-robin data parallelism, where an interval is served by several
// replica groups that process data sets in turn (RRMapping). Round-robin
// groups divide the period but multiply the failure modes — every group
// must survive, since each one owns a share of the data sets — which is
// precisely the three-way trade-off the paper's future work points at.
package throughput

import (
	"math"

	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// senderOf returns the worst-case elected sender of interval j (the
// replica maximizing compute plus outgoing communication, as in the
// latency formulas and the worst-case simulator).
func senderOf(p *pipeline.Pipeline, pl *platform.Platform, m *mapping.Mapping, j int) int {
	iv := m.Intervals[j]
	work := p.Work(iv.First, iv.Last)
	out := p.OutputSize(iv.Last)
	best, bestTerm := -1, math.Inf(-1)
	for _, u := range m.Alloc[j] {
		term := work / pl.Speed[u]
		if j == len(m.Intervals)-1 {
			term += out / pl.BOut[u]
		} else {
			for _, v := range m.Alloc[j+1] {
				term += out / pl.B[u][v]
			}
		}
		if term > bestTerm {
			best, bestTerm = u, term
		}
	}
	return best
}

// PeriodOverlap computes the steady-state period of the worst-case
// schedule under the overlap model: the maximum, over every resource on
// the output-gating dataflow, of that resource's busy time per data set:
//
//   - P_in's send port:        Σ_{u∈alloc(1)} δ_{d_1−1}/b_{in,u}
//   - each sender's compute:   W_j/s_{sender_j}
//   - each receiver's port:    δ_{d_j−1}/b_{sender_{j−1},u}
//   - each sender's send port: Σ_{v∈alloc(j+1)} δ_{e_j}/b_{sender_j,v}
//   - P_out's receive port:    δ_n/b_{sender_p,out}
//
// where sender_j is the worst-case elected replica of interval j. Only
// the elected replicas' compute cycles gate the output stream — the other
// replicas compute in parallel behind their own (unbounded) queues. The
// discrete-event simulator's steady-state inter-completion gap equals
// this value exactly (tests enforce it); use PeriodSustainable when every
// hot standby must also keep up with the stream.
func PeriodOverlap(p *pipeline.Pipeline, pl *platform.Platform, m *mapping.Mapping) (float64, error) {
	if err := m.Validate(p.NumStages(), pl.NumProcs()); err != nil {
		return 0, err
	}
	period := 0.0
	upd := func(x float64) {
		if x > period {
			period = x
		}
	}
	// P_in serializes one copy per replica of the first interval.
	pinCycle := 0.0
	for _, u := range m.Alloc[0] {
		pinCycle += p.InputSize(m.Intervals[0].First) / pl.BIn[u]
	}
	upd(pinCycle)

	for j, iv := range m.Intervals {
		work := p.Work(iv.First, iv.Last)
		s := senderOf(p, pl, m, j)
		// Compute cycle of the output-gating (elected) replica.
		upd(work / pl.Speed[s])
		// Receive cycles: each replica of interval j receives one copy per
		// data set from the previous sender (P_in handled above), and the
		// chain's last arrival gates the next barrier.
		if j > 0 {
			w := senderOf(p, pl, m, j-1)
			in := p.InputSize(iv.First)
			for _, u := range m.Alloc[j] {
				upd(in / pl.B[w][u])
			}
		}
		// Send cycle of this interval's elected sender.
		out := p.OutputSize(iv.Last)
		if j == len(m.Intervals)-1 {
			upd(out / pl.BOut[s])
		} else {
			sendCycle := 0.0
			for _, v := range m.Alloc[j+1] {
				sendCycle += out / pl.B[s][v]
			}
			upd(sendCycle)
		}
	}
	return period, nil
}

// PeriodSustainable is PeriodOverlap with every replica's compute cycle
// included: the smallest period at which no processor's queue diverges,
// i.e. at which all hot standbys keep pace with the stream and remain
// usable as failover targets. PeriodOverlap ≤ PeriodSustainable ≤
// PeriodNoOverlap.
func PeriodSustainable(p *pipeline.Pipeline, pl *platform.Platform, m *mapping.Mapping) (float64, error) {
	period, err := PeriodOverlap(p, pl, m)
	if err != nil {
		return 0, err
	}
	for j, iv := range m.Intervals {
		work := p.Work(iv.First, iv.Last)
		for _, u := range m.Alloc[j] {
			if c := work / pl.Speed[u]; c > period {
				period = c
			}
		}
	}
	return period, nil
}

// PeriodNoOverlap computes the steady-state period under the non-overlap
// model: each processor's receive + compute + send phases serialize, so
// its cycle is their sum; the period is the worst cycle (with P_in and
// P_out cycles as in the overlap model).
func PeriodNoOverlap(p *pipeline.Pipeline, pl *platform.Platform, m *mapping.Mapping) (float64, error) {
	if err := m.Validate(p.NumStages(), pl.NumProcs()); err != nil {
		return 0, err
	}
	period := 0.0
	upd := func(x float64) {
		if x > period {
			period = x
		}
	}
	pinCycle := 0.0
	for _, u := range m.Alloc[0] {
		pinCycle += p.InputSize(m.Intervals[0].First) / pl.BIn[u]
	}
	upd(pinCycle)

	for j, iv := range m.Intervals {
		work := p.Work(iv.First, iv.Last)
		in := p.InputSize(iv.First)
		out := p.OutputSize(iv.Last)
		s := senderOf(p, pl, m, j)
		for _, u := range m.Alloc[j] {
			cycle := work / pl.Speed[u]
			// Receive one copy per data set.
			if j == 0 {
				cycle += in / pl.BIn[u]
			} else {
				w := senderOf(p, pl, m, j-1)
				cycle += in / pl.B[w][u]
			}
			// Only the elected sender pays the outgoing chain.
			if u == s {
				if j == len(m.Intervals)-1 {
					cycle += out / pl.BOut[u]
				} else {
					for _, v := range m.Alloc[j+1] {
						cycle += out / pl.B[u][v]
					}
				}
			}
			upd(cycle)
		}
	}
	return period, nil
}

// Throughput returns data sets per time unit under the overlap model.
func Throughput(p *pipeline.Pipeline, pl *platform.Platform, m *mapping.Mapping) (float64, error) {
	period, err := PeriodOverlap(p, pl, m)
	if err != nil {
		return 0, err
	}
	if period == 0 {
		return math.Inf(1), nil
	}
	return 1 / period, nil
}
