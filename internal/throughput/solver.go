package throughput

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/exact"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

// ErrInfeasible is returned when the tri-criteria enumeration finds no
// RR mapping within both thresholds.
var ErrInfeasible = errors.New("throughput: no RR mapping satisfies the constraints")

// TriResult is a solved tri-criteria instance.
type TriResult struct {
	Mapping *RRMapping
	Metrics Metrics
}

const latencyTol = 1e-9

func leqTol(x, bound float64) bool {
	return x <= bound+latencyTol*math.Max(1, math.Abs(bound))
}

// forEachGrouping enumerates every partition of procs into non-empty
// groups (set partitions, by restricted growth strings) and calls visit
// with each grouping. The slices passed to visit are reused.
func forEachGrouping(procs []int, visit func(groups [][]int) bool) bool {
	k := len(procs)
	rgs := make([]int, k) // rgs[i] = group of procs[i]
	maxSeen := make([]int, k)
	var rec func(i, top int) bool
	rec = func(i, top int) bool {
		if i == k {
			groups := make([][]int, top+1)
			for idx, g := range rgs {
				groups[g] = append(groups[g], procs[idx])
			}
			return visit(groups)
		}
		for g := 0; g <= top+1 && g < k; g++ {
			rgs[i] = g
			nt := top
			if g > top {
				nt = g
			}
			maxSeen[i] = nt
			if !rec(i+1, nt) {
				return false
			}
		}
		return true
	}
	if k == 0 {
		return true
	}
	rgs[0] = 0
	return rec(1, 0)
}

// rrGuard bounds the per-mapping grouping sweep. A single interval
// mapping fans out into a product of Bell numbers of RR groupings — on
// wide platforms (where enumerated replica sets can hold dozens of
// processors) that product is astronomical, so every evaluated grouping
// charges the shared exact.Options budget and cancellation is polled
// inside the sweep. This keeps budgets and cancellation behaving
// uniformly for any platform width instead of only guarding the
// interval-mapping level.
type rrGuard struct {
	ctx      context.Context
	done     <-chan struct{}
	budget   int64
	count    atomic.Int64 // shared across enumeration workers
	tripped  atomic.Bool
	canceled atomic.Bool
}

func newRRGuard(opts exact.Options) *rrGuard {
	g := &rrGuard{ctx: opts.Ctx, budget: opts.MaxEnum}
	if g.budget <= 0 {
		g.budget = exact.DefaultMaxEnum
	}
	if opts.Ctx != nil {
		g.done = opts.Ctx.Done()
	}
	return g
}

// step charges one evaluated grouping and reports whether the sweep may
// continue.
func (g *rrGuard) step() bool {
	c := g.count.Add(1)
	if c > g.budget {
		g.tripped.Store(true)
		return false
	}
	if g.done != nil && c&255 == 0 {
		select {
		case <-g.done:
			g.canceled.Store(true)
			return false
		default:
		}
	}
	return true
}

// finishErr folds the guard outcome into the enumeration error: a tripped
// budget surfaces as exact.ErrBudget, a cancellation as exact.ErrCanceled
// wrapping the context cause (matching the engine's own error shape).
func (g *rrGuard) finishErr(runErr error) error {
	if runErr != nil {
		return runErr
	}
	if g.canceled.Load() {
		return fmt.Errorf("%w: %w", exact.ErrCanceled, context.Cause(g.ctx))
	}
	if g.tripped.Load() {
		return exact.ErrBudget
	}
	return nil
}

// triBest is one worker's incumbent for MinPeriodUnderConstraints,
// tagged with the first-interval subtree it was found in so per-worker
// answers merge deterministically regardless of scheduling.
type triBest struct {
	res   TriResult
	task  int64
	found bool
}

// triBetter reports whether (a, taskA) beats (b, taskB) under the solver's
// order: period, then latency, then discovery task.
func triBetter(a Metrics, taskA int64, b Metrics, taskB int64) bool {
	if a.Period != b.Period {
		return a.Period < b.Period
	}
	if a.Latency != b.Latency {
		return a.Latency < b.Latency
	}
	return taskA < taskB
}

// MinPeriodUnderConstraints finds, by exhaustive enumeration over interval
// mappings and all round-robin groupings of each replica set, the RR
// mapping of minimum period among those with latency ≤ maxLatency and
// failure probability ≤ maxFailProb. Use math.Inf(1) and 1 to leave a
// criterion unconstrained. Instances must be small (the grouping space
// multiplies Bell numbers into the mapping enumeration). The mapping
// enumeration fans out over opts.Workers goroutines (0 = GOMAXPROCS) via
// the exact package's first-interval decomposition; the result is
// deterministic for every worker count.
// Every evaluated RR grouping — not just every interval mapping — charges
// opts.MaxEnum, and cancellation is polled inside the grouping sweep, so
// budgets and deadlines hold even on wide platforms whose replica sets
// make a single mapping's grouping space astronomical.
// Cancelling opts.Ctx stops the enumeration early; the best RR mapping
// found so far (when any) is returned alongside the exact.ErrCanceled
// error so callers can grade it as a partial answer.
func MinPeriodUnderConstraints(p *pipeline.Pipeline, pl *platform.Platform, maxLatency, maxFailProb float64, opts exact.Options) (TriResult, error) {
	opts.Replication = true
	guard := newRRGuard(opts)
	// The FP filter below is monotone in added groups (each group multiplies
	// the success product by a factor ≤ 1), so the sweep prunes grouping
	// subtrees as soon as their prefix FP already exceeds the threshold —
	// identical survivors, pruned subtrees uncharged (like the B&B engine).
	fpCap := maxFailProb + 1e-12
	bests := make([]triBest, opts.WorkerCount())
	runErr := exact.ForEachMappingParallel(p.NumStages(), pl.NumProcs(), opts, func(w int) func(int64, *mapping.Mapping) bool {
		wb := &bests[w]
		return func(task int64, m *mapping.Mapping) bool {
			return enumerateGroupings(m, 0, 1, FromMapping(m), guard, pl, fpCap, func(r *RRMapping) {
				met := r.evaluateTrusted(p, pl)
				if !leqTol(met.Latency, maxLatency) || met.FailureProb > fpCap {
					return
				}
				if !wb.found || triBetter(met, task, wb.res.Metrics, wb.task) {
					*wb = triBest{res: TriResult{Mapping: cloneRR(r), Metrics: met}, task: task, found: true}
				}
			})
		}
	})
	runErr = guard.finishErr(runErr)
	if runErr != nil && !errors.Is(runErr, exact.ErrCanceled) {
		return TriResult{}, runErr
	}
	best := triBest{}
	for _, wb := range bests {
		if wb.found && (!best.found || triBetter(wb.res.Metrics, wb.task, best.res.Metrics, best.task)) {
			best = wb
		}
	}
	if !best.found {
		if runErr != nil {
			return TriResult{}, runErr
		}
		return TriResult{}, ErrInfeasible
	}
	return best.res, runErr
}

// TriPareto enumerates the full three-criteria Pareto front (latency,
// failure probability, period) over RR mappings of a small instance,
// fanning the mapping enumeration out over opts.Workers goroutines with
// one front per worker, merged at the end. The metric set is exact and
// scheduling-independent. Groupings charge opts.MaxEnum and poll
// cancellation exactly as in MinPeriodUnderConstraints.
// Cancelling opts.Ctx stops the enumeration early; the partial front
// accumulated so far is returned alongside the exact.ErrCanceled error.
func TriPareto(p *pipeline.Pipeline, pl *platform.Platform, opts exact.Options) (*TriFront, error) {
	opts.Replication = true
	guard := newRRGuard(opts)
	fronts := make([]*TriFront, opts.WorkerCount())
	runErr := exact.ForEachMappingParallel(p.NumStages(), pl.NumProcs(), opts, func(w int) func(int64, *mapping.Mapping) bool {
		front := &TriFront{}
		fronts[w] = front
		return func(task int64, m *mapping.Mapping) bool {
			return enumerateGroupings(m, 0, 1, FromMapping(m), guard, nil, 1, func(r *RRMapping) {
				front.InsertTagged(r.evaluateTrusted(p, pl), r, task)
			})
		}
	})
	runErr = guard.finishErr(runErr)
	if runErr != nil && !errors.Is(runErr, exact.ErrCanceled) {
		return nil, runErr
	}
	merged := &TriFront{}
	for _, f := range fronts {
		if f == nil {
			continue
		}
		// Worker fronts already own private clones; transfer ownership.
		for _, e := range f.entries {
			merged.InsertOwned(e.Metrics, e.Mapping, e.Task)
		}
	}
	return merged, runErr
}

// enumerateGroupings recursively replaces interval j's single group by
// every set partition of its replica set, charging each complete RR
// grouping against the guard. It reports whether the sweep ran to
// completion (false: budget tripped or canceled — stop the mapping
// enumeration too).
//
// succ is the success product of the groups chosen for intervals [0, j);
// when pl is non-nil, subtrees whose prefix failure probability 1−succ
// already exceeds fpCap are skipped: FP only grows as groups are added
// (each multiplies the success product by a factor in [0, 1]), so every
// grouping below would fail the caller's FP filter. The prefix uses the
// same per-group products in the same order as RRMapping.FailureProb,
// making the prune float-consistent with the filter it anticipates.
// Callers not filtering on FP pass pl == nil (and succ 1, fpCap 1).
func enumerateGroupings(m *mapping.Mapping, j int, succ float64, r *RRMapping, guard *rrGuard, pl *platform.Platform, fpCap float64, visit func(*RRMapping)) bool {
	if j == len(m.Alloc) {
		if !guard.step() {
			return false
		}
		visit(r)
		return true
	}
	ok := forEachGrouping(m.Alloc[j], func(groups [][]int) bool {
		nsucc := succ
		if pl != nil {
			for _, g := range groups {
				q := 1.0
				for _, u := range g {
					q *= pl.FailProb[u]
				}
				nsucc *= 1 - q
			}
			if 1-nsucc > fpCap {
				return true // FP already violated; deeper groups only raise it
			}
		}
		r.Groups[j] = groups
		return enumerateGroupings(m, j+1, nsucc, r, guard, pl, fpCap, visit)
	})
	r.Groups[j] = [][]int{m.Alloc[j]}
	return ok
}

func cloneRROrNil(r *RRMapping) *RRMapping {
	if r == nil {
		return nil
	}
	return cloneRR(r)
}

func cloneRR(r *RRMapping) *RRMapping {
	cp := &RRMapping{Intervals: append([]mapping.Interval(nil), r.Intervals...)}
	for _, groups := range r.Groups {
		var gg [][]int
		for _, g := range groups {
			gg = append(gg, append([]int(nil), g...))
		}
		cp.Groups = append(cp.Groups, gg)
	}
	return cp
}

// GreedyRR is the scalable heuristic: start from a reliability mapping
// (typically the core solver's answer), then repeatedly split the group
// whose cycle bottlenecks the period into two round-robin halves, as long
// as the period improves and both constraints keep holding.
//
// ctx is polled between split rounds: on cancellation the best feasible
// RR mapping reached so far is returned with an error wrapping the
// context's cause.
func GreedyRR(ctx context.Context, p *pipeline.Pipeline, pl *platform.Platform, m *mapping.Mapping, maxLatency, maxFailProb float64) (TriResult, error) {
	cur := FromMapping(m)
	met, err := cur.Evaluate(p, pl)
	if err != nil {
		return TriResult{}, err
	}
	if !leqTol(met.Latency, maxLatency) || met.FailureProb > maxFailProb+1e-12 {
		return TriResult{}, ErrInfeasible
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	best := TriResult{Mapping: cloneRR(cur), Metrics: met}
	for {
		if done != nil {
			select {
			case <-done:
				return best, fmt.Errorf("throughput: greedy RR canceled: %w", context.Cause(ctx))
			default:
			}
		}
		improved := false
		// Try splitting every group with ≥ 2 replicas into two halves.
		for j := range best.Mapping.Groups {
			for g := range best.Mapping.Groups[j] {
				procs := best.Mapping.Groups[j][g]
				if len(procs) < 2 {
					continue
				}
				next := cloneRR(best.Mapping)
				half := len(procs) / 2
				next.Groups[j] = append(next.Groups[j][:g:g],
					append([][]int{procs[:half:half], procs[half:]}, next.Groups[j][g+1:]...)...)
				met, err := next.Evaluate(p, pl)
				if err != nil {
					continue
				}
				if !leqTol(met.Latency, maxLatency) || met.FailureProb > maxFailProb+1e-12 {
					continue
				}
				if met.Period < best.Metrics.Period-1e-12 {
					best = TriResult{Mapping: next, Metrics: met}
					improved = true
				}
			}
		}
		if !improved {
			return best, nil
		}
	}
}
